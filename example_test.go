package stanoise_test

import (
	"context"
	"fmt"

	"stanoise"
)

// exampleDesign is a deliberately small single-cluster design so the
// documented snippets run in well under a second of characterisation.
func exampleDesign() *stanoise.Design {
	return &stanoise.Design{
		Name:     "example",
		Tech:     "cmos130",
		Layer:    "M4",
		Segments: 8,
		Clusters: []stanoise.ClusterSpec{{
			Name: "net42",
			Victim: stanoise.VictimSpec{
				Cell: "INV", Drive: 2, NoisyPin: "A",
				LengthUm: 300,
			},
			Aggressors: []stanoise.AggressorSpec{{
				Cell: "INV", Drive: 4, FromState: map[string]bool{"A": false},
				SwitchPin: "A", LengthUm: 300,
			}},
		}},
	}
}

// exampleOptions keeps characterisation grids small for a fast, focused
// example run; production analyses use the defaults.
func exampleOptions() stanoise.Options {
	return stanoise.Options{
		Method:    stanoise.Macromodel,
		Workers:   1, // deterministic ordering for the example output
		LoadCurve: stanoise.LoadCurveOptions{NVin: 21, NVout: 21},
		NRC:       stanoise.NRCOptions{Widths: []float64{200e-12, 800e-12}, Dt: 2e-12},
	}
}

// ExampleAnalyzer_Analyze runs a batch static noise analysis: one report
// per victim net, in design order, each judged against its receiver's
// Noise Rejection Curve.
func ExampleAnalyzer_Analyze() {
	an := stanoise.NewAnalyzer(exampleDesign(), exampleOptions())
	reports, err := an.Analyze(context.Background())
	if err != nil {
		panic(err)
	}
	for _, r := range reports {
		status := "pass"
		if r.Fails {
			status = "FAIL"
		}
		fmt.Printf("%s: %s (%s model)\n", r.Cluster, status, r.Method)
	}
	fmt.Println(len(reports), "nets analysed")
	// Output:
	// net42: pass (macromodel model)
	// 1 nets analysed
}

// ExampleAnalyzer_Stream consumes reports as they complete — the streaming
// form of Analyze for pipelining or progress display. Breaking out of the
// loop early cancels and drains the worker pool without leaking
// goroutines.
func ExampleAnalyzer_Stream() {
	an := stanoise.NewAnalyzer(exampleDesign(), exampleOptions())
	total := 0
	for rep, err := range an.Stream(context.Background()) {
		if err != nil {
			panic(err)
		}
		total++
		fmt.Printf("done: %s\n", rep.Cluster)
	}
	fmt.Println(total, "reports streamed")
	// Output:
	// done: net42
	// 1 reports streamed
}
