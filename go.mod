module stanoise

go 1.24
