// The public-API contract test: everything in here goes exclusively
// through the root stanoise facade — compiling at all proves the facade
// needs no stanoise/internal imports from its callers.
package stanoise_test

import (
	"context"
	"encoding/json"
	"errors"
	"sort"
	"strings"
	"testing"

	"stanoise"
)

func facadeOpts() stanoise.Options {
	return stanoise.Options{
		Method:    stanoise.Macromodel,
		Dt:        2e-12,
		Align:     true,
		LoadCurve: stanoise.LoadCurveOptions{NVin: 31, NVout: 31},
		NRC:       stanoise.NRCOptions{Widths: []float64{100e-12, 300e-12, 900e-12}, Dt: 2e-12},
	}
}

// TestFacadeEndToEnd drives the whole public flow: JSON round trip,
// batch analysis, streaming, the typed-error contract and the error
// policies — without touching a single internal package.
func TestFacadeEndToEnd(t *testing.T) {
	ctx := context.Background()

	// JSON round trip through the public parser.
	d := stanoise.GenerateDesign("facade", 3)
	var b strings.Builder
	if err := d.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	d, err := stanoise.ParseDesign(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}

	// Batch analysis with a shared cache.
	cache := stanoise.NewCache()
	opts := facadeOpts()
	opts.Cache = cache
	reports, err := stanoise.NewAnalyzer(d, opts).Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	if s := stanoise.Summarize(reports); s.Total != 3 {
		t.Errorf("summary %+v", s)
	}
	if cs := cache.Stats(); cs.Misses == 0 {
		t.Errorf("shared cache unused: %+v", cs)
	}

	// The report schema is JSON-stable.
	raw, err := json.Marshal(reports)
	if err != nil {
		t.Fatalf("reports do not marshal: %v", err)
	}
	var back []stanoise.NetReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("reports do not unmarshal: %v", err)
	}

	// Streaming yields the same set of clusters (completion order).
	var streamed []string
	for rep, err := range stanoise.NewAnalyzer(d, opts).Stream(ctx) {
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		streamed = append(streamed, rep.Cluster)
	}
	sort.Strings(streamed)
	want := []string{"net000", "net001", "net002"}
	for i, name := range want {
		if streamed[i] != name {
			t.Fatalf("streamed clusters %v, want %v", streamed, want)
		}
	}
}

// TestFacadeTypedErrors exercises the ClusterError and ErrorPolicy
// contract through the facade aliases.
func TestFacadeTypedErrors(t *testing.T) {
	ctx := context.Background()
	d := stanoise.GenerateDesign("facade-err", 4)
	d.Clusters[1].Victim.Cell = "NO_SUCH_CELL"

	_, err := stanoise.NewAnalyzer(d, facadeOpts()).Analyze(ctx)
	var cerr *stanoise.ClusterError
	if !errors.As(err, &cerr) {
		t.Fatalf("fail-fast error %v is not a *stanoise.ClusterError", err)
	}
	if cerr.Cluster != "net001" || cerr.Stage != stanoise.StageBuild {
		t.Errorf("cluster %q stage %q, want net001/%s", cerr.Cluster, cerr.Stage, stanoise.StageBuild)
	}

	opts := facadeOpts()
	opts.OnError = stanoise.ContinueOnError
	reports, err := stanoise.NewAnalyzer(d, opts).Analyze(ctx)
	if len(reports) != 3 {
		t.Errorf("continue-on-error reports = %d, want 3", len(reports))
	}
	if !errors.As(err, &cerr) {
		t.Errorf("joined error %v hides the *ClusterError", err)
	}

	// Cancellation surfaces as the context error, not a cluster failure.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := stanoise.NewAnalyzer(d, opts).Analyze(cctx); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Analyze error = %v", err)
	}
}

// TestFacadePersistentStore drives the disk tier entirely through the
// facade: OpenStore, Cache.SetStore, Options.CacheDir, export/import —
// the workflow a long-running sign-off service or CI pipeline scripts.
func TestFacadePersistentStore(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	d := stanoise.GenerateDesign("facade-store", 2)

	opts := facadeOpts()
	opts.Align = false
	opts.LoadCurve = stanoise.LoadCurveOptions{NVin: 9, NVout: 9}
	opts.NRC = stanoise.NRCOptions{Widths: []float64{150e-12, 600e-12}, Tol: 0.05, Dt: 2e-12}
	opts.CacheDir = dir

	cold := stanoise.NewAnalyzer(d, opts)
	if err := cold.StoreError(); err != nil {
		t.Fatal(err)
	}
	coldReports, err := cold.Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}

	warm := stanoise.NewAnalyzer(d, opts)
	warmReports, err := warm.Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cs := warm.CacheStats(); cs.DiskHits == 0 || cs.DiskHits != cs.Misses {
		t.Errorf("warm run stats %+v, want every miss served from disk", cs)
	}
	for i := range coldReports {
		coldReports[i].ClearTiming()
		warmReports[i].ClearTiming()
	}
	cj, _ := json.Marshal(coldReports)
	wj, _ := json.Marshal(warmReports)
	if string(cj) != string(wj) {
		t.Errorf("warm reports differ from cold:\n%s\n%s", cj, wj)
	}

	// Export the precharacterised library and import it into a fresh
	// store; an analyzer over the fresh store starts warm too.
	store, err := stanoise.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	var bundle strings.Builder
	if err := store.Export(&bundle); err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	store2, err := stanoise.OpenStore(dir2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := store2.Import(strings.NewReader(bundle.String()))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("bundle import added no entries")
	}
	opts2 := opts
	opts2.CacheDir = ""
	opts2.Store = store2
	imported := stanoise.NewAnalyzer(d, opts2)
	if _, err := imported.Analyze(ctx); err != nil {
		t.Fatal(err)
	}
	if cs := imported.CacheStats(); cs.DiskHits != cs.Misses {
		t.Errorf("imported-store run stats %+v, want fully warm", cs)
	}
}

// TestFacadeSampleDesign keeps the CLI starter design analysable.
func TestFacadeSampleDesign(t *testing.T) {
	if err := stanoise.SampleDesign().Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := stanoise.ParseMethod("golden"); err != nil {
		t.Error(err)
	}
	if _, err := stanoise.ParseErrorPolicy("continue"); err != nil {
		t.Error(err)
	}
}
