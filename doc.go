// Package stanoise is a from-scratch Go reproduction of "Modeling the
// Non-Linear Behavior of Library Cells for an Accurate Static Noise
// Analysis" (C. Forzan, D. Pandini — STMicroelectronics, DATE 2005).
//
// The repository implements the paper's noise-cluster macromodel — a
// non-linear voltage-controlled current source victim driver co-simulated
// with a moment-matching reduced model of the coupled interconnect and
// Thevenin aggressor models — together with every substrate it needs: a
// transistor-level circuit simulator (the golden "ELDO" stand-in), a
// Level-1 device model, a standard-cell library, parasitic generation for
// coupled wires, PRIMA-style model-order reduction, cell
// pre-characterisation, noise rejection curves and a design-level static
// noise analysis flow.
//
// Start with README.md, DESIGN.md (architecture and substitutions) and
// EXPERIMENTS.md (measured reproduction of each table and figure). The
// benchmarks in bench_test.go regenerate every experiment; the runnable
// entry points live under cmd/ and examples/.
package stanoise
