package paper

import (
	"fmt"
	"io"

	"stanoise/internal/report"
)

// Render writes the experiment as an aligned ASCII table.
func (e *Experiment) Render(w io.Writer) error {
	t := e.Table()
	return t.Render(w)
}

// Table converts the experiment to a report table.
func (e *Experiment) Table() *report.Table {
	t := &report.Table{
		Title:   e.Title,
		Headers: []string{"model", "peak (V)", "err%", "area (V·ps)", "err%", "width (ps)", "analysis time"},
		Notes:   e.Notes,
	}
	for _, r := range e.Rows {
		t.AddRow(
			r.Label,
			fmt.Sprintf("%.3f", r.PeakV),
			report.Pct(r.PeakErrPct, r.IsRef),
			fmt.Sprintf("%.1f", r.AreaVps),
			report.Pct(r.AreaErrPct, r.IsRef),
			fmt.Sprintf("%.0f", r.WidthPs),
			r.Elapsed.Round(10e3).String(),
		)
	}
	return t
}
