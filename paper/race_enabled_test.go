//go:build race

package paper

// raceEnabled relaxes wall-clock ratio assertions: race instrumentation
// slows the two engines by different factors, so absolute speed-up
// thresholds measured without it do not transfer.
const raceEnabled = true
