package paper

import (
	"context"
	"math"
	"strings"
	"testing"
)

// The regression test for the paper's headline table: on the quick-quality
// Table 1 cluster, superposition must underestimate peak and area by
// double-digit percentages while the macromodel stays within a few percent.
func TestTable1Shape(t *testing.T) {
	exp, err := RunTable1(context.Background(), Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Rows) != 3 {
		t.Fatalf("rows = %d", len(exp.Rows))
	}
	golden, sup, mac := exp.Rows[0], exp.Rows[1], exp.Rows[2]
	if !golden.IsRef {
		t.Error("first row should be the golden reference")
	}
	if golden.PeakV < 0.3 || golden.PeakV > 1.1 {
		t.Errorf("golden peak %v V outside the expected regime", golden.PeakV)
	}
	if sup.PeakErrPct > -10 {
		t.Errorf("superposition peak error %+.1f%%, want < -10%%", sup.PeakErrPct)
	}
	if sup.AreaErrPct > -20 {
		t.Errorf("superposition area error %+.1f%%, want < -20%%", sup.AreaErrPct)
	}
	if math.Abs(mac.PeakErrPct) > 6 {
		t.Errorf("macromodel peak error %+.1f%%, want within a few percent", mac.PeakErrPct)
	}
	if math.Abs(mac.AreaErrPct) > 6 {
		t.Errorf("macromodel area error %+.1f%%", mac.AreaErrPct)
	}
}

func TestTable2Shape(t *testing.T) {
	exp, err := RunTable2(context.Background(), Quick)
	if err != nil {
		t.Fatal(err)
	}
	golden, mac := exp.Rows[0], exp.Rows[1]
	// Two in-phase aggressors plus the glitch: substantially more noise
	// than Table 1's single aggressor.
	if golden.PeakV < 0.5 {
		t.Errorf("golden peak %v V too small for the 2-aggressor worst case", golden.PeakV)
	}
	if math.Abs(mac.PeakErrPct) > 6 {
		t.Errorf("macromodel peak error %+.1f%%", mac.PeakErrPct)
	}
	if math.Abs(mac.AreaErrPct) > 6 {
		t.Errorf("macromodel area error %+.1f%%", mac.AreaErrPct)
	}
}

func TestZolotovContextOrdering(t *testing.T) {
	exp, err := RunZolotovContext(context.Background(), Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Rows: golden, superposition, zolotov passes {1,2,4}, macromodel.
	if len(exp.Rows) != 6 {
		t.Fatalf("rows = %d", len(exp.Rows))
	}
	sup := exp.Rows[1]
	zol1 := exp.Rows[2]
	zol2 := exp.Rows[3]
	zol4 := exp.Rows[4]
	mac := exp.Rows[5]
	// Iterating must improve the peak estimate toward golden.
	if math.Abs(zol4.PeakErrPct) > math.Abs(zol1.PeakErrPct)+0.5 {
		t.Errorf("zolotov did not improve with passes: %+.1f%% -> %+.1f%%",
			zol1.PeakErrPct, zol4.PeakErrPct)
	}
	// The default (2-pass) operating point must beat plain superposition.
	if math.Abs(zol2.PeakErrPct) > math.Abs(sup.PeakErrPct) {
		t.Errorf("2-pass zolotov (%+.1f%%) worse than superposition (%+.1f%%)",
			zol2.PeakErrPct, sup.PeakErrPct)
	}
	if math.Abs(mac.PeakErrPct) > 6 {
		t.Errorf("macromodel error %+.1f%%", mac.PeakErrPct)
	}
}

func TestSpeedupClaim(t *testing.T) {
	exp, err := RunSpeedup(context.Background(), Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Quick quality uses a coarse mesh, so the ratio is smaller than the
	// published Full-quality number; it must still be a clear win. Race
	// instrumentation skews the two engines differently, so only the
	// relaxed bound applies there.
	minRatio := 3.0
	if raceEnabled {
		minRatio = 1.5
	}
	for i := 0; i < len(exp.Rows); i += 2 {
		g, m := exp.Rows[i], exp.Rows[i+1]
		if m.Elapsed >= g.Elapsed {
			t.Errorf("%s: macromodel (%v) not faster than golden (%v)", m.Label, m.Elapsed, g.Elapsed)
		}
		if float64(g.Elapsed)/float64(m.Elapsed) < minRatio {
			t.Errorf("%s: speed-up below %.1fX even at quick quality", m.Label, minRatio)
		}
	}
}

func TestSweepSubsetAccuracy(t *testing.T) {
	// A cross-technology subset: first four 0.13 µm cases and the worst
	// structural variety; full sweep runs via cmd/noisetab.
	exp, err := RunSweep(context.Background(), Quick, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Rows) != 4 {
		t.Fatalf("rows = %d", len(exp.Rows))
	}
	for _, r := range exp.Rows {
		if math.Abs(r.PeakErrPct) > 8 {
			t.Errorf("%s: macromodel peak error %+.1f%%", r.Label, r.PeakErrPct)
		}
	}
}

func TestSweepCasesCoverBothTechnologies(t *testing.T) {
	cases := SweepCases()
	var has130, has90 bool
	for _, sc := range cases {
		switch sc.TechName {
		case "cmos130":
			has130 = true
		case "cmos090":
			has90 = true
		}
	}
	if !has130 || !has90 {
		t.Error("sweep must cover both 0.13um and 90nm")
	}
	if len(cases) < 16 {
		t.Errorf("sweep has only %d cases", len(cases))
	}
}

func TestBuildSweepClusterTwoAggressors(t *testing.T) {
	sc := SweepCase{Name: "x", TechName: "cmos090", VictimKind: "NOR2", VictimPin: "A",
		NumAgg: 2, LengthUm: 300}
	c, err := BuildSweepCluster(sc, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Victim.Line != 1 || len(c.Aggressors) != 2 {
		t.Errorf("victim line %d, aggressors %d", c.Victim.Line, len(c.Aggressors))
	}
	if c.Tech.VDD != 1.0 {
		t.Errorf("tech VDD = %v, want 90nm card", c.Tech.VDD)
	}
}

func TestFig1Description(t *testing.T) {
	s, err := Fig1Description(context.Background(), Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"IDC", "S-model", "VTH", "RTH", "NAND2_X1", "aggressor 2"} {
		if !strings.Contains(s, want) {
			t.Errorf("Fig1 description missing %q", want)
		}
	}
}

func TestRenderTable(t *testing.T) {
	exp := &Experiment{
		ID: "t", Title: "demo",
		Rows: []Row{
			{Label: "golden", PeakV: 0.345, AreaVps: 174.3, IsRef: true},
			{Label: "macro", PeakV: 0.354, PeakErrPct: 2.6, AreaVps: 175.7, AreaErrPct: 0.8},
		},
	}
	var b strings.Builder
	if err := exp.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"demo", "golden", "0.345", "+2.6", "—"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestQualityKnobs(t *testing.T) {
	if Quick.segments() >= Full.segments() {
		t.Error("quick should use a coarser mesh")
	}
	if Quick.dt() <= Full.dt() {
		t.Error("quick should use a larger step")
	}
}
