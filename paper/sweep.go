package paper

import (
	"context"
	"fmt"
	"math"
	"strings"

	"stanoise/internal/cell"
	"stanoise/internal/core"
	"stanoise/internal/interconnect"
	"stanoise/internal/tech"
)

// SweepCase describes one cluster of the accuracy sweep (claim C1).
type SweepCase struct {
	Name       string
	TechName   string
	VictimKind string
	VictimPin  string
	NumAgg     int
	LengthUm   float64
}

// SweepCases enumerates the victim/aggressor/technology/length
// combinations backing the paper's statement that the approach "has been
// tested on several noise clusters in 0.13µm and 90nm technology … and the
// error was always within few percents".
func SweepCases() []SweepCase {
	var cases []SweepCase
	for _, tn := range []string{"cmos130", "cmos090"} {
		for _, vc := range []struct{ kind, pin string }{
			{"NAND2", "B"}, {"NOR2", "A"}, {"INV", "A"}, {"AOI21", "C"},
		} {
			for _, nAgg := range []int{1, 2} {
				for _, length := range []float64{300, 500} {
					cases = append(cases, SweepCase{
						Name: fmt.Sprintf("%s/%s/%dagg/%.0fum",
							strings.TrimPrefix(tn, "cmos"), vc.kind, nAgg, length),
						TechName: tn, VictimKind: vc.kind, VictimPin: vc.pin,
						NumAgg: nAgg, LengthUm: length,
					})
				}
			}
		}
	}
	return cases
}

// BuildSweepCluster constructs the cluster for one sweep case. The victim
// is placed so every aggressor couples to it directly (victim in the middle
// for two aggressors).
func BuildSweepCluster(sc SweepCase, q Quality) (*core.Cluster, error) {
	tt, err := tech.ByName(sc.TechName)
	if err != nil {
		return nil, err
	}
	vic, err := cell.New(tt, sc.VictimKind, 1)
	if err != nil {
		return nil, err
	}
	st, err := vic.SensitizedState(sc.VictimPin, true)
	if err != nil {
		return nil, err
	}
	inv := func(d int) *cell.Cell { return cell.MustNew(tt, "INV", d) }

	var lines []interconnect.LineSpec
	vicLine := 0
	switch sc.NumAgg {
	case 1:
		lines = []interconnect.LineSpec{
			{Name: "vic", LengthUm: sc.LengthUm},
			{Name: "agg1", LengthUm: sc.LengthUm},
		}
	case 2:
		lines = []interconnect.LineSpec{
			{Name: "agg1", LengthUm: sc.LengthUm},
			{Name: "vic", LengthUm: sc.LengthUm},
			{Name: "agg2", LengthUm: sc.LengthUm},
		}
		vicLine = 1
	default:
		return nil, fmt.Errorf("paper: sweep supports 1 or 2 aggressors, got %d", sc.NumAgg)
	}
	bus, err := interconnect.NewBus(tt, "M4", q.segments(), lines...)
	if err != nil {
		return nil, err
	}
	c := &core.Cluster{
		Tech: tt,
		Bus:  bus,
		Victim: core.VictimSpec{
			// A solidly propagating glitch, matching the regime of the
			// paper's evaluation (total noise a large fraction of VDD).
			// Marginal near-threshold glitches are a documented hard case
			// for any DC-table macromodel — see EXPERIMENTS.md.
			Cell: vic, State: st, NoisyPin: sc.VictimPin,
			Glitch:   core.GlitchSpec{Height: 0.62 * tt.VDD, Width: 450e-12, Start: 150e-12},
			Line:     vicLine,
			Receiver: inv(2), ReceiverPin: "A",
		},
	}
	aggLine := 0
	for i := 0; i < sc.NumAgg; i++ {
		if aggLine == vicLine {
			aggLine++
		}
		c.Aggressors = append(c.Aggressors, core.AggressorSpec{
			Cell: inv(2), FromState: cell.State{"A": false}, SwitchPin: "A",
			Line: aggLine, Receiver: inv(2), ReceiverPin: "A",
		})
		aggLine++
	}
	return c, nil
}

// RunSweep regenerates claim C1: macromodel and superposition accuracy over
// the cluster sweep. With maxCases > 0 only the first maxCases are run.
func RunSweep(ctx context.Context, q Quality, maxCases int) (*Experiment, error) {
	cases := SweepCases()
	if maxCases > 0 && maxCases < len(cases) {
		cases = cases[:maxCases]
	}
	exp := &Experiment{
		ID:    "sweep",
		Title: "Claim C1: macromodel accuracy across noise clusters in 0.13um and 90nm",
		Notes: []string{
			"paper: \"accuracy evaluated against circuit simulations, and the error was always within few percents\"",
		},
	}
	worstMac, worstSup := 0.0, 0.0
	for _, sc := range cases {
		c, err := BuildSweepCluster(sc, q)
		if err != nil {
			return nil, fmt.Errorf("paper: sweep case %s: %w", sc.Name, err)
		}
		p, err := prepare(ctx, c, q, false)
		if err != nil {
			return nil, fmt.Errorf("paper: sweep case %s: %w", sc.Name, err)
		}
		golden, err := p.eval(ctx, core.Golden)
		if err != nil {
			return nil, fmt.Errorf("paper: sweep case %s golden: %w", sc.Name, err)
		}
		mac, err := p.eval(ctx, core.Macromodel)
		if err != nil {
			return nil, fmt.Errorf("paper: sweep case %s macromodel: %w", sc.Name, err)
		}
		row := evalRow(sc.Name, mac, golden)
		exp.Rows = append(exp.Rows, row)
		if a := math.Abs(row.PeakErrPct); a > worstMac {
			worstMac = a
		}
		_ = worstSup
	}
	exp.Notes = append(exp.Notes,
		fmt.Sprintf("worst-case macromodel peak error across %d clusters: %.1f%%", len(cases), worstMac))
	return exp, nil
}

// Fig1Description renders the assembled noise-cluster macromodel of the
// Table 2 configuration — the circuit of the paper's Figure 1 — as an
// annotated textual schematic plus the element values this implementation
// derived.
func Fig1Description(ctx context.Context, q Quality) (string, error) {
	c, err := Table2Cluster(q)
	if err != nil {
		return "", err
	}
	mopts := q.modelOptions()
	mopts.SkipProp = true
	models, err := c.BuildModels(ctx, mopts)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(`Figure 1: noise cluster macromodel (as constructed for the Table 2 cluster)

          VTH1 --/\/\--+                +--/\/\-- VTH2
          (ramp)  RTH1 |                | RTH2  (ramp)
                       |                |
                  [DP_agg1]        [DP_agg2]
                       |                |
               +---------------------------------+
   Vnoise      |                                  |
     |         |    coupled S-model (reduced      |
     v         |    moment-matching RC macro-     |
  [Vin]--> IDC |    model of the interconnect)    |
  f(Vin,Vout)  |                                  |
     |         +---------------------------------+
  [DP_vic]-----+        |                |
                   [recv_vic]       (receiver pin caps
                    Vnoise out       inside the S-model)

`)
	fmt.Fprintf(&b, "victim driver  : %s state %s, VCCS table I_DC = f(V_%s, V_out), %dx%d grid\n",
		models.LC.CellName, models.LC.State, c.Victim.NoisyPin, models.LC.NVin, models.LC.NVout)
	fmt.Fprintf(&b, "input noise    : triangular glitch %.2f V x %.0f ps at the victim driver input\n",
		c.Victim.Glitch.Height, c.Victim.Glitch.Width*1e12)
	fmt.Fprintf(&b, "holding R      : %.0f ohm at the quiet point (for the linear baselines)\n",
		1/models.HoldG)
	for i, d := range models.Agg {
		fmt.Fprintf(&b, "aggressor %d    : VTH %s ramp %.2f->%.2f V, Tr=%.0f ps, RTH=%.0f ohm\n",
			i+1, models.Red.Ports[models.AggPorts[i]], d.V0, d.V1, d.Tr*1e12, d.RTh)
	}
	fmt.Fprintf(&b, "S-model        : %d RC nodes reduced to q=%d states, ports %v\n",
		c.Bus.Segments*len(c.Bus.Lines)+len(c.Bus.Lines), models.Red.Q, models.Red.Ports)
	fmt.Fprintf(&b, "receiver caps  : victim %.2f fF (inside the reduced model)\n",
		c.Victim.Receiver.InputCap(c.Victim.ReceiverPin)*1e15)
	in := victimInputPeek(c)
	fmt.Fprintf(&b, "glitch metrics : peak %.2f V, area %.0f V*ps at the victim input\n",
		in.Peak, in.AreaVps())
	return b.String(), nil
}
