// Package paper defines the canonical experiment configurations that
// reproduce every table and figure of Forzan & Pandini, "Modeling the
// Non-Linear Behavior of Library Cells for an Accurate Static Noise
// Analysis" (DATE 2005), and the runners that regenerate them.
//
// The same definitions feed the noisetab command, the repository-level
// benchmarks and the regression tests, so the published numbers in
// EXPERIMENTS.md are exactly what the test suite asserts on.
package paper

import (
	"context"
	"fmt"
	"sync"
	"time"

	"stanoise/internal/cell"
	"stanoise/internal/charlib"
	"stanoise/internal/core"
	"stanoise/internal/interconnect"
	"stanoise/internal/tech"
	"stanoise/internal/wave"
)

// The shared characterisation cache of the experiment runners. By default
// every runner characterises from scratch (nil cache — the honest setting
// for regenerating published timings). noisetab -cache-dir installs a
// disk-backed cache here so repeated experiment runs skip the
// transistor-level sweeps.
var (
	cacheMu     sync.Mutex
	sharedCache *charlib.Cache
)

// SetCache installs (or, with nil, removes) a characterisation cache used
// by every subsequent experiment runner in this process.
func SetCache(c *charlib.Cache) {
	cacheMu.Lock()
	sharedCache = c
	cacheMu.Unlock()
}

func activeCache() *charlib.Cache {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return sharedCache
}

// Row is one line of a comparison table.
type Row struct {
	Label      string
	PeakV      float64
	PeakErrPct float64
	AreaVps    float64
	AreaErrPct float64
	WidthPs    float64
	Elapsed    time.Duration
	IsRef      bool
}

// Experiment is one regenerated table or figure.
type Experiment struct {
	ID    string // "table1", "table2", "fig1", "sweep", "speedup", "zolotov"
	Title string
	Rows  []Row
	Notes []string
}

// Quality selects characterisation/simulation effort.
type Quality int

const (
	// Full matches the published EXPERIMENTS.md numbers (fine wire
	// discretisation, 1 ps steps, dense characterisation grids).
	Full Quality = iota
	// Quick is for tests and smoke runs: coarser grids, 2 ps steps.
	Quick
)

func (q Quality) segments() int {
	if q == Quick {
		return 10
	}
	return 25
}

func (q Quality) dt() float64 {
	if q == Quick {
		return 2e-12
	}
	return 1e-12
}

func (q Quality) modelOptions() core.ModelOptions {
	opts := core.ModelOptions{Cache: activeCache()}
	if q == Quick {
		opts.LoadCurve = charlib.LoadCurveOptions{NVin: 41, NVout: 41}
		opts.Prop = charlib.PropOptions{
			Heights: []float64{0.3, 0.6, 0.9, 1.2},
			Widths:  []float64{150e-12, 350e-12, 700e-12},
			Loads:   []float64{40e-15, 90e-15, 160e-15},
			Dt:      2e-12,
		}
	}
	return opts
}

// Table1Cluster builds the paper's Table 1 test case: "a simple test case
// in 0.13µm technology, consisting of two adjacent coupled nets … extracted
// from two 500µm parallel-running interconnects, designed on metal layer 4,
// where the aggressor cell is an inverter and the victim driver is a
// 2-input nand", with one noise glitch propagating through the victim.
func Table1Cluster(q Quality) (*core.Cluster, error) {
	tt := tech.Tech130()
	bus, err := interconnect.NewBus(tt, "M4", q.segments(),
		interconnect.LineSpec{Name: "vic", LengthUm: 500},
		interconnect.LineSpec{Name: "agg", LengthUm: 500},
	)
	if err != nil {
		return nil, err
	}
	nand := cell.MustNew(tt, "NAND2", 1)
	st, err := nand.SensitizedState("B", true) // A=1, B=0: output held high
	if err != nil {
		return nil, err
	}
	inv := func(d int) *cell.Cell { return cell.MustNew(tt, "INV", d) }
	return &core.Cluster{
		Tech: tt,
		Bus:  bus,
		Victim: core.VictimSpec{
			Cell: nand, State: st, NoisyPin: "B",
			Glitch:   core.GlitchSpec{Height: 0.70, Width: 400e-12, Start: 150e-12},
			Line:     0,
			Receiver: inv(2), ReceiverPin: "A",
		},
		Aggressors: []core.AggressorSpec{{
			Cell: inv(2), FromState: cell.State{"A": false}, SwitchPin: "A",
			Line: 1, Receiver: inv(2), ReceiverPin: "A",
		}},
	}, nil
}

// Table2Cluster builds the paper's Table 2 test case: two in-phase
// aggressors flanking the victim, plus the propagating glitch — the
// worst-case overlap experiment.
func Table2Cluster(q Quality) (*core.Cluster, error) {
	tt := tech.Tech130()
	bus, err := interconnect.NewBus(tt, "M4", q.segments(),
		interconnect.LineSpec{Name: "agg1", LengthUm: 500},
		interconnect.LineSpec{Name: "vic", LengthUm: 500},
		interconnect.LineSpec{Name: "agg2", LengthUm: 500},
	)
	if err != nil {
		return nil, err
	}
	nand := cell.MustNew(tt, "NAND2", 1)
	st, err := nand.SensitizedState("B", true)
	if err != nil {
		return nil, err
	}
	inv := func(d int) *cell.Cell { return cell.MustNew(tt, "INV", d) }
	return &core.Cluster{
		Tech: tt,
		Bus:  bus,
		Victim: core.VictimSpec{
			Cell: nand, State: st, NoisyPin: "B",
			Glitch:   core.GlitchSpec{Height: 0.70, Width: 400e-12, Start: 150e-12},
			Line:     1,
			Receiver: inv(2), ReceiverPin: "A",
		},
		Aggressors: []core.AggressorSpec{
			{Cell: inv(2), FromState: cell.State{"A": false}, SwitchPin: "A",
				Line: 0, Receiver: inv(2), ReceiverPin: "A"},
			{Cell: inv(2), FromState: cell.State{"A": false}, SwitchPin: "A",
				Line: 2, Receiver: inv(2), ReceiverPin: "A"},
		},
	}, nil
}

// evalRow converts an evaluation into a table row with errors vs golden.
func evalRow(label string, ev, golden *core.Evaluation) Row {
	r := Row{
		Label:   label,
		PeakV:   ev.Metrics.Peak,
		AreaVps: ev.Metrics.AreaVps(),
		WidthPs: ev.Metrics.WidthPs(),
		Elapsed: ev.Elapsed,
	}
	if golden == nil || ev == golden {
		r.IsRef = true
		return r
	}
	r.PeakErrPct = 100 * (ev.Metrics.Peak - golden.Metrics.Peak) / golden.Metrics.Peak
	r.AreaErrPct = 100 * (ev.Metrics.Area - golden.Metrics.Area) / golden.Metrics.Area
	return r
}

// prepared bundles a cluster with its models, aligned for worst case.
type prepared struct {
	cluster *core.Cluster
	models  *core.Models
	opts    core.EvalOptions
}

func prepare(ctx context.Context, c *core.Cluster, q Quality, needProp bool) (*prepared, error) {
	mopts := q.modelOptions()
	mopts.SkipProp = !needProp
	models, err := c.BuildModels(ctx, mopts)
	if err != nil {
		return nil, err
	}
	opts := core.EvalOptions{Dt: q.dt()}
	if err := c.AlignWorstCase(ctx, models, opts); err != nil {
		return nil, err
	}
	return &prepared{cluster: c, models: models, opts: opts}, nil
}

func (p *prepared) eval(ctx context.Context, m core.Method) (*core.Evaluation, error) {
	return p.cluster.Evaluate(ctx, m, p.models, p.opts)
}

// RunTable1 regenerates Table 1: injected and propagated noise combination
// — golden (ELDO stand-in) versus linear superposition versus the paper's
// macromodel.
func RunTable1(ctx context.Context, q Quality) (*Experiment, error) {
	c, err := Table1Cluster(q)
	if err != nil {
		return nil, err
	}
	p, err := prepare(ctx, c, q, true)
	if err != nil {
		return nil, err
	}
	golden, err := p.eval(ctx, core.Golden)
	if err != nil {
		return nil, err
	}
	sup, err := p.eval(ctx, core.Superposition)
	if err != nil {
		return nil, err
	}
	mac, err := p.eval(ctx, core.Macromodel)
	if err != nil {
		return nil, err
	}
	return &Experiment{
		ID:    "table1",
		Title: "Table 1: injected and propagated noise combination (0.13um, 500um M4, INV aggressor, NAND2 victim)",
		Rows: []Row{
			evalRow("golden (ELDO stand-in)", golden, nil),
			evalRow("linear superposition", sup, golden),
			evalRow("our macromodel", mac, golden),
		},
		Notes: []string{
			"paper: superposition -22.0% peak / -52.8% area; macromodel +2.6% peak / +0.8% area",
		},
	}, nil
}

// RunTable2 regenerates Table 2: worst-case overlap of two in-phase
// aggressors and one propagating glitch.
func RunTable2(ctx context.Context, q Quality) (*Experiment, error) {
	c, err := Table2Cluster(q)
	if err != nil {
		return nil, err
	}
	p, err := prepare(ctx, c, q, false)
	if err != nil {
		return nil, err
	}
	golden, err := p.eval(ctx, core.Golden)
	if err != nil {
		return nil, err
	}
	mac, err := p.eval(ctx, core.Macromodel)
	if err != nil {
		return nil, err
	}
	return &Experiment{
		ID:    "table2",
		Title: "Table 2: worst-case overlap of two in-phase aggressors and one propagating glitch",
		Rows: []Row{
			evalRow("golden (ELDO stand-in)", golden, nil),
			evalRow("our macromodel", mac, golden),
		},
		Notes: []string{
			"paper: macromodel +3.1% peak / +2.5% area",
		},
	}, nil
}

// RunZolotovContext regenerates the accuracy context the paper quotes for
// its reference [4]: the iterative pulsed-Thevenin victim model, evaluated
// at increasing iteration counts on the Table 1 cluster, bracketed by
// superposition and the macromodel.
func RunZolotovContext(ctx context.Context, q Quality) (*Experiment, error) {
	c, err := Table1Cluster(q)
	if err != nil {
		return nil, err
	}
	p, err := prepare(ctx, c, q, true)
	if err != nil {
		return nil, err
	}
	golden, err := p.eval(ctx, core.Golden)
	if err != nil {
		return nil, err
	}
	exp := &Experiment{
		ID:    "zolotov",
		Title: "Context [4]: iterative linear victim model (Zolotov et al.) on the Table 1 cluster",
		Rows:  []Row{evalRow("golden (ELDO stand-in)", golden, nil)},
		Notes: []string{
			"paper quotes [4] at -18% peak / -20% width errors; iterations converge toward the non-linear result",
		},
	}
	sup, err := p.eval(ctx, core.Superposition)
	if err != nil {
		return nil, err
	}
	exp.Rows = append(exp.Rows, evalRow("linear superposition", sup, golden))
	for _, passes := range []int{1, 2, 4} {
		opts := p.opts
		opts.ZolotovPasses = passes
		ev, err := c.Evaluate(ctx, core.Zolotov, p.models, opts)
		if err != nil {
			return nil, err
		}
		exp.Rows = append(exp.Rows, evalRow(fmt.Sprintf("zolotov (%d passes)", passes), ev, golden))
	}
	mac, err := p.eval(ctx, core.Macromodel)
	if err != nil {
		return nil, err
	}
	exp.Rows = append(exp.Rows, evalRow("our macromodel", mac, golden))
	return exp, nil
}

// RunSpeedup regenerates the paper's claim C2 ("the speed-up obtained with
// our approach was about 20X with respect to ELDO") on both table clusters.
func RunSpeedup(ctx context.Context, q Quality) (*Experiment, error) {
	exp := &Experiment{
		ID:    "speedup",
		Title: "Claim C2: analysis speed-up of the macromodel engine vs the golden transistor-level simulation",
		Notes: []string{
			"paper: about 20X; pre-characterisation (tables, fits, reduction) is an offline library step in both flows",
		},
	}
	for _, tc := range []struct {
		name  string
		build func(Quality) (*core.Cluster, error)
	}{
		{"table1 cluster", Table1Cluster},
		{"table2 cluster", Table2Cluster},
	} {
		c, err := tc.build(q)
		if err != nil {
			return nil, err
		}
		p, err := prepare(ctx, c, q, false)
		if err != nil {
			return nil, err
		}
		golden, err := p.eval(ctx, core.Golden)
		if err != nil {
			return nil, err
		}
		mac, err := p.eval(ctx, core.Macromodel)
		if err != nil {
			return nil, err
		}
		speedup := float64(golden.Elapsed) / float64(mac.Elapsed)
		exp.Rows = append(exp.Rows,
			Row{Label: tc.name + " golden", PeakV: golden.Metrics.Peak, AreaVps: golden.Metrics.AreaVps(),
				Elapsed: golden.Elapsed, IsRef: true},
			Row{Label: fmt.Sprintf("%s macromodel (%.0fX)", tc.name, speedup),
				PeakV: mac.Metrics.Peak, AreaVps: mac.Metrics.AreaVps(), Elapsed: mac.Elapsed,
				PeakErrPct: 100 * (mac.Metrics.Peak - golden.Metrics.Peak) / golden.Metrics.Peak,
				AreaErrPct: 100 * (mac.Metrics.Area - golden.Metrics.Area) / golden.Metrics.Area},
		)
	}
	return exp, nil
}

// victimInputPeek is used by Fig1 to describe the glitch source.
func victimInputPeek(c *core.Cluster) wave.NoiseMetrics {
	quiet := c.Victim.Cell.PinVoltage(c.Victim.State[c.Victim.NoisyPin])
	w := wave.Triangle(quiet, c.Victim.Glitch.Height, c.Victim.Glitch.Start, c.Victim.Glitch.Width)
	return wave.MeasureNoise(w, quiet)
}
