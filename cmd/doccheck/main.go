// Command doccheck is the repository's exported-comment linter: it fails
// when any exported package-level identifier — function, method, type,
// constant or variable — lacks a godoc comment, or when a package has no
// package comment at all. It is the `revive`/`golint` exported-comment
// rule as a zero-dependency tool, run by `make docs` and CI so the public
// surface (and the internal architecture) stays learnable from godoc
// alone.
//
//	doccheck ./...          # lint every package under the module
//	doccheck ./internal/sim # lint specific packages
//
// Test files are skipped (test helpers document themselves by their
// assertions). For grouped const/var declarations a single doc comment on
// the group documents every name in it, matching godoc's rendering. Exit
// status is 1 when any finding is reported, 2 on usage or parse errors.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck ./... | doccheck <pkg-dir> ...")
		os.Exit(2)
	}
	var dirs []string
	for _, a := range args {
		if strings.HasSuffix(a, "...") {
			root := strings.TrimSuffix(strings.TrimSuffix(a, "..."), "/")
			if root == "" {
				root = "."
			}
			walked, err := walkDirs(root)
			if err != nil {
				fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
				os.Exit(2)
			}
			dirs = append(dirs, walked...)
		} else {
			dirs = append(dirs, a)
		}
	}
	sort.Strings(dirs)
	findings := 0
	for _, dir := range dirs {
		fs, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		for _, f := range fs {
			fmt.Println(f)
		}
		findings += len(fs)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifier(s) without doc comments\n", findings)
		os.Exit(1)
	}
}

// walkDirs lists every directory under root that contains at least one
// non-test .go file, skipping hidden directories and testdata.
func walkDirs(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				out = append(out, path)
				break
			}
		}
		return nil
	})
	return out, err
}

// lintDir parses one package directory and returns a finding line per
// undocumented exported identifier.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, file := range pkg.Files {
			if file.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc && pkg.Name != "main" {
			// Commands document themselves via their own package comment
			// too, but the convention is enforced only for libraries here;
			// main packages are still linted for their identifiers.
			findings = append(findings, fmt.Sprintf("%s: package %s has no package comment (add a doc.go)", dir, pkg.Name))
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
						report(d.Pos(), "function", funcName(d))
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	sort.Strings(findings)
	return findings, nil
}

// exportedRecv reports whether a method's receiver type is itself exported
// (methods on unexported types are internal detail, like golint treats
// them).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// funcName renders "Recv.Name" for methods and "Name" for functions.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	var recv string
	t := d.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		recv = id.Name + "."
	}
	return recv + d.Name.Name
}

// lintGenDecl checks type, const and var declarations. A doc comment on a
// parenthesised group covers the whole group; otherwise each exported spec
// needs its own doc (or trailing line comment, godoc renders both).
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			documented := groupDoc || s.Doc != nil || s.Comment != nil
			if documented {
				continue
			}
			kind := "const"
			if d.Tok == token.VAR {
				kind = "var"
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), kind, n.Name)
				}
			}
		}
	}
}
