// Command snacheck runs static noise analysis on a JSON design description
// and reports, per victim net, the total noise at the receiver and whether
// it violates the receiver's Noise Rejection Curve.
//
//	snacheck -design design.json [-method macromodel|superposition|zolotov|golden]
//	         [-align] [-workers N] [-policy fail-fast|continue] [-json]
//	         [-cache-dir DIR] [-deterministic] [-warm-start] [-predictor]
//	         [-feasibility] [-corner tt|ff|ss|fs|sf] [-nlcaps]
//	snacheck -sample > design.json     # emit a starter design
//
// Clusters are analysed concurrently on a bounded worker pool (-workers,
// default GOMAXPROCS) with a characterisation cache shared across all
// workers; per-stage timing totals are printed after the report table.
// Interrupting the run (SIGINT/SIGTERM) cancels the analysis promptly —
// mid-characterisation and mid-transient — via context cancellation.
//
// With -cache-dir the characterisation cache gains a persistent
// content-addressed tier at DIR: the first run characterises and persists
// every artefact, and later runs against the same library/options load
// them from disk instead of re-running the transistor-level sweeps. A
// damaged or unwritable store degrades to memory-only caching with a
// warning on stderr — it never changes results or blocks sign-off.
//
// With -warm-start every characterisation sweep seeds its Newton solves
// from the previous grid point's converged solution (continuation), which
// cuts characterisation time on fine grids. Each solve differs from the
// cold flow only at solver tolerance, but a flipped branch decision in
// the NRC bisection can move a curve height — and therefore a reported
// noise margin — by up to the bisection tolerance (10 mV by default).
// Warm artefacts are cached under distinct keys and never mix with cold
// ones; leave the flag off when reproducibility against earlier cold
// runs matters.
//
// With -predictor every characterisation transient seeds each timestep's
// Newton solve with a polynomial extrapolation over the previous converged
// steps (sim.Session.Predictor), typically cutting per-step Newton
// iterations by a quarter or more on glitch transients. Like -warm-start
// the mode is opt-in because results differ from the cold flow at solver
// tolerance; predictor artefacts take distinct cache and store keys.
//
// With -feasibility the FRAME-style aggressor-correlation filter runs
// before evaluation: switching windows, mutex groups and implications
// declared in the design prune unrealizable aggressor combinations, and
// each net is reported with both the classic worst-case margin and a
// bounded-realistic one (the worst *feasible* scenario at its constrained
// alignment). The table gains realistic columns and a pruning totals line;
// the JSON gains per-report "feasibility" objects and an aggregate census.
// Without the flag the output is byte-identical to the classic flow.
//
// With -corner the whole analysis runs at a named operating corner: the
// technology card is derived (supply, temperature, threshold and mobility
// shifts) before any cluster is built, characterised artefacts land under
// corner-specific cache/store keys, and every report carries a "corner"
// tag. Without the flag the analysis is nominal and the output — including
// every cache key — is byte-identical to earlier corner-less runs.
//
// With -nlcaps every cell is built with the NLMOS nonlinear gate-charge
// model: gate capacitances follow a tanh law of the instantaneous gate
// voltage instead of staying constant, and the engine re-evaluates the
// capacitor stamps inside every Newton iteration with a charge-conserving
// companion form. Reported noise changes physically (gate charge
// redistributes during a glitch), so nlcap artefacts take distinct cache
// and store keys and never mix with constant-cap ones. Without the flag
// the output is byte-identical to earlier runs.
//
// With -json the report is emitted as a single machine-readable JSON
// document whose reports and summary use the stable schema of the public
// stanoise.NetReport and stanoise.Summary types (margins that are +Inf,
// i.e. unfailable, appear as null). With -policy continue every cluster is
// analysed even after failures and each failure is listed with its cluster
// and pipeline stage. With -deterministic the JSON omits everything that
// legitimately varies between identical runs — wall-clock timings and
// cache counters — so a cold and a warm -cache-dir run of the same design
// produce byte-identical documents (CI asserts exactly that).
//
// Exit codes (stable, for sign-off scripting):
//
//	0  every net was analysed and passes its NRC (also: empty design)
//	1  analysis error (bad design file, cluster failure, interrupted run)
//	2  usage error (bad flags)
//	3  the analysis completed and one or more nets violate their NRC
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"syscall"
	"text/tabwriter"
	"time"

	"stanoise"
)

func main() {
	designPath := flag.String("design", "", "design JSON file")
	method := flag.String("method", "macromodel", "victim model: macromodel, superposition, zolotov, golden")
	align := flag.Bool("align", true, "search worst-case aggressor alignment")
	dt := flag.Float64("dt-ps", 2, "engine timestep in ps")
	workers := flag.Int("workers", 0, "concurrent cluster workers (0 = GOMAXPROCS)")
	policy := flag.String("policy", "fail-fast", "error policy: fail-fast or continue (analyse every cluster, collect failures)")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report on stdout")
	cacheDir := flag.String("cache-dir", "", "persistent characterisation store directory (warm runs skip all transistor-level sweeps)")
	deterministic := flag.Bool("deterministic", false, "omit run-varying fields (timings, cache counters) from -json output")
	warmStart := flag.Bool("warm-start", false, "seed characterisation Newton solves from the previous grid point (faster; solver-tolerance differences vs the cold flow, NRC heights within their bisection tolerance)")
	predictor := flag.Bool("predictor", false, "seed each transient timestep's Newton solve with a polynomial extrapolation over previous steps (fewer iterations per step; solver-tolerance differences vs the cold flow)")
	feasibility := flag.Bool("feasibility", false, "prune unrealizable aggressor combinations via switching windows and logic constraints; report realistic margins next to worst-case ones")
	corner := flag.String("corner", "", "operating corner to analyse at: tt, ff, ss, fs or sf (default nominal; reports gain a corner tag)")
	nlcaps := flag.Bool("nlcaps", false, "model gate capacitances as voltage-dependent (NLMOS tanh gate-charge model; distinct cache/store keys, physically different noise)")
	sample := flag.Bool("sample", false, "print a sample design JSON and exit")
	flag.Parse()

	if *sample {
		if err := stanoise.SampleDesign().WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "snacheck: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *designPath == "" {
		fmt.Fprintln(os.Stderr, "snacheck: -design is required (see -sample)")
		os.Exit(2)
	}
	m, err := stanoise.ParseMethod(*method)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snacheck: %v\n", err)
		os.Exit(2)
	}
	pol, err := stanoise.ParseErrorPolicy(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snacheck: %v\n", err)
		os.Exit(2)
	}
	crn, err := stanoise.CornerByName(*corner)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snacheck: %v\n", err)
		os.Exit(2)
	}
	f, err := os.Open(*designPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snacheck: %v\n", err)
		os.Exit(1)
	}
	design, err := stanoise.ParseDesign(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "snacheck: %v\n", err)
		os.Exit(1)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	an := stanoise.NewAnalyzer(design, stanoise.Options{
		Method:      m,
		Align:       *align,
		Dt:          *dt * 1e-12,
		Workers:     *workers,
		OnError:     pol,
		CacheDir:    *cacheDir,
		WarmStart:   *warmStart,
		Predictor:   *predictor,
		Feasibility: *feasibility,
		Corner:      crn,

		NonlinearCaps: *nlcaps,
	})
	if err := an.StoreError(); err != nil {
		fmt.Fprintf(os.Stderr, "snacheck: warning: %v (continuing without a persistent cache)\n", err)
	}
	wall := time.Now()
	reports, err := an.Analyze(ctx)
	elapsed := time.Since(wall)
	clusterErrs := collectClusterErrors(err)
	if err != nil && len(clusterErrs) == 0 {
		// Not a per-cluster failure: cancellation or an internal error.
		fmt.Fprintf(os.Stderr, "snacheck: %v\n", err)
		os.Exit(1)
	}

	if *jsonOut {
		writeJSON(design, an, m, pol, reports, clusterErrs, elapsed, *deterministic, *feasibility)
	} else {
		writeText(design, an, m, reports, clusterErrs, elapsed, *feasibility)
	}
	switch {
	case len(clusterErrs) > 0:
		os.Exit(1)
	case stanoise.Summarize(reports).Failing > 0:
		os.Exit(3)
	}
}

// collectClusterErrors flattens an Analyze error — a single *ClusterError
// under fail-fast, or an errors.Join of them under -policy continue — into
// the list of typed per-cluster failures. Non-cluster errors (notably
// context cancellation) yield an empty list.
func collectClusterErrors(err error) []*stanoise.ClusterError {
	if err == nil {
		return nil
	}
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		var out []*stanoise.ClusterError
		for _, e := range joined.Unwrap() {
			out = append(out, collectClusterErrors(e)...)
		}
		return out
	}
	var cerr *stanoise.ClusterError
	if errors.As(err, &cerr) {
		return []*stanoise.ClusterError{cerr}
	}
	return nil
}

func writeText(design *stanoise.Design, an *stanoise.Analyzer, m stanoise.Method,
	reports []stanoise.NetReport, clusterErrs []*stanoise.ClusterError, elapsed time.Duration, feasibility bool) {
	fmt.Printf("static noise analysis of %q (%s victim model)\n", design.Name, m)
	if len(reports) > 0 {
		tw := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
		header := "cluster\trecv peak (V)\tarea (V·ps)\twidth (ps)\tDP peak (V)\tNRC\tmargin (V)\ttime"
		if feasibility {
			header = "cluster\trecv peak (V)\tarea (V·ps)\twidth (ps)\tDP peak (V)\tNRC\tmargin (V)\treal peak (V)\treal margin (V)\tpruned\ttime"
		}
		fmt.Fprintln(tw, header)
		for _, r := range reports {
			status := "pass"
			if r.Fails {
				status = "FAIL"
			}
			margin := fmt.Sprintf("%.3f", r.MarginV)
			if math.IsInf(r.MarginV, 1) {
				margin = "inf"
			}
			if feasibility && r.Feasibility != nil {
				fr := r.Feasibility
				if fr.RealisticFails {
					status = "FAIL"
				} else if r.Fails {
					// Classic worst case fails but no feasible scenario
					// does: a false violation the filter retired.
					status = "pass*"
				}
				rmargin := fmt.Sprintf("%.3f", fr.RealisticMarginV)
				if math.IsInf(fr.RealisticMarginV, 1) {
					rmargin = "inf"
				}
				fmt.Fprintf(tw, "%s\t%.3f\t%.1f\t%.0f\t%.3f\t%s\t%s\t%.3f\t%s\t%d/%d\t%s\n",
					r.Cluster, r.PeakV, r.AreaVps, r.WidthPs, r.DPPeakV,
					status, margin, fr.RealisticPeakV, rmargin, fr.Pruned, fr.Combos,
					r.Elapsed.Round(1e5).String())
				continue
			}
			fmt.Fprintf(tw, "%s\t%.3f\t%.1f\t%.0f\t%.3f\t%s\t%s\t%s\n",
				r.Cluster, r.PeakV, r.AreaVps, r.WidthPs, r.DPPeakV,
				status, margin, r.Elapsed.Round(1e5).String())
		}
		tw.Flush()
	}
	for _, ce := range clusterErrs {
		fmt.Printf("ERROR  %s (stage %s): %v\n", ce.Cluster, ce.Stage, ce.Err)
	}
	s := stanoise.Summarize(reports)
	fmt.Printf("\n%s\n", s)
	if feasibility {
		ft := sumFeasibility(reports)
		fmt.Printf("feasibility: %d of %d aggressor combinations pruned; %d scenarios evaluated; realistic failures %d of %d classic\n",
			ft.Pruned, ft.Combos, ft.Scenarios, ft.realFailing, s.Failing)
	}
	if s.Total == 0 && len(clusterErrs) == 0 {
		return
	}

	var stages stanoise.StageTiming
	for _, r := range reports {
		stages.Add(r.Timing)
	}
	cs := an.CacheStats()
	if feasibility {
		fmt.Printf("stage totals: build %s, characterise %s, feasibility %s, align %s, evaluate %s, nrc %s (sum %s over %d workers; wall %s)\n",
			stages.Build.Round(time.Millisecond), stages.Models.Round(time.Millisecond),
			stages.Feas.Round(time.Millisecond),
			stages.Align.Round(time.Millisecond), stages.Eval.Round(time.Millisecond),
			stages.NRC.Round(time.Millisecond), stages.Total().Round(time.Millisecond),
			an.Workers(), elapsed.Round(time.Millisecond))
	} else {
		fmt.Printf("stage totals: build %s, characterise %s, align %s, evaluate %s, nrc %s (sum %s over %d workers; wall %s)\n",
			stages.Build.Round(time.Millisecond), stages.Models.Round(time.Millisecond),
			stages.Align.Round(time.Millisecond), stages.Eval.Round(time.Millisecond),
			stages.NRC.Round(time.Millisecond), stages.Total().Round(time.Millisecond),
			an.Workers(), elapsed.Round(time.Millisecond))
	}
	fmt.Printf("characterisation cache: %d artefacts, %d hits, %d misses (%d served from disk)\n",
		cs.Entries, cs.Hits, cs.Misses, cs.DiskHits)
}

// feasTotals is the design-level feasibility census: the summed FeasReport
// counters plus the realistic failure count. It is both the JSON aggregate
// ("feasibility" in the -json document) and the source of the text totals
// line.
type feasTotals struct {
	Combos    int64 `json:"combos"`
	Feasible  int64 `json:"feasible"`
	Pruned    int64 `json:"pruned"`
	Scenarios int   `json:"scenarios"`
	Failing   int   `json:"failing"`

	realFailing int
}

func sumFeasibility(reports []stanoise.NetReport) feasTotals {
	var t feasTotals
	for _, r := range reports {
		if r.Feasibility == nil {
			continue
		}
		t.Combos += r.Feasibility.Combos
		t.Feasible += r.Feasibility.Feasible
		t.Pruned += r.Feasibility.Pruned
		t.Scenarios += r.Feasibility.Scenarios
		if r.Feasibility.RealisticFails {
			t.realFailing++
		}
	}
	t.Failing = t.realFailing
	return t
}

// jsonReport is the top-level document of snacheck -json. Reports, errors
// and summary serialise through the stable schemas of the public types.
// Cache and ElapsedNs are absent under -deterministic (they are the only
// fields that legitimately differ between identical runs).
type jsonReport struct {
	Design      string                   `json:"design"`
	Method      stanoise.Method          `json:"method"`
	Policy      string                   `json:"policy"`
	Workers     int                      `json:"workers"`
	Reports     []stanoise.NetReport     `json:"reports"`
	Errors      []*stanoise.ClusterError `json:"errors,omitempty"`
	Summary     stanoise.Summary         `json:"summary"`
	Feasibility *feasTotals              `json:"feasibility,omitempty"`
	Cache       *stanoise.CacheStats     `json:"cache,omitempty"`
	ElapsedNs   int64                    `json:"elapsed_ns,omitempty"`
}

func writeJSON(design *stanoise.Design, an *stanoise.Analyzer, m stanoise.Method, pol stanoise.ErrorPolicy,
	reports []stanoise.NetReport, clusterErrs []*stanoise.ClusterError, elapsed time.Duration, deterministic, feasibility bool) {
	doc := jsonReport{
		Design:  design.Name,
		Method:  m,
		Policy:  pol.String(),
		Workers: an.Workers(),
		Reports: reports,
		Errors:  clusterErrs,
		Summary: stanoise.Summarize(reports),
	}
	if feasibility {
		ft := sumFeasibility(reports)
		doc.Feasibility = &ft
	}
	if deterministic {
		for i := range doc.Reports {
			doc.Reports[i].ClearTiming()
		}
	} else {
		cs := an.CacheStats()
		doc.Cache = &cs
		doc.ElapsedNs = elapsed.Nanoseconds()
	}
	if doc.Reports == nil {
		doc.Reports = []stanoise.NetReport{}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "snacheck: encoding report: %v\n", err)
		os.Exit(1)
	}
}
