// Command snacheck runs static noise analysis on a JSON design description
// and reports, per victim net, the total noise at the receiver and whether
// it violates the receiver's Noise Rejection Curve.
//
//	snacheck -design design.json [-method macromodel|superposition|zolotov|golden] [-align] [-workers N]
//	snacheck -sample > design.json     # emit a starter design
//
// Clusters are analysed concurrently on a bounded worker pool (-workers,
// default GOMAXPROCS) with a characterisation cache shared across all
// workers; per-stage timing totals are printed after the report table.
//
// The exit status is 0 when all nets pass, 1 on analysis errors, and 3 when
// one or more nets violate their NRC — suitable for sign-off scripting.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"stanoise/internal/core"
	"stanoise/internal/report"
	"stanoise/internal/sna"
)

func main() {
	designPath := flag.String("design", "", "design JSON file")
	method := flag.String("method", "macromodel", "victim model: macromodel, superposition, zolotov, golden")
	align := flag.Bool("align", true, "search worst-case aggressor alignment")
	dt := flag.Float64("dt-ps", 2, "engine timestep in ps")
	workers := flag.Int("workers", 0, "concurrent cluster workers (0 = GOMAXPROCS)")
	sample := flag.Bool("sample", false, "print a sample design JSON and exit")
	flag.Parse()

	if *sample {
		if err := sampleDesign().WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "snacheck: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *designPath == "" {
		fmt.Fprintln(os.Stderr, "snacheck: -design is required (see -sample)")
		os.Exit(2)
	}
	m, err := parseMethod(*method)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snacheck: %v\n", err)
		os.Exit(2)
	}
	f, err := os.Open(*designPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snacheck: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	design, err := sna.ParseDesign(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snacheck: %v\n", err)
		os.Exit(1)
	}

	an := sna.NewAnalyzer(design, sna.Options{
		Method:  m,
		Align:   *align,
		Dt:      *dt * 1e-12,
		Workers: *workers,
	})
	wall := time.Now()
	reports, err := an.Analyze()
	if err != nil {
		fmt.Fprintf(os.Stderr, "snacheck: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(wall)

	t := &report.Table{
		Title:   fmt.Sprintf("static noise analysis of %q (%s victim model)", design.Name, m),
		Headers: []string{"cluster", "recv peak (V)", "area (V·ps)", "width (ps)", "DP peak (V)", "NRC", "margin (V)", "time"},
	}
	for _, r := range reports {
		status := "pass"
		if r.Fails {
			status = "FAIL"
		}
		margin := fmt.Sprintf("%.3f", r.MarginV)
		if math.IsInf(r.MarginV, 1) {
			margin = "inf"
		}
		t.AddRow(r.Cluster,
			fmt.Sprintf("%.3f", r.PeakV),
			fmt.Sprintf("%.1f", r.AreaVps),
			fmt.Sprintf("%.0f", r.WidthPs),
			fmt.Sprintf("%.3f", r.DPPeakV),
			status, margin, r.Elapsed.Round(1e5).String())
	}
	if err := t.Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "snacheck: %v\n", err)
		os.Exit(1)
	}
	s := sna.Summarize(reports)
	fmt.Printf("\n%d nets analysed, %d failing; worst margin %.3f V (%s)\n",
		s.Total, s.Failing, s.WorstMarginV, s.WorstCluster)

	var stages sna.StageTiming
	for _, r := range reports {
		stages.Add(r.Timing)
	}
	nw := an.Workers()
	cs := an.CacheStats()
	fmt.Printf("stage totals: build %s, characterise %s, align %s, evaluate %s, nrc %s (sum %s over %d workers; wall %s)\n",
		stages.Build.Round(time.Millisecond), stages.Models.Round(time.Millisecond),
		stages.Align.Round(time.Millisecond), stages.Eval.Round(time.Millisecond),
		stages.NRC.Round(time.Millisecond), stages.Total().Round(time.Millisecond), nw, elapsed.Round(time.Millisecond))
	fmt.Printf("characterisation cache: %d artefacts, %d hits, %d misses\n", cs.Entries, cs.Hits, cs.Misses)
	if s.Failing > 0 {
		os.Exit(3)
	}
}

func parseMethod(s string) (core.Method, error) {
	switch s {
	case "macromodel":
		return core.Macromodel, nil
	case "superposition":
		return core.Superposition, nil
	case "zolotov":
		return core.Zolotov, nil
	case "golden":
		return core.Golden, nil
	}
	return 0, fmt.Errorf("unknown method %q", s)
}

// sampleDesign is a ready-to-run starter: one dangerous cluster and one
// comfortable one, mirroring the paper's Table 1/2 setups.
func sampleDesign() *sna.Design {
	return &sna.Design{
		Name:     "sample",
		Tech:     "cmos130",
		Layer:    "M4",
		Segments: 15,
		Clusters: []sna.ClusterSpec{
			{
				Name: "bus_bit7",
				Victim: sna.VictimSpec{
					Cell: "NAND2", Drive: 1, NoisyPin: "B",
					GlitchHeightV: 0.7, GlitchWidthPs: 400,
					LengthUm: 500,
				},
				Aggressors: []sna.AggressorSpec{
					{Cell: "INV", Drive: 2, FromState: map[string]bool{"A": false},
						SwitchPin: "A", LengthUm: 500, Side: "left"},
					{Cell: "INV", Drive: 2, FromState: map[string]bool{"A": false},
						SwitchPin: "A", LengthUm: 500, Side: "right"},
				},
			},
			{
				Name: "ctrl_en",
				Victim: sna.VictimSpec{
					Cell: "INV", Drive: 2, NoisyPin: "A",
					LengthUm: 200,
				},
				Aggressors: []sna.AggressorSpec{
					{Cell: "INV", Drive: 1, FromState: map[string]bool{"A": false},
						SwitchPin: "A", LengthUm: 200, SpacingFactor: 2},
				},
			},
		},
	}
}
