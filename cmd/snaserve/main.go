// Command snaserve hosts the static noise analysis engine as an HTTP
// server: clients POST designs in the snacheck JSON schema and receive
// per-net verdicts streamed back in completion order.
//
//	snaserve [-addr :8347] [-cache-dir DIR] [-lease-ttl 2m]
//	         [-max-inflight N] [-max-clusters N] [-max-body-bytes N]
//	         [-default-deadline D] [-max-deadline D] [-retry-after-cap D]
//	         [-fleet N] [-workers N] [-warm-start] [-predictor] [-feasibility]
//	         [-corner tt|ff|ss|fs|sf] [-nlcaps]
//	         [-rig-pool-rigs N] [-rig-pool-bytes N]
//
// Endpoints (see internal/serve for the full protocol):
//
//	POST /v1/analyze    analyse an embedded design; NDJSON (or SSE) stream
//	GET  /healthz       liveness probe
//	GET  /statsz        cache / store / engine / admission counters
//	POST /invalidate    drop all pooled compiled benches
//
// Analysis defaults match the snacheck CLI — macromodel victim model,
// alignment search on, 2 ps timestep, fail-fast error policy — and every
// request can override them (method, policy, align, dt_ps, deadline_ms,
// max_clusters, deterministic, warm_start, predictor, feasibility and
// nonlinear_caps fields of the
// request object, plus "corner" to analyse at a named operating corner —
// unknown names get a typed "bad_corner" 400, and per-corner cache and
// solver counters appear under "corners" in /statsz). With -feasibility
// (or the per-request knob) the
// aggressor-correlation filter prunes unrealizable noise scenarios and
// report records carry bounded-realistic margins; a design whose
// constraints are malformed or self-contradictory is rejected with a
// typed "bad_design" 400.
//
// With -cache-dir several snaserve processes may share one directory: the
// persistent store is safe under concurrent writers, and cross-process
// build leases (TTL -lease-ttl) single-flight each characterisation so N
// cold servers perform each transistor-level sweep exactly once between
// them.
//
// Overload degrades gracefully: past -max-inflight concurrent requests
// the server answers 429 with a Retry-After hint that doubles while the
// server stays saturated (clamped at -retry-after-cap) and resets once a
// slot frees, designs beyond
// -max-clusters get 413, and a request whose deadline (its own
// deadline_ms, default -default-deadline, clamped to -max-deadline)
// expires receives the verdicts computed so far plus a terminal
// {"type":"terminal","error":{"code":"deadline"}} record.
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight streams
// finish (bounded by -shutdown-grace), new connections are refused.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stanoise/internal/core"
	"stanoise/internal/serve"
	"stanoise/internal/sna"
	"stanoise/internal/tech"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "snaserve: %v\n", err)
		os.Exit(1)
	}
}

// run parses flags, builds the server and serves until SIGINT/SIGTERM.
func run() error {
	addr := flag.String("addr", ":8347", "listen address")
	cacheDir := flag.String("cache-dir", "", "persistent characterisation store directory (shareable between snaserve processes)")
	leaseTTL := flag.Duration("lease-ttl", 0, "cross-process build-lease time-to-live (0 = default 2m)")
	maxInFlight := flag.Int("max-inflight", 8, "concurrently admitted requests before 429")
	maxClusters := flag.Int("max-clusters", 0, "per-request cluster budget (0 = unlimited)")
	maxBodyBytes := flag.Int64("max-body-bytes", 8<<20, "request body size limit in bytes")
	defaultDeadline := flag.Duration("default-deadline", 0, "analysis deadline for requests that name none (0 = none)")
	maxDeadline := flag.Duration("max-deadline", 0, "clamp on every request's deadline (0 = unclamped)")
	fleet := flag.Int("fleet", 0, "fleet-wide concurrent cluster evaluations across all requests (0 = GOMAXPROCS, -1 = unbounded)")
	workers := flag.Int("workers", 0, "per-request concurrent cluster workers (0 = GOMAXPROCS)")
	warmStart := flag.Bool("warm-start", false, "default the warm-start continuation mode on (requests can still override)")
	predictor := flag.Bool("predictor", false, "default the polynomial transient predictor on (requests can still override)")
	feasibility := flag.Bool("feasibility", false, "default the aggressor-correlation feasibility filter on (requests can still override)")
	corner := flag.String("corner", "", "default operating corner: tt, ff, ss, fs or sf (requests can still override)")
	nlcaps := flag.Bool("nlcaps", false, "default the NLMOS nonlinear gate-charge model on (requests can still override)")
	retryAfterCap := flag.Duration("retry-after-cap", 0, "clamp on the saturation-derived Retry-After hint (0 = default 8s)")
	rigPoolRigs := flag.Int("rig-pool-rigs", 0, "compiled benches retained per worker pool (0 = default)")
	rigPoolBytes := flag.Int64("rig-pool-bytes", 0, "estimated bytes of compiled benches retained per worker pool (0 = unbounded)")
	shutdownGrace := flag.Duration("shutdown-grace", 30*time.Second, "how long in-flight streams may finish after SIGINT/SIGTERM")
	flag.Parse()

	crn, err := tech.CornerByName(*corner)
	if err != nil {
		return err
	}
	srv := serve.NewServer(serve.Config{
		Analysis: sna.Options{
			Method:      core.Macromodel,
			Align:       true,
			Workers:     *workers,
			CacheDir:    *cacheDir,
			WarmStart:   *warmStart,
			Predictor:   *predictor,
			Feasibility: *feasibility,
			Corner:      crn,

			NonlinearCaps: *nlcaps,
			RigPoolLimits: core.RigPoolLimits{
				MaxRigs:  *rigPoolRigs,
				MaxBytes: *rigPoolBytes,
			},
		},
		MaxInFlight:     *maxInFlight,
		MaxClusters:     *maxClusters,
		MaxBodyBytes:    *maxBodyBytes,
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
		FleetWorkers:    *fleet,
		RetryAfterCap:   *retryAfterCap,
	})
	if err := srv.StoreError(); err != nil {
		fmt.Fprintf(os.Stderr, "snaserve: warning: %v (continuing without a persistent cache)\n", err)
	}
	if *leaseTTL > 0 {
		if st := srv.Store(); st != nil {
			st.SetLeaseTTL(*leaseTTL)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address line is the startup handshake smoke scripts and
	// tests wait for (it differs from -addr when the port was 0).
	fmt.Printf("snaserve: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
