.title RC low-pass smoke netlist
* 1 kOhm into 1 pF: tau = 1 ns. The input steps 0 -> 1 V in 1 ps.
V1 in 0 PWL(0 0 1p 1)
R1 in out 1k
C1 out 0 1p
.end
