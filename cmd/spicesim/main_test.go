package main

import (
	"context"
	"math"
	"strconv"
	"strings"
	"testing"
)

// TestRunDC smoke-tests the -dc path on the committed RC netlist: with the
// step source at its t=0 value (0 V) the whole divider sits at 0 V.
func TestRunDC(t *testing.T) {
	var out, errb strings.Builder
	if err := run(context.Background(), []string{"-dc", "testdata/rc.sp"}, &out, &errb); err != nil {
		t.Fatalf("run -dc: %v (stderr: %s)", err, errb.String())
	}
	got := out.String()
	for _, want := range []string{"v(in) = ", "v(out) = "} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunTransientCSV runs the transient path and checks the CSV output
// physically: the RC output must settle to ~1 V within 5 tau.
func TestRunTransientCSV(t *testing.T) {
	var out, errb strings.Builder
	err := run(context.Background(),
		[]string{"-tstop", "5n", "-dt", "5p", "-probe", "out", "testdata/rc.sp"}, &out, &errb)
	if err != nil {
		t.Fatalf("run transient: %v (stderr: %s)", err, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[0] != "t,out" {
		t.Fatalf("header = %q, want \"t,out\"", lines[0])
	}
	if len(lines) < 100 {
		t.Fatalf("only %d CSV rows", len(lines))
	}
	last := strings.Split(lines[len(lines)-1], ",")
	v, perr := strconv.ParseFloat(last[1], 64)
	if perr != nil {
		t.Fatal(perr)
	}
	if math.Abs(v-1) > 0.01 {
		t.Errorf("settled v(out) = %v, want ~1", v)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb strings.Builder
	if err := run(context.Background(), []string{}, &out, &errb); err != errUsage {
		t.Errorf("no args: err = %v, want errUsage", err)
	}
	if err := run(context.Background(), []string{"testdata/missing.sp"}, &out, &errb); err == nil {
		t.Error("missing netlist should fail")
	}
	if err := run(context.Background(), []string{"-probe", "nope", "testdata/rc.sp"}, &out, &errb); err == nil {
		t.Error("unknown probe node should fail")
	}
	if err := run(context.Background(), []string{"-tstop", "zzz", "testdata/rc.sp"}, &out, &errb); err == nil {
		t.Error("bad -tstop should fail")
	}
}

func TestRunHelpExitsClean(t *testing.T) {
	var out, errb strings.Builder
	if err := run(context.Background(), []string{"-h"}, &out, &errb); err != nil {
		t.Errorf("-h should succeed (exit 0), got %v", err)
	}
	if !strings.Contains(errb.String(), "-probe") {
		t.Errorf("help output missing flag docs:\n%s", errb.String())
	}
}
