// Command spicesim runs the repository's transistor-level simulator (the
// golden ELDO stand-in) on a SPICE-subset netlist.
//
//	spicesim -dc circuit.sp                   # operating point
//	spicesim -tstop 2n -dt 1p -probe out circuit.sp   # transient, CSV to stdout
//
// With -stats a solver-counter line is printed to stderr after the run
// (key=value pairs: dc_solves, transients, newton_iters,
// linear_fast_path_runs, transient_steps, predictor_seeds). CI greps it to
// assert that a pure-RC transient takes the linear fast path with zero
// Newton iterations.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"stanoise/internal/circuit"
	"stanoise/internal/sim"
)

func main() {
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err == errUsage {
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "spicesim: %v\n", err)
		os.Exit(1)
	}
}

var errUsage = fmt.Errorf("usage")

// run parses flags and executes the requested analysis, writing results to
// stdout. It is the testable core of the command.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("spicesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dc := fs.Bool("dc", false, "compute the DC operating point only")
	tstop := fs.String("tstop", "2n", "transient stop time (with engineering suffix)")
	dt := fs.String("dt", "1p", "transient step (with engineering suffix)")
	probe := fs.String("probe", "", "comma-separated node names to print (default: all)")
	stats := fs.Bool("stats", false, "print solver counters (Newton iterations, fast-path runs) to stderr after the run")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errUsage
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: spicesim [flags] netlist.sp")
		return errUsage
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	ckt, err := circuit.Parse(f)
	if err != nil {
		return err
	}

	// Validate probes before spending any solve time.
	nodes, err := probeList(ckt, *probe)
	if err != nil {
		return err
	}

	before := sim.Snapshot()
	defer func() {
		if *stats {
			writeStats(stderr, sim.Snapshot().Sub(before))
		}
	}()

	if *dc {
		res, err := sim.DC(ckt, sim.Options{})
		if err != nil {
			return err
		}
		for _, n := range nodes {
			fmt.Fprintf(stdout, "v(%s) = %.6g\n", n, res.NodeV(n))
		}
		return nil
	}

	stop, err := parseEng(*tstop)
	if err != nil {
		return fmt.Errorf("bad -tstop: %w", err)
	}
	step, err := parseEng(*dt)
	if err != nil {
		return fmt.Errorf("bad -dt: %w", err)
	}
	res, err := sim.Transient(ctx, ckt, sim.Options{Dt: step, TStop: stop})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "t,%s\n", strings.Join(nodes, ","))
	for i, t := range res.Times {
		fmt.Fprintf(stdout, "%.6g", t)
		for _, n := range nodes {
			fmt.Fprintf(stdout, ",%.6g", res.At(n, i))
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

// writeStats prints the run's solver-counter delta as a single grep-able
// key=value line.
func writeStats(w io.Writer, c sim.Counters) {
	fmt.Fprintf(w, "stats: dc_solves=%d transients=%d newton_iters=%d linear_fast_path_runs=%d transient_steps=%d predictor_seeds=%d\n",
		c.DC, c.Transient, c.NewtonIters, c.LinearFastPathRuns, c.TransientSteps, c.PredictorSeeds)
}

func probeList(ckt *circuit.Circuit, probe string) ([]string, error) {
	if probe == "" {
		return ckt.NodeNames(), nil
	}
	var out []string
	for _, n := range strings.Split(probe, ",") {
		n = strings.TrimSpace(n)
		if _, ok := ckt.LookupNode(n); !ok {
			return nil, fmt.Errorf("unknown probe node %q", n)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseEng parses a time value with engineering suffix via a one-line
// netlist trick: reuse the circuit parser's number grammar.
func parseEng(s string) (float64, error) {
	ckt, err := circuit.Parse(strings.NewReader("V1 a 0 DC " + s + "\nR1 a 0 1\n.end\n"))
	if err != nil {
		return 0, fmt.Errorf("invalid value %q", s)
	}
	return ckt.VSources[0].W.At(0), nil
}
