// Command spicesim runs the repository's transistor-level simulator (the
// golden ELDO stand-in) on a SPICE-subset netlist.
//
//	spicesim -dc circuit.sp                   # operating point
//	spicesim -tstop 2n -dt 1p -probe out circuit.sp   # transient, CSV to stdout
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"stanoise/internal/circuit"
	"stanoise/internal/sim"
)

func main() {
	dc := flag.Bool("dc", false, "compute the DC operating point only")
	tstop := flag.String("tstop", "2n", "transient stop time (with engineering suffix)")
	dt := flag.String("dt", "1p", "transient step (with engineering suffix)")
	probe := flag.String("probe", "", "comma-separated node names to print (default: all)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: spicesim [flags] netlist.sp")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	defer f.Close()
	ckt, err := circuit.Parse(f)
	if err != nil {
		fail(err)
	}

	if *dc {
		res, err := sim.DC(ckt, sim.Options{})
		if err != nil {
			fail(err)
		}
		for _, n := range probeList(ckt, *probe) {
			fmt.Printf("v(%s) = %.6g\n", n, res.NodeV(n))
		}
		return
	}

	stop, err := parseEng(*tstop)
	if err != nil {
		fail(fmt.Errorf("bad -tstop: %w", err))
	}
	step, err := parseEng(*dt)
	if err != nil {
		fail(fmt.Errorf("bad -dt: %w", err))
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	res, err := sim.Transient(ctx, ckt, sim.Options{Dt: step, TStop: stop})
	if err != nil {
		fail(err)
	}
	nodes := probeList(ckt, *probe)
	fmt.Printf("t,%s\n", strings.Join(nodes, ","))
	for i, t := range res.Times {
		fmt.Printf("%.6g", t)
		for _, n := range nodes {
			fmt.Printf(",%.6g", res.At(n, i))
		}
		fmt.Println()
	}
}

func probeList(ckt *circuit.Circuit, probe string) []string {
	if probe == "" {
		return ckt.NodeNames()
	}
	var out []string
	for _, n := range strings.Split(probe, ",") {
		n = strings.TrimSpace(n)
		if _, ok := ckt.LookupNode(n); !ok {
			fail(fmt.Errorf("unknown probe node %q", n))
		}
		out = append(out, n)
	}
	return out
}

// parseEng parses a time value with engineering suffix via a one-line
// netlist trick: reuse the circuit parser's number grammar.
func parseEng(s string) (float64, error) {
	ckt, err := circuit.Parse(strings.NewReader("V1 a 0 DC " + s + "\nR1 a 0 1\n.end\n"))
	if err != nil {
		return 0, fmt.Errorf("invalid value %q", s)
	}
	return ckt.VSources[0].W.At(0), nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "spicesim: %v\n", err)
	os.Exit(1)
}
