// Command libchar pre-characterises library cells for noise analysis and
// writes the result as a JSON library: the non-linear VCCS load-curve
// tables of the paper's eq. (1) and, optionally, the propagation tables
// used by traditional superposition-based flows.
//
//	libchar -tech cmos130 -cell NAND2 -pin B -out nand2.json
//	libchar -tech cmos090 -all -out lib90.json
//
// With -cache-dir every characterised artefact is also persisted to a
// content-addressed store, so a later snacheck/noisetab run pointed at the
// same directory starts warm — libchar is the offline library step of the
// paper's flow. A whole precharacterised library travels between machines
// as a portable bundle:
//
//	libchar -tech cmos130 -all -prop -cache-dir ./noise-lib     # precharacterise
//	libchar -cache-dir ./noise-lib -export-store lib130.bundle  # pack it up
//	libchar -cache-dir /fresh/dir  -import-store lib130.bundle  # unpack elsewhere
//
// Bundles carry the model version they were built under; importing a
// bundle from a different model generation is refused (recharacterise
// instead), and individual damaged entries are skipped, never fatal.
//
// With -warm-start each sweep point's Newton solve is seeded from the
// previous point's converged solution (continuation), cutting total
// iterations substantially on fine grids. Warm artefacts differ from cold
// ones at solver-tolerance level and are stored under distinct cache
// keys.
//
// With -predictor the transient sweeps behind -prop seed each timestep's
// Newton solve with a polynomial extrapolation over the previous converged
// steps (sim.Session.Predictor), cutting per-step iterations; load-curve
// characterisation is DC-only and unaffected. Predictor artefacts also
// take distinct cache and store keys.
//
// With -nlcaps characterisation runs against the NLMOS nonlinear
// gate-charge card (tech.Tech.WithNonlinearCaps): gate capacitances follow
// a tanh law of the gate voltage and transient sweeps re-stamp them every
// Newton iteration. The artefacts are physically different from
// constant-cap ones and take distinct cache and store keys, so a shared
// -cache-dir serves both model families without mixing.
//
// # Corner-matrix and Monte Carlo farm
//
// -corners and/or -mc-samples switch libchar into farm mode: every cell is
// characterised at every requested operating corner (and sampled
// Monte Carlo variation), fanned out across -workers, with one library
// file per corner:
//
//	libchar -tech cmos130 -all -corners tt,ss,ff -warm-start -out lib.json
//	  → lib.tt.json, lib.ss.json, lib.ff.json
//	libchar -tech cmos130 -cell INV -mc-samples 100 -mc-seed 7 -out mc.json
//	  → mc.mc0000.json ... mc.mc0099.json
//
// Corners are solved in continuation order and, with -warm-start, each
// non-nominal corner's sweep is seeded from its neighbour's converged
// state (adjacent-corner continuation), so the whole matrix costs far
// fewer Newton iterations than characterising each corner cold. The
// nominal (tt) corner's artefacts are byte-identical to a plain
// single-corner run, so a shared -cache-dir serves both. -stats-out
// writes the per-corner work and cache counters as JSON for scripted
// assertions (CI holds the warm-rerun-zero-solves and
// continuation-cuts-iterations properties on exactly this output).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"stanoise/internal/cell"
	"stanoise/internal/charlib"
	"stanoise/internal/charstore"
	"stanoise/internal/tech"
)

func main() {
	techName := flag.String("tech", "cmos130", "technology: cmos130 or cmos090")
	cellKind := flag.String("cell", "", "cell kind (INV, NAND2, ...); empty with -all characterises everything")
	drive := flag.Int("drive", 1, "drive strength")
	pin := flag.String("pin", "", "noisy input pin (default: first input)")
	all := flag.Bool("all", false, "characterise every cell kind and input pin")
	withProp := flag.Bool("prop", false, "also build propagation tables (slow)")
	grid := flag.Int("grid", 61, "load-curve grid points per axis")
	warmStart := flag.Bool("warm-start", false, "seed each sweep point's Newton solve from the previous point (faster on fine grids; solver-tolerance differences vs the cold flow)")
	predictor := flag.Bool("predictor", false, "seed each transient timestep's Newton solve with a polynomial extrapolation over previous steps (fewer iterations per step on -prop sweeps; solver-tolerance differences vs the cold flow)")
	nlcaps := flag.Bool("nlcaps", false, "characterise with the NLMOS voltage-dependent gate-charge model (distinct cache/store keys, physically different artefacts)")
	out := flag.String("out", "", "output JSON path (default stdout); farm mode inserts the corner name before the extension")
	cacheDir := flag.String("cache-dir", "", "persist characterised artefacts to a content-addressed store at this directory")
	exportStore := flag.String("export-store", "", "write the whole -cache-dir store as a portable bundle to this path and exit")
	importStore := flag.String("import-store", "", "import a bundle into -cache-dir and exit")
	cornerList := flag.String("corners", "", "comma-separated standard corners to farm over (tt,ff,ss,fs,sf); enables farm mode")
	mcSamples := flag.Int("mc-samples", 0, "number of Monte Carlo corner samples to farm over; enables farm mode")
	mcSeed := flag.Int64("mc-seed", 1, "Monte Carlo sampler seed (same seed, same corners)")
	workers := flag.Int("workers", 0, "farm worker goroutines (0 = GOMAXPROCS)")
	statsOut := flag.String("stats-out", "", "write farm per-corner work/cache counters as JSON to this path ('-' for stdout)")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var store *charstore.Store
	if *cacheDir != "" {
		var err error
		store, err = charstore.Open(*cacheDir)
		if err != nil {
			fail(err)
		}
	}
	if *exportStore != "" || *importStore != "" {
		if store == nil {
			fail(fmt.Errorf("-export-store/-import-store need -cache-dir"))
		}
		if *importStore != "" {
			f, err := os.Open(*importStore)
			if err != nil {
				fail(err)
			}
			n, err := store.Import(f)
			f.Close()
			if err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "libchar: imported %d artefacts into %s (%d total)\n",
				n, store.Dir(), store.Len())
		}
		if *exportStore != "" {
			f, err := os.Create(*exportStore)
			if err != nil {
				fail(err)
			}
			err = store.Export(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "libchar: exported %d artefacts from %s\n", store.Len(), store.Dir())
		}
		return
	}

	// The cache is how artefacts reach the store: characterisation goes
	// through its two-tier path, so re-running libchar over an existing
	// store is itself warm.
	cache := charlib.NewCache()
	if store != nil {
		cache.SetStore(store)
	}

	t, err := tech.ByName(*techName)
	if err != nil {
		fail(err)
	}
	if *nlcaps {
		// Deriving the base card up front makes every downstream consumer —
		// cell construction, cache keys, store fingerprints, the corner farm
		// (Corner.Apply commutes with WithNonlinearCaps) — see one consistent
		// nonlinear-cap card.
		t = t.WithNonlinearCaps()
	}

	type job struct {
		kind, pin string
	}
	var jobs []job
	if *all {
		for _, k := range cell.Kinds() {
			c := cell.MustNew(t, k, *drive)
			for _, p := range c.Inputs() {
				jobs = append(jobs, job{k, p})
			}
		}
	} else {
		if *cellKind == "" {
			fail(fmt.Errorf("need -cell or -all"))
		}
		c, err := cell.New(t, *cellKind, *drive)
		if err != nil {
			fail(err)
		}
		p := *pin
		if p == "" {
			p = c.Inputs()[0]
		}
		jobs = append(jobs, job{*cellKind, p})
	}

	if *cornerList != "" || *mcSamples > 0 {
		// Farm mode: characterise every sensitizable job at every corner.
		corners, err := tech.ParseCorners(*cornerList)
		if err != nil {
			fail(err)
		}
		if *mcSamples > 0 {
			corners = append(corners, tech.SampleCorners(*mcSamples, *mcSeed, tech.SampleSpec{})...)
		}
		var cjobs []charlib.CornerJob
		for _, j := range jobs {
			c := cell.MustNew(t, j.kind, *drive)
			if _, err := c.SensitizedState(j.pin, true); err != nil {
				fmt.Fprintf(os.Stderr, "libchar: skipping %s pin %s: %v\n", j.kind, j.pin, err)
				continue
			}
			cjobs = append(cjobs, charlib.CornerJob{Kind: j.kind, Drive: *drive, Pin: j.pin})
		}
		runFarm(ctx, cache, store, t, corners, cjobs, charlib.CornerSweepOptions{
			LoadCurve:   charlib.LoadCurveOptions{NVin: *grid, NVout: *grid, WarmStart: *warmStart},
			Prop:        *withProp,
			PropOptions: charlib.PropOptions{WarmStart: *warmStart, Predictor: *predictor},
			Workers:     *workers,
		}, *out, *statsOut)
		return
	}

	lib := &charlib.Library{Tech: t.Name}
	for _, j := range jobs {
		c, err := cell.New(t, j.kind, *drive)
		if err != nil {
			fail(err)
		}
		st, err := c.SensitizedState(j.pin, true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "libchar: skipping %s pin %s: %v\n", j.kind, j.pin, err)
			continue
		}
		lc, err := cache.LoadCurve(ctx, c, st, j.pin,
			charlib.LoadCurveOptions{NVin: *grid, NVout: *grid, WarmStart: *warmStart})
		if err != nil {
			fail(fmt.Errorf("%s/%s: %w", j.kind, j.pin, err))
		}
		lib.AddLoadCurve(lc)
		fmt.Fprintf(os.Stderr, "libchar: %s pin %s state %s: load curve %dx%d, R_hold %.0f ohm\n",
			c.Name(), j.pin, st, lc.NVin, lc.NVout,
			lc.HoldingResistance(c.PinVoltage(st[j.pin]), c.PinVoltage(c.Logic(st))))
		if *withProp {
			pt, err := cache.PropTable(ctx, c, st, j.pin, charlib.PropOptions{WarmStart: *warmStart, Predictor: *predictor})
			if err != nil {
				fail(fmt.Errorf("%s/%s propagation: %w", j.kind, j.pin, err))
			}
			lib.AddPropTable(pt)
			fmt.Fprintf(os.Stderr, "libchar: %s pin %s: propagation table, max peak %.3f V\n",
				c.Name(), j.pin, pt.MaxPeak())
		}
	}
	if store != nil {
		stats := cache.Stats()
		fmt.Fprintf(os.Stderr, "libchar: store %s holds %d artefacts (%d loaded from disk this run)\n",
			store.Dir(), store.Len(), stats.DiskHits)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := lib.WriteJSON(w); err != nil {
		fail(err)
	}
}

// farmCornerStats is the per-corner entry of the -stats-out document.
type farmCornerStats struct {
	Corner             string `json:"corner"`
	DCSolves           int64  `json:"dc_solves"`
	Transients         int64  `json:"transients"`
	NewtonIters        int64  `json:"newton_iters"`
	WarmStarts         int64  `json:"warm_starts"`
	WarmFallbacks      int64  `json:"warm_fallbacks"`
	TransientSteps     int64  `json:"transient_steps"`
	LinearFastPathRuns int64  `json:"linear_fast_path_runs"`
	PredictorSeeds     int64  `json:"predictor_seeds"`
	PredictorFallbacks int64  `json:"predictor_fallbacks"`
	NLStampEvals       int64  `json:"nl_stamp_evals"`
}

// farmStats is the -stats-out document: per-corner solver work in
// continuation order plus run totals and the cache counters. A rerun over
// a warm store reports total_solves 0; a -warm-start matrix reports fewer
// total_newton_iters than the same matrix cold.
type farmStats struct {
	Corners          []farmCornerStats  `json:"corners"`
	TotalSolves      int64              `json:"total_solves"`
	TotalNewtonIters int64              `json:"total_newton_iters"`
	Cache            charlib.CacheStats `json:"cache"`
}

// runFarm executes the corner-matrix / Monte Carlo farm and writes one
// library per corner plus the optional stats document.
func runFarm(ctx context.Context, cache *charlib.Cache, store *charstore.Store, base *tech.Tech, corners []tech.Corner, jobs []charlib.CornerJob, opts charlib.CornerSweepOptions, out, statsOut string) {
	if len(jobs) == 0 {
		fail(fmt.Errorf("no characterisable jobs"))
	}
	results, err := charlib.SweepCorners(ctx, cache, base, corners, jobs, opts)
	if err != nil {
		fail(err)
	}

	stats := farmStats{Cache: cache.Stats()}
	for _, r := range results {
		fmt.Fprintf(os.Stderr, "libchar: corner %-8s %d load curves, %d Newton iters (%d DC solves, %d warm starts, %d fallbacks)\n",
			r.Corner.Name, len(r.Library.LoadCurves), r.Stats.NewtonIters,
			r.Stats.DCSolves, r.Stats.WarmStarts, r.Stats.WarmFallbacks)
		stats.Corners = append(stats.Corners, farmCornerStats{
			Corner:             r.Corner.Name,
			DCSolves:           r.Stats.DCSolves,
			Transients:         r.Stats.Transients,
			NewtonIters:        r.Stats.NewtonIters,
			WarmStarts:         r.Stats.WarmStarts,
			WarmFallbacks:      r.Stats.WarmFallbacks,
			TransientSteps:     r.Stats.TransientSteps,
			LinearFastPathRuns: r.Stats.LinearFastPathRuns,
			PredictorSeeds:     r.Stats.PredictorSeeds,
			PredictorFallbacks: r.Stats.PredictorFallbacks,
			NLStampEvals:       r.Stats.NLStampEvals,
		})
		stats.TotalSolves += r.Stats.DCSolves + r.Stats.Transients
		stats.TotalNewtonIters += r.Stats.NewtonIters

		w := os.Stdout
		if out != "" {
			f, err := os.Create(cornerOutPath(out, r.Corner.Name))
			if err != nil {
				fail(err)
			}
			w = f
		}
		err := r.Library.WriteJSON(w)
		if w != os.Stdout {
			if cerr := w.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fail(err)
		}
	}
	if store != nil {
		fmt.Fprintf(os.Stderr, "libchar: store %s holds %d artefacts (%d loaded from disk this run)\n",
			store.Dir(), store.Len(), stats.Cache.DiskHits)
	}
	if statsOut != "" {
		w := os.Stdout
		if statsOut != "-" {
			f, err := os.Create(statsOut)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stats); err != nil {
			fail(err)
		}
	}
}

// cornerOutPath inserts the corner name before the output path's
// extension: lib.json + ss → lib.ss.json (extensionless paths get a
// plain suffix).
func cornerOutPath(out, corner string) string {
	ext := filepath.Ext(out)
	return strings.TrimSuffix(out, ext) + "." + corner + ext
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "libchar: %v\n", err)
	os.Exit(1)
}
