// Command libchar pre-characterises library cells for noise analysis and
// writes the result as a JSON library: the non-linear VCCS load-curve
// tables of the paper's eq. (1) and, optionally, the propagation tables
// used by traditional superposition-based flows.
//
//	libchar -tech cmos130 -cell NAND2 -pin B -out nand2.json
//	libchar -tech cmos090 -all -out lib90.json
//
// With -cache-dir every characterised artefact is also persisted to a
// content-addressed store, so a later snacheck/noisetab run pointed at the
// same directory starts warm — libchar is the offline library step of the
// paper's flow. A whole precharacterised library travels between machines
// as a portable bundle:
//
//	libchar -tech cmos130 -all -prop -cache-dir ./noise-lib     # precharacterise
//	libchar -cache-dir ./noise-lib -export-store lib130.bundle  # pack it up
//	libchar -cache-dir /fresh/dir  -import-store lib130.bundle  # unpack elsewhere
//
// Bundles carry the model version they were built under; importing a
// bundle from a different model generation is refused (recharacterise
// instead), and individual damaged entries are skipped, never fatal.
//
// With -warm-start each sweep point's Newton solve is seeded from the
// previous point's converged solution (continuation), cutting total
// iterations substantially on fine grids. Warm artefacts differ from cold
// ones at solver-tolerance level and are stored under distinct cache
// keys.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"stanoise/internal/cell"
	"stanoise/internal/charlib"
	"stanoise/internal/charstore"
	"stanoise/internal/tech"
)

func main() {
	techName := flag.String("tech", "cmos130", "technology: cmos130 or cmos090")
	cellKind := flag.String("cell", "", "cell kind (INV, NAND2, ...); empty with -all characterises everything")
	drive := flag.Int("drive", 1, "drive strength")
	pin := flag.String("pin", "", "noisy input pin (default: first input)")
	all := flag.Bool("all", false, "characterise every cell kind and input pin")
	withProp := flag.Bool("prop", false, "also build propagation tables (slow)")
	grid := flag.Int("grid", 61, "load-curve grid points per axis")
	warmStart := flag.Bool("warm-start", false, "seed each sweep point's Newton solve from the previous point (faster on fine grids; solver-tolerance differences vs the cold flow)")
	out := flag.String("out", "", "output JSON path (default stdout)")
	cacheDir := flag.String("cache-dir", "", "persist characterised artefacts to a content-addressed store at this directory")
	exportStore := flag.String("export-store", "", "write the whole -cache-dir store as a portable bundle to this path and exit")
	importStore := flag.String("import-store", "", "import a bundle into -cache-dir and exit")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	var store *charstore.Store
	if *cacheDir != "" {
		var err error
		store, err = charstore.Open(*cacheDir)
		if err != nil {
			fail(err)
		}
	}
	if *exportStore != "" || *importStore != "" {
		if store == nil {
			fail(fmt.Errorf("-export-store/-import-store need -cache-dir"))
		}
		if *importStore != "" {
			f, err := os.Open(*importStore)
			if err != nil {
				fail(err)
			}
			n, err := store.Import(f)
			f.Close()
			if err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "libchar: imported %d artefacts into %s (%d total)\n",
				n, store.Dir(), store.Len())
		}
		if *exportStore != "" {
			f, err := os.Create(*exportStore)
			if err != nil {
				fail(err)
			}
			err = store.Export(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "libchar: exported %d artefacts from %s\n", store.Len(), store.Dir())
		}
		return
	}

	// The cache is how artefacts reach the store: characterisation goes
	// through its two-tier path, so re-running libchar over an existing
	// store is itself warm.
	cache := charlib.NewCache()
	if store != nil {
		cache.SetStore(store)
	}

	t, err := tech.ByName(*techName)
	if err != nil {
		fail(err)
	}
	lib := &charlib.Library{Tech: t.Name}

	type job struct {
		kind, pin string
	}
	var jobs []job
	if *all {
		for _, k := range cell.Kinds() {
			c := cell.MustNew(t, k, *drive)
			for _, p := range c.Inputs() {
				jobs = append(jobs, job{k, p})
			}
		}
	} else {
		if *cellKind == "" {
			fail(fmt.Errorf("need -cell or -all"))
		}
		c, err := cell.New(t, *cellKind, *drive)
		if err != nil {
			fail(err)
		}
		p := *pin
		if p == "" {
			p = c.Inputs()[0]
		}
		jobs = append(jobs, job{*cellKind, p})
	}

	for _, j := range jobs {
		c, err := cell.New(t, j.kind, *drive)
		if err != nil {
			fail(err)
		}
		st, err := c.SensitizedState(j.pin, true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "libchar: skipping %s pin %s: %v\n", j.kind, j.pin, err)
			continue
		}
		lc, err := cache.LoadCurve(ctx, c, st, j.pin,
			charlib.LoadCurveOptions{NVin: *grid, NVout: *grid, WarmStart: *warmStart})
		if err != nil {
			fail(fmt.Errorf("%s/%s: %w", j.kind, j.pin, err))
		}
		lib.AddLoadCurve(lc)
		fmt.Fprintf(os.Stderr, "libchar: %s pin %s state %s: load curve %dx%d, R_hold %.0f ohm\n",
			c.Name(), j.pin, st, lc.NVin, lc.NVout,
			lc.HoldingResistance(c.PinVoltage(st[j.pin]), c.PinVoltage(c.Logic(st))))
		if *withProp {
			pt, err := cache.PropTable(ctx, c, st, j.pin, charlib.PropOptions{WarmStart: *warmStart})
			if err != nil {
				fail(fmt.Errorf("%s/%s propagation: %w", j.kind, j.pin, err))
			}
			lib.AddPropTable(pt)
			fmt.Fprintf(os.Stderr, "libchar: %s pin %s: propagation table, max peak %.3f V\n",
				c.Name(), j.pin, pt.MaxPeak())
		}
	}
	if store != nil {
		stats := cache.Stats()
		fmt.Fprintf(os.Stderr, "libchar: store %s holds %d artefacts (%d loaded from disk this run)\n",
			store.Dir(), store.Len(), stats.DiskHits)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := lib.WriteJSON(w); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "libchar: %v\n", err)
	os.Exit(1)
}
