// Command libchar pre-characterises library cells for noise analysis and
// writes the result as a JSON library: the non-linear VCCS load-curve
// tables of the paper's eq. (1) and, optionally, the propagation tables
// used by traditional superposition-based flows.
//
//	libchar -tech cmos130 -cell NAND2 -pin B -out nand2.json
//	libchar -tech cmos090 -all -out lib90.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"stanoise/internal/cell"
	"stanoise/internal/charlib"
	"stanoise/internal/tech"
)

func main() {
	techName := flag.String("tech", "cmos130", "technology: cmos130 or cmos090")
	cellKind := flag.String("cell", "", "cell kind (INV, NAND2, ...); empty with -all characterises everything")
	drive := flag.Int("drive", 1, "drive strength")
	pin := flag.String("pin", "", "noisy input pin (default: first input)")
	all := flag.Bool("all", false, "characterise every cell kind and input pin")
	withProp := flag.Bool("prop", false, "also build propagation tables (slow)")
	grid := flag.Int("grid", 61, "load-curve grid points per axis")
	out := flag.String("out", "", "output JSON path (default stdout)")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	t, err := tech.ByName(*techName)
	if err != nil {
		fail(err)
	}
	lib := &charlib.Library{Tech: t.Name}

	type job struct {
		kind, pin string
	}
	var jobs []job
	if *all {
		for _, k := range cell.Kinds() {
			c := cell.MustNew(t, k, *drive)
			for _, p := range c.Inputs() {
				jobs = append(jobs, job{k, p})
			}
		}
	} else {
		if *cellKind == "" {
			fail(fmt.Errorf("need -cell or -all"))
		}
		c, err := cell.New(t, *cellKind, *drive)
		if err != nil {
			fail(err)
		}
		p := *pin
		if p == "" {
			p = c.Inputs()[0]
		}
		jobs = append(jobs, job{*cellKind, p})
	}

	for _, j := range jobs {
		c, err := cell.New(t, j.kind, *drive)
		if err != nil {
			fail(err)
		}
		st, err := c.SensitizedState(j.pin, true)
		if err != nil {
			fmt.Fprintf(os.Stderr, "libchar: skipping %s pin %s: %v\n", j.kind, j.pin, err)
			continue
		}
		lc, err := charlib.CharacterizeLoadCurve(ctx, c, st, j.pin,
			charlib.LoadCurveOptions{NVin: *grid, NVout: *grid})
		if err != nil {
			fail(fmt.Errorf("%s/%s: %w", j.kind, j.pin, err))
		}
		lib.AddLoadCurve(lc)
		fmt.Fprintf(os.Stderr, "libchar: %s pin %s state %s: load curve %dx%d, R_hold %.0f ohm\n",
			c.Name(), j.pin, st, lc.NVin, lc.NVout,
			lc.HoldingResistance(c.PinVoltage(st[j.pin]), c.PinVoltage(c.Logic(st))))
		if *withProp {
			pt, err := charlib.CharacterizePropagation(ctx, c, st, j.pin, charlib.PropOptions{})
			if err != nil {
				fail(fmt.Errorf("%s/%s propagation: %w", j.kind, j.pin, err))
			}
			lib.AddPropTable(pt)
			fmt.Fprintf(os.Stderr, "libchar: %s pin %s: propagation table, max peak %.3f V\n",
				c.Name(), j.pin, pt.MaxPeak())
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := lib.WriteJSON(w); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "libchar: %v\n", err)
	os.Exit(1)
}
