// Command noisetab regenerates every table and figure of the paper's
// evaluation section (Forzan & Pandini, DATE 2005):
//
//	noisetab -exp table1            Table 1 (injected + propagated combination)
//	noisetab -exp table2            Table 2 (worst-case two-aggressor overlap)
//	noisetab -exp fig1              Figure 1 (assembled cluster macromodel)
//	noisetab -exp zolotov           context for reference [4] (iterative model)
//	noisetab -exp speedup           claim C2 (~20X analysis speed-up)
//	noisetab -exp sweep             claim C1 (accuracy across clusters, both techs)
//	noisetab -exp all               everything above
//
// Use -quality quick for a fast smoke run (coarser meshes and grids) and
// -csv to emit comma-separated values instead of aligned tables. An
// interrupt (SIGINT/SIGTERM) cancels the running experiment promptly.
//
// With -cache-dir the experiment runners share a persistent
// characterisation store: the first invocation persists every load curve,
// propagation table and Thevenin aggressor fit it characterises, and later
// invocations (of any experiment using the same grids) load them from
// disk. Note that cached characterisation makes the *characterisation*
// columns free, not the timed analysis columns — the speedup experiment
// still measures real engine runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"stanoise"
	"stanoise/paper"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, fig1, zolotov, speedup, sweep, all")
	quality := flag.String("quality", "full", "full (publication numbers) or quick (smoke run)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	sweepMax := flag.Int("sweep-max", 0, "limit the number of sweep cases (0 = all)")
	cacheDir := flag.String("cache-dir", "", "persistent characterisation store directory shared by the runners")
	flag.Parse()

	if *cacheDir != "" {
		store, err := stanoise.OpenStore(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "noisetab: warning: %v (continuing without a persistent cache)\n", err)
		} else {
			c := stanoise.NewCache()
			c.SetStore(store)
			paper.SetCache(c)
		}
	}

	var q paper.Quality
	switch *quality {
	case "full":
		q = paper.Full
	case "quick":
		q = paper.Quick
	default:
		fmt.Fprintf(os.Stderr, "noisetab: unknown quality %q\n", *quality)
		os.Exit(2)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	runs := []string{*exp}
	if *exp == "all" {
		runs = []string{"table1", "table2", "fig1", "zolotov", "speedup", "sweep"}
	}
	for _, name := range runs {
		if err := run(ctx, name, q, *csv, *sweepMax); err != nil {
			fmt.Fprintf(os.Stderr, "noisetab: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func run(ctx context.Context, name string, q paper.Quality, csv bool, sweepMax int) error {
	if name == "fig1" {
		s, err := paper.Fig1Description(ctx, q)
		if err != nil {
			return err
		}
		fmt.Print(s)
		return nil
	}
	var (
		exp *paper.Experiment
		err error
	)
	switch name {
	case "table1":
		exp, err = paper.RunTable1(ctx, q)
	case "table2":
		exp, err = paper.RunTable2(ctx, q)
	case "zolotov":
		exp, err = paper.RunZolotovContext(ctx, q)
	case "speedup":
		exp, err = paper.RunSpeedup(ctx, q)
	case "sweep":
		exp, err = paper.RunSweep(ctx, q, sweepMax)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	if err != nil {
		return err
	}
	if csv {
		return exp.Table().CSV(os.Stdout)
	}
	return exp.Render(os.Stdout)
}
