// Repository-level benchmarks: one per table/figure/claim of the paper's
// evaluation section, plus ablations of the design choices called out in
// DESIGN.md. Model construction (pre-characterisation) happens outside the
// timed loop, mirroring the paper's separation of the offline library step
// from the per-cluster analysis the 20X claim refers to.
//
// Run everything:   go test -bench=. -benchmem
// One experiment:   go test -bench=BenchmarkTable1 -benchmem
package stanoise_test

import (
	"context"
	"sync"
	"testing"

	"stanoise/internal/cell"
	"stanoise/internal/charlib"
	"stanoise/internal/core"
	"stanoise/internal/interconnect"
	"stanoise/internal/mor"
	"stanoise/internal/nrc"
	"stanoise/internal/sim"
	"stanoise/internal/sna"
	"stanoise/internal/tech"
	"stanoise/paper"
)

// prepared caches the expensive model construction per cluster so every
// benchmark times only the analysis, and b.N loops stay honest.
type prepared struct {
	cluster *core.Cluster
	models  *core.Models
	opts    core.EvalOptions
}

var (
	prepMu    sync.Mutex
	prepCache = map[string]*prepared{}
)

func prepareBench(b *testing.B, key string, build func(paper.Quality) (*core.Cluster, error), needProp bool) *prepared {
	b.Helper()
	prepMu.Lock()
	defer prepMu.Unlock()
	if p, ok := prepCache[key]; ok {
		return p
	}
	c, err := build(paper.Full)
	if err != nil {
		b.Fatal(err)
	}
	mopts := core.ModelOptions{SkipProp: !needProp}
	models, err := c.BuildModels(context.Background(), mopts)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.EvalOptions{Dt: 1e-12}
	if err := c.AlignWorstCase(context.Background(), models, opts); err != nil {
		b.Fatal(err)
	}
	p := &prepared{cluster: c, models: models, opts: opts}
	prepCache[key] = p
	return p
}

func benchMethod(b *testing.B, p *prepared, m core.Method) {
	b.Helper()
	b.ReportAllocs()
	var peak float64
	for i := 0; i < b.N; i++ {
		ev, err := p.cluster.Evaluate(context.Background(), m, p.models, p.opts)
		if err != nil {
			b.Fatal(err)
		}
		peak = ev.Metrics.Peak
	}
	b.ReportMetric(peak, "peakV")
}

// --- Table 1: injected + propagated combination -------------------------

func BenchmarkTable1Golden(b *testing.B) {
	benchMethod(b, prepareBench(b, "t1", paper.Table1Cluster, true), core.Golden)
}

func BenchmarkTable1Superposition(b *testing.B) {
	benchMethod(b, prepareBench(b, "t1", paper.Table1Cluster, true), core.Superposition)
}

func BenchmarkTable1Zolotov(b *testing.B) {
	benchMethod(b, prepareBench(b, "t1", paper.Table1Cluster, true), core.Zolotov)
}

func BenchmarkTable1Macromodel(b *testing.B) {
	benchMethod(b, prepareBench(b, "t1", paper.Table1Cluster, true), core.Macromodel)
}

// --- Table 2: worst-case two-aggressor overlap ---------------------------

func BenchmarkTable2Golden(b *testing.B) {
	benchMethod(b, prepareBench(b, "t2", paper.Table2Cluster, false), core.Golden)
}

func BenchmarkTable2Macromodel(b *testing.B) {
	benchMethod(b, prepareBench(b, "t2", paper.Table2Cluster, false), core.Macromodel)
}

// --- Claim C2: ~20X speed-up ---------------------------------------------

// BenchmarkSpeedupTable1 reports the golden/macromodel runtime ratio as a
// custom metric, regenerating the paper's headline speed-up number.
func BenchmarkSpeedupTable1(b *testing.B) {
	p := prepareBench(b, "t1", paper.Table1Cluster, true)
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		g, err := p.cluster.Evaluate(context.Background(), core.Golden, p.models, p.opts)
		if err != nil {
			b.Fatal(err)
		}
		m, err := p.cluster.Evaluate(context.Background(), core.Macromodel, p.models, p.opts)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(g.Elapsed) / float64(m.Elapsed)
	}
	b.ReportMetric(ratio, "x-speedup")
}

func BenchmarkSpeedupTable2(b *testing.B) {
	p := prepareBench(b, "t2", paper.Table2Cluster, false)
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		g, err := p.cluster.Evaluate(context.Background(), core.Golden, p.models, p.opts)
		if err != nil {
			b.Fatal(err)
		}
		m, err := p.cluster.Evaluate(context.Background(), core.Macromodel, p.models, p.opts)
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(g.Elapsed) / float64(m.Elapsed)
	}
	b.ReportMetric(ratio, "x-speedup")
}

// --- Claim C1: accuracy sweep (quick subset keeps bench time sane) -------

func BenchmarkClusterSweepSubset(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := paper.RunSweep(context.Background(), paper.Quick, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 1: macromodel construction ------------------------------------

// BenchmarkFig1ModelBuild times the full pre-characterisation pipeline
// (VCCS table, Thevenin fits, reduction) that assembles Figure 1's circuit.
func BenchmarkFig1ModelBuild(b *testing.B) {
	c, err := paper.Table2Cluster(paper.Full)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.BuildModels(context.Background(), core.ModelOptions{SkipProp: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ------------------------------------------------------------

// BenchmarkAblationZolotovPasses shows how the iterative linear model of
// ref [4] converges toward the non-linear answer (peakV metric).
func BenchmarkAblationZolotovPasses(b *testing.B) {
	p := prepareBench(b, "t1", paper.Table1Cluster, true)
	for _, passes := range []int{1, 2, 4} {
		name := map[int]string{1: "passes1", 2: "passes2", 4: "passes4"}[passes]
		b.Run(name, func(b *testing.B) {
			opts := p.opts
			opts.ZolotovPasses = passes
			var peak float64
			for i := 0; i < b.N; i++ {
				ev, err := p.cluster.Evaluate(context.Background(), core.Zolotov, p.models, opts)
				if err != nil {
					b.Fatal(err)
				}
				peak = ev.Metrics.Peak
			}
			b.ReportMetric(peak, "peakV")
		})
	}
}

// BenchmarkAblationMiller compares the pure DC-table macromodel (the
// paper's formulation) against the Miller-augmented extension.
func BenchmarkAblationMiller(b *testing.B) {
	p := prepareBench(b, "t1", paper.Table1Cluster, true)
	for _, miller := range []bool{false, true} {
		name := "paperPure"
		if miller {
			name = "withMiller"
		}
		b.Run(name, func(b *testing.B) {
			opts := p.opts
			opts.Miller = miller
			var peak float64
			for i := 0; i < b.N; i++ {
				ev, err := p.cluster.Evaluate(context.Background(), core.Macromodel, p.models, opts)
				if err != nil {
					b.Fatal(err)
				}
				peak = ev.Metrics.Peak
			}
			b.ReportMetric(peak, "peakV")
		})
	}
}

// BenchmarkAblationMORMoments sweeps the number of matched block moments,
// the accuracy/size knob of the coupled S-model.
func BenchmarkAblationMORMoments(b *testing.B) {
	t := tech.Tech130()
	bus, err := interconnect.NewBus(t, "M4", 25,
		interconnect.LineSpec{Name: "v", LengthUm: 500},
		interconnect.LineSpec{Name: "a", LengthUm: 500},
	)
	if err != nil {
		b.Fatal(err)
	}
	net := bus.Network(nil)
	ports := []string{bus.InNode(0), bus.InNode(1), bus.OutNode(0)}
	for _, moments := range []int{1, 2, 3, 4} {
		b.Run(map[int]string{1: "m1", 2: "m2", 3: "m3", 4: "m4"}[moments], func(b *testing.B) {
			b.ReportAllocs()
			var q int
			for i := 0; i < b.N; i++ {
				red, err := mor.Reduce(net, ports, mor.Options{Moments: moments})
				if err != nil {
					b.Fatal(err)
				}
				q = red.Q
			}
			b.ReportMetric(float64(q), "states")
		})
	}
}

// --- Design-level concurrent engine ---------------------------------------

// The design-scale benchmarks measure the two levers of the concurrent
// analysis engine on a generated 32-cluster design: the bounded worker
// pool (serial vs parallel — the speedup tracks GOMAXPROCS, so expect ~1x
// on a single-core runner and ≥2x from 4 cores up) and the shared
// characterisation cache (cold = every artefact characterised this run,
// warm = all artefacts served from a pre-populated cache).

const benchDesignClusters = 32

func designBenchOpts(workers int, cache *charlib.Cache) sna.Options {
	return sna.Options{
		Method:    core.Macromodel,
		Dt:        2e-12,
		Workers:   workers,
		Cache:     cache,
		LoadCurve: charlib.LoadCurveOptions{NVin: 31, NVout: 31},
		NRC:       nrc.Options{Widths: []float64{100e-12, 300e-12, 900e-12}, Dt: 2e-12},
	}
}

func benchDesignAnalyze(b *testing.B, workers int, warm bool) {
	b.Helper()
	d := sna.GenerateDesign("bench", benchDesignClusters)
	var shared *charlib.Cache
	if warm {
		shared = charlib.NewCache()
		if _, err := sna.NewAnalyzer(d, designBenchOpts(workers, shared)).Analyze(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := shared
		if !warm {
			// A fresh cache per iteration keeps every characterisation
			// inside the timed region (within-run sharing still applies,
			// as it would on a real cold start).
			cache = charlib.NewCache()
		}
		reports, err := sna.NewAnalyzer(d, designBenchOpts(workers, cache)).Analyze(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) != benchDesignClusters {
			b.Fatalf("reports = %d", len(reports))
		}
	}
}

func BenchmarkDesignAnalyzeSerial(b *testing.B)    { benchDesignAnalyze(b, 1, false) }
func BenchmarkDesignAnalyzeParallel2(b *testing.B) { benchDesignAnalyze(b, 2, false) }
func BenchmarkDesignAnalyzeParallel4(b *testing.B) { benchDesignAnalyze(b, 4, false) }
func BenchmarkDesignAnalyzeParallel8(b *testing.B) { benchDesignAnalyze(b, 8, false) }

// Parallel4 doubles as the cold-cache baseline: same design and workers,
// every artefact characterised inside the timed region.
func BenchmarkDesignAnalyzeWarmCache(b *testing.B) { benchDesignAnalyze(b, 4, true) }

// --- Feasibility filter ----------------------------------------------------

// The feasibility benchmarks measure the aggressor-correlation filter on
// the generated windowed design (every aggressor carries a switching
// window; every fourth cluster a mutex or implication pair). Both modes
// run the full alignment search over a pre-warmed characterisation cache,
// so the timed region is exactly the work the filter changes: Pessimistic
// pays the per-aggressor coordinate-ascent refinement, Feasible replaces
// it with interval-arithmetic alignment plus one engine run per maximal
// feasible scenario. The engine-solves/op metric makes the strictly-fewer-
// simulations claim visible next to the wall-clock number.
func benchDesignFeasibility(b *testing.B, feasibility bool) {
	b.Helper()
	d := sna.GenerateDesign("bench", benchDesignClusters)
	shared := charlib.NewCache()
	opts := designBenchOpts(4, shared)
	opts.Align = true
	opts.Feasibility = feasibility
	if _, err := sna.NewAnalyzer(d, opts).Analyze(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	before := sim.Snapshot()
	for i := 0; i < b.N; i++ {
		reports, err := sna.NewAnalyzer(d, opts).Analyze(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) != benchDesignClusters {
			b.Fatalf("reports = %d", len(reports))
		}
	}
	runs := sim.Snapshot().Sub(before).EngineRuns
	b.ReportMetric(float64(runs)/float64(b.N), "engine-solves/op")
}

func BenchmarkDesignAnalyzePessimistic(b *testing.B) { benchDesignFeasibility(b, false) }
func BenchmarkDesignAnalyzeFeasible(b *testing.B)    { benchDesignFeasibility(b, true) }

// --- Persistent characterisation store (internal/charstore) ---------------

// The disk-tier benchmarks measure the cross-run lever: ColdDisk is a
// first-ever run that characterises everything and persists it (the
// write-behind cost rides along); WarmDisk starts each iteration with an
// empty in-memory cache but a populated store, so every artefact is a
// disk read + decode instead of a transistor-level sweep. The
// WarmDisk/ColdDisk ratio is the speedup a second `snacheck -cache-dir`
// invocation sees.

func benchDesignAnalyzeDisk(b *testing.B, warm bool) {
	b.Helper()
	d := sna.GenerateDesign("bench", benchDesignClusters)
	dir := b.TempDir()
	if warm {
		// Populate the store once, outside the timed region. Cache is nil:
		// CacheDir configures the analyzer's private cache (a supplied
		// shared cache is never store-mutated — see sna.Options).
		opts := designBenchOpts(4, nil)
		opts.CacheDir = dir
		if _, err := sna.NewAnalyzer(d, opts).Analyze(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !warm {
			// A fresh store directory per iteration keeps every sweep and
			// every first-time persist inside the timed region.
			b.StopTimer()
			dir = b.TempDir()
			b.StartTimer()
		}
		opts := designBenchOpts(4, nil)
		opts.CacheDir = dir
		an := sna.NewAnalyzer(d, opts)
		reports, err := an.Analyze(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if len(reports) != benchDesignClusters {
			b.Fatalf("reports = %d", len(reports))
		}
		if warm {
			if cs := an.CacheStats(); cs.DiskHits != cs.Misses {
				b.Fatalf("warm iteration characterised: %+v", cs)
			}
		}
	}
}

func BenchmarkDesignAnalyzeColdDisk(b *testing.B) { benchDesignAnalyzeDisk(b, false) }
func BenchmarkDesignAnalyzeWarmDisk(b *testing.B) { benchDesignAnalyzeDisk(b, true) }

// --- Substrate benchmarks --------------------------------------------------

// BenchmarkLoadCurveCharacterization times the paper's pre-characterisation
// step (eq. 1) at the production grid size.
func BenchmarkLoadCurveCharacterization(b *testing.B) {
	t := tech.Tech130()
	nand := cell.MustNew(t, "NAND2", 1)
	st, err := nand.SensitizedState("B", true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := charlib.CharacterizeLoadCurve(context.Background(), nand, st, "B",
			charlib.LoadCurveOptions{NVin: 61, NVout: 61}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMacromodelEngine isolates the dedicated non-linear engine — the
// inner loop behind the 20X claim.
func BenchmarkMacromodelEngine(b *testing.B) {
	p := prepareBench(b, "t2", paper.Table2Cluster, false)
	sources := make([]core.PortSource, len(p.models.Red.Ports))
	for i := range sources {
		sources[i] = core.OpenPort{}
	}
	sources[p.models.VicPort] = &core.HoldingPort{G: p.models.HoldG, V0: p.models.QuietVic}
	for i, pi := range p.models.AggPorts {
		sources[pi] = core.NewTheveninPort(p.models.Agg[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunEngine(context.Background(), p.models.Red, sources, p.models.V0,
			core.EngineOptions{Dt: 1e-12, TStop: 2e-9}); err != nil {
			b.Fatal(err)
		}
	}
}
