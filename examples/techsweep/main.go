// Technology sweep: the paper's claim C1 — "tested on several noise
// clusters in 0.13µm and 90nm technology … the error was always within few
// percents" — across victim cells, aggressor counts and wire lengths.
//
//	go run ./examples/techsweep            # quick subset
//	go run ./examples/techsweep -full      # every sweep case, full quality
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"syscall"

	"stanoise"
	"stanoise/paper"
)

func main() {
	full := flag.Bool("full", false, "run every sweep case at full quality")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	q := paper.Quick
	maxCases := 6
	if *full {
		q = paper.Full
		maxCases = 0
	}
	cases := paper.SweepCases()
	if maxCases > 0 && maxCases < len(cases) {
		cases = cases[:maxCases]
	}

	fmt.Printf("%-22s %-10s %-10s %-8s %-8s\n", "cluster", "golden(V)", "macro(V)", "err%", "speedup")
	worst := 0.0
	for _, sc := range cases {
		cl, err := paper.BuildSweepCluster(sc, q)
		if err != nil {
			log.Fatal(err)
		}
		models, err := cl.BuildModels(ctx, stanoise.ModelOptions{SkipProp: true})
		if err != nil {
			log.Fatal(err)
		}
		opts := stanoise.EvalOptions{}
		if err := cl.AlignWorstCase(ctx, models, opts); err != nil {
			log.Fatal(err)
		}
		golden, err := cl.Evaluate(ctx, stanoise.Golden, models, opts)
		if err != nil {
			log.Fatal(err)
		}
		mac, err := cl.Evaluate(ctx, stanoise.Macromodel, models, opts)
		if err != nil {
			log.Fatal(err)
		}
		errPct := 100 * (mac.Metrics.Peak - golden.Metrics.Peak) / golden.Metrics.Peak
		if a := math.Abs(errPct); a > worst {
			worst = a
		}
		fmt.Printf("%-22s %-10.3f %-10.3f %+-8.1f %-8.0f\n",
			sc.Name, golden.Metrics.Peak, mac.Metrics.Peak, errPct,
			float64(golden.Elapsed)/float64(mac.Elapsed))
	}
	fmt.Printf("\nworst macromodel peak error: %.1f%%\n", worst)
	if worst > 6 {
		fmt.Fprintln(os.Stderr, "warning: error exceeded the paper's 'few percent' envelope")
		os.Exit(1)
	}
}
