// Table 2 walkthrough: worst-case overlap of two in-phase aggressors and a
// propagating glitch, including the alignment search that puts every noise
// contribution's peak at the same instant.
//
//	go run ./examples/table2_multi_aggressor
package main

import (
	"context"
	"fmt"
	"log"

	"stanoise"
	"stanoise/paper"
)

func main() {
	ctx := context.Background()
	cluster, err := paper.Table2Cluster(paper.Full)
	if err != nil {
		log.Fatal(err)
	}
	models, err := cluster.BuildModels(ctx, stanoise.ModelOptions{SkipProp: true})
	if err != nil {
		log.Fatal(err)
	}
	opts := stanoise.EvalOptions{}

	// Before alignment: aggressors switch at their nominal times.
	before, err := cluster.Evaluate(ctx, stanoise.Macromodel, models, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.AlignWorstCase(ctx, models, opts); err != nil {
		log.Fatal(err)
	}
	after, err := cluster.Evaluate(ctx, stanoise.Macromodel, models, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("macromodel peak before alignment: %.3f V\n", before.Metrics.Peak)
	fmt.Printf("macromodel peak after alignment:  %.3f V  (offsets: %+.0f ps, %+.0f ps)\n\n",
		after.Metrics.Peak,
		cluster.Aggressors[0].Offset*1e12, cluster.Aggressors[1].Offset*1e12)

	golden, err := cluster.Evaluate(ctx, stanoise.Golden, models, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden:     peak %.3f V, area %.1f V·ps   (%v)\n",
		golden.Metrics.Peak, golden.Metrics.AreaVps(), golden.Elapsed.Round(1e6))
	fmt.Printf("macromodel: peak %.3f V (%+.1f%%), area %.1f V·ps (%+.1f%%)   (%v, %.0fX faster)\n",
		after.Metrics.Peak,
		100*(after.Metrics.Peak-golden.Metrics.Peak)/golden.Metrics.Peak,
		after.Metrics.AreaVps(),
		100*(after.Metrics.Area-golden.Metrics.Area)/golden.Metrics.Area,
		after.Elapsed.Round(1e6),
		float64(golden.Elapsed)/float64(after.Elapsed))
	fmt.Println("\npaper reference: golden 0.919 V / 496.2 V·ps, macromodel +3.1% / +2.5%, ~20X")
}
