// Quickstart: build a two-net noise cluster, pre-characterise the victim
// driver's non-linear VCCS table, and compare the paper's macromodel
// against a full transistor-level simulation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"stanoise/internal/cell"
	"stanoise/internal/core"
	"stanoise/internal/interconnect"
	"stanoise/internal/tech"
)

func main() {
	// 1. Pick a technology and lay out two 500 µm parallel wires on M4.
	t := tech.Tech130()
	bus, err := interconnect.NewBus(t, "M4", 15,
		interconnect.LineSpec{Name: "vic", LengthUm: 500},
		interconnect.LineSpec{Name: "agg", LengthUm: 500},
	)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Describe the cluster: a NAND2 holds the victim high (A=1, B=0)
	// while a 0.6 V / 350 ps glitch arrives on B, and a neighbouring
	// inverter output falls.
	nand := cell.MustNew(t, "NAND2", 1)
	state, err := nand.SensitizedState("B", true)
	if err != nil {
		log.Fatal(err)
	}
	cluster := &core.Cluster{
		Tech: t,
		Bus:  bus,
		Victim: core.VictimSpec{
			Cell: nand, State: state, NoisyPin: "B",
			Glitch:   core.GlitchSpec{Height: 0.6, Width: 350e-12, Start: 150e-12},
			Line:     0,
			Receiver: cell.MustNew(t, "INV", 2), ReceiverPin: "A",
		},
		Aggressors: []core.AggressorSpec{{
			Cell: cell.MustNew(t, "INV", 2), FromState: cell.State{"A": false}, SwitchPin: "A",
			Line: 1, Receiver: cell.MustNew(t, "INV", 2), ReceiverPin: "A",
		}},
	}

	// 3. Pre-characterise: the VCCS load-curve table (eq. 1 of the paper),
	// the aggressor Thevenin model, and the reduced coupled interconnect.
	models, err := cluster.BuildModels(core.ModelOptions{SkipProp: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim VCCS table: %s in state %s, %dx%d points\n",
		models.LC.CellName, models.LC.State, models.LC.NVin, models.LC.NVout)
	fmt.Printf("holding resistance at the quiet point: %.0f ohm\n", 1/models.HoldG)
	fmt.Printf("reduced interconnect: %d ports, q=%d states\n\n",
		len(models.Red.Ports), models.Red.Q)

	// 4. Align every noise contribution at its worst case and evaluate.
	opts := core.EvalOptions{}
	if err := cluster.AlignWorstCase(models, opts); err != nil {
		log.Fatal(err)
	}
	golden, err := cluster.Evaluate(core.Golden, models, opts)
	if err != nil {
		log.Fatal(err)
	}
	macro, err := cluster.Evaluate(core.Macromodel, models, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("golden (transistor level): peak %.3f V, area %.1f V·ps  (%v)\n",
		golden.Metrics.Peak, golden.Metrics.AreaVps(), golden.Elapsed.Round(1e5))
	fmt.Printf("VCCS macromodel:           peak %.3f V, area %.1f V·ps  (%v)\n",
		macro.Metrics.Peak, macro.Metrics.AreaVps(), macro.Elapsed.Round(1e5))
	fmt.Printf("peak error %+.1f%%, area error %+.1f%%, speed-up %.0fX\n",
		100*(macro.Metrics.Peak-golden.Metrics.Peak)/golden.Metrics.Peak,
		100*(macro.Metrics.Area-golden.Metrics.Area)/golden.Metrics.Area,
		float64(golden.Elapsed)/float64(macro.Elapsed))
}
