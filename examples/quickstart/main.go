// Quickstart: describe a two-net noise cluster through the public stanoise
// API, pre-characterise the victim driver's non-linear VCCS table, and
// compare the paper's macromodel against a full transistor-level
// simulation.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"stanoise"
)

func main() {
	ctx := context.Background()

	// 1. Describe the cluster as a design spec: a NAND2 holds the victim
	// quiet while a 0.6 V / 350 ps glitch arrives on B, and a neighbouring
	// inverter output falls on a 500 µm parallel M4 wire.
	design := &stanoise.Design{
		Name: "quickstart", Tech: "cmos130", Layer: "M4", Segments: 15,
		Clusters: []stanoise.ClusterSpec{{
			Name: "demo",
			Victim: stanoise.VictimSpec{
				Cell: "NAND2", Drive: 1, NoisyPin: "B",
				GlitchHeightV: 0.6, GlitchWidthPs: 350,
				LengthUm: 500,
			},
			Aggressors: []stanoise.AggressorSpec{{
				Cell: "INV", Drive: 2, FromState: map[string]bool{"A": false},
				SwitchPin: "A", LengthUm: 500,
			}},
		}},
	}
	if err := design.Validate(); err != nil {
		log.Fatal(err)
	}

	// 2. Build the evaluable cluster and pre-characterise: the VCCS
	// load-curve table (eq. 1 of the paper), the aggressor Thevenin model,
	// and the reduced coupled interconnect.
	cluster, err := design.BuildCluster(design.Clusters[0])
	if err != nil {
		log.Fatal(err)
	}
	models, err := cluster.BuildModels(ctx, stanoise.ModelOptions{SkipProp: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim VCCS table: %s in state %s, %dx%d points\n",
		models.LC.CellName, models.LC.State, models.LC.NVin, models.LC.NVout)
	fmt.Printf("holding resistance at the quiet point: %.0f ohm\n", 1/models.HoldG)
	fmt.Printf("reduced interconnect: %d ports, q=%d states\n\n",
		len(models.Red.Ports), models.Red.Q)

	// 3. Align every noise contribution at its worst case and evaluate.
	opts := stanoise.EvalOptions{}
	if err := cluster.AlignWorstCase(ctx, models, opts); err != nil {
		log.Fatal(err)
	}
	golden, err := cluster.Evaluate(ctx, stanoise.Golden, models, opts)
	if err != nil {
		log.Fatal(err)
	}
	macro, err := cluster.Evaluate(ctx, stanoise.Macromodel, models, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("golden (transistor level): peak %.3f V, area %.1f V·ps  (%v)\n",
		golden.Metrics.Peak, golden.Metrics.AreaVps(), golden.Elapsed.Round(1e5))
	fmt.Printf("VCCS macromodel:           peak %.3f V, area %.1f V·ps  (%v)\n",
		macro.Metrics.Peak, macro.Metrics.AreaVps(), macro.Elapsed.Round(1e5))
	fmt.Printf("peak error %+.1f%%, area error %+.1f%%, speed-up %.0fX\n\n",
		stanoise.PeakError(macro.Metrics.Peak, golden.Metrics.Peak),
		stanoise.PeakError(macro.Metrics.Area, golden.Metrics.Area),
		float64(golden.Elapsed)/float64(macro.Elapsed))

	// 4. Or skip the plumbing entirely: the analyzer runs the full
	// sign-off flow (characterise, align, evaluate, judge against the
	// receiver's NRC) in one call.
	reports, err := stanoise.NewAnalyzer(design, stanoise.Options{Align: true}).Analyze(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		verdict := "passes its NRC"
		if r.Fails {
			verdict = "VIOLATES its NRC"
		}
		fmt.Printf("analyzer: cluster %s %s (receiver peak %.3f V)\n", r.Cluster, verdict, r.PeakV)
	}
}
