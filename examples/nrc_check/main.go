// NRC check: characterise the Noise Rejection Curve of a receiver, then
// judge the total noise of a cluster against it — the sign-off decision of
// static noise analysis. The example shows the paper's point: the same
// cluster passes under linear superposition and fails under the accurate
// non-linear macromodel.
//
//	go run ./examples/nrc_check
package main

import (
	"context"
	"fmt"
	"log"

	"stanoise"
)

func main() {
	ctx := context.Background()

	// A hot cluster: three coupled 500 µm nets, strong aggressors, big
	// glitch, judged at an INV X2 receiver.
	design := &stanoise.Design{
		Name: "nrc-check", Tech: "cmos130", Layer: "M4", Segments: 15,
		Clusters: []stanoise.ClusterSpec{{
			Name: "hot",
			Victim: stanoise.VictimSpec{
				Cell: "NAND2", Drive: 1, NoisyPin: "B",
				GlitchHeightV: 0.78, GlitchWidthPs: 480,
				LengthUm: 500,
				Receiver: "INV", ReceiverDrive: 2, ReceiverPin: "A",
			},
			Aggressors: []stanoise.AggressorSpec{
				{Cell: "INV", Drive: 4, FromState: map[string]bool{"A": false},
					SwitchPin: "A", LengthUm: 500, Side: "left"},
				{Cell: "INV", Drive: 4, FromState: map[string]bool{"A": false},
					SwitchPin: "A", LengthUm: 500, Side: "right"},
			},
		}},
	}
	if err := design.Validate(); err != nil {
		log.Fatal(err)
	}
	cs := design.Clusters[0]

	// The receiver's noise immunity decides pass/fail. ReceiverNRC yields
	// exactly the curve the analyzer judges this cluster against.
	an := stanoise.NewAnalyzer(design, stanoise.Options{Align: true})
	curve, err := an.ReceiverNRC(ctx, cs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NRC of %s pin %s (input quiet high, %.0f%% VDD output failure threshold):\n",
		curve.CellName, curve.Pin, curve.FailFrac*100)
	for i, w := range curve.Widths {
		fmt.Printf("  width %5.0f ps -> failing height %.3f V\n", w*1e12, curve.Heights[i])
	}
	fmt.Println()

	// Evaluate the same cluster with each victim-driver model and judge it
	// against the curve.
	cluster, err := design.BuildCluster(cs)
	if err != nil {
		log.Fatal(err)
	}
	models, err := cluster.BuildModels(ctx, stanoise.ModelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	opts := stanoise.EvalOptions{}
	if err := cluster.AlignWorstCase(ctx, models, opts); err != nil {
		log.Fatal(err)
	}

	verdicts := map[stanoise.Method]bool{}
	for _, m := range []stanoise.Method{stanoise.Superposition, stanoise.Macromodel, stanoise.Golden} {
		ev, err := cluster.Evaluate(ctx, m, models, opts)
		if err != nil {
			log.Fatal(err)
		}
		fails := curve.Fails(ev.RecvMetrics.Peak, ev.RecvMetrics.Width)
		verdicts[m] = fails
		verdict := "PASS"
		if fails {
			verdict = "FAIL"
		}
		fmt.Printf("%-14s receiver noise %.3f V x %.0f ps  ->  %s (margin %+.3f V)\n",
			m, ev.RecvMetrics.Peak, ev.RecvMetrics.WidthPs(), verdict,
			curve.MarginV(ev.RecvMetrics.Peak, ev.RecvMetrics.Width))
	}
	if !verdicts[stanoise.Superposition] && verdicts[stanoise.Macromodel] {
		fmt.Println("\nThe superposition flow signed off a net the accurate non-linear model rejects —")
		fmt.Println("exactly the silent failure mode the paper warns about.")
	} else {
		fmt.Println("\nNote how much sign-off margin the linear-superposition flow overstates.")
	}
}
