// NRC check: characterise the Noise Rejection Curve of a receiver, then
// judge the total noise of a cluster against it — the sign-off decision of
// static noise analysis. The example shows the paper's point: the same
// cluster passes under linear superposition and fails under the accurate
// non-linear macromodel.
//
//	go run ./examples/nrc_check
package main

import (
	"fmt"
	"log"

	"stanoise/internal/cell"
	"stanoise/internal/core"
	"stanoise/internal/interconnect"
	"stanoise/internal/nrc"
	"stanoise/internal/tech"
)

func main() {
	t := tech.Tech130()

	// The receiver whose noise immunity decides pass/fail.
	recv := cell.MustNew(t, "INV", 2)
	curve, err := nrc.Characterize(recv, cell.State{"A": true}, "A", nrc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NRC of %s pin A (input quiet high, %.0f%% VDD output failure threshold):\n",
		recv.Name(), curve.FailFrac*100)
	for i, w := range curve.Widths {
		fmt.Printf("  width %5.0f ps -> failing height %.3f V\n", w*1e12, curve.Heights[i])
	}
	fmt.Println()

	// A hot cluster: three coupled nets, strong aggressors, big glitch.
	bus, err := interconnect.NewBus(t, "M4", 15,
		interconnect.LineSpec{Name: "agg1", LengthUm: 500},
		interconnect.LineSpec{Name: "vic", LengthUm: 500},
		interconnect.LineSpec{Name: "agg2", LengthUm: 500},
	)
	if err != nil {
		log.Fatal(err)
	}
	nand := cell.MustNew(t, "NAND2", 1)
	state, _ := nand.SensitizedState("B", true)
	inv := func(d int) *cell.Cell { return cell.MustNew(t, "INV", d) }
	cluster := &core.Cluster{
		Tech: t, Bus: bus,
		Victim: core.VictimSpec{
			Cell: nand, State: state, NoisyPin: "B",
			Glitch:   core.GlitchSpec{Height: 0.78, Width: 480e-12, Start: 150e-12},
			Line:     1,
			Receiver: recv, ReceiverPin: "A",
		},
		Aggressors: []core.AggressorSpec{
			{Cell: inv(4), FromState: cell.State{"A": false}, SwitchPin: "A", Line: 0,
				Receiver: inv(2), ReceiverPin: "A"},
			{Cell: inv(4), FromState: cell.State{"A": false}, SwitchPin: "A", Line: 2,
				Receiver: inv(2), ReceiverPin: "A"},
		},
	}
	models, err := cluster.BuildModels(core.ModelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	opts := core.EvalOptions{}
	if err := cluster.AlignWorstCase(models, opts); err != nil {
		log.Fatal(err)
	}

	verdicts := map[core.Method]bool{}
	for _, m := range []core.Method{core.Superposition, core.Macromodel, core.Golden} {
		ev, err := cluster.Evaluate(m, models, opts)
		if err != nil {
			log.Fatal(err)
		}
		fails := curve.Fails(ev.RecvMetrics.Peak, ev.RecvMetrics.Width)
		verdicts[m] = fails
		verdict := "PASS"
		if fails {
			verdict = "FAIL"
		}
		fmt.Printf("%-14s receiver noise %.3f V x %.0f ps  ->  %s (margin %+.3f V)\n",
			m, ev.RecvMetrics.Peak, ev.RecvMetrics.WidthPs(), verdict,
			curve.MarginV(ev.RecvMetrics.Peak, ev.RecvMetrics.Width))
	}
	if !verdicts[core.Superposition] && verdicts[core.Macromodel] {
		fmt.Println("\nThe superposition flow signed off a net the accurate non-linear model rejects —")
		fmt.Println("exactly the silent failure mode the paper warns about.")
	} else {
		fmt.Println("\nNote how much sign-off margin the linear-superposition flow overstates.")
	}
}
