// Table 1 walkthrough: the paper's first experiment — combining
// crosstalk-injected and propagated noise on two coupled 500 µm nets — with
// all four victim-driver models, showing why linear superposition
// underestimates the total noise.
//
//	go run ./examples/table1_coupled_nets
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"stanoise"
	"stanoise/paper"
)

func main() {
	ctx := context.Background()
	cluster, err := paper.Table1Cluster(paper.Full)
	if err != nil {
		log.Fatal(err)
	}
	models, err := cluster.BuildModels(ctx, stanoise.ModelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	opts := stanoise.EvalOptions{}
	if err := cluster.AlignWorstCase(ctx, models, opts); err != nil {
		log.Fatal(err)
	}

	fmt.Println("victim: NAND2 X1 holding high (A=1, B=0), 0.70 V / 400 ps glitch on B")
	fmt.Println("aggressor: INV X2 falling, 500 um parallel M4 neighbour")
	fmt.Println()

	var golden *stanoise.Evaluation
	for _, m := range []stanoise.Method{stanoise.Golden, stanoise.Superposition, stanoise.Zolotov, stanoise.Macromodel} {
		ev, err := cluster.Evaluate(ctx, m, models, opts)
		if err != nil {
			log.Fatal(err)
		}
		if golden == nil {
			golden = ev
			fmt.Printf("%-14s  peak %.3f V   area %.1f V·ps   (reference, %v)\n",
				ev.Method, ev.Metrics.Peak, ev.Metrics.AreaVps(), ev.Elapsed.Round(1e6))
			continue
		}
		fmt.Printf("%-14s  peak %.3f V (%+5.1f%%)   area %.1f V·ps (%+5.1f%%)   (%v)\n",
			ev.Method, ev.Metrics.Peak, stanoise.PeakError(ev.Metrics.Peak, golden.Metrics.Peak),
			ev.Metrics.AreaVps(), stanoise.PeakError(ev.Metrics.Area, golden.Metrics.Area),
			ev.Elapsed.Round(1e6))
	}

	fmt.Println()
	fmt.Println("ASCII waveform at the victim driving point (golden):")
	plot(os.Stdout, golden.DP, cluster.QuietVictimLevel())
}

// plot renders a small ASCII strip chart of the noise waveform.
func plot(w *os.File, wf *stanoise.Waveform, quiet float64) {
	const cols, rows = 72, 12
	t0, t1 := wf.Start(), wf.End()
	min, max := quiet, quiet
	for _, v := range wf.V {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max-min < 1e-9 {
		max = min + 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = make([]byte, cols)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for c := 0; c < cols; c++ {
		t := t0 + (t1-t0)*float64(c)/float64(cols-1)
		v := wf.At(t)
		r := int((max - v) / (max - min) * float64(rows-1))
		grid[r][c] = '*'
	}
	for r, line := range grid {
		level := max - (max-min)*float64(r)/float64(rows-1)
		fmt.Fprintf(w, "%6.2fV |%s\n", level, string(line))
	}
	fmt.Fprintf(w, "        %s\n", fmt.Sprintf("%-36s%36s",
		fmt.Sprintf("%.0fps", t0*1e12), fmt.Sprintf("%.0fps", t1*1e12)))
}
