// Command warmstart demonstrates the warm-start sweep engine on the
// paper's pre-characterisation workload: the same load-curve grid (eq. 1)
// is characterised cold — every Newton solve seeded from the standard
// initial guess — and warm-started, where each grid point continues from
// its neighbour's converged solution and terminates on the small-update
// criterion. The engine's invocation counters show the iteration savings;
// wall-clock timings show where that goes on fine grids.
//
//	go run ./examples/warmstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"stanoise/internal/cell"
	"stanoise/internal/charlib"
	"stanoise/internal/sim"
	"stanoise/internal/tech"
)

func main() {
	tt := tech.Tech130()
	ctx := context.Background()

	fmt.Println("warm-start Newton continuation on load-curve characterisation (cmos130)")
	fmt.Println()
	fmt.Printf("%-8s %-9s %12s %12s %12s %9s %8s\n",
		"cell", "grid", "iters cold", "iters warm", "reduction", "speedup", "max |ΔI|")

	for _, cfg := range []struct {
		kind string
		grid int
	}{
		{"INV", 61}, {"INV", 121}, {"NAND2", 61}, {"NAND2", 121},
	} {
		cl := cell.MustNew(tt, cfg.kind, 1)
		pin := cl.Inputs()[len(cl.Inputs())-1]
		st, err := cl.SensitizedState(pin, true)
		if err != nil {
			log.Fatal(err)
		}
		opts := charlib.LoadCurveOptions{NVin: cfg.grid, NVout: cfg.grid}

		coldIters, coldDur, coldLC := sweep(ctx, cl, st, pin, opts)
		opts.WarmStart = true
		warmIters, warmDur, warmLC := sweep(ctx, cl, st, pin, opts)

		maxd := 0.0
		for i := range coldLC.I {
			maxd = math.Max(maxd, math.Abs(coldLC.I[i]-warmLC.I[i]))
		}
		fmt.Printf("%-8s %-9s %12d %12d %11.1f%% %8.2fX %8.1e\n",
			cfg.kind, fmt.Sprintf("%dx%d", cfg.grid, cfg.grid),
			coldIters, warmIters,
			100*(1-float64(warmIters)/float64(coldIters)),
			float64(coldDur)/float64(warmDur), maxd)
	}

	fmt.Println()
	fmt.Println("warm and cold sweeps converge to the same currents (|ΔI| at solver")
	fmt.Println("tolerance); warm start is opt-in because those last bits break")
	fmt.Println("bit-identical reproducibility with the cold flow.")
}

// sweep characterises one load curve and reports the Newton iterations and
// wall time it spent, using the engine's process-wide counters.
func sweep(ctx context.Context, cl *cell.Cell, st cell.State, pin string, opts charlib.LoadCurveOptions) (int64, time.Duration, *charlib.LoadCurve) {
	before := sim.Snapshot()
	start := time.Now()
	lc, err := charlib.CharacterizeLoadCurve(ctx, cl, st, pin, opts)
	if err != nil {
		log.Fatal(err)
	}
	return sim.Snapshot().Sub(before).NewtonIters, time.Since(start), lc
}
