package sim

import (
	"context"
	"math"
	"testing"

	"stanoise/internal/cell"
	"stanoise/internal/circuit"
	"stanoise/internal/tech"
	"stanoise/internal/wave"
)

// TestTransientStepCountExact pins the indexed time grid (t = k·Dt): at
// large tstop/Dt ratios the legacy accumulating loop (t += h) drifted by
// an ulp per step and could drop or duplicate the final step; the indexed
// loop must produce exactly round(tstop/Dt) steps plus the operating
// point, with an exactly reproducible grid.
func TestTransientStepCountExact(t *testing.T) {
	cases := []struct {
		name      string
		dt, tstop float64
		want      int // recorded points, OP included
	}{
		{"exact_multiple", 1e-12, 1e-9, 1001},
		{"long_run", 1e-12, 2e-7, 200001},
		{"odd_ratio", 2e-12, 777.7e-12, 390},  // 777.7/2 = 388.85 → 389 steps
		{"sub_half_step", 1e-12, 0.4e-12, 1},  // below Dt/2: OP only
		{"near_half_step", 1e-12, 0.6e-12, 2}, // above Dt/2: one step
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ckt := circuit.New()
			ckt.AddV("vin", "a", "0", wave.SaturatedRamp(0, 1.0, 10e-12, 40e-12))
			ckt.AddR("r", "a", "b", 1000)
			ckt.AddC("c", "b", "0", 10e-15)
			sess, err := NewSession(Compile(ckt), Options{Dt: tc.dt})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sess.RunTransient(context.Background(), tc.tstop)
			if err != nil {
				t.Fatal(err)
			}
			if res.Steps() != tc.want {
				t.Fatalf("recorded %d points, want %d", res.Steps(), tc.want)
			}
			for k, tm := range res.Times {
				if want := float64(k) * tc.dt; tm != want {
					t.Fatalf("step %d at t=%g, want exactly %g", k, tm, want)
				}
			}
		})
	}
}

// TestTransientOPCapCurrentIsZero is the regression test for the
// documented iPrev semantics: the transient starts from a converged DC
// operating point, where capacitors carry exactly zero current, so the
// zeroed trapezoidal history is exact — even when SetGuess perturbs the
// Newton *seed* away from steady state. With constant inputs the run must
// therefore stay flat; a spurious initial capacitor current would kick the
// trapezoidal integrator into a decaying oscillation from t = 0.
func TestTransientOPCapCurrentIsZero(t *testing.T) {
	build := func(t *testing.T) (*Session, string) {
		tc := tech.Tech130()
		inv := cell.MustNew(tc, "INV", 1)
		ckt := circuit.New()
		ckt.AddVDC("vdd", "vdd", "0", tc.VDD)
		ckt.AddVDC("v_A", "in_A", "0", 0) // constant input: a true steady state
		if err := inv.Build(ckt, "dut", map[string]string{"A": "in_A"}, "out", "vdd"); err != nil {
			t.Fatal(err)
		}
		ckt.AddC("cl", "out", "0", 30e-15)
		sess, err := NewSession(Compile(ckt), Options{Dt: 1e-12, Method: Trapezoidal})
		if err != nil {
			t.Fatal(err)
		}
		return sess, "out"
	}

	t.Run("steady", func(t *testing.T) {
		sess, out := build(t)
		assertFlat(t, sess, out)
	})
	t.Run("perturbed_guess", func(t *testing.T) {
		// The guess only seeds Newton; the converged OP — and therefore
		// the zero capacitor current — must be unchanged.
		sess, out := build(t)
		sess.SetGuess(out, 0.3)
		assertFlat(t, sess, out)
	})
}

func assertFlat(t *testing.T, sess *Session, node string) {
	t.Helper()
	res, err := sess.RunTransient(context.Background(), 200e-12)
	if err != nil {
		t.Fatal(err)
	}
	v0 := res.At(node, 0)
	for i := 0; i < res.Steps(); i++ {
		if dv := math.Abs(res.At(node, i) - v0); dv > 1e-6 {
			t.Fatalf("output moved %g V at step %d from a steady operating point", dv, i)
		}
	}
}

// TestTransientStepAllocFree asserts the RunTransientInto contract on both
// solver paths: after the first run on a given Result, a repeated
// transient sweep — and in particular its per-step loop — allocates zero
// bytes.
func TestTransientStepAllocFree(t *testing.T) {
	t.Run("linear_fast_path", func(t *testing.T) {
		sess, err := NewSession(Compile(rcLadderCircuit(t)), Options{Dt: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		assertTransientAllocFree(t, sess, 1e-9)
	})
	t.Run("newton_path", func(t *testing.T) {
		tc := tech.Tech130()
		inv := cell.MustNew(tc, "INV", 1)
		ckt := circuit.New()
		ckt.AddVDC("vdd", "vdd", "0", tc.VDD)
		ckt.AddV("v_A", "in_A", "0", wave.Triangle(0, 0.8, 100e-12, 300e-12))
		if err := inv.Build(ckt, "dut", map[string]string{"A": "in_A"}, "out", "vdd"); err != nil {
			t.Fatal(err)
		}
		ckt.AddC("cl", "out", "0", 30e-15)
		sess, err := NewSession(Compile(ckt), Options{Dt: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		sess.Predictor(true) // predictor buffers must be reused, not re-made
		assertTransientAllocFree(t, sess, 600e-12)
	})
}

func assertTransientAllocFree(t *testing.T, sess *Session, tstop float64) {
	t.Helper()
	ctx := context.Background()
	res := &Result{}
	if err := sess.RunTransientInto(ctx, res, tstop); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := sess.RunTransientInto(ctx, res, tstop); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm RunTransientInto allocated %.1f times per run, want 0", allocs)
	}
}
