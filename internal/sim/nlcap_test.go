package sim

import (
	"context"
	"math"
	"testing"

	"stanoise/internal/circuit"
	"stanoise/internal/device"
	"stanoise/internal/linalg"
	"stanoise/internal/tech"
	"stanoise/internal/wave"
)

// nlNMOS is a conducting cmos130-scale NMOS carrying nonlinear gate-charge
// models on both caps: CGS with its transition inside the supply range, CGD
// saturated deep in a tanh tail (P0 = 40) so the Jacobian check also covers
// the dC → 0 regime.
func nlNMOS() device.Params {
	return device.Params{
		Kind: device.NMOS, W: 2e-6, L: 0.13e-6, KP: 340e-6, VT0: 0.35, Lambda: 0.15,
		CGS: device.CapParams{Cp: 1e-15, Co: 1e-15, P0: -0.7, P1: 2.0},
		CGD: device.CapParams{Cp: 1.2e-15, Co: 0.8e-15, P0: 40, P1: 1.2},
	}
}

// capOnlyNMOS is a device that is *only* its gate capacitors: KP = 0 zeroes
// the channel current identically, isolating the nonlinear-cap stamps for
// the charge-conservation battery.
func capOnlyNMOS(cgs device.CapParams) device.Params {
	return device.Params{Kind: device.NMOS, W: 1e-6, L: 0.13e-6, KP: 0, VT0: 0.35, CGS: cgs}
}

// nlJacobianRig is a biased common-source stage around nlNMOS with enough
// structure to exercise every stamp family at once: resistors, a linear
// load cap, two voltage sources (so branch rows participate) and the two
// nonlinear gate caps.
func nlJacobianRig(t *testing.T) *Session {
	t.Helper()
	ckt := circuit.New()
	ckt.AddVDC("vdd", "vdd", "0", 1.2)
	ckt.AddVDC("vin", "in", "0", 0.9)
	ckt.AddR("rin", "in", "g", 1e3)
	ckt.AddR("rl", "vdd", "out", 5e3)
	ckt.AddM("m1", "out", "g", "0", nlNMOS())
	ckt.AddC("cl", "out", "0", 10e-15)
	sess, err := NewSession(Compile(ckt), Options{Dt: 1e-12, Method: Trapezoidal})
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.prog.nlcaps) != 2 {
		t.Fatalf("rig compiled %d nonlinear caps, want 2", len(sess.prog.nlcaps))
	}
	return sess
}

// TestNLCapJacobianFD holds the full assembled Jacobian of an armed NLMOS
// program — MOSFET channel stamps, linear cap companions and the
// per-iteration nonlinear-cap stamps together — to a central finite
// difference of the residual F(x), column by column, at 1e-6 relative
// tolerance. Base points are chosen away from the Level-1 region
// boundaries (which are genuine model kinks) and cover both the active
// tanh transition of C_GS and the saturated tail of C_GD.
func TestNLCapJacobianFD(t *testing.T) {
	s := nlJacobianRig(t)
	geq := 2.0 / s.opts.Dt
	s.stampBase(s.opts.Gmin)
	lin := linalg.NewMatrix(s.size, s.size)
	lin.CopyFrom(s.base)
	for i, cp := range s.prog.caps {
		s.stampConductance(lin, cp.a, cp.b, s.capC[i]*geq)
	}
	// Arm the nonlinear-cap stamps with a nontrivial trapezoidal history so
	// both the C'(u)·rate and C(u)·geq Jacobian terms are live.
	s.nlGeq = geq
	s.nlTrap = true
	defer func() { s.nlGeq = 0 }()
	for i := range s.prog.nlcaps {
		nc := &s.prog.nlcaps[i]
		s.vPrevNL[i] = 0.3
		s.cPrevNL[i], _ = nc.cp.Eval(0.3)
		s.iPrevNL[i] = 2e-6
	}

	node := func(name string) int {
		id, ok := s.prog.ckt.LookupNode(name)
		if !ok {
			t.Fatalf("no node %q", name)
		}
		return int(id)
	}
	// Two Newton iterates: transistor in saturation and in triode, both
	// with > 0.1 V margin to the vov and vds region boundaries so the FD
	// never straddles a model kink.
	bases := []map[string]float64{
		{"vdd": 1.2, "in": 0.9, "g": 0.9, "out": 1.0}, // saturation (vov 0.55, vds 1.0)
		{"vdd": 1.2, "in": 0.9, "g": 1.1, "out": 0.3}, // triode (vov 0.75, vds 0.3)
	}
	b := make([]float64, s.size)
	x := make([]float64, s.size)
	f0 := make([]float64, s.size)
	fp := make([]float64, s.size)
	fm := make([]float64, s.size)
	for bi, bias := range bases {
		for i := range x {
			x[i] = 0.01 * float64(i+1) // branch-current entries: arbitrary
		}
		for name, v := range bias {
			x[node(name)] = v
		}
		s.assemble(lin, x, b)
		copy(f0, s.f)
		jac0 := s.jac.Clone()

		const h = 1e-7
		for j := 0; j < s.size; j++ {
			xj := x[j]
			x[j] = xj + h
			s.assemble(lin, x, b)
			copy(fp, s.f)
			x[j] = xj - h
			s.assemble(lin, x, b)
			copy(fm, s.f)
			x[j] = xj

			// Column scale: FD roundoff is relative to the residual
			// magnitude over h, so compare against the column's own scale
			// with a conservative absolute floor.
			scale := 0.0
			for i := 0; i < s.size; i++ {
				scale = math.Max(scale, math.Abs(jac0.At(i, j)))
			}
			tol := 1e-6*scale + 1e-9
			for i := 0; i < s.size; i++ {
				fd := (fp[i] - fm[i]) / (2 * h)
				if d := math.Abs(jac0.At(i, j) - fd); d > tol {
					t.Errorf("base %d: jac[%d][%d] = %.9g, FD %.9g (|Δ| %.3g > tol %.3g)",
						bi, i, j, jac0.At(i, j), fd, d, tol)
				}
			}
		}
	}
}

// TestNLCapChargeConservation drives a lone nonlinear gate cap (KP = 0
// device) through a full charge/hold/discharge cycle and checks the
// time-integrated branch current — measured through the series resistor,
// i.e. through the engine's converged KCL — against the analytic stored
// charge Q(u) = ∫C du at the end of every segment. The companion form's
// i_last/C_last division is exactly what makes this hold when C varies
// between steps; a naive i_last/C(u_now) scheme leaks charge every step of
// the ramps.
func TestNLCapChargeConservation(t *testing.T) {
	cgs := device.CapParams{Cp: 3e-15, Co: 3e-15, P0: -1.2, P1: 2.5}
	vinW := wave.FromPoints(
		[]float64{0, 100e-12, 600e-12, 1200e-12, 1700e-12, 2200e-12},
		[]float64{0, 0, 1.2, 1.2, 0, 0},
	)
	ckt := circuit.New()
	ckt.AddV("vin", "in", "0", vinW)
	ckt.AddR("r", "in", "g", 10e3)
	ckt.AddM("m1", "0", "g", "0", capOnlyNMOS(cgs))
	sess, err := NewSession(Compile(ckt), Options{Dt: 1e-12, Method: Trapezoidal})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.RunTransient(context.Background(), 2.2e-9)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Stats().NLStampEvals == 0 {
		t.Fatal("no nonlinear cap stamps were evaluated")
	}

	// Trapezoidal time integral of the cap current i = (v_in − v_g)/R.
	const r = 10e3
	integral := 0.0
	cur := func(k int) float64 { return (res.At("in", k) - res.At("g", k)) / r }
	qMax := cgs.Charge(1.2)
	next := 0
	checkpoints := []struct {
		t    float64
		what string
	}{
		{600e-12, "end of charge ramp"},
		{1200e-12, "end of hold plateau"},
		{1700e-12, "end of discharge ramp"},
		{2200e-12, "end of run"},
	}
	for k := 1; k < res.Steps(); k++ {
		dt := res.Times[k] - res.Times[k-1]
		integral += 0.5 * (cur(k) + cur(k-1)) * dt
		for next < len(checkpoints) && res.Times[k] >= checkpoints[next].t-1e-15 {
			wantQ := cgs.Charge(res.At("g", k))
			if d := math.Abs(integral - wantQ); d > 0.01*qMax {
				t.Errorf("%s (t=%.0f ps): ∮i dt = %.4g C, ΔQ analytic = %.4g C (|Δ| %.3g > 1%% of Qmax %.3g)",
					checkpoints[next].what, res.Times[k]*1e12, integral, wantQ, d, qMax)
			}
			next++
		}
	}
	// The closed cycle must return (essentially) all delivered charge.
	if math.Abs(integral) > 0.01*qMax {
		t.Errorf("closed charge/discharge cycle leaked %.3g C (Qmax %.3g)", integral, qMax)
	}
}

// TestNLCapZeroModulationBitIdentical pins the Co = 0 reduction end to end
// at the engine level: a MOSFET whose gate-charge caps have zero modulation
// (with deliberately nonzero, ignored P0/P1) must produce *bit-identical*
// DC and transient solutions to the same netlist spelled with explicit
// constant AddC capacitors — not merely close ones, because the reduction
// compiles to the very same capPlan stamps in the very same order.
func TestNLCapZeroModulationBitIdentical(t *testing.T) {
	build := func(viaParams bool) *Session {
		p := device.Params{Kind: device.NMOS, W: 2e-6, L: 0.13e-6, KP: 340e-6, VT0: 0.35, Lambda: 0.15}
		if viaParams {
			p.CGD = device.CapParams{Cp: 1.5e-15, P0: 1.0, P1: 2.0}
			p.CGS = device.CapParams{Cp: 2e-15, P0: -0.5, P1: 3.0}
		}
		ckt := circuit.New()
		ckt.AddVDC("vdd", "vdd", "0", 1.2)
		ckt.AddV("vin", "in", "0", wave.Triangle(0, 1.0, 50e-12, 300e-12))
		ckt.AddR("rin", "in", "g", 1e3)
		ckt.AddR("rl", "vdd", "out", 5e3)
		ckt.AddM("m1", "out", "g", "0", p)
		ckt.AddC("cl", "out", "0", 10e-15)
		if !viaParams {
			ckt.AddC("m1.cgd", "g", "out", 1.5e-15)
			ckt.AddC("m1.cgs", "g", "0", 2e-15)
		}
		prog := Compile(ckt)
		if n := len(prog.nlcaps); n != 0 {
			t.Fatalf("Co = 0 caps compiled %d nonlinear plans, want 0", n)
		}
		if _, ok := prog.Cap("m1.cgd"); !ok {
			t.Fatal("reduced cap m1.cgd not registered as a constant capacitor")
		}
		sess, err := NewSession(prog, Options{Dt: 1e-12, Method: Trapezoidal})
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}
	sa, sb := build(true), build(false)

	dca, err := sa.RunDC()
	if err != nil {
		t.Fatal(err)
	}
	dcb, err := sb.RunDC()
	if err != nil {
		t.Fatal(err)
	}
	for i := range dca.X {
		if math.Float64bits(dca.X[i]) != math.Float64bits(dcb.X[i]) {
			t.Fatalf("DC unknown %d differs: %x vs %x", i, dca.X[i], dcb.X[i])
		}
	}

	ra, err := sa.RunTransient(context.Background(), 500e-12)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := sb.RunTransient(context.Background(), 500e-12)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Stats().NLStampEvals != 0 || sb.Stats().NLStampEvals != 0 {
		t.Error("zero-modulation run evaluated nonlinear stamps")
	}
	if ra.Steps() != rb.Steps() {
		t.Fatalf("step counts differ: %d vs %d", ra.Steps(), rb.Steps())
	}
	for n := range ra.nodeV {
		for k := range ra.nodeV[n] {
			if math.Float64bits(ra.nodeV[n][k]) != math.Float64bits(rb.nodeV[n][k]) {
				t.Fatalf("node %d step %d differs: %v vs %v", n, k, ra.nodeV[n][k], rb.nodeV[n][k])
			}
		}
	}
	for b := range ra.branchI {
		for k := range ra.branchI[b] {
			if math.Float64bits(ra.branchI[b][k]) != math.Float64bits(rb.branchI[b][k]) {
				t.Fatalf("branch %d step %d differs", b, k)
			}
		}
	}
}

// TestNLCapProgramClassification pins how nonlinear caps interact with the
// linear-fast-path classification: any program carrying an nlCapPlan is
// non-linear (the Jacobian depends on the iterate), the classification
// check names nlcaps explicitly — not just MOSFET presence — and a
// transient over such a program never takes the factored fast path.
func TestNLCapProgramClassification(t *testing.T) {
	ckt := circuit.New()
	ckt.AddV("vin", "in", "0", wave.Triangle(0, 1.0, 50e-12, 200e-12))
	ckt.AddR("r", "in", "g", 10e3)
	ckt.AddM("m1", "0", "g", "0", capOnlyNMOS(device.CapParams{Cp: 2e-15, Co: 2e-15, P0: -1, P1: 2}))
	prog := Compile(ckt)
	if len(prog.nlcaps) != 1 {
		t.Fatalf("compiled %d nonlinear caps, want 1", len(prog.nlcaps))
	}
	if prog.Linear() {
		t.Fatal("program with a nonlinear cap classified as linear")
	}
	sess, err := NewSession(prog, Options{Dt: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunTransient(context.Background(), 400e-12); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.LinearFastPathRuns != 0 {
		t.Errorf("nonlinear-cap transient took the linear fast path %d times", st.LinearFastPathRuns)
	}
	if st.NLStampEvals == 0 {
		t.Error("transient evaluated no nonlinear cap stamps")
	}
	// Every Newton assembly of the step loop stamps each nonlinear cap
	// exactly once, and DC assemblies stamp none (nlGeq = 0 outside the
	// step loop), so the counter is bounded by the iteration count.
	if st.NLStampEvals > st.NewtonIters*int64(len(prog.nlcaps)) {
		t.Errorf("NLStampEvals %d exceeds NewtonIters %d × %d caps",
			st.NLStampEvals, st.NewtonIters, len(prog.nlcaps))
	}
}

// nlGlitchRig is glitchRig on the nonlinear gate-charge card: the same INV
// glitch-propagation bench, with every gate cap voltage-dependent.
func nlGlitchRig(t testing.TB) *circuit.Circuit {
	return glitchRig(t, tech.Tech130().WithNonlinearCaps(), "INV")
}

// TestNLCapPredictorCutsIterations holds the polynomial predictor to its
// contract on the *nonlinear-cap* Newton path: on an NLMOS INV glitch rig
// the predictor must still cut transient Newton iterations by at least 10%
// and converge to the same waveforms — the per-iteration cap re-stamping
// must not break extrapolation-seeded convergence.
func TestNLCapPredictorCutsIterations(t *testing.T) {
	prog := Compile(nlGlitchRig(t))
	if prog.Linear() || len(prog.nlcaps) == 0 {
		t.Fatalf("nl glitch rig should compile nonlinear caps (got %d)", len(prog.nlcaps))
	}
	const tstop = 600e-12
	run := func(pred bool) (SessionStats, *Result) {
		sess, err := NewSession(prog, Options{Dt: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		sess.Predictor(pred)
		res, err := sess.RunTransient(context.Background(), tstop)
		if err != nil {
			t.Fatal(err)
		}
		return sess.Stats(), res
	}
	cold, coldRes := run(false)
	pred, predRes := run(true)
	if cold.NLStampEvals == 0 || pred.NLStampEvals == 0 {
		t.Fatal("nl glitch rig ran without nonlinear stamps")
	}
	cut := 1 - float64(pred.NewtonIters)/float64(cold.NewtonIters)
	t.Logf("nlcap INV: Newton iterations %d → %d (%.1f%% cut)", cold.NewtonIters, pred.NewtonIters, 100*cut)
	if cut < 0.10 {
		t.Errorf("predictor cut nlcap Newton iterations by %.1f%%, want >= 10%%", 100*cut)
	}
	for i := 0; i < coldRes.Steps(); i++ {
		if dv := math.Abs(coldRes.At("out", i) - predRes.At("out", i)); dv > 1e-6 {
			t.Fatalf("predictor run diverges by %g V at step %d", dv, i)
		}
	}
}

// TestNLCapWarmStartAgrees runs the NLMOS glitch rig cold and warm-started:
// warm mode changes only the DC operating-point seeding, never the
// per-iteration cap stamps, so both transients must converge to the same
// waveforms within solver tolerance.
func TestNLCapWarmStartAgrees(t *testing.T) {
	prog := Compile(nlGlitchRig(t))
	run := func(warm, second bool) *Result {
		sess, err := NewSession(prog, Options{Dt: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		sess.WarmStart(warm)
		res, err := sess.RunTransient(context.Background(), 500e-12)
		if err != nil {
			t.Fatal(err)
		}
		if second {
			// The second run actually consumes the warm state.
			if res, err = sess.RunTransient(context.Background(), 500e-12); err != nil {
				t.Fatal(err)
			}
		}
		return res
	}
	cold := run(false, false)
	warm := run(true, true)
	for i := 0; i < cold.Steps(); i++ {
		if dv := math.Abs(cold.At("out", i) - warm.At("out", i)); dv > 1e-5 {
			t.Fatalf("warm-started nlcap run diverges by %g V at step %d", dv, i)
		}
	}
}

// TestNLCapChangesGlitchTransfer is the physical smoke test: the same INV
// glitch rig simulated with constant caps and with the nonlinear
// gate-charge model must disagree measurably at the output — voltage-
// dependent gate charge redistributes during the glitch — while staying in
// the same physical ballpark (same supply rails).
func TestNLCapChangesGlitchTransfer(t *testing.T) {
	run := func(tc *tech.Tech) *Result {
		sess, err := NewSession(Compile(glitchRig(t, tc, "INV")), Options{Dt: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sess.RunTransient(context.Background(), 600e-12)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	lin := run(tech.Tech130())
	nl := run(tech.Tech130().WithNonlinearCaps())
	maxDiff := 0.0
	for i := 0; i < lin.Steps(); i++ {
		maxDiff = math.Max(maxDiff, math.Abs(lin.At("out", i)-nl.At("out", i)))
	}
	t.Logf("max |Δout| between constant-cap and nlcap INV glitch: %.4g V", maxDiff)
	if maxDiff < 1e-3 {
		t.Errorf("nonlinear gate charge changed the glitch transfer by only %g V, want >= 1 mV", maxDiff)
	}
	if maxDiff > 0.5*tech.Tech130().VDD {
		t.Errorf("nonlinear gate charge changed the glitch transfer by %g V — model likely broken", maxDiff)
	}
}

// BenchmarkNLMOSTransient measures the nonlinear-cap Newton path on the
// INV glitch rig — the per-iteration stamp cost the CI bench artifact
// tracks next to the constant-cap benchmarks.
func BenchmarkNLMOSTransient(b *testing.B) {
	prog := Compile(nlGlitchRig(b))
	sess, err := NewSession(prog, Options{Dt: 1e-12})
	if err != nil {
		b.Fatal(err)
	}
	res := &Result{}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sess.RunTransientInto(ctx, res, 600e-12); err != nil {
			b.Fatal(err)
		}
	}
}
