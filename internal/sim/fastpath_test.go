package sim

import (
	"context"
	"testing"

	"stanoise/internal/circuit"
	"stanoise/internal/interconnect"
	"stanoise/internal/tech"
	"stanoise/internal/wave"
)

// rcLadderCircuit is a 6-section RC ladder driven by a saturated ramp —
// the canonical linear-only transient load.
func rcLadderCircuit(t testing.TB) *circuit.Circuit {
	t.Helper()
	ckt := circuit.New()
	ckt.AddV("vin", "n0", "0", wave.SaturatedRamp(0, 1.2, 20e-12, 80e-12))
	for i := 0; i < 6; i++ {
		a := "n" + string(rune('0'+i))
		b := "n" + string(rune('1'+i))
		ckt.AddR("r"+a, a, b, 150)
		ckt.AddC("c"+b, b, "0", 20e-15)
	}
	return ckt
}

// rcGlitchCircuit couples a triangle glitch through a cap divider onto a
// resistively held victim — linear, with both V- and I-sources.
func rcGlitchCircuit(t testing.TB) *circuit.Circuit {
	t.Helper()
	ckt := circuit.New()
	ckt.AddV("vagg", "agg", "0", wave.Triangle(0, 1.0, 50e-12, 200e-12))
	ckt.AddC("cc", "agg", "vic", 15e-15)
	ckt.AddR("rhold", "vic", "0", 2000)
	ckt.AddC("cg", "vic", "0", 40e-15)
	ckt.AddI("inoise", "0", "vic", wave.Triangle(0, 20e-6, 120e-12, 100e-12))
	return ckt
}

// busCircuit is the two-line coupled interconnect bundle the mor golden
// comparisons use, victim driven by a ramp and aggressor glitching.
func busCircuit(t testing.TB) *circuit.Circuit {
	t.Helper()
	bus, err := interconnect.NewBus(tech.Tech130(), "M4", 8,
		interconnect.LineSpec{Name: "vic", LengthUm: 500},
		interconnect.LineSpec{Name: "agg", LengthUm: 500},
	)
	if err != nil {
		t.Fatal(err)
	}
	ckt := circuit.New()
	bus.Build(ckt)
	ckt.AddV("vs", bus.InNode(0), "0", wave.SaturatedRamp(0, 1.2, 50e-12, 50e-12))
	ckt.AddV("va", bus.InNode(1), "0", wave.Triangle(0, 1.2, 200e-12, 150e-12))
	ckt.AddC("clv", bus.OutNode(0), "0", 10e-15)
	return ckt
}

var fastPathCircuits = []struct {
	name  string
	build func(testing.TB) *circuit.Circuit
	tstop float64
}{
	{"rc_ladder", rcLadderCircuit, 1e-9},
	{"rc_glitch", rcGlitchCircuit, 600e-12},
	{"interconnect_bus", busCircuit, 1e-9},
}

// TestLinearFastPathBitIdentical runs each linear netlist twice on the
// same compiled Program — once on the fast path, once with the Newton path
// forced — and requires bitwise-identical results. The fast path hoists
// the factorisation out of a loop whose matrix never changes, so any bit
// of divergence means it stopped mirroring newton's arithmetic.
func TestLinearFastPathBitIdentical(t *testing.T) {
	for _, tc := range fastPathCircuits {
		t.Run(tc.name, func(t *testing.T) {
			prog := Compile(tc.build(t))
			if !prog.Linear() {
				t.Fatalf("circuit %s compiled non-linear", tc.name)
			}
			opts := Options{Dt: 1e-12}

			fastSess, err := NewSession(prog, opts)
			if err != nil {
				t.Fatal(err)
			}
			fastRes, err := fastSess.RunTransient(context.Background(), tc.tstop)
			if err != nil {
				t.Fatal(err)
			}

			slowSess, err := NewSession(prog, opts)
			if err != nil {
				t.Fatal(err)
			}
			slowSess.noFastPath = true
			slowRes, err := slowSess.RunTransient(context.Background(), tc.tstop)
			if err != nil {
				t.Fatal(err)
			}

			if fs, ss := fastSess.Stats(), slowSess.Stats(); fs.NewtonIters != 0 {
				t.Errorf("fast path spent %d Newton iterations, want 0", fs.NewtonIters)
			} else if fs.LinearFastPathRuns != 1 || ss.LinearFastPathRuns != 0 {
				t.Errorf("LinearFastPathRuns fast=%d slow=%d, want 1/0",
					fs.LinearFastPathRuns, ss.LinearFastPathRuns)
			} else if ss.NewtonIters == 0 {
				t.Error("forced Newton path spent no iterations; hook broken")
			}

			if got, want := fastRes.Steps(), slowRes.Steps(); got != want {
				t.Fatalf("step counts differ: fast %d, newton %d", got, want)
			}
			for i, tm := range fastRes.Times {
				if tm != slowRes.Times[i] {
					t.Fatalf("time grid differs at step %d: %g vs %g", i, tm, slowRes.Times[i])
				}
			}
			for n := range fastRes.nodeV {
				for i := range fastRes.nodeV[n] {
					if fastRes.nodeV[n][i] != slowRes.nodeV[n][i] {
						t.Fatalf("node %d differs at step %d: %x vs %x",
							n, i, fastRes.nodeV[n][i], slowRes.nodeV[n][i])
					}
				}
			}
			for k := range fastRes.branchI {
				for i := range fastRes.branchI[k] {
					if fastRes.branchI[k][i] != slowRes.branchI[k][i] {
						t.Fatalf("branch %d differs at step %d: %x vs %x",
							k, i, fastRes.branchI[k][i], slowRes.branchI[k][i])
					}
				}
			}
		})
	}
}

// TestLinearFastPathCounters pins the process-wide counter contract the CI
// smoke greps for: a pure-RC transient advances LinearFastPathRuns and
// TransientSteps but leaves NewtonIters untouched.
func TestLinearFastPathCounters(t *testing.T) {
	sess, err := NewSession(Compile(rcLadderCircuit(t)), Options{Dt: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	before := Snapshot()
	res, err := sess.RunTransient(context.Background(), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	d := Snapshot().Sub(before)
	if d.NewtonIters != 0 {
		t.Errorf("NewtonIters advanced by %d on a linear run, want 0", d.NewtonIters)
	}
	if d.LinearFastPathRuns != 1 {
		t.Errorf("LinearFastPathRuns advanced by %d, want 1", d.LinearFastPathRuns)
	}
	if want := int64(res.Steps() - 1); d.TransientSteps != want {
		t.Errorf("TransientSteps advanced by %d, want %d", d.TransientSteps, want)
	}
	if d.DC != 1 || d.Transient != 1 {
		t.Errorf("DC/Transient advanced by %d/%d, want 1/1", d.DC, d.Transient)
	}
}

// TestLinearFastPathWarmStartDisables pins the documented interaction:
// warm-start mode keeps its DC-continuation semantics by taking the legacy
// path, so a warm linear transient must not count a fast-path run.
func TestLinearFastPathWarmStartDisables(t *testing.T) {
	sess, err := NewSession(Compile(rcLadderCircuit(t)), Options{Dt: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	sess.WarmStart(true)
	if _, err := sess.RunTransient(context.Background(), 200e-12); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.LinearFastPathRuns != 0 {
		t.Errorf("warm-start run took the fast path %d times, want 0", st.LinearFastPathRuns)
	}
	if st.NewtonIters == 0 {
		t.Error("warm-start run spent no Newton iterations; legacy path not taken")
	}
}
