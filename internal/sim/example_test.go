package sim_test

import (
	"fmt"

	"stanoise/internal/circuit"
	"stanoise/internal/sim"
)

// ExampleSession shows the compile-once/run-many sweep pattern: a resistor
// divider is compiled to a Program once, then one Session solves it at a
// series of source values with only the source parameter mutated between
// runs — no per-point netlist assembly, node resolution or matrix
// allocation.
func ExampleSession() {
	ckt := circuit.New()
	ckt.AddVDC("vin", "in", "0", 0) // swept below via its handle
	ckt.AddR("r1", "in", "out", 1000)
	ckt.AddR("r2", "out", "0", 1000)

	prog := sim.Compile(ckt)
	sess, err := sim.NewSession(prog, sim.Options{})
	if err != nil {
		panic(err)
	}
	hVin := prog.MustSource("vin")

	var dc sim.DCResult // reused: the sweep loop allocates nothing
	for _, vin := range []float64{0.4, 0.8, 1.2} {
		sess.SetSourceDC(hVin, vin)
		if err := sess.RunDCInto(&dc); err != nil {
			panic(err)
		}
		fmt.Printf("vin=%.1f  v(out)=%.3f\n", vin, dc.NodeV("out"))
	}
	// Output:
	// vin=0.4  v(out)=0.200
	// vin=0.8  v(out)=0.400
	// vin=1.2  v(out)=0.600
}

// ExampleSession_warmStart enables the Newton continuation mode for a
// sweep: each solve seeds from the previous grid point's converged
// solution, and the session's statistics show how many solves were
// warm-started. On fine characterisation grids this cuts total Newton
// iterations roughly in half (see EXPERIMENTS.md).
func ExampleSession_warmStart() {
	ckt := circuit.New()
	ckt.AddVDC("vin", "in", "0", 0)
	ckt.AddR("r1", "in", "out", 1000)
	ckt.AddR("r2", "out", "0", 1000)

	prog := sim.Compile(ckt)
	sess, err := sim.NewSession(prog, sim.Options{})
	if err != nil {
		panic(err)
	}
	sess.WarmStart(true) // opt-in: results may differ in the last bits
	hVin := prog.MustSource("vin")

	var dc sim.DCResult
	for i := 0; i < 10; i++ {
		sess.SetSourceDC(hVin, float64(i)*0.1)
		if err := sess.RunDCInto(&dc); err != nil {
			panic(err)
		}
	}
	st := sess.Stats()
	fmt.Printf("%d solves, %d warm-started, %d fallbacks\n",
		st.DCSolves, st.WarmStarts, st.WarmFallbacks)
	// Output:
	// 10 solves, 9 warm-started, 0 fallbacks
}
