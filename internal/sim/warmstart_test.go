package sim

import (
	"context"
	"math"
	"testing"

	"stanoise/internal/cell"
	"stanoise/internal/circuit"
	"stanoise/internal/tech"
	"stanoise/internal/wave"
)

// TestRunDCIntoMatchesRunDC asserts the allocation-free result path fills
// exactly the vector RunDC would have returned, point by sweep point.
func TestRunDCIntoMatchesRunDC(t *testing.T) {
	cl := cell.MustNew(tech.Tech130(), "NAND2", 1)
	st, err := cl.SensitizedState("B", true)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() (*Session, SourceHandle, SourceHandle) {
		ckt := buildForceBench(t, cl, st, "B", 0, 0)
		prog := Compile(ckt)
		sess, err := NewSession(prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return sess, prog.MustSource("v_B"), prog.MustSource("vforce")
	}
	sRef, hNoisyRef, hForceRef := mk()
	sInto, hNoisyInto, hForceInto := mk()
	var dc DCResult
	for _, vin := range []float64{0, 0.4, 0.9, 1.2} {
		for _, vout := range []float64{0, 0.6, 1.2} {
			sRef.SetSourceDC(hNoisyRef, vin)
			sRef.SetSourceDC(hForceRef, vout)
			want, err := sRef.RunDC()
			if err != nil {
				t.Fatal(err)
			}
			sInto.SetSourceDC(hNoisyInto, vin)
			sInto.SetSourceDC(hForceInto, vout)
			if err := sInto.RunDCInto(&dc); err != nil {
				t.Fatal(err)
			}
			if len(dc.X) != len(want.X) {
				t.Fatalf("unknown count mismatch: %d vs %d", len(dc.X), len(want.X))
			}
			for i := range dc.X {
				if dc.X[i] != want.X[i] {
					t.Fatalf("vin=%g vout=%g: X[%d] = %v (into) vs %v (RunDC)", vin, vout, i, dc.X[i], want.X[i])
				}
			}
			if got, want := dc.SourceCurrent(hForceInto), want.BranchI("vforce"); got != want {
				t.Fatalf("SourceCurrent = %v, BranchI = %v", got, want)
			}
		}
	}
}

// TestRunDCIntoAllocFree asserts the full per-grid-point sweep loop —
// source mutation, guess seeding, solve, result extraction — allocates
// zero bytes once the session and result are warm. This is the contract
// that keeps fine characterisation grids out of the allocator entirely.
func TestRunDCIntoAllocFree(t *testing.T) {
	cl := cell.MustNew(tech.Tech130(), "NAND2", 1)
	st, err := cl.SensitizedState("B", true)
	if err != nil {
		t.Fatal(err)
	}
	ckt := buildForceBench(t, cl, st, "B", 0.5, 0.8)
	prog := Compile(ckt)
	for _, warm := range []bool{false, true} {
		sess, err := NewSession(prog, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sess.WarmStart(warm)
		hNoisy := prog.MustSource("v_B")
		hForce := prog.MustSource("vforce")
		var dc DCResult
		var sink float64
		// Warm up: first RunDCInto sizes the result, first SetSourceDC and
		// SetGuess create their session-owned entries.
		sess.SetSourceDC(hNoisy, 0.5)
		sess.SetSourceDC(hForce, 0.8)
		sess.SetGuess("dut.n1", 0.8)
		if err := sess.RunDCInto(&dc); err != nil {
			t.Fatal(err)
		}
		vout := 0.7
		allocs := testing.AllocsPerRun(50, func() {
			vout += 0.001 // move the sweep so every run truly solves
			sess.SetSourceDC(hNoisy, 0.5)
			sess.SetSourceDC(hForce, vout)
			sess.SetGuess("dut.n1", vout)
			if err := sess.RunDCInto(&dc); err != nil {
				t.Fatal(err)
			}
			sink += dc.SourceCurrent(hForce)
		})
		if allocs != 0 {
			t.Fatalf("warm=%v: sweep point allocates %.1f objects, want 0", warm, allocs)
		}
		_ = sink
	}
}

// TestWarmStartDCMatchesColdWithinTolerance sweeps the same DC grid cold
// and warm-started; converged solutions must agree to solver tolerance
// (they are the same root, approached from different seeds).
func TestWarmStartDCMatchesColdWithinTolerance(t *testing.T) {
	for _, cl := range equivCells(t) {
		noisy := cl.Inputs()[len(cl.Inputs())-1]
		st, err := cl.SensitizedState(noisy, true)
		if err != nil {
			t.Fatal(err)
		}
		vdd := cl.Tech.VDD
		mk := func(warm bool) (*Session, SourceHandle, SourceHandle) {
			ckt := buildForceBench(t, cl, st, noisy, 0, 0)
			prog := Compile(ckt)
			sess, err := NewSession(prog, Options{})
			if err != nil {
				t.Fatal(err)
			}
			sess.WarmStart(warm)
			return sess, prog.MustSource("v_" + noisy), prog.MustSource("vforce")
		}
		cold, hNC, hFC := mk(false)
		warm, hNW, hFW := mk(true)
		var dcC, dcW DCResult
		for vin := -0.2 * vdd; vin <= 1.2*vdd+1e-12; vin += 0.1 * vdd {
			for vout := -0.2 * vdd; vout <= 1.2*vdd+1e-12; vout += 0.1 * vdd {
				cold.SetSourceDC(hNC, vin)
				cold.SetSourceDC(hFC, vout)
				if err := cold.RunDCInto(&dcC); err != nil {
					t.Fatal(err)
				}
				warm.SetSourceDC(hNW, vin)
				warm.SetSourceDC(hFW, vout)
				if err := warm.RunDCInto(&dcW); err != nil {
					t.Fatal(err)
				}
				for i := range dcC.X {
					if d := math.Abs(dcC.X[i] - dcW.X[i]); d > 1e-6 {
						t.Fatalf("%s vin=%.2f vout=%.2f: X[%d] cold %v warm %v (|Δ| %.3g)",
							cl.Name(), vin, vout, i, dcC.X[i], dcW.X[i], d)
					}
				}
			}
		}
		ws := warm.Stats()
		if ws.WarmStarts == 0 {
			t.Fatalf("%s: warm session never warm-started (stats %+v)", cl.Name(), ws)
		}
		if cs := cold.Stats(); cs.WarmStarts != 0 {
			t.Fatalf("%s: cold session warm-started %d times", cl.Name(), cs.WarmStarts)
		}
	}
}

// TestWarmStartStatsAndReset exercises the warm-start bookkeeping: the
// first solve is always cold, ResetWarmStart forces the next one cold, and
// turning the mode off discards the stored seed.
func TestWarmStartStatsAndReset(t *testing.T) {
	c := circuit.New()
	c.AddV("vs", "in", "0", wave.Constant(1))
	c.AddR("r", "in", "out", 1000)
	c.AddR("r2", "out", "0", 1000)
	prog := Compile(c)
	sess, err := NewSession(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sess.WarmStart(true)
	run := func() {
		if _, err := sess.RunDC(); err != nil {
			t.Fatal(err)
		}
	}
	run() // cold: no seed yet
	if s := sess.Stats(); s.WarmStarts != 0 || s.DCSolves != 1 {
		t.Fatalf("after first solve: %+v", s)
	}
	run() // warm
	if s := sess.Stats(); s.WarmStarts != 1 {
		t.Fatalf("after second solve: %+v", s)
	}
	sess.ResetWarmStart()
	run() // cold again
	if s := sess.Stats(); s.WarmStarts != 1 {
		t.Fatalf("after reset: %+v", s)
	}
	run() // warm again
	sess.WarmStart(false)
	sess.WarmStart(true) // toggling off discards the seed
	run()                // cold
	if s := sess.Stats(); s.WarmStarts != 2 || s.WarmFallbacks != 0 {
		t.Fatalf("final stats: %+v", s)
	}
}

// TestSetISourceSweepMatchesOneShot sweeps a current source through a
// compiled session (SetISourceDC) and through fresh one-shot circuits; the
// solutions must agree bit-for-bit, like every other session parameter.
// This is the injected-noise characterisation path: a noise current driven
// into a resistive net.
func TestSetISourceSweepMatchesOneShot(t *testing.T) {
	build := func(i0 float64) *circuit.Circuit {
		c := circuit.New()
		c.AddI("inoise", "net", "0", wave.Constant(i0))
		c.AddR("rhold", "net", "0", 750)
		c.AddR("rw", "net", "far", 120)
		c.AddR("rg", "far", "0", 2200)
		return c
	}
	prog := Compile(build(0))
	sess, err := NewSession(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := prog.MustISource("inoise")
	var dc DCResult
	for _, i0 := range []float64{-2e-3, 0, 0.5e-3, 1e-3, 3e-3} {
		sess.SetISourceDC(h, i0)
		if err := sess.RunDCInto(&dc); err != nil {
			t.Fatal(err)
		}
		want, err := DC(build(i0), Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []string{"net", "far"} {
			if got, w := dc.NodeV(n), want.NodeV(n); got != w {
				t.Fatalf("i0=%g node %s: %v (session) vs %v (one-shot)", i0, n, got, w)
			}
		}
	}
	// And the waveform variant: a transient ramp replaced via SetISource.
	ramp := wave.SaturatedRamp(0, 1e-3, 100e-12, 200e-12)
	sess2, err := NewSession(prog, Options{Dt: 10e-12})
	if err != nil {
		t.Fatal(err)
	}
	sess2.SetISource(h, ramp)
	got, err := sess2.RunTransient(context.Background(), 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	ckt := build(0)
	ckt.ISources[0].W = ramp
	want, err := Transient(context.Background(), ckt, Options{Dt: 10e-12, TStop: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	gw, ww := got.Waveform("net"), want.Waveform("net")
	for i := range gw.V {
		if gw.V[i] != ww.V[i] {
			t.Fatalf("step %d: %v vs %v", i, gw.V[i], ww.V[i])
		}
	}
}
