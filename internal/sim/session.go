package sim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"stanoise/internal/circuit"
	"stanoise/internal/linalg"
	"stanoise/internal/wave"
)

// Session is the mutable run state for one compiled Program: preallocated
// MNA matrices, right-hand-side/solution vectors and an in-place LU
// workspace, plus the per-run parameters (source waveforms, capacitor
// values, initial-guess seeds). A characterisation sweep compiles its
// topology once, opens one Session, and then only mutates parameters
// between RunDC/RunTransient calls — no per-point circuit assembly, node
// resolution or matrix allocation.
//
// The Newton inner loop is allocation-free: the Jacobian is copied into
// reused buffers, factored in place, and solved into a preallocated
// update vector (asserted by TestNewtonLoopAllocFree). Results returned by
// RunDC/RunTransient are fresh allocations and remain valid after further
// runs.
//
// A Session is not safe for concurrent use; open one Session per
// goroutine (Programs are immutable and may be shared).
type Session struct {
	prog *Program
	opts Options

	n, m, size int

	// base holds all voltage-independent, time-independent conductance
	// stamps: resistors, gmin, and the voltage-source incidence pattern.
	base *linalg.Matrix
	// stampedGmin is the gmin currently stamped into base; DC gmin
	// stepping temporarily restamps it.
	stampedGmin float64

	// Scratch buffers reused across runs and Newton iterations. lin is
	// allocated lazily on the first transient run; DC-only sessions (the
	// load-curve sweeps) never pay for it.
	lin *linalg.Matrix // transient system matrix: base + cap companions
	jac *linalg.Matrix
	lu  *linalg.LUWorkspace
	f   []float64
	rhs []float64
	b   []float64
	x   []float64
	dx  []float64

	// Mutable per-run parameters, seeded from the Program at creation.
	srcW  []*wave.Waveform
	isrcW []*wave.Waveform
	capC  []float64

	// ownConst and ownConstI hold session-owned constant waveforms, one
	// per voltage/current source, lazily created by SetSourceDC and
	// SetISourceDC and mutated in place on later calls so a DC sweep point
	// allocates nothing for its source values.
	ownConst  []*wave.Waveform
	ownConstI []*wave.Waveform

	// Capacitor companion history (branch voltage and current).
	vPrev []float64
	iPrev []float64

	// Nonlinear-capacitor companion history: branch voltage, branch
	// current and the capacitance C(u) the current was computed with. The
	// charge-conserving companion form divides the history current by its
	// own capacitance (i_last/C_last, see assemble), so C must be carried
	// alongside i — recomputing it from vPrevNL would be wrong after a
	// parameter change and is why the NLNMOS discretization stores it.
	vPrevNL []float64
	iPrevNL []float64
	cPrevNL []float64
	// nlGeq is the active companion factor (1/h for BE, 2/h for
	// trapezoidal) while a transient step loop is running, and 0 outside
	// it. assemble stamps the nonlinear caps only when nlGeq > 0: at DC a
	// capacitor is an open circuit and contributes nothing, which keeps
	// every DC solve — including the transient operating point — exactly
	// on the legacy arithmetic.
	nlGeq  float64
	nlTrap bool

	// Initial-guess seeds resolved to node indices.
	guesses []guessEntry

	// Warm-start state (see WarmStart): the last converged DC solution,
	// used as the Newton seed of the next solve when warm starting is on.
	warmStart bool
	haveWarm  bool
	xWarm     []float64

	// Predictor state (see Predictor): a ring of the last three converged
	// timestep solutions (xHist[0] newest) plus the pre-seed fallback
	// buffer, allocated lazily on the first predictor-mode transient run so
	// predictor-off sessions pay nothing.
	predictor bool
	xHist     [3][]float64
	xFallback []float64

	// noFastPath forces the Newton path even for linear programs. Test
	// hook: the fast-path property tests run both paths on one topology
	// and assert bit-identical results.
	noFastPath bool

	stats SessionStats
}

// SessionStats counts the work a single Session has performed since it was
// opened: solves started, Newton iterations spent, and how the warm-start
// continuation behaved. Warm-start effectiveness is (cold NewtonIters −
// warm NewtonIters) over identical sweeps; WarmFallbacks counts the solves
// where the warm seed failed to converge and the session transparently
// re-solved from the cold initial guess.
type SessionStats struct {
	DCSolves      int64 // DC solves started (RunDC, RunDCInto and transient operating points)
	Transients    int64 // transient runs started
	NewtonIters   int64 // Newton iterations across all solves (including gmin stepping)
	WarmStarts    int64 // DC solves seeded from the previous converged solution
	WarmFallbacks int64 // warm-started solves that had to fall back to a cold start
	// TransientSteps counts accepted transient timesteps — the denominator
	// for per-step work metrics such as NewtonIters/step, which is what the
	// polynomial predictor reduces.
	TransientSteps int64
	// LinearFastPathRuns counts transient runs that took the factor-once
	// linear fast path (see RunTransient); such runs spend zero Newton
	// iterations.
	LinearFastPathRuns int64
	// PredictorSeeds counts timesteps whose Newton solve was seeded by
	// polynomial extrapolation (see Predictor); PredictorFallbacks counts
	// the subset whose seed failed to converge and was transparently
	// re-solved from the previous converged point.
	PredictorSeeds     int64
	PredictorFallbacks int64
	// NLStampEvals counts nonlinear-capacitor stamp evaluations: one per
	// voltage-dependent cap per Newton assembly of a transient step. Zero
	// for constant-cap programs — the counter is the proof a run really
	// exercised the state-dependent charge model (the /statsz assertion of
	// the nlcap smoke job).
	NLStampEvals int64
}

// Stats snapshots the session's work counters.
func (s *Session) Stats() SessionStats { return s.stats }

type guessEntry struct {
	node int
	v    float64
}

// NewSession opens a Session against a compiled Program. Options are
// validated (see Options.Validate) and normalized once here; TStop is
// ignored — RunTransient takes the stop time per run.
func NewSession(p *Program, opts Options) (*Session, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	s := &Session{
		prog: p,
		opts: opts.normalize(),
		n:    p.n,
		m:    p.m,
		size: p.size,
	}
	s.base = linalg.NewMatrix(s.size, s.size)
	s.jac = linalg.NewMatrix(s.size, s.size)
	s.lu = linalg.NewLUWorkspace(s.size)
	s.f = make([]float64, s.size)
	s.rhs = make([]float64, s.size)
	s.b = make([]float64, s.size)
	s.x = make([]float64, s.size)
	s.dx = make([]float64, s.size)
	s.srcW = append([]*wave.Waveform(nil), p.srcW0...)
	s.isrcW = append([]*wave.Waveform(nil), p.isrcW0...)
	s.capC = append([]float64(nil), p.capC0...)
	s.vPrev = make([]float64, len(p.caps))
	s.iPrev = make([]float64, len(p.caps))
	if len(p.nlcaps) > 0 {
		s.vPrevNL = make([]float64, len(p.nlcaps))
		s.iPrevNL = make([]float64, len(p.nlcaps))
		s.cPrevNL = make([]float64, len(p.nlcaps))
	}
	s.xWarm = make([]float64, s.size)
	for name, v := range s.opts.InitialGuess {
		s.setGuess(name, v)
	}
	s.stampBase(s.opts.Gmin)
	return s, nil
}

// SetSource replaces the waveform of a voltage source for subsequent runs.
func (s *Session) SetSource(h SourceHandle, w *wave.Waveform) {
	if w == nil {
		panic("sim: SetSource with nil waveform")
	}
	s.srcW[h] = w
}

// SetSourceDC sets a voltage source to a constant value for subsequent
// runs — the per-point mutation of a DC characterisation sweep. The
// constant waveform is session-owned and reused across calls, so a sweep
// point allocates nothing here.
func (s *Session) SetSourceDC(h SourceHandle, v float64) {
	if s.ownConst == nil {
		s.ownConst = make([]*wave.Waveform, len(s.srcW))
	}
	if s.ownConst[h] == nil {
		s.ownConst[h] = wave.Constant(v)
	} else {
		s.ownConst[h].V[0] = v
	}
	s.srcW[h] = s.ownConst[h]
}

// SetISource replaces the waveform of a current source for subsequent
// runs — the symmetric operation to SetSource for injected-noise
// characterisation sweeps that drive a net with a current stimulus.
func (s *Session) SetISource(h ISourceHandle, w *wave.Waveform) {
	if w == nil {
		panic("sim: SetISource with nil waveform")
	}
	s.isrcW[h] = w
}

// SetISourceDC sets a current source to a constant value for subsequent
// runs. Like SetSourceDC, the constant waveform is session-owned and
// mutated in place, so a DC sweep point allocates nothing here.
func (s *Session) SetISourceDC(h ISourceHandle, v float64) {
	if s.ownConstI == nil {
		s.ownConstI = make([]*wave.Waveform, len(s.isrcW))
	}
	if s.ownConstI[h] == nil {
		s.ownConstI[h] = wave.Constant(v)
	} else {
		s.ownConstI[h].V[0] = v
	}
	s.isrcW[h] = s.ownConstI[h]
}

// WarmStart switches the Newton continuation mode of subsequent DC solves
// (including the operating-point solve at the start of every transient).
//
// When on, each solve seeds Newton from the previous converged DC solution
// instead of the cold initial guess — the classic continuation trick for
// characterisation sweeps, where neighbouring grid points have nearly
// identical operating points. Ground-referenced source nodes are re-pinned
// at their current values on top of the carried solution, so the seed
// satisfies the new boundary conditions exactly, and warm solves terminate
// on the standard small-undamped-update criterion (see newton), which
// together reduce a fine sweep to about one iteration per grid point. A
// warm-started solve that fails to converge transparently falls back to
// the cold start (and then gmin stepping), so warm starting never costs
// robustness; it is still opt-in because the converged result can
// legitimately differ from a cold solve in the last bits, breaking
// bit-identical reproducibility with the legacy flow.
//
// Initial-guess seeds (Options.InitialGuess, SetGuess) only apply to cold
// starts; while a warm seed is available they are ignored by design.
// Switching warm start off (or calling ResetWarmStart) discards the stored
// solution, so the next solve is cold again.
func (s *Session) WarmStart(on bool) {
	s.warmStart = on
	if !on {
		s.haveWarm = false
	}
}

// ResetWarmStart discards the stored warm-start seed, forcing the next DC
// solve to start cold even in warm-start mode. Sweeps can call it at grid
// discontinuities where the previous point is a bad predictor.
func (s *Session) ResetWarmStart() { s.haveWarm = false }

// Predictor switches the polynomial-predictor seeding mode of subsequent
// transient runs.
//
// When on, each timestep's Newton solve is seeded by extrapolating the
// previous converged timestep solutions instead of starting from the
// previous point alone: the first step keeps the legacy previous-point
// seed, the second uses linear extrapolation (2·x₁ − x₀), and from the
// third on a second-order polynomial over the last three points
// (3·x₂ − 3·x₁ + x₀). On the smooth waveforms of glitch rigs the seed
// lands close enough to the solution that Newton needs measurably fewer
// iterations per step (TestPredictorCutsNewtonIterations asserts the
// floor). A predicted seed that fails to converge is transparently
// re-solved from the previous converged point — the legacy seed — so the
// predictor never costs robustness; fallbacks are counted in
// SessionStats.PredictorFallbacks.
//
// Like WarmStart it is opt-in because the converged result can differ from
// the legacy flow in the last bits (Newton converges to the same solution
// from a different seed, within tolerance rather than bitwise).
// Linear-fast-path runs ignore the predictor: they perform no Newton
// iterations to seed.
func (s *Session) Predictor(on bool) { s.predictor = on }

// WarmState returns a copy of the stored warm-start seed — the last
// converged DC solution (node voltages followed by branch currents) — and
// whether one exists. Corner-sweep drivers use it to carry a converged
// state across session (and therefore corner) boundaries; see
// SeedWarmStart for the receiving end.
func (s *Session) WarmState() ([]float64, bool) {
	if !s.haveWarm {
		return nil, false
	}
	return append([]float64(nil), s.xWarm...), true
}

// SeedWarmStart installs an externally produced solution vector as the
// session's warm-start seed, extending Newton continuation across session
// boundaries: a corner sweep seeds each corner's first solve from the
// adjacent corner's converged state. The vector must have the session's
// full unknown count (node voltages plus branch currents) — sessions
// compiled from the same Program share that layout, and adjacent-corner
// rigs differ only in device parameters, not topology. The seed is only
// consulted in warm-start mode, and a seed that fails to converge falls
// back to the cold start transparently (see solveDC), so a bad transplant
// never costs robustness. A mismatched length panics: it means the caller
// transplanted between different topologies, a programming error.
func (s *Session) SeedWarmStart(x []float64) {
	if len(x) != s.size {
		panic(fmt.Sprintf("sim: SeedWarmStart with %d unknowns, session has %d", len(x), s.size))
	}
	copy(s.xWarm, x)
	s.haveWarm = true
}

// MemoryBytes estimates the session's resident footprint: the dense
// matrices (base, Jacobian, the LU workspace buffer, and the transient
// system matrix once allocated) dominate at size² float64s each, plus the
// per-unknown vectors. Long-lived holders of many sessions — core.RigPool
// above all — use it to enforce byte-based retention bounds; it is an
// accounting estimate, not an exact heap measurement.
func (s *Session) MemoryBytes() int64 {
	sz := int64(s.size)
	matrices := int64(3) // base, jac, lu workspace buffer
	if s.lin != nil {
		matrices++
	}
	b := matrices * sz * sz * 8
	// f, rhs, b, x, dx, xWarm (+ pivot ints and small per-element slices).
	b += 6*sz*8 + sz*8
	b += int64(len(s.vPrev)+len(s.iPrev)) * 16
	b += int64(len(s.vPrevNL)) * 24 // vPrevNL + iPrevNL + cPrevNL
	if s.xFallback != nil {
		// Predictor history ring (3 vectors) plus the fallback buffer.
		b += 4 * sz * 8
	}
	return b
}

// SetLoad replaces the value of a capacitor for subsequent runs — the
// per-point mutation of a load sweep. A zero value is legal and stamps
// nothing; negative or non-finite values are programming errors.
func (s *Session) SetLoad(h CapHandle, c float64) {
	if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		panic(fmt.Sprintf("sim: SetLoad with invalid capacitance %g", c))
	}
	s.capC[h] = c
}

// SetGuess overrides the initial-guess voltage of a named node for
// subsequent runs, replacing any value the Options carried for it.
// Unknown node names and ground are silently ignored, matching how
// Options.InitialGuess treats them; the value must be finite.
func (s *Session) SetGuess(name string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("sim: SetGuess(%q) with non-finite value %g", name, v))
	}
	s.setGuess(name, v)
}

func (s *Session) setGuess(name string, v float64) {
	id, ok := s.prog.ckt.LookupNode(name)
	if !ok || id == circuit.Ground {
		return
	}
	for i := range s.guesses {
		if s.guesses[i].node == int(id) {
			s.guesses[i].v = v
			return
		}
	}
	s.guesses = append(s.guesses, guessEntry{node: int(id), v: v})
}

// stampBase fills the linear, time-invariant part of the Jacobian.
func (s *Session) stampBase(gmin float64) {
	s.base.Zero()
	for i := 0; i < s.n; i++ {
		s.base.Add(i, i, gmin)
	}
	for _, r := range s.prog.res {
		s.stampConductance(s.base, r.a, r.b, r.g)
	}
	for k, v := range s.prog.vsrc {
		row := s.n + k
		if v.pos >= 0 {
			s.base.Add(v.pos, row, 1)
			s.base.Add(row, v.pos, 1)
		}
		if v.neg >= 0 {
			s.base.Add(v.neg, row, -1)
			s.base.Add(row, v.neg, -1)
		}
	}
	s.stampedGmin = gmin
}

func (s *Session) stampConductance(m *linalg.Matrix, a, b int, g float64) {
	if a >= 0 {
		m.Add(a, a, g)
	}
	if b >= 0 {
		m.Add(b, b, g)
	}
	if a >= 0 && b >= 0 {
		m.Add(a, b, -g)
		m.Add(b, a, -g)
	}
}

// vIdx returns the voltage at unknown index i (ground is -1).
func vIdx(x []float64, i int) float64 {
	if i < 0 {
		return 0
	}
	return x[i]
}

// assemble builds the Jacobian and residual F(x) at the given Newton
// iterate. lin is the linear system matrix to start from (base for DC,
// base+cap companions for transients); b carries the time-dependent source
// and capacitor-history terms as "current injected" (so F = lin·x - b + nl).
func (s *Session) assemble(lin *linalg.Matrix, x, b []float64) {
	s.jac.CopyFrom(lin)
	// F = lin·x - b
	lin.MulVecInto(s.f, x)
	for i := range s.f {
		s.f[i] -= b[i]
	}
	// MOSFETs.
	for i := range s.prog.mos {
		m := &s.prog.mos[i]
		vd, vg, vs := vIdx(x, m.d), vIdx(x, m.g), vIdx(x, m.s)
		id, gd, gg, gs := m.p.Eval(vd, vg, vs)
		d, g, src := m.d, m.g, m.s
		// id is the current into the drain terminal, i.e. leaving node D.
		if d >= 0 {
			s.f[d] += id
			s.jac.Add(d, d, gd)
			if g >= 0 {
				s.jac.Add(d, g, gg)
			}
			if src >= 0 {
				s.jac.Add(d, src, gs)
			}
		}
		if src >= 0 {
			s.f[src] -= id
			s.jac.Add(src, src, -gs)
			if d >= 0 {
				s.jac.Add(src, d, -gd)
			}
			if g >= 0 {
				s.jac.Add(src, g, -gg)
			}
		}
	}
	// Nonlinear gate-charge capacitors: the charge-conserving companion
	// form of the NLMOS discretization, re-evaluated from the current
	// iterate on every assembly. With u = v(a) − v(b) and geq = 2/h
	// (trapezoidal) or 1/h (backward Euler):
	//
	//	i     = C(u)·(geq·(u − u_last) − i_last/C_last)   (trap)
	//	i     = C(u)·geq·(u − u_last)                     (BE)
	//	di/du = C'(u)·(…) + C(u)·geq
	//
	// The history current is divided by the capacitance it was computed
	// with (C_last), not the current one — that is what makes the scheme
	// charge-conserving when C varies between steps (DESIGN.md §12).
	// Outside a transient step loop nlGeq is 0 and the caps stamp nothing:
	// open circuits at DC, exactly like the pre-stamped linear caps.
	if s.nlGeq > 0 && len(s.prog.nlcaps) > 0 {
		geq := s.nlGeq
		for i := range s.prog.nlcaps {
			nc := &s.prog.nlcaps[i]
			u := vIdx(x, nc.a) - vIdx(x, nc.b)
			c, dc := nc.cp.Eval(u)
			rate := geq * (u - s.vPrevNL[i])
			if s.nlTrap {
				rate -= s.iPrevNL[i] / s.cPrevNL[i]
			}
			cur := c * rate
			g := dc*rate + c*geq
			a, bn := nc.a, nc.b
			if a >= 0 {
				s.f[a] += cur
				s.jac.Add(a, a, g)
				if bn >= 0 {
					s.jac.Add(a, bn, -g)
				}
			}
			if bn >= 0 {
				s.f[bn] -= cur
				s.jac.Add(bn, bn, g)
				if a >= 0 {
					s.jac.Add(bn, a, -g)
				}
			}
		}
		s.stats.NLStampEvals += int64(len(s.prog.nlcaps))
		nlStampEvalCount.Add(int64(len(s.prog.nlcaps)))
	}
	// Table VCCSs: current i injected into Out.
	for i := range s.prog.vccs {
		e := &s.prog.vccs[i]
		vc, vo := vIdx(x, e.ctrl), vIdx(x, e.out)
		cur, gc, gout := e.f.Eval(vc, vo)
		o, cn := e.out, e.ctrl
		if o >= 0 {
			s.f[o] -= cur
			s.jac.Add(o, o, -gout)
			if cn >= 0 {
				s.jac.Add(o, cn, -gc)
			}
		}
	}
}

// newton solves F(x) = 0 starting from x, modifying it in place. The loop
// body allocates nothing: the Jacobian factors into the session's LU
// workspace and the update solves into the preallocated dx buffer.
//
// relaxed selects the warm-start termination criterion (small undamped
// update, no residual verification); DC solves pass it in warm-start mode,
// transient timestep solves always use the strict dual criterion.
func (s *Session) newton(lin *linalg.Matrix, x, b []float64, relaxed bool) error {
	opts := s.opts
	for it := 0; it < opts.MaxNewton; it++ {
		s.stats.NewtonIters++
		newtonIterCount.Add(1)
		s.assemble(lin, x, b)
		if err := s.lu.Factor(s.jac); err != nil {
			return fmt.Errorf("sim: singular Jacobian at Newton iteration %d: %w", it, err)
		}
		s.lu.SolveInto(s.dx, s.f)
		dx := s.dx
		// Damping: bound the voltage update.
		maxdv := 0.0
		for i := 0; i < s.n; i++ {
			if a := math.Abs(dx[i]); a > maxdv {
				maxdv = a
			}
		}
		scale := 1.0
		if maxdv > opts.MaxStep {
			scale = opts.MaxStep / maxdv
		}
		for i := range x {
			x[i] -= scale * dx[i]
		}
		if relaxed {
			// Warm-start termination: accept on a small undamped update.
			// A full Newton step (scale == 1) below VTol bounds the
			// remaining error quadratically — the linearised residual is
			// solved exactly, so what is left is O(curvature·dv²) — which
			// makes the cold path's extra residual-verification iteration
			// redundant. This is what turns a continuation sweep into one
			// iteration per grid point; it is confined to warm-mode DC
			// solves (transient timesteps always verify the residual), so
			// the cold path stays bit-identical to the legacy flow and
			// warm transients differ from cold only through their
			// operating point.
			if maxdv*scale < opts.VTol && scale == 1 {
				return nil
			}
			continue
		}
		maxf := 0.0
		for i := 0; i < s.n; i++ {
			if a := math.Abs(s.f[i]); a > maxf {
				maxf = a
			}
		}
		if maxdv*scale < opts.VTol && maxf < opts.ITol*math.Max(1, float64(s.n)) {
			return nil
		}
	}
	return ErrNoConvergence
}

// linearRefine is the inner loop of the linear transient fast path: the
// exact arithmetic of newton specialised to a program with no nonlinear
// device stamps, with the factorisation hoisted out of the loop. For such
// a program assemble's Jacobian is bitwise the linear system matrix on
// every iteration, so newton's per-iteration Factor recomputes identical
// LU bits each time; the caller factors lin into s.lu once and each pass
// here is a residual evaluation plus forward/back-substitution — O(n²)
// instead of O(n³) — producing bit-identical iterates, damping decisions
// and convergence checks (asserted by the fast-path property tests).
//
// Passes of this loop are plain linear solves, deliberately not counted in
// NewtonIters: a fast-path transient run reports zero Newton iterations,
// and that counter assertion is the proof the run never re-factored.
func (s *Session) linearRefine(lin *linalg.Matrix, x, b []float64) error {
	opts := s.opts
	for it := 0; it < opts.MaxNewton; it++ {
		// F = lin·x - b, as in assemble (no device loops: none exist).
		lin.MulVecInto(s.f, x)
		for i := range s.f {
			s.f[i] -= b[i]
		}
		s.lu.SolveInto(s.dx, s.f)
		dx := s.dx
		maxdv := 0.0
		for i := 0; i < s.n; i++ {
			if a := math.Abs(dx[i]); a > maxdv {
				maxdv = a
			}
		}
		scale := 1.0
		if maxdv > opts.MaxStep {
			scale = opts.MaxStep / maxdv
		}
		for i := range x {
			x[i] -= scale * dx[i]
		}
		maxf := 0.0
		for i := 0; i < s.n; i++ {
			if a := math.Abs(s.f[i]); a > maxf {
				maxf = a
			}
		}
		if maxdv*scale < opts.VTol && maxf < opts.ITol*math.Max(1, float64(s.n)) {
			return nil
		}
	}
	return ErrNoConvergence
}

// ensurePredictorBuffers lazily allocates the predictor history ring and
// fallback buffer on the first predictor-mode transient run.
func (s *Session) ensurePredictorBuffers() {
	if s.xFallback != nil {
		return
	}
	s.xFallback = make([]float64, s.size)
	for i := range s.xHist {
		s.xHist[i] = make([]float64, s.size)
	}
}

// pushHistory records a converged timestep solution in the predictor ring
// by pointer rotation (the oldest buffer is overwritten and becomes the
// newest), allocating nothing. nh is the current history depth; the new
// depth (capped at 3) is returned.
func (s *Session) pushHistory(x []float64, nh int) int {
	buf := s.xHist[2]
	s.xHist[2] = s.xHist[1]
	s.xHist[1] = s.xHist[0]
	copy(buf, x)
	s.xHist[0] = buf
	if nh < 3 {
		nh++
	}
	return nh
}

// predictSeed overwrites x with the polynomial extrapolation of the
// history ring: linear over two points, second-order over three. The
// uniform-step Lagrange forms (2·x₁ − x₀ and 3·x₂ − 3·x₁ + x₀) are exact
// for the session's fixed Dt grid.
func (s *Session) predictSeed(x []float64, nh int) {
	h0, h1 := s.xHist[0], s.xHist[1]
	if nh >= 3 {
		h2 := s.xHist[2]
		for i := range x {
			x[i] = 3*h0[i] - 3*h1[i] + h2[i]
		}
		return
	}
	for i := range x {
		x[i] = 2*h0[i] - h1[i]
	}
}

// sourceRHS fills b with the independent-source terms at time t.
func (s *Session) sourceRHS(b []float64, t float64) {
	for i := range b {
		b[i] = 0
	}
	for k := range s.prog.vsrc {
		b[s.n+k] = s.srcW[k].At(t)
	}
	for k, is := range s.prog.isrc {
		if is.pos >= 0 {
			b[is.pos] += s.isrcW[k].At(t)
		}
		if is.neg >= 0 {
			b[is.neg] -= s.isrcW[k].At(t)
		}
	}
}

// initialGuess fills x with the DC starting point.
func (s *Session) initialGuess(x []float64) {
	for i := range x {
		x[i] = 0
	}
	// Ground-referenced DC sources pin their node directly; this lands the
	// first iterate close to the operating point for rail-connected nets.
	for k, v := range s.prog.vsrc {
		if v.neg < 0 && v.pos >= 0 {
			x[v.pos] = s.srcW[k].At(0)
		}
	}
	for _, g := range s.guesses {
		x[g.node] = g.v
	}
}

// RunDC computes the operating point at t = 0 with the session's current
// parameters. When plain Newton fails it falls back to gmin stepping:
// solving a sequence of progressively less regularised systems,
// warm-starting each from the last. The returned result does not alias
// session buffers; sweeps that want an allocation-free loop use RunDCInto.
func (s *Session) RunDC() (*DCResult, error) {
	if err := s.solveDC(); err != nil {
		return nil, err
	}
	return s.dcResult(), nil
}

// RunDCInto is RunDC writing the operating point into a caller-owned
// result, reusing its backing storage: after the first call on a given
// DCResult, a sweep loop of SetSourceDC + RunDCInto + SourceCurrent
// performs zero allocations per grid point (asserted by
// TestRunDCIntoAllocFree). On error the result is left untouched. The
// filled result does not alias session buffers and stays valid across
// further runs.
func (s *Session) RunDCInto(res *DCResult) error {
	if res == nil {
		panic("sim: RunDCInto with nil result")
	}
	if err := s.solveDC(); err != nil {
		return err
	}
	res.c = s.prog.ckt
	res.n = s.n
	if cap(res.X) < s.size {
		res.X = make([]float64, s.size)
	}
	res.X = res.X[:s.size]
	copy(res.X, s.x)
	return nil
}

// solveDC runs the DC solve, leaving the operating point in s.x.
//
// In warm-start mode (see WarmStart) the solve is attempted first from the
// previous converged solution; a cold start — the bit-identical legacy
// path — runs when warm starting is off, no previous solution exists, or
// the warm seed failed to converge.
func (s *Session) solveDC() error {
	dcCount.Add(1)
	s.stats.DCSolves++
	if s.stampedGmin != s.opts.Gmin {
		s.stampBase(s.opts.Gmin)
	}
	s.sourceRHS(s.rhs, 0)
	if s.warmStart && s.haveWarm {
		s.stats.WarmStarts++
		// Hybrid continuation seed: carry the internal-node voltages and
		// branch currents of the previous converged solution — the part a
		// cold guess can only approximate — but re-pin every
		// ground-referenced source node at its *new* value (the same
		// pinning initialGuess performs). The sweep mutates exactly those
		// sources between points, so the seed then satisfies the new
		// boundary conditions exactly and Newton only has to track the
		// interior.
		copy(s.x, s.xWarm)
		for k, v := range s.prog.vsrc {
			if v.neg < 0 && v.pos >= 0 {
				s.x[v.pos] = s.srcW[k].At(0)
			}
		}
		if err := s.newton(s.base, s.x, s.rhs, true); err == nil {
			copy(s.xWarm, s.x)
			return nil
		}
		// The previous solution was a bad predictor (a sweep
		// discontinuity, a basin change); fall through to the cold path.
		s.stats.WarmFallbacks++
	}
	s.initialGuess(s.x)
	if err := s.newton(s.base, s.x, s.rhs, false); err == nil {
		s.saveWarm()
		return nil
	}
	// gmin stepping.
	s.initialGuess(s.x)
	for gmin := 1e-3; gmin >= s.opts.Gmin; gmin /= 10 {
		s.stampBase(gmin)
		if err := s.newton(s.base, s.x, s.rhs, false); err != nil {
			s.haveWarm = false
			return fmt.Errorf("sim: DC gmin stepping failed at gmin=%g: %w", gmin, err)
		}
	}
	s.stampBase(s.opts.Gmin)
	if err := s.newton(s.base, s.x, s.rhs, false); err != nil {
		s.haveWarm = false
		return fmt.Errorf("sim: DC failed after gmin stepping: %w", err)
	}
	s.saveWarm()
	return nil
}

// saveWarm records the converged DC solution as the next warm-start seed.
// Skipped when warm starting is off so cold sessions pay nothing.
func (s *Session) saveWarm() {
	if !s.warmStart {
		return
	}
	copy(s.xWarm, s.x)
	s.haveWarm = true
}

func (s *Session) dcResult() *DCResult {
	return &DCResult{c: s.prog.ckt, X: append([]float64(nil), s.x...), n: s.n}
}

// RunTransient runs a transient analysis from a DC operating point at
// t = 0 to tstop with the session's fixed step (Options.Dt). The context
// is checked periodically between timesteps; a nil context disables
// cancellation. The returned result does not alias session buffers; sweeps
// that want an allocation-free loop use RunTransientInto.
//
// Programs with no nonlinear device stamps (Program.Linear) take the
// linear fast path: the transient system matrix is factored exactly once
// per run and every timestep is a forward/back-substitution, with zero
// Newton iterations — counted in SessionStats.LinearFastPathRuns and
// bit-identical to the Newton path by construction (see linearRefine).
// Warm-start mode disables the fast path for the run, keeping WarmStart's
// documented DC continuation semantics; nonlinear programs can opt into
// predictor seeding instead (see Predictor).
func (s *Session) RunTransient(ctx context.Context, tstop float64) (*Result, error) {
	res := &Result{}
	if err := s.RunTransientInto(ctx, res, tstop); err != nil {
		return nil, err
	}
	return res, nil
}

// RunTransientInto is RunTransient writing the waveforms into a
// caller-owned result, reusing its backing storage: after the first call
// on a given Result, a glitch-sweep loop of SetSource/SetLoad +
// RunTransientInto performs zero allocations per run, and the warm
// per-step loop allocates zero bytes (asserted by
// TestTransientStepAllocFree). On error the result's contents are
// unspecified and must not be read; it may be reused for the next run. The
// filled result does not alias session buffers and stays valid across
// further runs — but waveforms obtained from it before the next
// RunTransientInto call on the same Result are only safe because
// wave.FromPoints copies its inputs; slices read directly from Result are
// overwritten by the next run.
func (s *Session) RunTransientInto(ctx context.Context, res *Result, tstop float64) error {
	if res == nil {
		panic("sim: RunTransientInto with nil result")
	}
	transientCount.Add(1)
	s.stats.Transients++
	if ctx == nil {
		ctx = context.Background()
	}
	if math.IsNaN(tstop) || math.IsInf(tstop, 0) {
		return &OptionsError{Field: "TStop", Value: tstop}
	}
	if tstop <= 0 {
		return errors.New("sim: Transient requires positive TStop")
	}

	opts := s.opts
	h := opts.Dt
	// Indexed time grid: t = k·h instead of the legacy accumulating
	// t += h, which drifted by an ulp per step and could drop or duplicate
	// the final step on long runs (TestTransientStepCountExact pins the
	// count at large tstop/Dt ratios). nsteps reproduces the legacy loop's
	// step count: it ran while t ≤ tstop + h/2.
	nsteps := int(math.Floor(tstop/h + 0.5))
	res.reset(s.prog.ckt, s.n, s.m, nsteps+1)

	// Linear fast path, part 1: the operating point. The program has no
	// nonlinear stamps, so the DC system is s.base itself; factor it once
	// and refine — the same arithmetic newton performs, minus the
	// per-iteration re-factorisation (see linearRefine). Any failure falls
	// back to the full legacy ladder (solveDC: cold Newton, then gmin
	// stepping). Warm-start mode takes the legacy path unconditionally so
	// its continuation semantics and stats are untouched.
	fast := s.prog.linear && !s.noFastPath && !s.warmStart
	if fast {
		fast = false
		if s.stampedGmin != opts.Gmin {
			s.stampBase(opts.Gmin)
		}
		if s.lu.Factor(s.base) == nil {
			dcCount.Add(1)
			s.stats.DCSolves++
			s.sourceRHS(s.rhs, 0)
			s.initialGuess(s.x)
			fast = s.linearRefine(s.base, s.x, s.rhs) == nil
		}
	}
	if !fast {
		if err := s.solveDC(); err != nil {
			return fmt.Errorf("sim: transient operating point: %w", err)
		}
	}
	x := s.x // holds the operating point
	res.record(0, x)

	// Transient system matrix: base + capacitor companion conductances.
	geqFactor := 1.0 / h // BE
	if opts.Method == Trapezoidal {
		geqFactor = 2.0 / h
	}
	if s.lin == nil {
		s.lin = linalg.NewMatrix(s.size, s.size)
	}
	s.lin.CopyFrom(s.base)
	for i, cp := range s.prog.caps {
		s.stampConductance(s.lin, cp.a, cp.b, s.capC[i]*geqFactor)
	}
	// Linear fast path, part 2: factor the timestep system once for the
	// whole run. Every step below is then a substitution against this
	// factorisation.
	if fast {
		fast = s.lu.Factor(s.lin) == nil
	}
	if fast {
		s.stats.LinearFastPathRuns++
		linearFastRunCount.Add(1)
	}

	// Capacitor history: branch voltage and (for trapezoidal) current.
	//
	// iPrev is deliberately zeroed, and this is exact, not an
	// approximation: the run starts from a *converged DC operating point*,
	// where every capacitor is an open circuit carrying zero current. It
	// would only be approximate if the solution at t = 0 were not a steady
	// state — but SetGuess/InitialGuess perturb the Newton seed, never the
	// converged operating point itself, so a non-steady start cannot be
	// constructed through this API (TestTransientOPCapCurrentIsZero pins
	// the flat-output consequence), and mid-transient restarts are not
	// supported: resuming would additionally need the capacitor branch
	// currents of the interrupted run, exactly what iPrev would carry.
	for i, cp := range s.prog.caps {
		s.vPrev[i] = vIdx(x, cp.a) - vIdx(x, cp.b)
		s.iPrev[i] = 0
	}
	// Nonlinear-cap history starts from the same steady state: zero branch
	// current, and C_last evaluated at the operating-point branch voltage
	// so the first step's i_last/C_last term is well-defined.
	for i := range s.prog.nlcaps {
		nc := &s.prog.nlcaps[i]
		u := vIdx(x, nc.a) - vIdx(x, nc.b)
		s.vPrevNL[i] = u
		s.iPrevNL[i] = 0
		s.cPrevNL[i], _ = nc.cp.Eval(u)
	}
	// Arm the per-iteration nonlinear-cap stamps for the step loop (and
	// only for it: DC solves must keep seeing open circuits).
	s.nlGeq = geqFactor
	s.nlTrap = opts.Method == Trapezoidal
	defer func() { s.nlGeq = 0 }()

	// Predictor seeding only applies to Newton-path runs; a fast-path run
	// has no Newton solve to seed.
	pred := s.predictor && !fast
	nh := 0
	if pred {
		s.ensurePredictorBuffers()
		nh = s.pushHistory(x, nh)
	}

	b := s.b
	for k := 1; k <= nsteps; k++ {
		t := float64(k) * h
		if k&15 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		s.sourceRHS(b, t)
		for i, cp := range s.prog.caps {
			var hist float64
			if opts.Method == Trapezoidal {
				hist = s.capC[i]*geqFactor*s.vPrev[i] + s.iPrev[i]
			} else {
				hist = s.capC[i] * geqFactor * s.vPrev[i]
			}
			if cp.a >= 0 {
				b[cp.a] += hist
			}
			if cp.b >= 0 {
				b[cp.b] -= hist
			}
		}
		var err error
		if fast {
			err = s.linearRefine(s.lin, x, b)
		} else {
			seeded := false
			if pred && nh >= 2 {
				copy(s.xFallback, x)
				s.predictSeed(x, nh)
				seeded = true
				s.stats.PredictorSeeds++
				predictorSeedCount.Add(1)
			}
			err = s.newton(s.lin, x, b, false)
			if err != nil && seeded {
				// The extrapolated seed left the convergence basin;
				// re-solve from the previous converged point — exactly the
				// legacy seed — so the predictor never costs robustness.
				s.stats.PredictorFallbacks++
				copy(x, s.xFallback)
				err = s.newton(s.lin, x, b, false)
			}
		}
		if err != nil {
			return fmt.Errorf("sim: transient at t=%.3gps: %w", t*1e12, err)
		}
		for i, cp := range s.prog.caps {
			v := vIdx(x, cp.a) - vIdx(x, cp.b)
			if opts.Method == Trapezoidal {
				s.iPrev[i] = s.capC[i]*geqFactor*(v-s.vPrev[i]) - s.iPrev[i]
			} else {
				s.iPrev[i] = s.capC[i] * geqFactor * (v - s.vPrev[i])
			}
			s.vPrev[i] = v
		}
		for i := range s.prog.nlcaps {
			nc := &s.prog.nlcaps[i]
			u := vIdx(x, nc.a) - vIdx(x, nc.b)
			c, _ := nc.cp.Eval(u)
			rate := geqFactor * (u - s.vPrevNL[i])
			if opts.Method == Trapezoidal {
				rate -= s.iPrevNL[i] / s.cPrevNL[i]
			}
			s.iPrevNL[i] = c * rate
			s.vPrevNL[i] = u
			s.cPrevNL[i] = c
		}
		if pred {
			nh = s.pushHistory(x, nh)
		}
		s.stats.TransientSteps++
		transientStepCount.Add(1)
		res.record(t, x)
	}
	return nil
}
