package sim

import (
	"context"
	"testing"

	"stanoise/internal/cell"
	"stanoise/internal/circuit"
	"stanoise/internal/tech"
	"stanoise/internal/wave"
)

// Allocation-tracking benchmarks for the two-phase engine: the one-shot
// wrappers pay Compile + NewSession on every call, the session variants
// pay them once and only mutate parameters — the shape of every
// characterisation sweep. Before/after numbers live in EXPERIMENTS.md.

func benchDCCircuit(b *testing.B) (*circuit.Circuit, float64) {
	b.Helper()
	t := tech.Tech130()
	inv := cell.MustNew(t, "INV", 1)
	ckt := circuit.New()
	ckt.AddVDC("vdd", "vdd", "0", t.VDD)
	ckt.AddVDC("v_A", "in_A", "0", 0)
	if err := inv.Build(ckt, "dut", map[string]string{"A": "in_A"}, "out", "vdd"); err != nil {
		b.Fatal(err)
	}
	ckt.AddVDC("vforce", "out", "0", t.VDD)
	return ckt, t.VDD
}

func BenchmarkDCOneShot(b *testing.B) {
	ckt, _ := benchDCCircuit(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DC(ckt, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDCSession(b *testing.B) {
	ckt, vdd := benchDCCircuit(b)
	prog := Compile(ckt)
	sess, err := NewSession(prog, Options{})
	if err != nil {
		b.Fatal(err)
	}
	hForce := prog.MustSource("vforce")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Mutate the forced voltage like a sweep point would.
		sess.SetSourceDC(hForce, vdd*float64(i%7)/6)
		if _, err := sess.RunDC(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionParallel exercises the documented concurrency model —
// one immutable Program shared across goroutines, one Session per
// goroutine — and is run under -race in CI, where unsynchronised state
// leaking between sessions through the Program would surface.
func BenchmarkSessionParallel(b *testing.B) {
	ckt, vdd := benchDCCircuit(b)
	prog := Compile(ckt)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		sess, err := NewSession(prog, Options{})
		if err != nil {
			b.Error(err)
			return
		}
		hForce := prog.MustSource("vforce")
		i := 0
		for pb.Next() {
			sess.SetSourceDC(hForce, vdd*float64(i%7)/6)
			if _, err := sess.RunDC(); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

func benchTransientCircuit(b *testing.B) *circuit.Circuit {
	b.Helper()
	t := tech.Tech130()
	inv := cell.MustNew(t, "INV", 1)
	ckt := circuit.New()
	ckt.AddVDC("vdd", "vdd", "0", t.VDD)
	ckt.AddV("v_A", "in_A", "0", wave.Triangle(0, 0.8, 100e-12, 300e-12))
	if err := inv.Build(ckt, "dut", map[string]string{"A": "in_A"}, "out", "vdd"); err != nil {
		b.Fatal(err)
	}
	ckt.AddC("cl", "out", "0", 30e-15)
	return ckt
}

func BenchmarkTransientOneShot(b *testing.B) {
	ckt := benchTransientCircuit(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Transient(context.Background(), ckt, Options{Dt: 1e-12, TStop: 1e-9}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransientSession(b *testing.B) {
	ckt := benchTransientCircuit(b)
	prog := Compile(ckt)
	sess, err := NewSession(prog, Options{Dt: 1e-12})
	if err != nil {
		b.Fatal(err)
	}
	hGlitch := prog.MustSource("v_A")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Mutate the glitch like a characterisation probe would.
		sess.SetSource(hGlitch, wave.Triangle(0, 0.7+0.01*float64(i%10), 100e-12, 300e-12))
		if _, err := sess.RunTransient(context.Background(), 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransientSessionInto is BenchmarkTransientSession on the
// allocation-free entry point: result storage is reused across runs, so
// the delta against the RunTransient variant is the per-run cost of
// re-newing nsteps × nodes slices.
func BenchmarkTransientSessionInto(b *testing.B) {
	ckt := benchTransientCircuit(b)
	prog := Compile(ckt)
	sess, err := NewSession(prog, Options{Dt: 1e-12})
	if err != nil {
		b.Fatal(err)
	}
	hGlitch := prog.MustSource("v_A")
	res := &Result{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.SetSource(hGlitch, wave.Triangle(0, 0.7+0.01*float64(i%10), 100e-12, 300e-12))
		if err := sess.RunTransientInto(context.Background(), res, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransientPredictor is the glitch-rig transient with polynomial
// predictor seeding on — the Newton-iteration cut measured by
// TestPredictorCutsNewtonIterations, expressed as wall time against
// BenchmarkTransientSessionInto.
func BenchmarkTransientPredictor(b *testing.B) {
	ckt := benchTransientCircuit(b)
	prog := Compile(ckt)
	sess, err := NewSession(prog, Options{Dt: 1e-12})
	if err != nil {
		b.Fatal(err)
	}
	sess.Predictor(true)
	hGlitch := prog.MustSource("v_A")
	res := &Result{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.SetSource(hGlitch, wave.Triangle(0, 0.7+0.01*float64(i%10), 100e-12, 300e-12))
		if err := sess.RunTransientInto(context.Background(), res, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransientLinearFastPath and BenchmarkTransientLinearNewton run
// the identical coupled-interconnect transient with and without the
// factor-once fast path; the ratio is the O(n³)→O(n²) per-step saving on
// a linear topology (results are bit-identical, see
// TestLinearFastPathBitIdentical).
func BenchmarkTransientLinearFastPath(b *testing.B) {
	benchLinearTransient(b, false)
}

func BenchmarkTransientLinearNewton(b *testing.B) {
	benchLinearTransient(b, true)
}

func benchLinearTransient(b *testing.B, forceNewton bool) {
	b.Helper()
	sess, err := NewSession(Compile(busCircuit(b)), Options{Dt: 1e-12})
	if err != nil {
		b.Fatal(err)
	}
	sess.noFastPath = forceNewton
	res := &Result{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sess.RunTransientInto(context.Background(), res, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}
