package sim

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stanoise/internal/circuit"
	"stanoise/internal/device"
	"stanoise/internal/wave"
)

func TestDCResistorDivider(t *testing.T) {
	c := circuit.New()
	c.AddVDC("vin", "in", "0", 2.0)
	c.AddR("r1", "in", "mid", 1000)
	c.AddR("r2", "mid", "0", 3000)
	dc, err := DC(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := dc.NodeV("mid"); math.Abs(got-1.5) > 1e-7 {
		t.Errorf("mid = %v, want 1.5", got)
	}
	// Branch current through the source: 2 V across 4 kΩ = 0.5 mA flowing
	// out of the source, i.e. -0.5 mA into its positive terminal.
	if got := dc.BranchI("vin"); math.Abs(got+0.5e-3) > 1e-9 {
		t.Errorf("branch current = %v, want -0.5e-3", got)
	}
}

func TestDCCurrentSource(t *testing.T) {
	c := circuit.New()
	c.AddI("i1", "a", "0", wave.Constant(1e-3))
	c.AddR("r1", "a", "0", 2000)
	dc, err := DC(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := dc.NodeV("a"); math.Abs(got-2.0) > 1e-7 {
		t.Errorf("a = %v, want 2.0", got)
	}
}

func TestRCStepResponse(t *testing.T) {
	// 1 kΩ into 1 pF, step source 0→1 V at t=0 via PWL with 1 ps rise.
	// τ = 1 ns.
	c := circuit.New()
	c.AddV("vs", "in", "0", wave.SaturatedRamp(0, 1, 0, 1e-12))
	c.AddR("r", "in", "out", 1000)
	c.AddC("c", "out", "0", 1e-12)
	res, err := Transient(context.Background(), c, Options{Dt: 5e-12, TStop: 5e-9})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Waveform("out")
	for _, tc := range []float64{0.5e-9, 1e-9, 2e-9, 4e-9} {
		want := 1 - math.Exp(-tc/1e-9)
		if got := w.At(tc); math.Abs(got-want) > 0.01 {
			t.Errorf("v(out) at %v = %v, want %v", tc, got, want)
		}
	}
	// Fully settled at the end.
	if got := w.At(5e-9); math.Abs(got-1) > 0.01 {
		t.Errorf("settled value = %v", got)
	}
}

func TestRCBackwardEulerMatchesTrapezoidal(t *testing.T) {
	c := circuit.New()
	c.AddV("vs", "in", "0", wave.SaturatedRamp(0, 1, 0, 50e-12))
	c.AddR("r", "in", "out", 500)
	c.AddC("c", "out", "0", 200e-15)
	tr, err := Transient(context.Background(), c, Options{Dt: 1e-12, TStop: 1e-9, Method: Trapezoidal})
	if err != nil {
		t.Fatal(err)
	}
	be, err := Transient(context.Background(), c, Options{Dt: 1e-12, TStop: 1e-9, Method: BackwardEuler})
	if err != nil {
		t.Fatal(err)
	}
	if d := wave.MaxAbsDiff(tr.Waveform("out"), be.Waveform("out")); d > 0.01 {
		t.Errorf("TR vs BE differ by %v", d)
	}
}

func inv013(c *circuit.Circuit, name, in, out, vdd string) {
	c.AddM(name+"_p", out, in, vdd, device.Params{
		Kind: device.PMOS, W: 2.6e-6, L: 0.13e-6, KP: 90e-6, VT0: -0.38, Lambda: 0.2,
	})
	c.AddM(name+"_n", out, in, "0", device.Params{
		Kind: device.NMOS, W: 1.3e-6, L: 0.13e-6, KP: 340e-6, VT0: 0.35, Lambda: 0.15,
	})
}

func TestInverterDCTransfer(t *testing.T) {
	const vdd = 1.2
	for _, tc := range []struct {
		vin      float64
		wantHigh bool
	}{
		{0, true}, {0.2, true}, {1.0, false}, {1.2, false},
	} {
		c := circuit.New()
		c.AddVDC("vdd", "vdd", "0", vdd)
		c.AddVDC("vin", "in", "0", tc.vin)
		inv013(c, "u1", "in", "out", "vdd")
		c.AddR("rload", "out", "0", 1e9) // probe load
		dc, err := DC(c, Options{})
		if err != nil {
			t.Fatalf("vin=%v: %v", tc.vin, err)
		}
		out := dc.NodeV("out")
		if tc.wantHigh && out < 0.9*vdd {
			t.Errorf("vin=%v: out=%v, want near VDD", tc.vin, out)
		}
		if !tc.wantHigh && out > 0.1*vdd {
			t.Errorf("vin=%v: out=%v, want near 0", tc.vin, out)
		}
	}
}

func TestInverterTransient(t *testing.T) {
	const vdd = 1.2
	c := circuit.New()
	c.AddVDC("vdd", "vdd", "0", vdd)
	c.AddV("vin", "in", "0", wave.SaturatedRamp(0, vdd, 200e-12, 50e-12))
	inv013(c, "u1", "in", "out", "vdd")
	c.AddC("cl", "out", "0", 20e-15)
	res, err := Transient(context.Background(), c, Options{Dt: 1e-12, TStop: 2e-9})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Waveform("out")
	if got := w.At(0.1e-9); math.Abs(got-vdd) > 0.02 {
		t.Errorf("initial out = %v, want %v", got, vdd)
	}
	if got := w.At(2e-9); math.Abs(got) > 0.02 {
		t.Errorf("final out = %v, want 0", got)
	}
	// The output must cross VDD/2 after the input does (causality).
	tin, tout := -1.0, -1.0
	for i, tm := range res.Times {
		if tin < 0 && res.At("in", i) > vdd/2 {
			tin = tm
		}
		if tout < 0 && res.At("out", i) < vdd/2 {
			tout = tm
		}
	}
	if tin < 0 || tout < 0 || tout <= tin {
		t.Errorf("crossings: in=%v out=%v", tin, tout)
	}
}

type linearVCCS struct{ g float64 }

func (l linearVCCS) Eval(vc, vo float64) (float64, float64, float64) {
	// Injects g·(vc - vo): a resistor realised as a VCCS.
	return l.g * (vc - vo), l.g, -l.g
}

func TestVCCSEquivalentToResistor(t *testing.T) {
	// VCCS g(vc-vo) between source node and output must behave exactly
	// like a resistor of 1/g for the divider.
	c := circuit.New()
	c.AddVDC("vs", "in", "0", 1.0)
	c.AddVCCS("x1", "in", "out", linearVCCS{g: 1e-3})
	c.AddR("r2", "out", "0", 1000)
	dc, err := DC(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := dc.NodeV("out"); math.Abs(got-0.5) > 1e-7 {
		t.Errorf("out = %v, want 0.5", got)
	}
}

func TestTransientRequiresTStop(t *testing.T) {
	c := circuit.New()
	c.AddVDC("v", "a", "0", 1)
	c.AddR("r", "a", "0", 100)
	if _, err := Transient(context.Background(), c, Options{}); err == nil {
		t.Error("Transient without TStop should fail")
	}
}

// Property: in a purely linear RC circuit the response to two sources is
// the sum of the responses to each source alone (superposition) — the very
// assumption the paper shows breaks down once drivers are non-linear.
func TestLinearSuperpositionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		build := func(s1, s2 float64) *circuit.Circuit {
			c := circuit.New()
			c.AddV("v1", "a", "0", wave.SaturatedRamp(0, s1, 100e-12, 80e-12))
			c.AddV("v2", "b", "0", wave.SaturatedRamp(0, s2, 150e-12, 60e-12))
			c.AddR("r1", "a", "x", 800)
			c.AddR("r2", "b", "x", 1200)
			c.AddR("r3", "x", "0", 2500)
			c.AddC("c1", "x", "0", 150e-15)
			return c
		}
		amp1 := 0.3 + rng.Float64()
		amp2 := 0.3 + rng.Float64()
		o := Options{Dt: 2e-12, TStop: 1e-9}
		rBoth, err := Transient(context.Background(), build(amp1, amp2), o)
		if err != nil {
			return false
		}
		r1, err := Transient(context.Background(), build(amp1, 0), o)
		if err != nil {
			return false
		}
		r2, err := Transient(context.Background(), build(0, amp2), o)
		if err != nil {
			return false
		}
		sum := wave.Add(r1.Waveform("x"), r2.Waveform("x"))
		return wave.MaxAbsDiff(rBoth.Waveform("x"), sum) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestNAND2DCStates(t *testing.T) {
	const vdd = 1.2
	build := func(va, vb float64) *circuit.Circuit {
		c := circuit.New()
		c.AddVDC("vdd", "vdd", "0", vdd)
		c.AddVDC("va", "a", "0", va)
		c.AddVDC("vb", "b", "0", vb)
		np := device.Params{Kind: device.NMOS, W: 2.6e-6, L: 0.13e-6, KP: 340e-6, VT0: 0.35, Lambda: 0.15}
		pp := device.Params{Kind: device.PMOS, W: 2.6e-6, L: 0.13e-6, KP: 90e-6, VT0: -0.38, Lambda: 0.2}
		c.AddM("mpa", "out", "a", "vdd", pp)
		c.AddM("mpb", "out", "b", "vdd", pp)
		c.AddM("mna", "out", "a", "mid", np)
		c.AddM("mnb", "mid", "b", "0", np)
		c.AddR("rl", "out", "0", 1e9)
		return c
	}
	cases := []struct {
		va, vb   float64
		wantHigh bool
	}{
		{0, 0, true}, {vdd, 0, true}, {0, vdd, true}, {vdd, vdd, false},
	}
	for _, tc := range cases {
		dc, err := DC(build(tc.va, tc.vb), Options{})
		if err != nil {
			t.Fatalf("a=%v b=%v: %v", tc.va, tc.vb, err)
		}
		out := dc.NodeV("out")
		if tc.wantHigh && out < 0.9*vdd {
			t.Errorf("a=%v b=%v: out=%v, want high", tc.va, tc.vb, out)
		}
		if !tc.wantHigh && out > 0.1*vdd {
			t.Errorf("a=%v b=%v: out=%v, want low", tc.va, tc.vb, out)
		}
	}
}

func BenchmarkTransientInverter(b *testing.B) {
	c := circuit.New()
	c.AddVDC("vdd", "vdd", "0", 1.2)
	c.AddV("vin", "in", "0", wave.SaturatedRamp(0, 1.2, 200e-12, 50e-12))
	inv013(c, "u1", "in", "out", "vdd")
	c.AddC("cl", "out", "0", 20e-15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Transient(context.Background(), c, Options{Dt: 1e-12, TStop: 1e-9}); err != nil {
			b.Fatal(err)
		}
	}
}
