package sim

import (
	"fmt"

	"stanoise/internal/circuit"
	"stanoise/internal/device"
	"stanoise/internal/wave"
)

// Program is an immutable compiled form of a circuit: node names resolved
// to matrix indices, one stamp plan per device, and handles for the
// parameters a characterisation sweep mutates between runs (voltage-source
// waveforms, capacitor values, initial-guess seeds).
//
// Compile once per topology, then open any number of Sessions against the
// Program; each Session owns the mutable solver state (matrices, vectors,
// LU workspace) and can be re-run with different parameters without paying
// netlist assembly or index resolution again. The source circuit must not
// be modified after Compile — the Program aliases its node table and
// element metadata.
type Program struct {
	ckt *circuit.Circuit

	n    int // node unknowns
	m    int // voltage-source branch unknowns
	size int

	// linear records, once at Compile time, that the program contains no
	// nonlinear device stamps (MOSFETs, table VCCSs): its Jacobian never
	// depends on the iterate, so a transient run can factor the system
	// matrix once and back-substitute per timestep (see
	// Session.RunTransient's linear fast path).
	linear bool

	// Index-resolved stamp plans. Ground is -1, matching circuit.Ground.
	res    []resPlan
	caps   []capPlan
	nlcaps []nlCapPlan // voltage-dependent gate caps, re-stamped per Newton iteration
	mos    []mosPlan
	vccs   []vccsPlan
	vsrc   []twoTerm // branch row for source k is n+k
	isrc   []twoTerm

	// Compile-time parameter values, copied into each new Session.
	srcW0  []*wave.Waveform // voltage-source waveforms
	isrcW0 []*wave.Waveform // current-source waveforms
	capC0  []float64        // capacitances (F)

	srcIdx  map[string]int // voltage-source name -> handle
	capIdx  map[string]int // capacitor name -> handle
	isrcIdx map[string]int // current-source name -> handle
}

type resPlan struct {
	a, b int
	g    float64
}

type capPlan struct{ a, b int }

// nlCapPlan is a voltage-dependent capacitor stamp: unlike capPlan, whose
// companion conductance is pre-stamped into the transient system matrix
// once per run, an nlCapPlan re-evaluates C(u) and dC/du from the current
// iterate inside every Newton assembly (charge-conserving companion form,
// see Session.assemble). u = v(a) − v(b).
type nlCapPlan struct {
	a, b int
	cp   device.CapParams
}

type mosPlan struct {
	d, g, s int
	p       device.Params
}

type vccsPlan struct {
	out, ctrl int
	f         circuit.VCCSFunc
}

type twoTerm struct{ pos, neg int }

// SourceHandle identifies a voltage source of a compiled Program for
// parameter mutation between Session runs.
type SourceHandle int

// CapHandle identifies a capacitor of a compiled Program for load mutation
// between Session runs.
type CapHandle int

// ISourceHandle identifies a current source of a compiled Program for
// stimulus mutation between Session runs (see Session.SetISource).
type ISourceHandle int

// Compile resolves a circuit into an immutable Program. The circuit must
// not be modified afterwards.
func Compile(c *circuit.Circuit) *Program {
	p := &Program{
		ckt:     c,
		n:       c.NumNodes(),
		m:       len(c.VSources),
		srcIdx:  make(map[string]int, len(c.VSources)),
		capIdx:  make(map[string]int, len(c.Capacitors)),
		isrcIdx: make(map[string]int, len(c.ISources)),
	}
	p.size = p.n + p.m
	for _, r := range c.Resistors {
		p.res = append(p.res, resPlan{a: idx(r.A), b: idx(r.B), g: 1 / r.R})
	}
	for _, cp := range c.Capacitors {
		p.caps = append(p.caps, capPlan{a: idx(cp.A), b: idx(cp.B)})
		p.capC0 = append(p.capC0, cp.C)
	}
	for i := range c.Capacitors {
		p.capIdx[c.Capacitors[i].Name] = i
	}
	for i := range c.Mosfets {
		mf := &c.Mosfets[i]
		p.mos = append(p.mos, mosPlan{d: idx(mf.D), g: idx(mf.G), s: idx(mf.S), p: mf.P})
		// Gate-charge caps riding on the device. Co = 0 is the
		// zero-modulation reduction: the cap is constant, so it joins the
		// ordinary pre-stamped capPlan list (registered under
		// "<name>.cgd"/"<name>.cgs") and the program keeps the precomputed
		// companion fast path — bit-identical to an explicit AddC.
		p.compileMOSCap(mf.Name+".cgd", mf.P.CGD, idx(mf.G), idx(mf.D))
		p.compileMOSCap(mf.Name+".cgs", mf.P.CGS, idx(mf.G), idx(mf.S))
	}
	for i := range c.VCCSs {
		e := &c.VCCSs[i]
		p.vccs = append(p.vccs, vccsPlan{out: idx(e.Out), ctrl: idx(e.Ctrl), f: e.F})
	}
	for k, v := range c.VSources {
		p.vsrc = append(p.vsrc, twoTerm{pos: idx(v.Pos), neg: idx(v.Neg)})
		p.srcW0 = append(p.srcW0, v.W)
		p.srcIdx[v.Name] = k
	}
	for k, is := range c.ISources {
		p.isrc = append(p.isrc, twoTerm{pos: idx(is.Pos), neg: idx(is.Neg)})
		p.isrcW0 = append(p.isrcW0, is.W)
		p.isrcIdx[is.Name] = k
	}
	p.linear = len(p.mos) == 0 && len(p.vccs) == 0 && len(p.nlcaps) == 0
	return p
}

// compileMOSCap compiles one gate-charge capacitor of a MOSFET instance. A
// zero CapParams means the device has no gate-charge model and stamps
// nothing; Co = 0 reduces to a constant capPlan; otherwise the cap becomes
// an nlCapPlan re-evaluated per Newton iteration. u = v(a) − v(b) with a
// the gate node.
func (p *Program) compileMOSCap(name string, cp device.CapParams, a, b int) {
	if cp.IsZero() || a == b {
		return
	}
	if cp.Co == 0 {
		p.capIdx[name] = len(p.caps)
		p.caps = append(p.caps, capPlan{a: a, b: b})
		p.capC0 = append(p.capC0, cp.Cp)
		return
	}
	p.nlcaps = append(p.nlcaps, nlCapPlan{a: a, b: b, cp: cp})
}

// Linear reports whether the program contains no nonlinear device stamps —
// resistors, capacitors and independent sources only. Linear programs take
// the transient fast path: the system matrix is factored once per run and
// every timestep is a forward/back-substitution, with zero Newton
// iterations (see Session.RunTransient).
func (p *Program) Linear() bool { return p.linear }

// Circuit returns the source circuit, for node and probe name lookups.
func (p *Program) Circuit() *circuit.Circuit { return p.ckt }

// Size returns the number of MNA unknowns (nodes plus source branches).
func (p *Program) Size() int { return p.size }

// Source returns the handle of the named voltage source.
func (p *Program) Source(name string) (SourceHandle, bool) {
	k, ok := p.srcIdx[name]
	return SourceHandle(k), ok
}

// MustSource is Source for names known to exist; it panics otherwise.
func (p *Program) MustSource(name string) SourceHandle {
	h, ok := p.Source(name)
	if !ok {
		panic(fmt.Sprintf("sim: unknown voltage source %q", name))
	}
	return h
}

// Cap returns the handle of the named capacitor.
func (p *Program) Cap(name string) (CapHandle, bool) {
	k, ok := p.capIdx[name]
	return CapHandle(k), ok
}

// MustCap is Cap for names known to exist; it panics otherwise.
func (p *Program) MustCap(name string) CapHandle {
	h, ok := p.Cap(name)
	if !ok {
		panic(fmt.Sprintf("sim: unknown capacitor %q", name))
	}
	return h
}

// ISource returns the handle of the named current source.
func (p *Program) ISource(name string) (ISourceHandle, bool) {
	k, ok := p.isrcIdx[name]
	return ISourceHandle(k), ok
}

// MustISource is ISource for names known to exist; it panics otherwise.
func (p *Program) MustISource(name string) ISourceHandle {
	h, ok := p.ISource(name)
	if !ok {
		panic(fmt.Sprintf("sim: unknown current source %q", name))
	}
	return h
}
