// Package sim implements the transistor-level circuit simulator used as the
// golden reference throughout the repository — the stand-in for the ELDO™
// runs in the paper (see DESIGN.md §2).
//
// It is a classical MNA (modified nodal analysis) engine: node voltages plus
// voltage-source branch currents are the unknowns, non-linear devices are
// handled with damped Newton–Raphson, capacitors with trapezoidal (default)
// or backward-Euler companion models, and DC operating points with gmin
// stepping as a fallback. Matrices are dense; noise clusters are small
// (tens of nodes), where dense LU beats sparse bookkeeping.
//
// The engine is split into two phases (DESIGN.md §7). Compile resolves a
// circuit into an immutable Program — index-resolved node table and
// per-device stamp plans — and a Session against that Program owns the
// preallocated matrices, vectors and LU workspace, re-running with mutated
// parameters (SetSource/SetLoad/SetGuess) at zero rebuild cost. The
// one-shot DC and Transient entry points below are thin wrappers that
// compile, open a session, and run once; characterisation sweeps use the
// two-phase API directly.
package sim

import (
	"context"
	"errors"
	"fmt"

	"stanoise/internal/circuit"
	"stanoise/internal/wave"
)

// ErrNoConvergence is returned when Newton iteration fails to converge.
var ErrNoConvergence = errors.New("sim: Newton iteration did not converge")

// idx maps a node to its unknown index, or -1 for ground.
func idx(n circuit.NodeID) int { return int(n) }

// DCResult holds an operating point.
type DCResult struct {
	c *circuit.Circuit
	X []float64 // node voltages then branch currents
	n int
}

// NodeV returns the DC voltage of a named node.
func (r *DCResult) NodeV(name string) float64 {
	id, ok := r.c.LookupNode(name)
	if !ok {
		panic(fmt.Sprintf("sim: unknown node %q", name))
	}
	if id == circuit.Ground {
		return 0
	}
	return r.X[id]
}

// BranchI returns the branch current of the named voltage source (flowing
// into the source at its positive terminal).
func (r *DCResult) BranchI(vsrc string) float64 {
	k := r.c.VSourceIndex(vsrc)
	if k < 0 {
		panic(fmt.Sprintf("sim: unknown voltage source %q", vsrc))
	}
	return r.X[r.n+k]
}

// SourceCurrent is BranchI by compiled handle instead of name: a direct
// index into the unknown vector, with no per-call name lookup. It is the
// probe a RunDCInto sweep loop uses to stay allocation-free and O(1) per
// grid point.
func (r *DCResult) SourceCurrent(h SourceHandle) float64 {
	return r.X[r.n+int(h)]
}

// DC computes the operating point at t = 0. It is a one-shot wrapper over
// the two-phase API: Compile + NewSession + RunDC. Sweeps that solve the
// same topology repeatedly should compile once and reuse a Session.
func DC(c *circuit.Circuit, opts Options) (*DCResult, error) {
	s, err := NewSession(Compile(c), opts)
	if err != nil {
		return nil, err
	}
	return s.RunDC()
}

// Result holds a transient simulation: node voltages and voltage-source
// branch currents sampled on the time grid.
type Result struct {
	c       *circuit.Circuit
	Times   []float64
	nodeV   [][]float64 // [node][step]
	branchI [][]float64 // [vsrc][step]
}

// reset rebinds a caller-owned Result to a circuit and truncates every
// series to length zero, reusing backing storage when its capacity covers
// capHint points. After the first RunTransientInto on a given Result, later
// runs of the same (or smaller) size allocate nothing here.
func (r *Result) reset(c *circuit.Circuit, n, m, capHint int) {
	r.c = c
	if cap(r.Times) < capHint {
		r.Times = make([]float64, 0, capHint)
	}
	r.Times = r.Times[:0]
	if cap(r.nodeV) < n {
		r.nodeV = make([][]float64, n)
	}
	r.nodeV = r.nodeV[:n]
	for i := range r.nodeV {
		if cap(r.nodeV[i]) < capHint {
			r.nodeV[i] = make([]float64, 0, capHint)
		}
		r.nodeV[i] = r.nodeV[i][:0]
	}
	if cap(r.branchI) < m {
		r.branchI = make([][]float64, m)
	}
	r.branchI = r.branchI[:m]
	for k := range r.branchI {
		if cap(r.branchI[k]) < capHint {
			r.branchI[k] = make([]float64, 0, capHint)
		}
		r.branchI[k] = r.branchI[k][:0]
	}
}

// record appends one time point. All appends stay within the capacity
// reserved by reset, so a transient step records allocation-free.
func (r *Result) record(t float64, x []float64) {
	r.Times = append(r.Times, t)
	n := len(r.nodeV)
	for i := range r.nodeV {
		r.nodeV[i] = append(r.nodeV[i], x[i])
	}
	for k := range r.branchI {
		r.branchI[k] = append(r.branchI[k], x[n+k])
	}
}

// Waveform returns the voltage waveform of a named node.
func (r *Result) Waveform(node string) *wave.Waveform {
	id, ok := r.c.LookupNode(node)
	if !ok {
		panic(fmt.Sprintf("sim: unknown node %q", node))
	}
	if id == circuit.Ground {
		return wave.Constant(0)
	}
	return wave.FromPoints(r.Times, r.nodeV[id])
}

// BranchCurrent returns the branch-current waveform of a voltage source.
func (r *Result) BranchCurrent(vsrc string) *wave.Waveform {
	k := r.c.VSourceIndex(vsrc)
	if k < 0 {
		panic(fmt.Sprintf("sim: unknown voltage source %q", vsrc))
	}
	return wave.FromPoints(r.Times, r.branchI[k])
}

// At returns the voltage of node at the given step index.
func (r *Result) At(node string, step int) float64 {
	id, _ := r.c.LookupNode(node)
	if id == circuit.Ground {
		return 0
	}
	return r.nodeV[id][step]
}

// Steps returns the number of recorded time points.
func (r *Result) Steps() int { return len(r.Times) }

// Transient runs a transient analysis from a DC operating point at t = 0 to
// opts.TStop with a fixed step opts.Dt. The context is checked periodically
// between timesteps, so a cancelled characterisation or analysis run stops
// mid-transient instead of completing the solve; a nil context disables
// cancellation. It is a one-shot wrapper over Compile + NewSession +
// RunTransient.
func Transient(ctx context.Context, c *circuit.Circuit, opts Options) (*Result, error) {
	s, err := NewSession(Compile(c), opts)
	if err != nil {
		return nil, err
	}
	return s.RunTransient(ctx, opts.TStop)
}
