// Package sim implements the transistor-level circuit simulator used as the
// golden reference throughout the repository — the stand-in for the ELDO™
// runs in the paper (see DESIGN.md §2).
//
// It is a classical MNA (modified nodal analysis) engine: node voltages plus
// voltage-source branch currents are the unknowns, non-linear devices are
// handled with damped Newton–Raphson, capacitors with trapezoidal (default)
// or backward-Euler companion models, and DC operating points with gmin
// stepping as a fallback. Matrices are dense; noise clusters are small
// (tens of nodes), where dense LU beats sparse bookkeeping.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"stanoise/internal/circuit"
	"stanoise/internal/linalg"
	"stanoise/internal/wave"
)

// Method selects the integration rule for capacitors.
type Method int

const (
	// Trapezoidal is second-order accurate and the default.
	Trapezoidal Method = iota
	// BackwardEuler is first-order and strongly damped; useful to start
	// transients or to suppress trapezoidal ringing.
	BackwardEuler
)

// Options configures a simulation run. The zero value is completed with
// sensible defaults by normalize.
type Options struct {
	Dt     float64 // transient timestep (s); default 1 ps
	TStop  float64 // transient end time (s)
	Method Method  // integration rule; default Trapezoidal

	MaxNewton int     // Newton iteration cap per solve; default 100
	VTol      float64 // voltage convergence tolerance (V); default 1e-9
	ITol      float64 // residual current tolerance (A); default 1e-12
	Gmin      float64 // minimum conductance to ground (S); default 1e-12
	MaxStep   float64 // Newton per-iteration voltage damping limit (V); default 0.5

	// InitialGuess seeds DC node voltages by node name. Seeding nodes near
	// their quiet logic values both speeds convergence and selects the
	// intended operating point.
	InitialGuess map[string]float64
}

func (o Options) normalize() Options {
	if o.Dt <= 0 {
		o.Dt = 1e-12
	}
	if o.MaxNewton <= 0 {
		o.MaxNewton = 100
	}
	if o.VTol <= 0 {
		o.VTol = 1e-9
	}
	if o.ITol <= 0 {
		o.ITol = 1e-12
	}
	if o.Gmin <= 0 {
		o.Gmin = 1e-12
	}
	if o.MaxStep <= 0 {
		o.MaxStep = 0.5
	}
	return o
}

// ErrNoConvergence is returned when Newton iteration fails to converge.
var ErrNoConvergence = errors.New("sim: Newton iteration did not converge")

// solver holds the assembled MNA structure for one circuit.
type solver struct {
	c    *circuit.Circuit
	opts Options
	n    int // node unknowns
	m    int // voltage-source branch unknowns
	size int

	// base holds all voltage-independent, time-independent conductance
	// stamps: resistors, gmin, and the voltage-source incidence pattern.
	base *linalg.Matrix

	// Scratch buffers reused across Newton iterations.
	jac *linalg.Matrix
	f   []float64
	rhs []float64
}

func newSolver(c *circuit.Circuit, opts Options) *solver {
	s := &solver{
		c:    c,
		opts: opts.normalize(),
		n:    c.NumNodes(),
		m:    len(c.VSources),
	}
	s.size = s.n + s.m
	s.base = linalg.NewMatrix(s.size, s.size)
	s.jac = linalg.NewMatrix(s.size, s.size)
	s.f = make([]float64, s.size)
	s.rhs = make([]float64, s.size)
	s.stampBase(s.opts.Gmin)
	return s
}

// idx maps a node to its unknown index, or -1 for ground.
func idx(n circuit.NodeID) int { return int(n) }

// stampBase fills the linear, time-invariant part of the Jacobian.
func (s *solver) stampBase(gmin float64) {
	s.base.Zero()
	for i := 0; i < s.n; i++ {
		s.base.Add(i, i, gmin)
	}
	for _, r := range s.c.Resistors {
		g := 1 / r.R
		s.stampConductance(s.base, r.A, r.B, g)
	}
	for k, v := range s.c.VSources {
		row := s.n + k
		if a := idx(v.Pos); a >= 0 {
			s.base.Add(a, row, 1)
			s.base.Add(row, a, 1)
		}
		if b := idx(v.Neg); b >= 0 {
			s.base.Add(b, row, -1)
			s.base.Add(row, b, -1)
		}
	}
}

func (s *solver) stampConductance(m *linalg.Matrix, na, nb circuit.NodeID, g float64) {
	a, b := idx(na), idx(nb)
	if a >= 0 {
		m.Add(a, a, g)
	}
	if b >= 0 {
		m.Add(b, b, g)
	}
	if a >= 0 && b >= 0 {
		m.Add(a, b, -g)
		m.Add(b, a, -g)
	}
}

// vAt returns the voltage of node n under the unknown vector x.
func vAt(x []float64, n circuit.NodeID) float64 {
	if n == circuit.Ground {
		return 0
	}
	return x[n]
}

// assemble builds the Jacobian and residual F(x) at the given Newton
// iterate. lin is the linear system matrix to start from (base for DC,
// base+cap companions for transients); b carries the time-dependent source
// and capacitor-history terms as "current injected" (so F = lin·x - b + nl).
func (s *solver) assemble(lin *linalg.Matrix, x, b []float64) {
	s.jac.CopyFrom(lin)
	// F = lin·x - b
	lin.MulVecInto(s.f, x)
	for i := range s.f {
		s.f[i] -= b[i]
	}
	// MOSFETs.
	for i := range s.c.Mosfets {
		m := &s.c.Mosfets[i]
		vd, vg, vs := vAt(x, m.D), vAt(x, m.G), vAt(x, m.S)
		id, gd, gg, gs := m.P.Eval(vd, vg, vs)
		d, g, src := idx(m.D), idx(m.G), idx(m.S)
		// id is the current into the drain terminal, i.e. leaving node D.
		if d >= 0 {
			s.f[d] += id
			s.jac.Add(d, d, gd)
			if g >= 0 {
				s.jac.Add(d, g, gg)
			}
			if src >= 0 {
				s.jac.Add(d, src, gs)
			}
		}
		if src >= 0 {
			s.f[src] -= id
			s.jac.Add(src, src, -gs)
			if d >= 0 {
				s.jac.Add(src, d, -gd)
			}
			if g >= 0 {
				s.jac.Add(src, g, -gg)
			}
		}
	}
	// Table VCCSs: current i injected into Out.
	for i := range s.c.VCCSs {
		e := &s.c.VCCSs[i]
		vc, vo := vAt(x, e.Ctrl), vAt(x, e.Out)
		cur, gc, gout := e.F.Eval(vc, vo)
		o, cn := idx(e.Out), idx(e.Ctrl)
		if o >= 0 {
			s.f[o] -= cur
			s.jac.Add(o, o, -gout)
			if cn >= 0 {
				s.jac.Add(o, cn, -gc)
			}
		}
	}
}

// newton solves F(x) = 0 starting from x, modifying it in place.
func (s *solver) newton(lin *linalg.Matrix, x, b []float64) error {
	opts := s.opts
	for it := 0; it < opts.MaxNewton; it++ {
		s.assemble(lin, x, b)
		lu, err := linalg.Factor(s.jac)
		if err != nil {
			return fmt.Errorf("sim: singular Jacobian at Newton iteration %d: %w", it, err)
		}
		dx := lu.Solve(s.f)
		// Damping: bound the voltage update.
		maxdv := 0.0
		for i := 0; i < s.n; i++ {
			if a := math.Abs(dx[i]); a > maxdv {
				maxdv = a
			}
		}
		scale := 1.0
		if maxdv > opts.MaxStep {
			scale = opts.MaxStep / maxdv
		}
		for i := range x {
			x[i] -= scale * dx[i]
		}
		maxf := 0.0
		for i := 0; i < s.n; i++ {
			if a := math.Abs(s.f[i]); a > maxf {
				maxf = a
			}
		}
		if maxdv*scale < opts.VTol && maxf < opts.ITol*math.Max(1, float64(s.n)) {
			return nil
		}
	}
	return ErrNoConvergence
}

// sourceRHS fills b with the independent-source terms at time t.
func (s *solver) sourceRHS(b []float64, t float64) {
	for i := range b {
		b[i] = 0
	}
	for k, v := range s.c.VSources {
		b[s.n+k] = v.W.At(t)
	}
	for _, is := range s.c.ISources {
		if a := idx(is.Pos); a >= 0 {
			b[a] += is.W.At(t)
		}
		if bn := idx(is.Neg); bn >= 0 {
			b[bn] -= is.W.At(t)
		}
	}
}

// initialGuess builds the DC starting point.
func (s *solver) initialGuess() []float64 {
	x := make([]float64, s.size)
	// Ground-referenced DC sources pin their node directly; this lands the
	// first iterate close to the operating point for rail-connected nets.
	for _, v := range s.c.VSources {
		if v.Neg == circuit.Ground && v.Pos != circuit.Ground {
			x[v.Pos] = v.W.At(0)
		}
	}
	for name, val := range s.opts.InitialGuess {
		if id, ok := s.c.LookupNode(name); ok && id != circuit.Ground {
			x[id] = val
		}
	}
	return x
}

// DCResult holds an operating point.
type DCResult struct {
	c *circuit.Circuit
	X []float64 // node voltages then branch currents
	n int
}

// NodeV returns the DC voltage of a named node.
func (r *DCResult) NodeV(name string) float64 {
	id, ok := r.c.LookupNode(name)
	if !ok {
		panic(fmt.Sprintf("sim: unknown node %q", name))
	}
	if id == circuit.Ground {
		return 0
	}
	return r.X[id]
}

// BranchI returns the branch current of the named voltage source (flowing
// into the source at its positive terminal).
func (r *DCResult) BranchI(vsrc string) float64 {
	k := r.c.VSourceIndex(vsrc)
	if k < 0 {
		panic(fmt.Sprintf("sim: unknown voltage source %q", vsrc))
	}
	return r.X[r.n+k]
}

// DC computes the operating point at t = 0. When plain Newton fails it
// falls back to gmin stepping: solving a sequence of progressively less
// regularised systems, warm-starting each from the last.
func DC(c *circuit.Circuit, opts Options) (*DCResult, error) {
	dcCount.Add(1)
	s := newSolver(c, opts)
	x := s.initialGuess()
	s.sourceRHS(s.rhs, 0)
	if err := s.newton(s.base, x, s.rhs); err == nil {
		return &DCResult{c: c, X: x, n: s.n}, nil
	}
	// gmin stepping.
	x = s.initialGuess()
	for gmin := 1e-3; gmin >= s.opts.Gmin; gmin /= 10 {
		s.stampBase(gmin)
		if err := s.newton(s.base, x, s.rhs); err != nil {
			return nil, fmt.Errorf("sim: DC gmin stepping failed at gmin=%g: %w", gmin, err)
		}
	}
	s.stampBase(s.opts.Gmin)
	if err := s.newton(s.base, x, s.rhs); err != nil {
		return nil, fmt.Errorf("sim: DC failed after gmin stepping: %w", err)
	}
	return &DCResult{c: c, X: x, n: s.n}, nil
}

// Result holds a transient simulation: node voltages and voltage-source
// branch currents sampled on the time grid.
type Result struct {
	c       *circuit.Circuit
	Times   []float64
	nodeV   [][]float64 // [node][step]
	branchI [][]float64 // [vsrc][step]
}

// Waveform returns the voltage waveform of a named node.
func (r *Result) Waveform(node string) *wave.Waveform {
	id, ok := r.c.LookupNode(node)
	if !ok {
		panic(fmt.Sprintf("sim: unknown node %q", node))
	}
	if id == circuit.Ground {
		return wave.Constant(0)
	}
	return wave.FromPoints(r.Times, r.nodeV[id])
}

// BranchCurrent returns the branch-current waveform of a voltage source.
func (r *Result) BranchCurrent(vsrc string) *wave.Waveform {
	k := r.c.VSourceIndex(vsrc)
	if k < 0 {
		panic(fmt.Sprintf("sim: unknown voltage source %q", vsrc))
	}
	return wave.FromPoints(r.Times, r.branchI[k])
}

// At returns the voltage of node at the given step index.
func (r *Result) At(node string, step int) float64 {
	id, _ := r.c.LookupNode(node)
	if id == circuit.Ground {
		return 0
	}
	return r.nodeV[id][step]
}

// Steps returns the number of recorded time points.
func (r *Result) Steps() int { return len(r.Times) }

// Transient runs a transient analysis from a DC operating point at t = 0 to
// opts.TStop with a fixed step opts.Dt. The context is checked periodically
// between timesteps, so a cancelled characterisation or analysis run stops
// mid-transient instead of completing the solve; a nil context disables
// cancellation.
func Transient(ctx context.Context, c *circuit.Circuit, opts Options) (*Result, error) {
	transientCount.Add(1)
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.normalize()
	if opts.TStop <= 0 {
		return nil, errors.New("sim: Transient requires positive TStop")
	}
	s := newSolver(c, opts)

	dc, err := DC(c, opts)
	if err != nil {
		return nil, fmt.Errorf("sim: transient operating point: %w", err)
	}
	x := append([]float64(nil), dc.X...)

	nsteps := int(math.Ceil(opts.TStop/opts.Dt)) + 1
	res := &Result{
		c:       c,
		Times:   make([]float64, 0, nsteps),
		nodeV:   make([][]float64, s.n),
		branchI: make([][]float64, s.m),
	}
	record := func(t float64, x []float64) {
		res.Times = append(res.Times, t)
		for i := 0; i < s.n; i++ {
			res.nodeV[i] = append(res.nodeV[i], x[i])
		}
		for k := 0; k < s.m; k++ {
			res.branchI[k] = append(res.branchI[k], x[s.n+k])
		}
	}
	record(0, x)

	// Transient system matrix: base + capacitor companion conductances.
	h := opts.Dt
	geqFactor := 1.0 / h // BE
	if opts.Method == Trapezoidal {
		geqFactor = 2.0 / h
	}
	lin := s.base.Clone()
	for _, cp := range c.Capacitors {
		s.stampConductance(lin, cp.A, cp.B, cp.C*geqFactor)
	}

	// Capacitor history: branch voltage and (for trapezoidal) current.
	vPrev := make([]float64, len(c.Capacitors))
	iPrev := make([]float64, len(c.Capacitors))
	for i, cp := range c.Capacitors {
		vPrev[i] = vAt(x, cp.A) - vAt(x, cp.B)
		iPrev[i] = 0 // steady state at the operating point
	}

	b := make([]float64, s.size)
	step := 0
	for t := h; t <= opts.TStop+h/2; t += h {
		if step++; step&15 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		s.sourceRHS(b, t)
		for i, cp := range c.Capacitors {
			var hist float64
			if opts.Method == Trapezoidal {
				hist = cp.C*geqFactor*vPrev[i] + iPrev[i]
			} else {
				hist = cp.C * geqFactor * vPrev[i]
			}
			if a := idx(cp.A); a >= 0 {
				b[a] += hist
			}
			if bb := idx(cp.B); bb >= 0 {
				b[bb] -= hist
			}
		}
		if err := s.newton(lin, x, b); err != nil {
			return nil, fmt.Errorf("sim: transient at t=%.3gps: %w", t*1e12, err)
		}
		for i, cp := range c.Capacitors {
			v := vAt(x, cp.A) - vAt(x, cp.B)
			if opts.Method == Trapezoidal {
				iPrev[i] = cp.C*geqFactor*(v-vPrev[i]) - iPrev[i]
			} else {
				iPrev[i] = cp.C * geqFactor * (v - vPrev[i])
			}
			vPrev[i] = v
		}
		record(t, x)
	}
	return res, nil
}
