package sim

import (
	"context"
	"math"
	"testing"

	"stanoise/internal/cell"
	"stanoise/internal/circuit"
	"stanoise/internal/tech"
	"stanoise/internal/wave"
)

// glitchRig builds the canonical nonlinear glitch-propagation rig: a gate
// of the given kind with a triangle glitch on one input and a capacitive
// load, the same shape the prop-table and NRC characterisations sweep.
func glitchRig(t testing.TB, tc *tech.Tech, kind string) *circuit.Circuit {
	t.Helper()
	c := cell.MustNew(tc, kind, 1)
	ckt := circuit.New()
	ckt.AddVDC("vdd", "vdd", "0", tc.VDD)
	pins := map[string]string{"A": "in_A"}
	ckt.AddV("v_A", "in_A", "0", wave.Triangle(0, 0.9*tc.VDD, 50e-12, 400e-12))
	if kind == "NAND2" {
		pins["B"] = "in_B"
		ckt.AddVDC("v_B", "in_B", "0", tc.VDD) // B high: A controls
	}
	if err := c.Build(ckt, "dut", pins, "out", "vdd"); err != nil {
		t.Fatal(err)
	}
	ckt.AddC("cl", "out", "0", 30e-15)
	return ckt
}

// TestPredictorCutsNewtonIterations asserts the predictor's reason to
// exist with a counter floor: on INV and NAND2 glitch rigs, polynomial
// seeding must cut the transient Newton iterations by at least 20%
// relative to the legacy previous-point seed, without a single fallback.
func TestPredictorCutsNewtonIterations(t *testing.T) {
	for _, kind := range []string{"INV", "NAND2"} {
		t.Run(kind, func(t *testing.T) {
			prog := Compile(glitchRig(t, tech.Tech130(), kind))
			const tstop = 600e-12

			run := func(pred bool) (SessionStats, *Result) {
				sess, err := NewSession(prog, Options{Dt: 1e-12})
				if err != nil {
					t.Fatal(err)
				}
				sess.Predictor(pred)
				res, err := sess.RunTransient(context.Background(), tstop)
				if err != nil {
					t.Fatal(err)
				}
				return sess.Stats(), res
			}
			cold, coldRes := run(false)
			pred, predRes := run(true)

			if cold.PredictorSeeds != 0 {
				t.Fatalf("predictor-off run recorded %d seeds", cold.PredictorSeeds)
			}
			if want := pred.TransientSteps - 1; pred.PredictorSeeds != want {
				// Seeding starts at the second step, once two history
				// points exist.
				t.Errorf("PredictorSeeds = %d, want %d", pred.PredictorSeeds, want)
			}
			if pred.PredictorFallbacks != 0 {
				t.Errorf("%d predictor fallbacks on a smooth glitch rig, want 0", pred.PredictorFallbacks)
			}
			if pred.NewtonIters >= cold.NewtonIters {
				t.Fatalf("predictor did not reduce Newton iterations: %d vs %d",
					pred.NewtonIters, cold.NewtonIters)
			}
			cut := 1 - float64(pred.NewtonIters)/float64(cold.NewtonIters)
			t.Logf("%s: Newton iterations %d → %d (%.1f%% cut)",
				kind, cold.NewtonIters, pred.NewtonIters, 100*cut)
			if cut < 0.20 {
				t.Errorf("predictor cut Newton iterations by %.1f%%, want >= 20%%", 100*cut)
			}

			// The predictor changes the Newton seed, not the converged
			// solution: waveforms must agree to solver tolerance.
			if coldRes.Steps() != predRes.Steps() {
				t.Fatalf("step counts differ: %d vs %d", coldRes.Steps(), predRes.Steps())
			}
			for n := range coldRes.nodeV {
				for i := range coldRes.nodeV[n] {
					if dv := math.Abs(coldRes.nodeV[n][i] - predRes.nodeV[n][i]); dv > 1e-6 {
						t.Fatalf("node %d diverges by %g V at step %d", n, dv, i)
					}
				}
			}
		})
	}
}

// TestPredictorFallbackRecovers forces the extrapolated seed to miss — a
// square-edged stimulus makes a quadratic history a poor predictor — and
// requires the run to still converge, proving the transparent re-solve
// from the previous point. The fallback counter may legitimately stay
// zero when Newton digests the bad seed anyway; correctness of the result
// is the contract.
func TestPredictorFallbackRecovers(t *testing.T) {
	tc := tech.Tech130()
	inv := cell.MustNew(tc, "INV", 1)
	ckt := circuit.New()
	ckt.AddVDC("vdd", "vdd", "0", tc.VDD)
	// Near-vertical edges: 1 ps rise after a long flat run.
	ckt.AddV("v_A", "in_A", "0", wave.SaturatedRamp(0, tc.VDD, 100e-12, 1e-12))
	if err := inv.Build(ckt, "dut", map[string]string{"A": "in_A"}, "out", "vdd"); err != nil {
		t.Fatal(err)
	}
	ckt.AddC("cl", "out", "0", 30e-15)
	prog := Compile(ckt)

	run := func(pred bool) *Result {
		sess, err := NewSession(prog, Options{Dt: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		sess.Predictor(pred)
		res, err := sess.RunTransient(context.Background(), 300e-12)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := run(false)
	pred := run(true)
	for i := 0; i < cold.Steps(); i++ {
		if dv := math.Abs(cold.At("out", i) - pred.At("out", i)); dv > 1e-6 {
			t.Fatalf("predictor run diverges by %g V at step %d", dv, i)
		}
	}
}
