package sim

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Method selects the integration rule for capacitors.
type Method int

const (
	// Trapezoidal is second-order accurate and the default.
	Trapezoidal Method = iota
	// BackwardEuler is first-order and strongly damped; useful to start
	// transients or to suppress trapezoidal ringing.
	BackwardEuler
)

// Options configures a simulation run. The zero value is completed with
// sensible defaults by normalize. Non-finite values (NaN or ±Inf) in any
// numeric field are rejected with an *OptionsError before a solve starts —
// a NaN tolerance or timestep would otherwise pass every `<= 0` default
// check and silently never converge.
type Options struct {
	Dt     float64 // transient timestep (s); default 1 ps
	TStop  float64 // transient end time (s)
	Method Method  // integration rule; default Trapezoidal

	MaxNewton int     // Newton iteration cap per solve; default 100
	VTol      float64 // voltage convergence tolerance (V); default 1e-9
	ITol      float64 // residual current tolerance (A); default 1e-12
	Gmin      float64 // minimum conductance to ground (S); default 1e-12
	MaxStep   float64 // Newton per-iteration voltage damping limit (V); default 0.5

	// InitialGuess seeds DC node voltages by node name. Seeding nodes near
	// their quiet logic values both speeds convergence and selects the
	// intended operating point.
	InitialGuess map[string]float64
}

func (o Options) normalize() Options {
	if o.Dt <= 0 {
		o.Dt = 1e-12
	}
	if o.MaxNewton <= 0 {
		o.MaxNewton = 100
	}
	if o.VTol <= 0 {
		o.VTol = 1e-9
	}
	if o.ITol <= 0 {
		o.ITol = 1e-12
	}
	if o.Gmin <= 0 {
		o.Gmin = 1e-12
	}
	if o.MaxStep <= 0 {
		o.MaxStep = 0.5
	}
	return o
}

// ErrInvalidOptions is the sentinel wrapped by every *OptionsError, so
// callers can test the class with errors.Is without matching fields.
var ErrInvalidOptions = errors.New("sim: invalid options")

// OptionsError reports a simulation option that cannot be used: a NaN or
// infinite numeric field, or a NaN/Inf initial-guess voltage. It unwraps to
// ErrInvalidOptions.
type OptionsError struct {
	Field string  // e.g. "Dt" or `InitialGuess["out"]`
	Value float64 // the offending value
}

// Error implements error.
func (e *OptionsError) Error() string {
	return fmt.Sprintf("sim: invalid option %s = %g (must be finite)", e.Field, e.Value)
}

// Unwrap ties the typed error to the ErrInvalidOptions sentinel.
func (e *OptionsError) Unwrap() error { return ErrInvalidOptions }

// Validate rejects non-finite option values with an *OptionsError. Zero
// and negative values are legal — normalize replaces them with defaults —
// but NaN and ±Inf are programming errors that would otherwise disable
// convergence checks or run a transient forever.
func (o Options) Validate() error {
	fields := []struct {
		name string
		v    float64
	}{
		{"Dt", o.Dt},
		{"TStop", o.TStop},
		{"VTol", o.VTol},
		{"ITol", o.ITol},
		{"Gmin", o.Gmin},
		{"MaxStep", o.MaxStep},
	}
	for _, f := range fields {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return &OptionsError{Field: f.name, Value: f.v}
		}
	}
	if len(o.InitialGuess) > 0 {
		// Deterministic reporting order for map-backed guesses.
		names := make([]string, 0, len(o.InitialGuess))
		for name := range o.InitialGuess {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if v := o.InitialGuess[name]; math.IsNaN(v) || math.IsInf(v, 0) {
				return &OptionsError{Field: fmt.Sprintf("InitialGuess[%q]", name), Value: v}
			}
		}
	}
	return nil
}
