package sim

import (
	"context"
	"fmt"
	"testing"

	"stanoise/internal/cell"
	"stanoise/internal/circuit"
	"stanoise/internal/tech"
	"stanoise/internal/wave"
)

// The compiled two-phase path must be numerically indistinguishable from
// building a fresh circuit per run: every matrix stamp, Newton update and
// LU operation performs the identical arithmetic, so the comparison here
// is bit-for-bit (==), not tolerance-based. The cells and technology cards
// mirror the golden fixtures (INV and NAND2 on both tech cards).

func equivCells(t *testing.T) []*cell.Cell {
	t.Helper()
	var out []*cell.Cell
	for _, tc := range []*tech.Tech{tech.Tech130(), tech.Tech90()} {
		for _, kind := range []string{"INV", "NAND2"} {
			out = append(out, cell.MustNew(tc, kind, 1))
		}
	}
	return out
}

// buildForceBench builds the load-curve characterisation bench: cell with
// all inputs sourced and the output forced.
func buildForceBench(t *testing.T, cl *cell.Cell, st cell.State, noisyPin string, vin, vout float64) *circuit.Circuit {
	t.Helper()
	ckt := circuit.New()
	ckt.AddVDC("vdd", "vdd", "0", cl.Tech.VDD)
	pins := map[string]string{}
	for _, in := range cl.Inputs() {
		node := "in_" + in
		pins[in] = node
		v := cl.PinVoltage(st[in])
		if in == noisyPin {
			v = vin
		}
		ckt.AddVDC("v_"+in, node, "0", v)
	}
	if err := cl.Build(ckt, "dut", pins, "out", "vdd"); err != nil {
		t.Fatal(err)
	}
	ckt.AddVDC("vforce", "out", "0", vout)
	return ckt
}

// TestSessionDCMatchesOneShotBitForBit sweeps a DC grid through one reused
// Session and through fresh one-shot sim.DC calls on per-point circuits,
// and requires the full unknown vectors to agree exactly.
func TestSessionDCMatchesOneShotBitForBit(t *testing.T) {
	for _, cl := range equivCells(t) {
		cl := cl
		t.Run(fmt.Sprintf("%s_vdd%.1f", cl.Name(), cl.Tech.VDD), func(t *testing.T) {
			noisy := cl.Inputs()[len(cl.Inputs())-1]
			st, err := cl.SensitizedState(noisy, true)
			if err != nil {
				t.Fatal(err)
			}
			vdd := cl.Tech.VDD
			quietOut := cl.PinVoltage(cl.Logic(st))

			// Compiled path: one session, parameters mutated per point.
			base := buildForceBench(t, cl, st, noisy, cl.PinVoltage(st[noisy]), 0)
			prog := Compile(base)
			sess, err := NewSession(prog, Options{})
			if err != nil {
				t.Fatal(err)
			}
			hNoisy := prog.MustSource("v_" + noisy)
			hForce := prog.MustSource("vforce")

			grid := []float64{-0.2 * vdd, 0, 0.35 * vdd, 0.7 * vdd, vdd, 1.2 * vdd}
			for _, vin := range grid {
				for _, vout := range grid {
					sess.SetSourceDC(hNoisy, vin)
					sess.SetSourceDC(hForce, vout)
					g := 0.5 * (vout + quietOut)
					sess.SetGuess("dut.n1", g)
					sess.SetGuess("dut.n2", g)
					got, err := sess.RunDC()
					if err != nil {
						t.Fatalf("session DC vin=%g vout=%g: %v", vin, vout, err)
					}

					ckt := buildForceBench(t, cl, st, noisy, vin, vout)
					want, err := DC(ckt, Options{InitialGuess: map[string]float64{
						"dut.n1": g, "dut.n2": g,
					}})
					if err != nil {
						t.Fatalf("one-shot DC vin=%g vout=%g: %v", vin, vout, err)
					}
					if len(got.X) != len(want.X) {
						t.Fatalf("unknown count mismatch: %d vs %d", len(got.X), len(want.X))
					}
					for i := range got.X {
						if got.X[i] != want.X[i] {
							t.Fatalf("vin=%g vout=%g: X[%d] = %v (session) vs %v (one-shot)",
								vin, vout, i, got.X[i], want.X[i])
						}
					}
				}
			}
		})
	}
}

// buildGlitchBench builds the transient glitch bench: cell with a
// triangular glitch on the noisy pin into a lumped load.
func buildGlitchBench(t *testing.T, cl *cell.Cell, st cell.State, noisyPin string, w *wave.Waveform, load float64) *circuit.Circuit {
	t.Helper()
	ckt := circuit.New()
	ckt.AddVDC("vdd", "vdd", "0", cl.Tech.VDD)
	pins := map[string]string{}
	for _, in := range cl.Inputs() {
		node := "in_" + in
		pins[in] = node
		if in == noisyPin {
			ckt.AddV("v_"+in, node, "0", w)
		} else {
			ckt.AddVDC("v_"+in, node, "0", cl.PinVoltage(st[in]))
		}
	}
	if err := cl.Build(ckt, "dut", pins, "out", "vdd"); err != nil {
		t.Fatal(err)
	}
	ckt.AddC("cload", "out", "0", load)
	return ckt
}

// TestSessionTransientMatchesOneShotBitForBit sweeps glitch heights,
// widths and loads through one reused Session and through fresh one-shot
// sim.Transient calls, and requires the recorded waveforms to agree
// exactly at every node and every timestep.
func TestSessionTransientMatchesOneShotBitForBit(t *testing.T) {
	if testing.Short() {
		t.Skip("transient sweep is slow")
	}
	const t0 = 100e-12
	for _, cl := range equivCells(t) {
		cl := cl
		t.Run(fmt.Sprintf("%s_vdd%.1f", cl.Name(), cl.Tech.VDD), func(t *testing.T) {
			noisy := cl.Inputs()[0]
			st, err := cl.SensitizedState(noisy, true)
			if err != nil {
				t.Fatal(err)
			}
			quietIn := cl.PinVoltage(st[noisy])
			vdd := cl.Tech.VDD

			base := buildGlitchBench(t, cl, st, noisy, wave.Constant(quietIn), 1e-15)
			prog := Compile(base)
			sess, err := NewSession(prog, Options{Dt: 2e-12})
			if err != nil {
				t.Fatal(err)
			}
			hNoisy := prog.MustSource("v_" + noisy)
			hLoad := prog.MustCap("cload")

			nodes := base.NodeNames()
			for _, h := range []float64{0.4 * vdd, 0.9 * vdd} {
				for _, width := range []float64{150e-12, 400e-12} {
					for _, load := range []float64{10e-15, 60e-15} {
						glitch := wave.Triangle(quietIn, h, t0, width)
						tstop := t0 + width + 400e-12
						sess.SetSource(hNoisy, glitch)
						sess.SetLoad(hLoad, load)
						got, err := sess.RunTransient(context.Background(), tstop)
						if err != nil {
							t.Fatalf("session transient h=%g w=%g: %v", h, width, err)
						}

						ckt := buildGlitchBench(t, cl, st, noisy, glitch, load)
						want, err := Transient(context.Background(), ckt, Options{Dt: 2e-12, TStop: tstop})
						if err != nil {
							t.Fatalf("one-shot transient h=%g w=%g: %v", h, width, err)
						}
						if got.Steps() != want.Steps() {
							t.Fatalf("step count mismatch: %d vs %d", got.Steps(), want.Steps())
						}
						for _, n := range nodes {
							gw, ww := got.Waveform(n), want.Waveform(n)
							for i := range gw.V {
								if gw.V[i] != ww.V[i] {
									t.Fatalf("h=%g w=%g load=%g node %s step %d: %v vs %v",
										h, width, load, n, i, gw.V[i], ww.V[i])
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestNewtonLoopAllocFree asserts the warm steady-state Newton loop —
// guess, source RHS, assemble, factor, solve, damp — allocates zero bytes
// once a session is open. This is the invariant that keeps long
// characterisation sweeps out of the allocator and the GC.
func TestNewtonLoopAllocFree(t *testing.T) {
	cl := cell.MustNew(tech.Tech130(), "NAND2", 1)
	st, err := cl.SensitizedState("B", true)
	if err != nil {
		t.Fatal(err)
	}
	ckt := buildForceBench(t, cl, st, "B", 0.5, 0.8)
	prog := Compile(ckt)
	sess, err := NewSession(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm up once (first run may fault in lazy state).
	if _, err := sess.RunDC(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		sess.initialGuess(sess.x)
		sess.sourceRHS(sess.rhs, 0)
		if err := sess.newton(sess.base, sess.x, sess.rhs, false); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Newton loop allocates %.1f objects per solve, want 0", allocs)
	}
}

// TestSessionTransientInnerLoopAllocs bounds the per-run transient
// allocation count: everything left is result recording (preallocated
// slices) and the waveform swap — the Newton loop itself contributes
// nothing (see TestNewtonLoopAllocFree).
func TestSessionTransientReusesWorkspaces(t *testing.T) {
	cl := cell.MustNew(tech.Tech130(), "INV", 1)
	st := cell.State{"A": false}
	ckt := buildGlitchBench(t, cl, st, "A", wave.Constant(0), 20e-15)
	prog := Compile(ckt)
	sess, err := NewSession(prog, Options{Dt: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	hNoisy := prog.MustSource("v_A")
	glitch := wave.Triangle(0, 0.8, 100e-12, 200e-12)
	run := func() *Result {
		sess.SetSource(hNoisy, glitch)
		res, err := sess.RunTransient(context.Background(), 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run()
	second := run()
	// Results are independent allocations: re-running must not corrupt a
	// previously returned result.
	for i := range first.Times {
		if first.Times[i] != second.Times[i] {
			t.Fatalf("time grid differs at %d", i)
		}
	}
	fw, sw := first.Waveform("out"), second.Waveform("out")
	for i := range fw.V {
		if fw.V[i] != sw.V[i] {
			t.Fatalf("re-run diverged at step %d: %v vs %v", i, fw.V[i], sw.V[i])
		}
	}
}

// TestSessionCountersMatchOneShot verifies the invocation counters advance
// identically through the session path: a RunTransient performs exactly
// one DC (operating point) and one transient, like the one-shot wrapper.
func TestSessionCountersMatchOneShot(t *testing.T) {
	c := circuit.New()
	c.AddV("vs", "in", "0", wave.SaturatedRamp(0, 1, 0, 1e-12))
	c.AddR("r", "in", "out", 1000)
	c.AddC("c", "out", "0", 1e-12)
	sess, err := NewSession(Compile(c), Options{Dt: 10e-12})
	if err != nil {
		t.Fatal(err)
	}
	before := Snapshot()
	if _, err := sess.RunTransient(context.Background(), 1e-9); err != nil {
		t.Fatal(err)
	}
	d := Snapshot().Sub(before)
	if d.DC != 1 || d.Transient != 1 {
		t.Fatalf("counters after RunTransient = %+v, want DC=1 Transient=1", d)
	}
	before = Snapshot()
	if _, err := sess.RunDC(); err != nil {
		t.Fatal(err)
	}
	d = Snapshot().Sub(before)
	if d.DC != 1 || d.Transient != 0 {
		t.Fatalf("counters after RunDC = %+v, want DC=1 Transient=0", d)
	}
}
