package sim

import (
	"sync"
	"sync/atomic"
)

// Process-wide invocation counters for the two transistor-level entry
// points. They exist so higher layers can *prove* characterisation reuse:
// a warm persistent-store run must perform zero DC sweeps and zero
// transient characterisation runs, and the cheapest airtight way to assert
// that is to count every solve the engine actually starts.
var (
	dcCount            atomic.Int64
	transientCount     atomic.Int64
	newtonIterCount    atomic.Int64
	engineRunCount     atomic.Int64
	linearFastRunCount atomic.Int64
	transientStepCount atomic.Int64
	predictorSeedCount atomic.Int64
	nlStampEvalCount   atomic.Int64
)

// CountEngineRun counts one reduced-order noise-engine run (core.RunEngine).
// Those runs never touch the transistor-level solver, so they are tracked
// separately from DC/Transient: the characterisation-reuse proofs stay on
// Total() = DC + Transient, while the feasibility filter's
// fewer-evaluations proof reads EngineRuns.
func CountEngineRun() { engineRunCount.Add(1) }

// Counters is a snapshot of the cumulative engine invocation counts since
// process start. Transient includes the internal DC operating-point solve
// each transient performs, so a single Transient call advances both
// counters by one. NewtonIters counts every Newton iteration across all
// solves and sessions — the work metric the warm-start continuation mode
// reduces (per-session breakdowns live in Session.Stats).
type Counters struct {
	DC          int64
	Transient   int64
	NewtonIters int64
	// EngineRuns counts reduced-order noise-engine runs (core.RunEngine) —
	// evaluation work, not transistor-level characterisation, so it is
	// excluded from Total(). The feasibility filter's strictly-fewer-solves
	// guarantee is asserted on this counter.
	EngineRuns int64
	// LinearFastPathRuns counts transient runs that took the linear fast
	// path: the system matrix factored once per run, every timestep a
	// forward/back-substitution, zero Newton iterations. Paired with
	// NewtonIters it proves a pure-RC run never entered the Newton loop.
	LinearFastPathRuns int64
	// TransientSteps counts accepted transient timesteps across all runs
	// and sessions — the denominator for per-step work metrics such as the
	// predictor's Newton-iteration reduction.
	TransientSteps int64
	// PredictorSeeds counts timesteps whose Newton solve was seeded by the
	// polynomial predictor (Session.Predictor) rather than the previous
	// converged point.
	PredictorSeeds int64
	// NLStampEvals counts nonlinear-capacitor stamp evaluations (one per
	// voltage-dependent gate cap per transient Newton assembly). Strictly
	// positive iff the state-dependent charge model actually ran — the
	// /statsz assertion of the nlcap smoke job.
	NLStampEvals int64
}

// Snapshot returns the current cumulative counters. Subtract two snapshots
// (see Sub) to measure the solves attributable to a region of code.
func Snapshot() Counters {
	return Counters{
		DC:                 dcCount.Load(),
		Transient:          transientCount.Load(),
		NewtonIters:        newtonIterCount.Load(),
		EngineRuns:         engineRunCount.Load(),
		LinearFastPathRuns: linearFastRunCount.Load(),
		TransientSteps:     transientStepCount.Load(),
		PredictorSeeds:     predictorSeedCount.Load(),
		NLStampEvals:       nlStampEvalCount.Load(),
	}
}

// Sub returns the per-counter difference c − prev.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		DC:                 c.DC - prev.DC,
		Transient:          c.Transient - prev.Transient,
		NewtonIters:        c.NewtonIters - prev.NewtonIters,
		EngineRuns:         c.EngineRuns - prev.EngineRuns,
		LinearFastPathRuns: c.LinearFastPathRuns - prev.LinearFastPathRuns,
		TransientSteps:     c.TransientSteps - prev.TransientSteps,
		PredictorSeeds:     c.PredictorSeeds - prev.PredictorSeeds,
		NLStampEvals:       c.NLStampEvals - prev.NLStampEvals,
	}
}

// Total is the number of transistor-level engine invocations (DC plus
// transient solves — not Newton iterations, and not reduced-order
// EngineRuns) in the snapshot. The warm-run zero-solve proofs depend on
// exactly this definition.
func (c Counters) Total() int64 { return c.DC + c.Transient }

// CornerCounters aggregates the per-session work counters attributed to one
// operating corner ("nominal" for base-card runs). Characterisation sweeps
// record their SessionStats here when they finish (RecordCornerStats), and
// /statsz exposes the registry so operators can see which corner of a
// corner-matrix farm is burning Newton iterations — and how much the
// adjacent-corner continuation is saving.
type CornerCounters struct {
	DCSolves           int64 `json:"dc_solves"`             // DC solves started under this corner
	Transients         int64 `json:"transients"`            // transient runs started under this corner
	NewtonIters        int64 `json:"newton_iters"`          // Newton iterations spent under this corner
	WarmStarts         int64 `json:"warm_starts"`           // solves seeded from a previous converged solution
	WarmFallbacks      int64 `json:"warm_fallbacks"`        // warm-seeded solves that fell back to a cold start
	LinearFastPathRuns int64 `json:"linear_fast_path_runs"` // transient runs on the factor-once linear fast path
	TransientSteps     int64 `json:"transient_steps"`       // accepted transient timesteps under this corner
	PredictorSeeds     int64 `json:"predictor_seeds"`       // timesteps seeded by the polynomial predictor
	PredictorFallbacks int64 `json:"predictor_fallbacks"`   // predictor-seeded steps that fell back to the previous point
	NLStampEvals       int64 `json:"nl_stamp_evals"`        // nonlinear-capacitor stamp evaluations under this corner
}

// cornerCounters is the process-wide per-corner work registry.
var (
	cornerMu       sync.Mutex
	cornerCounters map[string]CornerCounters
)

// RecordCornerStats folds one finished sweep's SessionStats into the
// process-wide registry under the given corner tag (tech.Tech.CornerTag:
// the corner name, or "nominal"). Characterisation call sites invoke it
// once per completed session, so the registry costs nothing per solve.
func RecordCornerStats(tag string, st SessionStats) {
	cornerMu.Lock()
	defer cornerMu.Unlock()
	if cornerCounters == nil {
		cornerCounters = map[string]CornerCounters{}
	}
	c := cornerCounters[tag]
	c.DCSolves += st.DCSolves
	c.Transients += st.Transients
	c.NewtonIters += st.NewtonIters
	c.WarmStarts += st.WarmStarts
	c.WarmFallbacks += st.WarmFallbacks
	c.LinearFastPathRuns += st.LinearFastPathRuns
	c.TransientSteps += st.TransientSteps
	c.PredictorSeeds += st.PredictorSeeds
	c.PredictorFallbacks += st.PredictorFallbacks
	c.NLStampEvals += st.NLStampEvals
	cornerCounters[tag] = c
}

// SnapshotCorners returns a copy of the per-corner work registry. The map
// is empty (non-nil) until the first characterisation sweep completes.
func SnapshotCorners() map[string]CornerCounters {
	cornerMu.Lock()
	defer cornerMu.Unlock()
	out := make(map[string]CornerCounters, len(cornerCounters))
	for k, v := range cornerCounters {
		out[k] = v
	}
	return out
}
