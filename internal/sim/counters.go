package sim

import "sync/atomic"

// Process-wide invocation counters for the two transistor-level entry
// points. They exist so higher layers can *prove* characterisation reuse:
// a warm persistent-store run must perform zero DC sweeps and zero
// transient characterisation runs, and the cheapest airtight way to assert
// that is to count every solve the engine actually starts.
var (
	dcCount         atomic.Int64
	transientCount  atomic.Int64
	newtonIterCount atomic.Int64
)

// Counters is a snapshot of the cumulative engine invocation counts since
// process start. Transient includes the internal DC operating-point solve
// each transient performs, so a single Transient call advances both
// counters by one. NewtonIters counts every Newton iteration across all
// solves and sessions — the work metric the warm-start continuation mode
// reduces (per-session breakdowns live in Session.Stats).
type Counters struct {
	DC          int64
	Transient   int64
	NewtonIters int64
}

// Snapshot returns the current cumulative counters. Subtract two snapshots
// (see Sub) to measure the solves attributable to a region of code.
func Snapshot() Counters {
	return Counters{
		DC:          dcCount.Load(),
		Transient:   transientCount.Load(),
		NewtonIters: newtonIterCount.Load(),
	}
}

// Sub returns the per-counter difference c − prev.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		DC:          c.DC - prev.DC,
		Transient:   c.Transient - prev.Transient,
		NewtonIters: c.NewtonIters - prev.NewtonIters,
	}
}

// Total is the number of engine invocations (DC plus transient solves,
// not Newton iterations) in the snapshot.
func (c Counters) Total() int64 { return c.DC + c.Transient }
