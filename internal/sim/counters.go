package sim

import "sync/atomic"

// Process-wide invocation counters for the two transistor-level entry
// points. They exist so higher layers can *prove* characterisation reuse:
// a warm persistent-store run must perform zero DC sweeps and zero
// transient characterisation runs, and the cheapest airtight way to assert
// that is to count every solve the engine actually starts.
var (
	dcCount         atomic.Int64
	transientCount  atomic.Int64
	newtonIterCount atomic.Int64
	engineRunCount  atomic.Int64
)

// CountEngineRun counts one reduced-order noise-engine run (core.RunEngine).
// Those runs never touch the transistor-level solver, so they are tracked
// separately from DC/Transient: the characterisation-reuse proofs stay on
// Total() = DC + Transient, while the feasibility filter's
// fewer-evaluations proof reads EngineRuns.
func CountEngineRun() { engineRunCount.Add(1) }

// Counters is a snapshot of the cumulative engine invocation counts since
// process start. Transient includes the internal DC operating-point solve
// each transient performs, so a single Transient call advances both
// counters by one. NewtonIters counts every Newton iteration across all
// solves and sessions — the work metric the warm-start continuation mode
// reduces (per-session breakdowns live in Session.Stats).
type Counters struct {
	DC          int64
	Transient   int64
	NewtonIters int64
	// EngineRuns counts reduced-order noise-engine runs (core.RunEngine) —
	// evaluation work, not transistor-level characterisation, so it is
	// excluded from Total(). The feasibility filter's strictly-fewer-solves
	// guarantee is asserted on this counter.
	EngineRuns int64
}

// Snapshot returns the current cumulative counters. Subtract two snapshots
// (see Sub) to measure the solves attributable to a region of code.
func Snapshot() Counters {
	return Counters{
		DC:          dcCount.Load(),
		Transient:   transientCount.Load(),
		NewtonIters: newtonIterCount.Load(),
		EngineRuns:  engineRunCount.Load(),
	}
}

// Sub returns the per-counter difference c − prev.
func (c Counters) Sub(prev Counters) Counters {
	return Counters{
		DC:          c.DC - prev.DC,
		Transient:   c.Transient - prev.Transient,
		NewtonIters: c.NewtonIters - prev.NewtonIters,
		EngineRuns:  c.EngineRuns - prev.EngineRuns,
	}
}

// Total is the number of transistor-level engine invocations (DC plus
// transient solves — not Newton iterations, and not reduced-order
// EngineRuns) in the snapshot. The warm-run zero-solve proofs depend on
// exactly this definition.
func (c Counters) Total() int64 { return c.DC + c.Transient }
