package sim

import (
	"context"
	"errors"
	"math"
	"testing"

	"stanoise/internal/circuit"
	"stanoise/internal/wave"
)

func optTestCircuit() *circuit.Circuit {
	c := circuit.New()
	c.AddV("vs", "in", "0", wave.SaturatedRamp(0, 1, 0, 1e-12))
	c.AddR("r", "in", "out", 1000)
	c.AddC("c", "out", "0", 1e-12)
	return c
}

func TestOptionsValidateRejectsNonFinite(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	cases := []struct {
		name  string
		opts  Options
		field string
	}{
		{"NaN Dt", Options{Dt: nan}, "Dt"},
		{"Inf Dt", Options{Dt: inf}, "Dt"},
		{"NaN TStop", Options{TStop: nan}, "TStop"},
		{"Inf TStop", Options{TStop: inf}, "TStop"},
		{"-Inf TStop", Options{TStop: math.Inf(-1)}, "TStop"},
		{"NaN VTol", Options{VTol: nan}, "VTol"},
		{"NaN ITol", Options{ITol: nan}, "ITol"},
		{"Inf Gmin", Options{Gmin: inf}, "Gmin"},
		{"NaN MaxStep", Options{MaxStep: nan}, "MaxStep"},
		{"NaN guess", Options{InitialGuess: map[string]float64{"out": nan}}, `InitialGuess["out"]`},
		{"Inf guess", Options{InitialGuess: map[string]float64{"out": inf}}, `InitialGuess["out"]`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if err == nil {
				t.Fatal("Validate accepted non-finite option")
			}
			var oe *OptionsError
			if !errors.As(err, &oe) {
				t.Fatalf("error %v is not an *OptionsError", err)
			}
			if oe.Field != tc.field {
				t.Errorf("Field = %q, want %q", oe.Field, tc.field)
			}
			if !errors.Is(err, ErrInvalidOptions) {
				t.Error("error does not unwrap to ErrInvalidOptions")
			}
		})
	}
}

func TestOptionsValidateAcceptsDefaultsAndNegatives(t *testing.T) {
	// Zero and negative values are replaced by defaults, not rejected.
	for _, o := range []Options{
		{},
		{Dt: -1, TStop: -2, VTol: -1, ITol: -1, Gmin: -1, MaxStep: -1},
		{InitialGuess: map[string]float64{"a": 1.2, "b": -0.3}},
	} {
		if err := o.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", o, err)
		}
	}
}

func TestDCRejectsNonFiniteOptions(t *testing.T) {
	before := Snapshot()
	_, err := DC(optTestCircuit(), Options{VTol: math.NaN()})
	if !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("DC with NaN VTol: err = %v, want ErrInvalidOptions", err)
	}
	// Rejected runs never start a solve.
	if d := Snapshot().Sub(before); d.Total() != 0 {
		t.Errorf("counters advanced on rejected options: %+v", d)
	}
}

func TestTransientRejectsNonFiniteOptions(t *testing.T) {
	for _, o := range []Options{
		{Dt: math.NaN(), TStop: 1e-9},
		{Dt: 1e-12, TStop: math.Inf(1)},
		{Dt: 1e-12, TStop: 1e-9, InitialGuess: map[string]float64{"out": math.NaN()}},
	} {
		if _, err := Transient(context.Background(), optTestCircuit(), o); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("Transient(%+v): err = %v, want ErrInvalidOptions", o, err)
		}
	}
}

func TestNewSessionRejectsNonFiniteOptions(t *testing.T) {
	prog := Compile(optTestCircuit())
	if _, err := NewSession(prog, Options{Gmin: math.NaN()}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("NewSession with NaN Gmin: err = %v, want ErrInvalidOptions", err)
	}
}

func TestRunTransientRejectsNonFiniteTStop(t *testing.T) {
	sess, err := NewSession(Compile(optTestCircuit()), Options{Dt: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for _, tstop := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := sess.RunTransient(context.Background(), tstop); !errors.Is(err, ErrInvalidOptions) {
			t.Errorf("RunTransient(tstop=%v): err = %v, want ErrInvalidOptions", tstop, err)
		}
	}
	if _, err := sess.RunTransient(context.Background(), 0); err == nil {
		t.Error("RunTransient(0) should fail")
	}
}
