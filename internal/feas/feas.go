// Package feas implements the aggressor-correlation feasibility subsystem:
// a FRAME-style constraint solver (timing windows plus logic correlation,
// after arXiv:1502.02236) that decides which combinations of a cluster's
// aggressors can actually switch together on silicon, and where inside
// their switching windows the realizable worst-case alignment sits.
//
// The classical worst case aligns every aggressor's noise peak at one
// instant with no regard for when — or whether — those nets can switch
// together. That is sound but doubly pessimistic: it reports violations no
// input vector can produce, and it spends engine solves evaluating them.
// This package prunes the scenario space *before* evaluation:
//
//   - temporal constraints: each aggressor carries a switching Window
//     [Early, Late] bounding when its input ramp may start; a combination
//     is realizable only if all members' windows share a common instant
//     (within Problem.Slack),
//   - logic constraints: mutual-exclusion groups (at most one member
//     switches — e.g. one-hot buses) and implication pairs (if i switches,
//     j switches too — e.g. differential pairs / shared enables).
//
// Solve enumerates the non-empty aggressor subsets, classifies each as
// feasible or pruned, and returns the *maximal* feasible subsets — the
// only ones worth simulating, since a sub-scenario can never produce more
// noise than its superset evaluated at the same constrained alignment
// budget. AlignWindows then picks, for one subset, the common peak target
// inside the windows that minimises total peak spread — the optimal
// alignment *within* the windows rather than the unconstrained one.
//
// The package is pure constraint arithmetic over seconds-denominated
// windows: it knows nothing about cells, waveforms or engines, so the sna
// layer can validate designs against it cheaply (see Problem.Check) and
// the analyzer can consult it before spending any evaluation work.
package feas

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Window bounds when one aggressor's input ramp may start, in seconds of
// cluster time. A zero-value Window is *not* unbounded — use Unbounded()
// for an unconstrained aggressor (Early = −Inf, Late = +Inf).
type Window struct {
	// Early is the earliest admissible ramp start time (s).
	Early float64
	// Late is the latest admissible ramp start time (s).
	Late float64
}

// Unbounded returns the window admitting any switching time.
func Unbounded() Window { return Window{Early: math.Inf(-1), Late: math.Inf(1)} }

// IsUnbounded reports whether the window admits any switching time.
func (w Window) IsUnbounded() bool { return math.IsInf(w.Early, -1) && math.IsInf(w.Late, 1) }

// Clamp returns t limited to the window.
func (w Window) Clamp(t float64) float64 {
	if t < w.Early {
		return w.Early
	}
	if t > w.Late {
		return w.Late
	}
	return t
}

// Implication is a logic-correlation pair: whenever aggressor If switches,
// aggressor Then switches in the same scenario (indices into
// Problem.Windows).
type Implication struct {
	// If is the antecedent aggressor index.
	If int
	// Then is the consequent aggressor index.
	Then int
}

// MaxAggressors bounds the per-cluster subset enumeration (2^N scenarios).
// Sixteen aggressors — 65536 combinations — is far beyond any physical
// coupling neighbourhood; Solve rejects larger problems with a typed error
// instead of silently burning memory.
const MaxAggressors = 16

// Problem is one cluster's feasibility system: a window per aggressor plus
// the logic constraints over them.
type Problem struct {
	// Windows holds one switching window per aggressor, in declaration
	// order. Use Unbounded() for aggressors without timing information.
	Windows []Window
	// Mutex lists mutual-exclusion groups: at most one member of each group
	// switches in any scenario.
	Mutex [][]int
	// Implications lists implication pairs (see Implication).
	Implications []Implication
	// Slack widens the temporal-overlap test: a combination is temporally
	// feasible when max(Early) <= min(Late) + Slack (s). A positive slack
	// accounts for noise pulses interacting across a gap comparable to
	// their width; zero (the default) requires a strict common instant.
	Slack float64
}

// Set is a bitmask subset of a problem's aggressors: bit i set means
// aggressor i switches in the scenario.
type Set uint64

// Has reports whether aggressor i is in the set.
func (s Set) Has(i int) bool { return s&(1<<i) != 0 }

// Count returns the number of aggressors in the set.
func (s Set) Count() int { return bits.OnesCount64(uint64(s)) }

// Indices returns the member indices in ascending order.
func (s Set) Indices() []int {
	out := make([]int, 0, s.Count())
	for s != 0 {
		i := bits.TrailingZeros64(uint64(s))
		out = append(out, i)
		s &^= 1 << i
	}
	return out
}

// Solution is the outcome of solving one Problem: the combination census
// and the maximal feasible scenarios worth evaluating.
type Solution struct {
	// N is the aggressor count of the solved problem.
	N int
	// Total is the number of non-empty aggressor combinations (2^N − 1).
	Total int64
	// Feasible counts combinations every constraint admits.
	Feasible int64
	// Pruned counts combinations ruled out (Total − Feasible) — the
	// scenarios the classical worst case implicitly evaluates and this
	// subsystem never has to.
	Pruned int64
	// Maximal lists the feasible subsets with no feasible strict superset,
	// ordered by descending size then ascending mask — the deterministic
	// evaluation order of the analyzer's realistic mode.
	Maximal []Set
}

// Empty reports whether a problem with aggressors admits no scenario at
// all — the signature of an over-constrained (self-contradictory) spec.
func (s *Solution) Empty() bool { return s.N > 0 && s.Feasible == 0 }

// Dead returns the aggressors that appear in no feasible combination:
// nets the constraints say can never switch. A dead aggressor is almost
// always a spec error (e.g. an implication cycle crossing a mutex group),
// which is why Check reports them.
func (s *Solution) Dead() []int {
	var union Set
	for _, m := range s.Maximal {
		union |= m
	}
	var dead []int
	for i := 0; i < s.N; i++ {
		if !union.Has(i) {
			dead = append(dead, i)
		}
	}
	return dead
}

// Validate checks the constraint system's internal consistency: window
// bounds ordered and not NaN, constraint indices in range.
func (p *Problem) Validate() error {
	n := len(p.Windows)
	if n > MaxAggressors {
		return fmt.Errorf("feas: %d aggressors exceeds the %d-aggressor enumeration bound", n, MaxAggressors)
	}
	if math.IsNaN(p.Slack) || p.Slack < 0 {
		return fmt.Errorf("feas: slack must be a non-negative number, got %v", p.Slack)
	}
	for i, w := range p.Windows {
		if math.IsNaN(w.Early) || math.IsNaN(w.Late) {
			return fmt.Errorf("feas: window %d has NaN bounds", i)
		}
		if w.Early > w.Late {
			return fmt.Errorf("feas: window %d is empty (early %g > late %g)", i, w.Early, w.Late)
		}
	}
	for gi, g := range p.Mutex {
		if len(g) == 0 {
			return fmt.Errorf("feas: mutex group %d is empty", gi)
		}
		for _, i := range g {
			if i < 0 || i >= n {
				return fmt.Errorf("feas: mutex group %d references aggressor %d (have %d)", gi, i, n)
			}
		}
	}
	for ii, imp := range p.Implications {
		if imp.If < 0 || imp.If >= n || imp.Then < 0 || imp.Then >= n {
			return fmt.Errorf("feas: implication %d references aggressor %d->%d (have %d)", ii, imp.If, imp.Then, n)
		}
	}
	return nil
}

// feasibleSet decides one subset against every constraint. mutexMasks is
// the precomputed bitmask form of p.Mutex.
func (p *Problem) feasibleSet(s Set, mutexMasks []Set) bool {
	for _, g := range mutexMasks {
		if (s & g).Count() > 1 {
			return false
		}
	}
	for _, imp := range p.Implications {
		if s.Has(imp.If) && !s.Has(imp.Then) {
			return false
		}
	}
	// Temporal: all members' windows must share a common instant (within
	// the slack). Unbounded windows never constrain the overlap.
	lo, hi := math.Inf(-1), math.Inf(1)
	for _, i := range s.Indices() {
		w := p.Windows[i]
		if w.Early > lo {
			lo = w.Early
		}
		if w.Late < hi {
			hi = w.Late
		}
	}
	return lo <= hi+p.Slack
}

// Solve enumerates every non-empty aggressor combination, classifies it
// against the constraints, and extracts the maximal feasible scenarios.
// The result is fully deterministic: same problem, same solution, same
// ordering.
func (p *Problem) Solve() (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Windows)
	sol := &Solution{N: n}
	if n == 0 {
		return sol, nil
	}
	mutexMasks := make([]Set, len(p.Mutex))
	for gi, g := range p.Mutex {
		var m Set
		for _, i := range g {
			m |= 1 << i
		}
		mutexMasks[gi] = m
	}
	total := Set(1) << n
	feasible := make([]bool, total)
	masks := make([]Set, 0, total-1)
	for m := Set(1); m < total; m++ {
		if p.feasibleSet(m, mutexMasks) {
			feasible[m] = true
			sol.Feasible++
			masks = append(masks, m)
		}
	}
	sol.Total = int64(total) - 1
	sol.Pruned = sol.Total - sol.Feasible

	// Maximal extraction. Feasibility is not downward-closed here (an
	// implication consequent cannot be dropped alone), so the correct test
	// is subset-of-an-already-extracted-maximal, scanning in descending
	// size: the first time a set is seen that no larger feasible set
	// contains, it is maximal.
	sort.Slice(masks, func(i, j int) bool {
		ci, cj := masks[i].Count(), masks[j].Count()
		if ci != cj {
			return ci > cj
		}
		return masks[i] < masks[j]
	})
	for _, m := range masks {
		covered := false
		for _, mx := range sol.Maximal {
			if m&mx == m {
				covered = true
				break
			}
		}
		if !covered {
			sol.Maximal = append(sol.Maximal, m)
		}
	}
	return sol, nil
}

// InfeasibleError reports a constraint system that is self-contradictory:
// it either admits no scenario at all, or strands aggressors that can
// never switch. Design validation surfaces it as a typed rejection before
// any analysis runs.
type InfeasibleError struct {
	// Empty is set when no non-empty combination is feasible.
	Empty bool
	// Dead lists aggressor indices that appear in no feasible combination.
	Dead []int
}

// Error implements error.
func (e *InfeasibleError) Error() string {
	if e.Empty {
		return "feas: constraints admit no feasible aggressor scenario"
	}
	return fmt.Sprintf("feas: aggressors %v can never switch under the constraints", e.Dead)
}

// Check solves the problem and additionally rejects self-contradictory
// specs: a non-trivial problem whose constraints admit no scenario, or one
// that strands aggressors (see InfeasibleError). The solution is returned
// either way so callers can report the census alongside the rejection.
func (p *Problem) Check() (*Solution, error) {
	sol, err := p.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Empty() {
		return sol, &InfeasibleError{Empty: true}
	}
	if dead := sol.Dead(); len(dead) > 0 {
		return sol, &InfeasibleError{Dead: dead}
	}
	return sol, nil
}

// intervalDist is the distance from t to the interval [lo, hi] (zero
// inside it).
func intervalDist(t, lo, hi float64) float64 {
	switch {
	case t < lo:
		return lo - t
	case t > hi:
		return t - hi
	}
	return 0
}

// AlignWindows picks the realizable worst-case alignment of one feasible
// subset: a common peak target time and, per member, the input-ramp start
// time inside its window that brings its peak closest to the target.
//
// windows[i] and delays[i] describe subset member i: its switching window
// and its peak delay — how long after the ramp start its noise contribution
// peaks at the victim (from the analyzer's per-aggressor timing runs; pass
// zeros when no timing information exists and the windows themselves are
// aligned). prefer is the unconstrained worst-case peak time (the classic
// alignment target); when the windows allow it, it is used verbatim, so an
// unconstrained subset reproduces the classical alignment exactly.
//
// When the peak-time intervals [Early+delay, Late+delay] share no common
// instant, the target sweeps the finite interval endpoints — the candidate
// set containing the optimum of the piecewise-linear total-spread objective
// — and picks the one minimising the summed distance of each member's
// achievable peak to the target (ties go to the earliest candidate). If
// every endpoint is unbounded (half-open degenerate windows such as
// Early = +Inf or Late = −Inf leave nothing finite to sweep), the target
// falls back to the classic prefer instant. The result is deterministic
// in all cases.
func AlignWindows(windows []Window, delays []float64, prefer float64) []float64 {
	n := len(windows)
	starts := make([]float64, n)
	lo, hi := math.Inf(-1), math.Inf(1)
	for i, w := range windows {
		if l := w.Early + delays[i]; l > lo {
			lo = l
		}
		if h := w.Late + delays[i]; h < hi {
			hi = h
		}
	}
	var target float64
	if lo <= hi {
		// Exact simultaneous alignment is achievable; stay as close to the
		// unconstrained worst case as the windows allow.
		target = prefer
		if target < lo {
			target = lo
		}
		if target > hi {
			target = hi
		}
	} else {
		// No common peak instant: minimise total peak spread over the
		// finite endpoints (the objective is piecewise linear, so its
		// minimum sits on an endpoint). lo > hi does NOT guarantee a finite
		// endpoint: windows degenerate in the infinite direction (Early =
		// +Inf, or Late = −Inf) force the branch with nothing finite to
		// sweep, so the classic prefer target is the explicit fallback.
		cands := make([]float64, 0, 2*n)
		for i, w := range windows {
			if !math.IsInf(w.Early, 0) {
				cands = append(cands, w.Early+delays[i])
			}
			if !math.IsInf(w.Late, 0) {
				cands = append(cands, w.Late+delays[i])
			}
		}
		if len(cands) == 0 {
			// Every endpoint unbounded: the sweep would degenerate to an
			// empty candidate set. Fall back deterministically to the
			// classic alignment target; each member still clamps into its
			// own window below.
			target = prefer
		} else {
			sort.Float64s(cands)
			best := math.Inf(1)
			// Seed with the classic target so a sweep whose every cost is
			// +Inf (a member infinite in one direction) also degrades to it.
			target = prefer
			for _, c := range cands {
				cost := 0.0
				for i, w := range windows {
					cost += intervalDist(c, w.Early+delays[i], w.Late+delays[i])
				}
				if cost < best {
					best, target = cost, c
				}
			}
		}
	}
	for i, w := range windows {
		starts[i] = w.Clamp(target - delays[i])
	}
	return starts
}
