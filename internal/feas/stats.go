package feas

import "sync/atomic"

// Process-wide feasibility-filter counters, mirroring the sim package's
// engine counters: higher layers (snacheck, the /statsz endpoint, CI smoke
// jobs) read them to prove the filter is actually pruning work rather than
// silently passing everything through.
var (
	clusterCount  atomic.Int64
	comboCount    atomic.Int64
	feasibleCount atomic.Int64
	prunedCount   atomic.Int64
	scenarioCount atomic.Int64
)

// Stats is a snapshot of the cumulative feasibility-filter counters since
// process start. Its JSON form is embedded in the analysis server's
// /statsz document.
type Stats struct {
	// Clusters counts clusters run through the feasibility filter.
	Clusters int64 `json:"clusters"`
	// Combos counts non-empty aggressor combinations considered.
	Combos int64 `json:"combos"`
	// Feasible counts combinations the constraints admitted.
	Feasible int64 `json:"feasible"`
	// Pruned counts combinations ruled out before any evaluation.
	Pruned int64 `json:"pruned"`
	// Scenarios counts maximal feasible scenarios actually evaluated.
	Scenarios int64 `json:"scenarios"`
}

// Snapshot returns the current cumulative counters. Subtract two snapshots
// (see Sub) to measure the filtering attributable to a region of code.
func Snapshot() Stats {
	return Stats{
		Clusters:  clusterCount.Load(),
		Combos:    comboCount.Load(),
		Feasible:  feasibleCount.Load(),
		Pruned:    prunedCount.Load(),
		Scenarios: scenarioCount.Load(),
	}
}

// Sub returns the per-counter difference s − prev.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Clusters:  s.Clusters - prev.Clusters,
		Combos:    s.Combos - prev.Combos,
		Feasible:  s.Feasible - prev.Feasible,
		Pruned:    s.Pruned - prev.Pruned,
		Scenarios: s.Scenarios - prev.Scenarios,
	}
}

// Record accumulates one cluster's solved census plus the number of
// scenario evaluations the analyzer actually ran for it.
func Record(sol *Solution, scenarios int) {
	clusterCount.Add(1)
	comboCount.Add(sol.Total)
	feasibleCount.Add(sol.Feasible)
	prunedCount.Add(sol.Pruned)
	scenarioCount.Add(int64(scenarios))
}
