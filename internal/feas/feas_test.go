package feas

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

func ps(v float64) float64 { return v * 1e-12 }

func win(early, late float64) Window { return Window{Early: ps(early), Late: ps(late)} }

// solve is the test helper: a Solve that must succeed.
func solve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func TestSolveUnconstrained(t *testing.T) {
	p := &Problem{Windows: []Window{Unbounded(), Unbounded(), Unbounded()}}
	sol := solve(t, p)
	if sol.Total != 7 || sol.Feasible != 7 || sol.Pruned != 0 {
		t.Fatalf("census = %d/%d/%d, want 7/7/0", sol.Total, sol.Feasible, sol.Pruned)
	}
	if len(sol.Maximal) != 1 || sol.Maximal[0] != 0b111 {
		t.Fatalf("maximal = %v, want [0b111]", sol.Maximal)
	}
	if sol.Empty() || len(sol.Dead()) != 0 {
		t.Fatalf("unconstrained problem reported empty/dead")
	}
}

func TestSolveEmptyProblem(t *testing.T) {
	sol := solve(t, &Problem{})
	if sol.Total != 0 || sol.Feasible != 0 || len(sol.Maximal) != 0 {
		t.Fatalf("zero-aggressor census = %+v", sol)
	}
	if sol.Empty() {
		t.Fatal("a problem with no aggressors is trivially satisfiable, not empty")
	}
}

func TestSolveMutex(t *testing.T) {
	// Three aggressors, 0 and 1 mutually exclusive.
	p := &Problem{
		Windows: []Window{Unbounded(), Unbounded(), Unbounded()},
		Mutex:   [][]int{{0, 1}},
	}
	sol := solve(t, p)
	// Pruned: {0,1} and {0,1,2}.
	if sol.Feasible != 5 || sol.Pruned != 2 {
		t.Fatalf("census = %d feasible / %d pruned, want 5/2", sol.Feasible, sol.Pruned)
	}
	want := []Set{0b101, 0b110}
	if !reflect.DeepEqual(sol.Maximal, want) {
		t.Fatalf("maximal = %v, want %v", sol.Maximal, want)
	}
}

func TestSolveImplication(t *testing.T) {
	// 0 -> 1: any set with 0 must contain 1.
	p := &Problem{
		Windows:      []Window{Unbounded(), Unbounded()},
		Implications: []Implication{{If: 0, Then: 1}},
	}
	sol := solve(t, p)
	// {0} pruned; {1}, {0,1} feasible.
	if sol.Feasible != 2 || sol.Pruned != 1 {
		t.Fatalf("census = %d/%d, want 2 feasible, 1 pruned", sol.Feasible, sol.Pruned)
	}
	if len(sol.Maximal) != 1 || sol.Maximal[0] != 0b11 {
		t.Fatalf("maximal = %v, want [0b11]", sol.Maximal)
	}
}

func TestSolveTemporalOverlap(t *testing.T) {
	// Windows of 0 and 1 are disjoint; 2 overlaps both.
	p := &Problem{Windows: []Window{win(0, 100), win(300, 400), win(50, 350)}}
	sol := solve(t, p)
	// Infeasible: {0,1} and {0,1,2}.
	if sol.Pruned != 2 {
		t.Fatalf("pruned = %d, want 2", sol.Pruned)
	}
	want := []Set{0b101, 0b110}
	if !reflect.DeepEqual(sol.Maximal, want) {
		t.Fatalf("maximal = %v, want %v", sol.Maximal, want)
	}
	// With enough slack the gap closes and everything is feasible again.
	p.Slack = ps(250)
	sol = solve(t, p)
	if sol.Pruned != 0 || len(sol.Maximal) != 1 || sol.Maximal[0] != 0b111 {
		t.Fatalf("slack census = %d pruned, maximal %v", sol.Pruned, sol.Maximal)
	}
}

// TestSolveMaximalNotDownwardClosed pins the subtle case: with a mutual
// implication cycle, single-element supersets of a feasible set can be
// infeasible while a two-element superset is feasible, so naive
// "no feasible m|bit" maximality would be wrong.
func TestSolveMaximalNotDownwardClosed(t *testing.T) {
	p := &Problem{
		Windows:      []Window{Unbounded(), Unbounded(), Unbounded()},
		Implications: []Implication{{If: 1, Then: 2}, {If: 2, Then: 1}},
	}
	sol := solve(t, p)
	// Feasible: {0}, {1,2}, {0,1,2}. {0} must not be reported maximal.
	if sol.Feasible != 3 {
		t.Fatalf("feasible = %d, want 3", sol.Feasible)
	}
	if len(sol.Maximal) != 1 || sol.Maximal[0] != 0b111 {
		t.Fatalf("maximal = %v, want [0b111]", sol.Maximal)
	}
}

func TestCheckInfeasibleSpecs(t *testing.T) {
	// Implication into a mutex partner: 0 -> 1 with mutex{0,1} kills 0.
	p := &Problem{
		Windows:      []Window{Unbounded(), Unbounded()},
		Mutex:        [][]int{{0, 1}},
		Implications: []Implication{{If: 0, Then: 1}},
	}
	sol, err := p.Check()
	var inf *InfeasibleError
	if !errors.As(err, &inf) || inf.Empty || !reflect.DeepEqual(inf.Dead, []int{0}) {
		t.Fatalf("Check = %v (sol %+v), want dead-aggressor error for 0", err, sol)
	}

	// Mutual implication across a mutex: nothing can switch at all.
	p = &Problem{
		Windows:      []Window{Unbounded(), Unbounded()},
		Mutex:        [][]int{{0, 1}},
		Implications: []Implication{{If: 0, Then: 1}, {If: 1, Then: 0}},
	}
	if _, err := p.Check(); !errors.As(err, &inf) || !inf.Empty {
		t.Fatalf("Check = %v, want empty-scenario error", err)
	}

	// A satisfiable system passes Check.
	p = &Problem{Windows: []Window{win(0, 100), win(50, 150)}}
	if _, err := p.Check(); err != nil {
		t.Fatalf("Check on satisfiable system: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		p    Problem
	}{
		{"empty window", Problem{Windows: []Window{win(100, 50)}}},
		{"nan window", Problem{Windows: []Window{{Early: math.NaN(), Late: 1}}}},
		{"mutex out of range", Problem{Windows: []Window{Unbounded()}, Mutex: [][]int{{0, 1}}}},
		{"empty mutex group", Problem{Windows: []Window{Unbounded()}, Mutex: [][]int{{}}}},
		{"implication out of range", Problem{Windows: []Window{Unbounded()}, Implications: []Implication{{If: 0, Then: 3}}}},
		{"negative slack", Problem{Windows: []Window{Unbounded()}, Slack: -1}},
		{"too many aggressors", Problem{Windows: make([]Window, MaxAggressors+1)}},
	}
	for _, tc := range cases {
		if _, err := tc.p.Solve(); err == nil {
			t.Errorf("%s: Solve accepted an invalid problem", tc.name)
		}
	}
}

func TestAlignWindowsExactOverlap(t *testing.T) {
	// Both members can place their peak at the preferred target: classical
	// alignment is reproduced exactly.
	windows := []Window{win(100, 400), win(150, 500)}
	delays := []float64{ps(120), ps(80)}
	prefer := ps(350)
	starts := AlignWindows(windows, delays, prefer)
	for i := range starts {
		if got := starts[i] + delays[i]; math.Abs(got-prefer) > 1e-18 {
			t.Errorf("member %d peaks at %g, want %g", i, got, prefer)
		}
		if starts[i] < windows[i].Early || starts[i] > windows[i].Late {
			t.Errorf("member %d start %g outside window %+v", i, starts[i], windows[i])
		}
	}
}

func TestAlignWindowsClampedPrefer(t *testing.T) {
	// The unconstrained target is later than the windows allow: the common
	// target clamps to the latest achievable instant.
	windows := []Window{win(100, 200), win(120, 220)}
	delays := []float64{ps(50), ps(50)}
	starts := AlignWindows(windows, delays, ps(1000))
	if got := starts[0]; math.Abs(got-ps(200)) > 1e-18 {
		t.Errorf("start[0] = %g, want clamp at late bound %g", got, ps(200))
	}
	if got := starts[1]; math.Abs(got-ps(200)) > 1e-18 {
		t.Errorf("start[1] = %g, want %g (common peak at 250 ps)", got, ps(200))
	}
}

func TestAlignWindowsDisjointPeaks(t *testing.T) {
	// Peak intervals cannot meet: the sweep settles between them, each
	// member clamped to its nearest bound — deterministically.
	windows := []Window{win(0, 100), win(300, 400)}
	delays := []float64{0, 0}
	starts := AlignWindows(windows, delays, ps(50))
	if starts[0] != ps(100) || starts[1] != ps(300) {
		t.Fatalf("starts = %v, want each clamped toward the gap", starts)
	}
	// Determinism: same inputs, same output.
	again := AlignWindows(windows, delays, ps(50))
	if !reflect.DeepEqual(starts, again) {
		t.Fatalf("AlignWindows not deterministic: %v vs %v", starts, again)
	}
}

func TestAlignWindowsAllUnboundedFallsBackToClassicTarget(t *testing.T) {
	// Degenerate half-open windows (Early = +Inf / Late = −Inf) force the
	// no-common-instant branch with zero finite endpoints: the sweep has an
	// empty candidate set and must fall back to the classic prefer target
	// instead of degenerating. The unconstrained member pins the fallback:
	// it must peak exactly at prefer, as in the classical alignment.
	windows := []Window{
		Unbounded(),
		{Early: math.Inf(1), Late: math.Inf(1)},
		{Early: math.Inf(-1), Late: math.Inf(-1)},
	}
	delays := []float64{ps(40), 0, 0}
	prefer := ps(250)
	starts := AlignWindows(windows, delays, prefer)
	if got := starts[0] + delays[0]; math.Abs(got-prefer) > 1e-18 {
		t.Errorf("unconstrained member peaks at %g, want classic target %g", got, prefer)
	}
	// The degenerate members clamp to their own (infinite) bounds.
	if !math.IsInf(starts[1], 1) || !math.IsInf(starts[2], -1) {
		t.Errorf("degenerate members = %g, %g, want +Inf, -Inf", starts[1], starts[2])
	}
	// Determinism: same inputs, same output.
	again := AlignWindows(windows, delays, prefer)
	if !reflect.DeepEqual(starts, again) {
		t.Fatalf("AlignWindows not deterministic: %v vs %v", starts, again)
	}
}

func TestAlignWindowsUnboundedMembers(t *testing.T) {
	// Unbounded members follow the target wherever it lands.
	windows := []Window{Unbounded(), win(200, 300)}
	delays := []float64{ps(10), ps(20)}
	starts := AlignWindows(windows, delays, ps(700))
	// Target clamps to 320 ps (late bound + delay of the bounded member).
	if got := starts[1]; math.Abs(got-ps(300)) > 1e-18 {
		t.Errorf("bounded start = %g, want %g", got, ps(300))
	}
	if got := starts[0] + delays[0]; math.Abs(got-(ps(300)+delays[1])) > 1e-18 {
		t.Errorf("unbounded member peak = %g, want to match bounded peak %g", got, ps(300)+delays[1])
	}
}

func TestRecordAndSnapshot(t *testing.T) {
	before := Snapshot()
	sol := solve(t, &Problem{
		Windows: []Window{Unbounded(), Unbounded()},
		Mutex:   [][]int{{0, 1}},
	})
	Record(sol, len(sol.Maximal))
	d := Snapshot().Sub(before)
	if d.Clusters != 1 || d.Combos != 3 || d.Feasible != 2 || d.Pruned != 1 || d.Scenarios != 2 {
		t.Fatalf("counter delta = %+v", d)
	}
}
