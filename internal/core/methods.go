package core

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"stanoise/internal/charlib"
	"stanoise/internal/circuit"
	"stanoise/internal/sim"
	"stanoise/internal/wave"
)

// Method selects how the total noise on a cluster is computed.
type Method int

const (
	// Golden is the full transistor-level simulation (ELDO stand-in).
	Golden Method = iota
	// Superposition is the traditional linear flow: holding-resistance
	// injected noise plus table-propagated noise, waveform-summed with
	// peaks aligned.
	Superposition
	// Zolotov is the iterative pulsed-Thevenin victim model of ref [4].
	Zolotov
	// Macromodel is the paper's non-linear VCCS approach.
	Macromodel
)

// String returns the stable lower-case method name used in reports, JSON
// and the -method CLI flags.
func (m Method) String() string {
	switch m {
	case Golden:
		return "golden"
	case Superposition:
		return "superposition"
	case Zolotov:
		return "zolotov"
	case Macromodel:
		return "macromodel"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// ParseMethod converts a method name ("macromodel", "superposition",
// "zolotov", "golden") into a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "golden":
		return Golden, nil
	case "superposition":
		return Superposition, nil
	case "zolotov":
		return Zolotov, nil
	case "macromodel":
		return Macromodel, nil
	}
	return 0, fmt.Errorf("core: unknown method %q", s)
}

// MarshalJSON serialises the method as its stable name, not its internal
// enum value, so JSON reports survive reordering of the constants.
func (m Method) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.String())
}

// UnmarshalJSON accepts the method name.
func (m *Method) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParseMethod(s)
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// Evaluation is the outcome of evaluating a cluster with one method.
type Evaluation struct {
	Method Method
	// DP is the waveform at the victim driving point (the paper's
	// measurement node), Recv at the victim receiver input.
	DP, Recv *wave.Waveform
	// Metrics and RecvMetrics are the glitch metrics at those two nodes.
	Metrics     wave.NoiseMetrics
	RecvMetrics wave.NoiseMetrics
	// Elapsed is the analysis (solve) time, excluding pre-characterisation.
	Elapsed time.Duration
}

// EvalOptions tunes cluster evaluation.
type EvalOptions struct {
	Dt    float64 // timestep for every engine; default 1 ps
	TStop float64 // default Cluster.EventHorizon()
	// ZolotovPasses is the number of engine passes of the iterative
	// pulsed-Thevenin victim model (ref [4]): pass 1 uses the driver-alone
	// pulse, each further pass rebuilds the source at the coupled
	// response. Default 2 — the practical operating point whose error
	// magnitude matches what the paper quotes for [4]. A single pass is
	// markedly worse, which is exactly why that approach iterates; more
	// passes converge toward the non-linear result (see the ablation).
	ZolotovPasses int
	// Miller adds the input-output feedthrough capacitor of the victim
	// driver to the macromodel — an extension beyond the paper's pure
	// DC-table formulation (see the ablation benchmarks).
	Miller bool
	// GoldenSim overrides options of the transistor-level simulator.
	GoldenSim sim.Options
}

func (o EvalOptions) normalize(c *Cluster) EvalOptions {
	if o.Dt <= 0 {
		o.Dt = 1e-12
	}
	if o.TStop <= 0 {
		o.TStop = c.EventHorizon()
	}
	if o.ZolotovPasses <= 0 {
		o.ZolotovPasses = 2
	}
	return o
}

// Evaluate computes the total noise with the chosen method. Models must
// come from BuildModels on the same cluster (Golden ignores them). The
// context cancels the underlying transient engines mid-run; a nil context
// disables cancellation.
func (c *Cluster) Evaluate(ctx context.Context, m Method, models *Models, opts EvalOptions) (*Evaluation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.normalize(c)
	switch m {
	case Golden:
		return c.evaluateGolden(ctx, opts)
	case Superposition:
		return c.evaluateSuperposition(ctx, models, opts)
	case Zolotov:
		return c.evaluateZolotov(ctx, models, opts)
	case Macromodel:
		return c.evaluateMacromodel(ctx, models, opts)
	}
	return nil, fmt.Errorf("core: unknown method %v", m)
}

func (c *Cluster) evaluateGolden(ctx context.Context, opts EvalOptions) (*Evaluation, error) {
	simOpts := opts.GoldenSim
	simOpts.Dt = opts.Dt
	simOpts.TStop = opts.TStop
	seedQuietLevels(c, &simOpts)

	c.rigMu.Lock()
	defer c.rigMu.Unlock()
	rig, err := c.goldenRigLocked(simOpts)
	if err != nil {
		return nil, err
	}
	// Only the source waveforms change between evaluations (the victim
	// glitch spec and the aggressor alignment offsets); re-point them and
	// re-run the compiled session.
	rig.sess.SetSource(rig.prog.MustSource("vglitch"), c.victimInputWave())
	for i := range c.Aggressors {
		a := &c.Aggressors[i]
		rig.sess.SetSource(rig.prog.MustSource(fmt.Sprintf("vagg%d_%s", i, a.SwitchPin)),
			a.aggressorInputWave())
	}
	start := time.Now()
	if err := rig.sess.RunTransientInto(ctx, &rig.res, opts.TStop); err != nil {
		return nil, fmt.Errorf("core: golden simulation: %w", err)
	}
	elapsed := time.Since(start)
	dp := rig.res.Waveform(c.Bus.InNode(c.Victim.Line))
	recv := rig.res.Waveform(c.Bus.OutNode(c.Victim.Line))
	return c.finish(Golden, dp, recv, elapsed), nil
}

// goldenRigLocked returns the compiled golden test bench for the given sim
// options, compiling it on first use or when the options changed. With a
// RigPool attached the bench is cached there under its topology class; the
// cluster-local cache (pointer-keyed) is used otherwise. The caller must
// hold c.rigMu.
func (c *Cluster) goldenRigLocked(simOpts sim.Options) (*simRig, error) {
	build := func() (*simRig, error) {
		ckt, err := c.BuildGolden()
		if err != nil {
			return nil, err
		}
		prog := sim.Compile(ckt)
		sess, err := sim.NewSession(prog, simOpts)
		if err != nil {
			return nil, err
		}
		return &simRig{prog: prog, sess: sess}, nil
	}
	if c.rigPool != nil {
		return c.pooledRig("golden", c.topologyKey(), simOpts, build)
	}
	return c.localRig(&c.goldenRig, simOpts, build)
}

// localRig is the cluster-local (pool-less) rig memoization shared by the
// golden and driver benches: one cached rig per slot, invalidated when
// the sim options or the pointer-keyed cluster structure change.
func (c *Cluster) localRig(slot **simRig, simOpts sim.Options, build func() (*simRig, error)) (*simRig, error) {
	key := optionsFingerprint(simOpts) + "#" + c.structuralKey()
	if *slot != nil && (*slot).key == key {
		return *slot, nil
	}
	rig, err := build()
	if err != nil {
		return nil, err
	}
	rig.key = key
	*slot = rig
	return rig, nil
}

// seedQuietLevels gives the golden DC solve the intended operating point:
// victim nodes at the quiet rail, aggressor nodes at their start level.
// The caller-supplied guess map is copied, never mutated, so one
// EvalOptions value can seed evaluations of many clusters without their
// line seeds leaking into each other.
func seedQuietLevels(c *Cluster, simOpts *sim.Options) {
	merged := make(map[string]float64, len(simOpts.InitialGuess)+(len(c.Aggressors)+1)*(c.Bus.Segments+1))
	for k, v := range simOpts.InitialGuess {
		merged[k] = v
	}
	quiet := c.QuietVictimLevel()
	for j := 0; j <= c.Bus.Segments; j++ {
		merged[fmt.Sprintf("%s.%d", c.Bus.Lines[c.Victim.Line].Name, j)] = quiet
	}
	for i := range c.Aggressors {
		lvl := c.AggStartLevel(i)
		for j := 0; j <= c.Bus.Segments; j++ {
			merged[fmt.Sprintf("%s.%d", c.Bus.Lines[c.Aggressors[i].Line].Name, j)] = lvl
		}
	}
	simOpts.InitialGuess = merged
}

// aggressorSources builds the Thevenin port sources with current offsets.
// Quiet aggressors hold their pre-transition rail through their Thevenin
// resistance instead of switching — the same held-aggressor construction
// the alignment timing runs use.
func (c *Cluster) aggressorSources(models *Models, sources []PortSource) {
	for i, pi := range models.AggPorts {
		if c.Aggressors[i].Quiet {
			sources[pi] = &PulsePort{W: wave.Constant(models.Agg[i].V0), R: models.Agg[i].RTh}
			continue
		}
		drv := models.Agg[i].Shifted(c.Aggressors[i].Offset)
		sources[pi] = NewTheveninPort(drv)
	}
}

func (c *Cluster) evaluateMacromodel(ctx context.Context, models *Models, opts EvalOptions) (*Evaluation, error) {
	if models == nil {
		return nil, fmt.Errorf("core: macromodel evaluation needs models")
	}
	start := time.Now()
	sources := make([]PortSource, len(models.Red.Ports))
	for i := range sources {
		sources[i] = OpenPort{}
	}
	vin := c.victimInputWave()
	var vic PortSource = &VCCSPort{LC: models.LC, Vin: vin}
	if opts.Miller && models.MillerC > 0 {
		vic = ParallelPort{vic, &CapPort{C: models.MillerC, W: vin}}
	}
	sources[models.VicPort] = vic
	c.aggressorSources(models, sources)
	res, err := RunEngine(ctx, models.Red, sources, models.V0, EngineOptions{Dt: opts.Dt, TStop: opts.TStop})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	return c.finish(Macromodel, res.Waveform(models.VicPort), res.Waveform(models.RecvPort), elapsed), nil
}

func (c *Cluster) evaluateSuperposition(ctx context.Context, models *Models, opts EvalOptions) (*Evaluation, error) {
	if models == nil {
		return nil, fmt.Errorf("core: superposition evaluation needs models")
	}
	if models.Prop == nil && c.Victim.Glitch.Height > 0 {
		return nil, fmt.Errorf("core: superposition needs a propagation table (built with SkipProp=false)")
	}
	start := time.Now()
	quiet := models.QuietVic

	// Injected noise: linear victim (holding conductance), aggressors
	// switching.
	sources := make([]PortSource, len(models.Red.Ports))
	for i := range sources {
		sources[i] = OpenPort{}
	}
	sources[models.VicPort] = &HoldingPort{G: models.HoldG, V0: quiet}
	c.aggressorSources(models, sources)
	res, err := RunEngine(ctx, models.Red, sources, models.V0, EngineOptions{Dt: opts.Dt, TStop: opts.TStop})
	if err != nil {
		return nil, err
	}
	injDP := res.Waveform(models.VicPort)
	injRecv := res.Waveform(models.RecvPort)

	dp, recv := injDP, injRecv
	if g := c.Victim.Glitch; g.Height > 0 {
		// Propagated noise from the pre-characterised table, its peak
		// aligned with the injected peak — the classical worst case.
		injM := wave.MeasureNoise(injDP, quiet)
		tAlign := injM.TPeak
		if injM.Peak == 0 {
			tAlign = g.PeakTime()
		}
		prop := models.Prop.Waveform(g.Height, g.Width, models.LumpedCL, tAlign)
		// Linear superposition of the two deviations.
		dp = wave.Add(injDP, prop.Offset(-models.Prop.QuietOut))
		recv = wave.Add(injRecv, prop.Offset(-models.Prop.QuietOut))
	}
	elapsed := time.Since(start)
	return c.finish(Superposition, dp, recv, elapsed), nil
}

// DriverAloneResponse simulates the victim driver transistor-level with its
// input glitch into the lumped victim load — the waveform a pulsed-Thevenin
// victim model uses as its source (and a useful diagnostic on its own).
// The bench compiles once per cluster and is re-run with the glitch
// waveform and lumped load mutated, like every other characterisation rig.
func (c *Cluster) DriverAloneResponse(ctx context.Context, models *Models, opts EvalOptions) (*wave.Waveform, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.normalize(c)
	v := &c.Victim

	c.rigMu.Lock()
	defer c.rigMu.Unlock()
	rig, err := c.driverRigLocked(sim.Options{Dt: opts.Dt})
	if err != nil {
		return nil, err
	}
	rig.sess.SetSource(rig.prog.MustSource("v_"+v.NoisyPin), c.victimInputWave())
	// The lumped load minus the driver's own diffusion (already inside the
	// transistor netlist as junction caps).
	clump := models.LumpedCL - v.Cell.OutputCap()
	if clump < 0 {
		clump = 0
	}
	rig.sess.SetLoad(rig.prog.MustCap("cl"), clump)
	if err := rig.sess.RunTransientInto(ctx, &rig.res, opts.TStop); err != nil {
		return nil, fmt.Errorf("core: driver-alone simulation: %w", err)
	}
	return rig.res.Waveform("out"), nil
}

// driverRigLocked returns the compiled driver-alone bench, compiling it on
// first use or when the sim options changed. The bench depends only on the
// victim cell configuration, so with a RigPool attached it is shared by
// every cluster whose victim matches (see Cluster.driverClassKey). The
// caller must hold c.rigMu.
func (c *Cluster) driverRigLocked(simOpts sim.Options) (*simRig, error) {
	build := func() (*simRig, error) { return c.compileDriverRig(simOpts) }
	if c.rigPool != nil {
		return c.pooledRig("driver", c.driverClassKey(), simOpts, build)
	}
	return c.localRig(&c.driverRig, simOpts, build)
}

// compileDriverRig assembles and compiles the driver-alone bench: the
// victim cell with a mutable source on its noisy pin driving a mutable
// lumped load.
func (c *Cluster) compileDriverRig(simOpts sim.Options) (*simRig, error) {
	v := &c.Victim
	if !v.Cell.HasInput(v.NoisyPin) {
		return nil, fmt.Errorf("core: victim cell %s has no pin %q", v.Cell.Name(), v.NoisyPin)
	}
	ckt := circuit.New()
	ckt.AddVDC("vdd", "vdd", "0", c.Tech.VDD)
	pins := map[string]string{}
	for _, in := range v.Cell.Inputs() {
		node := "in_" + in
		pins[in] = node
		if in == v.NoisyPin {
			// Placeholder; replaced per run via SetSource.
			ckt.AddV("v_"+in, node, "0", wave.Constant(v.Cell.PinVoltage(v.State[in])))
		} else {
			ckt.AddVDC("v_"+in, node, "0", v.Cell.PinVoltage(v.State[in]))
		}
	}
	if err := v.Cell.Build(ckt, "vic", pins, "out", "vdd"); err != nil {
		return nil, err
	}
	// Placeholder lumped load; replaced per run via SetLoad.
	ckt.AddC("cl", "out", "0", 1e-15)
	prog := sim.Compile(ckt)
	sess, err := sim.NewSession(prog, simOpts)
	if err != nil {
		return nil, err
	}
	return &simRig{prog: prog, sess: sess}, nil
}

func (c *Cluster) evaluateZolotov(ctx context.Context, models *Models, opts EvalOptions) (*Evaluation, error) {
	if models == nil {
		return nil, fmt.Errorf("core: zolotov evaluation needs models")
	}
	start := time.Now()
	drv, err := c.DriverAloneResponse(ctx, models, opts)
	if err != nil {
		return nil, err
	}
	rHold := 1 / models.HoldG
	vin := c.victimInputWave()

	// Construct the pulsed Thevenin source so that, at the driver-alone
	// voltages, the linear branch (W − v)/R_hold delivers exactly the
	// non-linear driver current: W(t) = v(t) + R_hold·f(vin(t), v(t)).
	// This is the single-pass model of ref [4]; the refinements below
	// repeat the construction at the coupled response.
	pulse := pulseFromResponse(drv, vin, models.LC, rHold)

	var res *EngineResult
	for pass := 0; pass < opts.ZolotovPasses; pass++ {
		sources := make([]PortSource, len(models.Red.Ports))
		for i := range sources {
			sources[i] = OpenPort{}
		}
		sources[models.VicPort] = &PulsePort{W: pulse, R: rHold}
		c.aggressorSources(models, sources)
		res, err = RunEngine(ctx, models.Red, sources, models.V0, EngineOptions{Dt: opts.Dt, TStop: opts.TStop})
		if err != nil {
			return nil, err
		}
		if pass == opts.ZolotovPasses-1 {
			break
		}
		// Fixed-point refinement: rebuild the source at the voltages just
		// computed in the coupled circuit.
		pulse = pulseFromResponse(res.Waveform(models.VicPort), vin, models.LC, rHold)
	}
	elapsed := time.Since(start)
	return c.finish(Zolotov, res.Waveform(models.VicPort), res.Waveform(models.RecvPort), elapsed), nil
}

// pulseFromResponse converts a victim driving-point response into the
// pulsed Thevenin source that reproduces the non-linear driver current
// through R_hold at that response.
func pulseFromResponse(v *wave.Waveform, vin *wave.Waveform, lc *charlib.LoadCurve, rHold float64) *wave.Waveform {
	vs := make([]float64, len(v.T))
	for i, t := range v.T {
		iNL, _, _ := lc.Eval(vin.At(t), v.V[i])
		vs[i] = v.V[i] + rHold*iNL
	}
	return wave.FromPoints(v.T, vs)
}

func (c *Cluster) finish(m Method, dp, recv *wave.Waveform, elapsed time.Duration) *Evaluation {
	quiet := c.QuietVictimLevel()
	return &Evaluation{
		Method:      m,
		DP:          dp,
		Recv:        recv,
		Metrics:     wave.MeasureNoise(dp, quiet),
		RecvMetrics: wave.MeasureNoise(recv, quiet),
		Elapsed:     elapsed,
	}
}

// AlignPeaks performs the classical peak alignment: every switching
// aggressor's noise contribution is timed with a fast linear engine run
// (one per aggressor, the others held), the victim's propagated peak is
// timed from the driver-alone response when an input glitch is present,
// and Aggressors[i].Offset is shifted so every contribution peaks at the
// common target. It returns that target time and, per aggressor, the
// aligned input-ramp start time (NaN for Quiet aggressors, which are
// skipped and keep their offsets). The feasibility filter reuses the
// target and starts to derive each aggressor's peak delay; AlignWorstCase
// builds on this with a coordinate-ascent refinement.
func (c *Cluster) AlignPeaks(ctx context.Context, models *Models, opts EvalOptions) (target float64, starts []float64, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if models == nil {
		return 0, nil, fmt.Errorf("core: alignment needs models")
	}
	opts = opts.normalize(c)
	quiet := models.QuietVic

	peaks := make([]float64, len(c.Aggressors))
	for i := range c.Aggressors {
		if c.Aggressors[i].Quiet {
			continue
		}
		sources := make([]PortSource, len(models.Red.Ports))
		for k := range sources {
			sources[k] = OpenPort{}
		}
		sources[models.VicPort] = &HoldingPort{G: models.HoldG, V0: quiet}
		// Only aggressor i switches; the others hold their quiet rail
		// through their Thevenin resistance.
		for j, pj := range models.AggPorts {
			if j == i {
				sources[pj] = NewTheveninPort(models.Agg[j].Shifted(c.Aggressors[j].Offset))
			} else {
				sources[pj] = &PulsePort{W: wave.Constant(models.Agg[j].V0), R: models.Agg[j].RTh}
			}
		}
		res, err := RunEngine(ctx, models.Red, sources, models.V0, EngineOptions{Dt: opts.Dt, TStop: opts.TStop})
		if err != nil {
			return 0, nil, fmt.Errorf("core: alignment run for aggressor %d: %w", i, err)
		}
		m := wave.MeasureNoise(res.Waveform(models.VicPort), quiet)
		if m.Peak == 0 {
			return 0, nil, fmt.Errorf("core: aggressor %d injects no measurable noise", i)
		}
		peaks[i] = m.TPeak
	}

	if c.Victim.Glitch.Height > 0 {
		drv, err := c.DriverAloneResponse(ctx, models, opts)
		if err != nil {
			return 0, nil, err
		}
		m := wave.MeasureNoise(drv, quiet)
		if m.Peak > 0 {
			target = m.TPeak
		}
	}
	for i, t := range peaks {
		if !c.Aggressors[i].Quiet && t > target {
			target = t
		}
	}
	starts = make([]float64, len(c.Aggressors))
	for i := range c.Aggressors {
		if c.Aggressors[i].Quiet {
			starts[i] = math.NaN()
			continue
		}
		c.Aggressors[i].Offset += target - peaks[i]
		starts[i] = c.Aggressors[i].StartTime()
	}
	return target, starts, nil
}

// AlignWorstCase shifts the aggressor switching times so that every noise
// contribution peaks simultaneously at the victim driving point — the
// worst-case overlapping of the paper's Table 2 (see AlignPeaks) — then
// refines by greedy coordinate ascent. The computed shifts are stored in
// Aggressors[i].Offset.
func (c *Cluster) AlignWorstCase(ctx context.Context, models *Models, opts EvalOptions) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if models == nil {
		return fmt.Errorf("core: alignment needs models")
	}
	opts = opts.normalize(c)
	if _, _, err := c.AlignPeaks(ctx, models, opts); err != nil {
		return err
	}
	// Peak alignment is only a linear-model heuristic: with a non-linear
	// victim the true worst case can sit tens of picoseconds away (the
	// glitch weakens the holding device asymmetrically in time). Refine by
	// greedy coordinate ascent on the macromodel peak, one aggressor at a
	// time — each probe is a fast reduced-order run.
	const (
		window = 80e-12
		step   = 20e-12
		passes = 2
	)
	best, err := c.macromodelPeak(ctx, models, opts)
	if err != nil {
		return err
	}
	for pass := 0; pass < passes; pass++ {
		improved := false
		for i := range c.Aggressors {
			if c.Aggressors[i].Quiet {
				continue
			}
			base := c.Aggressors[i].Offset
			bestOff := base
			for off := base - window; off <= base+window+step/2; off += step {
				if off == base {
					continue
				}
				c.Aggressors[i].Offset = off
				p, err := c.macromodelPeak(ctx, models, opts)
				if err != nil {
					return err
				}
				if p > best+1e-9 {
					best, bestOff = p, off
					improved = true
				}
			}
			c.Aggressors[i].Offset = bestOff
		}
		if !improved {
			break
		}
	}
	return nil
}

// EvaluateScenario evaluates the cluster with only a chosen subset of its
// aggressors switching — one feasible scenario of the correlation filter.
// active[i] selects whether aggressor i switches; starts[i] is the input
// ramp start time of an active aggressor (ignored for inactive ones, which
// are held quiet at their pre-transition rail but keep loading the bus).
// The aggressors' Quiet/Offset state is restored before returning, so a
// scenario evaluation never perturbs a later classical one. Like every
// evaluation it must not run concurrently with others on the same Cluster
// value; distinct clusters are unaffected.
func (c *Cluster) EvaluateScenario(ctx context.Context, m Method, models *Models, opts EvalOptions, active []bool, starts []float64) (*Evaluation, error) {
	if len(active) != len(c.Aggressors) || len(starts) != len(c.Aggressors) {
		return nil, fmt.Errorf("core: scenario needs %d active/start entries, got %d/%d",
			len(c.Aggressors), len(active), len(starts))
	}
	savedQuiet := make([]bool, len(c.Aggressors))
	savedOffset := make([]float64, len(c.Aggressors))
	for i := range c.Aggressors {
		a := &c.Aggressors[i]
		savedQuiet[i], savedOffset[i] = a.Quiet, a.Offset
		if !active[i] {
			a.Quiet = true
			continue
		}
		if math.IsNaN(starts[i]) || math.IsInf(starts[i], 0) {
			return nil, fmt.Errorf("core: scenario start for aggressor %d is %v", i, starts[i])
		}
		a.Quiet = false
		a.Offset = starts[i] - a.t0()
	}
	defer func() {
		for i := range c.Aggressors {
			c.Aggressors[i].Quiet, c.Aggressors[i].Offset = savedQuiet[i], savedOffset[i]
		}
	}()
	return c.Evaluate(ctx, m, models, opts)
}

// macromodelPeak evaluates the cluster's macromodel noise peak at the
// current offsets — the objective of the worst-case alignment search.
func (c *Cluster) macromodelPeak(ctx context.Context, models *Models, opts EvalOptions) (float64, error) {
	ev, err := c.evaluateMacromodel(ctx, models, opts)
	if err != nil {
		return 0, err
	}
	return ev.Metrics.Peak, nil
}
