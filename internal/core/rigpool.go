package core

import (
	"fmt"
	"strings"

	"stanoise/internal/cell"
	"stanoise/internal/sim"
)

// RigPool caches compiled simulator test benches — program/session pairs —
// across the clusters a single analysis worker processes, keyed like
// charlib.Cache by the *topology class* of the bench (technology, cells by
// library name, states, pins, geometry and solver options) rather than by
// cluster identity. Two clusters whose victim drivers share a cell
// configuration reuse one compiled driver-alone bench; re-analysing a
// design through the same analyzer reuses the golden benches of every
// cluster whose topology is unchanged. Only source waveforms and lumped
// loads are mutated between runs, so pooled reuse performs arithmetic
// identical to a freshly compiled bench.
//
// A RigPool is NOT safe for concurrent use: sessions are single-goroutine
// objects, so each analysis worker owns its own pool (internal/sna hands
// one to every worker goroutine). Pool keys assume cells come from the
// cell library constructors, where equal names imply equal netlists; deep
// mutation of a shared *cell.Cell or *interconnect.Bus value is not
// detected (the same documented limitation as Cluster's own rig cache).
//
// The pool is bounded: beyond maxPoolRigs entries the least recently used
// bench is evicted. Golden benches key on the full cluster topology and
// are therefore near-unique across a heterogeneous design — without a
// bound, a 10k-net run would retain 10k dense-matrix sessions for the
// analyzer's lifetime. The bound keeps the pool at working-set size:
// driver-class benches (small key space, high reuse) stay resident, and
// golden benches survive exactly long enough for re-evaluation and
// re-analysis of recent clusters.
type RigPool struct {
	rigs   map[string]*pooledEntry
	seq    int64
	hits   int
	misses int
}

// pooledEntry pairs a bench with its last-use stamp for LRU eviction.
type pooledEntry struct {
	rig     *simRig
	lastUse int64
}

// maxPoolRigs bounds a pool's resident compiled benches. A bench is a
// Program plus a Session (two dense size×size matrices, an LU workspace
// and result buffers) — roughly hundreds of kilobytes at cluster scale —
// so 64 entries keep a worker's pool in the tens of megabytes worst-case
// while comfortably covering the distinct driver classes plus the
// recently evaluated golden topologies of a real design.
const maxPoolRigs = 64

// NewRigPool returns an empty pool ready for single-goroutine use.
func NewRigPool() *RigPool { return &RigPool{rigs: map[string]*pooledEntry{}} }

// lookup returns the pooled rig for key, building and memoizing it on the
// first request and evicting the least recently used bench when the pool
// is full. Build errors are not memoized: a failing topology is
// re-attempted (and fails identically) on the next request.
func (p *RigPool) lookup(key string, build func() (*simRig, error)) (*simRig, error) {
	p.seq++
	if e, ok := p.rigs[key]; ok {
		p.hits++
		e.lastUse = p.seq
		return e.rig, nil
	}
	r, err := build()
	if err != nil {
		return nil, err
	}
	p.misses++
	if len(p.rigs) >= maxPoolRigs {
		var oldestKey string
		oldest := int64(1<<63 - 1)
		for k, e := range p.rigs {
			if e.lastUse < oldest {
				oldest, oldestKey = e.lastUse, k
			}
		}
		delete(p.rigs, oldestKey)
	}
	p.rigs[key] = &pooledEntry{rig: r, lastUse: p.seq}
	return r, nil
}

// Len returns the number of compiled benches held by the pool.
func (p *RigPool) Len() int { return len(p.rigs) }

// Stats reports pool effectiveness: hits counts bench compilations avoided
// by reuse, misses counts benches actually compiled.
func (p *RigPool) Stats() (hits, misses int) { return p.hits, p.misses }

// UseRigPool attaches a pool to the cluster: subsequent evaluations cache
// their compiled benches in the pool under topology-class keys instead of
// on the cluster itself, sharing them with every other cluster using the
// same pool. Attach before the first evaluation; the pool must be owned by
// the same goroutine that evaluates the cluster.
func (c *Cluster) UseRigPool(p *RigPool) {
	c.rigMu.Lock()
	c.rigPool = p
	c.rigMu.Unlock()
}

// cellClass names a cell's topology class: the library name embeds kind and
// drive strength, which (per technology) determines the transistor netlist.
func cellClass(cl *cell.Cell) string {
	if cl == nil {
		return "nil"
	}
	return cl.Name()
}

// topologyKey is the name-based analog of structuralKey: it renders the
// full cluster topology using library cell names instead of pointers (via
// the shared renderSpecKey, so the spec field list cannot drift between
// the two), with the bus keyed by its full geometry — SpacingFactor
// included, since coupling capacitance depends on it and there is no
// pointer identity to fall back on. Clusters built independently from
// identical specs key identically; used for pooled golden benches.
func (c *Cluster) topologyKey() string {
	var bus strings.Builder
	fmt.Fprintf(&bus, "%s,%d", c.Bus.Layer, c.Bus.Segments)
	for i := range c.Bus.Lines {
		ln := &c.Bus.Lines[i]
		fmt.Fprintf(&bus, ",%s:%.17g:%.17g", ln.Name, ln.LengthUm, ln.SpacingFactor)
	}
	return c.renderSpecKey(fmt.Sprintf("%s:%.17g", c.Tech.Name, c.Tech.VDD), bus.String(), cellClass)
}

// driverClassKey identifies the topology class of the driver-alone bench,
// which depends only on the technology and the victim cell configuration —
// not on the bus, aggressors or cluster identity. This is where pooling
// pays off across clusters: every victim sharing a cell configuration (the
// common case in a real design) shares one compiled bench.
func (c *Cluster) driverClassKey() string {
	v := &c.Victim
	return fmt.Sprintf("tech=%s:%.17g|vic=%s,%s,%s",
		c.Tech.Name, c.Tech.VDD, cellClass(v.Cell), v.State.String(), v.NoisyPin)
}

// pooledRig routes a rig lookup through the attached pool under a
// kind-prefixed topology key. The caller must hold c.rigMu.
func (c *Cluster) pooledRig(kind, classKey string, simOpts sim.Options, build func() (*simRig, error)) (*simRig, error) {
	key := kind + "#" + optionsFingerprint(simOpts) + "#" + classKey
	return c.rigPool.lookup(key, build)
}
