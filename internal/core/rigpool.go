package core

import (
	"fmt"
	"strings"

	"stanoise/internal/cell"
	"stanoise/internal/sim"
	"stanoise/internal/tech"
)

// RigPool caches compiled simulator test benches — program/session pairs —
// across the clusters a single analysis worker processes, keyed like
// charlib.Cache by the *topology class* of the bench (technology, cells by
// library name, states, pins, geometry and solver options) rather than by
// cluster identity. Two clusters whose victim drivers share a cell
// configuration reuse one compiled driver-alone bench; re-analysing a
// design through the same analyzer reuses the golden benches of every
// cluster whose topology is unchanged. Only source waveforms and lumped
// loads are mutated between runs, so pooled reuse performs arithmetic
// identical to a freshly compiled bench.
//
// A RigPool is NOT safe for concurrent use: sessions are single-goroutine
// objects, so each analysis worker owns its own pool (internal/sna hands
// one to every worker goroutine). Pool keys assume cells come from the
// cell library constructors, where equal names imply equal netlists; deep
// mutation of a shared *cell.Cell or *interconnect.Bus value is not
// detected (the same documented limitation as Cluster's own rig cache).
//
// The pool is bounded — by entry count and, optionally, by estimated
// resident bytes (see RigPoolLimits) — evicting the least recently used
// bench first. Golden benches key on the full cluster topology and are
// therefore near-unique across a heterogeneous design — without a bound, a
// 10k-net run would retain 10k dense-matrix sessions for the analyzer's
// lifetime. The bound keeps the pool at working-set size: driver-class
// benches (small key space, high reuse) stay resident, and golden benches
// survive exactly long enough for re-evaluation and re-analysis of recent
// clusters. Long-lived holders (an analysis server above all) size pools
// in bytes and drop every bench explicitly with Invalidate when the
// underlying libraries change.
type RigPool struct {
	rigs   map[string]*pooledEntry
	limits RigPoolLimits
	bytes  int64
	seq    int64
	hits   int
	misses int
}

// pooledEntry pairs a bench with its last-use stamp for LRU eviction and
// the byte estimate it was admitted under.
type pooledEntry struct {
	rig     *simRig
	lastUse int64
	bytes   int64
}

// RigPoolLimits bounds a pool's resident compiled benches. The zero value
// selects the defaults; both bounds are enforced together, LRU-first, and
// the most recently inserted bench is never evicted (a bench larger than
// MaxBytes on its own is kept until the next insertion displaces it —
// refusing it outright would force recompilation on every evaluation).
type RigPoolLimits struct {
	// MaxRigs bounds the number of resident benches; <= 0 selects the
	// default of 64. A bench is a Program plus a Session (dense size×size
	// matrices, an LU workspace and result buffers) — roughly hundreds of
	// kilobytes at cluster scale — so the default keeps a worker's pool in
	// the tens of megabytes worst-case while comfortably covering the
	// distinct driver classes plus the recently evaluated golden topologies
	// of a real design.
	MaxRigs int
	// MaxBytes additionally bounds the pool by the summed
	// sim.Session.MemoryBytes estimate of its benches; <= 0 disables the
	// byte bound. This is the long-lived-server knob: cluster sizes vary
	// wildly between requests, so a count bound alone cannot cap worst-case
	// memory.
	MaxBytes int64
}

// defaultMaxPoolRigs is the entry-count bound selected by zero
// RigPoolLimits; see RigPoolLimits.MaxRigs for the sizing rationale.
const defaultMaxPoolRigs = 64

func (l RigPoolLimits) normalize() RigPoolLimits {
	if l.MaxRigs <= 0 {
		l.MaxRigs = defaultMaxPoolRigs
	}
	return l
}

// NewRigPool returns an empty pool with default limits, ready for
// single-goroutine use.
func NewRigPool() *RigPool { return NewRigPoolWithLimits(RigPoolLimits{}) }

// NewRigPoolWithLimits returns an empty pool bounded by the given limits.
func NewRigPoolWithLimits(l RigPoolLimits) *RigPool {
	return &RigPool{rigs: map[string]*pooledEntry{}, limits: l.normalize()}
}

// lookup returns the pooled rig for key, building and memoizing it on the
// first request and evicting least-recently-used benches while either
// limit is exceeded. Build errors are not memoized: a failing topology is
// re-attempted (and fails identically) on the next request.
func (p *RigPool) lookup(key string, build func() (*simRig, error)) (*simRig, error) {
	p.seq++
	if e, ok := p.rigs[key]; ok {
		p.hits++
		e.lastUse = p.seq
		return e.rig, nil
	}
	r, err := build()
	if err != nil {
		return nil, err
	}
	p.misses++
	p.rigs[key] = &pooledEntry{rig: r, lastUse: p.seq, bytes: r.memoryBytes()}
	p.bytes += p.rigs[key].bytes
	p.evict()
	return r, nil
}

// evict removes least-recently-used benches until both limits hold,
// always sparing the entry touched by the current lookup (lastUse ==
// p.seq) so the bench about to be used cannot be evicted under it.
func (p *RigPool) evict() {
	for len(p.rigs) > 1 &&
		(len(p.rigs) > p.limits.MaxRigs || (p.limits.MaxBytes > 0 && p.bytes > p.limits.MaxBytes)) {
		var oldestKey string
		oldest := int64(1<<63 - 1)
		for k, e := range p.rigs {
			if e.lastUse < oldest && e.lastUse != p.seq {
				oldest, oldestKey = e.lastUse, k
			}
		}
		if oldestKey == "" {
			return
		}
		p.bytes -= p.rigs[oldestKey].bytes
		delete(p.rigs, oldestKey)
	}
}

// Invalidate drops every pooled bench, returning how many were held. This
// is the explicit invalidation point for long-lived processes: compiled
// benches key on topology *classes* (cell names, geometry, options), so a
// process that mutates what a name means — reloading a cell library,
// editing a tech card in place — must invalidate its pools or pooled
// benches would keep simulating the old physics. Statistics survive.
func (p *RigPool) Invalidate() int {
	n := len(p.rigs)
	p.rigs = map[string]*pooledEntry{}
	p.bytes = 0
	return n
}

// Len returns the number of compiled benches held by the pool.
func (p *RigPool) Len() int { return len(p.rigs) }

// Bytes returns the summed memory estimate of the pooled benches.
func (p *RigPool) Bytes() int64 { return p.bytes }

// Stats reports pool effectiveness: hits counts bench compilations avoided
// by reuse, misses counts benches actually compiled.
func (p *RigPool) Stats() (hits, misses int) { return p.hits, p.misses }

// memoryBytes estimates a bench's resident footprint: the session's dense
// solver state dominates; the compiled program's stamp plans are a small
// constant on top.
func (r *simRig) memoryBytes() int64 {
	const programOverhead = 4096
	if r == nil || r.sess == nil {
		return programOverhead
	}
	return r.sess.MemoryBytes() + programOverhead
}

// UseRigPool attaches a pool to the cluster: subsequent evaluations cache
// their compiled benches in the pool under topology-class keys instead of
// on the cluster itself, sharing them with every other cluster using the
// same pool. Attach before the first evaluation; the pool must be owned by
// the same goroutine that evaluates the cluster.
func (c *Cluster) UseRigPool(p *RigPool) {
	c.rigMu.Lock()
	c.rigPool = p
	c.rigMu.Unlock()
}

// cellClass names a cell's topology class: the library name embeds kind and
// drive strength, which (per technology) determines the transistor netlist.
func cellClass(cl *cell.Cell) string {
	if cl == nil {
		return "nil"
	}
	return cl.Name()
}

// topologyKey is the name-based analog of structuralKey: it renders the
// full cluster topology using library cell names instead of pointers (via
// the shared renderSpecKey, so the spec field list cannot drift between
// the two), with the bus keyed by its full geometry — SpacingFactor
// included, since coupling capacitance depends on it and there is no
// pointer identity to fall back on. Clusters built independently from
// identical specs key identically; used for pooled golden benches.
func (c *Cluster) topologyKey() string {
	var bus strings.Builder
	fmt.Fprintf(&bus, "%s,%d", c.Bus.Layer, c.Bus.Segments)
	for i := range c.Bus.Lines {
		ln := &c.Bus.Lines[i]
		fmt.Fprintf(&bus, ",%s:%.17g:%.17g", ln.Name, ln.LengthUm, ln.SpacingFactor)
	}
	return c.renderSpecKey(fmt.Sprintf("%s%s:%.17g", c.Tech.Name, nlcapMark(c.Tech), c.Tech.VDD), bus.String(), cellClass)
}

// nlcapMark disambiguates pooled-bench keys between constant-cap and
// nonlinear-gate-charge cards: both share the base card's Name and VDD, but
// compile to different programs, so without the marker an nlcap analysis
// could be served a constant-cap bench from a shared pool (or vice versa).
// Empty for constant-cap cards, keeping every legacy key.
func nlcapMark(t *tech.Tech) string {
	if t.NonlinearCaps() {
		return ",nlcap"
	}
	return ""
}

// driverClassKey identifies the topology class of the driver-alone bench,
// which depends only on the technology and the victim cell configuration —
// not on the bus, aggressors or cluster identity. This is where pooling
// pays off across clusters: every victim sharing a cell configuration (the
// common case in a real design) shares one compiled bench.
func (c *Cluster) driverClassKey() string {
	v := &c.Victim
	return fmt.Sprintf("tech=%s%s:%.17g|vic=%s,%s,%s",
		c.Tech.Name, nlcapMark(c.Tech), c.Tech.VDD, cellClass(v.Cell), v.State.String(), v.NoisyPin)
}

// pooledRig routes a rig lookup through the attached pool under a
// kind-prefixed topology key. The caller must hold c.rigMu.
func (c *Cluster) pooledRig(kind, classKey string, simOpts sim.Options, build func() (*simRig, error)) (*simRig, error) {
	key := kind + "#" + optionsFingerprint(simOpts) + "#" + classKey
	return c.rigPool.lookup(key, build)
}
