package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"stanoise/internal/charlib"
	"stanoise/internal/linalg"
	"stanoise/internal/mor"
	"stanoise/internal/sim"
	"stanoise/internal/thevenin"
	"stanoise/internal/wave"
)

// PortSource is a (possibly non-linear) one-port driver attached to a port
// of the reduced interconnect macromodel. Current returns the current it
// injects into the port at time t when the port sits at absolute voltage v,
// together with ∂i/∂v for the Newton iteration.
type PortSource interface {
	Current(t, v float64) (i, didv float64)
}

// OpenPort is an unterminated observation port (receiver nodes, whose pin
// capacitance is already inside the reduced network).
type OpenPort struct{}

// Current implements PortSource with zero current.
func (OpenPort) Current(t, v float64) (float64, float64) { return 0, 0 }

// TheveninPort drives a port through a fitted aggressor model:
// i = (V_TH(t) − v)/R_TH.
type TheveninPort struct {
	W   *wave.Waveform
	RTh float64
}

// NewTheveninPort builds the port source from a fitted driver.
func NewTheveninPort(d *thevenin.Driver) *TheveninPort {
	return &TheveninPort{W: d.Waveform(), RTh: d.RTh}
}

// Current implements PortSource.
func (p *TheveninPort) Current(t, v float64) (float64, float64) {
	return (p.W.At(t) - v) / p.RTh, -1 / p.RTh
}

// VCCSPort is the paper's victim-driver model: the non-linear DC table
// I_DC = f(V_in(t), V_out) of eq. (1), with the known input-noise waveform
// driving the first argument.
type VCCSPort struct {
	LC  *charlib.LoadCurve
	Vin *wave.Waveform
}

// Current implements PortSource.
func (p *VCCSPort) Current(t, v float64) (float64, float64) {
	i, _, didv := p.LC.Eval(p.Vin.At(t), v)
	return i, didv
}

// HoldingPort is the traditional linear victim model: a holding
// conductance anchored at the quiet level. It ignores the input glitch —
// propagated noise is added separately by table lookup in the
// superposition flow.
type HoldingPort struct {
	G  float64
	V0 float64
}

// Current implements PortSource.
func (p *HoldingPort) Current(t, v float64) (float64, float64) {
	return -p.G * (v - p.V0), -p.G
}

// PulsePort is the Zolotov-style victim model (paper ref [4]): a pulsed
// voltage source behind the holding resistance. The pulse waveform is the
// driver's response to the input glitch alone; iteration refines it.
type PulsePort struct {
	W *wave.Waveform
	R float64
}

// Current implements PortSource.
func (p *PulsePort) Current(t, v float64) (float64, float64) {
	return (p.W.At(t) - v) / p.R, -1 / p.R
}

// DynamicPort is an optional extension of PortSource for elements with
// internal state (capacitive companions). Init is called once before the
// run with the step size and quiet port voltage; Commit is called exactly
// once per accepted timestep with the solved port voltage.
type DynamicPort interface {
	PortSource
	Init(h, t0, v0 float64)
	Commit(t, v float64)
}

// CapPort is a capacitor between a known voltage waveform and the port —
// the Miller feedthrough element of the extended macromodel. It uses a
// trapezoidal companion model, consistent with the engine's integrator.
type CapPort struct {
	C float64
	W *wave.Waveform

	h     float64
	dPrev float64 // previous branch voltage w−v
	iPrev float64 // previous branch current
}

// Init implements DynamicPort.
func (p *CapPort) Init(h, t0, v0 float64) {
	p.h = h
	p.dPrev = p.W.At(t0) - v0
	p.iPrev = 0
}

// Current implements PortSource: the trapezoidal companion current of the
// capacitor, injected into the port.
func (p *CapPort) Current(t, v float64) (float64, float64) {
	g := 2 * p.C / p.h
	d := p.W.At(t) - v
	return g*(d-p.dPrev) - p.iPrev, -g
}

// Commit implements DynamicPort.
func (p *CapPort) Commit(t, v float64) {
	i, _ := p.Current(t, v)
	p.dPrev = p.W.At(t) - v
	p.iPrev = i
}

// ParallelPort combines several sources at one port.
type ParallelPort []PortSource

// Current implements PortSource by summation.
func (pp ParallelPort) Current(t, v float64) (float64, float64) {
	var i, g float64
	for _, s := range pp {
		si, sg := s.Current(t, v)
		i += si
		g += sg
	}
	return i, g
}

// Init implements DynamicPort by forwarding.
func (pp ParallelPort) Init(h, t0, v0 float64) {
	for _, s := range pp {
		if d, ok := s.(DynamicPort); ok {
			d.Init(h, t0, v0)
		}
	}
}

// Commit implements DynamicPort by forwarding.
func (pp ParallelPort) Commit(t, v float64) {
	for _, s := range pp {
		if d, ok := s.(DynamicPort); ok {
			d.Commit(t, v)
		}
	}
}

// EngineOptions tunes the dedicated macromodel engine.
type EngineOptions struct {
	Dt        float64 // timestep (s); default 1 ps
	TStop     float64 // end time (s); required
	MaxNewton int     // default 60
	Tol       float64 // Newton update tolerance (V); default 1e-9
}

func (o EngineOptions) normalize() (EngineOptions, error) {
	if o.Dt <= 0 {
		o.Dt = 1e-12
	}
	if o.TStop <= 0 {
		return o, errors.New("core: engine requires TStop")
	}
	if o.MaxNewton <= 0 {
		o.MaxNewton = 60
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return o, nil
}

// EngineResult holds the port voltage waveforms of a macromodel run.
type EngineResult struct {
	Times []float64
	PortV [][]float64 // [port][step], absolute volts
	Ports []string
}

// Waveform returns the waveform at port index k.
func (r *EngineResult) Waveform(k int) *wave.Waveform {
	return wave.FromPoints(r.Times, r.PortV[k])
}

// RunEngine solves the noise-cluster macromodel: the reduced interconnect
// co-simulated with one PortSource per port, by trapezoidal integration
// with Newton–Raphson at each step. The system is formulated in deviation
// variables u = v − V0 so the quiet operating point is the exact zero
// state:
//
//	Cr·ẋ + Gr·x = B·i(t, V0 + Bᵀx)
//
// This is the "dedicated engine embedded into the noise analysis tool" of
// the paper's §2, and the source of its ~20X speed-up: the dense system
// solved per step has ~Q≈15 unknowns instead of the full cluster netlist.
// The context is checked periodically between timesteps so a cancelled
// analysis stops mid-transient; a nil context disables cancellation.
func RunEngine(ctx context.Context, red *mor.Reduced, sources []PortSource, v0 []float64, opts EngineOptions) (*EngineResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	p := len(red.Ports)
	if len(sources) != p || len(v0) != p {
		return nil, fmt.Errorf("core: engine needs %d sources and v0 entries, got %d/%d",
			p, len(sources), len(v0))
	}
	sim.CountEngineRun()
	q := red.Q
	h := opts.Dt

	// Constant matrices for trapezoidal integration:
	// A1 = 2Cr/h + Gr (system), A2 = 2Cr/h − Gr (history).
	a1 := red.Cr.Clone()
	a1.Scale(2 / h)
	a1.AddScaled(1, red.Gr)
	a2 := red.Cr.Clone()
	a2.Scale(2 / h)
	a2.AddScaled(-1, red.Gr)

	x := make([]float64, q)
	xPrev := make([]float64, q)
	iPrev := make([]float64, p)
	icur := make([]float64, p)
	didv := make([]float64, p)
	f := make([]float64, q)
	hist := make([]float64, q)
	dx := make([]float64, q)
	jac := linalg.NewMatrix(q, q)
	lu := linalg.NewLUWorkspace(q)

	nsteps := int(math.Ceil(opts.TStop/h)) + 1
	res := &EngineResult{
		Times: make([]float64, 0, nsteps),
		PortV: make([][]float64, p),
		Ports: append([]string(nil), red.Ports...),
	}
	for k := range res.PortV {
		res.PortV[k] = make([]float64, 0, nsteps)
	}
	record := func(t float64) {
		res.Times = append(res.Times, t)
		v := red.PortVoltages(x)
		for k := 0; k < p; k++ {
			res.PortV[k] = append(res.PortV[k], v0[k]+v[k])
		}
	}

	// Initial port currents at the quiet point.
	for k, s := range sources {
		if d, ok := s.(DynamicPort); ok {
			d.Init(h, 0, v0[k])
		}
		iPrev[k], _ = s.Current(0, v0[k])
	}
	record(0)

	step := 0
	for t := h; t <= opts.TStop+h/2; t += h {
		if step++; step&63 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// hist = A2·x_prev + B·i_prev
		copy(xPrev, x)
		a2.MulVecInto(hist, xPrev)
		for r := 0; r < q; r++ {
			s := 0.0
			for k := 0; k < p; k++ {
				s += red.B.At(r, k) * iPrev[k]
			}
			hist[r] += s
		}
		// Newton on F(x) = A1·x − hist − B·i(t, V0+Bᵀx).
		converged := false
		for it := 0; it < opts.MaxNewton; it++ {
			u := red.PortVoltages(x)
			for k, s := range sources {
				icur[k], didv[k] = s.Current(t, v0[k]+u[k])
			}
			a1.MulVecInto(f, x)
			for r := 0; r < q; r++ {
				s := 0.0
				for k := 0; k < p; k++ {
					s += red.B.At(r, k) * icur[k]
				}
				f[r] -= hist[r] + s
			}
			jac.CopyFrom(a1)
			for r := 0; r < q; r++ {
				for cc := 0; cc < q; cc++ {
					s := 0.0
					for k := 0; k < p; k++ {
						s += red.B.At(r, k) * didv[k] * red.B.At(cc, k)
					}
					jac.Add(r, cc, -s)
				}
			}
			if err := lu.Factor(jac); err != nil {
				return nil, fmt.Errorf("core: singular macromodel Jacobian at t=%.3gps: %w", t*1e12, err)
			}
			lu.SolveInto(dx, f)
			maxd := 0.0
			for r := 0; r < q; r++ {
				x[r] -= dx[r]
				if a := math.Abs(dx[r]); a > maxd {
					maxd = a
				}
			}
			if maxd < opts.Tol {
				converged = true
				break
			}
		}
		if !converged {
			return nil, fmt.Errorf("core: macromodel Newton did not converge at t=%.3gps", t*1e12)
		}
		// Accept: store port currents for the trapezoidal history, then
		// let stateful sources advance their companions.
		u := red.PortVoltages(x)
		for k, s := range sources {
			iPrev[k], _ = s.Current(t, v0[k]+u[k])
			if d, ok := s.(DynamicPort); ok {
				d.Commit(t, v0[k]+u[k])
			}
		}
		record(t)
	}
	return res, nil
}
