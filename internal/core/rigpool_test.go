package core

import (
	"context"
	"fmt"
	"testing"
)

// TestRigPoolSharesDriverBenches asserts the cross-cluster payoff of the
// worker rig pool: two distinct clusters whose victims share a cell
// configuration (the common case in a real design) compile the
// driver-alone bench once, and the pooled response is bit-identical to an
// unpooled cluster's.
func TestRigPoolSharesDriverBenches(t *testing.T) {
	ctx := context.Background()
	models := &Models{LumpedCL: 60e-15}
	opts := fastEvalOptions()

	ref, err := fastCluster(t, 1).DriverAloneResponse(ctx, models, opts)
	if err != nil {
		t.Fatal(err)
	}

	pool := NewRigPool()
	a, b := fastCluster(t, 1), fastCluster(t, 2) // same victim config, different clusters
	a.UseRigPool(pool)
	b.UseRigPool(pool)
	wa, err := a.DriverAloneResponse(ctx, models, opts)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := b.DriverAloneResponse(ctx, models, opts)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := pool.Stats()
	if misses != 1 || hits != 1 {
		t.Fatalf("pool stats hits=%d misses=%d, want 1 hit (shared bench) and 1 miss", hits, misses)
	}
	if pool.Len() != 1 {
		t.Fatalf("pool holds %d rigs, want 1", pool.Len())
	}
	for i := range ref.V {
		if wa.V[i] != ref.V[i] || wb.V[i] != ref.V[i] {
			t.Fatalf("pooled response diverged from unpooled at step %d: %v / %v vs %v",
				i, wa.V[i], wb.V[i], ref.V[i])
		}
	}
}

// TestRigPoolGoldenMatchesUnpooled asserts that routing the golden bench
// through a pool changes nothing about the result: the compiled netlist is
// keyed by the full topology class, only waveforms are re-pointed per
// evaluation, and a re-evaluation through the pool reuses the bench.
func TestRigPoolGoldenMatchesUnpooled(t *testing.T) {
	ctx := context.Background()
	opts := fastEvalOptions()

	ref, err := fastCluster(t, 1).Evaluate(ctx, Golden, nil, opts)
	if err != nil {
		t.Fatal(err)
	}

	pool := NewRigPool()
	a, b := fastCluster(t, 1), fastCluster(t, 1) // identical topology
	a.UseRigPool(pool)
	b.UseRigPool(pool)
	ea, err := a.Evaluate(ctx, Golden, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Evaluate(ctx, Golden, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := pool.Stats()
	if misses != 1 || hits != 1 {
		t.Fatalf("pool stats hits=%d misses=%d, want 1 hit and 1 miss", hits, misses)
	}
	if ea.Metrics.Peak != ref.Metrics.Peak || eb.Metrics.Peak != ref.Metrics.Peak {
		t.Fatalf("pooled golden peaks %v / %v diverged from unpooled %v",
			ea.Metrics.Peak, eb.Metrics.Peak, ref.Metrics.Peak)
	}
	for i := range ref.DP.V {
		if ea.DP.V[i] != ref.DP.V[i] || eb.DP.V[i] != ref.DP.V[i] {
			t.Fatalf("pooled golden waveform diverged at step %d", i)
		}
	}
}

// TestRigPoolEvictsLeastRecentlyUsed asserts the pool bound: filling it
// past defaultMaxPoolRigs evicts the least recently used bench (so design-sized
// runs cannot accumulate unbounded dense-matrix sessions), while a
// recently touched bench survives.
func TestRigPoolEvictsLeastRecentlyUsed(t *testing.T) {
	p := NewRigPool()
	build := func() (*simRig, error) { return &simRig{}, nil }
	for i := 0; i < defaultMaxPoolRigs; i++ {
		if _, err := p.lookup(fmt.Sprintf("k%d", i), build); err != nil {
			t.Fatal(err)
		}
	}
	if p.Len() != defaultMaxPoolRigs {
		t.Fatalf("pool holds %d, want %d", p.Len(), defaultMaxPoolRigs)
	}
	// Touch k0 so k1 becomes the LRU, then overflow.
	if _, err := p.lookup("k0", build); err != nil {
		t.Fatal(err)
	}
	if _, err := p.lookup("overflow", build); err != nil {
		t.Fatal(err)
	}
	if p.Len() != defaultMaxPoolRigs {
		t.Fatalf("pool grew past its bound: %d", p.Len())
	}
	hitsBefore, _ := p.Stats()
	if _, err := p.lookup("k0", build); err != nil { // survived the eviction
		t.Fatal(err)
	}
	if hits, _ := p.Stats(); hits != hitsBefore+1 {
		t.Fatal("recently used bench was evicted")
	}
	if _, err := p.lookup("k1", build); err != nil { // the LRU: evicted, rebuilt
		t.Fatal(err)
	}
	if _, misses := p.Stats(); misses != defaultMaxPoolRigs+2 {
		t.Fatalf("misses = %d, want %d (k1 must have been evicted and rebuilt)", misses, defaultMaxPoolRigs+2)
	}
}

// TestRigPoolByteBound asserts the byte-based retention limit of
// RigPoolLimits.MaxBytes: benches are admitted, then least-recently-used
// ones are evicted until the summed sim.Session.MemoryBytes estimate fits,
// and the bench of the current lookup is never evicted under the caller.
func TestRigPoolByteBound(t *testing.T) {
	ctx := context.Background()
	opts := fastEvalOptions()

	// Measure one real compiled golden bench so the limit is set in terms
	// of actual session footprints rather than magic numbers.
	probe := NewRigPool()
	c := fastCluster(t, 1)
	c.UseRigPool(probe)
	if _, err := c.Evaluate(ctx, Golden, nil, opts); err != nil {
		t.Fatal(err)
	}
	per := probe.Bytes()
	if per <= 0 {
		t.Fatalf("bench byte estimate %d, want > 0", per)
	}

	// A pool that can hold two benches of that size but not three.
	p := NewRigPoolWithLimits(RigPoolLimits{MaxBytes: 2*per + per/2})
	for i := 1; i <= 3; i++ {
		cl := fastCluster(t, i) // distinct aggressor counts -> distinct golden topologies
		cl.UseRigPool(p)
		if _, err := cl.Evaluate(ctx, Golden, nil, opts); err != nil {
			t.Fatal(err)
		}
	}
	if p.Len() >= 3 {
		t.Fatalf("pool holds all %d benches (%d bytes); byte bound %d never evicted", p.Len(), p.Bytes(), 2*per+per/2)
	}
	// Either the bound holds, or eviction ran all the way down to the one
	// bench of the current lookup, which is never evicted under the caller
	// even when it alone exceeds the bound.
	if p.Bytes() > 2*per+per/2 && p.Len() != 1 {
		t.Fatalf("pool bytes %d exceed the bound %d with %d benches resident", p.Bytes(), 2*per+per/2, p.Len())
	}

	// A single oversized bench must still be admitted (and used), not
	// rejected into a compile-every-time loop.
	tiny := NewRigPoolWithLimits(RigPoolLimits{MaxBytes: 1})
	cl := fastCluster(t, 1)
	cl.UseRigPool(tiny)
	if _, err := cl.Evaluate(ctx, Golden, nil, opts); err != nil {
		t.Fatal(err)
	}
	if tiny.Len() != 1 {
		t.Fatalf("oversized bench not retained: pool holds %d", tiny.Len())
	}
}

// TestRigPoolInvalidate asserts the explicit invalidation point: every
// bench is dropped, byte accounting returns to zero, and the next lookup
// recompiles — the contract a long-lived server relies on after a library
// reload.
func TestRigPoolInvalidate(t *testing.T) {
	p := NewRigPool()
	build := func() (*simRig, error) { return &simRig{}, nil }
	for i := 0; i < 5; i++ {
		if _, err := p.lookup(fmt.Sprintf("k%d", i), build); err != nil {
			t.Fatal(err)
		}
	}
	if n := p.Invalidate(); n != 5 {
		t.Fatalf("Invalidate dropped %d benches, want 5", n)
	}
	if p.Len() != 0 || p.Bytes() != 0 {
		t.Fatalf("pool not empty after Invalidate: len=%d bytes=%d", p.Len(), p.Bytes())
	}
	if _, err := p.lookup("k0", build); err != nil {
		t.Fatal(err)
	}
	if _, misses := p.Stats(); misses != 6 {
		t.Fatalf("misses = %d, want 6 (k0 must recompile after invalidation)", misses)
	}
}

// TestRigPoolDistinguishesTopologies asserts pooled benches never alias
// across genuinely different topology classes: a cluster with a different
// victim state (and so different quiet source levels baked into the
// netlist) must compile its own bench.
func TestRigPoolDistinguishesTopologies(t *testing.T) {
	ctx := context.Background()
	models := &Models{LumpedCL: 60e-15}
	opts := fastEvalOptions()

	pool := NewRigPool()
	a := fastCluster(t, 1)
	a.UseRigPool(pool)
	if _, err := a.DriverAloneResponse(ctx, models, opts); err != nil {
		t.Fatal(err)
	}
	b := fastCluster(t, 1)
	st := b.Victim.State.Clone()
	st["A"] = !st["A"] // different quiet state -> different DC sources
	// Keep the state electrically valid for the bench: NAND2 with the
	// other input low holds its output high either way.
	b.Victim.State = st
	b.UseRigPool(pool)
	if _, err := b.DriverAloneResponse(ctx, models, opts); err != nil {
		t.Fatal(err)
	}
	if hits, misses := pool.Stats(); misses != 2 || hits != 0 {
		t.Fatalf("pool stats hits=%d misses=%d, want 2 misses (distinct topologies)", hits, misses)
	}
}
