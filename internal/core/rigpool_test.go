package core

import (
	"context"
	"fmt"
	"testing"
)

// TestRigPoolSharesDriverBenches asserts the cross-cluster payoff of the
// worker rig pool: two distinct clusters whose victims share a cell
// configuration (the common case in a real design) compile the
// driver-alone bench once, and the pooled response is bit-identical to an
// unpooled cluster's.
func TestRigPoolSharesDriverBenches(t *testing.T) {
	ctx := context.Background()
	models := &Models{LumpedCL: 60e-15}
	opts := fastEvalOptions()

	ref, err := fastCluster(t, 1).DriverAloneResponse(ctx, models, opts)
	if err != nil {
		t.Fatal(err)
	}

	pool := NewRigPool()
	a, b := fastCluster(t, 1), fastCluster(t, 2) // same victim config, different clusters
	a.UseRigPool(pool)
	b.UseRigPool(pool)
	wa, err := a.DriverAloneResponse(ctx, models, opts)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := b.DriverAloneResponse(ctx, models, opts)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := pool.Stats()
	if misses != 1 || hits != 1 {
		t.Fatalf("pool stats hits=%d misses=%d, want 1 hit (shared bench) and 1 miss", hits, misses)
	}
	if pool.Len() != 1 {
		t.Fatalf("pool holds %d rigs, want 1", pool.Len())
	}
	for i := range ref.V {
		if wa.V[i] != ref.V[i] || wb.V[i] != ref.V[i] {
			t.Fatalf("pooled response diverged from unpooled at step %d: %v / %v vs %v",
				i, wa.V[i], wb.V[i], ref.V[i])
		}
	}
}

// TestRigPoolGoldenMatchesUnpooled asserts that routing the golden bench
// through a pool changes nothing about the result: the compiled netlist is
// keyed by the full topology class, only waveforms are re-pointed per
// evaluation, and a re-evaluation through the pool reuses the bench.
func TestRigPoolGoldenMatchesUnpooled(t *testing.T) {
	ctx := context.Background()
	opts := fastEvalOptions()

	ref, err := fastCluster(t, 1).Evaluate(ctx, Golden, nil, opts)
	if err != nil {
		t.Fatal(err)
	}

	pool := NewRigPool()
	a, b := fastCluster(t, 1), fastCluster(t, 1) // identical topology
	a.UseRigPool(pool)
	b.UseRigPool(pool)
	ea, err := a.Evaluate(ctx, Golden, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Evaluate(ctx, Golden, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := pool.Stats()
	if misses != 1 || hits != 1 {
		t.Fatalf("pool stats hits=%d misses=%d, want 1 hit and 1 miss", hits, misses)
	}
	if ea.Metrics.Peak != ref.Metrics.Peak || eb.Metrics.Peak != ref.Metrics.Peak {
		t.Fatalf("pooled golden peaks %v / %v diverged from unpooled %v",
			ea.Metrics.Peak, eb.Metrics.Peak, ref.Metrics.Peak)
	}
	for i := range ref.DP.V {
		if ea.DP.V[i] != ref.DP.V[i] || eb.DP.V[i] != ref.DP.V[i] {
			t.Fatalf("pooled golden waveform diverged at step %d", i)
		}
	}
}

// TestRigPoolEvictsLeastRecentlyUsed asserts the pool bound: filling it
// past maxPoolRigs evicts the least recently used bench (so design-sized
// runs cannot accumulate unbounded dense-matrix sessions), while a
// recently touched bench survives.
func TestRigPoolEvictsLeastRecentlyUsed(t *testing.T) {
	p := NewRigPool()
	build := func() (*simRig, error) { return &simRig{}, nil }
	for i := 0; i < maxPoolRigs; i++ {
		if _, err := p.lookup(fmt.Sprintf("k%d", i), build); err != nil {
			t.Fatal(err)
		}
	}
	if p.Len() != maxPoolRigs {
		t.Fatalf("pool holds %d, want %d", p.Len(), maxPoolRigs)
	}
	// Touch k0 so k1 becomes the LRU, then overflow.
	if _, err := p.lookup("k0", build); err != nil {
		t.Fatal(err)
	}
	if _, err := p.lookup("overflow", build); err != nil {
		t.Fatal(err)
	}
	if p.Len() != maxPoolRigs {
		t.Fatalf("pool grew past its bound: %d", p.Len())
	}
	hitsBefore, _ := p.Stats()
	if _, err := p.lookup("k0", build); err != nil { // survived the eviction
		t.Fatal(err)
	}
	if hits, _ := p.Stats(); hits != hitsBefore+1 {
		t.Fatal("recently used bench was evicted")
	}
	if _, err := p.lookup("k1", build); err != nil { // the LRU: evicted, rebuilt
		t.Fatal(err)
	}
	if _, misses := p.Stats(); misses != maxPoolRigs+2 {
		t.Fatalf("misses = %d, want %d (k1 must have been evicted and rebuilt)", misses, maxPoolRigs+2)
	}
}

// TestRigPoolDistinguishesTopologies asserts pooled benches never alias
// across genuinely different topology classes: a cluster with a different
// victim state (and so different quiet source levels baked into the
// netlist) must compile its own bench.
func TestRigPoolDistinguishesTopologies(t *testing.T) {
	ctx := context.Background()
	models := &Models{LumpedCL: 60e-15}
	opts := fastEvalOptions()

	pool := NewRigPool()
	a := fastCluster(t, 1)
	a.UseRigPool(pool)
	if _, err := a.DriverAloneResponse(ctx, models, opts); err != nil {
		t.Fatal(err)
	}
	b := fastCluster(t, 1)
	st := b.Victim.State.Clone()
	st["A"] = !st["A"] // different quiet state -> different DC sources
	// Keep the state electrically valid for the bench: NAND2 with the
	// other input low holds its output high either way.
	b.Victim.State = st
	b.UseRigPool(pool)
	if _, err := b.DriverAloneResponse(ctx, models, opts); err != nil {
		t.Fatal(err)
	}
	if hits, misses := pool.Stats(); misses != 2 || hits != 0 {
		t.Fatalf("pool stats hits=%d misses=%d, want 2 misses (distinct topologies)", hits, misses)
	}
}
