package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"stanoise/internal/cell"
	"stanoise/internal/charlib"
	"stanoise/internal/circuit"
	"stanoise/internal/interconnect"
	"stanoise/internal/mor"
	"stanoise/internal/sim"
	"stanoise/internal/tech"
	"stanoise/internal/thevenin"
	"stanoise/internal/wave"
)

// GlitchSpec describes the propagated-noise glitch arriving at the victim
// driver input: a triangular pulse leaving the quiet rail of the noisy pin
// towards the opposite rail.
type GlitchSpec struct {
	Height float64 // magnitude (V); 0 disables the input glitch
	Width  float64 // base width (s)
	Start  float64 // start time (s)
}

// PeakTime returns the apex time of the glitch.
func (g GlitchSpec) PeakTime() float64 { return g.Start + g.Width/2 }

// VictimSpec describes the quiet net under analysis.
type VictimSpec struct {
	Cell     *cell.Cell
	State    cell.State // quiet input state; the driver holds its output at a rail
	NoisyPin string     // input pin the propagated glitch arrives on
	Glitch   GlitchSpec
	Line     int // index of the victim wire in the bus

	Receiver    *cell.Cell // receiving cell at the far end (modelled as pin capacitance)
	ReceiverPin string
}

// AggressorSpec describes one switching neighbour.
type AggressorSpec struct {
	Cell      *cell.Cell
	FromState cell.State // input state before the transition
	SwitchPin string     // pin that toggles
	InputSlew float64    // input ramp transition time (s); default 60 ps
	InputT0   float64    // input ramp start (s); default 200 ps
	Offset    float64    // extra start-time shift applied by alignment (s)
	Line      int        // index of the aggressor wire in the bus
	// Quiet holds the aggressor at its pre-transition level instead of
	// switching — the evaluation form of an aggressor excluded from a
	// feasibility scenario (see EvaluateScenario). A quiet aggressor still
	// loads the bus through its driver, it just injects no noise; the
	// compiled benches are unaffected (only source waveforms differ), so
	// toggling Quiet between evaluations never recompiles anything.
	Quiet bool

	Receiver    *cell.Cell
	ReceiverPin string
}

// Cluster is a victim net and its coupled aggressors — the unit of noise
// analysis ("noise cluster" in the paper's terminology).
//
// A Cluster must not be copied by value after its first evaluation: it
// lazily caches compiled simulator benches behind a mutex, and two copies
// would share the single-goroutine sessions while locking independent
// mutexes. Pass *Cluster around, as every constructor in this repository
// does.
type Cluster struct {
	Tech       *tech.Tech
	Bus        *interconnect.Bus
	Victim     VictimSpec
	Aggressors []AggressorSpec

	// rigMu guards the lazily compiled transistor-level test benches
	// below. The golden netlist and the driver-alone bench have a fixed
	// topology per cluster — only source waveforms and the lumped load
	// change between evaluations — so they compile once (sim.Compile) and
	// re-run through a reusable sim.Session. Holding the mutex across the
	// run serialises golden evaluations of the same Cluster value;
	// distinct clusters (the unit of parallelism in internal/sna) are
	// unaffected.
	//
	// When a RigPool is attached (UseRigPool), benches are cached in the
	// pool under topology-class keys instead, so clusters sharing a
	// topology — in particular, victims sharing a driver cell
	// configuration — reuse each other's compiled benches.
	rigMu     sync.Mutex
	rigPool   *RigPool
	goldenRig *simRig
	driverRig *simRig
}

// simRig is a compiled simulator test bench cached on the cluster: the
// program/session pair plus the fingerprint of the sim options it was
// opened with (a session fixes Dt, tolerances and initial guesses; the
// stop time is per-run). res is the reused transient result storage —
// rigMu serialises runs, and the waveforms handed out of an evaluation
// copy their samples, so reuse across evaluations is safe.
type simRig struct {
	key  string
	prog *sim.Program
	sess *sim.Session
	res  sim.Result
}

// optionsFingerprint renders every session-level field of o, so a rig is
// recompiled whenever an evaluation asks for different solver settings.
func optionsFingerprint(o sim.Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%.17g|%d|%d|%.17g|%.17g|%.17g|%.17g",
		o.Dt, o.Method, o.MaxNewton, o.VTol, o.ITol, o.Gmin, o.MaxStep)
	if len(o.InitialGuess) > 0 {
		names := make([]string, 0, len(o.InitialGuess))
		for n := range o.InitialGuess {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "|%s=%.17g", n, o.InitialGuess[n])
		}
	}
	return b.String()
}

// renderSpecKey renders the victim and aggressor spec fields every
// compiled bench bakes in — states, pins, lines, receivers — under the
// given technology/bus identity prefixes and cell-identity function. It
// is the single source of truth shared by structuralKey (pointer-keyed,
// per-cluster cache) and topologyKey (name-keyed, RigPool sharing), so a
// netlist-affecting spec field added later is added in exactly one place
// and can never silently drift between the two cache layers.
func (c *Cluster) renderSpecKey(techID, busID string, cellID func(*cell.Cell) string) string {
	var b strings.Builder
	v := &c.Victim
	fmt.Fprintf(&b, "tech=%s|bus=%s", techID, busID)
	fmt.Fprintf(&b, "|vic=%s,%s,%s,%d,%s,%s",
		cellID(v.Cell), v.State.String(), v.NoisyPin, v.Line, cellID(v.Receiver), v.ReceiverPin)
	for i := range c.Aggressors {
		a := &c.Aggressors[i]
		fmt.Fprintf(&b, "|agg=%s,%s,%s,%d,%s,%s",
			cellID(a.Cell), a.FromState.String(), a.SwitchPin, a.Line, cellID(a.Receiver), a.ReceiverPin)
	}
	return b.String()
}

// structuralKey renders everything the compiled benches bake in besides
// source waveforms — the cell instances, states, pins, lines, receivers
// and the bus — so appending an aggressor or re-pointing a spec between
// evaluations recompiles instead of reusing a stale netlist. Cells and
// receivers are keyed by pointer *and* library name (kind + drive), so a
// re-pointed spec is caught even if the allocator reuses an address; the
// bus is keyed by pointer, which covers its geometry (SpacingFactor
// included) as long as it is not deep-mutated. Deep mutation of a shared
// *Bus or *Cell value is not detected (documented as unsupported; see
// ROADMAP open items).
func (c *Cluster) structuralKey() string {
	cellID := func(cl *cell.Cell) string {
		if cl == nil {
			return "nil"
		}
		return fmt.Sprintf("%p:%s", cl, cl.Name())
	}
	var bus strings.Builder
	fmt.Fprintf(&bus, "%p:%s,%d", c.Bus, c.Bus.Layer, c.Bus.Segments)
	for i := range c.Bus.Lines {
		fmt.Fprintf(&bus, ",%s:%.17g", c.Bus.Lines[i].Name, c.Bus.Lines[i].LengthUm)
	}
	return c.renderSpecKey(fmt.Sprintf("%p:%.17g", c.Tech, c.Tech.VDD), bus.String(), cellID)
}

// Validate checks structural consistency.
func (c *Cluster) Validate() error {
	nLines := len(c.Bus.Lines)
	if c.Victim.Line < 0 || c.Victim.Line >= nLines {
		return fmt.Errorf("core: victim line %d out of range (%d lines)", c.Victim.Line, nLines)
	}
	if !c.Victim.Cell.HasInput(c.Victim.NoisyPin) {
		return fmt.Errorf("core: victim cell %s has no pin %q", c.Victim.Cell.Name(), c.Victim.NoisyPin)
	}
	used := map[int]bool{c.Victim.Line: true}
	for i, a := range c.Aggressors {
		if a.Line < 0 || a.Line >= nLines {
			return fmt.Errorf("core: aggressor %d line %d out of range", i, a.Line)
		}
		if used[a.Line] {
			return fmt.Errorf("core: line %d driven twice", a.Line)
		}
		used[a.Line] = true
		to := a.FromState.Clone()
		to[a.SwitchPin] = !to[a.SwitchPin]
		if a.Cell.Logic(a.FromState) == a.Cell.Logic(to) {
			return fmt.Errorf("core: aggressor %d switch pin %q does not toggle its output", i, a.SwitchPin)
		}
	}
	if c.Victim.Glitch.Height < 0 {
		return fmt.Errorf("core: glitch height must be a magnitude (got %g)", c.Victim.Glitch.Height)
	}
	if c.Victim.Glitch.Height > 0 && c.Victim.Glitch.Width <= 0 {
		return fmt.Errorf("core: glitch with height needs positive width")
	}
	return nil
}

// QuietVictimLevel returns the rail the victim driver holds its output at.
func (c *Cluster) QuietVictimLevel() float64 {
	return c.Victim.Cell.PinVoltage(c.Victim.Cell.Logic(c.Victim.State))
}

// victimInputWave returns the absolute waveform at the victim driver's
// noisy pin: the quiet rail plus the triangular glitch (if any).
func (c *Cluster) victimInputWave() *wave.Waveform {
	quiet := c.Victim.Cell.PinVoltage(c.Victim.State[c.Victim.NoisyPin])
	g := c.Victim.Glitch
	if g.Height == 0 {
		return wave.Constant(quiet)
	}
	sign := 1.0
	if c.Victim.State[c.Victim.NoisyPin] {
		sign = -1
	}
	return wave.Triangle(quiet, sign*g.Height, g.Start, g.Width)
}

func (a *AggressorSpec) slew() float64 {
	if a.InputSlew > 0 {
		return a.InputSlew
	}
	return 60e-12
}

func (a *AggressorSpec) t0() float64 {
	if a.InputT0 > 0 {
		return a.InputT0
	}
	return 200e-12
}

// aggressorInputWave returns the ramp driving the aggressor's switching
// pin, or the constant pre-transition level when the aggressor is Quiet.
func (a *AggressorSpec) aggressorInputWave() *wave.Waveform {
	from := a.Cell.PinVoltage(a.FromState[a.SwitchPin])
	if a.Quiet {
		return wave.Constant(from)
	}
	to := a.Cell.PinVoltage(!a.FromState[a.SwitchPin])
	return wave.SaturatedRamp(from, to, a.t0()+a.Offset, a.slew())
}

// StartTime returns the aggressor's current input-ramp start time: its
// nominal t0 (InputT0, default 200 ps) plus the alignment Offset.
func (a *AggressorSpec) StartTime() float64 { return a.t0() + a.Offset }

// receiverCap returns the pin capacitance loading a line's far end.
func receiverCap(recv *cell.Cell, pin string) float64 {
	if recv == nil {
		return 0
	}
	if pin == "" {
		pin = recv.Inputs()[0]
	}
	return recv.InputCap(pin)
}

// EventHorizon returns a transient end time that comfortably covers all
// switching events plus settling.
func (c *Cluster) EventHorizon() float64 {
	end := c.Victim.Glitch.Start + c.Victim.Glitch.Width
	for i := range c.Aggressors {
		a := &c.Aggressors[i]
		if t := a.t0() + a.Offset + a.slew(); t > end {
			end = t
		}
	}
	return end + 1.5e-9
}

// BuildGolden assembles the full transistor-level netlist of the cluster:
// victim driver with its input glitch, switching aggressor drivers, the
// distributed coupled interconnect and receiver pin capacitances. This is
// the circuit the golden simulator (the ELDO stand-in) solves.
func (c *Cluster) BuildGolden() (*circuit.Circuit, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	ckt := circuit.New()
	ckt.AddVDC("vdd", "vdd", "0", c.Tech.VDD)
	c.Bus.Build(ckt)

	// Victim driver.
	v := &c.Victim
	vicPins := map[string]string{}
	for _, in := range v.Cell.Inputs() {
		node := "vic_in_" + in
		vicPins[in] = node
		if in == v.NoisyPin {
			ckt.AddV("vglitch", node, "0", c.victimInputWave())
		} else {
			ckt.AddVDC("vvic_"+in, node, "0", v.Cell.PinVoltage(v.State[in]))
		}
	}
	if err := v.Cell.Build(ckt, "vic", vicPins, c.Bus.InNode(v.Line), "vdd"); err != nil {
		return nil, err
	}
	if rc := receiverCap(v.Receiver, v.ReceiverPin); rc > 0 {
		ckt.AddC("crecv_vic", c.Bus.OutNode(v.Line), "0", rc)
	}

	// Aggressor drivers.
	for i := range c.Aggressors {
		a := &c.Aggressors[i]
		prefix := fmt.Sprintf("agg%d", i)
		pins := map[string]string{}
		for _, in := range a.Cell.Inputs() {
			node := prefix + "_in_" + in
			pins[in] = node
			if in == a.SwitchPin {
				ckt.AddV("v"+prefix+"_"+in, node, "0", a.aggressorInputWave())
			} else {
				ckt.AddVDC("v"+prefix+"_"+in, node, "0", a.Cell.PinVoltage(a.FromState[in]))
			}
		}
		if err := a.Cell.Build(ckt, prefix, pins, c.Bus.InNode(a.Line), "vdd"); err != nil {
			return nil, err
		}
		if rc := receiverCap(a.Receiver, a.ReceiverPin); rc > 0 {
			ckt.AddC("crecv_"+prefix, c.Bus.OutNode(a.Line), "0", rc)
		}
	}
	return ckt, nil
}

// Models holds every pre-characterised artefact needed to evaluate a
// cluster without touching the transistor-level simulator again: the VCCS
// load curve (eq. 1), the reduced interconnect macromodel, the fitted
// aggressor Thevenin drivers, the propagation table for the superposition
// baseline, and bookkeeping (quiet levels, port order).
//
// In a production flow these come from the library characterisation
// database; building them is the "pre-characterisation step" of §2.
type Models struct {
	LC   *charlib.LoadCurve
	Prop *charlib.PropTable
	Agg  []*thevenin.Driver
	Red  *mor.Reduced

	VicPort  int // port index of the victim driving point
	RecvPort int // port index of the victim receiver (far end)
	AggPorts []int

	V0       []float64 // per-port quiet DC levels
	QuietVic float64   // quiet level at the victim driving point
	QuietIn  float64   // quiet level at the victim noisy input
	LumpedCL float64   // lumped victim load used for table lookups

	HoldG   float64 // holding conductance at the quiet point
	MillerC float64 // input-output feedthrough cap of the victim driver
}

// ModelOptions tunes model construction.
type ModelOptions struct {
	LoadCurve charlib.LoadCurveOptions
	Prop      charlib.PropOptions
	Thevenin  thevenin.FitOptions
	MOR       mor.Options
	// SkipProp skips propagation-table characterisation (it is only
	// needed by the Superposition baseline and is the most expensive
	// artefact).
	SkipProp bool
	// Cache, when non-nil, memoizes load curves and propagation tables
	// across clusters (and goroutines) that share a cell configuration,
	// so a design with repeated cells characterises each one only once.
	Cache *charlib.Cache
}

// BuildModels pre-characterises everything the macromodel and the baseline
// methods need for this cluster. Cancelling ctx abandons characterisation
// between (and inside) artefacts; a nil context disables cancellation.
func (c *Cluster) BuildModels(ctx context.Context, opts ModelOptions) (*Models, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	v := &c.Victim
	m := &Models{}

	// 1. The victim VCCS table (the paper's eq. 1).
	lc, err := opts.Cache.LoadCurve(ctx, v.Cell, v.State, v.NoisyPin, opts.LoadCurve)
	if err != nil {
		return nil, fmt.Errorf("core: victim load curve: %w", err)
	}
	m.LC = lc
	m.QuietVic = c.QuietVictimLevel()
	m.QuietIn = v.Cell.PinVoltage(v.State[v.NoisyPin])
	m.HoldG = lc.HoldingConductance(m.QuietIn, m.QuietVic)

	// 2. Lumped victim load for table-based lookups: wire + receiver +
	// driver output diffusion (coupling conservatively grounded).
	m.LumpedCL = c.Bus.TotalCap(v.Line) + receiverCap(v.Receiver, v.ReceiverPin) + v.Cell.OutputCap()

	// 3. Propagation table for the superposition baseline.
	if !opts.SkipProp {
		prop, err := opts.Cache.PropTable(ctx, v.Cell, v.State, v.NoisyPin, opts.Prop)
		if err != nil {
			return nil, fmt.Errorf("core: propagation table: %w", err)
		}
		m.Prop = prop
	}

	// 4. Thevenin models of the aggressor drivers. Fits are memoized (and
	// persisted, when the cache has a disk tier) like every other
	// characterised artefact: the fingerprint covers the lumped load and
	// every fit option, so aggressors with distinct geometry never alias,
	// while the repeated driver/load configurations of a real design fit
	// once.
	for i := range c.Aggressors {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		a := &c.Aggressors[i]
		load := c.Bus.TotalCap(a.Line) + receiverCap(a.Receiver, a.ReceiverPin) + a.Cell.OutputCap()
		// Fit at the base ramp time; alignment offsets are applied at
		// evaluation time via Driver.Shifted, so re-aligning a cluster
		// never requires refitting.
		fitOpts := opts.Thevenin.Normalized()
		fitOpts.InputSlew = a.slew()
		fitOpts.InputT0 = a.t0()
		fp := fmt.Sprintf("%.17g,%.17g,%.17g,%.17g,%.17g,%.17g",
			load, fitOpts.InputSlew, fitOpts.InputT0, fitOpts.Dt, fitOpts.Crossings[0], fitOpts.Crossings[1])
		fit, err := opts.Cache.Artefact(ctx, "thev", a.Cell, a.FromState, a.SwitchPin, fp, func() (any, error) {
			return thevenin.Fit(ctx, a.Cell, a.FromState, a.SwitchPin, load, fitOpts)
		})
		if err != nil {
			return nil, fmt.Errorf("core: aggressor %d thevenin fit: %w", i, err)
		}
		m.Agg = append(m.Agg, fit.(*thevenin.Driver))
	}

	// 5. Reduced coupled interconnect with lumped parasitics at the ports.
	extra := map[string]float64{}
	addCap := func(node string, cap float64) {
		if cap > 0 {
			extra[node] += cap
		}
	}
	// The driving-point parasitics: diffusion caps, the gate-drain caps of
	// devices whose gates sit at fixed rails (those behave as grounded
	// capacitance during the event), and the junction caps of internal
	// stack nodes, which couple to the output through the conducting stack
	// whenever noise propagates. The noisy pin's gate-drain cap is the
	// Miller feedthrough, stored separately for the optional
	// Miller-augmented engine.
	addCap(c.Bus.InNode(v.Line),
		v.Cell.OutputCap()+v.Cell.OutputFixedGateCap(v.NoisyPin)+v.Cell.ConnectedInternalNodeCap(v.State))
	addCap(c.Bus.OutNode(v.Line), receiverCap(v.Receiver, v.ReceiverPin))
	m.MillerC = v.Cell.OutputMillerCap(v.NoisyPin)
	ports := []string{c.Bus.InNode(v.Line)}
	m.VicPort = 0
	for i := range c.Aggressors {
		a := &c.Aggressors[i]
		addCap(c.Bus.InNode(a.Line), a.Cell.OutputCap()+a.Cell.OutputFixedGateCap(a.SwitchPin))
		addCap(c.Bus.OutNode(a.Line), receiverCap(a.Receiver, a.ReceiverPin))
		m.AggPorts = append(m.AggPorts, len(ports))
		ports = append(ports, c.Bus.InNode(a.Line))
	}
	m.RecvPort = len(ports)
	ports = append(ports, c.Bus.OutNode(v.Line))

	net := c.Bus.Network(extra)
	red, err := mor.Reduce(net, ports, opts.MOR)
	if err != nil {
		return nil, fmt.Errorf("core: interconnect reduction: %w", err)
	}
	m.Red = red

	// 6. Quiet DC level per port: every victim-line port sits at the
	// victim quiet level, every aggressor port at its pre-transition rail.
	m.V0 = make([]float64, len(ports))
	m.V0[m.VicPort] = m.QuietVic
	m.V0[m.RecvPort] = m.QuietVic
	for i, pi := range m.AggPorts {
		m.V0[pi] = m.Agg[i].V0
	}
	return m, nil
}

// AggStartLevel returns the pre-transition output level of aggressor i.
func (c *Cluster) AggStartLevel(i int) float64 {
	a := &c.Aggressors[i]
	return a.Cell.PinVoltage(a.Cell.Logic(a.FromState))
}
