// Package core implements the paper's primary contribution: the
// noise-cluster macromodel of Forzan & Pandini (DATE 2005) and the engines
// that evaluate total noise — propagated through the victim driver plus
// crosstalk-injected by the aggressors — at the victim driving point.
//
// A Cluster describes a victim net with its coupled aggressors (Figure 1 of
// the paper): the victim driver cell in a quiet logic state with a noise
// glitch arriving at one input, aggressor driver cells switching, a bundle
// of coupled wires, and receiver loads. The cluster can be evaluated with
// four methods:
//
//   - Golden: full transistor-level simulation (the ELDO stand-in).
//   - Superposition: the traditional linear flow — injected noise from a
//     holding-resistance linear model, propagated noise from
//     pre-characterised tables, combined by waveform summation with peaks
//     aligned.
//   - Zolotov: the iterative Thevenin victim model of the paper's
//     reference [4] — a pulsed voltage source behind the holding
//     resistance, refined by fixed-point iteration.
//   - Macromodel: the paper's approach — the victim driver as a non-linear
//     VCCS table I_DC = f(V_in, V_out) co-simulated with a moment-matching
//     reduced model of the coupled interconnect and Thevenin aggressors by
//     a small dedicated non-linear engine.
package core
