package core

import (
	"context"
	"math"
	"testing"

	"stanoise/internal/circuit"
	"stanoise/internal/mor"
	"stanoise/internal/sim"
	"stanoise/internal/wave"
)

// reducedLadder builds a reduced model of a simple RC ladder with a port at
// the near end.
func reducedLadder(t *testing.T, n int, rSeg, cSeg float64) *mor.Reduced {
	t.Helper()
	nodes := make([]string, n+1)
	for i := range nodes {
		nodes[i] = "n" + string(rune('a'+i))
	}
	net := mor.NewNetwork(nodes)
	for i := 0; i < n; i++ {
		net.AddR(nodes[i], nodes[i+1], rSeg)
	}
	for i := 0; i <= n; i++ {
		net.AddC(nodes[i], "0", cSeg)
	}
	red, err := mor.Reduce(net, []string{nodes[0], nodes[n]}, mor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return red
}

func TestEngineTheveninStep(t *testing.T) {
	// Thevenin ramp into a reduced RC ladder: the far end must settle to
	// the source's final value.
	red := reducedLadder(t, 8, 50, 10e-15)
	srcs := []PortSource{
		&TheveninPort{W: wave.SaturatedRamp(1.2, 0, 100e-12, 80e-12), RTh: 300},
		OpenPort{},
	}
	v0 := []float64{1.2, 1.2}
	res, err := RunEngine(context.Background(), red, srcs, v0, EngineOptions{Dt: 1e-12, TStop: 3e-9})
	if err != nil {
		t.Fatal(err)
	}
	far := res.Waveform(1)
	if got := far.At(0); math.Abs(got-1.2) > 1e-9 {
		t.Errorf("initial far = %v", got)
	}
	if got := far.At(3e-9); math.Abs(got-0) > 0.01 {
		t.Errorf("final far = %v, want 0", got)
	}
}

// The decisive correctness test: a fully linear cluster evaluated by the
// reduced-order engine must match the full transistor-free circuit solved
// by the general simulator.
func TestEngineMatchesFullLinearSimulation(t *testing.T) {
	// Two coupled 10-segment lines; victim held by a resistor, aggressor
	// driven by a Thevenin ramp.
	const (
		nseg = 10
		rSeg = 5.0
		cSeg = 3e-15
		cc   = 6e-15
		rth  = 400.0
		hold = 1500.0
	)
	name := func(l string, j int) string { return l + "_" + string(rune('a'+j)) }
	var nodes []string
	for _, l := range []string{"v", "a"} {
		for j := 0; j <= nseg; j++ {
			nodes = append(nodes, name(l, j))
		}
	}
	net := mor.NewNetwork(nodes)
	ckt := circuit.New()
	vth := wave.SaturatedRamp(1.2, 0, 150e-12, 70e-12)
	for _, l := range []string{"v", "a"} {
		for j := 0; j < nseg; j++ {
			net.AddR(name(l, j), name(l, j+1), rSeg)
			ckt.AddR("r"+name(l, j), name(l, j), name(l, j+1), rSeg)
		}
		for j := 0; j <= nseg; j++ {
			net.AddC(name(l, j), "0", cSeg)
			ckt.AddC("c"+name(l, j), name(l, j), "0", cSeg)
		}
	}
	for j := 0; j <= nseg; j++ {
		net.AddC(name("v", j), name("a", j), cc)
		ckt.AddC("cc"+name("v", j), name("v", j), name("a", j), cc)
	}
	// Full circuit: holding resistor to a 1.2 V rail; Thevenin source.
	ckt.AddVDC("vdd", "vdd", "0", 1.2)
	ckt.AddR("rhold", "vdd", name("v", 0), hold)
	ckt.AddV("vth", "th", "0", vth)
	ckt.AddR("rth", "th", name("a", 0), rth)

	ports := []string{name("v", 0), name("a", 0), name("v", nseg)}
	red, err := mor.Reduce(net, ports, mor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srcs := []PortSource{
		&HoldingPort{G: 1 / hold, V0: 1.2},
		&TheveninPort{W: vth, RTh: rth},
		OpenPort{},
	}
	v0 := []float64{1.2, 1.2, 1.2}
	opts := EngineOptions{Dt: 1e-12, TStop: 2e-9}
	engRes, err := RunEngine(context.Background(), red, srcs, v0, opts)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := sim.Transient(context.Background(), ckt, sim.Options{Dt: 1e-12, TStop: 2e-9})
	if err != nil {
		t.Fatal(err)
	}
	for pi, node := range []string{name("v", 0), name("a", 0), name("v", nseg)} {
		d := wave.MaxAbsDiff(engRes.Waveform(pi), simRes.Waveform(node))
		if d > 0.015 {
			t.Errorf("port %s: engine deviates %v V from full simulation", node, d)
		}
	}
}

func TestEngineSourceCountMismatch(t *testing.T) {
	red := reducedLadder(t, 4, 10, 1e-15)
	_, err := RunEngine(context.Background(), red, []PortSource{OpenPort{}}, []float64{0, 0}, EngineOptions{TStop: 1e-9})
	if err == nil {
		t.Error("source count mismatch accepted")
	}
}

func TestEngineRequiresTStop(t *testing.T) {
	red := reducedLadder(t, 4, 10, 1e-15)
	_, err := RunEngine(context.Background(), red, []PortSource{OpenPort{}, OpenPort{}}, []float64{0, 0}, EngineOptions{})
	if err == nil {
		t.Error("missing TStop accepted")
	}
}

func TestHoldingPortRestores(t *testing.T) {
	p := &HoldingPort{G: 1e-3, V0: 1.2}
	i, g := p.Current(0, 1.0) // output drooped 0.2 V below quiet
	if math.Abs(i-0.2e-3) > 1e-12 {
		t.Errorf("restoring current = %v", i)
	}
	if g != -1e-3 {
		t.Errorf("conductance = %v", g)
	}
}

func TestOpenPort(t *testing.T) {
	i, g := OpenPort{}.Current(1e-9, 0.7)
	if i != 0 || g != 0 {
		t.Error("OpenPort leaks current")
	}
}

func TestParallelPortSums(t *testing.T) {
	p := ParallelPort{
		&HoldingPort{G: 1e-3, V0: 1.0},
		&HoldingPort{G: 2e-3, V0: 1.0},
	}
	i, g := p.Current(0, 0.9)
	if math.Abs(i-0.3e-3) > 1e-12 || math.Abs(g+3e-3) > 1e-12 {
		t.Errorf("parallel sum wrong: %v %v", i, g)
	}
}

func TestCapPortDifferentiates(t *testing.T) {
	// A CapPort between a ramping waveform and a fixed port voltage must
	// deliver i ≈ C·dV/dt mid-ramp.
	const (
		c    = 10e-15
		rate = 1.2 / 100e-12 // V/s
		h    = 1e-12
	)
	p := &CapPort{C: c, W: wave.SaturatedRamp(0, 1.2, 50e-12, 100e-12)}
	p.Init(h, 0, 0)
	want := c * rate
	// Trapezoidal companions ring at PWL corners; the integrator consumes
	// the average of consecutive step currents, which must equal C·dV/dt
	// exactly during the ramp.
	var prev, cur float64
	for t0 := h; t0 <= 100e-12; t0 += h {
		prev = cur
		cur, _ = p.Current(t0, 0)
		p.Commit(t0, 0)
	}
	if avg := 0.5 * (prev + cur); math.Abs(avg-want) > 0.02*want {
		t.Errorf("mid-ramp average cap current = %v, want %v", avg, want)
	}
	// And zero once the ramp completes and the history settles.
	for t0 := 101e-12; t0 <= 400e-12; t0 += h {
		prev = cur
		cur, _ = p.Current(t0, 0)
		p.Commit(t0, 0)
	}
	if avg := 0.5 * (prev + cur); math.Abs(avg) > 0.01*want {
		t.Errorf("post-ramp average cap current = %v, want ~0", avg)
	}
}
