package core

import (
	"context"
	"strings"
	"testing"

	"stanoise/internal/tech"
)

// TestRigPoolNLCapKeysDistinct pins the pooled-bench key separation on the
// nonlinear-cap axis: a cluster on a WithNonlinearCaps card and one on the
// base card share cell names, tech name and VDD, so only the ",nlcap"
// marker keeps their compiled benches from aliasing in a shared pool. The
// constant-cap keys must not mention the marker at all (legacy pools stay
// bit-stable).
func TestRigPoolNLCapKeysDistinct(t *testing.T) {
	cc := fastCluster(t, 1)
	nc := fastClusterOn(t, tech.Tech130().WithNonlinearCaps(), 1)

	if k := cc.topologyKey(); strings.Contains(k, "nlcap") {
		t.Fatalf("constant-cap topology key mentions nlcap: %q", k)
	}
	if k := nc.topologyKey(); !strings.Contains(k, ",nlcap") {
		t.Fatalf("nl-cap topology key carries no marker: %q", k)
	}
	if cc.topologyKey() == nc.topologyKey() {
		t.Fatal("constant-cap and nl-cap clusters alias the topology key")
	}
	if cc.driverClassKey() == nc.driverClassKey() {
		t.Fatal("constant-cap and nl-cap clusters alias the driver-class key")
	}
	if k := nc.driverClassKey(); !strings.Contains(k, ",nlcap") {
		t.Fatalf("nl-cap driver-class key carries no marker: %q", k)
	}
}

// TestRigPoolNLCapNoCrossServing drives the property end to end: with one
// shared pool, a constant-cap and an nl-cap cluster evaluating the same
// driver-alone bench must compile two rigs (two misses, no cross-axis hit)
// and produce measurably different waveforms — the nl bench really runs the
// nonlinear stamps, it is not a mislabeled copy.
func TestRigPoolNLCapNoCrossServing(t *testing.T) {
	ctx := context.Background()
	models := &Models{LumpedCL: 60e-15}
	opts := fastEvalOptions()

	pool := NewRigPool()
	cc := fastCluster(t, 1)
	nc := fastClusterOn(t, tech.Tech130().WithNonlinearCaps(), 1)
	cc.UseRigPool(pool)
	nc.UseRigPool(pool)

	wc, err := cc.DriverAloneResponse(ctx, models, opts)
	if err != nil {
		t.Fatal(err)
	}
	wn, err := nc.DriverAloneResponse(ctx, models, opts)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := pool.Stats()
	if hits != 0 || misses != 2 {
		t.Fatalf("pool stats hits=%d misses=%d, want 0 hits and 2 misses (no cross-axis serving)", hits, misses)
	}
	if pool.Len() != 2 {
		t.Fatalf("pool holds %d rigs, want 2", pool.Len())
	}
	maxDiff := 0.0
	n := len(wc.V)
	if len(wn.V) < n {
		n = len(wn.V)
	}
	for i := 0; i < n; i++ {
		if d := wc.V[i] - wn.V[i]; d > maxDiff {
			maxDiff = d
		} else if -d > maxDiff {
			maxDiff = -d
		}
	}
	if maxDiff < 1e-4 {
		t.Fatalf("nl-cap bench indistinguishable from constant-cap (max |Δ| = %g V)", maxDiff)
	}
}
