package core

import (
	"context"
	"math"
	"testing"

	"stanoise/internal/cell"
	"stanoise/internal/charlib"
	"stanoise/internal/interconnect"
	"stanoise/internal/tech"
	"stanoise/internal/wave"
)

// fastCluster is a reduced-cost Table-1-style cluster for unit testing:
// coarser wire discretisation and characterisation grids keep the whole
// golden/baseline/macromodel comparison under a second.
func fastCluster(t *testing.T, nAgg int) *Cluster {
	t.Helper()
	return fastClusterOn(t, tech.Tech130(), nAgg)
}

// fastClusterOn is fastCluster on an explicit technology card, for tests
// that cross cluster behaviour with a card axis (corners, nonlinear caps).
func fastClusterOn(t *testing.T, tt *tech.Tech, nAgg int) *Cluster {
	t.Helper()
	lines := []interconnect.LineSpec{{Name: "vic", LengthUm: 500}}
	for i := 0; i < nAgg; i++ {
		lines = append(lines, interconnect.LineSpec{Name: "agg" + string(rune('1'+i)), LengthUm: 500})
	}
	bus, err := interconnect.NewBus(tt, "M4", 8, lines...)
	if err != nil {
		t.Fatal(err)
	}
	nand := cell.MustNew(tt, "NAND2", 1)
	st, err := nand.SensitizedState("B", true)
	if err != nil {
		t.Fatal(err)
	}
	recv := func() *cell.Cell { return cell.MustNew(tt, "INV", 2) }
	c := &Cluster{
		Tech: tt,
		Bus:  bus,
		Victim: VictimSpec{
			Cell: nand, State: st, NoisyPin: "B",
			Glitch:   GlitchSpec{Height: 0.65, Width: 350e-12, Start: 150e-12},
			Line:     0,
			Receiver: recv(), ReceiverPin: "A",
		},
	}
	for i := 0; i < nAgg; i++ {
		c.Aggressors = append(c.Aggressors, AggressorSpec{
			Cell: cell.MustNew(tt, "INV", 2), FromState: cell.State{"A": false}, SwitchPin: "A",
			Line: i + 1, Receiver: recv(), ReceiverPin: "A",
		})
	}
	return c
}

func fastModelOptions() ModelOptions {
	return ModelOptions{
		LoadCurve: charlib.LoadCurveOptions{NVin: 41, NVout: 41},
		Prop: charlib.PropOptions{
			Heights: []float64{0.3, 0.6, 0.9, 1.2},
			Widths:  []float64{150e-12, 350e-12, 700e-12},
			Loads:   []float64{40e-15, 90e-15, 160e-15},
			Dt:      2e-12,
		},
	}
}

func fastEvalOptions() EvalOptions { return EvalOptions{Dt: 2e-12} }

func TestClusterValidate(t *testing.T) {
	c := fastCluster(t, 1)
	if err := c.Validate(); err != nil {
		t.Fatalf("valid cluster rejected: %v", err)
	}
	bad := fastCluster(t, 1)
	bad.Victim.Line = 5
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range victim line accepted")
	}
	bad = fastCluster(t, 1)
	bad.Aggressors[0].Line = 0 // same as victim
	if err := bad.Validate(); err == nil {
		t.Error("doubly driven line accepted")
	}
	bad = fastCluster(t, 1)
	bad.Victim.Glitch.Height = -0.3
	if err := bad.Validate(); err == nil {
		t.Error("negative glitch height accepted")
	}
	bad = fastCluster(t, 1)
	bad.Aggressors[0].FromState = cell.State{"A": false}
	bad.Aggressors[0].Cell = cell.MustNew(tech.Tech130(), "NAND2", 1)
	bad.Aggressors[0].SwitchPin = "B" // with A=0 the NAND output never toggles
	if err := bad.Validate(); err == nil {
		t.Error("non-toggling aggressor accepted")
	}
	bad = fastCluster(t, 1)
	bad.Victim.NoisyPin = "Z" // not an input of the victim cell
	if err := bad.Validate(); err == nil {
		t.Error("unknown victim noisy pin accepted")
	}
}

func TestVictimInputWavePolarity(t *testing.T) {
	c := fastCluster(t, 1)
	w := c.victimInputWave()
	// Noisy pin B is quiet low: the glitch must rise from 0.
	if w.At(0) != 0 {
		t.Errorf("quiet input level = %v", w.At(0))
	}
	m := wave.MeasureNoise(w, 0)
	if m.Sign != 1 || math.Abs(m.Peak-0.65) > 1e-12 {
		t.Errorf("glitch sign %v peak %v", m.Sign, m.Peak)
	}
}

func TestBuildGoldenStructure(t *testing.T) {
	c := fastCluster(t, 2)
	ckt, err := c.BuildGolden()
	if err != nil {
		t.Fatal(err)
	}
	// 4 victim transistors + 2×2 aggressor transistors.
	if len(ckt.Mosfets) != 8 {
		t.Errorf("transistors = %d, want 8", len(ckt.Mosfets))
	}
	for _, node := range []string{"vic.0", "vic.8", "agg1.0", "agg2.0"} {
		if _, ok := ckt.LookupNode(node); !ok {
			t.Errorf("node %s missing from golden netlist", node)
		}
	}
}

func TestBuildModelsStructure(t *testing.T) {
	c := fastCluster(t, 2)
	m, err := c.BuildModels(context.Background(), ModelOptions{SkipProp: true, LoadCurve: charlib.LoadCurveOptions{NVin: 21, NVout: 21}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Prop != nil {
		t.Error("SkipProp ignored")
	}
	if len(m.Agg) != 2 || len(m.AggPorts) != 2 {
		t.Errorf("aggressor models: %d/%d", len(m.Agg), len(m.AggPorts))
	}
	if got := len(m.Red.Ports); got != 4 {
		t.Errorf("ports = %d, want 4 (vic DP, 2 agg DPs, vic recv)", got)
	}
	// Quiet levels: victim high, aggressors start high (INV input low).
	if m.V0[m.VicPort] != 1.2 || m.V0[m.RecvPort] != 1.2 {
		t.Errorf("victim quiet levels wrong: %v", m.V0)
	}
	for _, pi := range m.AggPorts {
		if m.V0[pi] != 1.2 {
			t.Errorf("aggressor start level = %v, want 1.2", m.V0[pi])
		}
	}
	if m.HoldG <= 0 {
		t.Errorf("holding conductance = %v", m.HoldG)
	}
	if m.MillerC <= 0 {
		t.Errorf("Miller cap = %v", m.MillerC)
	}
}

// The headline integration test: the reproduction of the paper's
// qualitative result on a fast cluster. Linear superposition must
// underestimate the total noise by double-digit percent, the Zolotov
// baseline must sit in between, and the paper's macromodel must track the
// golden simulation within a few percent — at a significant speed-up.
func TestMethodsReproducePaperShape(t *testing.T) {
	c := fastCluster(t, 1)
	models, err := c.BuildModels(context.Background(), fastModelOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := fastEvalOptions()
	if err := c.AlignWorstCase(context.Background(), models, opts); err != nil {
		t.Fatal(err)
	}
	golden, err := c.Evaluate(context.Background(), Golden, models, opts)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := c.Evaluate(context.Background(), Superposition, models, opts)
	if err != nil {
		t.Fatal(err)
	}
	zol, err := c.Evaluate(context.Background(), Zolotov, models, opts)
	if err != nil {
		t.Fatal(err)
	}
	mac, err := c.Evaluate(context.Background(), Macromodel, models, opts)
	if err != nil {
		t.Fatal(err)
	}

	gp, ga := golden.Metrics.Peak, golden.Metrics.Area
	if gp < 0.2 || gp > 1.2 {
		t.Fatalf("golden peak %v V outside the noise-analysis regime", gp)
	}
	if golden.Metrics.Sign != -1 {
		t.Fatalf("golden glitch direction %v, want downward", golden.Metrics.Sign)
	}

	supErr := 100 * (sup.Metrics.Peak - gp) / gp
	macErr := 100 * (mac.Metrics.Peak - gp) / gp
	zolErr := 100 * (zol.Metrics.Peak - gp) / gp
	if supErr > -8 {
		t.Errorf("superposition peak error %+.1f%%, want a clear underestimate", supErr)
	}
	if math.Abs(macErr) > 6 {
		t.Errorf("macromodel peak error %+.1f%%, want within a few percent", macErr)
	}
	if math.Abs(zolErr) >= math.Abs(supErr) {
		t.Errorf("zolotov (%+.1f%%) should improve on superposition (%+.1f%%)", zolErr, supErr)
	}
	supAreaErr := 100 * (sup.Metrics.Area - ga) / ga
	macAreaErr := 100 * (mac.Metrics.Area - ga) / ga
	if supAreaErr > -15 {
		t.Errorf("superposition area error %+.1f%%, want a strong underestimate", supAreaErr)
	}
	if math.Abs(macAreaErr) > 6 {
		t.Errorf("macromodel area error %+.1f%%", macAreaErr)
	}
	// The dedicated engine must be clearly faster than the golden sim even
	// on this small cluster. Wall-clock on a loaded single-core runner is
	// noisy (a compile or GC burst can inflate one measurement), so the
	// ratio gets a few attempts before the test judges it. The threshold
	// is 2X, not the paper's ~20X: this cluster is deliberately tiny, and
	// the compile-once session engine (DESIGN.md §7) made the golden
	// reference itself ~1.7X faster, which narrows the gap here without
	// touching the paper-scale clusters (see BenchmarkSpeedupTable1/2).
	speedup := float64(golden.Elapsed) / float64(mac.Elapsed)
	for retry := 0; speedup < 2 && retry < 3; retry++ {
		g2, err := c.Evaluate(context.Background(), Golden, models, opts)
		if err != nil {
			t.Fatal(err)
		}
		m2, err := c.Evaluate(context.Background(), Macromodel, models, opts)
		if err != nil {
			t.Fatal(err)
		}
		speedup = float64(g2.Elapsed) / float64(m2.Elapsed)
	}
	if speedup < 2 {
		t.Errorf("speed-up only %.1fX on the fast cluster", speedup)
	}
}

func TestAlignWorstCaseAlignsPeaks(t *testing.T) {
	c := fastCluster(t, 2)
	models, err := c.BuildModels(context.Background(), ModelOptions{SkipProp: true, LoadCurve: charlib.LoadCurveOptions{NVin: 41, NVout: 41}})
	if err != nil {
		t.Fatal(err)
	}
	opts := fastEvalOptions()
	if err := c.AlignWorstCase(context.Background(), models, opts); err != nil {
		t.Fatal(err)
	}
	// After alignment the aligned macromodel peak must not be smaller than
	// the unaligned one (it is the worst case).
	aligned, err := c.Evaluate(context.Background(), Macromodel, models, opts)
	if err != nil {
		t.Fatal(err)
	}
	c2 := fastCluster(t, 2)
	// Deliberately misalign by pushing one aggressor 500 ps late.
	c2.Aggressors[1].Offset = 500e-12
	models2, err := c2.BuildModels(context.Background(), ModelOptions{SkipProp: true, LoadCurve: charlib.LoadCurveOptions{NVin: 41, NVout: 41}})
	if err != nil {
		t.Fatal(err)
	}
	misaligned, err := c2.Evaluate(context.Background(), Macromodel, models2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if aligned.Metrics.Peak < misaligned.Metrics.Peak-1e-6 {
		t.Errorf("aligned peak %v < misaligned peak %v", aligned.Metrics.Peak, misaligned.Metrics.Peak)
	}
}

func TestEvaluateRequiresModels(t *testing.T) {
	c := fastCluster(t, 1)
	for _, m := range []Method{Superposition, Zolotov, Macromodel} {
		if _, err := c.Evaluate(context.Background(), m, nil, fastEvalOptions()); err == nil {
			t.Errorf("%v with nil models accepted", m)
		}
	}
}

func TestMillerExtensionStaysAccurate(t *testing.T) {
	c := fastCluster(t, 1)
	models, err := c.BuildModels(context.Background(), ModelOptions{SkipProp: true, LoadCurve: charlib.LoadCurveOptions{NVin: 41, NVout: 41}})
	if err != nil {
		t.Fatal(err)
	}
	opts := fastEvalOptions()
	golden, err := c.Evaluate(context.Background(), Golden, models, opts)
	if err != nil {
		t.Fatal(err)
	}
	mopts := opts
	mopts.Miller = true
	mil, err := c.Evaluate(context.Background(), Macromodel, models, mopts)
	if err != nil {
		t.Fatal(err)
	}
	errP := 100 * (mil.Metrics.Peak - golden.Metrics.Peak) / golden.Metrics.Peak
	if math.Abs(errP) > 6 {
		t.Errorf("macromodel+Miller peak error %+.1f%%", errP)
	}
}

func TestEventHorizonCoversEvents(t *testing.T) {
	c := fastCluster(t, 1)
	c.Aggressors[0].Offset = 2e-9
	if got := c.EventHorizon(); got < 2e-9 {
		t.Errorf("EventHorizon = %v, does not cover shifted aggressor", got)
	}
}

func TestMethodString(t *testing.T) {
	if Golden.String() != "golden" || Macromodel.String() != "macromodel" ||
		Superposition.String() != "superposition" || Zolotov.String() != "zolotov" {
		t.Error("Method.String wrong")
	}
	if Method(99).String() == "" {
		t.Error("unknown method string empty")
	}
}
