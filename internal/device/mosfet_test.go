package device

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func nmos() *Params {
	return &Params{Kind: NMOS, W: 2e-6, L: 0.13e-6, KP: 340e-6, VT0: 0.35, Lambda: 0.15}
}

func pmos() *Params {
	return &Params{Kind: PMOS, W: 4e-6, L: 0.13e-6, KP: 90e-6, VT0: -0.38, Lambda: 0.2}
}

func TestCutoff(t *testing.T) {
	n := nmos()
	id, gd, gg, gs := n.Eval(1.2, 0.2, 0) // vgs below threshold
	if id != 0 || gd != 0 || gg != 0 || gs != 0 {
		t.Errorf("cutoff not zero: %v %v %v %v", id, gd, gg, gs)
	}
}

func TestSaturationCurrent(t *testing.T) {
	n := nmos()
	// vgs = 1.2, vds = 1.2 → saturation (vov = 0.85 < 1.2).
	id, _, _, _ := n.Eval(1.2, 1.2, 0)
	beta := n.Beta()
	want := 0.5 * beta * 0.85 * 0.85 * (1 + 0.15*1.2)
	if math.Abs(id-want) > 1e-15 {
		t.Errorf("id = %v, want %v", id, want)
	}
	if id <= 0 {
		t.Error("NMOS saturation current must be positive into drain")
	}
}

func TestTriodeCurrent(t *testing.T) {
	n := nmos()
	// vgs = 1.2, vds = 0.1 → triode.
	id, _, _, _ := n.Eval(0.1, 1.2, 0)
	beta := n.Beta()
	want := beta * (0.85*0.1 - 0.5*0.01) * (1 + 0.15*0.1)
	if math.Abs(id-want) > 1e-15 {
		t.Errorf("id = %v, want %v", id, want)
	}
}

func TestPMOSSigns(t *testing.T) {
	p := pmos()
	// Source at VDD, gate low, drain at 0.6: PMOS on, current flows out of
	// drain terminal into the circuit... current INTO drain is negative.
	id, _, _, _ := p.Eval(0.6, 0, 1.2)
	if id >= 0 {
		t.Errorf("PMOS on-current into drain = %v, want negative", id)
	}
	// Gate at VDD: off.
	id, _, _, _ = p.Eval(0.6, 1.2, 1.2)
	if id != 0 {
		t.Errorf("PMOS off current = %v", id)
	}
}

func TestSourceDrainSymmetry(t *testing.T) {
	n := nmos()
	// Swapping drain and source must negate the current.
	idF, _, _, _ := n.Eval(0.7, 1.2, 0.2)
	idR, _, _, _ := n.Eval(0.2, 1.2, 0.7)
	if math.Abs(idF+idR) > 1e-18 {
		t.Errorf("symmetry violated: %v vs %v", idF, idR)
	}
}

func TestCurrentContinuityAtRegionBoundary(t *testing.T) {
	n := nmos()
	// Across the triode/saturation boundary vds = vov the current must be
	// continuous.
	vgs := 1.0
	vov := vgs - n.VT0
	below, _, _, _ := n.Eval(vov-1e-9, vgs, 0)
	above, _, _, _ := n.Eval(vov+1e-9, vgs, 0)
	if math.Abs(below-above) > 1e-9*n.Beta() {
		t.Errorf("discontinuity at pinch-off: %v vs %v", below, above)
	}
}

// Property: analytic derivatives match central finite differences in all
// operating regions, for both polarities.
func TestDerivativesProperty(t *testing.T) {
	devs := []*Params{nmos(), pmos()}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := devs[rng.Intn(2)]
		vd := rng.Float64()*1.6 - 0.2
		vg := rng.Float64()*1.6 - 0.2
		vs := rng.Float64()*1.6 - 0.2
		const h = 1e-6
		id, gd, gg, gs := p.Eval(vd, vg, vs)
		_ = id
		num := func(f func(float64) float64) float64 {
			return (f(h) - f(-h)) / (2 * h)
		}
		nd := num(func(d float64) float64 { i, _, _, _ := p.Eval(vd+d, vg, vs); return i })
		ng := num(func(d float64) float64 { i, _, _, _ := p.Eval(vd, vg+d, vs); return i })
		ns := num(func(d float64) float64 { i, _, _, _ := p.Eval(vd, vg, vs+d); return i })
		// Tolerance scaled by beta; skip points that straddle a region
		// boundary within the FD stencil (the derivative jumps there).
		tol := 1e-3 * p.Beta()
		ok := math.Abs(nd-gd) < tol && math.Abs(ng-gg) < tol && math.Abs(ns-gs) < tol
		if !ok {
			// Boundary straddle? Accept if a tiny shift fixes agreement.
			vgs := vg - vs
			vds := vd - vs
			if p.Kind == PMOS {
				vgs, vds = -vgs, -vds
			}
			if vds < 0 {
				vds = -vds
				vgs = vg - vd
				if p.Kind == PMOS {
					vgs = -(vg - vd)
				}
			}
			vov := vgs - math.Abs(p.VT0)
			if math.Abs(vov) < 10*h || math.Abs(vds-vov) < 10*h {
				return true // derivative genuinely discontinuous here
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: NMOS current into the drain is monotonically non-decreasing in
// vg for fixed vd > vs — the physical behaviour the VCCS table relies on.
func TestMonotonicInGateProperty(t *testing.T) {
	n := nmos()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vd := 0.2 + rng.Float64()
		g1 := rng.Float64() * 1.4
		g2 := g1 + rng.Float64()*0.3
		i1, _, _, _ := n.Eval(vd, g1, 0)
		i2, _, _, _ := n.Eval(vd, g2, 0)
		return i2 >= i1-1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if NMOS.String() != "NMOS" || PMOS.String() != "PMOS" {
		t.Error("Kind.String wrong")
	}
}
