// Package device implements the transistor model shared by every engine in
// the repository: the golden transistor-level simulator, the DC
// pre-characterisation that produces the paper's load-curve tables (eq. 1),
// and the Thevenin fitting of aggressor drivers.
//
// The model is a source–drain-symmetric Level-1 (Shichman–Hodges) MOSFET
// with channel-length modulation. The paper's argument rests on first-order
// MOS non-linearity — the drain current saturating in Vds and switching
// on/off in Vgs — which Level-1 captures; see DESIGN.md §2 for why this is
// an adequate stand-in for the foundry BSIM models used with ELDO.
package device

import "math"

// Kind selects the transistor polarity.
type Kind int

// The two transistor polarities of the Level-1 model.
const (
	NMOS Kind = iota
	PMOS
)

// String returns "NMOS" or "PMOS".
func (k Kind) String() string {
	if k == PMOS {
		return "PMOS"
	}
	return "NMOS"
}

// Params holds the Level-1 model card together with the instance geometry.
// Voltages follow SPICE sign conventions: VT0 is positive for NMOS and
// negative for PMOS.
type Params struct {
	Kind   Kind
	W, L   float64 // channel width and length (m)
	KP     float64 // transconductance parameter µCox (A/V²)
	VT0    float64 // zero-bias threshold voltage (V)
	Lambda float64 // channel-length modulation (1/V)

	// CGD and CGS are the optional voltage-dependent gate-charge caps of
	// the NLMOS extension (tanh-shaped C(u), see CapParams). Zero values
	// mean "no nonlinear gate model": the cell builder then falls back to
	// the classic constant half-gate capacitors, so legacy netlists,
	// cache keys and result bytes are untouched.
	CGD, CGS CapParams
}

// Beta returns the device gain factor KP·W/L.
func (p *Params) Beta() float64 { return p.KP * p.W / p.L }

// NonlinearCaps reports whether the instance carries a voltage-dependent
// gate-charge model on either gate capacitor.
func (p *Params) NonlinearCaps() bool { return !p.CGD.IsZero() || !p.CGS.IsZero() }

// CapParams is the tanh-shaped voltage-dependent capacitor of the NLMOS
// gate-charge model:
//
//	C(u)  = Cp + Co·(1 + tanh(P0 + P1·u))
//	C'(u) = Co·P1 / cosh²(P0 + P1·u)
//
// u is the branch voltage across the capacitor (gate minus drain for C_GD,
// gate minus source for C_GS). Cp is the constant pedestal, Co the
// modulation depth (the capacitance swings between Cp and Cp+2·Co), and
// P0/P1 place and scale the transition along the voltage axis. Co = 0
// degenerates to a constant capacitor of value Cp and is compiled as one —
// the zero-modulation reduction that keeps constant-cap programs on the
// precomputed stamp path bit-for-bit.
type CapParams struct {
	Cp float64 // constant pedestal capacitance (F)
	Co float64 // modulation depth (F); 0 means constant
	P0 float64 // transition offset (dimensionless)
	P1 float64 // transition slope (1/V)
}

// IsZero reports whether the cap model is entirely absent (all fields zero),
// as opposed to a constant capacitor (Co = 0 but Cp > 0).
func (cp CapParams) IsZero() bool { return cp == CapParams{} }

// Eval returns the capacitance C(u) and its analytic derivative dC/du at
// branch voltage u.
func (cp CapParams) Eval(u float64) (c, dc float64) {
	if cp.Co == 0 {
		return cp.Cp, 0
	}
	arg := cp.P0 + cp.P1*u
	c = cp.Cp + cp.Co*(1+math.Tanh(arg))
	ch := math.Cosh(arg)
	dc = cp.Co * cp.P1 / (ch * ch)
	return c, dc
}

// Charge returns the stored charge Q(u) = ∫₀ᵘ C(v) dv, the analytic
// integral of Eval's capacitance. Used by the charge-conservation test
// battery to check ∮i dt against ΔQ on a charge/discharge transient.
func (cp CapParams) Charge(u float64) float64 {
	if cp.Co == 0 {
		return cp.Cp * u
	}
	// ∫ tanh(P0+P1·v) dv = ln(cosh(P0+P1·v))/P1.
	lc := func(v float64) float64 {
		arg := cp.P0 + cp.P1*v
		// ln(cosh x) overflows for |x| ≳ 710; use the asymptote |x| − ln 2.
		if math.Abs(arg) > 30 {
			return math.Abs(arg) - math.Ln2
		}
		return math.Log(math.Cosh(arg))
	}
	return cp.Cp*u + cp.Co*(u+(lc(u)-lc(0))/cp.P1)
}

// Eval computes the drain current and its partial derivatives for the given
// terminal node voltages. The returned id is the current flowing into the
// drain terminal; gd, gg, gs are ∂id/∂vd, ∂id/∂vg and ∂id/∂vs.
//
// The model is evaluated symmetrically: when vd < vs (NMOS) the source and
// drain roles are exchanged so the equations always see vds ≥ 0, which is
// essential for pass-gate-like conditions during noise events.
func (p *Params) Eval(vd, vg, vs float64) (id, gd, gg, gs float64) {
	if p.Kind == PMOS {
		// A PMOS is an NMOS in a mirrored voltage frame:
		// id_p(vd,vg,vs) = -id_n(-vd,-vg,-vs). The chain rule through the
		// two sign flips leaves the conductances unchanged.
		n := Params{Kind: NMOS, W: p.W, L: p.L, KP: p.KP, VT0: -p.VT0, Lambda: p.Lambda}
		in, gdn, ggn, gsn := n.Eval(-vd, -vg, -vs)
		return -in, gdn, ggn, gsn
	}
	if vd >= vs {
		ids, gm, gds := level1(p, vg-vs, vd-vs)
		// id = ids(vgs, vds); vgs = vg-vs, vds = vd-vs.
		return ids, gds, gm, -(gm + gds)
	}
	// Reverse mode: the physical source is the d terminal. The forward
	// current flows into the s node, so the drain-terminal current is its
	// negative.
	ids, gm, gds := level1(p, vg-vd, vs-vd)
	// id = -ids(vg-vd, vs-vd)
	gd = gm + gds
	gg = -gm
	gs = -gds
	return -ids, gd, gg, gs
}

// level1 evaluates the NMOS Level-1 equations for vds ≥ 0, returning the
// drain-source current with its derivatives gm = ∂i/∂vgs and gds = ∂i/∂vds.
func level1(p *Params, vgs, vds float64) (ids, gm, gds float64) {
	vov := vgs - p.VT0
	if vov <= 0 {
		// Cut-off. The engine's gmin keeps the Jacobian non-singular.
		return 0, 0, 0
	}
	beta := p.Beta()
	clm := 1 + p.Lambda*vds
	if vds < vov {
		// Triode region.
		ids = beta * (vov*vds - 0.5*vds*vds) * clm
		gm = beta * vds * clm
		gds = beta*(vov-vds)*clm + beta*(vov*vds-0.5*vds*vds)*p.Lambda
		return ids, gm, gds
	}
	// Saturation region.
	ids = 0.5 * beta * vov * vov * clm
	gm = beta * vov * clm
	gds = 0.5 * beta * vov * vov * p.Lambda
	return ids, gm, gds
}
