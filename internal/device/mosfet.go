// Package device implements the transistor model shared by every engine in
// the repository: the golden transistor-level simulator, the DC
// pre-characterisation that produces the paper's load-curve tables (eq. 1),
// and the Thevenin fitting of aggressor drivers.
//
// The model is a source–drain-symmetric Level-1 (Shichman–Hodges) MOSFET
// with channel-length modulation. The paper's argument rests on first-order
// MOS non-linearity — the drain current saturating in Vds and switching
// on/off in Vgs — which Level-1 captures; see DESIGN.md §2 for why this is
// an adequate stand-in for the foundry BSIM models used with ELDO.
package device

// Kind selects the transistor polarity.
type Kind int

// The two transistor polarities of the Level-1 model.
const (
	NMOS Kind = iota
	PMOS
)

// String returns "NMOS" or "PMOS".
func (k Kind) String() string {
	if k == PMOS {
		return "PMOS"
	}
	return "NMOS"
}

// Params holds the Level-1 model card together with the instance geometry.
// Voltages follow SPICE sign conventions: VT0 is positive for NMOS and
// negative for PMOS.
type Params struct {
	Kind   Kind
	W, L   float64 // channel width and length (m)
	KP     float64 // transconductance parameter µCox (A/V²)
	VT0    float64 // zero-bias threshold voltage (V)
	Lambda float64 // channel-length modulation (1/V)
}

// Beta returns the device gain factor KP·W/L.
func (p *Params) Beta() float64 { return p.KP * p.W / p.L }

// Eval computes the drain current and its partial derivatives for the given
// terminal node voltages. The returned id is the current flowing into the
// drain terminal; gd, gg, gs are ∂id/∂vd, ∂id/∂vg and ∂id/∂vs.
//
// The model is evaluated symmetrically: when vd < vs (NMOS) the source and
// drain roles are exchanged so the equations always see vds ≥ 0, which is
// essential for pass-gate-like conditions during noise events.
func (p *Params) Eval(vd, vg, vs float64) (id, gd, gg, gs float64) {
	if p.Kind == PMOS {
		// A PMOS is an NMOS in a mirrored voltage frame:
		// id_p(vd,vg,vs) = -id_n(-vd,-vg,-vs). The chain rule through the
		// two sign flips leaves the conductances unchanged.
		n := Params{Kind: NMOS, W: p.W, L: p.L, KP: p.KP, VT0: -p.VT0, Lambda: p.Lambda}
		in, gdn, ggn, gsn := n.Eval(-vd, -vg, -vs)
		return -in, gdn, ggn, gsn
	}
	if vd >= vs {
		ids, gm, gds := level1(p, vg-vs, vd-vs)
		// id = ids(vgs, vds); vgs = vg-vs, vds = vd-vs.
		return ids, gds, gm, -(gm + gds)
	}
	// Reverse mode: the physical source is the d terminal. The forward
	// current flows into the s node, so the drain-terminal current is its
	// negative.
	ids, gm, gds := level1(p, vg-vd, vs-vd)
	// id = -ids(vg-vd, vs-vd)
	gd = gm + gds
	gg = -gm
	gs = -gds
	return -ids, gd, gg, gs
}

// level1 evaluates the NMOS Level-1 equations for vds ≥ 0, returning the
// drain-source current with its derivatives gm = ∂i/∂vgs and gds = ∂i/∂vds.
func level1(p *Params, vgs, vds float64) (ids, gm, gds float64) {
	vov := vgs - p.VT0
	if vov <= 0 {
		// Cut-off. The engine's gmin keeps the Jacobian non-singular.
		return 0, 0, 0
	}
	beta := p.Beta()
	clm := 1 + p.Lambda*vds
	if vds < vov {
		// Triode region.
		ids = beta * (vov*vds - 0.5*vds*vds) * clm
		gm = beta * vds * clm
		gds = beta*(vov-vds)*clm + beta*(vov*vds-0.5*vds*vds)*p.Lambda
		return ids, gm, gds
	}
	// Saturation region.
	ids = 0.5 * beta * vov * vov * clm
	gm = beta * vov * clm
	gds = 0.5 * beta * vov * vov * p.Lambda
	return ids, gm, gds
}
