package device

import (
	"math"
	"math/rand"
	"testing"
)

// nlcap is a representative NLMOS gate-charge model: a 1 fF pedestal with
// 1 fF of modulation, transitioning around u = 0.35 V with a 2/V slope —
// the shape the cell builder derives for an NMOS C_GS at cmos130 scale.
func nlcap() CapParams {
	return CapParams{Cp: 1e-15, Co: 1e-15, P0: -0.7, P1: 2.0}
}

// TestCapParamsDerivativeFD holds the analytic dC/du of Eval to a central
// finite difference of C(u) across the transition region and both tanh
// saturation tails, at 1e-6 relative tolerance (the FD truncation error is
// O(h²·C”'), far below that for these scales).
func TestCapParamsDerivativeFD(t *testing.T) {
	cases := []struct {
		name string
		cp   CapParams
	}{
		{"nominal", nlcap()},
		{"steep", CapParams{Cp: 0.5e-15, Co: 2e-15, P0: 1.0, P1: -6.0}},
		{"shallow", CapParams{Cp: 2e-15, Co: 0.3e-15, P0: 0.2, P1: 0.8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Sweep well past the transition so both saturated tails
			// (|tanh| → 1, dC → 0) are exercised, not just the active region.
			for u := -5.0; u <= 5.0; u += 0.05 {
				_, dc := tc.cp.Eval(u)
				const h = 1e-5
				cp1, _ := tc.cp.Eval(u + h)
				cm1, _ := tc.cp.Eval(u - h)
				fd := (cp1 - cm1) / (2 * h)
				scale := math.Abs(tc.cp.Co * tc.cp.P1) // peak |dC/du|
				if d := math.Abs(dc - fd); d > 1e-6*scale {
					t.Fatalf("u=%.2f: analytic dC/du %.9g, FD %.9g (|Δ| %.3g)", u, dc, fd, d)
				}
			}
		})
	}
}

// TestCapParamsChargeConsistency holds Charge to its defining property
// dQ/du = C(u): the analytic integral and the analytic capacitance must
// agree through a central finite difference of Q, including deep in both
// tails where Charge switches to the ln-cosh asymptote.
func TestCapParamsChargeConsistency(t *testing.T) {
	cp := nlcap()
	for _, u := range []float64{-40, -3, -0.8, 0, 0.35, 1.2, 3, 40} {
		c, _ := cp.Eval(u)
		const h = 1e-5
		fd := (cp.Charge(u+h) - cp.Charge(u-h)) / (2 * h)
		if d := math.Abs(fd - c); d > 1e-6*(cp.Cp+2*cp.Co) {
			t.Errorf("u=%g: dQ/du (FD) = %.9g, C(u) = %.9g (|Δ| %.3g)", u, fd, c, d)
		}
	}
	if q := cp.Charge(0); q != 0 {
		t.Errorf("Charge(0) = %g, want exactly 0", q)
	}
}

// TestCapParamsBounds pins the physical envelope: C(u) swings monotonically
// between Cp (u deep below the transition for P1 > 0) and Cp + 2·Co, and
// the tanh midpoint sits exactly at C = Cp + Co.
func TestCapParamsBounds(t *testing.T) {
	cp := nlcap()
	lo, hi := cp.Cp, cp.Cp+2*cp.Co
	prev := math.Inf(-1)
	for u := -8.0; u <= 8.0; u += 0.1 {
		c, _ := cp.Eval(u)
		if c < lo-1e-30 || c > hi+1e-30 {
			t.Fatalf("u=%.1f: C=%g outside [%g, %g]", u, c, lo, hi)
		}
		if c < prev {
			t.Fatalf("u=%.1f: C not monotone for P1 > 0", u)
		}
		prev = c
	}
	mid, _ := cp.Eval(-cp.P0 / cp.P1)
	if d := math.Abs(mid - (cp.Cp + cp.Co)); d > 1e-30 {
		t.Errorf("midpoint C = %g, want Cp+Co = %g", mid, cp.Cp+cp.Co)
	}
}

// TestCapParamsZeroModulation pins the Co = 0 degenerate form the compiler's
// reduction relies on: a constant capacitance Cp with exactly zero
// derivative and the exactly linear charge Cp·u, regardless of P0/P1.
func TestCapParamsZeroModulation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		cp := CapParams{Cp: rng.Float64() * 1e-14, P0: rng.NormFloat64(), P1: rng.NormFloat64()}
		u := rng.NormFloat64() * 3
		c, dc := cp.Eval(u)
		if c != cp.Cp || dc != 0 {
			t.Fatalf("Co=0: Eval(%g) = (%g, %g), want (%g, 0)", u, c, dc, cp.Cp)
		}
		if q := cp.Charge(u); q != cp.Cp*u {
			t.Fatalf("Co=0: Charge(%g) = %g, want %g", u, q, cp.Cp*u)
		}
	}
}

// TestCapParamsIsZero distinguishes "no model" (all-zero, IsZero true) from
// a constant capacitor spelled through the nonlinear form (Cp > 0, Co = 0).
func TestCapParamsIsZero(t *testing.T) {
	if !(CapParams{}).IsZero() {
		t.Error("zero value must report IsZero")
	}
	if (CapParams{Cp: 1e-15}).IsZero() {
		t.Error("constant-cap form must not report IsZero")
	}
	p := Params{Kind: NMOS, W: 1e-6, L: 0.13e-6, KP: 300e-6, VT0: 0.35}
	if p.NonlinearCaps() {
		t.Error("bare Level-1 card must not report NonlinearCaps")
	}
	p.CGS = nlcap()
	if !p.NonlinearCaps() {
		t.Error("card with a CGS model must report NonlinearCaps")
	}
}
