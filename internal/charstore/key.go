// Package charstore is the persistent, versioned, content-addressed tier
// of the characterisation cache: the on-disk library of load curves,
// propagation tables, NRC curves and Thevenin driver fits that lets every
// snacheck/noisetab/libchar invocation reuse the transistor-level sweeps of
// all previous runs — exactly as delay-model characterisation is reused
// across runs in a production sign-off flow.
//
// Keys are content hashes over everything the artefact's numbers depend
// on: the technology card's device parameters, the cell's full transistor
// netlist (topology, sizing, parasitics), the characterisation state and
// pin, the sweep-grid fingerprint, and a model version. Editing a tech
// card, resizing a cell, changing a sweep grid or bumping ModelVersion
// therefore silently invalidates exactly the affected entries: their keys
// no longer match, the store misses, and the caller recharacterises.
//
// See DESIGN.md §6 for the layering and invalidation rules.
package charstore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"stanoise/internal/cell"
	"stanoise/internal/circuit"
	"stanoise/internal/tech"
)

// ModelVersion names the characterisation model generation. Bump it when
// the *meaning* of stored numbers changes — a device-model fix, a different
// sweep semantics — and every existing entry becomes unreachable (its key
// embeds the old version), so stale physics can never leak into an
// analysis. Orphaned entries are reclaimed by Store.GC.
const ModelVersion = "1"

// keyScheme versions the key-derivation recipe itself, separately from the
// physics, so a change to how keys are built also invalidates cleanly.
const keyScheme = "stanoise-charstore-key/v1"

// TechFingerprint renders the device-relevant fields of a technology card
// deterministically. Wire parasitics are deliberately excluded: they shape
// interconnect models, not cell characterisation, and including them would
// invalidate every cell artefact on a routing-stack edit.
//
// A card derived for an operating corner (tech.Corner.Apply) additionally
// renders the corner fingerprint, so per-corner artefacts are content-
// addressed by both the scaled parameters *and* the corner identity — two
// corners that happened to scale to the same numbers still never alias.
// Nominal cards render exactly the pre-corner text, keeping every existing
// store entry reachable (asserted by TestNominalCornerKeysBitStable).
func TechFingerprint(t *tech.Tech) string {
	mos := func(m tech.MOSParams) string {
		fp := fmt.Sprintf("KP=%.17g VT0=%.17g LAMBDA=%.17g CG=%.17g COV=%.17g CJ=%.17g",
			m.KP, m.VT0, m.Lambda, m.CGatePerWL, m.COverlap, m.CJunction)
		// The nonlinear gate-charge segment renders only on cards that
		// carry the model (tech.Tech.WithNonlinearCaps), mirroring the
		// Corner segment below: constant-cap cards keep the exact
		// pre-nlcap text and every existing store entry stays reachable.
		if m.CNLFrac != 0 {
			fp += fmt.Sprintf(" NLCAP{frac=%.17g gd=%.17g/%.17g gs=%.17g/%.17g}",
				m.CNLFrac, m.CNLGDP0, m.CNLGDP1, m.CNLGSP0, m.CNLGSP1)
		}
		return fp
	}
	fp := fmt.Sprintf("tech=%s VDD=%.17g Lmin=%.17g WUnit=%.17g PNRatio=%.17g NMOS{%s} PMOS{%s}",
		t.Name, t.VDD, t.Lmin, t.WUnit, t.PNRatio, mos(t.NMOS), mos(t.PMOS))
	if t.Corner != nil {
		fp += " Corner{" + t.Corner.Fingerprint() + "}"
	}
	return fp
}

// CellNetlist renders the cell's transistor-level netlist with canonical
// node names — the content the characterisation engine actually simulates.
// Any change to the cell template, drive sizing, device parameters or
// parasitic derivation changes this text and therefore every derived key.
func CellNetlist(c *cell.Cell) (string, error) {
	ckt := circuit.New()
	pins := map[string]string{}
	for _, in := range c.Inputs() {
		pins[in] = "in_" + in
	}
	if err := c.Build(ckt, "dut", pins, "out", "vdd"); err != nil {
		return "", err
	}
	var b strings.Builder
	if err := ckt.Write(&b, ""); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Key derives the content address of one artefact under the current
// ModelVersion. The same physical inputs always map to the same key, on
// any machine, which is what makes exported stores portable.
func Key(kind string, cl *cell.Cell, st cell.State, pin, optsFP string) (string, error) {
	netlist, err := CellNetlist(cl)
	if err != nil {
		return "", fmt.Errorf("charstore: keying %s: %w", cl.Name(), err)
	}
	return keyFor(ModelVersion, kind, TechFingerprint(cl.Tech), netlist, st.String(), pin, optsFP), nil
}

// keyFor is the raw recipe, split out so tests can prove that a model
// version bump changes every key.
func keyFor(version, kind, techFP, netlist, state, pin, optsFP string) string {
	h := sha256.New()
	// Length-prefix every field so no concatenation of adjacent fields can
	// collide with a different split of the same bytes.
	for _, f := range []string{keyScheme, version, kind, techFP, netlist, state, pin, optsFP} {
		fmt.Fprintf(h, "%d:", len(f))
		h.Write([]byte(f))
	}
	return hex.EncodeToString(h.Sum(nil))
}
