package charstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"stanoise/internal/cell"
	"stanoise/internal/charlib"
	"stanoise/internal/tech"
)

// testCurve builds a small hand-made load curve so store tests never pay
// for real characterisation.
func testCurve(cl *cell.Cell) *charlib.LoadCurve {
	return &charlib.LoadCurve{
		CellName: cl.Name(), State: "A=0", NoisyPin: "A",
		VinMin: -0.24, VinMax: 1.44, VoutMin: -0.24, VoutMax: 1.44,
		NVin: 2, NVout: 2,
		I: []float64{1e-3, 2e-3, -3e-3, 4e-3},
	}
}

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStorePutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	cl := cell.MustNew(tech.Tech130(), "INV", 1)
	st := cell.State{"A": false}
	lc := testCurve(cl)

	if _, ok := s.Get(KindLoadCurve, cl, st, "A", "fp1"); ok {
		t.Fatal("empty store reported a hit")
	}
	if err := s.Put(KindLoadCurve, cl, st, "A", "fp1", lc); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(KindLoadCurve, cl, st, "A", "fp1")
	if !ok {
		t.Fatal("stored entry missed")
	}
	if !reflect.DeepEqual(got, lc) {
		t.Errorf("round trip changed the value: %#v", got)
	}
	// Different options fingerprint, pin or kind must miss.
	if _, ok := s.Get(KindLoadCurve, cl, st, "A", "fp2"); ok {
		t.Error("different options fingerprint hit")
	}
	if _, ok := s.Get(KindPropTable, cl, st, "A", "fp1"); ok {
		t.Error("different kind hit")
	}
	// A different drive strength changes the netlist and therefore the key.
	if _, ok := s.Get(KindLoadCurve, cell.MustNew(tech.Tech130(), "INV", 2), st, "A", "fp1"); ok {
		t.Error("different drive strength hit")
	}
	// A different tech card changes the key too.
	if _, ok := s.Get(KindLoadCurve, cell.MustNew(tech.Tech90(), "INV", 1), st, "A", "fp1"); ok {
		t.Error("different tech card hit")
	}
	// A second store handle on the same directory sees the entry — the
	// cross-process warm-start path.
	s2 := openStore(t, dir)
	if _, ok := s2.Get(KindLoadCurve, cl, st, "A", "fp1"); !ok {
		t.Error("second store handle missed the entry")
	}
	if s2.Len() != 1 {
		t.Errorf("second handle indexed %d entries, want 1", s2.Len())
	}
}

// entryPath locates the single entry file of a one-entry store.
func entryPath(t *testing.T, s *Store) string {
	t.Helper()
	var path string
	s.walkObjects(func(_, p string) bool { path = p; return false })
	if path == "" {
		t.Fatal("no entry file found")
	}
	return path
}

func TestStoreTruncatedEntryFallsBack(t *testing.T) {
	s := openStore(t, t.TempDir())
	cl := cell.MustNew(tech.Tech130(), "INV", 1)
	st := cell.State{"A": false}
	if err := s.Put(KindLoadCurve, cl, st, "A", "fp", testCurve(cl)); err != nil {
		t.Fatal(err)
	}
	path := entryPath(t, s)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindLoadCurve, cl, st, "A", "fp"); ok {
		t.Fatal("truncated entry was served")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("truncated entry file was not removed")
	}
	// The store keeps working: re-put and read back.
	if err := s.Put(KindLoadCurve, cl, st, "A", "fp", testCurve(cl)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindLoadCurve, cl, st, "A", "fp"); !ok {
		t.Error("store did not recover after re-put")
	}
}

func TestStoreCorruptedEntryFallsBack(t *testing.T) {
	s := openStore(t, t.TempDir())
	cl := cell.MustNew(tech.Tech130(), "INV", 1)
	st := cell.State{"A": false}
	if err := s.Put(KindLoadCurve, cl, st, "A", "fp", testCurve(cl)); err != nil {
		t.Fatal(err)
	}
	path := entryPath(t, s)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindLoadCurve, cl, st, "A", "fp"); ok {
		t.Fatal("corrupted entry was served")
	}
}

func TestStoreModelVersionMismatchFallsBack(t *testing.T) {
	s := openStore(t, t.TempDir())
	cl := cell.MustNew(tech.Tech130(), "INV", 1)
	st := cell.State{"A": false}
	lc := testCurve(cl)
	tag, payload, _ := encodeArtefact(lc)

	// Simulate an entry written by a previous model generation: same key
	// recipe, older model version in the container.
	key, err := Key(KindLoadCurve, cl, st, "A", "fp")
	if err != nil {
		t.Fatal(err)
	}
	meta := IndexEntry{Kind: KindLoadCurve, Model: "0-ancient"}
	if err := s.putRaw(key, tag, "0-ancient", payload, meta); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(KindLoadCurve, cl, st, "A", "fp"); ok {
		t.Fatal("entry from another model generation was served")
	}
	// GC reclaims it.
	removed, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Errorf("GC removed %d entries, want 1", removed)
	}
	if s.Len() != 0 {
		t.Errorf("store still indexes %d entries after GC", s.Len())
	}
}

func TestStoreCorruptedIndexRebuilds(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	cl := cell.MustNew(tech.Tech130(), "INV", 1)
	st := cell.State{"A": false}
	if err := s.Put(KindLoadCurve, cl, st, "A", "fp", testCurve(cl)); err != nil {
		t.Fatal(err)
	}
	for _, junk := range []string{"{definitely not json", `{"schema": 999, "entries": {}}`} {
		if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte(junk), 0o644); err != nil {
			t.Fatal(err)
		}
		s2 := openStore(t, dir) // must rebuild, not fail
		if _, ok := s2.Get(KindLoadCurve, cl, st, "A", "fp"); !ok {
			t.Fatalf("entry lost after index rebuild from %q", junk[:10])
		}
		if s2.Len() != 1 {
			t.Errorf("rebuilt index has %d entries, want 1", s2.Len())
		}
		es := s2.Entries()
		if len(es) != 1 || es[0].Kind != KindLoadCurve || es[0].Cell != "INV_X1" {
			t.Errorf("rebuilt metadata: %+v", es)
		}
	}
	// A deleted index with surviving entries also heals.
	if err := os.Remove(filepath.Join(dir, "index.json")); err != nil {
		t.Fatal(err)
	}
	if s3 := openStore(t, dir); s3.Len() != 1 {
		t.Error("missing index with existing entries was not rebuilt")
	}
}

// TestStoreKindTagTamperFallsBack: the kind tag sits outside the payload
// checksum, so a flipped tag must read as a damaged miss — never as a
// wrong-typed value that panics the caller's type assertion.
func TestStoreKindTagTamperFallsBack(t *testing.T) {
	s := openStore(t, t.TempDir())
	cl := cell.MustNew(tech.Tech130(), "INV", 1)
	st := cell.State{"A": false}
	if err := s.Put(KindLoadCurve, cl, st, "A", "fp", testCurve(cl)); err != nil {
		t.Fatal(err)
	}
	path := entryPath(t, s)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[6] = kindThevenin // a 5-float driver payload would even decode cleanly
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(KindLoadCurve, cl, st, "A", "fp"); ok {
		t.Fatalf("tampered kind tag served a %T", v)
	}
}

// TestImportRejectsCorruptedPayloads: a bit-flip inside a bundle payload
// must lose that entry on import, not re-checksum it as valid.
func TestImportRejectsCorruptedPayloads(t *testing.T) {
	src := openStore(t, t.TempDir())
	cl := cell.MustNew(tech.Tech130(), "INV", 1)
	st := cell.State{"A": false}
	if err := src.Put(KindLoadCurve, cl, st, "A", "fp", testCurve(cl)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var b struct {
		Schema  int    `json:"schema"`
		Model   string `json:"model_version"`
		Entries []struct {
			Key     string `json:"key"`
			Kind    string `json:"kind"`
			Payload []byte `json:"payload"`
			Sum     string `json:"sum"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(buf.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	// Flip one float bit: still shape-valid, numerically wrong.
	b.Entries[0].Payload[len(b.Entries[0].Payload)-1] ^= 0x01
	tampered, err := json.Marshal(&b)
	if err != nil {
		t.Fatal(err)
	}
	dst := openStore(t, t.TempDir())
	n, err := dst.Import(bytes.NewReader(tampered))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("imported %d corrupted entries, want 0", n)
	}
	if _, ok := dst.Get(KindLoadCurve, cl, st, "A", "fp"); ok {
		t.Error("corrupted bundle entry is being served")
	}
}

// TestImportRejectsTraversalKeys: bundle keys become file paths, so a
// hostile bundle with "../" keys must not write outside the store.
func TestImportRejectsTraversalKeys(t *testing.T) {
	outside := t.TempDir()
	storeDir := filepath.Join(outside, "store")
	s := openStore(t, storeDir)
	cl := cell.MustNew(tech.Tech130(), "INV", 1)
	_, payload, _ := encodeArtefact(testCurve(cl))
	sum := jsonSum(payload)
	bundle := `{"schema":1,"model_version":"` + ModelVersion + `","entries":[` +
		`{"key":"../../escape","kind":"lc","payload":"` + jsonB64(payload) + `","sum":"` + sum + `"}]}`
	n, err := s.Import(strings.NewReader(bundle))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("imported %d traversal-keyed entries, want 0", n)
	}
	if _, err := os.Stat(filepath.Join(outside, "escape")); !os.IsNotExist(err) {
		t.Fatal("traversal key escaped the store directory")
	}
	// Non-hex keys are equally refused at the read side.
	if _, ok := s.GetByKey("../../escape"); ok {
		t.Error("traversal key readable")
	}
}

// TestStoreIgnoresTempFiles: another process's in-flight temp files must
// be invisible to Rebuild/GC/Export — never indexed, never removed (a
// removal would break that process's rename).
func TestStoreIgnoresTempFiles(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	cl := cell.MustNew(tech.Tech130(), "INV", 1)
	st := cell.State{"A": false}
	if err := s.Put(KindLoadCurve, cl, st, "A", "fp", testCurve(cl)); err != nil {
		t.Fatal(err)
	}
	shard := filepath.Dir(entryPath(t, s))
	tmp := filepath.Join(shard, ".tmp-inflight")
	if err := os.WriteFile(tmp, []byte("partial write"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := s.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Errorf("rebuild indexed %d entries, want 1 (temp file counted?)", s.Len())
	}
	if _, err := s.GC(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Errorf("in-flight temp file was removed: %v", err)
	}
	var bundle bytes.Buffer
	if err := s.Export(&bundle); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(bundle.String(), ".tmp-") {
		t.Error("export shipped a temp file")
	}
}

// TestStoreConcurrentWriters hammers one key (and a set of distinct keys)
// from many goroutines across two independent store handles — the
// same-directory multi-process scenario. Every write must land whole: the
// final Get must validate and decode.
func TestStoreConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	s1 := openStore(t, dir)
	s2 := openStore(t, dir)
	tt := tech.Tech130()
	st := cell.State{"A": false}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		for _, s := range []*Store{s1, s2} {
			wg.Add(1)
			go func(s *Store, g int) {
				defer wg.Done()
				cl := cell.MustNew(tt, "INV", 1)
				for i := 0; i < 10; i++ {
					// Same key every time (content-addressed: same bytes).
					if err := s.Put(KindLoadCurve, cl, st, "A", "shared", testCurve(cl)); err != nil {
						t.Errorf("put shared: %v", err)
						return
					}
					// And one key unique to the goroutine.
					own := cell.MustNew(tt, "INV", 1+g%4)
					if err := s.Put(KindLoadCurve, own, st, "A", "own", testCurve(own)); err != nil {
						t.Errorf("put own: %v", err)
						return
					}
					if _, ok := s.Get(KindLoadCurve, cl, st, "A", "shared"); !ok {
						t.Error("shared key missed mid-race")
						return
					}
				}
			}(s, g)
		}
	}
	wg.Wait()

	fresh := openStore(t, dir)
	cl := cell.MustNew(tt, "INV", 1)
	if _, ok := fresh.Get(KindLoadCurve, cl, st, "A", "shared"); !ok {
		t.Error("shared entry unreadable after concurrent writes")
	}
	if n := fresh.Len(); n != 5 { // "shared" + 4 distinct drives under "own"
		t.Errorf("store holds %d entries, want 5", n)
	}
}

func TestStoreExportImport(t *testing.T) {
	src := openStore(t, t.TempDir())
	tt := tech.Tech130()
	st := cell.State{"A": false}
	cl1 := cell.MustNew(tt, "INV", 1)
	cl2 := cell.MustNew(tt, "INV", 2)
	if err := src.Put(KindLoadCurve, cl1, st, "A", "fp", testCurve(cl1)); err != nil {
		t.Fatal(err)
	}
	if err := src.Put(KindLoadCurve, cl2, st, "A", "fp", testCurve(cl2)); err != nil {
		t.Fatal(err)
	}

	var bundle bytes.Buffer
	if err := src.Export(&bundle); err != nil {
		t.Fatal(err)
	}

	dst := openStore(t, t.TempDir())
	n, err := dst.Import(bytes.NewReader(bundle.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("imported %d entries, want 2", n)
	}
	got, ok := dst.Get(KindLoadCurve, cl1, st, "A", "fp")
	if !ok {
		t.Fatal("imported entry missed")
	}
	if !reflect.DeepEqual(got, testCurve(cl1)) {
		t.Error("imported entry decoded differently")
	}

	// A bundle from another model generation is refused.
	wrong := bytes.Replace(bundle.Bytes(),
		[]byte(`"model_version": "`+ModelVersion+`"`),
		[]byte(`"model_version": "0-ancient"`), 1)
	if _, err := openStore(t, t.TempDir()).Import(bytes.NewReader(wrong)); err == nil {
		t.Error("bundle from another model version imported without error")
	}
	// Garbage is an error, not a panic.
	if _, err := dst.Import(bytes.NewReader([]byte("not a bundle"))); err == nil {
		t.Error("garbage bundle imported without error")
	}
}

// TestKeyVersioning proves the invalidation rules: a model-version bump,
// or any change to tech card, netlist, state, pin or options, changes the
// key.
func TestKeyVersioning(t *testing.T) {
	base := keyFor("1", "lc", "techFP", "netlist", "A=0", "A", "opts")
	variants := map[string]string{
		"model version": keyFor("2", "lc", "techFP", "netlist", "A=0", "A", "opts"),
		"kind":          keyFor("1", "nrc", "techFP", "netlist", "A=0", "A", "opts"),
		"tech card":     keyFor("1", "lc", "techFP'", "netlist", "A=0", "A", "opts"),
		"netlist":       keyFor("1", "lc", "techFP", "netlist'", "A=0", "A", "opts"),
		"state":         keyFor("1", "lc", "techFP", "netlist", "A=1", "A", "opts"),
		"pin":           keyFor("1", "lc", "techFP", "netlist", "A=0", "B", "opts"),
		"options":       keyFor("1", "lc", "techFP", "netlist", "A=0", "A", "opts'"),
	}
	for what, k := range variants {
		if k == base {
			t.Errorf("changing the %s did not change the key", what)
		}
	}
	// Length-prefixing means shifting bytes between adjacent fields cannot
	// collide.
	if keyFor("1", "lc", "techFPn", "etlist", "A=0", "A", "opts") == base {
		t.Error("field-boundary shift collided")
	}
	if keyFor("1", "lc", "techFP", "netlist", "A=0", "A", "opts") != base {
		t.Error("key derivation is not deterministic")
	}
}

// TestKeyTracksTechCardEdit proves content addressing end-to-end: editing
// one device parameter of a tech card changes every key derived from it.
func TestKeyTracksTechCardEdit(t *testing.T) {
	t1 := tech.Tech130()
	t2 := tech.Tech130()
	t2.NMOS.VT0 += 0.01
	st := cell.State{"A": false}
	k1, err := Key(KindLoadCurve, cell.MustNew(t1, "INV", 1), st, "A", "fp")
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Key(KindLoadCurve, cell.MustNew(t2, "INV", 1), st, "A", "fp")
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Error("editing the tech card did not change the key")
	}
}

// jsonB64/jsonSum build hand-crafted bundle entries for hostile-input
// tests.
func jsonB64(b []byte) string { return base64.StdEncoding.EncodeToString(b) }

func jsonSum(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
