package charstore

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"stanoise/internal/cell"
)

// Build leases single-flight characterisation *across processes*: N
// server processes sharing one cache directory agree, per content address,
// on which of them builds the artefact while the others wait and then read
// the finished entry from disk. Goroutine-level single-flighting
// (charlib.Cache) cannot see other processes; without leases, two servers
// started against a cold shared store would each run every
// transistor-level sweep.
//
// A lease is a lock file under <dir>/leases/ holding the owner's identity
// and an expiry deadline. It is created by writing the payload to a
// private temp file and hard-linking it to the lock path — link(2) fails
// with EEXIST when a lock exists and is atomic on every filesystem worth
// sharing a store on, and unlike create-exclusive-then-write it makes the
// payload appear in one step, so a waiter can never read a half-written
// lock and mistake its live holder for a dead one. Waiters poll; a file
// whose deadline has passed (or that holds garbage — impossible mid-write
// under the link protocol, so it is a crash leftover) is *stale* and is
// taken over: the stale file is renamed aside, which exactly one contender
// can win, and acquisition then proceeds through the normal link path.
//
// Leases are a work-avoidance protocol, not a correctness gate: entries
// are content-addressed and land via temp-file+rename, so even two
// processes building the same artefact concurrently (possible in the
// pathological case of a takeover racing a wedged-but-alive holder) write
// identical bytes and the store stays consistent. Every failure mode
// therefore degrades to duplicated work, never to wrong numbers.

// DefaultLeaseTTL is how long a build lease lives before waiters may
// treat its holder as dead. It bounds the extra latency a crashed holder
// costs other processes and must comfortably exceed the slowest single
// artefact build (full propagation tables take seconds; the default
// leaves two orders of magnitude of headroom).
const DefaultLeaseTTL = 2 * time.Minute

// defaultLeasePoll is the waiters' polling cadence. Builds take tens of
// milliseconds to seconds, so 25 ms keeps takeover latency negligible
// against build cost without hammering the shared directory.
const defaultLeasePoll = 25 * time.Millisecond

// LeaseStats counts the store's build-lease activity since Open, for the
// server's /statsz surface and for cross-process tests.
type LeaseStats struct {
	// Acquired counts leases this process obtained (including takeovers).
	Acquired int64 `json:"acquired"`
	// Contended counts acquisitions that found another holder's live lock
	// and had to wait at least one poll.
	Contended int64 `json:"contended"`
	// Takeovers counts stale leases this process renamed aside after their
	// holder died without releasing.
	Takeovers int64 `json:"takeovers"`
}

// leaseOwner is the lock-file payload: enough identity to debug a wedged
// store by hand, plus the expiry deadline the staleness test reads.
type leaseOwner struct {
	Token    string    `json:"token"`
	PID      int       `json:"pid"`
	Host     string    `json:"host,omitempty"`
	Acquired time.Time `json:"acquired"`
	Expires  time.Time `json:"expires"`
}

// SetLeaseTTL overrides the build-lease time-to-live (see
// DefaultLeaseTTL). Call it before sharing the store; values <= 0 restore
// the default. Shorter TTLs recover faster from killed holders at the
// price of a tighter bound on how long one artefact build may take.
func (s *Store) SetLeaseTTL(d time.Duration) {
	if d <= 0 {
		d = DefaultLeaseTTL
	}
	s.leaseTTL.Store(int64(d))
}

// leaseTTLValue returns the configured TTL, defaulting when unset.
func (s *Store) leaseTTLValue() time.Duration {
	if v := s.leaseTTL.Load(); v > 0 {
		return time.Duration(v)
	}
	return DefaultLeaseTTL
}

// leasePollValue returns the waiters' poll interval, defaulting when
// unset (tests shorten it via leasePoll to keep takeover cases fast).
func (s *Store) leasePollValue() time.Duration {
	if v := s.leasePoll.Load(); v > 0 {
		return time.Duration(v)
	}
	return defaultLeasePoll
}

// LeaseStats snapshots the store's lease counters.
func (s *Store) LeaseStats() LeaseStats {
	return LeaseStats{
		Acquired:  s.leaseAcquired.Load(),
		Contended: s.leaseContended.Load(),
		Takeovers: s.leaseTakeovers.Load(),
	}
}

func (s *Store) leasesDir() string { return filepath.Join(s.dir, "leases") }

func (s *Store) leasePath(key string) string {
	return filepath.Join(s.leasesDir(), key+".lock")
}

// AcquireBuildLease implements the charlib.LeaseStore extension of
// PersistentStore: it blocks until this process holds the build lease for
// the artefact configuration, ctx is done, or the lease directory proves
// unusable. On success the returned release function must be called
// exactly once, after the built artefact has been persisted (or the build
// abandoned). Waiters re-check the store after acquiring — the usual
// reason a wait ends is that the previous holder finished the build.
func (s *Store) AcquireBuildLease(ctx context.Context, kind string, cl *cell.Cell, st cell.State, pin, optsFP string) (func(), error) {
	if s == nil {
		return nil, errors.New("charstore: no store")
	}
	key, err := Key(kind, cl, st, pin, optsFP)
	if err != nil {
		return nil, err
	}
	return s.acquireLeaseKey(ctx, key)
}

// acquireLeaseKey is the key-level lease loop; see the package comment on
// build leases for the protocol.
func (s *Store) acquireLeaseKey(ctx context.Context, key string) (func(), error) {
	if !validKey(key) {
		return nil, fmt.Errorf("charstore: invalid lease key %q", key)
	}
	if err := os.MkdirAll(s.leasesDir(), 0o755); err != nil {
		return nil, fmt.Errorf("charstore: lease dir: %w", err)
	}
	path := s.leasePath(key)
	token := leaseToken()
	host, _ := os.Hostname()
	contended := false
	for {
		now := time.Now()
		payload, merr := json.Marshal(leaseOwner{
			Token: token, PID: os.Getpid(), Host: host,
			Acquired: now, Expires: now.Add(s.leaseTTLValue()),
		})
		if merr != nil {
			return nil, fmt.Errorf("charstore: lease payload: %w", merr)
		}
		// Atomic create-with-content: the payload is materialised in a
		// private temp file and linked into place, so the lock file either
		// does not exist or is complete — never half-written (see the
		// package comment on why that matters).
		tmp := path + ".next-" + token[:8]
		if werr := os.WriteFile(tmp, payload, 0o644); werr != nil {
			return nil, fmt.Errorf("charstore: writing lease: %w", werr)
		}
		err := os.Link(tmp, path)
		os.Remove(tmp)
		if err == nil {
			s.leaseAcquired.Add(1)
			return func() { s.releaseLease(path, token) }, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return nil, fmt.Errorf("charstore: lease: %w", err)
		}
		// Contended: someone else holds (or held) the lease.
		if !contended {
			contended = true
			s.leaseContended.Add(1)
		}
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			if os.IsNotExist(rerr) {
				continue // released between create and read — retry now
			}
			return nil, fmt.Errorf("charstore: reading lease: %w", rerr)
		}
		var owner leaseOwner
		stale := json.Unmarshal(raw, &owner) != nil || // garbage == dead holder
			!owner.Expires.After(time.Now())
		if stale {
			// Exactly one contender wins the rename of this specific file;
			// everyone then competes fairly on the atomic-link path.
			aside := path + ".stale-" + token[:8]
			if os.Rename(path, aside) == nil {
				os.Remove(aside)
				s.leaseTakeovers.Add(1)
			}
			continue
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(s.leasePollValue()):
		}
	}
}

// releaseLease removes the lock file if this process still owns it. After
// a stale takeover the file belongs to someone else; verifying the token
// before removing keeps a resurrected slow holder from releasing the new
// owner's lease.
func (s *Store) releaseLease(path, token string) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return // already taken over and released, or dir gone
	}
	var owner leaseOwner
	if json.Unmarshal(raw, &owner) == nil && owner.Token != token {
		return
	}
	os.Remove(path)
}

// leaseToken returns a process-unique random token identifying one
// acquisition attempt.
func leaseToken() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to pid+time — tokens only need to be distinct between
		// live contenders on one store, not cryptographically strong.
		return fmt.Sprintf("%d-%d", os.Getpid(), time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// cleanStaleLeases removes expired or undecodable lock files (crash
// leftovers); called from GC so an abandoned store heals completely.
func (s *Store) cleanStaleLeases() (removed int) {
	entries, err := os.ReadDir(s.leasesDir())
	if err != nil {
		return 0
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(s.leasesDir(), e.Name())
		if !strings.HasSuffix(e.Name(), ".lock") {
			// Renamed-aside stale files that missed their Remove.
			if os.Remove(path) == nil {
				removed++
			}
			continue
		}
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			continue
		}
		var owner leaseOwner
		if json.Unmarshal(raw, &owner) == nil && owner.Expires.After(time.Now()) {
			continue
		}
		if os.Remove(path) == nil {
			removed++
		}
	}
	return removed
}

// leaseCounters holds the Store's lease configuration and statistics;
// embedded (unexported) so everything lease-related lives in this file
// without widening Store's literal in store.go.
type leaseCounters struct {
	leaseTTL       atomic.Int64
	leasePoll      atomic.Int64
	leaseAcquired  atomic.Int64
	leaseContended atomic.Int64
	leaseTakeovers atomic.Int64
}
