package charstore

import (
	"strings"
	"testing"

	"stanoise/internal/cell"
	"stanoise/internal/tech"
)

// TestNominalCornerKeysBitStable proves the corner axis at its zero value
// leaves every pre-corner key untouched: a nominal corner applies to the
// identity card, the tech fingerprint renders no corner segment, and the
// derived store key is exactly the legacy one.
func TestNominalCornerKeysBitStable(t *testing.T) {
	base := tech.Tech130()
	fp := TechFingerprint(base)
	if strings.Contains(fp, "Corner{") {
		t.Fatalf("nominal fingerprint grew a corner segment: %q", fp)
	}
	tt, err := tech.CornerByName("tt")
	if err != nil {
		t.Fatal(err)
	}
	applied := tt.Apply(base)
	if TechFingerprint(applied) != fp {
		t.Fatalf("tt fingerprint differs from nominal:\n%q\n%q", TechFingerprint(applied), fp)
	}

	inv := cell.MustNew(base, "INV", 1)
	st, err := inv.SensitizedState("A", true)
	if err != nil {
		t.Fatal(err)
	}
	legacyKey, err := Key("lc", inv, st, "A", "61,61,0.2")
	if err != nil {
		t.Fatal(err)
	}
	ttKey, err := Key("lc", cell.MustNew(applied, "INV", 1), st, "A", "61,61,0.2")
	if err != nil {
		t.Fatal(err)
	}
	if legacyKey != ttKey {
		t.Fatalf("tt key %s differs from legacy key %s", ttKey, legacyKey)
	}
}

// TestCornerKeysNeverAlias is the key-separation property test: across
// every standard corner, a batch of Monte Carlo samples, and the warm/cold
// (and continuation-suffixed) option variants of each, every derived store
// key — and every corner fingerprint feeding it — is distinct.
func TestCornerKeysNeverAlias(t *testing.T) {
	base := tech.Tech130()
	corners := append(tech.StandardCorners(), tech.SampleCorners(16, 12345, tech.SampleSpec{})...)
	variants := []string{
		"61,61,0.2",                      // cold
		"61,61,0.2,warm",                 // warm continuation
		"61,61,0.2,warm,cont={corner=x}", // adjacent-corner seeded
	}
	seen := map[string]string{}
	fps := map[string]string{}
	for _, c := range corners {
		card := c.Apply(base)
		if fp := TechFingerprint(card); fps[fp] != "" && fps[fp] != c.Name {
			t.Fatalf("corners %q and %q share tech fingerprint", fps[fp], c.Name)
		} else {
			fps[fp] = c.Name
		}
		cl := cell.MustNew(card, "INV", 1)
		st, err := cl.SensitizedState("A", true)
		if err != nil {
			t.Fatal(err)
		}
		for _, optsFP := range variants {
			key, err := Key("lc", cl, st, "A", optsFP)
			if err != nil {
				t.Fatal(err)
			}
			id := c.Name + "/" + optsFP
			if prev, ok := seen[key]; ok {
				t.Fatalf("configurations %q and %q alias to key %s", prev, id, key)
			}
			seen[key] = id
		}
	}
	if want := len(corners) * len(variants); len(seen) != want {
		t.Fatalf("expected %d distinct keys, got %d", want, len(seen))
	}
}

// TestSameNumbersDifferentCornerNamesNeverAlias pins the identity part of
// the corner fingerprint: two corners with identical deltas but different
// names must still key differently (an MC registry may assign semantic
// names to numerically coincident samples).
func TestSameNumbersDifferentCornerNamesNeverAlias(t *testing.T) {
	base := tech.Tech130()
	a := tech.Corner{Name: "slow_a", VddScale: 0.9}
	b := tech.Corner{Name: "slow_b", VddScale: 0.9}
	ka, err := Key("lc", cell.MustNew(a.Apply(base), "INV", 1), cell.State{}, "A", "fp")
	if err != nil {
		t.Fatal(err)
	}
	kb, err := Key("lc", cell.MustNew(b.Apply(base), "INV", 1), cell.State{}, "A", "fp")
	if err != nil {
		t.Fatal(err)
	}
	if ka == kb {
		t.Fatalf("same-delta corners with different names alias to %s", ka)
	}
}
