package charstore

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"stanoise/internal/charlib"
	"stanoise/internal/nrc"
	"stanoise/internal/thevenin"
)

// sampleArtefacts builds one hand-constructed instance of every
// persistable artefact type, deliberately including the awkward values:
// +Inf NRC heights (unfailable widths), negative currents, sub-femto
// magnitudes.
func sampleArtefacts() []any {
	return []any{
		&charlib.LoadCurve{
			CellName: "INV_X1", State: "A=0", NoisyPin: "A",
			VinMin: -0.24, VinMax: 1.44, VoutMin: -0.24, VoutMax: 1.44,
			NVin: 2, NVout: 3,
			I: []float64{1.5e-3, -2.25e-4, 0, 3.125e-5, -1e-12, 7.5e-6},
		},
		&charlib.PropTable{
			CellName: "NAND2_X1", State: "A=1,B=0", NoisyPin: "B",
			Heights: []float64{0.3, 0.9}, Widths: []float64{2e-10}, Loads: []float64{3e-14, 1.2e-13},
			Peak:    [][][]float64{{{0.01, 0.005}}, {{0.4, 0.22}}},
			Area:    [][][]float64{{{1e-12, 5e-13}}, {{6e-11, 3.3e-11}}},
			OutSign: -1, QuietOut: 1.2,
		},
		&nrc.Curve{
			CellName: "INV_X2", State: "A=0", Pin: "A", FailFrac: 0.5,
			Widths:  []float64{5e-11, 2e-10, 8e-10},
			Heights: []float64{math.Inf(1), 1.05, 0.84},
		},
		&thevenin.Driver{V0: 0, V1: 1.2, T0: 1.07e-10, Tr: 4.4e-11, RTh: 3200},
	}
}

// TestCodecRoundTripByteIdentical is the round-trip property test of the
// issue: serialize → deserialize → re-serialize must be byte-identical for
// every table type, and the decoded value must equal the original.
func TestCodecRoundTripByteIdentical(t *testing.T) {
	for _, v := range sampleArtefacts() {
		tag, payload, ok := encodeArtefact(v)
		if !ok {
			t.Fatalf("%T did not encode", v)
		}
		decoded, err := decodeArtefact(tag, payload)
		if err != nil {
			t.Fatalf("%T decode: %v", v, err)
		}
		if !reflect.DeepEqual(decoded, v) {
			t.Errorf("%T round trip changed the value:\n got %#v\nwant %#v", v, decoded, v)
		}
		tag2, payload2, ok := encodeArtefact(decoded)
		if !ok || tag2 != tag {
			t.Fatalf("%T re-encode failed (tag %d vs %d)", v, tag2, tag)
		}
		if !bytes.Equal(payload, payload2) {
			t.Errorf("%T re-serialisation is not byte-identical (%d vs %d bytes)", v, len(payload), len(payload2))
		}
	}
}

// TestCodecRejectsDamage: every prefix truncation and any trailing junk
// must decode to an error, never to a plausible-looking artefact.
func TestCodecRejectsDamage(t *testing.T) {
	for _, v := range sampleArtefacts() {
		tag, payload, _ := encodeArtefact(v)
		for n := 0; n < len(payload); n++ {
			if _, err := decodeArtefact(tag, payload[:n]); err == nil {
				t.Errorf("%T: truncation to %d/%d bytes decoded without error", v, n, len(payload))
				break
			}
		}
		if _, err := decodeArtefact(tag, append(append([]byte{}, payload...), 0xEE)); err == nil {
			t.Errorf("%T: trailing byte decoded without error", v)
		}
	}
	if _, err := decodeArtefact(99, nil); err == nil {
		t.Error("unknown kind tag decoded without error")
	}
}

// TestCodecRejectsOverflowingSliceCount pins an integer-overflow panic: a
// corrupted slice-count varint near 2^61 made 8*n wrap past the old
// length guard and crash in make(). It must decode to an error.
func TestCodecRejectsOverflowingSliceCount(t *testing.T) {
	var e enc
	e.str("cell")
	e.str("state")
	e.str("pin")
	e.f64(0.5)                 // FailFrac
	e.uvarint(uint64(1) << 61) // Widths count: 8*n wraps to 0
	payload := e.b
	if _, err := decodeArtefact(kindNRCCurve, payload); err == nil {
		t.Fatal("overflowing slice count decoded without error")
	}
}

// TestCodecRejectsHostileShapes pins two crafted-input crashes: prop-table
// axes whose product would pre-allocate petabytes, and load-curve grid
// counts whose int product wraps onto the I length. Both must decode to
// errors, never to allocations or "valid" tables.
func TestCodecRejectsHostileShapes(t *testing.T) {
	// Prop table: three genuine 1500-element axes (36 KB of payload), but
	// a Peak volume of 1500^3 floats (~27 TB) that must never allocate.
	var e enc
	e.str("cell")
	e.str("state")
	e.str("pin")
	axis := make([]float64, 1500)
	e.f64s(axis)
	e.f64s(axis)
	e.f64s(axis)
	if _, err := decodeArtefact(kindPropTable, e.b); err == nil {
		t.Fatal("petabyte prop table decoded without error")
	}

	// Load curve: NVin = NVout = 2^32 wraps the int product to 0 == len(I).
	var e2 enc
	e2.str("cell")
	e2.str("state")
	e2.str("pin")
	for i := 0; i < 4; i++ {
		e2.f64(1)
	}
	e2.uvarint(1 << 32)
	e2.uvarint(1 << 32)
	e2.f64s(nil)
	if _, err := decodeArtefact(kindLoadCurve, e2.b); err == nil {
		t.Fatal("overflowing load-curve grid decoded without error")
	}
}

// TestContainerRejectsOverflowingPayloadLength pins the sibling overflow
// in the container framing: a payload-length varint near 2^64 made
// n+sha256.Size wrap, pass the equality check and panic slicing.
func TestContainerRejectsOverflowingPayloadLength(t *testing.T) {
	var e enc
	e.b = append(e.b, entryMagic[:]...)
	e.b = append(e.b, 1, 0) // format version 1, little-endian
	e.b = append(e.b, kindLoadCurve)
	e.str(ModelVersion)
	e.uvarint(^uint64(0) - 31) // n + 32 wraps to 0
	// Trailing bytes sized so len(rest) == 0 == wrapped n+32.
	if _, _, _, err := parseContainer(e.b); err == nil {
		t.Fatal("overflowing payload length parsed without error")
	}
}

// TestContainerRoundTripAndDamage exercises the container framing the same
// way: valid parse, then rejection of every corruption class Get must
// survive.
func TestContainerRoundTripAndDamage(t *testing.T) {
	payload := []byte("not a real payload but checksummed all the same")
	c := buildContainer(kindLoadCurve, ModelVersion, payload)

	tag, model, got, err := parseContainer(c)
	if err != nil || tag != kindLoadCurve || model != ModelVersion || !bytes.Equal(got, payload) {
		t.Fatalf("container round trip: tag=%d model=%q err=%v", tag, model, err)
	}

	for n := 0; n < len(c); n++ {
		if _, _, _, err := parseContainer(c[:n]); err == nil {
			t.Fatalf("truncated container (%d/%d bytes) parsed without error", n, len(c))
		}
	}
	// Flip one payload byte: the checksum must catch it.
	bad := append([]byte{}, c...)
	bad[len(bad)-sha256Size-1] ^= 0x01
	if _, _, _, err := parseContainer(bad); err == nil {
		t.Error("payload corruption passed the checksum")
	}
	// Future container format version.
	bad = append([]byte{}, c...)
	bad[4] = 0xFF
	if _, _, _, err := parseContainer(bad); err == nil {
		t.Error("future format version parsed without error")
	}
	// Wrong magic.
	bad = append([]byte{}, c...)
	bad[0] = 'X'
	if _, _, _, err := parseContainer(bad); err == nil {
		t.Error("wrong magic parsed without error")
	}
}

const sha256Size = 32
