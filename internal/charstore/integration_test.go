package charstore

import (
	"context"
	"os"
	"reflect"
	"testing"

	"stanoise/internal/cell"
	"stanoise/internal/charlib"
	"stanoise/internal/tech"
)

// TestCacheRecharacterizesThroughDamagedStore wires a real Cache to a real
// Store, characterises a tiny load curve, damages the persisted entry, and
// proves a fresh cache falls back to recharacterisation — same numbers, no
// error — then re-persists a valid entry.
func TestCacheRecharacterizesThroughDamagedStore(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	tt := tech.Tech130()
	cl := cell.MustNew(tt, "INV", 1)
	st := cell.State{"A": false}
	opts := charlib.LoadCurveOptions{NVin: 7, NVout: 7}
	ctx := context.Background()

	cold := charlib.NewCache()
	cold.SetStore(s)
	lc1, err := cold.LoadCurve(ctx, cl, st, "A", opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("store holds %d entries after characterisation, want 1", s.Len())
	}

	// A pristine warm cache is served from disk with identical numbers.
	warm := charlib.NewCache()
	warm.SetStore(s)
	lc2, err := warm.LoadCurve(ctx, cl, st, "A", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lc1, lc2) {
		t.Error("disk-served load curve differs from the characterised one")
	}
	if cs := warm.Stats(); cs.DiskHits != 1 {
		t.Errorf("warm cache stats: %+v", cs)
	}

	// Corrupt the entry: the next fresh cache must recharacterise without
	// surfacing any error, and heal the store.
	path := entryPath(t, s)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0xA5
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	healed := charlib.NewCache()
	healed.SetStore(s)
	lc3, err := healed.LoadCurve(ctx, cl, st, "A", opts)
	if err != nil {
		t.Fatalf("damaged store surfaced an error: %v", err)
	}
	if !reflect.DeepEqual(lc1, lc3) {
		t.Error("recharacterised load curve differs")
	}
	if cs := healed.Stats(); cs.DiskHits != 0 {
		t.Errorf("damaged entry counted as a disk hit: %+v", cs)
	}
	// The rebuild was persisted: one more cache reads it from disk again.
	again := charlib.NewCache()
	again.SetStore(s)
	if _, err := again.LoadCurve(ctx, cl, st, "A", opts); err != nil {
		t.Fatal(err)
	}
	if cs := again.Stats(); cs.DiskHits != 1 {
		t.Errorf("store did not heal after recharacterisation: %+v", cs)
	}
}
