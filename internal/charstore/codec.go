package charstore

import (
	"encoding/binary"
	"fmt"
	"math"

	"stanoise/internal/charlib"
	"stanoise/internal/nrc"
	"stanoise/internal/thevenin"
)

// The on-disk payload codec. Deliberately hand-rolled rather than JSON or
// gob: it is deterministic (the same artefact always encodes to the same
// bytes — the round-trip property tests rely on that), it represents ±Inf
// exactly (NRC curves use +Inf for unfailable widths, which JSON cannot
// carry), and decoding validates every shape so a truncated or corrupted
// payload degrades to a cache miss instead of a malformed table.

// Artefact kind tags. These are part of the on-disk format: never renumber,
// only append.
const (
	kindLoadCurve byte = 1
	kindPropTable byte = 2
	kindNRCCurve  byte = 3
	kindThevenin  byte = 4
)

// KindLoadCurve, KindPropTable, KindNRCCurve and KindThevenin are the
// string names of the artefact kinds, shared with charlib.Cache keys.
const (
	KindLoadCurve = "lc"
	KindPropTable = "prop"
	KindNRCCurve  = "nrc"
	KindThevenin  = "thev"
)

// kindTag maps a kind name to its on-disk tag; ok=false for unknown kinds
// (which the store treats as unpersistable, never as an error).
func kindTag(kind string) (byte, bool) {
	switch kind {
	case KindLoadCurve:
		return kindLoadCurve, true
	case KindPropTable:
		return kindPropTable, true
	case KindNRCCurve:
		return kindNRCCurve, true
	case KindThevenin:
		return kindThevenin, true
	}
	return 0, false
}

// kindName is the inverse of kindTag, for listings.
func kindName(tag byte) string {
	switch tag {
	case kindLoadCurve:
		return KindLoadCurve
	case kindPropTable:
		return KindPropTable
	case kindNRCCurve:
		return KindNRCCurve
	case kindThevenin:
		return KindThevenin
	}
	return fmt.Sprintf("kind(%d)", tag)
}

// --- encoder -------------------------------------------------------------

type enc struct{ b []byte }

func (e *enc) uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }
func (e *enc) f64(v float64)    { e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v)) }
func (e *enc) str(s string)     { e.uvarint(uint64(len(s))); e.b = append(e.b, s...) }
func (e *enc) f64s(vs []float64) {
	e.uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.f64(v)
	}
}

// --- decoder -------------------------------------------------------------

type dec struct {
	b   []byte
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("charstore: truncated varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *dec) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("charstore: truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v
}

func (d *dec) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if uint64(len(d.b)) < n {
		d.fail("charstore: truncated string")
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) f64s() []float64 {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	// Divide, don't multiply: 8*n wraps for a corrupted count near 2^61
	// and would slip past this guard into a make() panic.
	if n > uint64(len(d.b))/8 {
		d.fail("charstore: truncated float slice")
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

// --- artefact codecs -----------------------------------------------------

// encodeArtefact serialises a supported artefact to (kind tag, payload).
// ok=false means the value's type is not persistable; the store skips it.
func encodeArtefact(v any) (tag byte, payload []byte, ok bool) {
	var e enc
	switch a := v.(type) {
	case *charlib.LoadCurve:
		e.str(a.CellName)
		e.str(a.State)
		e.str(a.NoisyPin)
		e.f64(a.VinMin)
		e.f64(a.VinMax)
		e.f64(a.VoutMin)
		e.f64(a.VoutMax)
		e.uvarint(uint64(a.NVin))
		e.uvarint(uint64(a.NVout))
		e.f64s(a.I)
		return kindLoadCurve, e.b, true
	case *charlib.PropTable:
		e.str(a.CellName)
		e.str(a.State)
		e.str(a.NoisyPin)
		e.f64s(a.Heights)
		e.f64s(a.Widths)
		e.f64s(a.Loads)
		for _, tab := range [][][][]float64{a.Peak, a.Area} {
			for _, byW := range tab {
				for _, byL := range byW {
					for _, x := range byL {
						e.f64(x)
					}
				}
			}
		}
		e.f64(a.OutSign)
		e.f64(a.QuietOut)
		return kindPropTable, e.b, true
	case *nrc.Curve:
		e.str(a.CellName)
		e.str(a.State)
		e.str(a.Pin)
		e.f64(a.FailFrac)
		e.f64s(a.Widths)
		e.f64s(a.Heights)
		return kindNRCCurve, e.b, true
	case *thevenin.Driver:
		e.f64(a.V0)
		e.f64(a.V1)
		e.f64(a.T0)
		e.f64(a.Tr)
		e.f64(a.RTh)
		return kindThevenin, e.b, true
	}
	return 0, nil, false
}

// decodeArtefact is the inverse of encodeArtefact. It validates every
// shape invariant the in-memory consumers assume (grid sizes, table
// dimensions, monotonic axes are NOT re-derived — only structural
// consistency), and rejects trailing bytes, so a damaged entry can never
// come back as a plausible-looking table.
func decodeArtefact(tag byte, payload []byte) (any, error) {
	d := &dec{b: payload}
	var out any
	switch tag {
	case kindLoadCurve:
		lc := &charlib.LoadCurve{}
		lc.CellName = d.str()
		lc.State = d.str()
		lc.NoisyPin = d.str()
		lc.VinMin = d.f64()
		lc.VinMax = d.f64()
		lc.VoutMin = d.f64()
		lc.VoutMax = d.f64()
		lc.NVin = int(d.uvarint())
		lc.NVout = int(d.uvarint())
		lc.I = d.f64s()
		// The axis ceiling keeps NVin*NVout far from int overflow: crafted
		// counts near 2^32 would otherwise wrap the product onto len(I)
		// and pass a table whose indexing arithmetic panics downstream.
		const maxAxis = 1 << 16
		if d.err == nil && (lc.NVin < 2 || lc.NVout < 2 || lc.NVin > maxAxis || lc.NVout > maxAxis ||
			len(lc.I) != lc.NVin*lc.NVout) {
			d.fail("charstore: load curve has inconsistent shape %dx%d/%d", lc.NVin, lc.NVout, len(lc.I))
		}
		out = lc
	case kindPropTable:
		pt := &charlib.PropTable{}
		pt.CellName = d.str()
		pt.State = d.str()
		pt.NoisyPin = d.str()
		pt.Heights = d.f64s()
		pt.Widths = d.f64s()
		pt.Loads = d.f64s()
		if d.err == nil && (len(pt.Heights) == 0 || len(pt.Widths) == 0 || len(pt.Loads) == 0) {
			d.fail("charstore: prop table has an empty axis")
		}
		// Bound the table volume against the bytes actually remaining
		// BEFORE allocating: the per-axis guards in f64s bound each axis,
		// but their product times 8 must also fit, or crafted axes of a
		// few thousand elements each would make read3 allocate petabytes.
		// Division keeps the comparison overflow-free.
		if d.err == nil {
			rem := uint64(len(d.b)) / 8
			h, w, l := uint64(len(pt.Heights)), uint64(len(pt.Widths)), uint64(len(pt.Loads))
			if h > rem || w > rem/h || l > rem/(h*w) {
				d.fail("charstore: truncated prop table (%dx%dx%d for %d bytes)", h, w, l, len(d.b))
			}
		}
		read3 := func() [][][]float64 {
			if d.err != nil {
				return nil
			}
			tab := make([][][]float64, len(pt.Heights))
			for hi := range tab {
				tab[hi] = make([][]float64, len(pt.Widths))
				for wi := range tab[hi] {
					tab[hi][wi] = make([]float64, len(pt.Loads))
					for li := range tab[hi][wi] {
						tab[hi][wi][li] = d.f64()
					}
				}
			}
			return tab
		}
		pt.Peak = read3()
		pt.Area = read3()
		pt.OutSign = d.f64()
		pt.QuietOut = d.f64()
		out = pt
	case kindNRCCurve:
		c := &nrc.Curve{}
		c.CellName = d.str()
		c.State = d.str()
		c.Pin = d.str()
		c.FailFrac = d.f64()
		c.Widths = d.f64s()
		c.Heights = d.f64s()
		if d.err == nil && (len(c.Widths) == 0 || len(c.Widths) != len(c.Heights)) {
			d.fail("charstore: NRC curve has inconsistent shape %d/%d", len(c.Widths), len(c.Heights))
		}
		out = c
	case kindThevenin:
		drv := &thevenin.Driver{}
		drv.V0 = d.f64()
		drv.V1 = d.f64()
		drv.T0 = d.f64()
		drv.Tr = d.f64()
		drv.RTh = d.f64()
		out = drv
	default:
		return nil, fmt.Errorf("charstore: unknown artefact kind tag %d", tag)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("charstore: %d trailing bytes after %s payload", len(d.b), kindName(tag))
	}
	return out, nil
}

// artefactIdentity extracts the (cell, state, pin) identity embedded in a
// decoded artefact, used to self-heal index metadata from entry files.
// Thevenin drivers carry no identity of their own.
func artefactIdentity(v any) (cellName, state, pin string) {
	switch a := v.(type) {
	case *charlib.LoadCurve:
		return a.CellName, a.State, a.NoisyPin
	case *charlib.PropTable:
		return a.CellName, a.State, a.NoisyPin
	case *nrc.Curve:
		return a.CellName, a.State, a.Pin
	}
	return "", "", ""
}
