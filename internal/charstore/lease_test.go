package charstore

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// Cross-process lease tests re-execute the test binary as a child process
// (the standard re-exec helper pattern): when STANOISE_LEASE_CHILD is set,
// TestMain runs leaseChildMain instead of the test suite, so the child is
// a genuinely separate process holding a lease on a shared directory.
func TestMain(m *testing.M) {
	if os.Getenv("STANOISE_LEASE_CHILD") != "" {
		leaseChildMain()
		return
	}
	os.Exit(m.Run())
}

// leaseChildMain acquires the lease named by the environment, announces it
// on stdout, holds it for the requested duration, and (optionally)
// releases it. The parent synchronises on the HELD line and, in the
// crash-recovery test, SIGKILLs the child while it holds.
func leaseChildMain() {
	dir := os.Getenv("STANOISE_LEASE_DIR")
	key := os.Getenv("STANOISE_LEASE_KEY")
	ttlMS, _ := strconv.Atoi(os.Getenv("STANOISE_LEASE_TTL_MS"))
	holdMS, _ := strconv.Atoi(os.Getenv("STANOISE_LEASE_HOLD_MS"))
	s, err := Open(dir)
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	s.SetLeaseTTL(time.Duration(ttlMS) * time.Millisecond)
	release, err := s.acquireLeaseKey(context.Background(), key)
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	fmt.Println("HELD")
	time.Sleep(time.Duration(holdMS) * time.Millisecond)
	if os.Getenv("STANOISE_LEASE_RELEASE") == "1" {
		release()
	}
	fmt.Println("DONE")
	os.Exit(0)
}

// leaseTestKey is a syntactically valid (64 lowercase hex) content address
// reserved for lease tests; leases never require the object to exist.
var leaseTestKey = strings.Repeat("ab", 32)

// startLeaseChild re-executes the test binary as a lease-holding child and
// blocks until the child reports HELD, so the parent knows the lock file
// exists before contending.
func startLeaseChild(t *testing.T, dir string, ttl, hold time.Duration, release bool) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"STANOISE_LEASE_CHILD=1",
		"STANOISE_LEASE_DIR="+dir,
		"STANOISE_LEASE_KEY="+leaseTestKey,
		fmt.Sprintf("STANOISE_LEASE_TTL_MS=%d", ttl.Milliseconds()),
		fmt.Sprintf("STANOISE_LEASE_HOLD_MS=%d", hold.Milliseconds()),
	)
	if release {
		cmd.Env = append(cmd.Env, "STANOISE_LEASE_RELEASE=1")
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if line == "HELD" {
			return cmd
		}
		t.Fatalf("lease child: %s", line)
	}
	t.Fatalf("lease child exited before HELD: %v", sc.Err())
	return nil
}

// TestLeaseSingleFlightInProcess asserts the basic mutual exclusion and
// counter contract within one process: a second acquirer of the same key
// blocks until the first releases, and the contention is counted.
func TestLeaseSingleFlightInProcess(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	release, err := s.acquireLeaseKey(context.Background(), leaseTestKey)
	if err != nil {
		t.Fatal(err)
	}

	var second atomic.Bool
	done := make(chan error, 1)
	go func() {
		r2, err := s.acquireLeaseKey(context.Background(), leaseTestKey)
		if err == nil {
			second.Store(true)
			r2()
		}
		done <- err
	}()

	// The contender must still be waiting while the lease is held.
	time.Sleep(4 * s.leasePollValue())
	if second.Load() {
		t.Fatal("second acquirer obtained a held lease")
	}
	release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("second acquire after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second acquirer never obtained the released lease")
	}
	st := s.LeaseStats()
	if st.Acquired != 2 || st.Contended < 1 || st.Takeovers != 0 {
		t.Fatalf("lease stats %+v, want 2 acquired, >=1 contended, 0 takeovers", st)
	}
}

// TestLeaseAcquireHonorsContext asserts a waiter gives up with ctx.Err()
// when its context expires while another holder keeps the lease.
func TestLeaseAcquireHonorsContext(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	release, err := s.acquireLeaseKey(context.Background(), leaseTestKey)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 5*s.leasePollValue())
	defer cancel()
	if _, err := s.acquireLeaseKey(ctx, leaseTestKey); err != context.DeadlineExceeded {
		t.Fatalf("acquire under expired ctx returned %v, want context.DeadlineExceeded", err)
	}
}

// TestLeaseReleaseIsTokenChecked asserts a release after a stale takeover
// is a no-op: the original holder's release must not remove the new
// owner's lock file.
func TestLeaseReleaseIsTokenChecked(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetLeaseTTL(time.Millisecond) // first lease goes stale immediately
	staleRelease, err := s.acquireLeaseKey(context.Background(), leaseTestKey)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	s.SetLeaseTTL(time.Minute)
	release, err := s.acquireLeaseKey(context.Background(), leaseTestKey)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	staleRelease() // must see a foreign token and leave the file alone
	if _, err := os.Stat(s.leasePath(leaseTestKey)); err != nil {
		t.Fatalf("stale holder's release removed the new owner's lease: %v", err)
	}
	if st := s.LeaseStats(); st.Takeovers != 1 {
		t.Fatalf("takeovers = %d, want 1", st.Takeovers)
	}
}

// TestLeaseCrossProcessContention asserts leases exclude across real
// process boundaries: with a child process holding the lease, the parent
// waits (counted as contention) and only acquires after the child
// releases.
func TestLeaseCrossProcessContention(t *testing.T) {
	dir := t.TempDir()
	startLeaseChild(t, dir, 30*time.Second, 300*time.Millisecond, true)

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	release, err := s.acquireLeaseKey(ctx, leaseTestKey)
	if err != nil {
		t.Fatalf("parent never acquired after child release: %v", err)
	}
	release()
	st := s.LeaseStats()
	if st.Acquired != 1 || st.Contended != 1 || st.Takeovers != 0 {
		t.Fatalf("lease stats %+v, want 1 acquired, 1 contended, 0 takeovers", st)
	}
}

// TestLeaseStaleTakeoverAfterKill asserts crash recovery: a child process
// is SIGKILLed while holding the lease (so it never releases), and once
// the lease TTL passes, the parent takes the stale lease over — exactly
// once — instead of waiting forever.
func TestLeaseStaleTakeoverAfterKill(t *testing.T) {
	dir := t.TempDir()
	ttl := 400 * time.Millisecond
	child := startLeaseChild(t, dir, ttl, 60*time.Second, false)
	if err := child.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	child.Wait()

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	release, err := s.acquireLeaseKey(ctx, leaseTestKey)
	if err != nil {
		t.Fatalf("parent never took over the dead child's lease: %v", err)
	}
	defer release()
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("takeover took %v, far beyond the %v TTL", waited, ttl)
	}
	st := s.LeaseStats()
	if st.Takeovers != 1 || st.Acquired != 1 {
		t.Fatalf("lease stats %+v, want exactly 1 takeover and 1 acquisition", st)
	}
}

// TestGCReapsExpiredLeases asserts abandoned lock files are reclaimed by
// the store's GC pass.
func TestGCReapsExpiredLeases(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetLeaseTTL(time.Millisecond)
	if _, err := s.acquireLeaseKey(context.Background(), leaseTestKey); err != nil {
		t.Fatal(err) // deliberately never released
	}
	time.Sleep(5 * time.Millisecond)
	removed, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("GC reclaimed %d files, want 1 expired lease", removed)
	}
	if _, err := os.Stat(s.leasePath(leaseTestKey)); !os.IsNotExist(err) {
		t.Fatalf("expired lease file survived GC: %v", err)
	}
}

// TestLeaseNoFalseTakeoverUnderContention is the regression test for the
// torn-write race the atomic-link protocol closes: under a
// create-exclusive-then-write scheme a waiter could read a lock file
// after its creation but before its payload landed, judge the garbage
// stale, and rename a LIVE holder's lease aside — silently duplicating
// the build it guarded. Goroutines hammering acquire/release cycles on
// one key with a generous TTL must therefore never record a takeover.
func TestLeaseNoFalseTakeoverUnderContention(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetLeaseTTL(time.Minute)
	s.leasePoll.Store(int64(50 * time.Microsecond)) // hammer the contended read path
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				release, err := s.acquireLeaseKey(context.Background(), leaseTestKey)
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				release()
			}
		}()
	}
	wg.Wait()
	if n := s.LeaseStats().Takeovers; n != 0 {
		t.Fatalf("%d live leases were taken over under contention, want 0", n)
	}
}
