package charstore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"stanoise/internal/cell"
)

// Store is the on-disk tier of the characterisation cache: a directory of
// content-addressed entry files plus a metadata index. It is safe for
// concurrent use by multiple goroutines and multiple *processes* writing
// the same directory: every file lands via temp-file + rename, and because
// entries are content-addressed, two processes racing on the same key are
// by construction writing the same bytes — last rename wins harmlessly.
//
// Every read validates the full entry container (magic, format version,
// model version, kind, length, SHA-256 payload checksum) and the decoded
// table shapes. Any mismatch — truncation, corruption, a format from a
// different generation — degrades to a cache miss (the bad file is
// removed best-effort) and the caller recharacterises; a damaged store can
// slow an analysis down but never change its numbers.
//
// Layout:
//
//	<dir>/index.json            metadata for listings/inspection (self-healing)
//	<dir>/objects/<k2>/<key>    entry containers, sharded by key prefix
type Store struct {
	dir string

	mu         sync.Mutex
	index      map[string]IndexEntry
	indexDirty bool // in-memory index has changes not yet on disk
	flushing   bool // one goroutine is writing index.json

	leaseCounters // cross-process build-lease configuration and statistics
}

// Entry container format constants. formatVersion guards the container
// layout itself; bumping it orphans every existing file (reads miss, GC
// reclaims).
var entryMagic = [4]byte{'S', 'N', 'C', 'S'}

const formatVersion uint16 = 1

// indexSchema guards the index.json layout. A mismatching or unparsable
// index is rebuilt from the entry files, which are authoritative.
const indexSchema = 1

// IndexEntry is the metadata the index keeps per entry, for listings and
// export. The entry files, not the index, are authoritative for reads.
type IndexEntry struct {
	Kind  string `json:"kind"`
	Model string `json:"model"`
	Cell  string `json:"cell,omitempty"`
	State string `json:"state,omitempty"`
	Pin   string `json:"pin,omitempty"`
	Size  int64  `json:"size"`
}

type indexFile struct {
	Schema  int                   `json:"schema"`
	Entries map[string]IndexEntry `json:"entries"`
}

// Open opens (creating if needed) a store rooted at dir. A corrupted or
// schema-mismatched index is rebuilt by scanning the entry files; Open
// fails only when the directory itself is unusable.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir, index: map[string]IndexEntry{}}
	if err := os.MkdirAll(s.objectsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("charstore: opening %s: %w", dir, err)
	}
	if err := s.loadIndex(); err != nil {
		// Index damage is recoverable: rebuild from the authoritative
		// entry files (removing any that fail validation on the way).
		if rerr := s.Rebuild(); rerr != nil {
			return nil, fmt.Errorf("charstore: rebuilding index of %s: %w", dir, rerr)
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) objectsDir() string { return filepath.Join(s.dir, "objects") }
func (s *Store) indexPath() string  { return filepath.Join(s.dir, "index.json") }

func (s *Store) objectPath(key string) string {
	shard := "xx"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(s.objectsDir(), shard, key)
}

// validKey reports whether key is a canonical content address: exactly 64
// lowercase hex digits, as Key produces. Everything that turns an
// externally supplied key into a path — bundle import above all — must
// check this first, or a bundle carrying "../../..." keys could write
// outside the store directory.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// --- charlib.PersistentStore ---------------------------------------------

// Get returns the decoded artefact for the configuration, or ok=false on
// any miss — absent, truncated, corrupted, wrong model version, undecodable
// — never an error. Misses of the damaged varieties remove the bad file.
// A nil *Store always misses, so a typed-nil handle wired into a cache
// degrades to memory-only instead of panicking.
func (s *Store) Get(kind string, cl *cell.Cell, st cell.State, pin, optsFP string) (any, bool) {
	if s == nil {
		return nil, false
	}
	wantTag, known := kindTag(kind)
	if !known {
		return nil, false
	}
	key, err := Key(kind, cl, st, pin, optsFP)
	if err != nil {
		return nil, false
	}
	return s.getByKey(key, wantTag)
}

// Put persists a freshly built artefact. Unknown kinds and unencodable
// values are skipped silently (persistence is an optimisation, never a
// correctness gate), as is a nil *Store; real I/O failures are reported
// so callers can warn.
func (s *Store) Put(kind string, cl *cell.Cell, st cell.State, pin, optsFP string, v any) error {
	if s == nil {
		return nil
	}
	wantTag, known := kindTag(kind)
	if !known {
		return nil
	}
	tag, payload, ok := encodeArtefact(v)
	if !ok || tag != wantTag {
		return nil
	}
	key, err := Key(kind, cl, st, pin, optsFP)
	if err != nil {
		return err
	}
	meta := IndexEntry{Kind: kind, Model: ModelVersion, Cell: cl.Name(), State: st.String(), Pin: pin}
	return s.putRaw(key, tag, ModelVersion, payload, meta)
}

// GetByKey reads and validates the entry stored under an exact key,
// accepting any artefact kind.
func (s *Store) GetByKey(key string) (any, bool) {
	if s == nil {
		return nil, false
	}
	return s.getByKey(key, 0)
}

// getByKey reads and validates one entry. wantTag != 0 additionally pins
// the artefact kind: the tag byte sits outside the payload checksum, so a
// flipped tag (or a mislabelled import) must read as a damaged miss —
// never as a value of the wrong type that panics the caller's assertion.
func (s *Store) getByKey(key string, wantTag byte) (any, bool) {
	if !validKey(key) {
		return nil, false
	}
	path := s.objectPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	tag, model, payload, err := parseContainer(raw)
	if err != nil || (wantTag != 0 && tag != wantTag) {
		// Truncated/corrupted entries (including a wrong kind tag under a
		// kind-derived key) are removed so they stop costing a read per
		// miss.
		s.drop(key, path)
		return nil, false
	}
	if model != ModelVersion {
		// Entries from another model generation are left for GC — a
		// rollback to that version would make them valid again.
		return nil, false
	}
	v, err := decodeArtefact(tag, payload)
	if err != nil {
		s.drop(key, path)
		return nil, false
	}
	return v, true
}

// drop removes a damaged entry file and its index row, best-effort.
func (s *Store) drop(key, path string) {
	os.Remove(path)
	s.mu.Lock()
	changed := false
	if _, ok := s.index[key]; ok {
		delete(s.index, key)
		s.indexDirty = true
		changed = true
	}
	s.mu.Unlock()
	if changed {
		s.flushIndex()
	}
}

// putRaw writes one validated entry container atomically and records it in
// the index, flushing the index to disk.
func (s *Store) putRaw(key string, tag byte, model string, payload []byte, meta IndexEntry) error {
	if err := s.writeEntry(key, tag, model, payload, meta); err != nil {
		return err
	}
	return s.flushIndex()
}

// writeEntry lands the entry file and updates the in-memory index without
// flushing it — bulk writers (Import) batch the flush.
func (s *Store) writeEntry(key string, tag byte, model string, payload []byte, meta IndexEntry) error {
	if !validKey(key) {
		return fmt.Errorf("charstore: invalid entry key %q", key)
	}
	container := buildContainer(tag, model, payload)
	path := s.objectPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("charstore: %w", err)
	}
	if err := atomicWrite(path, container); err != nil {
		return fmt.Errorf("charstore: %w", err)
	}
	meta.Size = int64(len(container))
	s.mu.Lock()
	s.index[key] = meta
	s.indexDirty = true
	s.mu.Unlock()
	return nil
}

// atomicWrite lands data at path via a same-directory temp file + rename,
// so concurrent writers and readers never observe a partial file.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// --- container -----------------------------------------------------------

// buildContainer frames a payload: magic, format version, kind tag, model
// version, length-prefixed payload, SHA-256 payload checksum.
func buildContainer(tag byte, model string, payload []byte) []byte {
	var e enc
	e.b = append(e.b, entryMagic[:]...)
	e.b = binary.LittleEndian.AppendUint16(e.b, formatVersion)
	e.b = append(e.b, tag)
	e.str(model)
	e.uvarint(uint64(len(payload)))
	e.b = append(e.b, payload...)
	sum := sha256.Sum256(payload)
	e.b = append(e.b, sum[:]...)
	return e.b
}

// parseContainer validates a container and returns its tag, model version
// and payload. Every failure mode — short file, wrong magic, future format,
// length mismatch, checksum mismatch — is an error the caller maps to a
// cache miss.
func parseContainer(raw []byte) (tag byte, model string, payload []byte, err error) {
	if len(raw) < 7 || [4]byte(raw[:4]) != entryMagic {
		return 0, "", nil, fmt.Errorf("charstore: not an entry container")
	}
	if v := binary.LittleEndian.Uint16(raw[4:6]); v != formatVersion {
		return 0, "", nil, fmt.Errorf("charstore: entry format version %d, want %d", v, formatVersion)
	}
	tag = raw[6]
	d := &dec{b: raw[7:]}
	model = d.str()
	n := d.uvarint()
	if d.err != nil {
		return 0, "", nil, d.err
	}
	// Bound n before any arithmetic: a corrupted varint near 2^64 would
	// make n+sha256.Size wrap, pass the equality check and panic the
	// slice below — corruption must be an error, never a crash.
	if n > uint64(len(d.b)) || uint64(len(d.b)) != n+sha256.Size {
		return 0, "", nil, fmt.Errorf("charstore: entry length mismatch (%d bytes for %d payload)", len(d.b), n)
	}
	payload = d.b[:n]
	want := d.b[n:]
	sum := sha256.Sum256(payload)
	if [sha256.Size]byte(want) != sum {
		return 0, "", nil, fmt.Errorf("charstore: entry checksum mismatch")
	}
	return tag, model, payload, nil
}

// --- index ---------------------------------------------------------------

// loadIndex reads index.json; any parse or schema problem is an error the
// caller answers with a rebuild.
func (s *Store) loadIndex() error {
	raw, err := os.ReadFile(s.indexPath())
	if os.IsNotExist(err) {
		// Fresh store — but heal the case of entries without an index
		// (e.g. an index lost to a crash or a concurrent writer race).
		if s.hasObjects() {
			return fmt.Errorf("charstore: entries without an index")
		}
		return nil
	}
	if err != nil {
		return err
	}
	var f indexFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return fmt.Errorf("charstore: corrupted index: %w", err)
	}
	if f.Schema != indexSchema {
		return fmt.Errorf("charstore: index schema %d, want %d", f.Schema, indexSchema)
	}
	s.mu.Lock()
	s.index = f.Entries
	if s.index == nil {
		s.index = map[string]IndexEntry{}
	}
	s.mu.Unlock()
	return nil
}

// hasObjects reports whether any entry file exists.
func (s *Store) hasObjects() bool {
	found := false
	s.walkObjects(func(string, string) bool { found = true; return false })
	return found
}

// walkObjects visits every entry file as (key, path) until fn returns
// false.
func (s *Store) walkObjects(fn func(key, path string) bool) {
	shards, err := os.ReadDir(s.objectsDir())
	if err != nil {
		return
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.objectsDir(), sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			// Skip another writer's in-flight temp files (and crash
			// leftovers) plus anything that is not a canonical content
			// address: they are not entries, and removing a live temp
			// would break that writer's rename.
			if f.IsDir() || strings.HasPrefix(f.Name(), ".tmp-") || !validKey(f.Name()) {
				continue
			}
			if !fn(f.Name(), filepath.Join(s.objectsDir(), sh.Name(), f.Name())) {
				return
			}
		}
	}
}

// flushIndex persists the in-memory index if it has unwritten changes.
// The marshal and write happen outside s.mu on a snapshot, so concurrent
// Puts (many workers persisting fresh builds) never serialize on index
// I/O; bursts coalesce — whichever goroutine is flushing loops until the
// index is clean, and everyone else returns immediately (their change is
// covered by the in-flight or next pass).
func (s *Store) flushIndex() error {
	s.mu.Lock()
	if s.flushing || !s.indexDirty {
		s.mu.Unlock()
		return nil
	}
	s.flushing = true
	var err error
	for s.indexDirty {
		s.indexDirty = false
		snapshot := make(map[string]IndexEntry, len(s.index))
		for k, v := range s.index {
			snapshot[k] = v
		}
		s.mu.Unlock()
		f := indexFile{Schema: indexSchema, Entries: snapshot}
		raw, merr := json.MarshalIndent(&f, "", " ")
		if merr != nil {
			err = merr
		} else {
			err = atomicWrite(s.indexPath(), raw)
		}
		s.mu.Lock()
	}
	s.flushing = false
	s.mu.Unlock()
	return err
}

// Rebuild reconstructs the index from the entry files, validating each and
// removing the ones that fail. It is how a corrupted index, or one lost in
// a concurrent-process race, heals without touching valid entries.
func (s *Store) Rebuild() error {
	fresh := map[string]IndexEntry{}
	type bad struct{ key, path string }
	var damaged []bad
	s.walkObjects(func(key, path string) bool {
		raw, err := os.ReadFile(path)
		if err != nil {
			return true
		}
		tag, model, payload, err := parseContainer(raw)
		if err != nil {
			damaged = append(damaged, bad{key, path})
			return true
		}
		v, err := decodeArtefact(tag, payload)
		if err != nil {
			damaged = append(damaged, bad{key, path})
			return true
		}
		cellName, state, pin := artefactIdentity(v)
		fresh[key] = IndexEntry{
			Kind: kindName(tag), Model: model,
			Cell: cellName, State: state, Pin: pin,
			Size: int64(len(raw)),
		}
		return true
	})
	for _, b := range damaged {
		os.Remove(b.path)
	}
	s.mu.Lock()
	s.index = fresh
	s.indexDirty = true
	s.mu.Unlock()
	return s.flushIndex()
}

// Len returns the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Entry is one indexed artefact, for listings.
type Entry struct {
	Key string
	IndexEntry
}

// Entries returns the indexed artefacts sorted by key.
func (s *Store) Entries() []Entry {
	s.mu.Lock()
	out := make([]Entry, 0, len(s.index))
	for k, m := range s.index {
		out = append(out, Entry{Key: k, IndexEntry: m})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// GC removes entries that can no longer be read under the current model
// and format versions — orphans from before a version bump and files that
// fail validation — returning how many were reclaimed.
func (s *Store) GC() (removed int, err error) {
	var stale []string
	s.walkObjects(func(key, path string) bool {
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			return true
		}
		tag, model, payload, perr := parseContainer(raw)
		if perr != nil || model != ModelVersion {
			stale = append(stale, path)
			return true
		}
		if _, derr := decodeArtefact(tag, payload); derr != nil {
			stale = append(stale, path)
		}
		return true
	})
	for _, path := range stale {
		if rerr := os.Remove(path); rerr == nil {
			removed++
		}
	}
	removed += s.cleanStaleLeases()
	if removed > 0 {
		err = s.Rebuild()
	}
	return removed, err
}

// --- export / import -----------------------------------------------------

// bundleSchema versions the export/import interchange format on its own:
// the index.json layout is a local, self-healing concern and must be able
// to evolve without invalidating previously shipped bundles.
const bundleSchema = 1

// bundleFile is the portable serialisation of a whole store: what
// `libchar -export-store` ships alongside a cell library so another
// machine (or CI) starts warm. Keys are content addresses, so a bundle
// built from the same tech cards, cells and sweep grids is valid anywhere.
type bundleFile struct {
	Schema  int           `json:"schema"`
	Model   string        `json:"model_version"`
	Entries []bundleEntry `json:"entries"`
}

type bundleEntry struct {
	Key     string `json:"key"`
	Kind    string `json:"kind"`
	Cell    string `json:"cell,omitempty"`
	State   string `json:"state,omitempty"`
	Pin     string `json:"pin,omitempty"`
	Payload []byte `json:"payload"` // base64 via encoding/json
	// Sum is the hex SHA-256 of Payload as it left the exporter. Import
	// re-verifies it: without this, a bundle corrupted in transit would be
	// re-checksummed as "valid" on write and silently serve wrong numbers
	// forever (shape-level decoding cannot catch flipped float bits).
	Sum string `json:"sum"`
}

// Export writes every valid entry of the current model version as a
// portable bundle. The entry files, not the index, are scanned, so an
// export is complete even after index-losing races.
func (s *Store) Export(w io.Writer) error {
	b := bundleFile{Schema: bundleSchema, Model: ModelVersion, Entries: []bundleEntry{}}
	s.walkObjects(func(key, path string) bool {
		raw, err := os.ReadFile(path)
		if err != nil {
			return true
		}
		tag, model, payload, err := parseContainer(raw)
		if err != nil || model != ModelVersion {
			return true
		}
		v, err := decodeArtefact(tag, payload)
		if err != nil {
			return true
		}
		cellName, state, pin := artefactIdentity(v)
		sum := sha256.Sum256(payload)
		b.Entries = append(b.Entries, bundleEntry{
			Key: key, Kind: kindName(tag),
			Cell: cellName, State: state, Pin: pin,
			Payload: payload,
			Sum:     hex.EncodeToString(sum[:]),
		})
		return true
	})
	sort.Slice(b.Entries, func(i, j int) bool { return b.Entries[i].Key < b.Entries[j].Key })
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&b)
}

// Import reads a bundle and stores its entries, returning how many were
// imported. A bundle from a different model version is refused outright
// (its numbers mean something else); individually undecodable entries are
// skipped, never fatal.
func (s *Store) Import(r io.Reader) (int, error) {
	var b bundleFile
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return 0, fmt.Errorf("charstore: reading bundle: %w", err)
	}
	if b.Schema != bundleSchema {
		return 0, fmt.Errorf("charstore: bundle schema %d, want %d", b.Schema, bundleSchema)
	}
	if b.Model != ModelVersion {
		return 0, fmt.Errorf("charstore: bundle is model version %q, this build is %q — recharacterise instead",
			b.Model, ModelVersion)
	}
	imported := 0
	for _, e := range b.Entries {
		tag, known := kindTag(e.Kind)
		if !known {
			continue
		}
		// A non-canonical key would become a path; skip rather than write.
		if !validKey(e.Key) {
			continue
		}
		// Verify the exporter's checksum before trusting the payload — a
		// bundle damaged in transit must lose entries, not corrupt them.
		sum := sha256.Sum256(e.Payload)
		if e.Sum != hex.EncodeToString(sum[:]) {
			continue
		}
		if _, err := decodeArtefact(tag, e.Payload); err != nil {
			continue
		}
		meta := IndexEntry{Kind: e.Kind, Model: b.Model, Cell: e.Cell, State: e.State, Pin: e.Pin}
		// writeEntry, not putRaw: one index flush for the whole bundle
		// instead of a full rewrite per entry.
		if err := s.writeEntry(e.Key, tag, b.Model, e.Payload, meta); err != nil {
			s.flushIndex()
			return imported, err
		}
		imported++
	}
	return imported, s.flushIndex()
}
