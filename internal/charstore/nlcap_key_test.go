package charstore

import (
	"strings"
	"testing"

	"stanoise/internal/cell"
	"stanoise/internal/tech"
)

// TestNLCapKeysBitStable proves the nonlinear-cap axis at its zero value
// leaves every pre-nlcap key untouched: a constant-cap card renders no
// NLCAP segment, its fingerprint is byte-identical whether the model exists
// in the codebase or not, and the derived store key is exactly the legacy
// one — while a WithNonlinearCaps card renders the segment for both device
// polarities and keys differently.
func TestNLCapKeysBitStable(t *testing.T) {
	base := tech.Tech130()
	fp := TechFingerprint(base)
	if strings.Contains(fp, "NLCAP") {
		t.Fatalf("constant-cap fingerprint grew an NLCAP segment: %q", fp)
	}

	nl := base.WithNonlinearCaps()
	nlFP := TechFingerprint(nl)
	if got := strings.Count(nlFP, "NLCAP{"); got != 2 {
		t.Fatalf("nl fingerprint renders %d NLCAP segments, want 2 (NMOS and PMOS):\n%q", got, nlFP)
	}
	// Deriving the model must not perturb the rest of the fingerprint: the
	// nl text with its segments cut out is the constant-cap text.
	if stripped := stripNLCAP(nlFP); stripped != fp {
		t.Fatalf("NLCAP segment is not purely additive:\n%q\n%q", stripped, fp)
	}

	st := cell.State{"A": false}
	legacyKey, err := Key("lc", cell.MustNew(base, "INV", 1), st, "A", "61,61,0.2")
	if err != nil {
		t.Fatal(err)
	}
	nlKey, err := Key("lc", cell.MustNew(nl, "INV", 1), st, "A", "61,61,0.2")
	if err != nil {
		t.Fatal(err)
	}
	if legacyKey == nlKey {
		t.Fatalf("nonlinear-cap card aliases the constant-cap key %s", legacyKey)
	}
}

// TestNLCapCornerKeysNeverAlias crosses the nonlinear-cap axis with the
// corner axis: for every standard corner, the constant-cap and nl-cap
// fingerprints (and store keys) stay distinct from each other and from
// every other corner's.
func TestNLCapCornerKeysNeverAlias(t *testing.T) {
	base := tech.Tech130()
	seen := map[string]string{}
	for _, c := range tech.StandardCorners() {
		for _, card := range []*tech.Tech{c.Apply(base), c.Apply(base.WithNonlinearCaps())} {
			id := c.Name
			if card.NonlinearCaps() {
				id += "+nlcap"
			}
			fp := TechFingerprint(card)
			if prev, ok := seen[fp]; ok {
				t.Fatalf("configurations %q and %q share tech fingerprint", prev, id)
			}
			seen[fp] = id
		}
	}
}

// stripNLCAP removes every " NLCAP{...}" segment from a tech fingerprint.
func stripNLCAP(fp string) string {
	for {
		i := strings.Index(fp, " NLCAP{")
		if i < 0 {
			return fp
		}
		j := strings.Index(fp[i:], "}")
		fp = fp[:i] + fp[i+j+1:]
	}
}
