package mor

import (
	"fmt"

	"stanoise/internal/linalg"
)

// Reduced is a port-level macromodel of an RC network:
//
//	Cr·ẋ + Gr·x = B·i(t),   v_port = Bᵀ·x
//
// where i(t) are the currents injected into the ports. It is the circuit
// the paper draws as the coupled S-model between the victim driver VCCS and
// the aggressor Thevenin sources.
type Reduced struct {
	Gr, Cr *linalg.Matrix // q×q reduced conductance and capacitance
	B      *linalg.Matrix // q×p projected port incidence
	Ports  []string
	Q      int // reduced order
}

// Options tunes the reduction.
type Options struct {
	// Moments is the number of block moments matched per port (Krylov
	// blocks). Default 3.
	Moments int
	// S0 is the real expansion point in rad/s. Default 2e10 (≈3 GHz),
	// matching the spectral content of nanosecond-scale noise events.
	S0 float64
	// NoDCAugment disables augmenting the projection basis with the
	// resistive-island indicator vectors. The augmentation guarantees the
	// reduced model settles to exact DC port levels after an event; it is
	// on by default and costs one basis vector per wire.
	NoDCAugment bool
}

func (o Options) normalize() Options {
	if o.Moments <= 0 {
		o.Moments = 3
	}
	if o.S0 <= 0 {
		o.S0 = 2e10
	}
	return o
}

// Reduce builds a reduced-order macromodel of net seen from the given
// ports. The projection is a block Arnoldi iteration on
// (G + s0·C)⁻¹·C with starting block (G + s0·C)⁻¹·B, orthonormalised with
// modified Gram–Schmidt; the congruence transform Gr = XᵀGX, Cr = XᵀCX
// preserves passivity.
func Reduce(net *Network, ports []string, opts Options) (*Reduced, error) {
	opts = opts.normalize()
	bFull, err := net.incidence(ports)
	if err != nil {
		return nil, err
	}
	n := net.Size()
	p := len(ports)

	// Shifted system matrix G + s0·C.
	a := net.G.Clone()
	a.AddScaled(opts.S0, net.C)
	lu, err := linalg.Factor(a)
	if err != nil {
		return nil, fmt.Errorf("mor: expansion matrix singular (s0=%g): %w", opts.S0, err)
	}

	var basis [][]float64
	// DC augmentation: per-island constant vectors span the null space of
	// G, so including them makes the reduced Gr exactly singular along the
	// physical "whole wire shifts together" directions and the late-time
	// settling exact.
	if !opts.NoDCAugment {
		for _, comp := range net.islands() {
			v := make([]float64, n)
			for _, i := range comp {
				v[i] = 1
			}
			if w, ok := linalg.Orthonormalize(basis, v); ok {
				basis = append(basis, w)
			}
		}
	}

	// Block Arnoldi.
	block := make([][]float64, 0, p)
	for k := 0; k < p; k++ {
		r := lu.Solve(bFull.Col(k))
		block = append(block, r)
	}
	for m := 0; m < opts.Moments; m++ {
		next := make([][]float64, 0, len(block))
		for _, v := range block {
			if w, ok := linalg.Orthonormalize(basis, v); ok {
				basis = append(basis, w)
				next = append(next, w)
			}
		}
		if len(next) == 0 || m == opts.Moments-1 {
			break
		}
		// Next block: A·w = (G+s0C)⁻¹ C w.
		block = block[:0]
		for _, w := range next {
			cw := net.C.MulVec(w)
			block = append(block, lu.Solve(cw))
		}
	}
	if len(basis) == 0 {
		return nil, fmt.Errorf("mor: empty projection basis")
	}

	q := len(basis)
	x := linalg.NewMatrix(n, q)
	for c, b := range basis {
		x.SetCol(c, b)
	}
	xt := x.Transpose()
	red := &Reduced{
		Gr:    linalg.Mul(xt, linalg.Mul(net.G, x)),
		Cr:    linalg.Mul(xt, linalg.Mul(net.C, x)),
		B:     linalg.Mul(xt, bFull),
		Ports: append([]string(nil), ports...),
		Q:     q,
	}
	return red, nil
}

// PortIndex returns the column of a named port in B, or -1.
func (r *Reduced) PortIndex(name string) int {
	for i, p := range r.Ports {
		if p == name {
			return i
		}
	}
	return -1
}

// PortImpedance evaluates Z(s) = Bᵀ(Gr + s·Cr)⁻¹B at a real s, for
// comparison against the full network.
func (r *Reduced) PortImpedance(s float64) (*linalg.Matrix, error) {
	a := r.Gr.Clone()
	a.AddScaled(s, r.Cr)
	lu, err := linalg.Factor(a)
	if err != nil {
		return nil, fmt.Errorf("mor: reduced Gr+sCr singular at s=%g: %w", s, err)
	}
	x := lu.SolveMatrix(r.B)
	return linalg.Mul(r.B.Transpose(), x), nil
}

// PortVoltages maps a reduced state to the port voltage vector Bᵀx.
func (r *Reduced) PortVoltages(x []float64) []float64 {
	out := make([]float64, len(r.Ports))
	for k := 0; k < len(r.Ports); k++ {
		s := 0.0
		for i := 0; i < r.Q; i++ {
			s += r.B.At(i, k) * x[i]
		}
		out[k] = s
	}
	return out
}
