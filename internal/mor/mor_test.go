package mor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"stanoise/internal/linalg"
)

// ladder builds an n-segment RC ladder: in -(R)- m1 -(R)- ... -(R)- out,
// with C to ground at every tap.
func ladder(n int, rSeg, cSeg float64) (*Network, []string) {
	nodes := make([]string, n+1)
	nodes[0] = "in"
	for i := 1; i < n; i++ {
		nodes[i] = "m" + string(rune('0'+i))
	}
	nodes[n] = "out"
	net := NewNetwork(nodes)
	for i := 0; i < n; i++ {
		net.AddR(nodes[i], nodes[i+1], rSeg)
	}
	for i := 0; i <= n; i++ {
		c := cSeg
		if i == 0 || i == n {
			c = cSeg / 2
		}
		net.AddC(nodes[i], "0", c)
	}
	return net, nodes
}

func TestNetworkStamping(t *testing.T) {
	net := NewNetwork([]string{"a", "b"})
	net.AddR("a", "b", 100)
	net.AddC("a", "0", 1e-15)
	net.AddC("a", "b", 2e-15)
	if g := net.G.At(0, 0); math.Abs(g-0.01) > 1e-15 {
		t.Errorf("G[0,0] = %v", g)
	}
	if g := net.G.At(0, 1); math.Abs(g+0.01) > 1e-15 {
		t.Errorf("G[0,1] = %v", g)
	}
	if c := net.C.At(0, 0); math.Abs(c-3e-15) > 1e-27 {
		t.Errorf("C[0,0] = %v", c)
	}
	if c := net.C.At(1, 1); math.Abs(c-2e-15) > 1e-27 {
		t.Errorf("C[1,1] = %v", c)
	}
}

func TestIslands(t *testing.T) {
	net := NewNetwork([]string{"a", "b", "c", "d"})
	net.AddR("a", "b", 10)
	net.AddR("c", "d", 10)
	net.AddC("b", "c", 1e-15) // capacitive coupling does not join islands
	comps := net.islands()
	if len(comps) != 2 {
		t.Fatalf("islands = %d, want 2", len(comps))
	}
}

func TestReduceMatchesFullImpedance(t *testing.T) {
	net, nodes := ladder(12, 5.0, 4e-15)
	ports := []string{nodes[0], nodes[12]}
	red, err := Reduce(net, ports, Options{Moments: 3})
	if err != nil {
		t.Fatal(err)
	}
	if red.Q >= net.Size() {
		t.Errorf("no reduction: q=%d of n=%d", red.Q, net.Size())
	}
	for _, s := range []float64{1e8, 1e9, 1e10, 5e10} {
		zf, err := net.PortImpedance(ports, s)
		if err != nil {
			t.Fatal(err)
		}
		zr, err := red.PortImpedance(s)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 2; r++ {
			for c := 0; c < 2; c++ {
				rel := math.Abs(zr.At(r, c)-zf.At(r, c)) / math.Abs(zf.At(r, c))
				if rel > 0.02 {
					t.Errorf("s=%g Z[%d,%d]: reduced %.4g vs full %.4g (rel %.3g)",
						s, r, c, zr.At(r, c), zf.At(r, c), rel)
				}
			}
		}
	}
}

func TestReduceCoupledLines(t *testing.T) {
	// Two 10-segment lines with coupling caps; ports at both near ends and
	// the victim far end.
	var nodes []string
	for _, ln := range []string{"v", "a"} {
		for j := 0; j <= 10; j++ {
			nodes = append(nodes, ln+"_"+string(rune('0'+j/10))+string(rune('0'+j%10)))
		}
	}
	net := NewNetwork(nodes)
	name := func(line string, j int) string {
		return line + "_" + string(rune('0'+j/10)) + string(rune('0'+j%10))
	}
	for _, ln := range []string{"v", "a"} {
		for j := 0; j < 10; j++ {
			net.AddR(name(ln, j), name(ln, j+1), 4.25)
		}
		for j := 0; j <= 10; j++ {
			net.AddC(name(ln, j), "0", 2e-15)
		}
	}
	for j := 0; j <= 10; j++ {
		net.AddC(name("v", j), name("a", j), 4.75e-15)
	}
	ports := []string{name("v", 0), name("a", 0), name("v", 10)}
	red, err := Reduce(net, ports, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []float64{1e9, 1e10, 1e11} {
		zf, _ := net.PortImpedance(ports, s)
		zr, err := red.PortImpedance(s)
		if err != nil {
			t.Fatal(err)
		}
		// Check the victim driving-point self-impedance and the
		// aggressor→victim transfer term.
		for _, rc := range [][2]int{{0, 0}, {0, 1}, {2, 0}} {
			f, r := zf.At(rc[0], rc[1]), zr.At(rc[0], rc[1])
			if math.Abs(r-f) > 0.03*math.Abs(f)+1e-3 {
				t.Errorf("s=%g Z[%d,%d]: %.5g vs %.5g", s, rc[0], rc[1], r, f)
			}
		}
	}
}

func TestReducedSymmetry(t *testing.T) {
	net, nodes := ladder(8, 10, 2e-15)
	red, err := Reduce(net, []string{nodes[0]}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gTol := 1e-13 * red.Gr.MaxAbs()
	cTol := 1e-13 * red.Cr.MaxAbs()
	for i := 0; i < red.Q; i++ {
		for j := 0; j < red.Q; j++ {
			if math.Abs(red.Gr.At(i, j)-red.Gr.At(j, i)) > gTol {
				t.Errorf("Gr not symmetric at %d,%d", i, j)
			}
			if math.Abs(red.Cr.At(i, j)-red.Cr.At(j, i)) > cTol {
				t.Errorf("Cr not symmetric at %d,%d", i, j)
			}
		}
	}
	// Cr must be positive on the diagonal (passive storage).
	for i := 0; i < red.Q; i++ {
		if red.Cr.At(i, i) <= 0 {
			t.Errorf("Cr[%d,%d] = %v, want > 0", i, i, red.Cr.At(i, i))
		}
	}
}

func TestReduceUnknownPort(t *testing.T) {
	net, _ := ladder(4, 10, 1e-15)
	if _, err := Reduce(net, []string{"nope"}, Options{}); err == nil {
		t.Error("unknown port accepted")
	}
}

// Property: the reduced model preserves total charge transfer — the DC
// augmentation makes a constant injected current charge the reduced model
// at the same rate as the full network (Σ C matches along island vectors).
func TestChargeConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		rSeg := 1 + rng.Float64()*10
		cSeg := (1 + rng.Float64()*5) * 1e-15
		net, nodes := ladder(n, rSeg, cSeg)
		red, err := Reduce(net, []string{nodes[0]}, Options{})
		if err != nil {
			return false
		}
		// Full network total cap seen by a DC current: sum of all ground
		// caps. In the reduced model, inject unit current and integrate:
		// the late-time dv/dt at the port must equal 1/Ctotal.
		ctot := 0.0
		for i := 0; i < net.Size(); i++ {
			row := 0.0
			for j := 0; j < net.Size(); j++ {
				row += net.C.At(i, j)
			}
			ctot += row
		}
		// Late-time slope from the reduced model: solve Cr ẋ = B·1 along
		// the island direction — equivalently simulate a few steps of BE
		// and look at the asymptotic slope.
		h := rSeg * cSeg * float64(n) // comfortably into the DC regime
		a := red.Cr.Clone()
		a.Scale(1 / h)
		a.AddScaled(1, red.Gr)
		lu, err := linalg.Factor(a)
		if err != nil {
			return false
		}
		x := make([]float64, red.Q)
		iin := red.B.Col(0)
		var vPrev, v float64
		for step := 0; step < 400; step++ {
			rhs := make([]float64, red.Q)
			red.Cr.MulVecInto(rhs, x)
			for i := range rhs {
				rhs[i] = rhs[i]/h + iin[i]
			}
			x = lu.Solve(rhs)
			vPrev, v = v, red.PortVoltages(x)[0]
		}
		slope := (v - vPrev) / h
		want := 1 / ctot
		return math.Abs(slope-want) < 0.02*want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
