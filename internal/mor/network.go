// Package mor implements moment-matching model-order reduction of linear RC
// interconnect networks onto their ports — the "coupled S-model" of the
// driving-point impedances used in the paper's noise-cluster macromodel
// (Figure 1, following its reference [8]).
//
// The construction is a PRIMA-style block-Arnoldi congruence projection: it
// matches block moments of the port admittance about a real expansion point
// and, because it is a congruence transform with an orthonormal basis,
// preserves passivity of the RC network. The projection basis is augmented
// with the per-island DC vectors so the reduced model settles to exact DC
// levels after a noise event (see Reduce).
package mor

import (
	"fmt"

	"stanoise/internal/linalg"
)

// Network is a linear RC network described by its conductance and
// capacitance matrices over named nodes. Ground is implicit: elements to
// ground stamp only the diagonal.
type Network struct {
	G, C  *linalg.Matrix
	Nodes []string
	index map[string]int
}

// NewNetwork creates an empty network over the given node names.
func NewNetwork(nodes []string) *Network {
	n := len(nodes)
	net := &Network{
		G:     linalg.NewMatrix(n, n),
		C:     linalg.NewMatrix(n, n),
		Nodes: append([]string(nil), nodes...),
		index: make(map[string]int, n),
	}
	for i, name := range nodes {
		if name == "0" || name == "" {
			panic("mor: ground is implicit and cannot be a network node")
		}
		if _, dup := net.index[name]; dup {
			panic(fmt.Sprintf("mor: duplicate node %q", name))
		}
		net.index[name] = i
	}
	return net
}

// NodeIndex returns the matrix index of a node name.
func (n *Network) NodeIndex(name string) (int, bool) {
	i, ok := n.index[name]
	return i, ok
}

// Size returns the number of (non-ground) nodes.
func (n *Network) Size() int { return len(n.Nodes) }

// AddR stamps a resistor between nodes a and b; use "0" for ground.
func (n *Network) AddR(a, b string, r float64) {
	if r <= 0 {
		panic(fmt.Sprintf("mor: non-positive resistance %g", r))
	}
	n.stamp(n.G, a, b, 1/r)
}

// AddC stamps a capacitor between nodes a and b; use "0" for ground.
func (n *Network) AddC(a, b string, c float64) {
	if c < 0 {
		panic(fmt.Sprintf("mor: negative capacitance %g", c))
	}
	if c == 0 {
		return
	}
	n.stamp(n.C, a, b, c)
}

func (n *Network) stamp(m *linalg.Matrix, a, b string, v float64) {
	ia, ib := -1, -1
	if a != "0" {
		i, ok := n.index[a]
		if !ok {
			panic(fmt.Sprintf("mor: unknown node %q", a))
		}
		ia = i
	}
	if b != "0" {
		i, ok := n.index[b]
		if !ok {
			panic(fmt.Sprintf("mor: unknown node %q", b))
		}
		ib = i
	}
	if ia >= 0 {
		m.Add(ia, ia, v)
	}
	if ib >= 0 {
		m.Add(ib, ib, v)
	}
	if ia >= 0 && ib >= 0 {
		m.Add(ia, ib, -v)
		m.Add(ib, ia, -v)
	}
}

// incidence builds the n×p port incidence matrix: column k selects port k's
// node.
func (n *Network) incidence(ports []string) (*linalg.Matrix, error) {
	b := linalg.NewMatrix(n.Size(), len(ports))
	for k, p := range ports {
		i, ok := n.index[p]
		if !ok {
			return nil, fmt.Errorf("mor: port %q is not a network node", p)
		}
		b.Set(i, k, 1)
	}
	return b, nil
}

// islands returns the connected components of the resistive graph — the
// sets of nodes joined by resistors. Capacitive coupling does not join
// islands; in a noise cluster each wire is one island.
func (n *Network) islands() [][]int {
	sz := n.Size()
	visited := make([]bool, sz)
	var comps [][]int
	for start := 0; start < sz; start++ {
		if visited[start] {
			continue
		}
		comp := []int{start}
		visited[start] = true
		for q := 0; q < len(comp); q++ {
			u := comp[q]
			for v := 0; v < sz; v++ {
				if !visited[v] && n.G.At(u, v) != 0 {
					visited[v] = true
					comp = append(comp, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// PortImpedance evaluates the full network's port impedance matrix
// Z(s) = Bᵀ (G + sC)⁻¹ B at a real frequency point s, for validation of
// reduced models.
func (n *Network) PortImpedance(ports []string, s float64) (*linalg.Matrix, error) {
	b, err := n.incidence(ports)
	if err != nil {
		return nil, err
	}
	a := n.G.Clone()
	a.AddScaled(s, n.C)
	lu, err := linalg.Factor(a)
	if err != nil {
		return nil, fmt.Errorf("mor: G+sC singular at s=%g: %w", s, err)
	}
	x := lu.SolveMatrix(b)
	return linalg.Mul(b.Transpose(), x), nil
}
