// Package wave implements piecewise-linear voltage waveforms and the glitch
// metrics used throughout static noise analysis: peak deviation, noise area
// (V·s) and width at a fractional threshold.
//
// Waveforms are the lingua franca between the simulator, the macromodel
// engine and the reporting layer: every noise evaluation ultimately yields a
// Waveform at the victim driving point, and every comparison in the paper's
// tables is a comparison of waveform metrics.
package wave

import (
	"fmt"
	"math"
	"sort"
)

// Waveform is a piecewise-linear function of time. T is strictly
// increasing; V has the same length. Outside [T[0], T[len-1]] the waveform
// extrapolates flat (holds its end values), which is the natural behaviour
// for settled circuit voltages.
type Waveform struct {
	T []float64 // seconds
	V []float64 // volts
}

// FromPoints builds a waveform from parallel time/value slices. It panics
// on length mismatch or non-increasing time; callers construct waveforms
// from code, not user input, so a panic flags a programming error.
func FromPoints(t, v []float64) *Waveform {
	if len(t) != len(v) {
		panic("wave: FromPoints length mismatch")
	}
	if len(t) == 0 {
		panic("wave: FromPoints empty")
	}
	for i := 1; i < len(t); i++ {
		if t[i] <= t[i-1] {
			panic(fmt.Sprintf("wave: non-increasing time at index %d (%g after %g)", i, t[i], t[i-1]))
		}
	}
	return &Waveform{T: append([]float64(nil), t...), V: append([]float64(nil), v...)}
}

// Constant returns a waveform that holds v for all time.
func Constant(v float64) *Waveform {
	return &Waveform{T: []float64{0}, V: []float64{v}}
}

// Clone returns a deep copy.
func (w *Waveform) Clone() *Waveform {
	return &Waveform{
		T: append([]float64(nil), w.T...),
		V: append([]float64(nil), w.V...),
	}
}

// At evaluates the waveform at time t by linear interpolation with flat
// extrapolation beyond the endpoints.
func (w *Waveform) At(t float64) float64 {
	n := len(w.T)
	if n == 1 || t <= w.T[0] {
		return w.V[0]
	}
	if t >= w.T[n-1] {
		return w.V[n-1]
	}
	// Binary search for the bracketing segment.
	i := sort.SearchFloat64s(w.T, t)
	// w.T[i-1] < t <= w.T[i]
	t0, t1 := w.T[i-1], w.T[i]
	v0, v1 := w.V[i-1], w.V[i]
	return v0 + (v1-v0)*(t-t0)/(t1-t0)
}

// Start returns the first sample time.
func (w *Waveform) Start() float64 { return w.T[0] }

// End returns the last sample time.
func (w *Waveform) End() float64 { return w.T[len(w.T)-1] }

// Shift returns a copy of w translated by dt in time.
func (w *Waveform) Shift(dt float64) *Waveform {
	out := w.Clone()
	for i := range out.T {
		out.T[i] += dt
	}
	return out
}

// Scale returns a copy of w with all values multiplied by k.
func (w *Waveform) Scale(k float64) *Waveform {
	out := w.Clone()
	for i := range out.V {
		out.V[i] *= k
	}
	return out
}

// Offset returns a copy of w with c added to all values.
func (w *Waveform) Offset(c float64) *Waveform {
	out := w.Clone()
	for i := range out.V {
		out.V[i] += c
	}
	return out
}

// mergeTimes returns the sorted union of the sample times of a and b.
func mergeTimes(a, b *Waveform) []float64 {
	ts := make([]float64, 0, len(a.T)+len(b.T))
	i, j := 0, 0
	for i < len(a.T) || j < len(b.T) {
		switch {
		case i == len(a.T):
			ts = append(ts, b.T[j])
			j++
		case j == len(b.T):
			ts = append(ts, a.T[i])
			i++
		case a.T[i] < b.T[j]:
			ts = append(ts, a.T[i])
			i++
		case b.T[j] < a.T[i]:
			ts = append(ts, b.T[j])
			j++
		default:
			ts = append(ts, a.T[i])
			i++
			j++
		}
	}
	return ts
}

// Add returns the pointwise sum a+b on the union of their time grids.
func Add(a, b *Waveform) *Waveform {
	ts := mergeTimes(a, b)
	vs := make([]float64, len(ts))
	for i, t := range ts {
		vs[i] = a.At(t) + b.At(t)
	}
	return &Waveform{T: ts, V: vs}
}

// Sub returns the pointwise difference a-b on the union of their time grids.
func Sub(a, b *Waveform) *Waveform {
	ts := mergeTimes(a, b)
	vs := make([]float64, len(ts))
	for i, t := range ts {
		vs[i] = a.At(t) - b.At(t)
	}
	return &Waveform{T: ts, V: vs}
}

// Resample returns w sampled uniformly on [t0, t1] with step dt (inclusive
// of both endpoints, the last step possibly shorter).
func (w *Waveform) Resample(t0, t1, dt float64) *Waveform {
	if dt <= 0 || t1 <= t0 {
		panic("wave: invalid Resample range")
	}
	var ts, vs []float64
	for t := t0; t < t1; t += dt {
		ts = append(ts, t)
		vs = append(vs, w.At(t))
	}
	ts = append(ts, t1)
	vs = append(vs, w.At(t1))
	return &Waveform{T: ts, V: vs}
}

// strictlyIncreasing repairs a breakpoint sequence in place: any point
// that does not strictly exceed its predecessor is bumped to the next
// representable float. The shape builders below separate breakpoints by a
// fixed 1 fs guard (and by caller-supplied durations), which can collapse
// to equal floats when |t| is large relative to the spacing of float64 —
// and equal breakpoints would make the waveform unwritable as a PWL
// netlist source (Parse requires strictly increasing times). Physical
// configurations are untouched; only degenerate corners are nudged by one
// ulp.
func strictlyIncreasing(ts []float64) []float64 {
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			ts[i] = math.Nextafter(ts[i-1], math.Inf(1))
		}
	}
	return ts
}

// SaturatedRamp returns the canonical Thevenin source waveform: v0 until
// t0, a linear transition to v1 over tr seconds, then v1 forever.
func SaturatedRamp(v0, v1, t0, tr float64) *Waveform {
	if tr <= 0 {
		panic("wave: SaturatedRamp needs positive transition time")
	}
	return &Waveform{
		T: strictlyIncreasing([]float64{t0 - 1e-15, t0, t0 + tr, t0 + tr + 1e-15}),
		V: []float64{v0, v0, v1, v1},
	}
}

// Triangle returns a triangular glitch: base level, rising (or falling,
// for negative height) from t0 to a peak of base+height at t0+width/2 and
// returning to base at t0+width.
func Triangle(base, height, t0, width float64) *Waveform {
	if width <= 0 {
		panic("wave: Triangle needs positive width")
	}
	return &Waveform{
		T: strictlyIncreasing([]float64{t0 - 1e-15, t0, t0 + width/2, t0 + width, t0 + width + 1e-15}),
		V: []float64{base, base, base + height, base, base},
	}
}

// Trapezoid returns a trapezoidal glitch with linear edges of edge seconds
// and a flat top of top seconds at base+height.
func Trapezoid(base, height, t0, edge, top float64) *Waveform {
	if edge <= 0 || top < 0 {
		panic("wave: invalid Trapezoid shape")
	}
	return &Waveform{
		T: strictlyIncreasing([]float64{t0 - 1e-15, t0, t0 + edge, t0 + edge + top, t0 + 2*edge + top, t0 + 2*edge + top + 1e-15}),
		V: []float64{base, base, base + height, base + height, base, base},
	}
}
