package wave

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAtInterpolation(t *testing.T) {
	w := FromPoints([]float64{0, 1, 2}, []float64{0, 10, 0})
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1, 10}, {1.25, 7.5}, {2, 0}, {3, 0},
	}
	for _, c := range cases {
		if got := w.At(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestConstant(t *testing.T) {
	w := Constant(1.2)
	if w.At(-5) != 1.2 || w.At(0) != 1.2 || w.At(100) != 1.2 {
		t.Error("Constant not flat")
	}
}

func TestFromPointsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on non-increasing time")
		}
	}()
	FromPoints([]float64{0, 0}, []float64{1, 2})
}

func TestShiftScaleOffset(t *testing.T) {
	w := FromPoints([]float64{0, 1}, []float64{1, 3})
	s := w.Shift(2)
	if s.At(2.5) != w.At(0.5) {
		t.Errorf("Shift: %v vs %v", s.At(2.5), w.At(0.5))
	}
	if w.T[0] != 0 {
		t.Error("Shift mutated original")
	}
	if k := w.Scale(2); k.At(1) != 6 {
		t.Errorf("Scale = %v", k.At(1))
	}
	if o := w.Offset(-1); o.At(0) != 0 {
		t.Errorf("Offset = %v", o.At(0))
	}
}

func TestAddSub(t *testing.T) {
	a := FromPoints([]float64{0, 2}, []float64{0, 2})
	b := FromPoints([]float64{1, 3}, []float64{4, 0})
	sum := Add(a, b)
	// At t=1: a=1, b=4 → 5. At t=2: a=2, b=2 → 4.
	if math.Abs(sum.At(1)-5) > 1e-12 || math.Abs(sum.At(2)-4) > 1e-12 {
		t.Errorf("Add wrong: %v %v", sum.At(1), sum.At(2))
	}
	d := Sub(a, b)
	if math.Abs(d.At(1)-(-3)) > 1e-12 {
		t.Errorf("Sub wrong: %v", d.At(1))
	}
}

// Property: Add(a,b) evaluated anywhere equals a.At + b.At.
func TestAddPointwiseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() *Waveform {
			n := 2 + rng.Intn(8)
			ts := make([]float64, n)
			vs := make([]float64, n)
			acc := rng.Float64()
			for i := 0; i < n; i++ {
				acc += 0.01 + rng.Float64()
				ts[i] = acc
				vs[i] = rng.NormFloat64()
			}
			return FromPoints(ts, vs)
		}
		a, b := mk(), mk()
		s := Add(a, b)
		for k := 0; k < 20; k++ {
			x := rng.Float64()*12 - 1
			if math.Abs(s.At(x)-(a.At(x)+b.At(x))) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSaturatedRamp(t *testing.T) {
	r := SaturatedRamp(1.2, 0, 1e-9, 100e-12)
	if r.At(0) != 1.2 {
		t.Errorf("before ramp: %v", r.At(0))
	}
	if got := r.At(1.05e-9); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("mid ramp: %v", got)
	}
	if r.At(2e-9) != 0 {
		t.Errorf("after ramp: %v", r.At(2e-9))
	}
}

func TestTriangleMetrics(t *testing.T) {
	// 0.4 V triangular glitch, 200 ps wide, on a 1.2 V quiet level,
	// pointing down.
	g := Triangle(1.2, -0.4, 1e-9, 200e-12)
	m := MeasureNoise(g, 1.2)
	if math.Abs(m.Peak-0.4) > 1e-12 {
		t.Errorf("Peak = %v", m.Peak)
	}
	if m.Sign != -1 {
		t.Errorf("Sign = %v", m.Sign)
	}
	// Triangle area = ½·height·width = ½·0.4·200 ps = 40 V·ps.
	if math.Abs(m.AreaVps()-40) > 1e-9 {
		t.Errorf("AreaVps = %v", m.AreaVps())
	}
	// Width at half height of a triangle is half the base width.
	if math.Abs(m.WidthPs()-100) > 1e-9 {
		t.Errorf("WidthPs = %v", m.WidthPs())
	}
	if math.Abs(m.TPeak-1.1e-9) > 1e-15 {
		t.Errorf("TPeak = %v", m.TPeak)
	}
}

func TestTrapezoidMetrics(t *testing.T) {
	g := Trapezoid(0, 0.5, 0, 100e-12, 300e-12)
	m := MeasureNoise(g, 0)
	if math.Abs(m.Peak-0.5) > 1e-12 || m.Sign != 1 {
		t.Errorf("peak %v sign %v", m.Peak, m.Sign)
	}
	// Trapezoid area = h·(top + edge) = 0.5·(300+100) ps = 200 V·ps.
	if math.Abs(m.AreaVps()-200) > 1e-9 {
		t.Errorf("AreaVps = %v", m.AreaVps())
	}
	// At half height the trapezoid spans top + edge = 400 ps.
	if math.Abs(m.WidthPs()-400) > 1e-9 {
		t.Errorf("WidthPs = %v", m.WidthPs())
	}
}

func TestMeasureNoiseIgnoresOppositeRinging(t *testing.T) {
	// Downward glitch of 0.5 with an upward overshoot of 0.2: area and
	// width must come from the downward lobe only.
	w := FromPoints(
		[]float64{0, 1, 2, 3, 4},
		[]float64{1, 0.5, 1, 1.2, 1},
	)
	m := MeasureNoise(w, 1)
	if m.Sign != -1 || math.Abs(m.Peak-0.5) > 1e-12 {
		t.Fatalf("peak %v sign %v", m.Peak, m.Sign)
	}
	// Downward lobe is a triangle height 0.5 base 2 → area 0.5.
	if math.Abs(m.Area-0.5) > 1e-12 {
		t.Errorf("Area = %v", m.Area)
	}
}

func TestResample(t *testing.T) {
	w := FromPoints([]float64{0, 1}, []float64{0, 1})
	r := w.Resample(0, 1, 0.25)
	if len(r.T) != 5 {
		t.Fatalf("len = %d", len(r.T))
	}
	if math.Abs(r.V[2]-0.5) > 1e-12 {
		t.Errorf("mid = %v", r.V[2])
	}
}

// Property: measured area is invariant under time shift and scales linearly
// with value scaling (for glitches measured against a zero quiet level).
func TestMetricsInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := 0.1 + rng.Float64()
		wdt := (50 + rng.Float64()*500) * 1e-12
		g := Triangle(0, h, 1e-9, wdt)
		m0 := MeasureNoise(g, 0)
		m1 := MeasureNoise(g.Shift(3e-9), 0)
		if math.Abs(m0.Area-m1.Area) > 1e-18 || math.Abs(m0.Peak-m1.Peak) > 1e-15 {
			return false
		}
		k := 0.5 + rng.Float64()*2
		m2 := MeasureNoise(g.Scale(k), 0)
		return math.Abs(m2.Peak-k*m0.Peak) < 1e-12 && math.Abs(m2.Area-k*m0.Area) < 1e-18
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPeakError(t *testing.T) {
	if e := PeakError(0.269, 0.345); math.Abs(e-(-22.028)) > 0.01 {
		t.Errorf("PeakError = %v", e)
	}
	if PeakError(1, 0) != 0 {
		t.Error("PeakError with zero reference should be 0")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromPoints([]float64{0, 1}, []float64{0, 1})
	b := FromPoints([]float64{0, 1}, []float64{0.25, 0.5})
	if d := MaxAbsDiff(a, b); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("MaxAbsDiff = %v", d)
	}
}
