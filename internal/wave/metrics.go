package wave

import "math"

// NoiseMetrics summarises a noise glitch relative to the quiet level of the
// net. These are exactly the quantities the paper's tables report.
type NoiseMetrics struct {
	Peak  float64 // largest deviation magnitude from the quiet level (V)
	TPeak float64 // time of the peak (s)
	Sign  float64 // +1 for an upward glitch, -1 for a downward glitch
	Area  float64 // integral of same-sign deviation over time (V·s)
	Width float64 // time spent above 50 % of the peak deviation (s)
}

// AreaVps returns the noise area in the paper's unit, volt-picoseconds.
func (m NoiseMetrics) AreaVps() float64 { return m.Area * 1e12 }

// WidthPs returns the glitch width in picoseconds.
func (m NoiseMetrics) WidthPs() float64 { return m.Width * 1e12 }

// MeasureNoise computes glitch metrics of w relative to the quiet level.
// The glitch polarity is taken from the largest absolute deviation; area
// and width consider only deviations of that polarity so that small
// opposite-sign ringing does not inflate the numbers.
//
// Degenerate inputs — a nil or empty waveform, mismatched time/value
// grids, or a non-finite sample or quiet level — return the defined zero
// result (every metric zero, Sign +1) instead of NaN-poisoned numbers: a
// flat or single-point waveform is a legitimate "no glitch" observation
// for downstream margin arithmetic, never a NaN that propagates into a
// report.
func MeasureNoise(w *Waveform, quiet float64) NoiseMetrics {
	if degenerate(w, quiet) {
		return NoiseMetrics{Sign: 1}
	}
	var m NoiseMetrics
	// Locate the peak on the sample grid (PWL extrema are at samples).
	for i, v := range w.V {
		if d := math.Abs(v - quiet); d > m.Peak {
			m.Peak = d
			m.TPeak = w.T[i]
			if v >= quiet {
				m.Sign = 1
			} else {
				m.Sign = -1
			}
		}
	}
	if m.Peak == 0 {
		m.Sign = 1
		return m
	}
	// Area by exact trapezoidal integration of the clipped PWL. Each
	// segment is linear, so the clip point (zero crossing) is computed
	// exactly.
	for i := 1; i < len(w.T); i++ {
		t0, t1 := w.T[i-1], w.T[i]
		d0 := m.Sign * (w.V[i-1] - quiet)
		d1 := m.Sign * (w.V[i] - quiet)
		dt := t1 - t0
		switch {
		case d0 >= 0 && d1 >= 0:
			m.Area += 0.5 * (d0 + d1) * dt
		case d0 < 0 && d1 < 0:
			// nothing
		default:
			// One endpoint above zero, one below: integrate only the
			// positive part of the segment.
			tc := d0 / (d0 - d1) // fraction of the segment until the crossing
			if d0 > 0 {
				m.Area += 0.5 * d0 * tc * dt
			} else if d1 > 0 {
				m.Area += 0.5 * d1 * (1 - tc) * dt
			}
		}
	}
	m.Width = widthAt(w, quiet, m.Sign, 0.5*m.Peak)
	return m
}

// widthAt returns the total time the same-sign deviation exceeds thresh.
func widthAt(w *Waveform, quiet, sign, thresh float64) float64 {
	width := 0.0
	for i := 1; i < len(w.T); i++ {
		t0, t1 := w.T[i-1], w.T[i]
		d0 := sign*(w.V[i-1]-quiet) - thresh
		d1 := sign*(w.V[i]-quiet) - thresh
		dt := t1 - t0
		switch {
		case d0 >= 0 && d1 >= 0:
			width += dt
		case d0 < 0 && d1 < 0:
			// nothing
		default:
			tc := d0 / (d0 - d1)
			if d0 > 0 {
				width += tc * dt
			} else if d1 > 0 {
				width += (1 - tc) * dt
			}
		}
	}
	return width
}

// WidthAtFraction returns the total time the glitch deviation exceeds the
// given fraction of its own peak (e.g. 0.5 for the half-height width).
// Degenerate inputs follow MeasureNoise's contract — a flat, empty or
// non-finite waveform (or a non-finite fraction) has zero width.
func WidthAtFraction(w *Waveform, quiet, fraction float64) float64 {
	if !finite(fraction) {
		return 0
	}
	m := MeasureNoise(w, quiet)
	if m.Peak == 0 {
		return 0
	}
	return widthAt(w, quiet, m.Sign, fraction*m.Peak)
}

// degenerate reports whether a waveform cannot support glitch metrics:
// nil or empty, time and value grids of different lengths, or any
// non-finite sample or quiet level (one NaN would otherwise poison the
// trapezoidal integration silently).
func degenerate(w *Waveform, quiet float64) bool {
	if w == nil || len(w.V) == 0 || len(w.T) != len(w.V) || !finite(quiet) {
		return true
	}
	for i := range w.V {
		if !finite(w.V[i]) || !finite(w.T[i]) {
			return true
		}
	}
	return false
}

// finite reports whether v is a usable sample (neither NaN nor ±Inf).
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// PeakError returns the relative error of got versus want in percent,
// matching the paper's "Error%" columns.
func PeakError(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	return 100 * (got - want) / want
}

// MaxAbsDiff returns the maximum absolute pointwise difference between two
// waveforms on the union of their time grids.
func MaxAbsDiff(a, b *Waveform) float64 {
	d := Sub(a, b)
	max := 0.0
	for _, v := range d.V {
		if m := math.Abs(v); m > max {
			max = m
		}
	}
	return max
}
