package wave

import (
	"math"
	"testing"
)

// TestMeasureNoiseDegenerateInputs is the table over every degenerate
// waveform shape: each must produce the defined zero-metrics result
// (Sign +1, everything else zero) rather than NaN or a panic.
func TestMeasureNoiseDegenerateInputs(t *testing.T) {
	cases := []struct {
		name  string
		w     *Waveform
		quiet float64
	}{
		{"nil waveform", nil, 0},
		{"empty waveform", &Waveform{}, 0},
		{"mismatched grids", &Waveform{T: []float64{0, 1e-12}, V: []float64{0.5}}, 0},
		{"single point at quiet", &Waveform{T: []float64{0}, V: []float64{1.2}}, 1.2},
		{"flat at quiet", &Waveform{T: []float64{0, 1e-12, 2e-12}, V: []float64{1.2, 1.2, 1.2}}, 1.2},
		{"NaN sample", &Waveform{T: []float64{0, 1e-12}, V: []float64{0.5, math.NaN()}}, 0},
		{"Inf sample", &Waveform{T: []float64{0, 1e-12}, V: []float64{0.5, math.Inf(1)}}, 0},
		{"NaN time", &Waveform{T: []float64{0, math.NaN()}, V: []float64{0.5, 0.6}}, 0},
		{"NaN quiet", &Waveform{T: []float64{0, 1e-12}, V: []float64{0.5, 0.6}}, math.NaN()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := MeasureNoise(tc.w, tc.quiet)
			if m.Peak != 0 || m.TPeak != 0 || m.Area != 0 || m.Width != 0 {
				t.Fatalf("non-zero metrics %+v", m)
			}
			if m.Sign != 1 {
				t.Fatalf("Sign %v, want the defined +1", m.Sign)
			}
			if w := WidthAtFraction(tc.w, tc.quiet, 0.5); w != 0 {
				t.Fatalf("WidthAtFraction = %v, want 0", w)
			}
		})
	}
}

// TestMeasureNoiseSinglePointGlitch pins the boundary of the guard: one
// deviating sample is a measurable peak (not degenerate), just with zero
// area and width — the metrics a single-sample observation supports.
func TestMeasureNoiseSinglePointGlitch(t *testing.T) {
	m := MeasureNoise(&Waveform{T: []float64{1e-12}, V: []float64{0.8}}, 1.2)
	if math.Abs(m.Peak-0.4) > 1e-12 || m.Sign != -1 || m.TPeak != 1e-12 {
		t.Fatalf("single-point glitch metrics %+v", m)
	}
	if m.Area != 0 || m.Width != 0 {
		t.Fatalf("single point grew area/width: %+v", m)
	}
}

// TestWidthAtFractionNonFiniteFraction guards the remaining NaN inlet: a
// non-finite fraction must yield zero width, never a NaN threshold walk.
func TestWidthAtFractionNonFiniteFraction(t *testing.T) {
	w := &Waveform{T: []float64{0, 1e-12, 2e-12}, V: []float64{0, 0.6, 0}}
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := WidthAtFraction(w, 0, f); got != 0 {
			t.Fatalf("fraction %v: width %v, want 0", f, got)
		}
	}
	if got := WidthAtFraction(w, 0, 0.5); got <= 0 {
		t.Fatalf("healthy half-height width %v, want > 0", got)
	}
}
