package circuit

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"stanoise/internal/device"
)

// Write emits the circuit as a netlist in the same SPICE subset Parse
// accepts, so netlists round-trip. Table-driven VCCS elements have no
// netlist form and are emitted as comments.
func (c *Circuit) Write(w io.Writer, title string) error {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, ".title %s\n", title)
	}
	for _, r := range c.Resistors {
		fmt.Fprintf(&b, "%s %s %s %.6g\n", r.Name, c.NodeName(r.A), c.NodeName(r.B), r.R)
	}
	for _, cp := range c.Capacitors {
		fmt.Fprintf(&b, "%s %s %s %.6g\n", cp.Name, c.NodeName(cp.A), c.NodeName(cp.B), cp.C)
	}
	for _, v := range c.VSources {
		fmt.Fprintf(&b, "%s %s %s %s\n", v.Name, c.NodeName(v.Pos), c.NodeName(v.Neg), sourceSpec(v.W.T, v.W.V))
	}
	for _, i := range c.ISources {
		fmt.Fprintf(&b, "%s %s %s %s\n", i.Name, c.NodeName(i.Pos), c.NodeName(i.Neg), sourceSpec(i.W.T, i.W.V))
	}
	// Models: group identical parameter sets.
	modelName := map[string]string{}
	var modelLines []string
	for _, m := range c.Mosfets {
		key := modelKey(m.P)
		if _, ok := modelName[key]; !ok {
			name := fmt.Sprintf("mod%d", len(modelName)+1)
			modelName[key] = name
			kind := "NMOS"
			if m.P.Kind == device.PMOS {
				kind = "PMOS"
			}
			modelLines = append(modelLines,
				fmt.Sprintf(".model %s %s (KP=%.6g VT0=%.6g LAMBDA=%.6g)", name, kind, m.P.KP, m.P.VT0, m.P.Lambda))
		}
	}
	for _, m := range c.Mosfets {
		fmt.Fprintf(&b, "%s %s %s %s %s W=%.6g L=%.6g",
			m.Name, c.NodeName(m.D), c.NodeName(m.G), c.NodeName(m.S), modelName[modelKey(m.P)], m.P.W, m.P.L)
		// Nonlinear gate-charge instance parameters, only when present:
		// constant-cap devices keep the legacy line byte-for-byte, which
		// is what keeps pre-nlcap charstore netlist keys stable.
		if !m.P.CGD.IsZero() {
			fmt.Fprintf(&b, " CGDCP=%.6g CGDCO=%.6g CGDP0=%.6g CGDP1=%.6g",
				m.P.CGD.Cp, m.P.CGD.Co, m.P.CGD.P0, m.P.CGD.P1)
		}
		if !m.P.CGS.IsZero() {
			fmt.Fprintf(&b, " CGSCP=%.6g CGSCO=%.6g CGSP0=%.6g CGSP1=%.6g",
				m.P.CGS.Cp, m.P.CGS.Co, m.P.CGS.P0, m.P.CGS.P1)
		}
		b.WriteByte('\n')
	}
	sort.Strings(modelLines)
	for _, l := range modelLines {
		fmt.Fprintln(&b, l)
	}
	for _, v := range c.VCCSs {
		fmt.Fprintf(&b, "* vccs %s: I(%s) = f(V(%s), V(%s)) — table element, no netlist form\n",
			v.Name, c.NodeName(v.Out), c.NodeName(v.Ctrl), c.NodeName(v.Out))
	}
	b.WriteString(".end\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func modelKey(p device.Params) string {
	return fmt.Sprintf("%v/%.6g/%.6g/%.6g", p.Kind, p.KP, p.VT0, p.Lambda)
}

// sourceSpec renders a waveform as DC or PWL. Points are formatted with
// the shortest exact representation (not a fixed precision): waveform
// builders separate breakpoints by as little as 1 fs, and rounding two
// such times to the same printed value would emit a PWL that Parse rejects
// as non-increasing — netlists must round-trip losslessly.
func sourceSpec(ts, vs []float64) string {
	exact := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	if len(ts) == 1 {
		return "DC " + exact(vs[0])
	}
	var b strings.Builder
	b.WriteString("PWL(")
	for i := range ts {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(exact(ts[i]))
		b.WriteByte(' ')
		b.WriteString(exact(vs[i]))
	}
	b.WriteByte(')')
	return b.String()
}
