package circuit

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"stanoise/internal/device"
	"stanoise/internal/wave"
)

// ParseError reports a netlist syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("netlist line %d: %s", e.Line, e.Msg)
}

// Parse reads a SPICE-subset netlist:
//
//   - comment
//     R<name> a b <value>
//     C<name> a b <value>
//     V<name> p n DC <value>
//     V<name> p n PWL(<t1> <v1> <t2> <v2> ...)
//     V<name> p n RAMP(<v0> <v1> <t0> <tr>)
//     I<name> p n DC <value>
//     M<name> d g s <model> W=<value> L=<value> [nonlinear-cap params]
//     .model <name> NMOS|PMOS (KP=<v> VT0=<v> LAMBDA=<v>)
//     .end
//
// The optional M-line nonlinear-cap parameters carry the NLMOS tanh
// gate-charge model per instance (see device.CapParams): CGDCP/CGDCO/
// CGDP0/CGDP1 for the gate-drain cap and CGSCP/CGSCO/CGSP0/CGSP1 for the
// gate-source cap. Cp and Co must be non-negative and, like every value,
// finite; absent parameters mean constant (or no) gate caps.
//
// Engineering suffixes (f p n u m k meg g t) are accepted on all numbers.
// Model cards may appear after the devices that reference them.
func Parse(r io.Reader) (*Circuit, error) {
	ckt := New()
	type pendingMOS struct {
		line              int
		name, d, g, s, mo string
		w, l              float64
		cgd, cgs          device.CapParams
	}
	var pending []pendingMOS
	models := map[string]device.Params{}

	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for scan.Scan() {
		lineNo++
		line := strings.TrimSpace(scan.Text())
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		fields := tokenize(line)
		if len(fields) == 0 {
			continue
		}
		head := strings.ToUpper(fields[0])
		fail := func(format string, args ...any) error {
			return &ParseError{Line: lineNo, Msg: fmt.Sprintf(format, args...)}
		}
		switch {
		case head == ".END":
			goto done
		case head == ".TITLE":
			// informational only
		case head == ".MODEL":
			if len(fields) < 3 {
				return nil, fail(".model needs a name and a type")
			}
			p, err := parseModel(fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			models[strings.ToLower(fields[1])] = p
		case head[0] == 'R':
			if len(fields) != 4 {
				return nil, fail("resistor needs 2 nodes and a value")
			}
			v, err := parseValue(fields[3])
			if err != nil {
				return nil, fail("bad resistance %q: %v", fields[3], err)
			}
			if v <= 0 {
				return nil, fail("non-positive resistance %g", v)
			}
			ckt.AddR(fields[0], fields[1], fields[2], v)
		case head[0] == 'C':
			if len(fields) != 4 {
				return nil, fail("capacitor needs 2 nodes and a value")
			}
			v, err := parseValue(fields[3])
			if err != nil {
				return nil, fail("bad capacitance %q: %v", fields[3], err)
			}
			if v < 0 {
				return nil, fail("negative capacitance %g", v)
			}
			ckt.AddC(fields[0], fields[1], fields[2], v)
		case head[0] == 'V', head[0] == 'I':
			if len(fields) < 4 {
				return nil, fail("source needs 2 nodes and a value spec")
			}
			w, err := parseSource(fields[3:])
			if err != nil {
				return nil, fail("%v", err)
			}
			if head[0] == 'V' {
				ckt.AddV(fields[0], fields[1], fields[2], w)
			} else {
				ckt.AddI(fields[0], fields[1], fields[2], w)
			}
		case head[0] == 'M':
			if len(fields) < 5 {
				return nil, fail("mosfet needs d g s and a model")
			}
			pm := pendingMOS{line: lineNo, name: fields[0],
				d: fields[1], g: fields[2], s: fields[3], mo: strings.ToLower(fields[4])}
			for _, f := range fields[5:] {
				k, v, ok := strings.Cut(strings.ToUpper(f), "=")
				if !ok {
					return nil, fail("bad mosfet parameter %q", f)
				}
				val, err := parseValue(v)
				if err != nil {
					return nil, fail("bad mosfet parameter %q: %v", f, err)
				}
				switch k {
				case "W":
					pm.w = val
				case "L":
					pm.l = val
				case "CGDCP":
					pm.cgd.Cp = val
				case "CGDCO":
					pm.cgd.Co = val
				case "CGDP0":
					pm.cgd.P0 = val
				case "CGDP1":
					pm.cgd.P1 = val
				case "CGSCP":
					pm.cgs.Cp = val
				case "CGSCO":
					pm.cgs.Co = val
				case "CGSP0":
					pm.cgs.P0 = val
				case "CGSP1":
					pm.cgs.P1 = val
				default:
					return nil, fail("unknown mosfet parameter %q", k)
				}
			}
			if pm.w <= 0 || pm.l <= 0 {
				return nil, fail("mosfet %s needs positive W and L", fields[0])
			}
			if pm.cgd.Cp < 0 || pm.cgd.Co < 0 || pm.cgs.Cp < 0 || pm.cgs.Co < 0 {
				return nil, fail("mosfet %s has negative gate capacitance", fields[0])
			}
			pending = append(pending, pm)
		default:
			return nil, fail("unknown element %q", fields[0])
		}
	}
done:
	if err := scan.Err(); err != nil {
		return nil, err
	}
	for _, pm := range pending {
		model, ok := models[pm.mo]
		if !ok {
			return nil, &ParseError{Line: pm.line, Msg: fmt.Sprintf("mosfet %s references unknown model %q", pm.name, pm.mo)}
		}
		p := model
		p.W, p.L = pm.w, pm.l
		p.CGD, p.CGS = pm.cgd, pm.cgs
		ckt.AddM(pm.name, pm.d, pm.g, pm.s, p)
	}
	return ckt, nil
}

// tokenize splits a line into fields, keeping parenthesised groups (e.g.
// "PWL(0 0 1n 1)") as single tokens.
func tokenize(line string) []string {
	var out []string
	depth := 0
	cur := strings.Builder{}
	for _, r := range line {
		switch {
		case r == '(':
			depth++
			cur.WriteRune(r)
		case r == ')':
			depth--
			cur.WriteRune(r)
		case (r == ' ' || r == '\t') && depth == 0:
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// parseModel handles ".model name NMOS|PMOS (K=V ...)" with the name and
// following fields passed in.
func parseModel(fields []string) (device.Params, error) {
	var p device.Params
	if len(fields) < 2 {
		return p, fmt.Errorf(".model needs a type")
	}
	switch strings.ToUpper(fields[1]) {
	case "NMOS":
		p.Kind = device.NMOS
	case "PMOS":
		p.Kind = device.PMOS
	default:
		return p, fmt.Errorf("unknown model type %q", fields[1])
	}
	params := strings.Join(fields[2:], " ")
	params = strings.TrimPrefix(strings.TrimSuffix(strings.TrimSpace(params), ")"), "(")
	for _, kv := range strings.Fields(params) {
		k, v, ok := strings.Cut(strings.ToUpper(kv), "=")
		if !ok {
			return p, fmt.Errorf("bad model parameter %q", kv)
		}
		val, err := parseValue(v)
		if err != nil {
			return p, fmt.Errorf("bad model parameter %q: %v", kv, err)
		}
		switch k {
		case "KP":
			p.KP = val
		case "VT0", "VTO":
			p.VT0 = val
		case "LAMBDA":
			p.Lambda = val
		default:
			return p, fmt.Errorf("unknown model parameter %q", k)
		}
	}
	if p.KP <= 0 {
		return p, fmt.Errorf("model needs positive KP")
	}
	return p, nil
}

// parseSource handles "DC v", "PWL(...)" and "RAMP(v0 v1 t0 tr)".
func parseSource(fields []string) (*wave.Waveform, error) {
	spec := strings.Join(fields, " ")
	upper := strings.ToUpper(spec)
	switch {
	case strings.HasPrefix(upper, "DC"):
		rest := strings.TrimSpace(spec[2:])
		v, err := parseValue(rest)
		if err != nil {
			return nil, fmt.Errorf("bad DC value %q: %v", rest, err)
		}
		return wave.Constant(v), nil
	case strings.HasPrefix(upper, "PWL"):
		vals, err := parseParenValues(spec[3:])
		if err != nil {
			return nil, err
		}
		if len(vals) < 4 || len(vals)%2 != 0 {
			return nil, fmt.Errorf("PWL needs an even number (>=4) of values")
		}
		ts := make([]float64, 0, len(vals)/2)
		vs := make([]float64, 0, len(vals)/2)
		for i := 0; i < len(vals); i += 2 {
			ts = append(ts, vals[i])
			vs = append(vs, vals[i+1])
		}
		for i := 1; i < len(ts); i++ {
			if ts[i] <= ts[i-1] {
				return nil, fmt.Errorf("PWL times must be strictly increasing")
			}
		}
		return wave.FromPoints(ts, vs), nil
	case strings.HasPrefix(upper, "RAMP"):
		vals, err := parseParenValues(spec[4:])
		if err != nil {
			return nil, err
		}
		if len(vals) != 4 {
			return nil, fmt.Errorf("RAMP needs (v0 v1 t0 tr)")
		}
		if vals[3] <= 0 {
			return nil, fmt.Errorf("RAMP transition time must be positive")
		}
		return wave.SaturatedRamp(vals[0], vals[1], vals[2], vals[3]), nil
	default:
		// Bare value: treat as DC.
		v, err := parseValue(spec)
		if err != nil {
			return nil, fmt.Errorf("unknown source spec %q", spec)
		}
		return wave.Constant(v), nil
	}
}

func parseParenValues(s string) ([]float64, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	var out []float64
	for _, f := range strings.Fields(strings.ReplaceAll(s, ",", " ")) {
		v, err := parseValue(f)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %v", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseValue parses a number with an optional SPICE engineering suffix.
func parseValue(s string) (float64, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return 0, fmt.Errorf("empty value")
	}
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "meg"):
		mult, s = 1e6, s[:len(s)-3]
	case strings.HasSuffix(s, "f"):
		mult, s = 1e-15, s[:len(s)-1]
	case strings.HasSuffix(s, "p"):
		mult, s = 1e-12, s[:len(s)-1]
	case strings.HasSuffix(s, "n"):
		mult, s = 1e-9, s[:len(s)-1]
	case strings.HasSuffix(s, "u"):
		mult, s = 1e-6, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult, s = 1e-3, s[:len(s)-1]
	case strings.HasSuffix(s, "k"):
		mult, s = 1e3, s[:len(s)-1]
	case strings.HasSuffix(s, "g"):
		mult, s = 1e9, s[:len(s)-1]
	case strings.HasSuffix(s, "t"):
		mult, s = 1e12, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	v *= mult
	// ParseFloat happily accepts "nan" and "inf", and a huge mantissa can
	// overflow to +Inf once the engineering suffix is applied ("1e305k") —
	// either would silently poison every matrix stamp downstream, so
	// element values must be finite after scaling.
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value")
	}
	return v, nil
}
