package circuit

import (
	"math"
	"strings"
	"testing"

	"stanoise/internal/device"
)

func TestParseValueSuffixes(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"100", 100}, {"1k", 1000}, {"2.5meg", 2.5e6}, {"3g", 3e9},
		{"10u", 1e-5}, {"5m", 5e-3}, {"20f", 20e-15}, {"1.5p", 1.5e-12},
		{"7n", 7e-9}, {"2t", 2e12}, {"-0.38", -0.38},
	}
	for _, c := range cases {
		got, err := parseValue(c.in)
		if err != nil {
			t.Errorf("parseValue(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-9*math.Abs(c.want) {
			t.Errorf("parseValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if _, err := parseValue("xyz"); err == nil {
		t.Error("garbage value accepted")
	}
}

const demoNetlist = `
* demo RC + inverter
.title demo
Vdd vdd 0 DC 1.2
Vin in 0 PWL(0 0 100p 0 200p 1.2 1n 1.2)
R1 in mid 1k
C1 mid 0 100f
Mp out in vdd pch W=2.6u L=0.13u
Mn out in 0 nch W=1.3u L=0.13u
Cl out 0 20f
.model nch NMOS (KP=340u VT0=0.35 LAMBDA=0.15)
.model pch PMOS (KP=90u VT0=-0.38 LAMBDA=0.2)
.end
`

func TestParseNetlist(t *testing.T) {
	ckt, err := Parse(strings.NewReader(demoNetlist))
	if err != nil {
		t.Fatal(err)
	}
	if len(ckt.Resistors) != 1 || len(ckt.Capacitors) != 2 || len(ckt.VSources) != 2 || len(ckt.Mosfets) != 2 {
		t.Fatalf("element counts: R=%d C=%d V=%d M=%d",
			len(ckt.Resistors), len(ckt.Capacitors), len(ckt.VSources), len(ckt.Mosfets))
	}
	if ckt.Resistors[0].R != 1000 {
		t.Errorf("R1 = %v", ckt.Resistors[0].R)
	}
	// PWL source midpoint.
	if got := ckt.VSources[1].W.At(150e-12); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("PWL at 150ps = %v", got)
	}
	// Model resolution (declared after use).
	var nmos, pmos *Mosfet
	for i := range ckt.Mosfets {
		if ckt.Mosfets[i].P.Kind == device.NMOS {
			nmos = &ckt.Mosfets[i]
		} else {
			pmos = &ckt.Mosfets[i]
		}
	}
	if nmos == nil || pmos == nil {
		t.Fatal("polarities not resolved")
	}
	if math.Abs(nmos.P.KP-340e-6) > 1e-12 || nmos.P.VT0 != 0.35 {
		t.Errorf("nmos params %+v", nmos.P)
	}
	if math.Abs(pmos.P.W-2.6e-6) > 1e-15 {
		t.Errorf("pmos W = %v", pmos.P.W)
	}
}

func TestParseRAMP(t *testing.T) {
	ckt, err := Parse(strings.NewReader("V1 a 0 RAMP(1.2 0 100p 50p)\nR1 a 0 1k\n.end\n"))
	if err != nil {
		t.Fatal(err)
	}
	w := ckt.VSources[0].W
	if w.At(0) != 1.2 || w.At(1e-9) != 0 {
		t.Errorf("ramp endpoints %v %v", w.At(0), w.At(1e-9))
	}
	if got := w.At(125e-12); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("ramp midpoint = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"R1 a b\n",                       // missing value
		"R1 a b -5\n",                    // negative resistance
		"C1 a b -1f\n",                   // negative capacitance
		"Q1 a b c\n",                     // unknown element
		"M1 d g s nomodel W=1u L=0.1u\n", // unknown model
		"M1 d g s m W=1u\n.model m NMOS (KP=1u)\n",     // missing L
		"V1 a 0 PWL(0 0 0 1)\n",                        // non-increasing PWL
		"V1 a 0 RAMP(0 1 0 0)\n",                       // zero ramp time
		".model m NMOS (KP=0)\nM1 d g s m W=1u L=1u\n", // bad KP
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("accepted bad netlist: %q", src)
		}
	}
}

func TestParseErrorHasLineNumber(t *testing.T) {
	_, err := Parse(strings.NewReader("R1 a b 1k\nR2 a b\n"))
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 2 {
		t.Errorf("line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 2") {
		t.Errorf("message %q", pe.Error())
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	ckt, err := Parse(strings.NewReader(demoNetlist))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := ckt.Write(&b, "round trip"); err != nil {
		t.Fatal(err)
	}
	ckt2, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, b.String())
	}
	if ckt2.ElementCount() != ckt.ElementCount() {
		t.Errorf("element count %d != %d", ckt2.ElementCount(), ckt.ElementCount())
	}
	// Waveforms survive.
	if got := ckt2.VSources[1].W.At(150e-12); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("PWL lost in round trip: %v", got)
	}
}

func TestTokenizeParens(t *testing.T) {
	toks := tokenize("V1 a 0 PWL(0 0 1n 1.2)")
	if len(toks) != 4 || toks[3] != "PWL(0 0 1n 1.2)" {
		t.Errorf("tokens = %v", toks)
	}
}

func TestCircuitNodeBasics(t *testing.T) {
	c := New()
	if c.Node("0") != Ground || c.Node("gnd") != Ground {
		t.Error("ground aliases wrong")
	}
	a := c.Node("a")
	if again := c.Node("a"); again != a {
		t.Error("node not deduplicated")
	}
	if c.NodeName(a) != "a" || c.NodeName(Ground) != "0" {
		t.Error("NodeName wrong")
	}
	if _, ok := c.LookupNode("zz"); ok {
		t.Error("phantom node")
	}
	if c.VSourceIndex("nope") != -1 {
		t.Error("phantom vsource")
	}
}
