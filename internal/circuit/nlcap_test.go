package circuit

import (
	"math"
	"strings"
	"testing"

	"stanoise/internal/device"
)

// TestParseMOSNLCapParams pins the M-line wire form of the NLMOS
// gate-charge model: all eight CGD*/CGS* parameters land in the instance
// CapParams, a bare M-line leaves them zero (legacy netlists unchanged),
// and the writer round-trips the model — emitting the parameters only when
// a cap model is present.
func TestParseMOSNLCapParams(t *testing.T) {
	src := `.model nch NMOS (KP=340u VT0=0.35 LAMBDA=0.15)
M1 d g s nch W=2u L=0.13u CGDCP=1.5f CGDCO=0.5f CGDP0=-0.4 CGDP1=1.25 CGSCP=2f CGSCO=1f CGSP0=-0.75 CGSP1=2
M2 d2 g s nch W=2u L=0.13u
`
	ckt, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(ckt.Mosfets) != 2 {
		t.Fatalf("parsed %d mosfets, want 2", len(ckt.Mosfets))
	}
	m1 := ckt.Mosfets[0]
	// The parser multiplies the engineering suffix in at runtime (1.5 ×
	// 1e-15 with one rounding); a femto *variable* reproduces that bit for
	// bit, where a folded constant would not.
	femto := 1e-15
	wantGD := device.CapParams{Cp: 1.5 * femto, Co: 0.5 * femto, P0: -0.4, P1: 1.25}
	wantGS := device.CapParams{Cp: 2 * femto, Co: 1 * femto, P0: -0.75, P1: 2}
	if m1.P.CGD != wantGD {
		t.Errorf("M1 CGD = %+v, want %+v", m1.P.CGD, wantGD)
	}
	if m1.P.CGS != wantGS {
		t.Errorf("M1 CGS = %+v, want %+v", m1.P.CGS, wantGS)
	}
	if !m1.P.NonlinearCaps() {
		t.Error("M1 does not report nonlinear caps")
	}
	m2 := ckt.Mosfets[1]
	if !m2.P.CGD.IsZero() || !m2.P.CGS.IsZero() {
		t.Errorf("bare M-line grew cap params: CGD %+v CGS %+v", m2.P.CGD, m2.P.CGS)
	}

	var b strings.Builder
	if err := ckt.Write(&b, "round trip"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "CGDCP=") || !strings.Contains(out, "CGSP1=") {
		t.Fatalf("writer dropped nl-cap params:\n%s", out)
	}
	// The bare device's line must stay clean — emitting zero-valued params
	// would change every legacy netlist byte.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "M2") && strings.Contains(line, "CG") {
			t.Errorf("bare M-line gained cap params: %s", line)
		}
	}
	ckt2, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	// The writer prints %.6g (same as W/L), so round-tripped values agree
	// to print precision, not bitwise.
	closeTo := func(got, want float64) bool {
		return math.Abs(got-want) <= 1e-6*math.Abs(want)
	}
	rt := ckt2.Mosfets[0].P
	for _, pair := range [][2]device.CapParams{{rt.CGD, wantGD}, {rt.CGS, wantGS}} {
		got, want := pair[0], pair[1]
		if !closeTo(got.Cp, want.Cp) || !closeTo(got.Co, want.Co) ||
			!closeTo(got.P0, want.P0) || !closeTo(got.P1, want.P1) {
			t.Errorf("round trip changed cap params: got %+v, want %+v", got, want)
		}
	}
}

// TestParseMOSNLCapRejections pins the typed-error contract for hostile
// nl-cap parameters: negative pedestals or modulation depths and non-finite
// values are *ParseError rejections carrying the line number — never a
// panic, never a silently-poisoned matrix.
func TestParseMOSNLCapRejections(t *testing.T) {
	model := ".model nch NMOS (KP=340u VT0=0.35)\n"
	cases := []struct {
		name, line, want string
	}{
		{"negative_cgd_cp", "M1 d g s nch W=1u L=1u CGDCP=-1f", "negative gate capacitance"},
		{"negative_cgs_co", "M1 d g s nch W=1u L=1u CGSCO=-2f", "negative gate capacitance"},
		// "nan"/"inf" lose their last letter to an engineering suffix and
		// fail float parsing; the typed rejection is what matters.
		{"nan_param", "M1 d g s nch W=1u L=1u CGSP0=nan", "bad mosfet parameter"},
		{"inf_param", "M1 d g s nch W=1u L=1u CGDCO=inf", "bad mosfet parameter"},
		{"unknown_param", "M1 d g s nch W=1u L=1u CGXCP=1f", "unknown mosfet parameter"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(model + tc.line + "\n"))
			if err == nil {
				t.Fatalf("%q parsed without error", tc.line)
			}
			pe, ok := err.(*ParseError)
			if !ok {
				t.Fatalf("error is %T, want *ParseError: %v", err, err)
			}
			if pe.Line != 2 {
				t.Errorf("ParseError line %d, want 2", pe.Line)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// Zero-valued params are legal (Co = 0 is the constant-cap reduction).
	if _, err := Parse(strings.NewReader(model + "M1 d g s nch W=1u L=1u CGDCP=1f CGDCO=0\n")); err != nil {
		t.Errorf("zero-modulation cap rejected: %v", err)
	}
}
