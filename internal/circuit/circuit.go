// Package circuit provides the netlist representation consumed by the
// transient simulator: named nodes and the element types needed for noise
// analysis (resistors, capacitors, independent sources, Level-1 MOSFETs and
// table-driven voltage-controlled current sources).
//
// A Circuit is a plain data structure; all solving lives in internal/sim.
// The package also implements a SPICE-subset parser and writer so netlists
// can be inspected, archived and replayed (see cmd/spicesim).
package circuit

import (
	"fmt"

	"stanoise/internal/device"
	"stanoise/internal/wave"
)

// NodeID identifies a circuit node. Ground is the constant Ground and is
// not an unknown of the system.
type NodeID int

// Ground is the reference node "0".
const Ground NodeID = -1

// Circuit is a flat netlist.
type Circuit struct {
	nodeIndex map[string]NodeID
	nodeNames []string

	Resistors  []Resistor
	Capacitors []Capacitor
	VSources   []VSource
	ISources   []ISource
	Mosfets    []Mosfet
	VCCSs      []VCCS
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{nodeIndex: map[string]NodeID{"0": Ground, "gnd": Ground, "GND": Ground}}
}

// Node returns the NodeID for name, creating the node on first use.
// The names "0", "gnd" and "GND" are the reference node.
func (c *Circuit) Node(name string) NodeID {
	if id, ok := c.nodeIndex[name]; ok {
		return id
	}
	id := NodeID(len(c.nodeNames))
	c.nodeIndex[name] = id
	c.nodeNames = append(c.nodeNames, name)
	return id
}

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// NodeName returns the name of id, or "0" for ground.
func (c *Circuit) NodeName(id NodeID) string {
	if id == Ground {
		return "0"
	}
	return c.nodeNames[id]
}

// LookupNode returns the NodeID for an existing node name.
func (c *Circuit) LookupNode(name string) (NodeID, bool) {
	id, ok := c.nodeIndex[name]
	return id, ok
}

// NodeNames returns the names of all non-ground nodes in index order.
func (c *Circuit) NodeNames() []string {
	return append([]string(nil), c.nodeNames...)
}

// Resistor is a linear two-terminal resistance.
type Resistor struct {
	Name string
	A, B NodeID
	R    float64 // ohms
}

// Capacitor is a linear two-terminal capacitance.
type Capacitor struct {
	Name string
	A, B NodeID
	C    float64 // farads
}

// VSource is an independent voltage source; its value over time is a
// waveform (use wave.Constant for DC sources). The branch current is an
// extra MNA unknown and can be probed from simulation results.
type VSource struct {
	Name     string
	Pos, Neg NodeID
	W        *wave.Waveform
}

// ISource is an independent current source driving current from Neg to Pos
// inside the source (i.e. injecting W(t) amperes into the Pos node).
type ISource struct {
	Name     string
	Pos, Neg NodeID
	W        *wave.Waveform
}

// Mosfet is a Level-1 transistor instance. The bulk terminal is implicit
// (tied to the source), consistent with the device model in internal/device.
type Mosfet struct {
	Name    string
	D, G, S NodeID
	P       device.Params
}

// VCCSFunc evaluates a voltage-controlled current source: the current
// injected into the output node as a function of the controlling voltage
// and the output voltage, together with its partial derivatives.
type VCCSFunc interface {
	// Eval returns (i, di/dvc, di/dvo).
	Eval(vc, vo float64) (i, gc, go_ float64)
}

// VCCS injects I = f(V(Ctrl), V(Out)) into Out. It is the circuit-level
// form of the paper's eq. (1) and exists so characterised load-curve tables
// can be validated inside full transistor-level netlists.
type VCCS struct {
	Name      string
	Ctrl, Out NodeID
	F         VCCSFunc
}

// AddR appends a resistor between nodes a and b.
func (c *Circuit) AddR(name, a, b string, r float64) {
	if r <= 0 {
		panic(fmt.Sprintf("circuit: resistor %s with non-positive value %g", name, r))
	}
	c.Resistors = append(c.Resistors, Resistor{Name: name, A: c.Node(a), B: c.Node(b), R: r})
}

// AddC appends a capacitor between nodes a and b.
func (c *Circuit) AddC(name, a, b string, f float64) {
	if f < 0 {
		panic(fmt.Sprintf("circuit: capacitor %s with negative value %g", name, f))
	}
	if f == 0 {
		return // zero caps are legal no-ops; skip the stamp entirely
	}
	c.Capacitors = append(c.Capacitors, Capacitor{Name: name, A: c.Node(a), B: c.Node(b), C: f})
}

// AddV appends a voltage source with the positive terminal at pos.
func (c *Circuit) AddV(name, pos, neg string, w *wave.Waveform) {
	c.VSources = append(c.VSources, VSource{Name: name, Pos: c.Node(pos), Neg: c.Node(neg), W: w})
}

// AddVDC appends a constant voltage source.
func (c *Circuit) AddVDC(name, pos, neg string, v float64) {
	c.AddV(name, pos, neg, wave.Constant(v))
}

// AddI appends a current source injecting w(t) into pos.
func (c *Circuit) AddI(name, pos, neg string, w *wave.Waveform) {
	c.ISources = append(c.ISources, ISource{Name: name, Pos: c.Node(pos), Neg: c.Node(neg), W: w})
}

// AddM appends a MOSFET.
func (c *Circuit) AddM(name, d, g, s string, p device.Params) {
	c.Mosfets = append(c.Mosfets, Mosfet{Name: name, D: c.Node(d), G: c.Node(g), S: c.Node(s), P: p})
}

// AddVCCS appends a table-driven voltage-controlled current source.
func (c *Circuit) AddVCCS(name, ctrl, out string, f VCCSFunc) {
	c.VCCSs = append(c.VCCSs, VCCS{Name: name, Ctrl: c.Node(ctrl), Out: c.Node(out), F: f})
}

// VSourceIndex returns the index of the named voltage source, for current
// probing, or -1 when absent.
func (c *Circuit) VSourceIndex(name string) int {
	for i := range c.VSources {
		if c.VSources[i].Name == name {
			return i
		}
	}
	return -1
}

// ElementCount returns the total number of elements, a convenient size
// statistic for reports.
func (c *Circuit) ElementCount() int {
	return len(c.Resistors) + len(c.Capacitors) + len(c.VSources) +
		len(c.ISources) + len(c.Mosfets) + len(c.VCCSs)
}
