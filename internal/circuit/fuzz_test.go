package circuit

import (
	"strings"
	"testing"
)

// fuzzSeeds covers every element class, every source spec form, every
// engineering suffix, comments, model cards (before and after use),
// .end/.title handling and a sampler of malformed lines — the corpus
// `go test -fuzz=FuzzParse` mutates from. Checked-in crash reproducers
// live in testdata/fuzz/FuzzParse.
var fuzzSeeds = []string{
	"* empty netlist\n",
	".end\n",
	".title fuzz seed\nR1 a b 1k\nC1 a 0 10f\n.end\n",
	"Rload in out 4.7meg\n",
	"Cpar n1 0 0\n",
	"V1 a 0 DC 1.2\n",
	"V2 b 0 PWL(0 0 1n 1.2 2n 0)\n",
	"V3 c 0 RAMP(0 1.2 100p 60p)\n",
	"V4 d 0 0.75\n",
	"Iinj n 0 DC 1m\n",
	"M1 d g s nch W=2u L=0.13u\n.model nch NMOS (KP=340u VT0=0.35 LAMBDA=0.15)\n",
	".model pch PMOS (KP=90u VT0=-0.38)\nM2 out in vdd pch W=1.2u L=130n\n",
	// NLMOS nonlinear gate-charge parameters, well-formed and hostile.
	"M1 d g s nch W=2u L=0.13u CGDCP=1.5f CGDCO=0.5f CGDP0=-0.4 CGDP1=1.2 CGSCP=2f CGSCO=1f CGSP0=-0.7 CGSP1=2\n.model nch NMOS (KP=340u VT0=0.35)\n",
	"M1 d g s nch W=1u L=1u CGSCP=3f CGSCO=0\n.model nch NMOS (KP=1m)\n",
	"M1 d g s nch W=1u L=1u CGDCP=-1f\n.model nch NMOS (KP=1m)\n",
	"M1 d g s nch W=1u L=1u CGSCO=nan\n.model nch NMOS (KP=1m)\n",
	"M1 d g s nch W=1u L=1u CGDP1=inf\n.model nch NMOS (KP=1m)\n",
	"M1 d g s nch W=1u L=1u CGDCP=1e306k\n.model nch NMOS (KP=1m)\n",
	"R1 a b 1t\nR2 b c 1g\nR3 c d 1u\nR4 d e 1p\nR5 e f 1f\n",
	// Malformed on purpose: the parser must error, never panic.
	"R1 a b\n",
	"R1 a b -5\n",
	"C1 a 0 -1f\n",
	"V1 a 0 PWL(0 0)\n",
	"V1 a 0 PWL(0 0 0 1)\n",
	"V1 a 0 RAMP(0 1 0 0)\n",
	"M1 d g s missing W=1u L=1u\n",
	"M1 d g s nch W=0 L=1u\n.model nch NMOS (KP=1m)\n",
	"M1 d g s nch Z=1\n",
	".model x NMOS (KP=0)\n",
	".model x DIODE ()\n",
	".model\n",
	"Q1 a b c\n",
	"V1 a 0 DC\n",
	"V1 a 0 PWL(((\n",
	"R1 a b 1kk\n",
	"R1 a b nan\n",
	"C1 a 0 inf\n",
	"R1 a b 1e306k\n",
	"\x00\x01\x02",
	strings.Repeat("(", 64) + "\n",
}

// TestParseRejectsNonFiniteValues pins the fuzz-found hole: "nan"/"inf"
// parse as floats, and a large mantissa can overflow to +Inf once the
// engineering suffix multiplies in — all must be parse errors, or they
// poison the MNA matrix silently.
func TestParseRejectsNonFiniteValues(t *testing.T) {
	for _, line := range []string{
		"R1 a b nan",
		"R1 a b nAnK",
		"C1 a 0 inf",
		"V1 a 0 DC -inf",
		"R1 a b 1e306k",
		"C1 a 0 1e300t",
	} {
		if _, err := Parse(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("%q parsed without error", line)
		}
	}
	// Large-but-finite survives the suffix.
	if _, err := Parse(strings.NewReader("R1 a b 1e300\n")); err != nil {
		t.Errorf("finite value rejected: %v", err)
	}
}

// FuzzParse asserts the crash-safety contract of the netlist parser: any
// input either parses into a circuit or returns an error — it never
// panics, and a reported *ParseError always carries a positive line
// number.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		ckt, err := Parse(strings.NewReader(input))
		if err != nil {
			if ckt != nil {
				t.Errorf("Parse returned both a circuit and an error: %v", err)
			}
			var pe *ParseError
			if ok := asParseError(err, &pe); ok && pe.Line <= 0 {
				t.Errorf("ParseError with non-positive line %d: %v", pe.Line, err)
			}
			return
		}
		// A successful parse must round-trip through the writer and parse
		// again: Write emits the same SPICE subset Parse accepts.
		var b strings.Builder
		if werr := ckt.Write(&b, ""); werr != nil {
			t.Fatalf("writing parsed circuit: %v", werr)
		}
		if _, rerr := Parse(strings.NewReader(b.String())); rerr != nil {
			t.Errorf("round trip failed: %v\ninput:\n%s\nrewritten:\n%s", rerr, input, b.String())
		}
	})
}

// asParseError is errors.As without importing errors in the fuzz hot loop.
func asParseError(err error, target **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*target = pe
	}
	return ok
}
