package tech

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Corner describes a process/voltage/temperature operating corner as a set
// of deltas applied to a nominal technology card: a supply multiplier, a
// junction temperature, per-device threshold shifts and per-device mobility
// multipliers. The zero value is the nominal (typical/typical) corner; every
// field has zero-means-nominal semantics so cards, cache keys and stores
// built before the corner axis existed keep their exact identity.
//
// Corners are applied with Apply, which derives a new card; the derived
// card carries the corner so downstream fingerprints (charstore keys,
// charlib cache keys) pick up the corner dimension automatically.
type Corner struct {
	// Name labels the corner ("tt", "ss", "mc0041", ...). It participates
	// in fingerprints so two differently-named corners never alias even if
	// their deltas coincide.
	Name string

	// VddScale multiplies the card's supply voltage; 0 means 1.0 (nominal).
	VddScale float64
	// TempC is the junction temperature in °C; 0 means 25 °C (nominal).
	// Temperature scales mobility as (T/T0)^-1.5 and walks thresholds
	// toward zero by ~1 mV/°C, the standard Level-1 first-order behaviour.
	TempC float64
	// NVTShift is added to the NMOS threshold VT0 (V). Positive = slower.
	NVTShift float64
	// PVTShift is added to the PMOS threshold VT0 (V). VT0 is negative for
	// PMOS, so a negative shift makes the device slower.
	PVTShift float64
	// NKPScale multiplies the NMOS transconductance KP; 0 means 1.0.
	NKPScale float64
	// PKPScale multiplies the PMOS transconductance KP; 0 means 1.0.
	PKPScale float64
}

// nominalTempC is the reference junction temperature of the cards.
const nominalTempC = 25.0

// vddScale resolves the zero-means-nominal supply multiplier.
func (c Corner) vddScale() float64 {
	if c.VddScale == 0 {
		return 1
	}
	return c.VddScale
}

// tempC resolves the zero-means-nominal junction temperature.
func (c Corner) tempC() float64 {
	if c.TempC == 0 {
		return nominalTempC
	}
	return c.TempC
}

// nkpScale resolves the zero-means-nominal NMOS mobility multiplier.
func (c Corner) nkpScale() float64 {
	if c.NKPScale == 0 {
		return 1
	}
	return c.NKPScale
}

// pkpScale resolves the zero-means-nominal PMOS mobility multiplier.
func (c Corner) pkpScale() float64 {
	if c.PKPScale == 0 {
		return 1
	}
	return c.PKPScale
}

// IsNominal reports whether the corner's deltas leave a card untouched.
// The name is ignored: "tt" is nominal, and a nominal corner applied to a
// card yields the base card itself, so tt artefacts share keys (and store
// entries) with legacy corner-less runs by construction.
func (c Corner) IsNominal() bool {
	return c.vddScale() == 1 && c.tempC() == nominalTempC &&
		c.NVTShift == 0 && c.PVTShift == 0 &&
		c.nkpScale() == 1 && c.pkpScale() == 1
}

// Apply derives the technology card for this corner. A nominal corner
// returns the base card unchanged (same pointer — bit-identical keys and
// artefacts). Otherwise the returned card is a shallow copy with scaled
// supply, shifted thresholds and scaled mobilities, carrying the corner in
// its Corner field so every downstream fingerprint includes it. The wire
// parasitics map is shared with the base card: corners model device and
// supply variation; interconnect variation is a layout property outside
// this axis (see docs/ARCHITECTURE.md).
func (c Corner) Apply(t *Tech) *Tech {
	if c.IsNominal() {
		return t
	}
	d := *t
	d.VDD = t.VDD * c.vddScale()
	// First-order temperature behaviour: mobility falls as (T/T0)^-1.5,
	// threshold magnitude falls ~1 mV/°C.
	tk := c.tempC() + 273.15
	tempKP := math.Pow(tk/(nominalTempC+273.15), -1.5)
	dvt := 1e-3 * (c.tempC() - nominalTempC)
	d.NMOS.KP = t.NMOS.KP * c.nkpScale() * tempKP
	d.PMOS.KP = t.PMOS.KP * c.pkpScale() * tempKP
	d.NMOS.VT0 = t.NMOS.VT0 + c.NVTShift - dvt
	d.PMOS.VT0 = t.PMOS.VT0 + c.PVTShift + dvt
	// The C_GS transition of the nonlinear gate-charge model is anchored
	// at the threshold (P0 = −P1·VT0, see WithNonlinearCaps); shift it
	// alongside VT0 so the capacitance still rises where the channel
	// forms. The C_GD transition is overlap-bias-anchored and stays put.
	// This makes Apply commute with WithNonlinearCaps exactly.
	if d.NMOS.CNLFrac != 0 {
		d.NMOS.CNLGSP0 = t.NMOS.CNLGSP0 - d.NMOS.CNLGSP1*(c.NVTShift-dvt)
	}
	if d.PMOS.CNLFrac != 0 {
		d.PMOS.CNLGSP0 = t.PMOS.CNLGSP0 - d.PMOS.CNLGSP1*(c.PVTShift+dvt)
	}
	cc := c
	d.Corner = &cc
	return &d
}

// Fingerprint renders the corner canonically for cache and store keys: the
// name plus every resolved delta at full precision. Two corners with
// different names or different deltas therefore never alias.
func (c Corner) Fingerprint() string {
	return fmt.Sprintf("corner=%s vdd*=%.17g T=%.17g NVT+=%.17g PVT+=%.17g NKP*=%.17g PKP*=%.17g",
		c.Name, c.vddScale(), c.tempC(), c.NVTShift, c.PVTShift, c.nkpScale(), c.pkpScale())
}

// Axis returns the corner's coordinate along the continuation-friendly
// ordering axis: an aggregate drive-strength measure (supply and mobility
// up, thresholds and temperature down = stronger). Corners adjacent on this
// axis have adjacent operating points, which is what makes one corner's
// converged DC solution a good Newton seed for the next —
// charlib.OrderCorners sorts a sweep by it.
func (c Corner) Axis() float64 {
	return c.vddScale() + (c.nkpScale()+c.pkpScale())/2 -
		(c.NVTShift - c.PVTShift) - (c.tempC()-nominalTempC)/300
}

// StandardCorners returns the five named process corners in their canonical
// order: tt (nominal), ff, ss, fs, sf. The tt corner has zero deltas, so
// applying it is the identity.
func StandardCorners() []Corner {
	return []Corner{
		{Name: "tt"},
		{Name: "ff", VddScale: 1.05, NVTShift: -0.03, PVTShift: 0.03, NKPScale: 1.12, PKPScale: 1.12},
		{Name: "ss", VddScale: 0.95, NVTShift: 0.03, PVTShift: -0.03, NKPScale: 0.88, PKPScale: 0.88},
		{Name: "fs", NVTShift: -0.03, PVTShift: -0.03, NKPScale: 1.12, PKPScale: 0.88},
		{Name: "sf", NVTShift: 0.03, PVTShift: 0.03, NKPScale: 0.88, PKPScale: 1.12},
	}
}

// CornerByName resolves a standard corner name. The empty string and "tt"
// both resolve to the nominal corner, mirroring how an absent corner flag
// behaves everywhere else.
func CornerByName(name string) (Corner, error) {
	if name == "" {
		return Corner{Name: "tt"}, nil
	}
	for _, c := range StandardCorners() {
		if c.Name == name {
			return c, nil
		}
	}
	return Corner{}, fmt.Errorf("tech: unknown corner %q (have tt, ff, ss, fs, sf)", name)
}

// ParseCorners resolves a comma-separated list of standard corner names
// ("tt,ss,ff"). Blank elements are skipped; duplicates are rejected so a
// farm invocation never silently double-characterises a corner.
func ParseCorners(list string) ([]Corner, error) {
	var out []Corner
	seen := map[string]bool{}
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, err := CornerByName(name)
		if err != nil {
			return nil, err
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("tech: duplicate corner %q", c.Name)
		}
		seen[c.Name] = true
		out = append(out, c)
	}
	return out, nil
}

// SampleSpec tunes the Monte Carlo corner sampler. The zero value uses the
// default local-variation sigmas (15 mV threshold, 5 %% mobility) around the
// nominal corner.
type SampleSpec struct {
	// SigmaVT is the standard deviation of the per-device threshold shift
	// in volts; 0 means 15 mV.
	SigmaVT float64
	// SigmaKPFrac is the standard deviation of the per-device mobility
	// multiplier around 1; 0 means 0.05.
	SigmaKPFrac float64
	// Base is the corner the samples perturb around (supply, temperature
	// and systematic shifts come from it); the zero value samples around
	// nominal.
	Base Corner
}

// sigmaVT resolves the zero-means-default threshold sigma.
func (s SampleSpec) sigmaVT() float64 {
	if s.SigmaVT == 0 {
		return 0.015
	}
	return s.SigmaVT
}

// sigmaKPFrac resolves the zero-means-default mobility sigma.
func (s SampleSpec) sigmaKPFrac() float64 {
	if s.SigmaKPFrac == 0 {
		return 0.05
	}
	return s.SigmaKPFrac
}

// SampleCorners draws n Monte Carlo device-variation corners from a seeded
// generator: independent Gaussian threshold shifts and mobility multipliers
// per device polarity, stacked on the spec's base corner. The same
// (n, seed, spec) always yields the same samples, so MC artefact keys are
// reproducible across runs and machines. Sample names are "mc0000",
// "mc0001", ... (prefixed with the base corner's name when perturbing a
// non-nominal base), and each sample's index is baked into its name so two
// samples from one draw never alias.
func SampleCorners(n int, seed int64, spec SampleSpec) []Corner {
	rng := rand.New(rand.NewSource(seed))
	prefix := "mc"
	if !spec.Base.IsNominal() {
		prefix = spec.Base.Name + "+mc"
	}
	out := make([]Corner, 0, n)
	for i := 0; i < n; i++ {
		c := spec.Base
		c.Name = fmt.Sprintf("%s%04d", prefix, i)
		c.NVTShift += rng.NormFloat64() * spec.sigmaVT()
		c.PVTShift += rng.NormFloat64() * spec.sigmaVT()
		c.NKPScale = clampScale(c.nkpScale() * (1 + rng.NormFloat64()*spec.sigmaKPFrac()))
		c.PKPScale = clampScale(c.pkpScale() * (1 + rng.NormFloat64()*spec.sigmaKPFrac()))
		out = append(out, c)
	}
	return out
}

// clampScale keeps sampled mobility multipliers physical (strictly
// positive); the 3-sigma default never comes near the floor.
func clampScale(s float64) float64 {
	if s < 0.05 {
		return 0.05
	}
	return s
}

// CornerTag names the corner a card was derived for: the corner name, or
// "nominal" for a base card. It labels the per-corner cache and solver
// counters exposed on /statsz.
func (t *Tech) CornerTag() string {
	if t.Corner == nil {
		return "nominal"
	}
	return t.Corner.Name
}

// FullName renders the card name with its corner ("cmos130@ss"), for logs
// and library metadata; base cards render as the plain name.
func (t *Tech) FullName() string {
	if t.Corner == nil {
		return t.Name
	}
	return t.Name + "@" + t.Corner.Name
}
