package tech

import (
	"math"
	"testing"
)

// TestWithNonlinearCapsDerivation pins the derived-card contract: base
// cards carry no nonlinear-cap model (bit-stability of every legacy key),
// derivation is a fresh card that leaves the base untouched, is idempotent
// (same pointer on a second call), and anchors the C_GS transition at each
// polarity's threshold voltage.
func TestWithNonlinearCapsDerivation(t *testing.T) {
	for _, base := range []*Tech{Tech130(), Tech90()} {
		t.Run(base.Name, func(t *testing.T) {
			if base.NonlinearCaps() {
				t.Fatal("base card reports a nonlinear-cap model")
			}
			nl := base.WithNonlinearCaps()
			if nl == base {
				t.Fatal("derivation returned the base card")
			}
			if base.NonlinearCaps() {
				t.Fatal("derivation mutated the base card")
			}
			if !nl.NonlinearCaps() {
				t.Fatal("derived card reports no nonlinear-cap model")
			}
			if nl.WithNonlinearCaps() != nl {
				t.Error("derivation is not idempotent")
			}
			if nl.VDD != base.VDD || nl.NMOS.VT0 != base.NMOS.VT0 || nl.PMOS.KP != base.PMOS.KP {
				t.Error("derivation changed electrical base parameters")
			}
			// The C_GS transition midpoint u = −P0/P1 must sit at VT0: the
			// capacitance rises exactly where the channel forms.
			if mid := -nl.NMOS.CNLGSP0 / nl.NMOS.CNLGSP1; mid != base.NMOS.VT0 {
				t.Errorf("NMOS C_GS midpoint %g, want VT0 %g", mid, base.NMOS.VT0)
			}
			if mid := -nl.PMOS.CNLGSP0 / nl.PMOS.CNLGSP1; mid != base.PMOS.VT0 {
				t.Errorf("PMOS C_GS midpoint %g, want VT0 %g", mid, base.PMOS.VT0)
			}
		})
	}
}

// TestCornerCommutesWithNonlinearCaps holds the two card derivations to
// their commuting property: for every standard corner and a batch of
// Monte Carlo samples, Apply∘WithNonlinearCaps and WithNonlinearCaps∘Apply
// produce identical device parameters — exactly, because the C_GS slope is
// ±2 (a power of two, so the threshold-anchored P0 arithmetic commutes
// through floating point) and Apply shifts CNLGSP0 by the same VT0 delta it
// applies to the threshold itself. This is what lets libchar derive the
// nonlinear card once up front and still farm corners over it.
func TestCornerCommutesWithNonlinearCaps(t *testing.T) {
	base := Tech130()
	corners := StandardCorners()
	corners = append(corners, SampleCorners(25, 42, SampleSpec{})...)
	for _, c := range corners {
		a := c.Apply(base.WithNonlinearCaps())
		b := c.Apply(base).WithNonlinearCaps()
		if a.NMOS != b.NMOS || a.PMOS != b.PMOS {
			t.Errorf("corner %s: Apply∘With != With∘Apply:\n  %+v\n  %+v\n  %+v\n  %+v",
				c.Name, a.NMOS, b.NMOS, a.PMOS, b.PMOS)
		}
		if a.VDD != b.VDD {
			t.Errorf("corner %s: VDD differs: %g vs %g", c.Name, a.VDD, b.VDD)
		}
	}
	// A temperature corner walks the threshold by dvt; the two orders then
	// associate the VT0 sum differently, so equality holds to an ulp rather
	// than exactly — pin that it stays there.
	hot := Corner{Name: "hot", TempC: 125, NVTShift: 0.03, PVTShift: -0.03}
	a := hot.Apply(base.WithNonlinearCaps())
	b := hot.Apply(base).WithNonlinearCaps()
	if d := math.Abs(a.NMOS.CNLGSP0 - b.NMOS.CNLGSP0); d > 1e-15 {
		t.Errorf("hot corner: NMOS CNLGSP0 differs by %g", d)
	}
	if d := math.Abs(a.PMOS.CNLGSP0 - b.PMOS.CNLGSP0); d > 1e-15 {
		t.Errorf("hot corner: PMOS CNLGSP0 differs by %g", d)
	}
}

// TestCornerShiftsNLCapTransition pins the corner/nl-cap interaction
// itself: a threshold-shifting corner must move the C_GS transition by
// exactly the same voltage it moves VT0 (the transition stays anchored at
// the shifted threshold), and must leave the overlap-anchored C_GD
// transition untouched.
func TestCornerShiftsNLCapTransition(t *testing.T) {
	nl := Tech130().WithNonlinearCaps()
	ss := MustCornerByName(t, "ss")
	d := ss.Apply(nl)
	nMid := -d.NMOS.CNLGSP0 / d.NMOS.CNLGSP1
	if diff := math.Abs(nMid - d.NMOS.VT0); diff > 1e-15 {
		t.Errorf("ss NMOS C_GS midpoint %g, want shifted VT0 %g", nMid, d.NMOS.VT0)
	}
	pMid := -d.PMOS.CNLGSP0 / d.PMOS.CNLGSP1
	if diff := math.Abs(pMid - d.PMOS.VT0); diff > 1e-15 {
		t.Errorf("ss PMOS C_GS midpoint %g, want shifted VT0 %g", pMid, d.PMOS.VT0)
	}
	if d.NMOS.CNLGDP0 != nl.NMOS.CNLGDP0 || d.PMOS.CNLGDP0 != nl.PMOS.CNLGDP0 {
		t.Error("corner moved the C_GD transition; it is overlap-anchored and must stay put")
	}
	if d.NMOS.CNLFrac != nl.NMOS.CNLFrac || d.NMOS.CNLGSP1 != nl.NMOS.CNLGSP1 {
		t.Error("corner changed nl-cap modulation fraction or slope")
	}
	// On a constant-cap card the corner must not invent a model.
	plain := ss.Apply(Tech130())
	if plain.NonlinearCaps() {
		t.Error("corner applied to a constant-cap card produced nl-cap parameters")
	}
}

// MustCornerByName resolves a standard corner or fails the test.
func MustCornerByName(t *testing.T, name string) Corner {
	t.Helper()
	c, err := CornerByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
