package tech

import (
	"reflect"
	"testing"
)

// TestNominalCornerIsIdentity proves the nominal corner applies to the
// identity — same pointer, no derived card — which is what keeps legacy
// cache and store keys bit-stable with the corner axis at its zero value.
func TestNominalCornerIsIdentity(t *testing.T) {
	base := Tech130()
	for _, c := range []Corner{{}, {Name: "tt"}} {
		if !c.IsNominal() {
			t.Fatalf("corner %+v should be nominal", c)
		}
		if got := c.Apply(base); got != base {
			t.Fatalf("nominal corner derived a new card: %p != %p", got, base)
		}
	}
	if base.Corner != nil {
		t.Fatalf("base card gained a corner: %+v", base.Corner)
	}
	if base.CornerTag() != "nominal" || base.FullName() != "cmos130" {
		t.Fatalf("nominal tag/name wrong: %q %q", base.CornerTag(), base.FullName())
	}
}

// TestCornerApplyScalesDevices checks the slow corner weakens both devices
// (lower supply, higher threshold magnitude, lower mobility), leaves the
// base card untouched, and stamps the derived card with the corner.
func TestCornerApplyScalesDevices(t *testing.T) {
	base := Tech130()
	ss, err := CornerByName("ss")
	if err != nil {
		t.Fatal(err)
	}
	d := ss.Apply(base)
	if d == base {
		t.Fatal("ss corner returned the base card")
	}
	if !(d.VDD < base.VDD) {
		t.Fatalf("ss VDD %.3g not below nominal %.3g", d.VDD, base.VDD)
	}
	if !(d.NMOS.VT0 > base.NMOS.VT0) || !(d.PMOS.VT0 < base.PMOS.VT0) {
		t.Fatalf("ss thresholds not slower: N %.3g->%.3g P %.3g->%.3g",
			base.NMOS.VT0, d.NMOS.VT0, base.PMOS.VT0, d.PMOS.VT0)
	}
	if !(d.NMOS.KP < base.NMOS.KP) || !(d.PMOS.KP < base.PMOS.KP) {
		t.Fatalf("ss mobility not lower: N %.3g->%.3g P %.3g->%.3g",
			base.NMOS.KP, d.NMOS.KP, base.PMOS.KP, d.PMOS.KP)
	}
	if d.Corner == nil || d.Corner.Name != "ss" {
		t.Fatalf("derived card corner = %+v", d.Corner)
	}
	if d.CornerTag() != "ss" || d.FullName() != "cmos130@ss" {
		t.Fatalf("tag/name wrong: %q %q", d.CornerTag(), d.FullName())
	}
	if base.VDD != 1.2 || base.Corner != nil {
		t.Fatalf("base card mutated: VDD=%g corner=%+v", base.VDD, base.Corner)
	}
}

// TestCornerTemperatureEffects checks the first-order temperature model: a
// hot corner loses mobility and threshold magnitude.
func TestCornerTemperatureEffects(t *testing.T) {
	base := Tech130()
	hot := Corner{Name: "tt_125c", TempC: 125}
	d := hot.Apply(base)
	if d == base {
		t.Fatal("hot corner returned the base card")
	}
	if !(d.NMOS.KP < base.NMOS.KP) {
		t.Fatalf("hot KP %.4g not below nominal %.4g", d.NMOS.KP, base.NMOS.KP)
	}
	if !(d.NMOS.VT0 < base.NMOS.VT0) || !(d.PMOS.VT0 > base.PMOS.VT0) {
		t.Fatalf("hot thresholds did not walk toward zero: N %.3g->%.3g P %.3g->%.3g",
			base.NMOS.VT0, d.NMOS.VT0, base.PMOS.VT0, d.PMOS.VT0)
	}
}

// TestParseCorners exercises the list parser: blanks skipped, duplicates
// and unknown names rejected.
func TestParseCorners(t *testing.T) {
	got, err := ParseCorners(" tt, ss ,ff,")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Name != "tt" || got[1].Name != "ss" || got[2].Name != "ff" {
		t.Fatalf("parsed %+v", got)
	}
	if _, err := ParseCorners("tt,tt"); err == nil {
		t.Fatal("duplicate corner accepted")
	}
	if _, err := ParseCorners("xx"); err == nil {
		t.Fatal("unknown corner accepted")
	}
	if _, err := CornerByName("zz"); err == nil {
		t.Fatal("unknown corner name accepted")
	}
	if c, err := CornerByName(""); err != nil || !c.IsNominal() {
		t.Fatalf("empty corner name: %+v %v", c, err)
	}
}

// TestSampleCornersDeterministic proves the MC sampler is a pure function
// of (n, seed, spec): identical draws repeat exactly, different seeds
// differ, and sample names are unique within a draw.
func TestSampleCornersDeterministic(t *testing.T) {
	a := SampleCorners(8, 42, SampleSpec{})
	b := SampleCorners(8, 42, SampleSpec{})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed drew different samples:\n%+v\n%+v", a, b)
	}
	c := SampleCorners(8, 43, SampleSpec{})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds drew identical samples")
	}
	names := map[string]bool{}
	for _, s := range a {
		if names[s.Name] {
			t.Fatalf("duplicate sample name %q", s.Name)
		}
		names[s.Name] = true
		if s.IsNominal() {
			t.Fatalf("sample %q drew exactly nominal deltas", s.Name)
		}
		if s.NKPScale <= 0 || s.PKPScale <= 0 {
			t.Fatalf("sample %q has non-physical mobility: %+v", s.Name, s)
		}
	}
	// Perturbing a non-nominal base keeps its systematic shifts in play.
	ss, _ := CornerByName("ss")
	d := SampleCorners(2, 7, SampleSpec{Base: ss})
	for _, s := range d {
		if s.Name != "ss+mc0000" && s.Name != "ss+mc0001" {
			t.Fatalf("base-prefixed name wrong: %q", s.Name)
		}
		if s.VddScale != ss.VddScale {
			t.Fatalf("sample lost the base supply scale: %+v", s)
		}
	}
}

// TestCornerAxisOrdersBySeverity pins the continuation axis: slow corners
// sort below nominal, fast corners above, so adjacent list entries have
// adjacent operating points.
func TestCornerAxisOrdersBySeverity(t *testing.T) {
	byName := map[string]Corner{}
	for _, c := range StandardCorners() {
		byName[c.Name] = c
	}
	ss, tt, ff := byName["ss"].Axis(), byName["tt"].Axis(), byName["ff"].Axis()
	if !(ss < tt && tt < ff) {
		t.Fatalf("axis ordering wrong: ss=%.3g tt=%.3g ff=%.3g", ss, tt, ff)
	}
}

// TestCornerFingerprintDistinct checks every standard corner (and an MC
// sample) renders a distinct fingerprint — the property the cache and store
// keys inherit.
func TestCornerFingerprintDistinct(t *testing.T) {
	seen := map[string]string{}
	all := append(StandardCorners(), SampleCorners(4, 1, SampleSpec{})...)
	for _, c := range all {
		fp := c.Fingerprint()
		if prev, ok := seen[fp]; ok {
			t.Fatalf("corners %q and %q share fingerprint %q", prev, c.Name, fp)
		}
		seen[fp] = c.Name
	}
}
