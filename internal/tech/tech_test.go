package tech

import (
	"math"
	"testing"

	"stanoise/internal/device"
)

func TestByName(t *testing.T) {
	for _, alias := range []string{"cmos130", "130", "0.13um"} {
		tt, err := ByName(alias)
		if err != nil || tt.VDD != 1.2 {
			t.Errorf("ByName(%q): %v %v", alias, tt, err)
		}
	}
	for _, alias := range []string{"cmos090", "90", "90nm"} {
		tt, err := ByName(alias)
		if err != nil || tt.VDD != 1.0 {
			t.Errorf("ByName(%q): %v %v", alias, tt, err)
		}
	}
	if _, err := ByName("cmos065"); err == nil {
		t.Error("unknown tech accepted")
	}
}

func TestLayerLookup(t *testing.T) {
	tt := Tech130()
	w, err := tt.Layer("M4")
	if err != nil {
		t.Fatal(err)
	}
	if w.RPerUm <= 0 || w.CgPerUm <= 0 || w.CcPerUm <= 0 {
		t.Errorf("M4 params %+v", w)
	}
	if _, err := tt.Layer("M42"); err == nil {
		t.Error("unknown layer accepted")
	}
}

func TestCouplingSpacing(t *testing.T) {
	w := WireParams{CcPerUm: 0.1e-15}
	if got := w.Coupling(2); math.Abs(got-0.05e-15) > 1e-24 {
		t.Errorf("Coupling(2) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic on zero spacing")
		}
	}()
	w.Coupling(0)
}

func TestDeviceCards(t *testing.T) {
	tt := Tech130()
	n := tt.NMOSDevice(1e-6)
	if n.Kind != device.NMOS || n.L != tt.Lmin || n.VT0 <= 0 {
		t.Errorf("NMOS card %+v", n)
	}
	p := tt.PMOSDevice(2e-6)
	if p.Kind != device.PMOS || p.VT0 >= 0 {
		t.Errorf("PMOS card %+v", p)
	}
	// NMOS is stronger per width than PMOS in both nodes.
	if tt.NMOS.KP <= tt.PMOS.KP {
		t.Error("KP ordering wrong")
	}
}

func TestCapHelpers(t *testing.T) {
	tt := Tech130()
	gc := tt.GateCap(tt.NMOS, 1e-6)
	// A 1 µm gate at 0.13 µm: order of a femtofarad.
	if gc < 0.5e-15 || gc > 10e-15 {
		t.Errorf("gate cap %v F implausible", gc)
	}
	dc := tt.DiffCap(tt.NMOS, 1e-6)
	if dc <= 0 || dc > gc*3 {
		t.Errorf("diff cap %v F implausible (gate %v)", dc, gc)
	}
}

// The physical regime the paper depends on: at minimum spacing on
// intermediate metal, coupling capacitance exceeds ground capacitance.
func TestCouplingDominatesOnM4(t *testing.T) {
	for _, tt := range []*Tech{Tech130(), Tech90()} {
		w, err := tt.Layer("M4")
		if err != nil {
			t.Fatal(err)
		}
		if w.CcPerUm <= w.CgPerUm {
			t.Errorf("%s: Cc %v <= Cg %v", tt.Name, w.CcPerUm, w.CgPerUm)
		}
	}
}

func TestSupplyScaling(t *testing.T) {
	if Tech90().VDD >= Tech130().VDD {
		t.Error("90nm supply should be below 0.13um supply")
	}
	if Tech90().Lmin >= Tech130().Lmin {
		t.Error("90nm Lmin should be below 0.13um Lmin")
	}
}
