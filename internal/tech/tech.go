// Package tech defines the technology cards for the two process nodes the
// paper evaluates: 0.13 µm (VDD 1.2 V) and 90 nm (VDD 1.0 V).
//
// A card bundles the Level-1 transistor parameters, capacitance
// coefficients used to derive pin and diffusion loads, and per-layer wire
// parasitics used by the interconnect generator. Values are representative
// of published data for these nodes; the reproduction needs realistic
// *ratios* (coupling versus ground capacitance, driver resistance versus
// wire resistance), not any particular foundry's absolutes — see
// DESIGN.md §2.
package tech

import (
	"fmt"
	"sort"

	"stanoise/internal/device"
)

// WireParams holds per-micron parasitics of a routing layer at minimum
// width. CcPerUm is the line-to-line coupling at minimum spacing; the
// coupling at s times minimum spacing scales as CcPerUm/s (parallel-plate
// approximation, adequate for noise-cluster modelling).
type WireParams struct {
	RPerUm  float64 // series resistance (Ω/µm)
	CgPerUm float64 // capacitance to ground (F/µm)
	CcPerUm float64 // coupling capacitance to one neighbour at min spacing (F/µm)
}

// Coupling returns the per-micron coupling capacitance at the given
// multiple of minimum spacing.
func (w WireParams) Coupling(spacingFactor float64) float64 {
	if spacingFactor <= 0 {
		panic("tech: spacing factor must be positive")
	}
	return w.CcPerUm / spacingFactor
}

// MOSParams holds the Level-1 card for one polarity plus the capacitance
// coefficients needed to build pin loads.
type MOSParams struct {
	KP     float64 // µCox (A/V²)
	VT0    float64 // threshold (V); negative for PMOS
	Lambda float64 // channel-length modulation (1/V)

	CGatePerWL float64 // gate-oxide capacitance per W·L (F/m²)
	COverlap   float64 // gate-drain/source overlap capacitance per width (F/m)
	CJunction  float64 // drain/source junction capacitance per width (F/m)

	// Nonlinear gate-charge model (the NLMOS extension, see
	// device.CapParams). CNLFrac is the fraction of each half-gate
	// capacitance carried by the tanh modulation term: the cell builder
	// splits C_half into Cp = (1−CNLFrac)·C_half and Co = CNLFrac·C_half,
	// so the capacitance swings between (1−CNLFrac)·C_half and
	// (1+CNLFrac)·C_half with C_half at the transition midpoint. The P0/P1
	// pairs place and scale the C_GD and C_GS transitions along their
	// branch voltages (u_gd = vg−vd, u_gs = vg−vs).
	//
	// All-zero means "no nonlinear gate model" — the zero-means-constant
	// trick mirroring Corner's zero-means-nominal: base cards carry zeros,
	// so every legacy netlist, cache key and store artefact stays
	// bit-stable, and only cards derived via Tech.WithNonlinearCaps opt
	// into the model.
	CNLFrac float64 // modulation fraction of the half-gate cap; 0 = constant caps
	CNLGDP0 float64 // C_GD transition offset
	CNLGDP1 float64 // C_GD transition slope (1/V)
	CNLGSP0 float64 // C_GS transition offset
	CNLGSP1 float64 // C_GS transition slope (1/V)
}

// Tech is a process technology card.
type Tech struct {
	Name string
	VDD  float64 // supply (V)
	Lmin float64 // minimum channel length (m)

	NMOS MOSParams
	PMOS MOSParams

	// Wires maps layer names ("M2".."M6") to parasitics.
	Wires map[string]WireParams

	// WUnit is the NMOS width of a unit-drive (X1) inverter; PMOS widths
	// are scaled by PNRatio to balance rise/fall strength.
	WUnit   float64
	PNRatio float64

	// Corner records the operating corner this card was derived for
	// (Corner.Apply); nil on a nominal base card. Downstream fingerprints
	// (charstore.TechFingerprint, charlib.CellKey) include it so per-corner
	// artefacts never alias, and its absence keeps every pre-corner key
	// bit-stable.
	Corner *Corner
}

// Layer returns the wire parameters for a layer name.
func (t *Tech) Layer(name string) (WireParams, error) {
	w, ok := t.Wires[name]
	if !ok {
		names := make([]string, 0, len(t.Wires))
		for n := range t.Wires {
			names = append(names, n)
		}
		sort.Strings(names)
		return WireParams{}, fmt.Errorf("tech %s: unknown layer %q (have %v)", t.Name, name, names)
	}
	return w, nil
}

// NMOSDevice returns a Level-1 instance card for an NMOS of the given
// width at minimum length.
func (t *Tech) NMOSDevice(w float64) device.Params {
	return device.Params{
		Kind: device.NMOS, W: w, L: t.Lmin,
		KP: t.NMOS.KP, VT0: t.NMOS.VT0, Lambda: t.NMOS.Lambda,
	}
}

// PMOSDevice returns a Level-1 instance card for a PMOS of the given
// width at minimum length.
func (t *Tech) PMOSDevice(w float64) device.Params {
	return device.Params{
		Kind: device.PMOS, W: w, L: t.Lmin,
		KP: t.PMOS.KP, VT0: t.PMOS.VT0, Lambda: t.PMOS.Lambda,
	}
}

// NonlinearCaps reports whether the card carries the NLMOS voltage-dependent
// gate-charge model (see MOSParams.CNLFrac). False for every base card.
func (t *Tech) NonlinearCaps() bool {
	return t.NMOS.CNLFrac != 0 || t.PMOS.CNLFrac != 0
}

// WithNonlinearCaps derives a card carrying the NLMOS gate-charge model:
// half of each half-gate capacitance becomes tanh-modulated (CNLFrac = 0.5),
// with the C_GS transition anchored at the polarity's threshold voltage
// (P0 = −P1·VT0, so the capacitance rises as the channel forms) and a
// gentler C_GD transition around the drain-overlap bias. The receiver is a
// fresh card — the base card is never mutated, mirroring Corner.Apply — and
// a card that already carries the model is returned unchanged, which makes
// the derivation idempotent and commutes with Corner.Apply (Apply shifts
// the VT-anchored P0 alongside VT0; property-tested).
func (t *Tech) WithNonlinearCaps() *Tech {
	if t.NonlinearCaps() {
		return t
	}
	d := *t
	d.NMOS.CNLFrac = 0.5
	d.NMOS.CNLGSP1 = 2.0
	d.NMOS.CNLGSP0 = -d.NMOS.CNLGSP1 * t.NMOS.VT0
	d.NMOS.CNLGDP1 = 1.2
	d.NMOS.CNLGDP0 = -0.4
	d.PMOS.CNLFrac = 0.5
	d.PMOS.CNLGSP1 = -2.0
	d.PMOS.CNLGSP0 = -d.PMOS.CNLGSP1 * t.PMOS.VT0
	d.PMOS.CNLGDP1 = -1.2
	d.PMOS.CNLGDP0 = -0.4
	return &d
}

// GateCap returns the total gate capacitance of a device of width w at
// minimum length (oxide plus both overlaps), used for receiver pin loads.
func (t *Tech) GateCap(p MOSParams, w float64) float64 {
	return p.CGatePerWL*w*t.Lmin + 2*p.COverlap*w
}

// DiffCap returns the drain-diffusion capacitance of a device of width w,
// used for cell output parasitics.
func (t *Tech) DiffCap(p MOSParams, w float64) float64 {
	return p.CJunction * w
}

// Tech130 returns the 0.13 µm card (VDD = 1.2 V), the paper's primary node.
func Tech130() *Tech {
	return &Tech{
		Name: "cmos130",
		VDD:  1.2,
		Lmin: 0.13e-6,
		NMOS: MOSParams{
			KP: 340e-6, VT0: 0.35, Lambda: 0.15,
			CGatePerWL: 1.2e-2, COverlap: 0.30e-9, CJunction: 0.9e-9,
		},
		PMOS: MOSParams{
			KP: 90e-6, VT0: -0.38, Lambda: 0.20,
			CGatePerWL: 1.2e-2, COverlap: 0.30e-9, CJunction: 1.0e-9,
		},
		Wires: map[string]WireParams{
			// Lower layers: thin, resistive, modest coupling.
			"M2": {RPerUm: 0.25, CgPerUm: 0.035e-15, CcPerUm: 0.085e-15},
			"M3": {RPerUm: 0.18, CgPerUm: 0.038e-15, CcPerUm: 0.090e-15},
			// M4: the paper's experiment layer — intermediate metal where
			// coupling dominates ground capacitance for long parallel runs.
			"M4": {RPerUm: 0.085, CgPerUm: 0.040e-15, CcPerUm: 0.095e-15},
			"M5": {RPerUm: 0.060, CgPerUm: 0.042e-15, CcPerUm: 0.100e-15},
			"M6": {RPerUm: 0.030, CgPerUm: 0.050e-15, CcPerUm: 0.085e-15},
		},
		WUnit:   0.6e-6,
		PNRatio: 2.0,
	}
}

// Tech90 returns the 90 nm card (VDD = 1.0 V), the paper's second node.
func Tech90() *Tech {
	return &Tech{
		Name: "cmos090",
		VDD:  1.0,
		Lmin: 0.10e-6,
		NMOS: MOSParams{
			KP: 450e-6, VT0: 0.30, Lambda: 0.20,
			CGatePerWL: 1.4e-2, COverlap: 0.28e-9, CJunction: 0.8e-9,
		},
		PMOS: MOSParams{
			KP: 115e-6, VT0: -0.32, Lambda: 0.25,
			CGatePerWL: 1.4e-2, COverlap: 0.28e-9, CJunction: 0.9e-9,
		},
		Wires: map[string]WireParams{
			"M2": {RPerUm: 0.40, CgPerUm: 0.030e-15, CcPerUm: 0.095e-15},
			"M3": {RPerUm: 0.30, CgPerUm: 0.032e-15, CcPerUm: 0.100e-15},
			"M4": {RPerUm: 0.15, CgPerUm: 0.035e-15, CcPerUm: 0.105e-15},
			"M5": {RPerUm: 0.10, CgPerUm: 0.038e-15, CcPerUm: 0.110e-15},
			"M6": {RPerUm: 0.05, CgPerUm: 0.045e-15, CcPerUm: 0.095e-15},
		},
		WUnit:   0.5e-6,
		PNRatio: 2.1,
	}
}

// ByName returns a technology card by its name.
func ByName(name string) (*Tech, error) {
	switch name {
	case "cmos130", "130", "0.13um":
		return Tech130(), nil
	case "cmos090", "90", "90nm":
		return Tech90(), nil
	}
	return nil, fmt.Errorf("tech: unknown technology %q (have cmos130, cmos090)", name)
}
