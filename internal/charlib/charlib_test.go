package charlib

import (
	"context"
	"math"
	"strings"
	"testing"

	"stanoise/internal/cell"
	"stanoise/internal/tech"
	"stanoise/internal/wave"
)

func measure(w *wave.Waveform, quiet float64) wave.NoiseMetrics {
	return wave.MeasureNoise(w, quiet)
}

func nand2Table(t *testing.T, n int) *LoadCurve {
	t.Helper()
	tt := tech.Tech130()
	cl := cell.MustNew(tt, "NAND2", 1)
	st, err := cl.SensitizedState("B", true) // A=1, B=0: the paper's victim
	if err != nil {
		t.Fatal(err)
	}
	lc, err := CharacterizeLoadCurve(context.Background(), cl, st, "B", LoadCurveOptions{NVin: n, NVout: n})
	if err != nil {
		t.Fatal(err)
	}
	return lc
}

func TestLoadCurveQuietPointNearZero(t *testing.T) {
	lc := nand2Table(t, 31)
	i, _, _ := lc.Eval(0, 1.2)
	// At the quiet point the driver sources only leakage-scale current.
	if math.Abs(i) > 1e-6 {
		t.Errorf("quiet current = %v A, want ~0", i)
	}
}

func TestLoadCurveRestoringCurrent(t *testing.T) {
	lc := nand2Table(t, 31)
	// Output drooping below VDD with the input quiet: the PMOS must source
	// positive (restoring) current into the net.
	i, _, _ := lc.Eval(0, 0.8)
	if i <= 0 {
		t.Errorf("restoring current = %v, want > 0", i)
	}
	// With the noisy input high (NMOS path on, PMOS off) and the output
	// high, the cell must sink current (contention resolved toward low).
	i, _, _ = lc.Eval(1.2, 1.2)
	if i >= 0 {
		t.Errorf("pull-down current = %v, want < 0", i)
	}
}

// The essence of the paper: the restoring current saturates. Doubling the
// droop must yield clearly less than double the current once the holding
// device leaves its linear region, so a holding-resistance model
// extrapolated from the quiet point overestimates the driver's strength.
func TestLoadCurveSaturatesNonlinearly(t *testing.T) {
	lc := nand2Table(t, 61)
	g := lc.HoldingConductance(0, 1.2)
	if g <= 0 {
		t.Fatalf("holding conductance = %v", g)
	}
	droop := 0.8 // large noise excursion
	iActual, _, _ := lc.Eval(0, 1.2-droop)
	iLinear := g * droop
	if iActual >= iLinear {
		t.Errorf("restoring current %v A at %.1f V droop is not sub-linear (linear model %v A)",
			iActual, droop, iLinear)
	}
	// The shortfall should be substantial (tens of percent), otherwise
	// superposition would not err the way Table 1 shows.
	if iActual > 0.85*iLinear {
		t.Errorf("non-linearity too weak: actual %v vs linear %v", iActual, iLinear)
	}
}

func TestHoldingResistancePlausible(t *testing.T) {
	lc := nand2Table(t, 31)
	r := lc.HoldingResistance(0, 1.2)
	// A unit-drive 0.13 µm PMOS holding resistance: hundreds of Ω to a few
	// kΩ.
	if r < 100 || r > 20000 {
		t.Errorf("holding resistance = %v Ω, implausible", r)
	}
}

func TestLoadCurveWeakenedHolding(t *testing.T) {
	lc := nand2Table(t, 61)
	// During an input glitch the holding PMOS turns off and the NMOS stack
	// turns on: at vin = VDD the "holding" conductance must collapse or go
	// anti-restoring compared to the quiet point.
	gQuiet := lc.HoldingConductance(0, 1.2)
	iGlitch, _, _ := lc.Eval(1.2, 1.1)
	// With the input high, even a small droop sees *sinking* current
	// (driving the output further down), not restoring current.
	if iGlitch >= 0 {
		t.Errorf("current during glitch = %v, want < 0 (pull-down wins)", iGlitch)
	}
	_ = gQuiet
}

func TestEvalMatchesGridAndClamps(t *testing.T) {
	lc := nand2Table(t, 31)
	// Exactly on a grid point.
	iv, io := 10, 20
	vin := lc.VinMin + float64(iv)*lc.dvin()
	vout := lc.VoutMin + float64(io)*lc.dvout()
	i, _, _ := lc.Eval(vin, vout)
	if math.Abs(i-lc.I[iv*lc.NVout+io]) > 1e-12 {
		t.Errorf("grid point mismatch: %v vs %v", i, lc.I[iv*lc.NVout+io])
	}
	// Far outside: clamped, finite.
	i, _, _ = lc.Eval(99, -99)
	if math.IsNaN(i) || math.IsInf(i, 0) {
		t.Errorf("clamped eval not finite: %v", i)
	}
}

func TestEvalDerivativesMatchFD(t *testing.T) {
	lc := nand2Table(t, 31)
	const h = 1e-4
	// Points chosen strictly inside interpolation cells: bilinear
	// derivatives are discontinuous exactly on grid lines.
	for _, pt := range [][2]float64{{0.3, 0.9}, {0.63, 0.58}, {1.01, 1.13}} {
		vin, vout := pt[0], pt[1]
		_, gin, gout := lc.Eval(vin, vout)
		ip, _, _ := lc.Eval(vin+h, vout)
		im, _, _ := lc.Eval(vin-h, vout)
		if fd := (ip - im) / (2 * h); math.Abs(fd-gin) > 1e-6+0.02*math.Abs(gin) {
			t.Errorf("dI/dVin at %v: %v vs FD %v", pt, gin, fd)
		}
		ip, _, _ = lc.Eval(vin, vout+h)
		im, _, _ = lc.Eval(vin, vout-h)
		if fd := (ip - im) / (2 * h); math.Abs(fd-gout) > 1e-6+0.02*math.Abs(gout) {
			t.Errorf("dI/dVout at %v: %v vs FD %v", pt, gout, fd)
		}
	}
}

func TestCharacterizeUnknownPin(t *testing.T) {
	tt := tech.Tech130()
	cl := cell.MustNew(tt, "INV", 1)
	if _, err := CharacterizeLoadCurve(context.Background(), cl, cell.State{"A": false}, "Z", LoadCurveOptions{NVin: 3, NVout: 3}); err == nil {
		t.Error("unknown noisy pin accepted")
	}
}

func smallPropTable(t *testing.T) *PropTable {
	t.Helper()
	tt := tech.Tech130()
	cl := cell.MustNew(tt, "NAND2", 1)
	st, _ := cl.SensitizedState("B", true)
	pt, err := CharacterizePropagation(context.Background(), cl, st, "B", PropOptions{
		Heights: []float64{0.4, 0.8, 1.2},
		Widths:  []float64{150e-12, 400e-12},
		Loads:   []float64{30e-15, 120e-15},
		Dt:      2e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestPropagationMonotonicInHeight(t *testing.T) {
	pt := smallPropTable(t)
	for wi := range pt.Widths {
		for li := range pt.Loads {
			if pt.Peak[2][wi][li] <= pt.Peak[0][wi][li] {
				t.Errorf("w=%d l=%d: peak not increasing with input height: %v vs %v",
					wi, li, pt.Peak[0][wi][li], pt.Peak[2][wi][li])
			}
		}
	}
}

func TestPropagationPolarityAndMagnitude(t *testing.T) {
	pt := smallPropTable(t)
	// NAND2 output high + upward glitch on B → downward output noise.
	if pt.OutSign != -1 {
		t.Errorf("OutSign = %v, want -1", pt.OutSign)
	}
	// A sub-threshold input glitch propagates almost nothing.
	if p := pt.Peak[0][0][1]; p > 0.15 {
		t.Errorf("0.4 V input glitch propagates %v V, implausibly large", p)
	}
	// A full-swing wide glitch propagates a large fraction of the swing.
	if p := pt.Peak[2][1][0]; p < 0.5 {
		t.Errorf("1.2 V/400 ps glitch propagates only %v V", p)
	}
	if mp := pt.MaxPeak(); mp > 1.3 {
		t.Errorf("max peak %v exceeds swing", mp)
	}
}

func TestPropagationHeavierLoadFiltersNoise(t *testing.T) {
	pt := smallPropTable(t)
	// For a short glitch, the heavier load must attenuate the output peak.
	if pt.Peak[1][0][1] >= pt.Peak[1][0][0] {
		t.Errorf("peak did not decrease with load: %v vs %v", pt.Peak[1][0][0], pt.Peak[1][0][1])
	}
}

func TestLookupInterpolatesAndClamps(t *testing.T) {
	pt := smallPropTable(t)
	pk, ar := pt.Lookup(0.8, 150e-12, 30e-15)
	if math.Abs(pk-pt.Peak[1][0][0]) > 1e-12 || math.Abs(ar-pt.Area[1][0][0]) > 1e-18 {
		t.Errorf("exact lookup mismatch")
	}
	// Between grid lines: bounded by neighbours.
	pk, _ = pt.Lookup(0.6, 150e-12, 30e-15)
	lo, hi := pt.Peak[0][0][0], pt.Peak[1][0][0]
	if pk < math.Min(lo, hi)-1e-12 || pk > math.Max(lo, hi)+1e-12 {
		t.Errorf("interpolated %v outside [%v,%v]", pk, lo, hi)
	}
	// Clamped outside.
	pk, _ = pt.Lookup(99, 150e-12, 30e-15)
	if math.Abs(pk-pt.Peak[2][0][0]) > 1e-12 {
		t.Errorf("clamp above failed: %v", pk)
	}
}

func TestPropWaveformReconstruction(t *testing.T) {
	pt := smallPropTable(t)
	w := pt.Waveform(1.2, 400e-12, 30e-15, 1e-9)
	peak, area := pt.Lookup(1.2, 400e-12, 30e-15)
	// Reconstructed triangle reproduces the looked-up metrics.
	got := measure(w, pt.QuietOut)
	if math.Abs(got.Peak-peak) > 1e-9 {
		t.Errorf("reconstructed peak %v, want %v", got.Peak, peak)
	}
	if math.Abs(got.Area-area) > 1e-15 {
		t.Errorf("reconstructed area %v, want %v", got.Area, area)
	}
	if math.Abs(got.TPeak-1e-9) > 1e-12 {
		t.Errorf("apex at %v, want 1e-9", got.TPeak)
	}
}

func TestBracket(t *testing.T) {
	xs := []float64{1, 2, 4}
	if i, f := bracket(xs, 0.5); i != 0 || f != 0 {
		t.Errorf("below: %d %v", i, f)
	}
	if i, f := bracket(xs, 3); i != 1 || math.Abs(f-0.5) > 1e-12 {
		t.Errorf("mid: %d %v", i, f)
	}
	if i, f := bracket(xs, 9); i != 1 || f != 1 {
		t.Errorf("above: %d %v", i, f)
	}
	if i, f := bracket([]float64{7}, 3); i != 0 || f != 0 {
		t.Errorf("single: %d %v", i, f)
	}
}

func TestCharacterizePropagationUnknownPin(t *testing.T) {
	cl := cell.MustNew(tech.Tech130(), "INV", 1)
	_, err := CharacterizePropagation(context.Background(), cl, cell.State{"A": false}, "Z", PropOptions{
		Heights: []float64{0.4}, Widths: []float64{100e-12}, Loads: []float64{10e-15}, Dt: 2e-12,
	})
	if err == nil || !strings.Contains(err.Error(), `no pin "Z"`) {
		t.Fatalf("unknown pin: err = %v, want 'no pin' error", err)
	}
}
