package charlib

import (
	"context"
	"math"
	"strings"
	"testing"

	"stanoise/internal/cell"
	"stanoise/internal/tech"
)

func TestLibraryRoundTrip(t *testing.T) {
	tt := tech.Tech130()
	cl := cell.MustNew(tt, "INV", 1)
	lc, err := CharacterizeLoadCurve(context.Background(), cl, cell.State{"A": false}, "A",
		LoadCurveOptions{NVin: 11, NVout: 11})
	if err != nil {
		t.Fatal(err)
	}
	lib := &Library{Tech: tt.Name}
	lib.AddLoadCurve(lc)

	var b strings.Builder
	if err := lib.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	lib2, err := ReadLibrary(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	got := lib2.LoadCurveFor(lc.CellName, lc.State, "A")
	if got == nil {
		t.Fatal("curve lost in round trip")
	}
	// Identical interpolation behaviour after the round trip.
	for _, pt := range [][2]float64{{0.1, 1.1}, {0.62, 0.33}} {
		i1, _, _ := lc.Eval(pt[0], pt[1])
		i2, _, _ := got.Eval(pt[0], pt[1])
		if math.Abs(i1-i2) > 1e-15 {
			t.Errorf("eval mismatch at %v: %v vs %v", pt, i1, i2)
		}
	}
}

func TestLibraryReplaceSemantics(t *testing.T) {
	lib := &Library{}
	a := &LoadCurve{CellName: "X", State: "A=0", NoisyPin: "A", NVin: 2, NVout: 2, I: make([]float64, 4)}
	b := &LoadCurve{CellName: "X", State: "A=0", NoisyPin: "A", NVin: 2, NVout: 2, I: []float64{1, 1, 1, 1}}
	lib.AddLoadCurve(a)
	lib.AddLoadCurve(b)
	if len(lib.LoadCurves) != 1 {
		t.Fatalf("curves = %d, want 1 (replaced)", len(lib.LoadCurves))
	}
	if lib.LoadCurveFor("X", "A=0", "A").I[0] != 1 {
		t.Error("replacement kept the old data")
	}
	if lib.LoadCurveFor("Y", "A=0", "A") != nil {
		t.Error("phantom lookup")
	}
}

func TestReadLibraryValidatesShape(t *testing.T) {
	src := `{"tech":"cmos130","load_curves":[{"CellName":"X","State":"s","NoisyPin":"A","NVin":3,"NVout":3,"I":[0,0]}]}`
	if _, err := ReadLibrary(strings.NewReader(src)); err == nil {
		t.Error("inconsistent table shape accepted")
	}
}
