// Package charlib implements library-cell pre-characterisation for noise
// analysis: the non-linear DC load-curve tables I_DC = f(V_in, V_out) of
// the paper's eq. (1), holding resistances, and the input-to-output noise
// propagation tables used by the traditional linear-superposition flow.
//
// All characterisation runs against the same transistor-level simulator
// (internal/sim) used as the golden reference, mirroring the paper's setup
// where both the macromodel tables and the validation data came from ELDO.
package charlib

import (
	"context"
	"fmt"
	"math"

	"stanoise/internal/cell"
	"stanoise/internal/circuit"
	"stanoise/internal/sim"
)

// LoadCurve is the characterised VCCS table of a cell output: the current
// the cell injects into its output net as a function of the voltage on the
// noisy input pin and the output voltage, with all other inputs frozen at
// the rails given by the characterisation state.
//
// The grid spans the "typical voltage swing" of the technology with margin
// (−0.2·VDD … 1.2·VDD on both axes by default), as prescribed in §2 of the
// paper.
type LoadCurve struct {
	CellName string
	State    string
	NoisyPin string

	VinMin, VinMax   float64
	VoutMin, VoutMax float64
	NVin, NVout      int
	// I holds the injected current, row-major: I[iv*NVout+io] at
	// vin = VinMin + iv·dvin, vout = VoutMin + io·dvout. Positive current
	// flows from the cell into the net (restoring when vout droops below
	// its quiet high level).
	I []float64
}

func (lc *LoadCurve) dvin() float64  { return (lc.VinMax - lc.VinMin) / float64(lc.NVin-1) }
func (lc *LoadCurve) dvout() float64 { return (lc.VoutMax - lc.VoutMin) / float64(lc.NVout-1) }

// Eval interpolates the table bilinearly at (vin, vout), returning the
// injected current and its partial derivatives. Queries outside the grid
// are clamped to the boundary, which corresponds to the physically settled
// currents beyond the characterised swing.
func (lc *LoadCurve) Eval(vin, vout float64) (i, dIdVin, dIdVout float64) {
	dx, dy := lc.dvin(), lc.dvout()
	fx := (vin - lc.VinMin) / dx
	fy := (vout - lc.VoutMin) / dy
	ix := int(math.Floor(fx))
	iy := int(math.Floor(fy))
	if ix < 0 {
		ix = 0
	}
	if ix > lc.NVin-2 {
		ix = lc.NVin - 2
	}
	if iy < 0 {
		iy = 0
	}
	if iy > lc.NVout-2 {
		iy = lc.NVout - 2
	}
	tx := fx - float64(ix)
	ty := fy - float64(iy)
	// Clamp the fractional position but keep derivatives from the edge
	// cell so Newton still sees a restoring slope outside the grid.
	if tx < 0 {
		tx = 0
	}
	if tx > 1 {
		tx = 1
	}
	if ty < 0 {
		ty = 0
	}
	if ty > 1 {
		ty = 1
	}
	at := func(a, b int) float64 { return lc.I[a*lc.NVout+b] }
	i00 := at(ix, iy)
	i10 := at(ix+1, iy)
	i01 := at(ix, iy+1)
	i11 := at(ix+1, iy+1)
	i = i00*(1-tx)*(1-ty) + i10*tx*(1-ty) + i01*(1-tx)*ty + i11*tx*ty
	dIdVin = ((i10-i00)*(1-ty) + (i11-i01)*ty) / dx
	dIdVout = ((i01-i00)*(1-tx) + (i11-i10)*tx) / dy
	return i, dIdVin, dIdVout
}

// HoldingConductance returns −∂I/∂V_out at the quiet operating point: the
// small-signal conductance with which the driver fights injected noise.
// Its reciprocal is the classical "holding resistance" of linear SNA.
func (lc *LoadCurve) HoldingConductance(vinQuiet, voutQuiet float64) float64 {
	_, _, dIdVout := lc.Eval(vinQuiet, voutQuiet)
	return -dIdVout
}

// HoldingResistance is 1/HoldingConductance.
func (lc *LoadCurve) HoldingResistance(vinQuiet, voutQuiet float64) float64 {
	g := lc.HoldingConductance(vinQuiet, voutQuiet)
	if g <= 0 {
		return math.Inf(1)
	}
	return 1 / g
}

// LoadCurveOptions tunes the DC sweep.
type LoadCurveOptions struct {
	NVin, NVout int     // grid points per axis; default 61
	MarginFrac  float64 // sweep margin beyond the rails as a fraction of VDD; default 0.2

	// WarmStart seeds each grid point's Newton solve from the previous
	// point's converged solution (sim.Session.WarmStart) — the continuation
	// mode that cuts total Newton iterations substantially on fine grids.
	// Off by default: warm-started currents can differ from the cold sweep
	// in the last bits, so bit-identical reproducibility requires the cold
	// path. Warm and cold results agree within solver tolerance (asserted
	// by TestWarmStartLoadCurveMatchesCold).
	WarmStart bool
}

func (o LoadCurveOptions) normalize() LoadCurveOptions {
	if o.NVin <= 1 {
		o.NVin = 61
	}
	if o.NVout <= 1 {
		o.NVout = 61
	}
	if o.MarginFrac <= 0 {
		o.MarginFrac = 0.2
	}
	return o
}

// CharacterizeLoadCurve builds the VCCS table for a cell by DC analysis:
// the noisy pin and the output are swept over the characterisation range
// while the remaining inputs stay at the rails of st, and the current drawn
// through the output-forcing source is recorded — exactly the
// pre-characterisation step described in §2 of the paper. The sweep checks
// ctx between grid points, so a cancelled analysis abandons the table
// mid-characterisation.
//
// The cell netlist is compiled once (sim.Compile) and every grid point
// re-runs the same sim.Session with only the noisy-pin and output-forcing
// source values mutated, so the NVin×NVout sweep pays circuit assembly,
// node resolution and matrix allocation exactly once.
func CharacterizeLoadCurve(ctx context.Context, cl *cell.Cell, st cell.State, noisyPin string, opts LoadCurveOptions) (*LoadCurve, error) {
	lc, _, err := characterizeLoadCurveSeeded(ctx, cl, st, noisyPin, opts, nil)
	return lc, err
}

// characterizeLoadCurveSeeded is CharacterizeLoadCurve with cross-corner
// continuation: a non-nil seed (a full solution vector of the cell's rig,
// typically the adjacent corner's converged state from FirstPointSeed) is
// installed as the session's warm-start seed before the sweep, so the very
// first grid point — the only cold solve of an intra-warm sweep — starts
// from the neighbouring corner's operating point instead of the flat cold
// guess. The seed only takes effect with opts.WarmStart on, and a seed that
// fails to converge falls back to the cold start inside the session, so
// continuation never costs robustness. The session's work counters are
// returned (and folded into the process-wide per-corner registry) so sweep
// drivers can prove the continuation savings.
func characterizeLoadCurveSeeded(ctx context.Context, cl *cell.Cell, st cell.State, noisyPin string, opts LoadCurveOptions, seed []float64) (_ *LoadCurve, stats sim.SessionStats, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.normalize()
	vdd := cl.Tech.VDD
	margin := opts.MarginFrac * vdd
	lc := &LoadCurve{
		CellName: cl.Name(),
		State:    st.String(),
		NoisyPin: noisyPin,
		VinMin:   -margin, VinMax: vdd + margin,
		VoutMin: -margin, VoutMax: vdd + margin,
		NVin: opts.NVin, NVout: opts.NVout,
		I: make([]float64, opts.NVin*opts.NVout),
	}
	if !cl.HasInput(noisyPin) {
		return nil, stats, fmt.Errorf("charlib: %s has no pin %q", cl.Name(), noisyPin)
	}

	// Compile-once: the sweep topology is fixed, only source values change.
	ckt := circuit.New()
	ckt.AddVDC("vdd", "vdd", "0", vdd)
	pins := map[string]string{}
	for _, in := range cl.Inputs() {
		node := "in_" + in
		pins[in] = node
		ckt.AddVDC("v_"+in, node, "0", cl.PinVoltage(st[in]))
	}
	if err := cl.Build(ckt, "dut", pins, "out", "vdd"); err != nil {
		return nil, stats, err
	}
	ckt.AddVDC("vforce", "out", "0", 0)
	prog := sim.Compile(ckt)
	sess, err := sim.NewSession(prog, sim.Options{})
	if err != nil {
		return nil, stats, err
	}
	hNoisy := prog.MustSource("v_" + noisyPin)
	hForce := prog.MustSource("vforce")
	sess.WarmStart(opts.WarmStart)
	if seed != nil && opts.WarmStart {
		sess.SeedWarmStart(seed)
	}
	// Attribute the sweep's solver work to the card's corner, even on
	// cancellation — partial sweeps burned real iterations.
	defer func() {
		stats = sess.Stats()
		sim.RecordCornerStats(cl.Tech.CornerTag(), stats)
	}()

	// The sweep loop itself is allocation-free (asserted by
	// TestLoadCurvePointAllocFree): source values mutate session-owned
	// constants, the solve runs into one reused DCResult, and the injected
	// current is read back through the compiled source handle.
	var dc sim.DCResult
	dvin, dvout := lc.dvin(), lc.dvout()
	quietOut := cl.PinVoltage(cl.Logic(st))
	for iv := 0; iv < lc.NVin; iv++ {
		vin := lc.VinMin + float64(iv)*dvin
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		sess.SetSourceDC(hNoisy, vin)
		for io := 0; io < lc.NVout; io++ {
			vout := lc.VoutMin + float64(io)*dvout
			sess.SetSourceDC(hForce, vout)
			// Seed stacked-transistor internal nodes between the forced
			// output and its quiet level (see internalGuess). The seeds
			// only shape cold starts; in warm-start mode the previous grid
			// point's solution takes over (and the seeds still back the
			// cold fallback if that seed fails).
			g := internalGuess(vout, quietOut)
			sess.SetGuess("dut.n1", g)
			sess.SetGuess("dut.n2", g)
			if err := sess.RunDCInto(&dc); err != nil {
				return nil, stats, fmt.Errorf("charlib: DC at vin=%.3f vout=%.3f: %w", vin, vout, err)
			}
			// Branch current into the forcing source equals the current the
			// cell injects into the net.
			lc.I[iv*lc.NVout+io] = dc.SourceCurrent(hForce)
		}
	}
	return lc, stats, nil
}

// FirstPointSeed cold-solves the cell's load-curve rig at the sweep's first
// grid point (VinMin, VoutMin) and returns the full converged solution
// vector — the canonical cross-corner continuation seed. The corner-sweep
// driver feeds this state, computed on corner k's card, into corner k+1's
// sweep: adjacent corners have adjacent operating points, so the transplant
// lands Newton one or two iterations from convergence instead of the five
// to eight a cold start needs.
//
// The seed is deliberately *recomputed* as a cold solve rather than scraped
// from whatever state the previous corner's sweep happened to end in: it
// then depends only on (card, cell, state, pin, grid), never on whether the
// previous corner was itself seeded, served from cache, or skipped — which
// is what keeps continuation-built artefacts reproducible byte-for-byte for
// a given corner chain regardless of cache history.
func FirstPointSeed(cl *cell.Cell, st cell.State, noisyPin string, opts LoadCurveOptions) ([]float64, sim.SessionStats, error) {
	opts = opts.normalize()
	vdd := cl.Tech.VDD
	margin := opts.MarginFrac * vdd
	if !cl.HasInput(noisyPin) {
		return nil, sim.SessionStats{}, fmt.Errorf("charlib: %s has no pin %q", cl.Name(), noisyPin)
	}
	ckt := circuit.New()
	ckt.AddVDC("vdd", "vdd", "0", vdd)
	pins := map[string]string{}
	for _, in := range cl.Inputs() {
		node := "in_" + in
		pins[in] = node
		ckt.AddVDC("v_"+in, node, "0", cl.PinVoltage(st[in]))
	}
	if err := cl.Build(ckt, "dut", pins, "out", "vdd"); err != nil {
		return nil, sim.SessionStats{}, err
	}
	ckt.AddVDC("vforce", "out", "0", 0)
	prog := sim.Compile(ckt)
	sess, err := sim.NewSession(prog, sim.Options{})
	if err != nil {
		return nil, sim.SessionStats{}, err
	}
	sess.SetSourceDC(prog.MustSource("v_"+noisyPin), -margin)
	sess.SetSourceDC(prog.MustSource("vforce"), -margin)
	g := internalGuess(-margin, cl.PinVoltage(cl.Logic(st)))
	sess.SetGuess("dut.n1", g)
	sess.SetGuess("dut.n2", g)
	res, err := sess.RunDC()
	stats := sess.Stats()
	sim.RecordCornerStats(cl.Tech.CornerTag(), stats)
	if err != nil {
		return nil, stats, fmt.Errorf("charlib: continuation seed for %s: %w", cl.Name(), err)
	}
	return res.X, stats, nil
}

// internalGuess seeds stacked-transistor internal nodes between the forced
// output and its quiet level, which keeps Newton in the intended basin.
func internalGuess(vout, quiet float64) float64 {
	return 0.5 * (vout + quiet)
}
