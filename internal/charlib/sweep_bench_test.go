package charlib

import (
	"context"
	"fmt"
	"testing"

	"stanoise/internal/cell"
	"stanoise/internal/circuit"
	"stanoise/internal/sim"
	"stanoise/internal/tech"
)

// BenchmarkINVLoadCurveSweep times the full INV load-curve sweep at the
// production grid (61×61 DC points) with allocation tracking — the
// cold-characterisation benchmark of the compile-once/run-many refactor.
// Before/after numbers live in EXPERIMENTS.md.
func BenchmarkINVLoadCurveSweep(b *testing.B) {
	t := tech.Tech130()
	inv := cell.MustNew(t, "INV", 1)
	st, err := inv.SensitizedState("A", true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CharacterizeLoadCurve(context.Background(), inv, st, "A",
			LoadCurveOptions{NVin: 61, NVout: 61}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkINVLoadCurveSweepWarm is BenchmarkINVLoadCurveSweep with the
// Newton continuation mode on: each grid point seeds from its neighbour
// and terminates on the small-update criterion. The delta against the cold
// bench is the warm-start payoff on the production grid (EXPERIMENTS.md).
func BenchmarkINVLoadCurveSweepWarm(b *testing.B) {
	t := tech.Tech130()
	inv := cell.MustNew(t, "INV", 1)
	st, err := inv.SensitizedState("A", true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CharacterizeLoadCurve(context.Background(), inv, st, "A",
			LoadCurveOptions{NVin: 61, NVout: 61, WarmStart: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNAND2LoadCurveSweepWarmFine runs the continuation mode on the
// fine 121×121 NAND2 grid — the workload class (stacked devices, internal
// nodes) where warm starting pays beyond the INV iteration floor.
func BenchmarkNAND2LoadCurveSweepWarmFine(b *testing.B) {
	t := tech.Tech130()
	nand := cell.MustNew(t, "NAND2", 1)
	st, err := nand.SensitizedState("B", true)
	if err != nil {
		b.Fatal(err)
	}
	for _, warm := range []bool{false, true} {
		name := "cold"
		if warm {
			name = "warm"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := CharacterizeLoadCurve(context.Background(), nand, st, "B",
					LoadCurveOptions{NVin: 121, NVout: 121, WarmStart: warm}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLoadCurveSweepParallel characterises the same cell from many
// goroutines at once, each compiling its own rig from the shared cell and
// tech card. It exists for the CI -race smoke: cross-goroutine state
// leaking through the shared inputs (or through sim.Program internals)
// would surface here.
func BenchmarkLoadCurveSweepParallel(b *testing.B) {
	t := tech.Tech130()
	inv := cell.MustNew(t, "INV", 1)
	st, err := inv.SensitizedState("A", true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := CharacterizeLoadCurve(context.Background(), inv, st, "A",
				LoadCurveOptions{NVin: 9, NVout: 9}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// legacyLoadCurvePoint replicates the pre-refactor per-point flow: build a
// fresh circuit and run a one-shot DC for a single (vin, vout) grid point.
func legacyLoadCurvePoint(cl *cell.Cell, st cell.State, noisyPin string, vin, vout, quietOut float64) (float64, error) {
	ckt := circuit.New()
	ckt.AddVDC("vdd", "vdd", "0", cl.Tech.VDD)
	pins := map[string]string{}
	for _, in := range cl.Inputs() {
		node := "in_" + in
		pins[in] = node
		v := cl.PinVoltage(st[in])
		if in == noisyPin {
			v = vin
		}
		ckt.AddVDC("v_"+in, node, "0", v)
	}
	if err := cl.Build(ckt, "dut", pins, "out", "vdd"); err != nil {
		return 0, err
	}
	ckt.AddVDC("vforce", "out", "0", vout)
	g := internalGuess(vout, quietOut)
	dc, err := sim.DC(ckt, sim.Options{InitialGuess: map[string]float64{
		"dut.n1": g, "dut.n2": g,
	}})
	if err != nil {
		return 0, err
	}
	return dc.BranchI("vforce"), nil
}

// TestLoadCurveSweepMatchesLegacyBitForBit compares the compiled
// session-backed sweep against fresh per-point circuits (the pre-refactor
// flow) on a small grid, for INV and NAND2 on both technology cards. The
// currents must agree bit-for-bit — the compiled path performs identical
// arithmetic, it only skips redundant assembly.
func TestLoadCurveSweepMatchesLegacyBitForBit(t *testing.T) {
	for _, tc := range []*tech.Tech{tech.Tech130(), tech.Tech90()} {
		for _, kind := range []string{"INV", "NAND2"} {
			cl := cell.MustNew(tc, kind, 1)
			noisy := cl.Inputs()[len(cl.Inputs())-1]
			t.Run(fmt.Sprintf("%s_vdd%.1f", cl.Name(), tc.VDD), func(t *testing.T) {
				st, err := cl.SensitizedState(noisy, true)
				if err != nil {
					t.Fatal(err)
				}
				opts := LoadCurveOptions{NVin: 7, NVout: 7}
				lc, err := CharacterizeLoadCurve(context.Background(), cl, st, noisy, opts)
				if err != nil {
					t.Fatal(err)
				}
				quietOut := cl.PinVoltage(cl.Logic(st))
				dvin := (lc.VinMax - lc.VinMin) / float64(lc.NVin-1)
				dvout := (lc.VoutMax - lc.VoutMin) / float64(lc.NVout-1)
				for iv := 0; iv < lc.NVin; iv++ {
					for io := 0; io < lc.NVout; io++ {
						vin := lc.VinMin + float64(iv)*dvin
						vout := lc.VoutMin + float64(io)*dvout
						want, err := legacyLoadCurvePoint(cl, st, noisy, vin, vout, quietOut)
						if err != nil {
							t.Fatalf("legacy point vin=%g vout=%g: %v", vin, vout, err)
						}
						if got := lc.I[iv*lc.NVout+io]; got != want {
							t.Fatalf("vin=%g vout=%g: I = %v (compiled) vs %v (legacy)",
								vin, vout, got, want)
						}
					}
				}
			})
		}
	}
}

// benchPropOptions is the reduced 2×2×2 grid the propagation-table
// transient benchmarks sweep: 8 glitch transients per table, enough to
// expose per-run costs without the full production grid's runtime.
func benchPropOptions(pred bool) PropOptions {
	return PropOptions{
		Heights:   []float64{0.4, 0.9},
		Widths:    []float64{150e-12, 400e-12},
		Loads:     []float64{30e-15, 120e-15},
		Dt:        2e-12,
		Predictor: pred,
	}
}

// BenchmarkPropTableTransient times a propagation-table characterisation
// with allocation tracking: every (height, width, load) probe reuses one
// compiled sim.Session *and* one transient result buffer
// (sim.Session.RunTransientInto), so the sweep's per-probe allocations are
// its glitch waveform and measurement only (numbers in EXPERIMENTS.md).
func BenchmarkPropTableTransient(b *testing.B) {
	benchPropTable(b, benchPropOptions(false))
}

// BenchmarkPropTableTransientPredictor is BenchmarkPropTableTransient with
// polynomial predictor seeding on — the Newton-iteration cut of
// sim.TestPredictorCutsNewtonIterations expressed as sweep wall time.
func BenchmarkPropTableTransientPredictor(b *testing.B) {
	benchPropTable(b, benchPropOptions(true))
}

func benchPropTable(b *testing.B, opts PropOptions) {
	b.Helper()
	t := tech.Tech130()
	inv := cell.MustNew(t, "INV", 1)
	st := cell.State{"A": false}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CharacterizePropagation(context.Background(), inv, st, "A", opts); err != nil {
			b.Fatal(err)
		}
	}
}
