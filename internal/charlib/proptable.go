package charlib

import (
	"context"
	"fmt"
	"math"

	"stanoise/internal/cell"
	"stanoise/internal/circuit"
	"stanoise/internal/sim"
	"stanoise/internal/wave"
)

// PropTable is a pre-characterised noise-propagation table: for an input
// glitch of given height and width on the noisy pin and a lumped output
// load, it records the peak and area of the glitch that appears at the cell
// output. This is the table-driven propagated-noise model of traditional
// SNA flows ("usually obtained from pre-characterized tables as a function
// of the input noise glitch area (or width) and height", paper §1) and
// feeds the linear-superposition baseline.
type PropTable struct {
	CellName string
	State    string
	NoisyPin string

	Heights []float64 // input glitch heights (V), ascending
	Widths  []float64 // input glitch base widths (s), ascending
	Loads   []float64 // lumped output loads (F), ascending

	// Peak and Area are indexed [h][w][l]; Peak in volts (magnitude),
	// Area in V·s. OutSign is the polarity of the output glitch.
	Peak    [][][]float64
	Area    [][][]float64
	OutSign float64
	// QuietOut is the quiet output level the glitches deviate from.
	QuietOut float64
}

// PropOptions tunes propagation-table characterisation.
type PropOptions struct {
	Heights []float64 // default 8 points, 0.15·VDD … 1.1·VDD
	Widths  []float64 // default {60,120,240,480,900} ps
	Loads   []float64 // default {10,40,120,300} fF
	Dt      float64   // transient step; default 1 ps

	// WarmStart seeds each probe's DC operating-point solve from the
	// previous probe's converged solution (sim.Session.WarmStart). The
	// quiet operating point barely moves between (height, width, load)
	// probes, so the warm solve typically converges in one or two
	// iterations. Off by default to preserve bit-identical results.
	WarmStart bool

	// Predictor seeds each transient timestep's Newton solve with a
	// polynomial extrapolation over the previous converged steps
	// (sim.Session.Predictor), cutting per-step Newton iterations on the
	// glitch transients that dominate propagation characterisation. Off by
	// default to preserve bit-identical results; predictor tables take
	// distinct cache and store keys, like warm-started ones.
	Predictor bool
}

func (o PropOptions) normalize(vdd float64) PropOptions {
	if len(o.Heights) == 0 {
		for _, f := range []float64{0.15, 0.3, 0.45, 0.6, 0.75, 0.9, 1.0, 1.1} {
			o.Heights = append(o.Heights, f*vdd)
		}
	}
	if len(o.Widths) == 0 {
		o.Widths = []float64{60e-12, 120e-12, 240e-12, 480e-12, 900e-12}
	}
	if len(o.Loads) == 0 {
		o.Loads = []float64{10e-15, 40e-15, 120e-15, 300e-15}
	}
	if o.Dt <= 0 {
		o.Dt = 1e-12
	}
	return o
}

// CharacterizePropagation simulates the cell transistor-level for every
// (height, width, load) combination: a triangular glitch is applied to the
// noisy pin from its quiet rail towards the opposite rail, and the output
// deviation is measured.
//
// The receiver netlist is compiled once; every (height, width, load) probe
// reuses the same sim.Session with only the glitch waveform and the lumped
// load value mutated (sim.Session.SetSource / SetLoad).
func CharacterizePropagation(ctx context.Context, cl *cell.Cell, st cell.State, noisyPin string, opts PropOptions) (*PropTable, error) {
	pt, _, err := characterizePropagationStats(ctx, cl, st, noisyPin, opts)
	return pt, err
}

// characterizePropagationStats is CharacterizePropagation plus the rig
// session's solver counters, so sweep drivers (SweepCorners) can attribute
// the transient work per corner without reading the process-wide registry.
func characterizePropagationStats(ctx context.Context, cl *cell.Cell, st cell.State, noisyPin string, opts PropOptions) (*PropTable, sim.SessionStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.normalize(cl.Tech.VDD)
	pt := &PropTable{
		CellName: cl.Name(),
		State:    st.String(),
		NoisyPin: noisyPin,
		Heights:  opts.Heights,
		Widths:   opts.Widths,
		Loads:    opts.Loads,
		QuietOut: cl.PinVoltage(cl.Logic(st)),
	}
	if !cl.HasInput(noisyPin) {
		return nil, sim.SessionStats{}, fmt.Errorf("charlib: %s has no pin %q", cl.Name(), noisyPin)
	}
	quietIn := cl.PinVoltage(st[noisyPin])
	glitchSign := 1.0
	if st[noisyPin] {
		glitchSign = -1
	}
	rig, err := newPropRig(cl, st, noisyPin, quietIn, opts)
	if err != nil {
		return nil, sim.SessionStats{}, err
	}
	// Attribute the probe sweep's solver work to the card's corner for the
	// process-wide per-corner registry (/statsz).
	defer func() { sim.RecordCornerStats(cl.Tech.CornerTag(), rig.sess.Stats()) }()
	pt.Peak = make([][][]float64, len(pt.Heights))
	pt.Area = make([][][]float64, len(pt.Heights))
	// The polarity is taken from the strongest response, where true
	// propagation dominates; tiny sub-threshold entries can be dominated
	// by capacitive feedthrough of the opposite sign.
	maxPeak := 0.0
	for hi, h := range pt.Heights {
		pt.Peak[hi] = make([][]float64, len(pt.Widths))
		pt.Area[hi] = make([][]float64, len(pt.Widths))
		for wi, w := range pt.Widths {
			pt.Peak[hi][wi] = make([]float64, len(pt.Loads))
			pt.Area[hi][wi] = make([]float64, len(pt.Loads))
			for li, load := range pt.Loads {
				if err := ctx.Err(); err != nil {
					return nil, sim.SessionStats{}, err
				}
				m, err := rig.propagate(ctx, glitchSign*h, w, load, pt.QuietOut)
				if err != nil {
					return nil, sim.SessionStats{}, fmt.Errorf("charlib: propagation h=%.2f w=%.0fps: %w", h, w*1e12, err)
				}
				pt.Peak[hi][wi][li] = m.Peak
				pt.Area[hi][wi][li] = m.Area
				if m.Peak > maxPeak {
					maxPeak = m.Peak
					pt.OutSign = m.Sign
				}
			}
		}
	}
	if pt.OutSign == 0 {
		pt.OutSign = -1
	}
	return pt, rig.sess.Stats(), nil
}

// propT0 is the glitch start time of every propagation probe.
const propT0 = 100e-12

// propRig is a compiled propagation test bench: the cell driven by a
// mutable glitch source into a mutable lumped load. res is the reused
// transient result storage — after the first probe, a propagate call
// allocates only its glitch waveform and measured output.
type propRig struct {
	sess    *sim.Session
	hGlitch sim.SourceHandle
	hLoad   sim.CapHandle
	quietIn float64
	res     sim.Result
}

func newPropRig(cl *cell.Cell, st cell.State, noisyPin string, quietIn float64, opts PropOptions) (*propRig, error) {
	ckt := circuit.New()
	ckt.AddVDC("vdd", "vdd", "0", cl.Tech.VDD)
	pins := map[string]string{}
	for _, in := range cl.Inputs() {
		node := "in_" + in
		pins[in] = node
		if in == noisyPin {
			// Placeholder glitch; replaced per probe via SetSource.
			ckt.AddV("v_"+in, node, "0", wave.Constant(quietIn))
		} else {
			ckt.AddVDC("v_"+in, node, "0", cl.PinVoltage(st[in]))
		}
	}
	if err := cl.Build(ckt, "dut", pins, "out", "vdd"); err != nil {
		return nil, err
	}
	// Placeholder load; replaced per probe via SetLoad.
	ckt.AddC("cload", "out", "0", 1e-15)
	prog := sim.Compile(ckt)
	sess, err := sim.NewSession(prog, sim.Options{Dt: opts.Dt})
	if err != nil {
		return nil, err
	}
	sess.WarmStart(opts.WarmStart)
	sess.Predictor(opts.Predictor)
	return &propRig{
		sess:    sess,
		hGlitch: prog.MustSource("v_" + noisyPin),
		hLoad:   prog.MustCap("cload"),
		quietIn: quietIn,
	}, nil
}

func (r *propRig) propagate(ctx context.Context, height, width, load, quietOut float64) (wave.NoiseMetrics, error) {
	r.sess.SetSource(r.hGlitch, wave.Triangle(r.quietIn, height, propT0, width))
	r.sess.SetLoad(r.hLoad, load)
	// Reuse the rig's result storage across probes (RunTransientInto);
	// Waveform copies the samples it extracts, so the measured output
	// survives the next probe overwriting res.
	if err := r.sess.RunTransientInto(ctx, &r.res, propT0+width+1.2e-9); err != nil {
		return wave.NoiseMetrics{}, err
	}
	return wave.MeasureNoise(r.res.Waveform("out"), quietOut), nil
}

// Lookup interpolates peak and area trilinearly at (height, width, load),
// clamping to the table boundary.
func (pt *PropTable) Lookup(height, width, load float64) (peak, area float64) {
	hi, th := bracket(pt.Heights, height)
	wi, tw := bracket(pt.Widths, width)
	li, tl := bracket(pt.Loads, load)
	lerp3 := func(tab [][][]float64) float64 {
		acc := 0.0
		for dh := 0; dh <= 1; dh++ {
			for dw := 0; dw <= 1; dw++ {
				for dl := 0; dl <= 1; dl++ {
					w := wgt(th, dh) * wgt(tw, dw) * wgt(tl, dl)
					acc += w * tab[hi+dh][wi+dw][li+dl]
				}
			}
		}
		return acc
	}
	return lerp3(pt.Peak), lerp3(pt.Area)
}

func wgt(t float64, d int) float64 {
	if d == 1 {
		return t
	}
	return 1 - t
}

// bracket finds the interpolation cell and fraction for x in ascending xs.
func bracket(xs []float64, x float64) (int, float64) {
	n := len(xs)
	if n == 1 {
		return 0, 0
	}
	if x <= xs[0] {
		return 0, 0
	}
	if x >= xs[n-1] {
		return n - 2, 1
	}
	for i := 1; i < n; i++ {
		if x < xs[i] {
			return i - 1, (x - xs[i-1]) / (xs[i] - xs[i-1])
		}
	}
	return n - 2, 1
}

// Waveform reconstructs the propagated glitch as a triangular waveform with
// the looked-up peak and area, its apex placed at tPeak. Peak and area
// determine the base width (2·area/peak); this is the analytical waveform
// reconstruction used when table-based flows need to combine noises.
func (pt *PropTable) Waveform(height, width, load, tPeak float64) *wave.Waveform {
	peak, area := pt.Lookup(height, width, load)
	if peak <= 0 {
		return wave.Constant(pt.QuietOut)
	}
	base := 2 * area / peak
	if base <= 0 {
		base = width
	}
	return wave.Triangle(pt.QuietOut, pt.OutSign*peak, tPeak-base/2, base)
}

// MaxPeak returns the largest characterised output peak, a sanity metric.
func (pt *PropTable) MaxPeak() float64 {
	max := 0.0
	for _, byW := range pt.Peak {
		for _, byL := range byW {
			for _, p := range byL {
				max = math.Max(max, p)
			}
		}
	}
	return max
}
