package charlib

import (
	"context"
	"math"
	"reflect"
	"testing"

	"stanoise/internal/cell"
	"stanoise/internal/sim"
	"stanoise/internal/tech"
)

// sweepCorners is the test harness around SweepCorners: one INV job on the
// cmos130 card across the given corners.
func sweepCorners(t *testing.T, cache *Cache, corners []tech.Corner, warm bool, grid int) []CornerResult {
	t.Helper()
	res, err := SweepCorners(context.Background(), cache, tech.Tech130(), corners,
		[]CornerJob{{Kind: "INV", Drive: 1, Pin: "A"}},
		CornerSweepOptions{LoadCurve: LoadCurveOptions{NVin: grid, NVout: grid, WarmStart: warm}})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// mustCorners resolves a list of standard corner names.
func mustCorners(t *testing.T, names ...string) []tech.Corner {
	t.Helper()
	out := make([]tech.Corner, 0, len(names))
	for _, n := range names {
		c, err := tech.CornerByName(n)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, c)
	}
	return out
}

// totalIters sums the Newton iterations across a sweep's corner results.
func totalIters(res []CornerResult) int64 {
	var n int64
	for _, r := range res {
		n += r.Stats.NewtonIters
	}
	return n
}

// TestCornerContinuationCutsNewtonIterations is the headline acceptance
// criterion of the corner farm: on the INV load-curve corner matrix
// (tt/ss/ff at the production 61×61 grid), the adjacent-corner warm-start
// sweep must spend at least 20% fewer Newton iterations than
// cold-per-corner characterisation — measured on the farm's own
// per-corner counters, seed solves included.
func TestCornerContinuationCutsNewtonIterations(t *testing.T) {
	corners := mustCorners(t, "tt", "ss", "ff")
	cold := totalIters(sweepCorners(t, nil, corners, false, 61))
	warm := totalIters(sweepCorners(t, nil, corners, true, 61))
	t.Logf("tt/ss/ff 61x61 INV matrix: %d Newton iterations cold-per-corner, %d warm continuation (%.1f%% reduction)",
		cold, warm, 100*(1-float64(warm)/float64(cold)))
	if warm > cold*8/10 {
		t.Fatalf("corner continuation cut iterations by only %.1f%% (cold %d, warm %d), want >= 20%%",
			100*(1-float64(warm)/float64(cold)), cold, warm)
	}
}

// TestAdjacentCornerSeedWarmsFirstPoint proves the cross-corner transplant
// is live: with a seed from the adjacent corner, every solve of the sweep
// — including the first grid point, the one intra-sweep warm starting
// cannot help — runs warm-started, and none falls back cold.
func TestAdjacentCornerSeedWarmsFirstPoint(t *testing.T) {
	base := tech.Tech130()
	ss, ff := mustCorners(t, "ss", "ff")[0], mustCorners(t, "ss", "ff")[1]
	opts := LoadCurveOptions{NVin: 11, NVout: 11, WarmStart: true}

	ffCell := cell.MustNew(ff.Apply(base), "INV", 1)
	st, err := ffCell.SensitizedState("A", true)
	if err != nil {
		t.Fatal(err)
	}
	seed, _, err := FirstPointSeed(cell.MustNew(ss.Apply(base), "INV", 1), st, "A", opts)
	if err != nil {
		t.Fatal(err)
	}

	_, unseeded, err := characterizeLoadCurveSeeded(context.Background(), ffCell, st, "A", opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, seeded, err := characterizeLoadCurveSeeded(context.Background(), ffCell, st, "A", opts, seed)
	if err != nil {
		t.Fatal(err)
	}
	if want := unseeded.WarmStarts + 1; seeded.WarmStarts != want {
		t.Fatalf("seeded sweep warm-started %d solves, want %d (the unseeded count plus the first point)",
			seeded.WarmStarts, want)
	}
	if seeded.WarmFallbacks != 0 {
		t.Fatalf("adjacent-corner seed fell back cold %d times", seeded.WarmFallbacks)
	}
	if seeded.NewtonIters >= unseeded.NewtonIters {
		t.Fatalf("seeded sweep spent %d iterations, unseeded %d — transplant saved nothing",
			seeded.NewtonIters, unseeded.NewtonIters)
	}
}

// TestCornerSweepArtefactsDistinct asserts the aliasing property end to
// end: distinct corners produce numerically different tables under
// distinct cache keys, while the nominal corner's artefact is the legacy
// one byte for byte.
func TestCornerSweepArtefactsDistinct(t *testing.T) {
	cache := NewCache()
	corners := mustCorners(t, "tt", "ss", "ff")
	res := sweepCorners(t, cache, corners, false, 11)
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	byName := map[string]*LoadCurve{}
	for _, r := range res {
		lc := r.Library.LoadCurveFor("INV_X1", r.Library.LoadCurves[0].State, "A")
		if lc == nil {
			t.Fatalf("corner %s: no INV load curve in library", r.Corner.Name)
		}
		byName[r.Corner.Name] = lc
		wantCorner := r.Corner.Name
		if r.Corner.IsNominal() {
			wantCorner = ""
		}
		if r.Library.Corner != wantCorner {
			t.Fatalf("corner %s: library tagged %q", r.Corner.Name, r.Library.Corner)
		}
	}
	for _, pair := range [][2]string{{"tt", "ss"}, {"tt", "ff"}, {"ss", "ff"}} {
		a, b := byName[pair[0]], byName[pair[1]]
		if reflect.DeepEqual(a.I, b.I) {
			t.Fatalf("corners %s and %s produced identical tables", pair[0], pair[1])
		}
	}
	if keys := cache.Keys(); len(keys) != 3 {
		t.Fatalf("expected 3 distinct cache keys, got %d: %v", len(keys), keys)
	}

	// The nominal corner's artefact must be the legacy one, byte for byte:
	// a direct legacy characterisation lands on the same key (cache hit)
	// and the same numbers.
	inv := cell.MustNew(tech.Tech130(), "INV", 1)
	st, err := inv.SensitizedState("A", true)
	if err != nil {
		t.Fatal(err)
	}
	before := cache.Stats()
	legacy, err := cache.LoadCurve(context.Background(), inv, st, "A", LoadCurveOptions{NVin: 11, NVout: 11})
	if err != nil {
		t.Fatal(err)
	}
	after := cache.Stats()
	if after.Misses != before.Misses {
		t.Fatalf("legacy nominal request missed the farm's tt entry (misses %d -> %d)", before.Misses, after.Misses)
	}
	if !reflect.DeepEqual(legacy.I, byName["tt"].I) {
		t.Fatal("farm tt table differs from the legacy nominal characterisation")
	}
}

// TestCornerSweepWarmRerunZeroSolves is the farm's reuse proof: a second
// sweep over the same cache performs zero transistor-level solves and
// reports all-zero per-corner work.
func TestCornerSweepWarmRerunZeroSolves(t *testing.T) {
	cache := NewCache()
	corners := mustCorners(t, "ss", "ff")
	sweepCorners(t, cache, corners, true, 11)
	before := sim.Snapshot()
	res := sweepCorners(t, cache, corners, true, 11)
	delta := sim.Snapshot().Sub(before)
	if delta.Total() != 0 {
		t.Fatalf("warm rerun performed %d transistor-level solves", delta.Total())
	}
	if n := totalIters(res); n != 0 {
		t.Fatalf("warm rerun reported %d Newton iterations", n)
	}
}

// TestCornerSweepDeterministic asserts scheduling independence: two
// identical farm runs on fresh caches produce identical libraries, corner
// order and tables — the property the continuation-seed design (canonical
// cold first-point seeds, no cross-task chaining) exists to guarantee.
func TestCornerSweepDeterministic(t *testing.T) {
	corners := append(mustCorners(t, "ss", "tt", "ff"), tech.SampleCorners(2, 99, tech.SampleSpec{})...)
	a := sweepCorners(t, NewCache(), corners, true, 11)
	b := sweepCorners(t, NewCache(), corners, true, 11)
	if len(a) != len(b) {
		t.Fatalf("result lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Corner.Name != b[i].Corner.Name {
			t.Fatalf("corner order differs at %d: %s vs %s", i, a[i].Corner.Name, b[i].Corner.Name)
		}
		if !reflect.DeepEqual(a[i].Library, b[i].Library) {
			t.Fatalf("corner %s: libraries differ between identical runs", a[i].Corner.Name)
		}
	}
}

// TestCornerSweepMCSamplesNeverAlias runs a small Monte Carlo fan-out and
// checks every sample lands in its own cache entry with its own numbers.
func TestCornerSweepMCSamplesNeverAlias(t *testing.T) {
	cache := NewCache()
	samples := tech.SampleCorners(3, 7, tech.SampleSpec{})
	res := sweepCorners(t, cache, samples, true, 11)
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	if keys := cache.Keys(); len(keys) != 3 {
		t.Fatalf("expected 3 distinct cache keys, got %d: %v", len(keys), keys)
	}
	for i := 1; i < len(res); i++ {
		if reflect.DeepEqual(res[i].Library.LoadCurves[0].I, res[i-1].Library.LoadCurves[0].I) {
			t.Fatalf("samples %s and %s produced identical tables",
				res[i-1].Corner.Name, res[i].Corner.Name)
		}
	}
	// Per-corner cache attribution: every sample tag must appear.
	tags := cache.CornerStats()
	for _, r := range res {
		st, ok := tags[r.Corner.Name]
		if !ok || st.Misses != 1 {
			t.Fatalf("per-corner cache stats missing sample %s: %+v", r.Corner.Name, tags)
		}
	}
}

// TestWarmCornerMatchesColdCorner is the correctness property at a
// non-nominal corner: continuation changes Newton seeds, never roots, so
// the warm table must match the cold one within solver tolerance.
func TestWarmCornerMatchesColdCorner(t *testing.T) {
	corners := mustCorners(t, "ss", "ff")
	cold := sweepCorners(t, nil, corners, false, 11)
	warm := sweepCorners(t, nil, corners, true, 11)
	for i := range cold {
		ci, wi := cold[i].Library.LoadCurves[0], warm[i].Library.LoadCurves[0]
		scale := 0.0
		for _, v := range ci.I {
			scale = math.Max(scale, math.Abs(v))
		}
		tol := 1e-6*scale + 1e-12
		for k := range ci.I {
			if d := math.Abs(ci.I[k] - wi.I[k]); d > tol {
				t.Fatalf("corner %s I[%d]: cold %v warm %v (|Δ| %.3g > tol %.3g)",
					cold[i].Corner.Name, k, ci.I[k], wi.I[k], d, tol)
			}
		}
	}
}
