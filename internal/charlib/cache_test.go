package charlib

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stanoise/internal/cell"
	"stanoise/internal/tech"
)

func TestCacheMemoizesLoadCurve(t *testing.T) {
	tt := tech.Tech130()
	st := cell.State{"A": false}
	opts := LoadCurveOptions{NVin: 11, NVout: 11}
	c := NewCache()

	lc1, err := c.LoadCurve(context.Background(), cell.MustNew(tt, "INV", 1), st, "A", opts)
	if err != nil {
		t.Fatal(err)
	}
	// A distinct *cell.Cell instance with the same configuration must hit.
	lc2, err := c.LoadCurve(context.Background(), cell.MustNew(tt, "INV", 1), st, "A", opts)
	if err != nil {
		t.Fatal(err)
	}
	if lc1 != lc2 {
		t.Error("identical cell configuration was re-characterised")
	}
	if s := c.Stats(); s.Entries != 1 || s.Misses != 1 || s.Hits != 1 {
		t.Errorf("stats after hit: %+v", s)
	}

	// A different drive is a different configuration: must miss.
	lc3, err := c.LoadCurve(context.Background(), cell.MustNew(tt, "INV", 2), st, "A", opts)
	if err != nil {
		t.Fatal(err)
	}
	if lc3 == lc1 {
		t.Error("different drive shared a cache entry")
	}
	// So is a different grid quality on the same cell.
	lc4, err := c.LoadCurve(context.Background(), cell.MustNew(tt, "INV", 1), st, "A", LoadCurveOptions{NVin: 21, NVout: 21})
	if err != nil {
		t.Fatal(err)
	}
	if lc4 == lc1 {
		t.Error("different options shared a cache entry")
	}
	if s := c.Stats(); s.Entries != 3 || s.Misses != 3 {
		t.Errorf("stats after distinct configs: %+v", s)
	}
}

func TestCacheMemoizesPropTable(t *testing.T) {
	tt := tech.Tech130()
	cl := cell.MustNew(tt, "NAND2", 1)
	st, err := cl.SensitizedState("B", true)
	if err != nil {
		t.Fatal(err)
	}
	opts := PropOptions{
		Heights: []float64{0.6, 1.2},
		Widths:  []float64{200e-12, 500e-12},
		Loads:   []float64{30e-15},
		Dt:      2e-12,
	}
	c := NewCache()
	pt1, err := c.PropTable(context.Background(), cl, st, "B", opts)
	if err != nil {
		t.Fatal(err)
	}
	pt2, err := c.PropTable(context.Background(), cell.MustNew(tt, "NAND2", 1), st, "B", opts)
	if err != nil {
		t.Fatal(err)
	}
	if pt1 != pt2 {
		t.Error("identical prop configuration was re-characterised")
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache()
	var builds atomic.Int32
	release := make(chan struct{})
	const goroutines = 16

	var wg sync.WaitGroup
	vals := make([]any, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Do(context.Background(), "shared", func() (any, error) {
				builds.Add(1)
				<-release // hold the build so every goroutine piles up
				return "artefact", nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	close(release)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Errorf("build ran %d times, want 1", n)
	}
	for i, v := range vals {
		if v != "artefact" {
			t.Errorf("goroutine %d got %v", i, v)
		}
	}
}

func TestCacheMemoizesErrors(t *testing.T) {
	c := NewCache()
	sentinel := errors.New("characterisation failed")
	var builds int
	for i := 0; i < 3; i++ {
		_, err := c.Do(context.Background(), "bad", func() (any, error) {
			builds++
			return nil, sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("call %d: err = %v", i, err)
		}
	}
	if builds != 1 {
		t.Errorf("failing build ran %d times, want 1", builds)
	}
}

func TestCacheBuildPanicDoesNotDeadlock(t *testing.T) {
	c := NewCache()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("build panic was swallowed")
			}
		}()
		c.Do(context.Background(), "boom", func() (any, error) { panic("kaboom") })
	}()
	// A later requester of the same key must get a memoized error
	// immediately, not block on a flight that never finished.
	done := make(chan error, 1)
	go func() {
		_, err := c.Do(context.Background(), "boom", func() (any, error) { return "ok", nil })
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("panicked build memoized no error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("requester after a panicked build deadlocked")
	}
}

func TestNilCachePassthrough(t *testing.T) {
	var c *Cache
	tt := tech.Tech130()
	lc, err := c.LoadCurve(context.Background(), cell.MustNew(tt, "INV", 1), cell.State{"A": false}, "A",
		LoadCurveOptions{NVin: 11, NVout: 11})
	if err != nil || lc == nil {
		t.Fatalf("nil cache LoadCurve: %v %v", lc, err)
	}
	if s := c.Stats(); s != (CacheStats{}) {
		t.Errorf("nil cache stats: %+v", s)
	}
	if c.Keys() != nil {
		t.Error("nil cache has keys")
	}
}
