package charlib

import (
	"fmt"
	"sort"
	"sync"

	"stanoise/internal/cell"
	"stanoise/internal/nrc"
)

// Cache is a thread-safe memoization layer over cell characterisation. A
// design re-uses the same few cell/drive/state configurations on thousands
// of nets, so the design-level analysis flow shares one Cache across all
// clusters (and all worker goroutines): the first cluster to need an
// artefact characterises it, every later cluster gets the stored result.
//
// Entries are keyed by artefact kind, technology, cell (the name embeds the
// drive strength), characterisation state, pin, and an options fingerprint,
// so distinct qualities never alias. Concurrent requests for the same key
// are single-flighted: one goroutine builds while the others wait for the
// result instead of duplicating the work.
//
// A nil *Cache is valid and simply characterises on every call.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*flight
	hits    int
	misses  int
}

// flight is one memoized build: done closes when val/err are final.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache returns an empty cache ready for concurrent use.
func NewCache() *Cache { return &Cache{entries: map[string]*flight{}} }

// CacheStats reports cache effectiveness counters.
type CacheStats struct {
	Entries int // distinct artefacts built (or building)
	Hits    int // requests served from an existing entry
	Misses  int // requests that triggered a build
}

// Stats snapshots the counters. Safe on a nil cache.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: len(c.entries), Hits: c.hits, Misses: c.misses}
}

// Keys returns the sorted entry keys, for inspection and tests.
func (c *Cache) Keys() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	c.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Do returns the memoized value for key, building it at most once. If the
// key is being built by another goroutine, Do waits for that build rather
// than starting a second one. Build errors are memoized too, so a failing
// configuration fails identically for every requester. A nil cache just
// calls build.
func (c *Cache) Do(key string, build func() (any, error)) (any, error) {
	if c == nil {
		return build()
	}
	c.mu.Lock()
	if f, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.entries[key] = f
	c.misses++
	c.mu.Unlock()
	// done must close even if build panics, or every waiter on this key
	// (and all future requesters) would block forever; the waiters see a
	// memoized error while the panic propagates in the builder.
	defer func() {
		if r := recover(); r != nil {
			f.err = fmt.Errorf("charlib: cache build for %q panicked: %v", key, r)
			close(f.done)
			panic(r)
		}
		close(f.done)
	}()
	f.val, f.err = build()
	return f.val, f.err
}

// CellKey builds a cache key for an artefact of the given kind ("lc",
// "prop", "nrc", ...) characterised on a cell configuration. The cell name
// embeds the drive strength, and optsFP fingerprints the characterisation
// options so different qualities get different entries.
func CellKey(kind string, cl *cell.Cell, st cell.State, pin, optsFP string) string {
	return kind + "|" + cl.Tech.Name + "|" + cl.Name() + "|" + st.String() + "|" + pin + "|" + optsFP
}

// LoadCurve returns the memoized VCCS load-curve table for the cell
// configuration, characterising it on first use.
func (c *Cache) LoadCurve(cl *cell.Cell, st cell.State, pin string, opts LoadCurveOptions) (*LoadCurve, error) {
	if c == nil {
		return CharacterizeLoadCurve(cl, st, pin, opts)
	}
	opts = opts.normalize()
	fp := fmt.Sprintf("%d,%d,%g", opts.NVin, opts.NVout, opts.MarginFrac)
	v, err := c.Do(CellKey("lc", cl, st, pin, fp), func() (any, error) {
		return CharacterizeLoadCurve(cl, st, pin, opts)
	})
	if err != nil {
		return nil, err
	}
	return v.(*LoadCurve), nil
}

// PropTable returns the memoized propagation table for the cell
// configuration, characterising it on first use.
func (c *Cache) PropTable(cl *cell.Cell, st cell.State, pin string, opts PropOptions) (*PropTable, error) {
	if c == nil {
		return CharacterizePropagation(cl, st, pin, opts)
	}
	opts = opts.normalize(cl.Tech.VDD)
	fp := fmt.Sprintf("%v,%v,%v,%g", opts.Heights, opts.Widths, opts.Loads, opts.Dt)
	v, err := c.Do(CellKey("prop", cl, st, pin, fp), func() (any, error) {
		return CharacterizePropagation(cl, st, pin, opts)
	})
	if err != nil {
		return nil, err
	}
	return v.(*PropTable), nil
}

// NRCCurve returns the memoized Noise Rejection Curve of a receiver pin in
// the given quiet state, characterising it on first use.
func (c *Cache) NRCCurve(recv *cell.Cell, st cell.State, pin string, opts nrc.Options) (*nrc.Curve, error) {
	if c == nil {
		return nrc.Characterize(recv, st, pin, opts)
	}
	opts = opts.Normalized()
	fp := fmt.Sprintf("%v,%g,%g,%g,%g", opts.Widths, opts.LoadCap, opts.FailFrac, opts.Tol, opts.Dt)
	v, err := c.Do(CellKey("nrc", recv, st, pin, fp), func() (any, error) {
		return nrc.Characterize(recv, st, pin, opts)
	})
	if err != nil {
		return nil, err
	}
	return v.(*nrc.Curve), nil
}
