package charlib

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"stanoise/internal/cell"
	"stanoise/internal/nrc"
	"stanoise/internal/tech"
)

// Cache is a thread-safe memoization layer over cell characterisation. A
// design re-uses the same few cell/drive/state configurations on thousands
// of nets, so the design-level analysis flow shares one Cache across all
// clusters (and all worker goroutines): the first cluster to need an
// artefact characterises it, every later cluster gets the stored result.
//
// Entries are keyed by artefact kind, technology, cell (the name embeds the
// drive strength), characterisation state, pin, and an options fingerprint,
// so distinct qualities never alias. Concurrent requests for the same key
// are single-flighted: one goroutine builds while the others wait for the
// result instead of duplicating the work.
//
// A Cache optionally carries a persistent second tier (see SetStore): on a
// memory miss the disk store is consulted before characterising, and every
// successful fresh build is written behind to disk — so a second process
// (or a second run of the same tool) starts warm. Cancelled or failed
// builds are never persisted.
//
// A nil *Cache is valid and simply characterises on every call.
type Cache struct {
	mu       sync.Mutex
	entries  map[string]*flight
	store    PersistentStore
	hits     int
	misses   int
	diskHits int
	// corner holds per-corner-tag cache counters (see CornerStats), fed by
	// Artefact so a corner-matrix farm can see cache effectiveness per
	// corner on /statsz. Lazily allocated; empty until the first Artefact.
	corner map[string]*CacheStats
}

// PersistentStore is the on-disk tier of the cache, implemented by
// charstore.Store. The cache keeps only this narrow view so the in-memory
// layer never depends on the serialisation layer.
//
// Get returns the decoded artefact for the configuration or ok=false on
// any miss — including corruption and version mismatches, which must
// degrade to a miss, never an error. Put persists a freshly built
// artefact; its error is advisory (persistence is an optimisation, never a
// correctness gate). Both must be safe for concurrent use.
type PersistentStore interface {
	Get(kind string, cl *cell.Cell, st cell.State, pin, optsFP string) (any, bool)
	Put(kind string, cl *cell.Cell, st cell.State, pin, optsFP string, v any) error
}

// LeaseStore is the optional cross-process extension of PersistentStore,
// implemented by charstore.Store. When the attached store also provides
// build leases, Artefact single-flights characterisation *between
// processes* sharing the store directory, not just between goroutines: on
// a disk miss it acquires the configuration's build lease, re-checks the
// store (the usual reason the lease became free is that its previous
// holder finished the build), and only then characterises.
//
// AcquireBuildLease blocks until the caller holds the lease or ctx is
// done; the returned release function must be called exactly once.
// Lease failures must degrade to building without the lease — duplicated
// work, never a lost result.
type LeaseStore interface {
	PersistentStore
	AcquireBuildLease(ctx context.Context, kind string, cl *cell.Cell, st cell.State, pin, optsFP string) (func(), error)
}

// flight is one memoized build: done closes when val/err are final.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache returns an empty cache ready for concurrent use.
func NewCache() *Cache { return &Cache{entries: map[string]*flight{}} }

// SetStore attaches (or, with nil, detaches) the persistent tier. Call it
// before sharing the cache; attaching mid-flight is safe but entries
// already memoized in memory are not retroactively persisted.
func (c *Cache) SetStore(s PersistentStore) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.store = s
	c.mu.Unlock()
}

// getStore snapshots the persistent tier.
func (c *Cache) getStore() PersistentStore {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.store
}

// CacheStats reports cache effectiveness counters. The JSON tags are part
// of the stable snacheck -json schema.
type CacheStats struct {
	Entries int `json:"entries"` // distinct artefacts built (or building)
	Hits    int `json:"hits"`    // requests served from an existing entry
	Misses  int `json:"misses"`  // requests that triggered a build
	// DiskHits counts the misses that were then answered by the persistent
	// store instead of a fresh characterisation. Misses includes them: a
	// warm-disk run shows Misses == DiskHits, a cold run DiskHits == 0.
	DiskHits int `json:"disk_hits"`
}

// Stats snapshots the counters. Safe on a nil cache.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: len(c.entries), Hits: c.hits, Misses: c.misses, DiskHits: c.diskHits}
}

// CornerStats snapshots the per-corner cache counters, keyed by the corner
// tag of the card each artefact was requested for (tech.Tech.CornerTag:
// "nominal" or the corner name). Only Artefact-routed requests are
// attributed (typed accessors all route through Artefact); Entries counts
// the builds this cache started for the corner. Safe on a nil cache.
func (c *Cache) CornerStats() map[string]CacheStats {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]CacheStats, len(c.corner))
	for tag, st := range c.corner {
		out[tag] = *st
	}
	return out
}

// noteCorner folds one Artefact outcome into the per-corner counters.
func (c *Cache) noteCorner(tag string, built, diskHit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.corner == nil {
		c.corner = map[string]*CacheStats{}
	}
	st := c.corner[tag]
	if st == nil {
		st = &CacheStats{}
		c.corner[tag] = st
	}
	switch {
	case built:
		st.Entries++
		st.Misses++
		if diskHit {
			st.DiskHits++
		}
	default:
		st.Hits++
	}
}

// Keys returns the sorted entry keys, for inspection and tests.
func (c *Cache) Keys() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	c.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Do returns the memoized value for key, building it at most once. If the
// key is being built by another goroutine, Do waits for that build rather
// than starting a second one. Build errors are memoized too, so a failing
// configuration fails identically for every requester. A nil cache just
// calls build.
//
// Cancellation is never memoized: a build abandoned because its ctx was
// cancelled is forgotten, so the next requester (whose context may well be
// alive) re-characterises instead of inheriting a stale context.Canceled.
// Waiters blocked on another goroutine's build also honour their own ctx.
func (c *Cache) Do(ctx context.Context, key string, build func() (any, error)) (any, error) {
	if c == nil {
		return build()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		c.mu.Lock()
		if f, ok := c.entries[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if isCtxErr(f.err) && ctx.Err() == nil {
				// The builder's run was cancelled (and the entry has been
				// forgotten); our context is still live, so try to become
				// the builder ourselves.
				continue
			}
			// Count the hit only once a memoized result is actually
			// served, so abandoned waits and forget-and-rebuild retries
			// don't inflate the stats.
			c.mu.Lock()
			c.hits++
			c.mu.Unlock()
			return f.val, f.err
		}
		f := &flight{done: make(chan struct{})}
		c.entries[key] = f
		c.misses++
		c.mu.Unlock()
		// done must close even if build panics, or every waiter on this key
		// (and all future requesters) would block forever; the waiters see a
		// memoized error while the panic propagates in the builder.
		defer func() {
			if r := recover(); r != nil {
				f.err = fmt.Errorf("charlib: cache build for %q panicked: %v", key, r)
				close(f.done)
				panic(r)
			}
			if isCtxErr(f.err) {
				c.forget(key, f)
			}
			close(f.done)
		}()
		f.val, f.err = build()
		return f.val, f.err
	}
}

// isCtxErr reports whether an error is a context cancellation or timeout —
// the class of build outcomes the cache must not memoize.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// forget removes the entry for key if it still belongs to flight f. Called
// before f.done closes, so a retrying waiter always observes the removal.
func (c *Cache) forget(key string, f *flight) {
	c.mu.Lock()
	if c.entries[key] == f {
		delete(c.entries, key)
	}
	c.mu.Unlock()
}

// CellKey builds a cache key for an artefact of the given kind ("lc",
// "prop", "nrc", ...) characterised on a cell configuration. The cell name
// embeds the drive strength, and optsFP fingerprints the characterisation
// options so different qualities never alias. A cell built on a
// corner-derived card (tech.Corner.Apply) additionally keys on the corner
// fingerprint, so per-corner artefacts never alias in memory either; the
// segment is absent for nominal cards, keeping legacy keys unchanged. This
// is the *in-memory* key; the persistent tier derives its own
// content-addressed key from the same configuration (plus the cell netlist,
// tech card and model version).
func CellKey(kind string, cl *cell.Cell, st cell.State, pin, optsFP string) string {
	techID := cl.Tech.Name
	if cl.Tech.Corner != nil {
		techID += "@" + cl.Tech.Corner.Fingerprint()
	}
	// Cards carrying the nonlinear gate-charge model share the base card's
	// Name, so they must key distinctly here just like corners do; the
	// suffix is absent on constant-cap cards, keeping legacy keys.
	return kind + "|" + techID + nlcapFP(cl.Tech) + "|" + cl.Name() + "|" + st.String() + "|" + pin + "|" + optsFP
}

// nlcapFP is the fingerprint suffix of the nonlinear gate-charge model,
// with the same contract as warmFP/predFP: nlcap artefacts are simulated on
// different physics and must never alias constant-cap entries, and the
// suffix is empty for constant-cap cards so every existing key is
// untouched. It keys off the technology card because that is where the
// model lives (tech.Tech.WithNonlinearCaps) — the per-device split follows
// from the card deterministically.
func nlcapFP(t *tech.Tech) string {
	if t.NonlinearCaps() {
		return ",nlcap"
	}
	return ""
}

// Artefact runs the full two-tier lookup for one artefact of the given
// kind: memory (single-flighted), then the persistent store, then build.
// A successful fresh build is written behind to the store; build errors
// and cancellations are never persisted. optsFP must fingerprint every
// option that shapes the result. A nil cache just builds.
//
// This is the extension point for artefact kinds the cache has no typed
// accessor for (core uses it for Thevenin driver fits).
func (c *Cache) Artefact(ctx context.Context, kind string, cl *cell.Cell, st cell.State, pin, optsFP string, build func() (any, error)) (any, error) {
	if c == nil {
		return build()
	}
	// built/diskHit are only written by this call's own closure: Do
	// single-flights, so when another goroutine owns the build our closure
	// never runs and the request is attributed as a per-corner hit.
	built, diskHit := false, false
	v, err := c.Do(ctx, CellKey(kind, cl, st, pin, optsFP), func() (any, error) {
		built = true
		s := c.getStore()
		if s != nil {
			if v, ok := s.Get(kind, cl, st, pin, optsFP); ok {
				c.mu.Lock()
				c.diskHits++
				c.mu.Unlock()
				diskHit = true
				return v, nil
			}
			if ls, ok := s.(LeaseStore); ok {
				// Disk miss on a lease-capable store: single-flight the build
				// across processes. Lease errors (unwritable lease dir, ctx
				// cancellation mid-wait with ctx still live overall) degrade
				// to building leaseless — duplicated work, never a failure.
				if release, lerr := ls.AcquireBuildLease(ctx, kind, cl, st, pin, optsFP); lerr == nil {
					defer release()
					// Re-check: the usual reason the lease became free is
					// that its previous holder finished this very build.
					if v, ok := s.Get(kind, cl, st, pin, optsFP); ok {
						c.mu.Lock()
						c.diskHits++
						c.mu.Unlock()
						diskHit = true
						return v, nil
					}
				} else if isCtxErr(lerr) {
					return nil, lerr
				}
			}
		}
		v, err := build()
		if err == nil && s != nil {
			// Best-effort write-behind: a full disk or unwritable store
			// directory costs persistence, never the analysis.
			_ = s.Put(kind, cl, st, pin, optsFP, v)
		}
		return v, err
	})
	if err == nil || built {
		c.noteCorner(cl.Tech.CornerTag(), built, diskHit)
	}
	return v, err
}

// warmFP is the fingerprint suffix of the warm-start continuation mode.
// Warm-started artefacts legitimately differ from cold ones in the last
// bits, so they must never alias in the cache or the persistent store; the
// suffix is empty when warm start is off so every pre-existing cold store
// entry keeps its key.
func warmFP(warm bool) string {
	if warm {
		return ",warm"
	}
	return ""
}

// predFP is the fingerprint suffix of the polynomial-predictor transient
// mode, with the same contract as warmFP: predictor artefacts differ from
// cold ones at solver tolerance, so they must never alias cold (or warm)
// entries, and the suffix is empty when the predictor is off so existing
// keys are untouched.
func predFP(pred bool) string {
	if pred {
		return ",pred"
	}
	return ""
}

// loadCurveFP fingerprints normalized load-curve options — the exact fp
// Cache.LoadCurve keys on. The corner-sweep driver reuses it (plus a
// continuation suffix) so a single-corner farm run and a plain LoadCurve
// call address the same artefact.
func loadCurveFP(opts LoadCurveOptions) string {
	return fmt.Sprintf("%d,%d,%g", opts.NVin, opts.NVout, opts.MarginFrac) + warmFP(opts.WarmStart)
}

// LoadCurve returns the memoized VCCS load-curve table for the cell
// configuration, characterising it on first use.
func (c *Cache) LoadCurve(ctx context.Context, cl *cell.Cell, st cell.State, pin string, opts LoadCurveOptions) (*LoadCurve, error) {
	if c == nil {
		return CharacterizeLoadCurve(ctx, cl, st, pin, opts)
	}
	opts = opts.normalize()
	v, err := c.Artefact(ctx, "lc", cl, st, pin, loadCurveFP(opts), func() (any, error) {
		return CharacterizeLoadCurve(ctx, cl, st, pin, opts)
	})
	if err != nil {
		return nil, err
	}
	return v.(*LoadCurve), nil
}

// propTableFP fingerprints normalized prop-table options — the exact fp
// Cache.PropTable keys on. The corner-sweep driver reuses it so a farm run
// and a plain PropTable call address the same artefact.
func propTableFP(opts PropOptions) string {
	return fmt.Sprintf("%v,%v,%v,%g", opts.Heights, opts.Widths, opts.Loads, opts.Dt) +
		warmFP(opts.WarmStart) + predFP(opts.Predictor)
}

// PropTable returns the memoized propagation table for the cell
// configuration, characterising it on first use.
func (c *Cache) PropTable(ctx context.Context, cl *cell.Cell, st cell.State, pin string, opts PropOptions) (*PropTable, error) {
	if c == nil {
		return CharacterizePropagation(ctx, cl, st, pin, opts)
	}
	opts = opts.normalize(cl.Tech.VDD)
	v, err := c.Artefact(ctx, "prop", cl, st, pin, propTableFP(opts), func() (any, error) {
		return CharacterizePropagation(ctx, cl, st, pin, opts)
	})
	if err != nil {
		return nil, err
	}
	return v.(*PropTable), nil
}

// NRCCurve returns the memoized Noise Rejection Curve of a receiver pin in
// the given quiet state, characterising it on first use.
func (c *Cache) NRCCurve(ctx context.Context, recv *cell.Cell, st cell.State, pin string, opts nrc.Options) (*nrc.Curve, error) {
	if c == nil {
		return nrc.Characterize(ctx, recv, st, pin, opts)
	}
	opts = opts.Normalized()
	fp := fmt.Sprintf("%v,%g,%g,%g,%g", opts.Widths, opts.LoadCap, opts.FailFrac, opts.Tol, opts.Dt)
	fp += warmFP(opts.WarmStart) + predFP(opts.Predictor)
	v, err := c.Artefact(ctx, "nrc", recv, st, pin, fp, func() (any, error) {
		return nrc.Characterize(ctx, recv, st, pin, opts)
	})
	if err != nil {
		return nil, err
	}
	return v.(*nrc.Curve), nil
}
