package charlib

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"stanoise/internal/cell"
	"stanoise/internal/sim"
	"stanoise/internal/tech"
)

// CornerJob names one characterisation configuration of a corner sweep: a
// cell kind at a drive strength with one noisy input pin. The
// characterisation state is derived per corner by sensitizing the pin
// (cell.SensitizedState), exactly as cmd/libchar does for single-corner
// runs.
type CornerJob struct {
	// Kind is the cell kind ("INV", "NAND2", ...).
	Kind string
	// Drive is the drive strength of the cell variant.
	Drive int
	// Pin is the noisy input pin to characterise.
	Pin string
}

// CornerSweepOptions tunes a corner-matrix/Monte Carlo characterisation
// farm run (SweepCorners).
type CornerSweepOptions struct {
	// LoadCurve configures each corner's load-curve sweep. Its WarmStart
	// field selects the continuation mode: intra-sweep warm starting plus
	// adjacent-corner seeding. Off, every corner characterises cold — the
	// baseline the continuation savings are measured against.
	LoadCurve LoadCurveOptions
	// Prop additionally characterises a propagation table per job and
	// corner (transient-heavy; intra-sweep warm starting only).
	Prop bool
	// PropOptions configures the propagation tables when Prop is set.
	PropOptions PropOptions
	// Workers bounds the concurrent (job × corner) characterisations;
	// 0 means GOMAXPROCS.
	Workers int
}

// CornerResult is one corner's slice of a SweepCorners run: the
// per-corner library plus the transistor-level solver work this run
// actually spent on the corner (zero when every artefact came from the
// cache or store — the warm-rerun-does-zero-solves proof reads exactly
// this).
type CornerResult struct {
	// Corner identifies the corner the library was characterised at.
	Corner tech.Corner
	// Library holds the corner's load curves (and prop tables with
	// Options.Prop) in job order, tagged with the corner name.
	Library *Library
	// Stats aggregates the load-curve solver work spent on this corner in
	// this run, including the adjacent-corner seed solves charged to it
	// (propagation-table work is tracked in the process-wide per-corner
	// registry, sim.SnapshotCorners, not here).
	Stats sim.SessionStats
}

// OrderCorners returns the corners sorted along the continuation-friendly
// axis (Corner.Axis, ties broken by name): monotonically increasing drive
// strength, so each corner's operating points are as close as the set
// allows to its predecessor's — the property that makes the predecessor's
// converged state a good Newton seed. The input is not modified.
func OrderCorners(corners []tech.Corner) []tech.Corner {
	out := append([]tech.Corner(nil), corners...)
	sort.SliceStable(out, func(i, j int) bool {
		ai, aj := out[i].Axis(), out[j].Axis()
		if ai != aj {
			return ai < aj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// contFP is the fingerprint suffix of an adjacent-corner continuation
// seed: it names the predecessor corner whose first-point state seeded the
// sweep, so a continuation-built artefact never aliases the same corner
// characterised standalone (or seeded from a different neighbour). The
// seed itself is a deterministic function of the predecessor corner (see
// FirstPointSeed), so one fp always addresses one byte sequence.
func contFP(pred tech.Corner) string {
	return ",cont={" + pred.Fingerprint() + "}"
}

// SweepCorners characterises every job at every corner — the
// corner-matrix / Monte Carlo farm. Corners are solved in continuation
// order (OrderCorners); with LoadCurve.WarmStart on, each non-nominal
// corner's load-curve sweep is seeded from its predecessor corner's
// converged first-point state (FirstPointSeed + Session.SeedWarmStart), so
// the only cold solve of an intra-warm sweep becomes a warm one too.
// Nominal corners always characterise unseeded, which keeps their
// artefacts (and cache/store keys) exactly those of a legacy
// corner-less run.
//
// Every (job, corner) pair is independent — the seed is recomputed from
// the predecessor's card rather than threaded through a chain — so all
// pairs fan out across the worker pool and the per-corner artefact bytes
// never depend on scheduling or cache history. Results come back in
// continuation order; Stats in each result counts only the solver work
// this run actually performed, so a rerun over a warm cache reports
// all-zero stats.
//
// The cache may be nil (every artefact characterises fresh) and may carry
// a persistent store; artefacts go through the usual two-tier Artefact
// path, so several farm processes can share a store directory.
func SweepCorners(ctx context.Context, cache *Cache, base *tech.Tech, corners []tech.Corner, jobs []CornerJob, opts CornerSweepOptions) ([]CornerResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(corners) == 0 || len(jobs) == 0 {
		return nil, fmt.Errorf("charlib: corner sweep needs at least one corner and one job")
	}
	opts.LoadCurve = opts.LoadCurve.normalize()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	ordered := OrderCorners(corners)
	type task struct{ ci, ji int }
	type outcome struct {
		lc    *LoadCurve
		pt    *PropTable
		stats sim.SessionStats
	}
	tasks := make([]task, 0, len(ordered)*len(jobs))
	for ci := range ordered {
		for ji := range jobs {
			tasks = append(tasks, task{ci, ji})
		}
	}
	outcomes := make([]outcome, len(tasks))

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		errMu    sync.Mutex
		firstErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		errMu.Unlock()
	}

	run := func(ti int) error {
		t := tasks[ti]
		corner, job := ordered[t.ci], jobs[t.ji]
		card := corner.Apply(base)
		cl, err := cell.New(card, job.Kind, job.Drive)
		if err != nil {
			return err
		}
		st, err := cl.SensitizedState(job.Pin, true)
		if err != nil {
			return fmt.Errorf("charlib: %s pin %s: %w", job.Kind, job.Pin, err)
		}
		lcOpts := opts.LoadCurve
		fp := loadCurveFP(lcOpts)
		var pred *tech.Corner
		if lcOpts.WarmStart && t.ci > 0 && !corner.IsNominal() {
			p := ordered[t.ci-1]
			pred = &p
			fp += contFP(p)
		}
		var stats sim.SessionStats
		v, err := cache.Artefact(ctx, "lc", cl, st, job.Pin, fp, func() (any, error) {
			var seed []float64
			if pred != nil {
				predCell, perr := cell.New(pred.Apply(base), job.Kind, job.Drive)
				if perr == nil {
					var sstats sim.SessionStats
					seed, sstats, perr = FirstPointSeed(predCell, st, job.Pin, lcOpts)
					stats = addStats(stats, sstats)
				}
				if perr != nil {
					// Transparent cold fallback: the sweep still runs, just
					// without the transplant (deterministically — seed
					// failures are a property of the configuration, not of
					// run state).
					seed = nil
				}
			}
			lc, sstats, err := characterizeLoadCurveSeeded(ctx, cl, st, job.Pin, lcOpts, seed)
			stats = addStats(stats, sstats)
			return lc, err
		})
		if err != nil {
			return fmt.Errorf("charlib: corner %s %s/%s: %w", corner.Name, job.Kind, job.Pin, err)
		}
		out := outcome{lc: v.(*LoadCurve), stats: stats}
		if opts.Prop {
			// Same key as Cache.PropTable, but through a stats-returning
			// characterizer so the per-corner counters include the
			// transient work (steps, predictor seeds), not just DC sweeps.
			popts := opts.PropOptions.normalize(cl.Tech.VDD)
			pv, err := cache.Artefact(ctx, "prop", cl, st, job.Pin, propTableFP(popts), func() (any, error) {
				pt, sstats, err := characterizePropagationStats(ctx, cl, st, job.Pin, popts)
				out.stats = addStats(out.stats, sstats)
				return pt, err
			})
			if err != nil {
				return fmt.Errorf("charlib: corner %s %s/%s propagation: %w", corner.Name, job.Kind, job.Pin, err)
			}
			out.pt = pv.(*PropTable)
		}
		outcomes[ti] = out
		return nil
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range next {
				if ctx.Err() != nil {
					continue
				}
				if err := run(ti); err != nil {
					setErr(err)
				}
			}
		}()
	}
	for ti := range tasks {
		next <- ti
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	results := make([]CornerResult, len(ordered))
	for ci, corner := range ordered {
		lib := &Library{Tech: base.Name}
		if !corner.IsNominal() {
			lib.Corner = corner.Name
		}
		res := CornerResult{Corner: corner, Library: lib}
		for ji := range jobs {
			o := outcomes[ci*len(jobs)+ji]
			lib.AddLoadCurve(o.lc)
			if o.pt != nil {
				lib.AddPropTable(o.pt)
			}
			res.Stats = addStats(res.Stats, o.stats)
		}
		results[ci] = res
	}
	return results, nil
}

// addStats sums two session-stat snapshots field-wise.
func addStats(a, b sim.SessionStats) sim.SessionStats {
	return sim.SessionStats{
		DCSolves:           a.DCSolves + b.DCSolves,
		Transients:         a.Transients + b.Transients,
		NewtonIters:        a.NewtonIters + b.NewtonIters,
		WarmStarts:         a.WarmStarts + b.WarmStarts,
		WarmFallbacks:      a.WarmFallbacks + b.WarmFallbacks,
		TransientSteps:     a.TransientSteps + b.TransientSteps,
		LinearFastPathRuns: a.LinearFastPathRuns + b.LinearFastPathRuns,
		PredictorSeeds:     a.PredictorSeeds + b.PredictorSeeds,
		PredictorFallbacks: a.PredictorFallbacks + b.PredictorFallbacks,
		NLStampEvals:       a.NLStampEvals + b.NLStampEvals,
	}
}
