package charlib

import (
	"strings"
	"testing"

	"stanoise/internal/cell"
	"stanoise/internal/tech"
)

// TestCellKeyNLCapAxis pins the in-memory cache key on the nonlinear-cap
// axis: a constant-cap card derives exactly the legacy key (no ",nlcap"
// anywhere — bit-stability of every warm entry), a WithNonlinearCaps card
// keys distinctly, and the axis composes with the corner axis without
// aliasing.
func TestCellKeyNLCapAxis(t *testing.T) {
	base := tech.Tech130()
	nl := base.WithNonlinearCaps()
	st := cell.State{"A": false}

	legacy := CellKey("lc", cell.MustNew(base, "INV", 1), st, "A", "q=std")
	if strings.Contains(legacy, "nlcap") {
		t.Fatalf("constant-cap key mentions nlcap: %q", legacy)
	}
	nlKey := CellKey("lc", cell.MustNew(nl, "INV", 1), st, "A", "q=std")
	if !strings.Contains(nlKey, ",nlcap") {
		t.Fatalf("nonlinear-cap key carries no ,nlcap marker: %q", nlKey)
	}
	if nlKey == legacy {
		t.Fatalf("nl and constant-cap configurations alias to %q", legacy)
	}
	// The marker is the only difference: same cell, state, pin, options.
	if strings.Replace(nlKey, ",nlcap", "", 1) != legacy {
		t.Fatalf("nlcap marker is not purely additive:\n%q\n%q", nlKey, legacy)
	}

	// Corner × nlcap: all four combinations distinct.
	ss, err := tech.CornerByName("ss")
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]string{}
	for name, card := range map[string]*tech.Tech{
		"nom":       base,
		"nom+nl":    nl,
		"corner":    ss.Apply(base),
		"corner+nl": ss.Apply(nl),
	} {
		k := CellKey("lc", cell.MustNew(card, "INV", 1), st, "A", "q=std")
		if prev, ok := keys[k]; ok {
			t.Fatalf("configurations %q and %q alias to %q", prev, name, k)
		}
		keys[k] = name
	}
}
