package charlib

import (
	"encoding/json"
	"fmt"
	"io"
)

// Library is a persistent collection of characterised artefacts for one
// technology — the noise view of a standard-cell library. It is what
// cmd/libchar produces and what a production flow would ship alongside
// timing libraries.
type Library struct {
	Tech string `json:"tech"`
	// Corner names the operating corner the library was characterised at
	// ("ss", "mc0007", ...); empty for nominal libraries, so pre-corner
	// library files round-trip byte-identically.
	Corner     string       `json:"corner,omitempty"`
	LoadCurves []*LoadCurve `json:"load_curves,omitempty"`
	PropTables []*PropTable `json:"prop_tables,omitempty"`
}

// key identifies an artefact by cell, state and pin.
func key(cellName, state, pin string) string { return cellName + "|" + state + "|" + pin }

// AddLoadCurve inserts or replaces a load curve.
func (l *Library) AddLoadCurve(lc *LoadCurve) {
	for i, old := range l.LoadCurves {
		if key(old.CellName, old.State, old.NoisyPin) == key(lc.CellName, lc.State, lc.NoisyPin) {
			l.LoadCurves[i] = lc
			return
		}
	}
	l.LoadCurves = append(l.LoadCurves, lc)
}

// AddPropTable inserts or replaces a propagation table.
func (l *Library) AddPropTable(pt *PropTable) {
	for i, old := range l.PropTables {
		if key(old.CellName, old.State, old.NoisyPin) == key(pt.CellName, pt.State, pt.NoisyPin) {
			l.PropTables[i] = pt
			return
		}
	}
	l.PropTables = append(l.PropTables, pt)
}

// LoadCurveFor retrieves a load curve, or nil.
func (l *Library) LoadCurveFor(cellName, state, pin string) *LoadCurve {
	for _, lc := range l.LoadCurves {
		if key(lc.CellName, lc.State, lc.NoisyPin) == key(cellName, state, pin) {
			return lc
		}
	}
	return nil
}

// PropTableFor retrieves a propagation table, or nil.
func (l *Library) PropTableFor(cellName, state, pin string) *PropTable {
	for _, pt := range l.PropTables {
		if key(pt.CellName, pt.State, pt.NoisyPin) == key(cellName, state, pin) {
			return pt
		}
	}
	return nil
}

// WriteJSON serialises the library.
func (l *Library) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(l)
}

// ReadLibrary deserialises a library and validates table shapes.
func ReadLibrary(r io.Reader) (*Library, error) {
	var l Library
	if err := json.NewDecoder(r).Decode(&l); err != nil {
		return nil, fmt.Errorf("charlib: reading library: %w", err)
	}
	for _, lc := range l.LoadCurves {
		if lc.NVin < 2 || lc.NVout < 2 || len(lc.I) != lc.NVin*lc.NVout {
			return nil, fmt.Errorf("charlib: load curve %s/%s/%s has inconsistent shape",
				lc.CellName, lc.State, lc.NoisyPin)
		}
	}
	for _, pt := range l.PropTables {
		if len(pt.Peak) != len(pt.Heights) {
			return nil, fmt.Errorf("charlib: prop table %s/%s/%s has inconsistent shape",
				pt.CellName, pt.State, pt.NoisyPin)
		}
	}
	return &l, nil
}
