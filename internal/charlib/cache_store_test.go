package charlib

import (
	"context"
	"errors"
	"sync"
	"testing"

	"stanoise/internal/cell"
	"stanoise/internal/tech"
)

// fakeStore is an in-memory PersistentStore recording its traffic, so the
// cache's two-tier contract is testable without disk or characterisation.
type fakeStore struct {
	mu      sync.Mutex
	m       map[string]any
	gets    int
	puts    int
	putErr  error
	lastPut any
}

func newFakeStore() *fakeStore { return &fakeStore{m: map[string]any{}} }

func (f *fakeStore) key(kind string, cl *cell.Cell, st cell.State, pin, optsFP string) string {
	return CellKey(kind, cl, st, pin, optsFP)
}

func (f *fakeStore) Get(kind string, cl *cell.Cell, st cell.State, pin, optsFP string) (any, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	v, ok := f.m[f.key(kind, cl, st, pin, optsFP)]
	return v, ok
}

func (f *fakeStore) Put(kind string, cl *cell.Cell, st cell.State, pin, optsFP string, v any) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.puts++
	f.lastPut = v
	if f.putErr != nil {
		return f.putErr
	}
	f.m[f.key(kind, cl, st, pin, optsFP)] = v
	return nil
}

func (f *fakeStore) snapshot() (gets, puts int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.gets, f.puts
}

func TestCacheReadsThroughStore(t *testing.T) {
	tt := tech.Tech130()
	cl := cell.MustNew(tt, "INV", 1)
	st := cell.State{"A": false}
	stored := &LoadCurve{CellName: "INV_X1", NVin: 2, NVout: 2, VinMax: 1, VoutMax: 1, I: []float64{1, 2, 3, 4}}

	f := newFakeStore()
	f.m[f.key("lc", cl, st, "A", "7,7,0.2")] = stored

	c := NewCache()
	c.SetStore(f)
	builds := 0
	v, err := c.Artefact(context.Background(), "lc", cl, st, "A", "7,7,0.2", func() (any, error) {
		builds++
		return nil, errors.New("should not build: store has it")
	})
	if err != nil {
		t.Fatal(err)
	}
	if builds != 0 {
		t.Error("build ran despite a disk hit")
	}
	if v != any(stored) {
		t.Error("disk hit returned a different value")
	}
	if s := c.Stats(); s.DiskHits != 1 || s.Misses != 1 {
		t.Errorf("stats after disk hit: %+v", s)
	}
	// The artefact is now memoized in memory: no further store traffic.
	getsBefore, _ := f.snapshot()
	if _, err := c.Artefact(context.Background(), "lc", cl, st, "A", "7,7,0.2", func() (any, error) {
		t.Error("memory hit rebuilt")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	if gets, _ := f.snapshot(); gets != getsBefore {
		t.Error("memory hit consulted the store")
	}
	if s := c.Stats(); s.Hits != 1 || s.DiskHits != 1 {
		t.Errorf("stats after memory hit: %+v", s)
	}
}

func TestCacheWritesBehindOnFreshBuild(t *testing.T) {
	tt := tech.Tech130()
	cl := cell.MustNew(tt, "INV", 1)
	st := cell.State{"A": false}
	built := &LoadCurve{CellName: "INV_X1", NVin: 2, NVout: 2, VinMax: 1, VoutMax: 1, I: []float64{9, 9, 9, 9}}

	f := newFakeStore()
	c := NewCache()
	c.SetStore(f)
	v, err := c.Artefact(context.Background(), "lc", cl, st, "A", "fp", func() (any, error) {
		return built, nil
	})
	if err != nil || v != any(built) {
		t.Fatalf("build through store: %v %v", v, err)
	}
	if _, puts := f.snapshot(); puts != 1 {
		t.Errorf("store saw %d puts, want 1", puts)
	}
	if f.lastPut != any(built) {
		t.Error("store received a different value than the build produced")
	}
	// A failing store write never fails the analysis.
	f2 := newFakeStore()
	f2.putErr = errors.New("disk full")
	c2 := NewCache()
	c2.SetStore(f2)
	if _, err := c2.Artefact(context.Background(), "lc", cl, st, "A", "fp", func() (any, error) {
		return built, nil
	}); err != nil {
		t.Errorf("store write failure surfaced to the caller: %v", err)
	}
}

func TestCacheNeverPersistsFailedOrCancelledBuilds(t *testing.T) {
	tt := tech.Tech130()
	cl := cell.MustNew(tt, "INV", 1)
	st := cell.State{"A": false}

	f := newFakeStore()
	c := NewCache()
	c.SetStore(f)
	if _, err := c.Artefact(context.Background(), "lc", cl, st, "A", "bad", func() (any, error) {
		return nil, errors.New("characterisation failed")
	}); err == nil {
		t.Fatal("failed build returned no error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	if _, err := c.Artefact(ctx, "lc", cl, st, "A", "cancelled", func() (any, error) {
		cancel()
		return nil, ctx.Err()
	}); err == nil {
		t.Fatal("cancelled build returned no error")
	}
	if _, puts := f.snapshot(); puts != 0 {
		t.Errorf("store saw %d puts from failed/cancelled builds, want 0", puts)
	}
}

func TestNilCacheArtefactPassthrough(t *testing.T) {
	var c *Cache
	tt := tech.Tech130()
	cl := cell.MustNew(tt, "INV", 1)
	built := 0
	v, err := c.Artefact(context.Background(), "lc", cl, cell.State{"A": false}, "A", "fp", func() (any, error) {
		built++
		return "built", nil
	})
	if err != nil || v != "built" || built != 1 {
		t.Fatalf("nil cache Artefact: v=%v err=%v built=%d", v, err, built)
	}
}
