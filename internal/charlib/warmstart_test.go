package charlib

import (
	"context"
	"fmt"
	"math"
	"testing"

	"stanoise/internal/cell"
	"stanoise/internal/sim"
	"stanoise/internal/tech"
)

// charCells enumerates the warm-start property-test matrix: INV and NAND2
// on both technology cards, mirroring the golden fixture configurations.
func charCells(t *testing.T) []*cell.Cell {
	t.Helper()
	var out []*cell.Cell
	for _, tc := range []*tech.Tech{tech.Tech130(), tech.Tech90()} {
		for _, kind := range []string{"INV", "NAND2"} {
			out = append(out, cell.MustNew(tc, kind, 1))
		}
	}
	return out
}

// TestWarmStartLoadCurveMatchesCold is the warm-start correctness property:
// for every cell/tech configuration, the continuation-seeded sweep must
// land on the same converged currents as the cold sweep — same roots,
// different Newton seeds — within solver tolerance.
func TestWarmStartLoadCurveMatchesCold(t *testing.T) {
	for _, cl := range charCells(t) {
		cl := cl
		t.Run(fmt.Sprintf("%s_vdd%.1f", cl.Name(), cl.Tech.VDD), func(t *testing.T) {
			noisy := cl.Inputs()[len(cl.Inputs())-1]
			st, err := cl.SensitizedState(noisy, true)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			cold, err := CharacterizeLoadCurve(ctx, cl, st, noisy, LoadCurveOptions{NVin: 21, NVout: 21})
			if err != nil {
				t.Fatal(err)
			}
			warm, err := CharacterizeLoadCurve(ctx, cl, st, noisy, LoadCurveOptions{NVin: 21, NVout: 21, WarmStart: true})
			if err != nil {
				t.Fatal(err)
			}
			scale := 0.0
			for _, i := range cold.I {
				scale = math.Max(scale, math.Abs(i))
			}
			tol := 1e-6*scale + 1e-12
			for k := range cold.I {
				if d := math.Abs(cold.I[k] - warm.I[k]); d > tol {
					t.Fatalf("I[%d]: cold %v warm %v (|Δ| %.3g > tol %.3g)", k, cold.I[k], warm.I[k], d, tol)
				}
			}
		})
	}
}

// sweepIterations characterises a load curve and returns the total Newton
// iterations the sweep spent, via the process-wide engine counters.
func sweepIterations(t *testing.T, cl *cell.Cell, st cell.State, pin string, opts LoadCurveOptions) int64 {
	t.Helper()
	before := sim.Snapshot()
	if _, err := CharacterizeLoadCurve(context.Background(), cl, st, pin, opts); err != nil {
		t.Fatal(err)
	}
	return sim.Snapshot().Sub(before).NewtonIters
}

// TestWarmStartCutsNewtonIterations is the headline acceptance criterion of
// the warm-start sweep engine: on the production 61×61 INV load-curve grid,
// continuation must cut total Newton iterations by at least 30% versus the
// cold sweep. (Measured numbers are recorded in EXPERIMENTS.md.)
func TestWarmStartCutsNewtonIterations(t *testing.T) {
	inv := cell.MustNew(tech.Tech130(), "INV", 1)
	st, err := inv.SensitizedState("A", true)
	if err != nil {
		t.Fatal(err)
	}
	opts := LoadCurveOptions{NVin: 61, NVout: 61}
	cold := sweepIterations(t, inv, st, "A", opts)
	opts.WarmStart = true
	warm := sweepIterations(t, inv, st, "A", opts)
	t.Logf("61x61 INV sweep: %d Newton iterations cold, %d warm (%.1f%% reduction)",
		cold, warm, 100*(1-float64(warm)/float64(cold)))
	if warm > cold*7/10 {
		t.Fatalf("warm start cut iterations by only %.1f%% (cold %d, warm %d), want >= 30%%",
			100*(1-float64(warm)/float64(cold)), cold, warm)
	}
}

// TestWarmStartIterationsDecreaseOnFineGrid asserts the continuation
// property on a fine 121×121 grid for both cell kinds: the finer the grid,
// the better the previous point predicts the next, so warm-start iteration
// counts must be strictly below cold ones.
func TestWarmStartIterationsDecreaseOnFineGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("fine-grid sweep is slow")
	}
	tc := tech.Tech130()
	for _, kind := range []string{"INV", "NAND2"} {
		cl := cell.MustNew(tc, kind, 1)
		noisy := cl.Inputs()[len(cl.Inputs())-1]
		st, err := cl.SensitizedState(noisy, true)
		if err != nil {
			t.Fatal(err)
		}
		opts := LoadCurveOptions{NVin: 121, NVout: 121}
		cold := sweepIterations(t, cl, st, noisy, opts)
		opts.WarmStart = true
		warm := sweepIterations(t, cl, st, noisy, opts)
		t.Logf("121x121 %s sweep: %d Newton iterations cold, %d warm (%.1f%% reduction)",
			kind, cold, warm, 100*(1-float64(warm)/float64(cold)))
		if warm >= cold {
			t.Fatalf("%s: warm iterations %d not strictly below cold %d on the fine grid", kind, warm, cold)
		}
	}
}

// TestLoadCurveSweepAllocsIndependentOfGrid pins down the allocation-free
// sweep loop end to end: growing the grid from 21×21 (441 points) to 61×61
// (3721 points) must not grow the sweep's allocation count beyond a small
// constant — every per-point allocation was eliminated by the
// RunDCInto/SetSourceDC path (the per-point loop itself is asserted to be
// exactly zero-alloc by sim's TestRunDCIntoAllocFree).
func TestLoadCurveSweepAllocsIndependentOfGrid(t *testing.T) {
	inv := cell.MustNew(tech.Tech130(), "INV", 1)
	st, err := inv.SensitizedState("A", true)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(n int) float64 {
		return testing.AllocsPerRun(3, func() {
			if _, err := CharacterizeLoadCurve(context.Background(), inv, st, "A",
				LoadCurveOptions{NVin: n, NVout: n}); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := measure(21), measure(61)
	t.Logf("sweep allocations: %.0f at 21x21, %.0f at 61x61", small, large)
	// 3280 extra grid points; allow a handful of allocs of slack for the
	// differently sized table slice and map growth inside compilation.
	if large > small+50 {
		t.Fatalf("allocations scale with the grid: %.0f at 21x21 vs %.0f at 61x61", small, large)
	}
}

// TestWarmStartPropTableMatchesCold asserts the transient characterisation
// path under warm start: only the DC operating-point seed changes, so
// propagated peaks and areas must agree with the cold flow within solver
// tolerance.
func TestWarmStartPropTableMatchesCold(t *testing.T) {
	inv := cell.MustNew(tech.Tech130(), "INV", 1)
	st, err := inv.SensitizedState("A", true)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opts := PropOptions{
		Heights: []float64{0.4, 1.0},
		Widths:  []float64{200e-12, 500e-12},
		Loads:   []float64{25e-15},
		Dt:      2e-12,
	}
	cold, err := CharacterizePropagation(ctx, inv, st, "A", opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.WarmStart = true
	warm, err := CharacterizePropagation(ctx, inv, st, "A", opts)
	if err != nil {
		t.Fatal(err)
	}
	for hi := range cold.Peak {
		for wi := range cold.Peak[hi] {
			for li := range cold.Peak[hi][wi] {
				dp := math.Abs(cold.Peak[hi][wi][li] - warm.Peak[hi][wi][li])
				da := math.Abs(cold.Area[hi][wi][li] - warm.Area[hi][wi][li])
				if dp > 1e-6 || da > 1e-15 {
					t.Fatalf("[%d][%d][%d]: peak Δ %.3g, area Δ %.3g", hi, wi, li, dp, da)
				}
			}
		}
	}
}
