package charlib

import (
	"context"
	"math"
	"testing"

	"stanoise/internal/cell"
	"stanoise/internal/circuit"
	"stanoise/internal/sim"
	"stanoise/internal/tech"
	"stanoise/internal/wave"
)

// lcVCCS adapts a characterised load curve to the simulator's VCCS element,
// so the table can be dropped into a full netlist in place of the
// transistor-level cell.
type lcVCCS struct{ lc *LoadCurve }

func (a lcVCCS) Eval(vc, vo float64) (float64, float64, float64) {
	return a.lc.Eval(vc, vo)
}

// The table-replaces-transistors test: simulate the same noise event twice,
// once with the transistor-level NAND2 and once with its characterised VCCS
// table (plus the lumped driving-point parasitics), inside the *same*
// general-purpose simulator. This validates eq. (1) end to end,
// independently of the dedicated macromodel engine.
func TestVCCSTableReplacesTransistors(t *testing.T) {
	tt := tech.Tech130()
	nand := cell.MustNew(tt, "NAND2", 1)
	st, err := nand.SensitizedState("B", true)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := CharacterizeLoadCurve(context.Background(), nand, st, "B", LoadCurveOptions{NVin: 41, NVout: 41})
	if err != nil {
		t.Fatal(err)
	}

	glitch := wave.Triangle(0, 0.8, 150e-12, 400e-12)
	const load = 60e-15
	opts := sim.Options{Dt: 1e-12, TStop: 1.6e-9}

	// Golden: transistor cell driving the load, inputs at the state rails,
	// glitch on B.
	golden := circuit.New()
	golden.AddVDC("vdd", "vdd", "0", tt.VDD)
	golden.AddVDC("va", "a", "0", tt.VDD)
	golden.AddV("vb", "b", "0", glitch)
	if err := nand.Build(golden, "dut", map[string]string{"A": "a", "B": "b"}, "out", "vdd"); err != nil {
		t.Fatal(err)
	}
	golden.AddC("cl", "out", "0", load)
	gRes, err := sim.Transient(context.Background(), golden, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Table: VCCS element controlled by the same glitch node, with the
	// driving-point parasitics the macromodel lumps there.
	table := circuit.New()
	table.AddV("vb", "b", "0", glitch)
	table.AddVCCS("xvccs", "b", "out", lcVCCS{lc: lc})
	dpCap := load + nand.OutputCap() + nand.OutputFixedGateCap("B") + nand.ConnectedInternalNodeCap(st)
	table.AddC("cl", "out", "0", dpCap)
	// Seed the quiet level; the VCCS holds it thereafter.
	tRes, err := sim.Transient(context.Background(), table, sim.Options{
		Dt: opts.Dt, TStop: opts.TStop,
		InitialGuess: map[string]float64{"out": tt.VDD},
	})
	if err != nil {
		t.Fatal(err)
	}

	gm := wave.MeasureNoise(gRes.Waveform("out"), tt.VDD)
	tm := wave.MeasureNoise(tRes.Waveform("out"), tt.VDD)
	if gm.Sign != -1 || tm.Sign != -1 {
		t.Fatalf("glitch directions: golden %v table %v", gm.Sign, tm.Sign)
	}
	if rel := math.Abs(tm.Peak-gm.Peak) / gm.Peak; rel > 0.10 {
		t.Errorf("table peak %v vs golden %v (rel %.1f%%)", tm.Peak, gm.Peak, 100*rel)
	}
	if rel := math.Abs(tm.Area-gm.Area) / gm.Area; rel > 0.12 {
		t.Errorf("table area %v vs golden %v (rel %.1f%%)", tm.Area, gm.Area, 100*rel)
	}
	// Both must recover to the quiet rail.
	if v := tRes.Waveform("out").At(opts.TStop); math.Abs(v-tt.VDD) > 0.02 {
		t.Errorf("table model did not recover: %v", v)
	}
}
