package sna

import (
	"context"
	"math"
	"strings"
	"testing"

	"stanoise/internal/charlib"
	"stanoise/internal/core"
	"stanoise/internal/nrc"
)

// sampleDesign builds a small two-cluster design used across the tests.
func sampleDesign() *Design {
	return &Design{
		Name:     "demo",
		Tech:     "cmos130",
		Layer:    "M4",
		Segments: 8,
		Clusters: []ClusterSpec{
			{
				Name: "hot", // aggressive cluster expected to be noisy
				Victim: VictimSpec{
					Cell: "NAND2", Drive: 1, NoisyPin: "B",
					GlitchHeightV: 0.7, GlitchWidthPs: 400,
					LengthUm: 500,
				},
				Aggressors: []AggressorSpec{
					{Cell: "INV", Drive: 4, FromState: map[string]bool{"A": false},
						SwitchPin: "A", LengthUm: 500, Side: "right"},
					{Cell: "INV", Drive: 4, FromState: map[string]bool{"A": false},
						SwitchPin: "A", LengthUm: 500, Side: "left"},
				},
			},
			{
				Name: "mild", // short, single weak aggressor, no glitch
				Victim: VictimSpec{
					Cell: "INV", Drive: 2, NoisyPin: "A",
					LengthUm: 150,
				},
				Aggressors: []AggressorSpec{
					{Cell: "INV", Drive: 1, FromState: map[string]bool{"A": false},
						SwitchPin: "A", LengthUm: 150, SpacingFactor: 2},
				},
			},
		},
	}
}

func fastOpts(method core.Method) Options {
	return Options{
		Method:    method,
		Dt:        2e-12,
		Align:     true,
		LoadCurve: charlib.LoadCurveOptions{NVin: 41, NVout: 41},
		Prop: charlib.PropOptions{
			Heights: []float64{0.3, 0.6, 0.9, 1.2},
			Widths:  []float64{150e-12, 400e-12, 800e-12},
			Loads:   []float64{30e-15, 80e-15, 160e-15},
			Dt:      2e-12,
		},
		NRC: nrc.Options{Widths: []float64{100e-12, 300e-12, 900e-12}, Dt: 2e-12},
	}
}

func TestParseDesignRoundTrip(t *testing.T) {
	d := sampleDesign()
	var b strings.Builder
	if err := d.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	d2, err := ParseDesign(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Name != d.Name || len(d2.Clusters) != len(d.Clusters) {
		t.Errorf("round trip lost data: %+v", d2)
	}
	if d2.Clusters[0].Aggressors[1].Side != "left" {
		t.Errorf("aggressor side lost")
	}
}

func TestParseDesignRejectsUnknownFields(t *testing.T) {
	_, err := ParseDesign(strings.NewReader(`{"name":"x","tech":"cmos130","layer":"M4","clusters":[{"name":"c","victim":{"cell":"INV","noisy_pin":"A","length_um":100},"bogus":1}]}`))
	if err == nil {
		t.Error("unknown field accepted")
	}
}

func TestDesignValidate(t *testing.T) {
	d := sampleDesign()
	d.Tech = "cmos65"
	if err := d.Validate(); err == nil {
		t.Error("unknown tech accepted")
	}
	d = sampleDesign()
	d.Clusters[0].Aggressors[0].Side = "above"
	if err := d.Validate(); err == nil {
		t.Error("bad side accepted")
	}
	d = sampleDesign()
	d.Clusters = nil
	if err := d.Validate(); err != nil {
		t.Errorf("empty design rejected: %v (an empty shard must be analysable)", err)
	}
}

func TestBuildClusterGeometry(t *testing.T) {
	d := sampleDesign()
	cl, err := d.BuildCluster(d.Clusters[0])
	if err != nil {
		t.Fatal(err)
	}
	// One left aggressor, victim in the middle, one right aggressor.
	if len(cl.Bus.Lines) != 3 {
		t.Fatalf("lines = %d", len(cl.Bus.Lines))
	}
	if cl.Victim.Line != 1 {
		t.Errorf("victim line = %d, want 1 (centre)", cl.Victim.Line)
	}
	// The victim state defaults to the sensitised state A=1, B=0.
	if !cl.Victim.State["A"] || cl.Victim.State["B"] {
		t.Errorf("victim state = %v", cl.Victim.State)
	}
	// Default receiver: INV_X2 pin A.
	if cl.Victim.Receiver == nil || cl.Victim.Receiver.Name() != "INV_X2" {
		t.Errorf("victim receiver = %v", cl.Victim.Receiver)
	}
}

func TestAnalyzeFlagsHotCluster(t *testing.T) {
	d := sampleDesign()
	an := NewAnalyzer(d, fastOpts(core.Macromodel))
	reports, err := an.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	hot, mild := reports[0], reports[1]
	if hot.Cluster != "hot" || mild.Cluster != "mild" {
		t.Fatalf("report order: %v %v", hot.Cluster, mild.Cluster)
	}
	// The hot cluster must carry far more noise than the mild one.
	if hot.PeakV <= mild.PeakV {
		t.Errorf("hot peak %v <= mild peak %v", hot.PeakV, mild.PeakV)
	}
	// The mild cluster must pass its NRC with margin.
	if mild.Fails {
		t.Error("mild cluster flagged as failing")
	}
	if !math.IsInf(mild.MarginV, 1) && mild.MarginV < 0.1 {
		t.Errorf("mild margin %v V suspiciously small", mild.MarginV)
	}
	// The hot cluster was constructed to be dangerous: two strong in-phase
	// aggressors plus a large propagated glitch.
	if !hot.Fails && hot.MarginV > 0.25 {
		t.Errorf("hot cluster implausibly safe: margin %v V", hot.MarginV)
	}
}

// The paper's motivating failure mode: superposition-based SNA passes a
// cluster that the accurate non-linear analysis flags as (close to)
// failing. At minimum the superposition noise estimate must be
// significantly lower.
func TestSuperpositionUnderestimatesInFlow(t *testing.T) {
	d := sampleDesign()
	d.Clusters = d.Clusters[:1]
	mac, err := NewAnalyzer(d, fastOpts(core.Macromodel)).Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sup, err := NewAnalyzer(d, fastOpts(core.Superposition)).Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sup[0].DPPeakV >= mac[0].DPPeakV {
		t.Errorf("superposition DP peak %v >= macromodel %v", sup[0].DPPeakV, mac[0].DPPeakV)
	}
	under := 100 * (mac[0].DPPeakV - sup[0].DPPeakV) / mac[0].DPPeakV
	if under < 8 {
		t.Errorf("superposition underestimates by only %.1f%%", under)
	}
}

func TestNRCCacheSharedAcrossClusters(t *testing.T) {
	d := sampleDesign()
	an := NewAnalyzer(d, fastOpts(core.Macromodel))
	if _, err := an.Analyze(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Both clusters use INV_X2/A receivers at quiet-high: one curve.
	nrcEntries := 0
	for _, k := range an.cache.Keys() {
		if strings.HasPrefix(k, "nrc|") {
			nrcEntries++
		}
	}
	if nrcEntries != 1 {
		t.Errorf("nrc cache entries = %d, want 1 (shared)", nrcEntries)
	}
	if s := an.CacheStats(); s.Hits == 0 {
		t.Errorf("no cache hits across clusters sharing a receiver: %+v", s)
	}
}

func TestSummarize(t *testing.T) {
	reports := []NetReport{
		{Cluster: "a", Fails: false, MarginV: 0.4},
		{Cluster: "b", Fails: true, MarginV: -0.1},
		{Cluster: "c", Fails: false, MarginV: math.Inf(1)},
	}
	s := Summarize(reports)
	if s.Total != 3 || s.Failing != 1 {
		t.Errorf("summary %+v", s)
	}
	if s.WorstCluster != "b" || s.WorstMarginV != -0.1 {
		t.Errorf("worst: %s %v", s.WorstCluster, s.WorstMarginV)
	}
}
