package sna

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"stanoise/internal/core"
	"stanoise/internal/tech"
)

// cornerDesign is a single small cluster, enough to exercise the corner
// plumbing without the cost of the full sample design.
func cornerDesign() *Design {
	d := sampleDesign()
	d.Clusters = d.Clusters[1:] // the "mild" cluster only
	return d
}

// TestNominalCornerReportBitStable proves Options.Corner at its zero value
// changes nothing: the reports match a corner-less run field for field, and
// the JSON schema carries no "corner" key.
func TestNominalCornerReportBitStable(t *testing.T) {
	d := cornerDesign()
	legacy, err := NewAnalyzer(d, fastOpts(core.Macromodel)).Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts(core.Macromodel)
	opts.Corner, err = tech.CornerByName("tt")
	if err != nil {
		t.Fatal(err)
	}
	nominal, err := NewAnalyzer(d, opts).Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range legacy {
		legacy[i].ClearTiming()
		nominal[i].ClearTiming()
		if legacy[i] != nominal[i] {
			t.Fatalf("tt report differs from legacy:\n%+v\n%+v", nominal[i], legacy[i])
		}
		b, err := json.Marshal(nominal[i])
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(b), `"corner"`) {
			t.Fatalf("nominal report JSON grew a corner key: %s", b)
		}
	}
}

// TestCornerChangesAnalysis runs the same cluster at the ss corner and
// checks the corner actually reaches the electrical result: the report is
// tagged, the tag survives a JSON round trip, and the noise numbers differ
// from nominal (a slow, low-VDD card cannot produce identical waveforms).
func TestCornerChangesAnalysis(t *testing.T) {
	d := cornerDesign()
	nominal, err := NewAnalyzer(d, fastOpts(core.Macromodel)).Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts(core.Macromodel)
	opts.Corner, err = tech.CornerByName("ss")
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewAnalyzer(d, opts).Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ss[0].Corner != "ss" {
		t.Fatalf("ss report tagged %q", ss[0].Corner)
	}
	if ss[0].PeakV == nominal[0].PeakV && ss[0].DPPeakV == nominal[0].DPPeakV {
		t.Fatalf("ss corner produced nominal noise numbers (peak %v)", ss[0].PeakV)
	}

	b, err := json.Marshal(ss[0])
	if err != nil {
		t.Fatal(err)
	}
	var back NetReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Corner != "ss" {
		t.Fatalf("corner tag lost in JSON round trip: %q", back.Corner)
	}
}
