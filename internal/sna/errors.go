package sna

import (
	"encoding/json"
	"fmt"
)

// Stage identifies the pipeline stage of cluster analysis in which an error
// occurred. The stages mirror StageTiming: build, models, feas, align, eval,
// nrc.
type Stage string

// The analysis pipeline stages, in execution order. StageFeas only appears
// when the feasibility filter is enabled (Options.Feasibility).
const (
	StageBuild  Stage = "build"  // cluster construction: geometry, parasitics, cells
	StageModels Stage = "models" // pre-characterisation (load curve, Thevenin, MOR)
	StageFeas   Stage = "feas"   // feasibility filter: constraint solve + scenario evaluations
	StageAlign  Stage = "align"  // worst-case aggressor alignment search
	StageEval   Stage = "eval"   // transient evaluation of the chosen method
	StageNRC    Stage = "nrc"    // receiver NRC characterisation or cache lookup
)

// ClusterError is the typed per-cluster analysis failure: which cluster
// failed, in which pipeline stage, and the underlying cause. It supports
// errors.Is/errors.As through Unwrap, so callers can both extract the
// failing cluster from an Analyze/Stream error and still test the root
// cause (e.g. errors.Is(err, context.Canceled)).
type ClusterError struct {
	Cluster string // cluster (victim net) name from the design
	Stage   Stage  // pipeline stage that failed
	Err     error  // underlying cause
}

// Error implements error.
func (e *ClusterError) Error() string {
	return fmt.Sprintf("sna: cluster %s: %s: %v", e.Cluster, e.Stage, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ClusterError) Unwrap() error { return e.Err }

// MarshalJSON renders the error in the stable machine-readable form used by
// snacheck -json: {"cluster": ..., "stage": ..., "error": ...}.
func (e *ClusterError) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Cluster string `json:"cluster"`
		Stage   Stage  `json:"stage"`
		Error   string `json:"error"`
	}{e.Cluster, e.Stage, e.Err.Error()})
}

// ErrorPolicy selects how Analyze and Stream treat failing clusters.
type ErrorPolicy int

const (
	// FailFast (the default) stops dispatching new clusters at the first
	// failure; Analyze returns the error of the earliest failing cluster in
	// design order, mirroring what a serial run would report.
	FailFast ErrorPolicy = iota
	// ContinueOnError analyses every cluster regardless of failures.
	// Analyze returns the reports of all successful clusters together with
	// every *ClusterError combined via errors.Join; Stream yields each
	// failure, in completion order, as it happens.
	ContinueOnError
)

// String returns the stable policy name accepted by ParseErrorPolicy
// ("fail-fast" or "continue").
func (p ErrorPolicy) String() string {
	switch p {
	case FailFast:
		return "fail-fast"
	case ContinueOnError:
		return "continue"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParseErrorPolicy converts the CLI spellings ("fail-fast", "continue")
// into an ErrorPolicy.
func ParseErrorPolicy(s string) (ErrorPolicy, error) {
	switch s {
	case "fail-fast", "failfast":
		return FailFast, nil
	case "continue", "collect":
		return ContinueOnError, nil
	}
	return 0, fmt.Errorf("unknown error policy %q (want fail-fast or continue)", s)
}
