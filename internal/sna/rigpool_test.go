package sna

import (
	"context"
	"testing"

	"stanoise/internal/core"
)

// TestAnalyzerRigPoolReuse asserts the per-worker compiled-bench pools
// engage and persist: a serial run of the sample design (whose victim
// configurations involve driver-alone benches via the alignment search)
// populates a pool, and a second Analyze on the same analyzer reuses the
// pooled benches instead of recompiling — while reporting exactly the same
// analysis results.
func TestAnalyzerRigPoolReuse(t *testing.T) {
	ctx := context.Background()
	opts := fastOpts(core.Macromodel)
	opts.Workers = 1
	an := NewAnalyzer(sampleDesign(), opts)

	first, err := an.Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_, missesAfterFirst := an.RigPoolStats()
	if missesAfterFirst == 0 {
		t.Fatal("no benches were compiled into the pool on the first run")
	}

	second, err := an.Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := an.RigPoolStats()
	if misses != missesAfterFirst {
		t.Fatalf("second run compiled %d new benches, want 0 (pool reuse)", misses-missesAfterFirst)
	}
	if hits == 0 {
		t.Fatal("second run never hit the rig pool")
	}

	if len(first) != len(second) {
		t.Fatalf("report counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		a, b := first[i], second[i]
		a.ClearTiming()
		b.ClearTiming()
		if a != b {
			t.Fatalf("report %d differs across pooled re-analysis:\n%+v\n%+v", i, a, b)
		}
	}
}

// TestAnalyzeWarmStartMatchesCold runs the same design cold and with
// Options.WarmStart and requires the sign-off outcome to agree: warm-start
// characterisation differs from cold only at solver-tolerance level, far
// below anything that could move a pass/fail decision or a margin by a
// reportable amount.
func TestAnalyzeWarmStartMatchesCold(t *testing.T) {
	ctx := context.Background()
	cold, err := NewAnalyzer(sampleDesign(), fastOpts(core.Macromodel)).Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wopts := fastOpts(core.Macromodel)
	wopts.WarmStart = true
	warm, err := NewAnalyzer(sampleDesign(), wopts).Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold) != len(warm) {
		t.Fatalf("report counts differ: %d vs %d", len(cold), len(warm))
	}
	for i := range cold {
		c, w := cold[i], warm[i]
		if c.Cluster != w.Cluster || c.Fails != w.Fails {
			t.Fatalf("cluster %s: outcome differs cold vs warm (%+v vs %+v)", c.Cluster, c, w)
		}
		if d := c.PeakV - w.PeakV; d > 1e-6 || d < -1e-6 {
			t.Fatalf("cluster %s: peak differs by %.3g V", c.Cluster, d)
		}
		if d := c.MarginV - w.MarginV; d > 0.05 || d < -0.05 {
			// Margins come from bisected NRC heights; warm bisection can
			// move a height by at most one bracket (the bisection Tol).
			t.Fatalf("cluster %s: margin differs by %.3g V", c.Cluster, d)
		}
	}
}
