package sna

import "context"

// Gate bounds how many clusters are analysed concurrently *across*
// analyzers. Options.Workers bounds one run; a Gate is the fleet-wide
// bound a multi-tenant server needs so N concurrent requests cannot
// multiply into N×Workers simultaneous transistor-level solves. Every
// worker acquires the gate before analysing a cluster and releases it
// afterwards, so a request admitted while the fleet is saturated simply
// queues at cluster granularity instead of oversubscribing the host.
//
// Acquire blocks until a slot is free or ctx is done, returning ctx.Err()
// in the latter case; Release returns the slot and must be called exactly
// once per successful Acquire. Implementations must be safe for concurrent
// use. A nil Gate in Options means unbounded (no fleet limit).
type Gate interface {
	Acquire(ctx context.Context) error
	Release()
}

// chanGate is the standard Gate: a buffered-channel semaphore.
type chanGate chan struct{}

// NewGate returns a Gate admitting at most n concurrent holders, or nil
// (no limit) when n <= 0 — so callers can plumb a "0 = unlimited"
// configuration value straight through.
func NewGate(n int) Gate {
	if n <= 0 {
		return nil
	}
	return make(chanGate, n)
}

// Acquire implements Gate.
func (g chanGate) Acquire(ctx context.Context) error {
	select {
	case g <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release implements Gate.
func (g chanGate) Release() { <-g }
