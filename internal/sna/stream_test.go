package sna

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"stanoise/internal/core"
)

// settleGoroutines waits for the goroutine count to come back down to the
// pre-test level, failing the test if pool workers leaked.
func settleGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStreamMatchesAnalyze: a Stream consumed to completion yields exactly
// the reports of an equivalent Analyze run (in completion rather than
// design order).
func TestStreamMatchesAnalyze(t *testing.T) {
	d := GenerateDesign("stream", 5)
	opts := fastOpts(core.Macromodel)
	opts.Workers = 4

	batch, err := NewAnalyzer(d, opts).Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var streamed []NetReport
	for rep, err := range NewAnalyzer(d, opts).Stream(context.Background()) {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		streamed = append(streamed, rep)
	}
	if len(streamed) != len(batch) {
		t.Fatalf("stream yielded %d reports, Analyze %d", len(streamed), len(batch))
	}
	sort.Slice(streamed, func(i, j int) bool { return streamed[i].Cluster < streamed[j].Cluster })
	sorted := append([]NetReport(nil), batch...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Cluster < sorted[j].Cluster })
	sb, bb := marshalReports(t, streamed), marshalReports(t, sorted)
	if string(sb) != string(bb) {
		t.Errorf("stream reports differ from Analyze:\nstream:  %s\nanalyze: %s", sb, bb)
	}
}

// TestStreamEarlyBreak: breaking out of the range loop cancels and drains
// the worker pool without leaking goroutines.
func TestStreamEarlyBreak(t *testing.T) {
	before := runtime.NumGoroutine()
	d := GenerateDesign("brk", 8)
	opts := fastOpts(core.Macromodel)
	opts.Workers = 4

	seen := 0
	for _, err := range NewAnalyzer(d, opts).Stream(context.Background()) {
		if err != nil {
			t.Fatalf("stream error: %v", err)
		}
		seen++
		if seen == 2 {
			break
		}
	}
	if seen != 2 {
		t.Fatalf("consumed %d reports, want 2", seen)
	}
	settleGoroutines(t, before)
}

// TestAnalyzeCancelPrompt: cancelling mid-run returns promptly with the
// context error — through the characterisation loops and transient engines,
// not just between clusters — and leaks no goroutines.
func TestAnalyzeCancelPrompt(t *testing.T) {
	before := runtime.NumGoroutine()
	d := GenerateDesign("cancel", 12)
	opts := fastOpts(core.Macromodel)
	opts.Workers = 4
	// A fresh private cache: cancellation must interrupt characterisation.
	opts.Cache = nil

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	reports, err := NewAnalyzer(d, opts).Analyze(ctx)
	returned := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Analyze after cancel: reports=%d err=%v, want context.Canceled", len(reports), err)
	}
	if reports != nil {
		t.Errorf("cancelled Analyze returned %d reports, want nil", len(reports))
	}
	// Generous bound: the ctx checks sit inside the DC sweeps and
	// transient loops, so the pool must wind down in well under the many
	// seconds a 12-cluster run takes.
	if returned > 5*time.Second {
		t.Errorf("Analyze took %v to honour cancellation", returned)
	}
	settleGoroutines(t, before)
}

// TestStreamCancelYieldsContextError: a cancelled Stream terminates with a
// final (zero report, ctx error) pair.
func TestStreamCancelYieldsContextError(t *testing.T) {
	before := runtime.NumGoroutine()
	d := GenerateDesign("scancel", 10)
	opts := fastOpts(core.Macromodel)
	opts.Workers = 2

	ctx, cancel := context.WithCancel(context.Background())
	var last error
	n := 0
	for _, err := range NewAnalyzer(d, opts).Stream(ctx) {
		last = err
		if err == nil {
			n++
			cancel() // cancel as soon as the first report lands
		}
	}
	if !errors.Is(last, context.Canceled) {
		t.Errorf("final stream error = %v, want context.Canceled", last)
	}
	if n == len(d.Clusters) {
		t.Errorf("stream completed all %d clusters despite cancellation", n)
	}
	settleGoroutines(t, before)
	cancel()
}

// TestContinueOnErrorCollectsEveryFailure: with ContinueOnError a design
// with several broken clusters still analyses every good one, and the
// joined error names each failing cluster exactly once.
func TestContinueOnErrorCollectsEveryFailure(t *testing.T) {
	d := GenerateDesign("multi-err", 6)
	d.Clusters[1].Victim.Cell = "XOR9" // unknown cell: StageBuild failure
	d.Clusters[4].Victim.Cell = "XOR9"

	opts := fastOpts(core.Macromodel)
	opts.Workers = 3
	opts.OnError = ContinueOnError
	reports, err := NewAnalyzer(d, opts).Analyze(context.Background())
	if err == nil {
		t.Fatal("continue-on-error swallowed the failures")
	}
	if len(reports) != 4 {
		t.Errorf("got %d reports, want 4 successful clusters", len(reports))
	}
	counts := map[string]int{}
	for _, e := range flattenClusterErrors(err) {
		counts[e.Cluster]++
		if e.Stage != StageBuild {
			t.Errorf("cluster %s failed in stage %q, want %q", e.Cluster, e.Stage, StageBuild)
		}
	}
	if counts["net001"] != 1 || counts["net004"] != 1 || len(counts) != 2 {
		t.Errorf("failure counts = %v, want net001 and net004 exactly once", counts)
	}
	// errors.As must reach a *ClusterError through the join.
	var cerr *ClusterError
	if !errors.As(err, &cerr) {
		t.Error("errors.As failed to extract *ClusterError from the joined error")
	}
}

// flattenClusterErrors walks an errors.Join tree collecting *ClusterError.
func flattenClusterErrors(err error) []*ClusterError {
	if err == nil {
		return nil
	}
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		var out []*ClusterError
		for _, e := range joined.Unwrap() {
			out = append(out, flattenClusterErrors(e)...)
		}
		return out
	}
	var cerr *ClusterError
	if errors.As(err, &cerr) {
		return []*ClusterError{cerr}
	}
	return nil
}

// TestFailFastTypedError: the default policy surfaces the earliest failing
// cluster as a typed *ClusterError with the failing stage.
func TestFailFastTypedError(t *testing.T) {
	d := GenerateDesign("ff", 6)
	d.Clusters[2].Victim.Cell = "XOR9"
	d.Clusters[5].Victim.Cell = "XOR9"

	opts := fastOpts(core.Macromodel)
	opts.Workers = 4
	_, err := NewAnalyzer(d, opts).Analyze(context.Background())
	var cerr *ClusterError
	if !errors.As(err, &cerr) {
		t.Fatalf("error %v is not a *ClusterError", err)
	}
	if cerr.Cluster != "net002" {
		t.Errorf("failing cluster = %q, want the earliest (net002)", cerr.Cluster)
	}
	if cerr.Stage != StageBuild {
		t.Errorf("failing stage = %q, want %q", cerr.Stage, StageBuild)
	}
	if !strings.Contains(err.Error(), "net002") || !strings.Contains(err.Error(), "build") {
		t.Errorf("error text %q does not name cluster and stage", err)
	}
}

// TestStreamContinueOnErrorYieldsFailures: failures arrive interleaved in
// completion order, each exactly once, alongside every good report.
func TestStreamContinueOnErrorYieldsFailures(t *testing.T) {
	d := GenerateDesign("serr", 5)
	d.Clusters[0].Victim.Cell = "XOR9"
	d.Clusters[3].Victim.Cell = "XOR9"

	opts := fastOpts(core.Macromodel)
	opts.Workers = 2
	opts.OnError = ContinueOnError
	good, bad := 0, map[string]int{}
	for rep, err := range NewAnalyzer(d, opts).Stream(context.Background()) {
		if err != nil {
			var cerr *ClusterError
			if !errors.As(err, &cerr) {
				t.Fatalf("stream error %v is not a *ClusterError", err)
			}
			if rep.Cluster != cerr.Cluster {
				t.Errorf("error yield report names %q, error names %q", rep.Cluster, cerr.Cluster)
			}
			bad[cerr.Cluster]++
			continue
		}
		good++
	}
	if good != 3 {
		t.Errorf("streamed %d good reports, want 3", good)
	}
	if bad["net000"] != 1 || bad["net003"] != 1 || len(bad) != 2 {
		t.Errorf("streamed failures = %v, want net000 and net003 exactly once", bad)
	}
}

// TestEmptyDesignAnalyze: an empty design is valid, analyses to zero
// reports, and its summary renders the guarded message instead of +Inf.
func TestEmptyDesignAnalyze(t *testing.T) {
	d := &Design{Name: "empty", Tech: "cmos130", Layer: "M4"}
	if err := d.Validate(); err != nil {
		t.Fatalf("empty design invalid: %v", err)
	}
	reports, err := NewAnalyzer(d, fastOpts(core.Macromodel)).Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 0 {
		t.Fatalf("reports = %d", len(reports))
	}
	s := Summarize(reports)
	if got := s.String(); got != "no nets analysed" {
		t.Errorf("empty summary = %q", got)
	}
	if !math.IsInf(s.WorstMarginV, 1) || s.WorstCluster != "" {
		t.Errorf("empty summary fields: %+v", s)
	}
	// The JSON schema must survive the +Inf margin (null on the wire).
	b, jerr := json.Marshal(s)
	if jerr != nil {
		t.Fatalf("summary with +Inf margin does not marshal: %v", jerr)
	}
	if !strings.Contains(string(b), `"worst_margin_v":null`) {
		t.Errorf("empty summary JSON = %s, want null margin", b)
	}
}

// TestNetReportJSONRoundTrip: the stable schema round-trips, including the
// unfailable +Inf margin as null.
func TestNetReportJSONRoundTrip(t *testing.T) {
	in := NetReport{
		Cluster: "x", Method: core.Macromodel,
		PeakV: 0.25, AreaVps: 40, WidthPs: 300, DPPeakV: 0.31,
		Fails: false, MarginV: math.Inf(1),
		Elapsed: 12 * time.Millisecond,
		Timing:  StageTiming{Build: time.Millisecond, Eval: 2 * time.Millisecond},
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"cluster":"x"`, `"method":"macromodel"`, `"margin_v":null`, `"build_ns":1000000`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("JSON %s missing %s", b, want)
		}
	}
	var out NetReport
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip changed the report:\nin:  %+v\nout: %+v", in, out)
	}

	in.MarginV = -0.07
	in.Fails = true
	b, err = json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.MarginV != -0.07 || !out.Fails {
		t.Errorf("finite margin lost in round trip: %+v", out)
	}
}

// TestSerialPolicyAndCancel covers the Workers=1 reference path: policy
// handling and cancellation must behave exactly like the pool.
func TestSerialPolicyAndCancel(t *testing.T) {
	d := GenerateDesign("ser", 4)
	d.Clusters[1].Victim.Cell = "XOR9"
	d.Clusters[2].Victim.Cell = "XOR9"

	opts := fastOpts(core.Macromodel)
	opts.Workers = 1
	opts.OnError = ContinueOnError
	reports, err := NewAnalyzer(d, opts).Analyze(context.Background())
	if len(reports) != 2 || len(flattenClusterErrors(err)) != 2 {
		t.Errorf("serial continue-on-error: %d reports, errors %v", len(reports), err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewAnalyzer(d, opts).Analyze(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("serial cancelled Analyze error = %v", err)
	}
}
