package sna

import "fmt"

// SampleDesign is a ready-to-run starter design: one dangerous cluster and
// one comfortable one, mirroring the paper's Table 1/2 setups. It is what
// `snacheck -sample` emits. Both clusters carry correlation metadata so the
// sample also exercises the feasibility filter out of the box: bus_bit7's
// two aggressors are opposite phases of one bus and mutually exclusive, so
// realistic mode prunes their simultaneous-switching combination.
func SampleDesign() *Design {
	return &Design{
		Name:     "sample",
		Tech:     "cmos130",
		Layer:    "M4",
		Segments: 15,
		Clusters: []ClusterSpec{
			{
				Name: "bus_bit7",
				Victim: VictimSpec{
					Cell: "NAND2", Drive: 1, NoisyPin: "B",
					GlitchHeightV: 0.7, GlitchWidthPs: 400,
					LengthUm: 500,
				},
				Aggressors: []AggressorSpec{
					{Name: "left", Cell: "INV", Drive: 2, FromState: map[string]bool{"A": false},
						SwitchPin: "A", LengthUm: 500, Side: "left",
						Window: &WindowSpec{EarlyPs: 150, LatePs: 450}},
					{Name: "right", Cell: "INV", Drive: 2, FromState: map[string]bool{"A": false},
						SwitchPin: "A", LengthUm: 500, Side: "right",
						Window: &WindowSpec{EarlyPs: 250, LatePs: 550}},
				},
				MutexGroups: [][]string{{"left", "right"}},
			},
			{
				Name: "ctrl_en",
				Victim: VictimSpec{
					Cell: "INV", Drive: 2, NoisyPin: "A",
					LengthUm: 200,
				},
				Aggressors: []AggressorSpec{
					{Cell: "INV", Drive: 1, FromState: map[string]bool{"A": false},
						SwitchPin: "A", LengthUm: 200, SpacingFactor: 2,
						Window: &WindowSpec{EarlyPs: 100, LatePs: 300}},
				},
			},
		},
	}
}

// GenerateDesign builds a deterministic synthetic many-cluster design for
// benchmarks and concurrency tests: n noise clusters whose victims,
// aggressors and geometries cycle through a small set of realistic
// variants. Like a real routed design, the same few cell configurations
// recur across many nets — which is exactly what the shared
// characterisation cache exploits — while wire lengths, spacings and
// glitch sizes vary per cluster so every evaluation is distinct work.
//
// Every aggressor carries a switching window, and the two-aggressor
// clusters alternate between a mutual-exclusion pair (with staggered,
// partly disjoint windows) and an implication pair (with overlapping
// windows — an implication across disjoint windows would strand its
// antecedent and fail validation), so a generated design gives the
// feasibility filter temporal and both logic constraint kinds to prune.
func GenerateDesign(name string, n int) *Design {
	victims := []struct {
		cell  string
		drive int
		pin   string
	}{
		{"NAND2", 1, "B"},
		{"INV", 2, "A"},
		{"NAND2", 2, "A"},
		{"INV", 1, "A"},
	}
	aggDrives := []int{1, 2, 4}

	d := &Design{
		Name:     name,
		Tech:     "cmos130",
		Layer:    "M4",
		Segments: 8,
	}
	for i := 0; i < n; i++ {
		v := victims[i%len(victims)]
		length := 200 + 75*float64(i%5)
		cs := ClusterSpec{
			Name: fmt.Sprintf("net%03d", i),
			Victim: VictimSpec{
				Cell:     v.cell,
				Drive:    v.drive,
				NoisyPin: v.pin,
				LengthUm: length,
			},
		}
		// Every third cluster also receives a propagated glitch, like the
		// mixed injected+propagated cases of the paper's Table 1.
		if i%3 == 0 {
			cs.Victim.GlitchHeightV = 0.4 + 0.1*float64((i/3)%3)
			cs.Victim.GlitchWidthPs = 300
		}
		nAgg := 1 + i%2
		for j := 0; j < nAgg; j++ {
			side := "right"
			if j == 1 {
				side = "left"
			}
			// Window placement: single aggressors get one moderate window;
			// mutex pairs (i%4 == 1) get staggered windows with a shrinking
			// overlap so some pairs are also temporally infeasible;
			// implication pairs (i%4 == 3) share one generous window.
			var w *WindowSpec
			switch {
			case nAgg == 1:
				early := 100 + 40*float64(i%4)
				w = &WindowSpec{EarlyPs: early, LatePs: early + 250}
			case i%4 == 1:
				early := 120 + 260*float64(j) + 20*float64(i%3)
				w = &WindowSpec{EarlyPs: early, LatePs: early + 180}
			default:
				w = &WindowSpec{EarlyPs: 100, LatePs: 500}
			}
			cs.Aggressors = append(cs.Aggressors, AggressorSpec{
				Cell:          "INV",
				Drive:         aggDrives[(i+j)%len(aggDrives)],
				FromState:     map[string]bool{"A": false},
				SwitchPin:     "A",
				SlewPs:        60 + 20*float64(i%3),
				LengthUm:      length,
				SpacingFactor: 1 + float64(i%2),
				Side:          side,
				Window:        w,
			})
		}
		if nAgg == 2 {
			switch i % 4 {
			case 1:
				cs.MutexGroups = [][]string{{"agg0", "agg1"}}
			case 3:
				cs.Implications = []ImplicationSpec{{If: "agg0", Then: "agg1"}}
			}
		}
		d.Clusters = append(d.Clusters, cs)
	}
	return d
}
