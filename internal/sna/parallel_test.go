package sna

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"stanoise/internal/core"
)

// marshalReports canonicalises reports for byte-for-byte comparison:
// wall-clock timings are the only fields allowed to differ between an
// identical serial and parallel run, so they are cleared first.
func marshalReports(t *testing.T, reports []NetReport) []byte {
	t.Helper()
	for i := range reports {
		reports[i].ClearTiming()
	}
	b, err := json.Marshal(reports)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestParallelMatchesSerial is the concurrency contract: a parallel
// Analyze must produce byte-identical reports, in identical order, to a
// fully serial run of the same design. Run under -race this also shakes
// out data races in the shared characterisation cache and worker pool.
func TestParallelMatchesSerial(t *testing.T) {
	d := GenerateDesign("par", 6)

	serialOpts := fastOpts(core.Macromodel)
	serialOpts.Workers = 1
	serial, err := NewAnalyzer(d, serialOpts).Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	parOpts := fastOpts(core.Macromodel)
	parOpts.Workers = 8
	par, err := NewAnalyzer(d, parOpts).Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if len(par) != len(d.Clusters) {
		t.Fatalf("parallel returned %d reports for %d clusters", len(par), len(d.Clusters))
	}
	for i, r := range par {
		if r.Cluster != d.Clusters[i].Name {
			t.Fatalf("report %d is %q, want %q (order not deterministic)", i, r.Cluster, d.Clusters[i].Name)
		}
	}
	sb, pb := marshalReports(t, serial), marshalReports(t, par)
	if string(sb) != string(pb) {
		t.Errorf("parallel reports differ from serial:\nserial:   %s\nparallel: %s", sb, pb)
	}
}

// TestParallelDefaultWorkers exercises the GOMAXPROCS default path.
func TestParallelDefaultWorkers(t *testing.T) {
	d := GenerateDesign("dflt", 3)
	opts := fastOpts(core.Macromodel)
	opts.Workers = 0 // normalize() resolves to runtime.GOMAXPROCS(0)
	reports, err := NewAnalyzer(d, opts).Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
}

// TestParallelFirstErrorPropagation: a failing cluster must surface its
// error from a parallel run, and the pool must not hang or panic.
func TestParallelFirstErrorPropagation(t *testing.T) {
	d := GenerateDesign("err", 6)
	d.Clusters[3].Victim.Cell = "XOR9" // unknown cell: BuildCluster fails

	opts := fastOpts(core.Macromodel)
	opts.Workers = 4
	_, err := NewAnalyzer(d, opts).Analyze(context.Background())
	if err == nil {
		t.Fatal("parallel Analyze swallowed a cluster error")
	}
	if !strings.Contains(err.Error(), "net003") {
		t.Errorf("error does not name the failing cluster: %v", err)
	}
}

// TestSharedCacheAcrossAnalyzers: a cache passed via Options is reused, so
// a second analysis of the same design characterises nothing new.
func TestSharedCacheAcrossAnalyzers(t *testing.T) {
	d := GenerateDesign("warm", 4)
	opts := fastOpts(core.Macromodel)
	opts.Workers = 2

	an1 := NewAnalyzer(d, opts)
	if _, err := an1.Analyze(context.Background()); err != nil {
		t.Fatal(err)
	}
	cold := an1.CacheStats()
	if cold.Misses == 0 {
		t.Fatal("cold run characterised nothing")
	}

	opts.Cache = an1.cache
	an2 := NewAnalyzer(d, opts)
	if _, err := an2.Analyze(context.Background()); err != nil {
		t.Fatal(err)
	}
	warm := an2.CacheStats()
	if warm.Misses != cold.Misses {
		t.Errorf("warm run characterised %d new artefacts", warm.Misses-cold.Misses)
	}
	if warm.Hits <= cold.Hits {
		t.Errorf("warm run did not hit the cache: cold %+v warm %+v", cold, warm)
	}
}
