package sna

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"stanoise/internal/core"
	"stanoise/internal/feas"
	"stanoise/internal/nrc"
)

// This file is the sna-side of the feasibility filter: it translates a
// ClusterSpec's correlation metadata (names, windows, mutex groups,
// implications) into a feas.Problem, drives the per-scenario evaluations,
// and folds the outcomes into the FeasReport attached to each NetReport.

// FeasReport is the per-cluster outcome of the feasibility filter: the
// combination census and the bounded-realistic noise result, reported next
// to the classic worst case. Its JSON form is part of the stable report
// schema; like MarginV, RealisticMarginV is +Inf for unfailable nets and
// serialised as null.
type FeasReport struct {
	// Combos is the number of non-empty aggressor combinations (2^N − 1).
	Combos int64 `json:"combos"`
	// Feasible counts combinations the constraints admit.
	Feasible int64 `json:"feasible"`
	// Pruned counts combinations ruled out — simulation scenarios the
	// classical worst case implicitly covers and the filter discards.
	Pruned int64 `json:"pruned"`
	// Scenarios is the number of maximal feasible scenarios considered.
	Scenarios int `json:"scenarios"`
	// Scenario names the aggressors of the governing (worst realistic)
	// scenario, in declaration order.
	Scenario []string `json:"scenario,omitempty"`

	// RealisticPeakV is the governing scenario's noise peak at the victim
	// receiver input; RealisticWidthPs its width, RealisticDPPeakV its peak
	// at the victim driving point.
	RealisticPeakV   float64 `json:"realistic_peak_v"`
	RealisticWidthPs float64 `json:"realistic_width_ps"`
	RealisticDPPeakV float64 `json:"realistic_dp_peak_v"`
	// RealisticFails and RealisticMarginV judge the governing scenario
	// against the same NRC as the classic result. The margin is floored at
	// the classic MarginV: the realistic outcome is never reported as worse
	// than the full worst case it is a restriction of.
	RealisticFails   bool    `json:"realistic_fails"`
	RealisticMarginV float64 `json:"realistic_margin_v"`
}

// feasReportJSON is the wire form of FeasReport, with the +Inf realistic
// margin mapped to null like NetReport's MarginV.
type feasReportJSON struct {
	Combos    int64    `json:"combos"`
	Feasible  int64    `json:"feasible"`
	Pruned    int64    `json:"pruned"`
	Scenarios int      `json:"scenarios"`
	Scenario  []string `json:"scenario,omitempty"`

	RealisticPeakV   float64  `json:"realistic_peak_v"`
	RealisticWidthPs float64  `json:"realistic_width_ps"`
	RealisticDPPeakV float64  `json:"realistic_dp_peak_v"`
	RealisticFails   bool     `json:"realistic_fails"`
	RealisticMarginV *float64 `json:"realistic_margin_v"`
}

// MarshalJSON implements the stable feasibility schema (see FeasReport).
func (r FeasReport) MarshalJSON() ([]byte, error) {
	j := feasReportJSON{
		Combos: r.Combos, Feasible: r.Feasible, Pruned: r.Pruned,
		Scenarios: r.Scenarios, Scenario: r.Scenario,
		RealisticPeakV: r.RealisticPeakV, RealisticWidthPs: r.RealisticWidthPs,
		RealisticDPPeakV: r.RealisticDPPeakV, RealisticFails: r.RealisticFails,
	}
	if !math.IsInf(r.RealisticMarginV, 0) {
		m := r.RealisticMarginV
		j.RealisticMarginV = &m
	}
	return json.Marshal(j)
}

// UnmarshalJSON is the inverse of MarshalJSON: a null margin becomes +Inf.
func (r *FeasReport) UnmarshalJSON(b []byte) error {
	var j feasReportJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*r = FeasReport{
		Combos: j.Combos, Feasible: j.Feasible, Pruned: j.Pruned,
		Scenarios: j.Scenarios, Scenario: j.Scenario,
		RealisticPeakV: j.RealisticPeakV, RealisticWidthPs: j.RealisticWidthPs,
		RealisticDPPeakV: j.RealisticDPPeakV, RealisticFails: j.RealisticFails,
		RealisticMarginV: math.Inf(1),
	}
	if j.RealisticMarginV != nil {
		r.RealisticMarginV = *j.RealisticMarginV
	}
	return nil
}

// aggressorName returns the constraint-reference name of aggressor i: the
// declared Name, or the positional default "agg<i>".
func (cs *ClusterSpec) aggressorName(i int) string {
	if n := cs.Aggressors[i].Name; n != "" {
		return n
	}
	return fmt.Sprintf("agg%d", i)
}

// hasFeasMeta reports whether the cluster declares any correlation
// metadata. Legacy clusters without it skip feasibility validation
// entirely, so pre-existing designs (of any aggressor count) keep parsing
// unchanged.
func (cs *ClusterSpec) hasFeasMeta() bool {
	if len(cs.MutexGroups) > 0 || len(cs.Implications) > 0 {
		return true
	}
	for i := range cs.Aggressors {
		if cs.Aggressors[i].Name != "" || cs.Aggressors[i].Window != nil {
			return true
		}
	}
	return false
}

// feasProblem translates the cluster's correlation metadata into a
// feas.Problem, resolving aggressor names to indices. It returns the
// effective name table alongside.
func (cs *ClusterSpec) feasProblem() (*feas.Problem, []string, error) {
	n := len(cs.Aggressors)
	names := make([]string, n)
	index := make(map[string]int, n)
	for i := range cs.Aggressors {
		names[i] = cs.aggressorName(i)
		if j, dup := index[names[i]]; dup {
			return nil, nil, fmt.Errorf("sna: cluster %s: aggressors %d and %d share the name %q",
				cs.Name, j, i, names[i])
		}
		index[names[i]] = i
	}
	resolve := func(kind, name string) (int, error) {
		i, ok := index[name]
		if !ok {
			return 0, fmt.Errorf("sna: cluster %s: %s references unknown aggressor %q", cs.Name, kind, name)
		}
		return i, nil
	}

	p := &feas.Problem{Windows: make([]feas.Window, n)}
	for i := range cs.Aggressors {
		w := cs.Aggressors[i].Window
		if w == nil {
			p.Windows[i] = feas.Unbounded()
			continue
		}
		if math.IsNaN(w.EarlyPs) || math.IsNaN(w.LatePs) || math.IsInf(w.EarlyPs, 0) || math.IsInf(w.LatePs, 0) {
			return nil, nil, fmt.Errorf("sna: cluster %s aggressor %s: window bounds must be finite", cs.Name, names[i])
		}
		if w.EarlyPs < 0 || w.EarlyPs > w.LatePs {
			return nil, nil, fmt.Errorf("sna: cluster %s aggressor %s: bad window [%g, %g] ps",
				cs.Name, names[i], w.EarlyPs, w.LatePs)
		}
		p.Windows[i] = feas.Window{Early: w.EarlyPs * 1e-12, Late: w.LatePs * 1e-12}
	}
	for _, g := range cs.MutexGroups {
		group := make([]int, 0, len(g))
		for _, name := range g {
			i, err := resolve("mutex group", name)
			if err != nil {
				return nil, nil, err
			}
			group = append(group, i)
		}
		p.Mutex = append(p.Mutex, group)
	}
	for _, imp := range cs.Implications {
		fi, err := resolve("implication", imp.If)
		if err != nil {
			return nil, nil, err
		}
		ti, err := resolve("implication", imp.Then)
		if err != nil {
			return nil, nil, err
		}
		p.Implications = append(p.Implications, feas.Implication{If: fi, Then: ti})
	}
	return p, names, nil
}

// validateFeasibility rejects correlation metadata the filter could not
// honour — unknown references, empty windows, or a self-contradictory
// constraint system — at design-validation time, so both the CLI and the
// server surface it as a typed rejection before any analysis work.
func (cs *ClusterSpec) validateFeasibility() error {
	if !cs.hasFeasMeta() {
		return nil
	}
	_, err := newFeasContext(cs)
	return err
}

// feasContext is one cluster's solved feasibility system.
type feasContext struct {
	names []string
	prob  *feas.Problem
	sol   *feas.Solution
}

// newFeasContext builds and checks the cluster's constraint system. The
// error, when non-nil, already names the cluster and the offending
// aggressors.
func newFeasContext(cs *ClusterSpec) (*feasContext, error) {
	prob, names, err := cs.feasProblem()
	if err != nil {
		return nil, err
	}
	sol, err := prob.Check()
	if err != nil {
		var inf *feas.InfeasibleError
		if errors.As(err, &inf) && !inf.Empty {
			dead := make([]string, 0, len(inf.Dead))
			for _, i := range inf.Dead {
				dead = append(dead, names[i])
			}
			return nil, fmt.Errorf("sna: cluster %s: aggressors %v can never switch under the declared constraints",
				cs.Name, dead)
		}
		return nil, fmt.Errorf("sna: cluster %s: %w", cs.Name, err)
	}
	return &feasContext{names: names, prob: prob, sol: sol}, nil
}

// nominalStarts returns each aggressor's unaligned input ramp start time —
// the times the classical evaluation uses when alignment is off.
func nominalStarts(cl *core.Cluster) []float64 {
	starts := make([]float64, len(cl.Aggressors))
	for i := range cl.Aggressors {
		starts[i] = cl.Aggressors[i].StartTime()
	}
	return starts
}

// scenarioOutcome pairs one maximal feasible scenario with its evaluation
// (possibly the shared classical one, when the scenario is the full set at
// the classical alignment).
type scenarioOutcome struct {
	set feas.Set
	ev  *core.Evaluation
}

// startsMatch reports whether two start vectors agree to femtosecond
// precision — the reuse test for the full-set scenario.
func startsMatch(a, b []float64) bool {
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-15 {
			return false
		}
	}
	return true
}

// evalScenarios evaluates every maximal feasible scenario of the cluster.
// target/starts come from peak alignment when align is on (target is the
// classic worst-case peak instant, starts the aligned ramp starts); with
// align off, starts are the nominal ramp starts and scenarios clamp them
// into their windows. The full set evaluated at the classical starts reuses
// the classical evaluation instead of re-running the engine, so a cluster
// without constraints costs no extra solves. Engine-level scenario counts
// are recorded in the process-wide feas statistics.
func evalScenarios(ctx context.Context, cl *core.Cluster, method core.Method, models *core.Models, eopts core.EvalOptions, fctx *feasContext, target float64, starts []float64, align bool, classic *core.Evaluation) ([]scenarioOutcome, error) {
	n := len(cl.Aggressors)
	outcomes := make([]scenarioOutcome, 0, len(fctx.sol.Maximal))
	evals := 0
	for _, set := range fctx.sol.Maximal {
		idx := set.Indices()
		active := make([]bool, n)
		scStarts := make([]float64, n)
		for i := range scStarts {
			scStarts[i] = math.NaN()
		}
		if align && !math.IsNaN(target) {
			// Constrained re-alignment: each member's peak delay is known
			// from the timing runs (peak hits target when started at
			// starts[i]), so the realizable common peak target within the
			// windows follows from pure interval arithmetic.
			subW := make([]feas.Window, len(idx))
			subD := make([]float64, len(idx))
			for k, i := range idx {
				subW[k] = fctx.prob.Windows[i]
				subD[k] = target - starts[i]
			}
			sub := feas.AlignWindows(subW, subD, target)
			for k, i := range idx {
				scStarts[i] = sub[k]
				active[i] = true
			}
		} else {
			for _, i := range idx {
				scStarts[i] = fctx.prob.Windows[i].Clamp(starts[i])
				active[i] = true
			}
		}
		if set.Count() == n && startsMatch(scStarts, starts) {
			outcomes = append(outcomes, scenarioOutcome{set: set, ev: classic})
			continue
		}
		ev, err := cl.EvaluateScenario(ctx, method, models, eopts, active, scStarts)
		if err != nil {
			return nil, err
		}
		evals++
		outcomes = append(outcomes, scenarioOutcome{set: set, ev: ev})
	}
	feas.Record(fctx.sol, evals)
	return outcomes, nil
}

// report folds the scenario outcomes into the FeasReport: the governing
// scenario is the one with the smallest NRC margin (ties to the earliest in
// the deterministic scenario order), and the realistic margin is floored at
// the classic one.
func (f *feasContext) report(curve *nrc.Curve, scenarios []scenarioOutcome, classicMarginV float64, classicFails bool) *FeasReport {
	rep := &FeasReport{
		Combos:    f.sol.Total,
		Feasible:  f.sol.Feasible,
		Pruned:    f.sol.Pruned,
		Scenarios: len(scenarios),
	}
	gov := -1
	govMargin := math.Inf(1)
	for i, sc := range scenarios {
		m := curve.MarginV(sc.ev.RecvMetrics.Peak, sc.ev.RecvMetrics.Width)
		if gov < 0 || m < govMargin {
			gov, govMargin = i, m
		}
	}
	if gov < 0 {
		// No evaluable scenario (cannot happen after Check, which rejects
		// empty systems) — degrade to the classic result.
		rep.RealisticMarginV = classicMarginV
		rep.RealisticFails = classicFails
		return rep
	}
	sc := scenarios[gov]
	rep.Scenario = make([]string, 0, sc.set.Count())
	for _, i := range sc.set.Indices() {
		rep.Scenario = append(rep.Scenario, f.names[i])
	}
	rep.RealisticPeakV = sc.ev.RecvMetrics.Peak
	rep.RealisticWidthPs = sc.ev.RecvMetrics.WidthPs()
	rep.RealisticDPPeakV = sc.ev.Metrics.Peak
	// Soundness floor: a scenario is a restriction of the full worst case,
	// so the realistic margin can only be ≥ the classic one; numerical
	// drift must not report otherwise.
	rep.RealisticMarginV = govMargin
	if classicMarginV > rep.RealisticMarginV {
		rep.RealisticMarginV = classicMarginV
	}
	rep.RealisticFails = classicFails &&
		curve.Fails(sc.ev.RecvMetrics.Peak, sc.ev.RecvMetrics.Width)
	return rep
}

// emptyFeasReport is the trivial census for an aggressor-free cluster in
// feasibility mode: nothing to prune, realistic equals classic.
func emptyFeasReport(rep *NetReport) *FeasReport {
	feas.Record(&feas.Solution{}, 0)
	return &FeasReport{
		RealisticPeakV:   rep.PeakV,
		RealisticWidthPs: rep.WidthPs,
		RealisticDPPeakV: rep.DPPeakV,
		RealisticFails:   rep.Fails,
		RealisticMarginV: rep.MarginV,
	}
}
