package sna

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stanoise/internal/cell"
	"stanoise/internal/charlib"
	"stanoise/internal/core"
	"stanoise/internal/nrc"
)

// Options configures an analysis run.
type Options struct {
	Method core.Method // victim-driver model; default Macromodel
	Dt     float64     // engine step; default 2 ps
	// Align enables the worst-case peak-alignment search per cluster.
	Align bool
	// FailFrac is the NRC failure threshold (fraction of VDD at the
	// receiver output); default 0.5.
	FailFrac float64
	// Workers bounds how many clusters are analysed concurrently.
	// Default (and any value <= 0) is runtime.GOMAXPROCS(0); 1 forces a
	// fully serial run. Reports come back in design order either way.
	Workers int
	// Cache optionally supplies a shared characterisation cache so
	// repeated runs (or several designs) reuse artefacts. When nil the
	// analyzer creates a private cache for the run.
	Cache *charlib.Cache
	// Model quality knobs.
	LoadCurve charlib.LoadCurveOptions
	Prop      charlib.PropOptions
	NRC       nrc.Options
}

func (o Options) normalize() Options {
	if o.Dt <= 0 {
		o.Dt = 2e-12
	}
	if o.FailFrac <= 0 {
		o.FailFrac = 0.5
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// StageTiming breaks one cluster's analysis into its pipeline stages. On a
// cache hit the Models and NRC stages collapse to lookup time, which is how
// the shared characterisation cache shows up in per-stage output.
type StageTiming struct {
	Build  time.Duration // cluster construction: geometry, parasitics, cells
	Models time.Duration // pre-characterisation (load curve, Thevenin, MOR)
	Align  time.Duration // worst-case aggressor alignment search
	Eval   time.Duration // transient evaluation of the chosen method
	NRC    time.Duration // receiver NRC characterisation or cache lookup
}

// Total sums the stages.
func (s StageTiming) Total() time.Duration {
	return s.Build + s.Models + s.Align + s.Eval + s.NRC
}

// Add accumulates another cluster's timing (for per-design totals).
func (s *StageTiming) Add(o StageTiming) {
	s.Build += o.Build
	s.Models += o.Models
	s.Align += o.Align
	s.Eval += o.Eval
	s.NRC += o.NRC
}

// NetReport is the per-victim outcome of an analysis.
type NetReport struct {
	Cluster string
	Method  core.Method

	// Noise at the victim receiver input (what the NRC judges).
	PeakV   float64
	AreaVps float64
	WidthPs float64

	// DPPeakV is the noise at the victim driving point (the paper's
	// measurement node), for cross-referencing against table results.
	DPPeakV float64

	Fails   bool
	MarginV float64 // height margin to the NRC (+Inf when unfailable)

	Elapsed time.Duration // evaluation time (excluding characterisation)
	Timing  StageTiming   // full per-stage breakdown for this cluster
}

// ClearTiming zeroes the wall-clock fields, leaving only the analysis
// results — use it before comparing reports across runs, since timings are
// the one part of a report that legitimately differs between identical
// serial and parallel analyses.
func (r *NetReport) ClearTiming() {
	r.Elapsed = 0
	r.Timing = StageTiming{}
}

// Analyzer runs static noise analysis over a design. All characterised
// artefacts — load curves, propagation tables and NRC receiver curves — go
// through a shared thread-safe cache keyed by (cell, drive, state, tech),
// so the repeated cell configurations of a real design are characterised
// once no matter how many clusters use them or which worker gets there
// first.
type Analyzer struct {
	design *Design
	opts   Options
	cache  *charlib.Cache
}

// NewAnalyzer builds an analyzer for a validated design.
func NewAnalyzer(d *Design, opts Options) *Analyzer {
	opts = opts.normalize()
	cache := opts.Cache
	if cache == nil {
		cache = charlib.NewCache()
	}
	return &Analyzer{design: d, opts: opts, cache: cache}
}

// CacheStats reports the effectiveness of the characterisation cache so
// far (hits accumulate across Analyze calls on the same analyzer or any
// analyzer sharing the cache).
func (a *Analyzer) CacheStats() charlib.CacheStats { return a.cache.Stats() }

// Workers returns the effective worker-pool size Analyze will use: the
// normalized Options.Workers capped at the cluster count.
func (a *Analyzer) Workers() int {
	w := a.opts.Workers
	if n := len(a.design.Clusters); w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Analyze evaluates every cluster in the design and returns one report per
// victim net, in design order regardless of worker count. Clusters are
// dispatched to a bounded pool of Options.Workers goroutines; on the first
// cluster error the pool stops taking new work and Analyze returns the
// error of the earliest failing cluster, mirroring what a serial run would
// report.
func (a *Analyzer) Analyze() ([]NetReport, error) {
	clusters := a.design.Clusters
	reports := make([]NetReport, len(clusters))
	workers := a.Workers()
	if workers <= 1 {
		// Deliberately a separate plain loop rather than a 1-worker pool:
		// this is the reference implementation the determinism contract is
		// judged against — TestParallelMatchesSerial compares the pool's
		// output to this path, which it couldn't do if both went through
		// the same pool machinery.
		for i, cs := range clusters {
			rep, err := a.analyzeCluster(cs)
			if err != nil {
				return nil, err
			}
			reports[i] = *rep
		}
		return reports, nil
	}

	var (
		next    atomic.Int64 // index of the next cluster to claim
		stop    atomic.Bool  // set on first error; halts new claims
		wg      sync.WaitGroup
		errMu   sync.Mutex
		errIdx  = -1
		poolErr error
	)
	fail := func(i int, err error) {
		errMu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, poolErr = i, err
		}
		errMu.Unlock()
		stop.Store(true)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(clusters) || stop.Load() {
					return
				}
				rep, err := a.analyzeCluster(clusters[i])
				if err != nil {
					fail(i, err)
					return
				}
				reports[i] = *rep
			}
		}()
	}
	wg.Wait()
	if errIdx >= 0 {
		return nil, poolErr
	}
	return reports, nil
}

func (a *Analyzer) analyzeCluster(cs ClusterSpec) (*NetReport, error) {
	var timing StageTiming
	t0 := time.Now()
	cl, err := a.design.BuildCluster(cs)
	if err != nil {
		return nil, err
	}
	timing.Build = time.Since(t0)

	method := a.opts.Method
	mopts := core.ModelOptions{
		LoadCurve: a.opts.LoadCurve,
		Prop:      a.opts.Prop,
		SkipProp:  method != core.Superposition,
		Cache:     a.cache,
	}
	t0 = time.Now()
	models, err := cl.BuildModels(mopts)
	if err != nil {
		return nil, fmt.Errorf("sna: cluster %s models: %w", cs.Name, err)
	}
	timing.Models = time.Since(t0)

	eopts := core.EvalOptions{Dt: a.opts.Dt}
	if a.opts.Align && len(cl.Aggressors) > 0 {
		t0 = time.Now()
		if err := cl.AlignWorstCase(models, eopts); err != nil {
			return nil, fmt.Errorf("sna: cluster %s alignment: %w", cs.Name, err)
		}
		timing.Align = time.Since(t0)
	}
	t0 = time.Now()
	ev, err := cl.Evaluate(method, models, eopts)
	if err != nil {
		return nil, fmt.Errorf("sna: cluster %s evaluation: %w", cs.Name, err)
	}
	timing.Eval = time.Since(t0)

	rep := &NetReport{
		Cluster: cs.Name,
		Method:  method,
		PeakV:   ev.RecvMetrics.Peak,
		AreaVps: ev.RecvMetrics.AreaVps(),
		WidthPs: ev.RecvMetrics.WidthPs(),
		DPPeakV: ev.Metrics.Peak,
		Elapsed: ev.Elapsed,
	}

	t0 = time.Now()
	curve, err := a.receiverCurve(cl.Victim.Receiver, cl.Victim.ReceiverPin, cl)
	if err != nil {
		return nil, fmt.Errorf("sna: cluster %s NRC: %w", cs.Name, err)
	}
	timing.NRC = time.Since(t0)
	rep.Fails = curve.Fails(rep.PeakV, ev.RecvMetrics.Width)
	rep.MarginV = curve.MarginV(rep.PeakV, ev.RecvMetrics.Width)
	rep.Timing = timing
	return rep, nil
}

// receiverCurve characterises (or retrieves) the NRC of the victim's
// receiver pin for the victim's quiet level. Curves are memoized in the
// shared cache, so clusters with the same receiver configuration — the
// overwhelmingly common case — characterise it once, even across workers.
func (a *Analyzer) receiverCurve(recv *cell.Cell, pin string, cl *core.Cluster) (*nrc.Curve, error) {
	quietHigh := cl.QuietVictimLevel() > cl.Tech.VDD/2
	// The receiver input sits at the victim's quiet level; find a state of
	// the receiver consistent with that and sensitised through the pin.
	st, err := recv.SensitizedState(pin, !quietHigh)
	if err != nil {
		// Fall back to any holding state with the right pin level.
		st = nil
		for _, s := range recv.HoldStates(true) {
			if s[pin] == quietHigh {
				st = s
				break
			}
		}
		if st == nil {
			return nil, fmt.Errorf("sna: no usable receiver state for %s.%s", recv.Name(), pin)
		}
	}
	if st[pin] != quietHigh {
		// Sensitised state with the wrong pin polarity: flip search.
		if alt, err2 := recv.SensitizedState(pin, quietHigh); err2 == nil && alt[pin] == quietHigh {
			st = alt
		}
	}
	nopts := a.opts.NRC
	nopts.FailFrac = a.opts.FailFrac
	return a.cache.NRCCurve(recv, st, pin, nopts)
}

// Summary aggregates reports for quick inspection.
type Summary struct {
	Total, Failing int
	WorstMarginV   float64
	WorstCluster   string
}

// Summarize folds reports into a Summary.
func Summarize(reports []NetReport) Summary {
	s := Summary{WorstMarginV: math.Inf(1)}
	for _, r := range reports {
		s.Total++
		if r.Fails {
			s.Failing++
		}
		if r.MarginV < s.WorstMarginV {
			s.WorstMarginV = r.MarginV
			s.WorstCluster = r.Cluster
		}
	}
	return s
}
