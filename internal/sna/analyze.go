package sna

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"iter"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stanoise/internal/cell"
	"stanoise/internal/charlib"
	"stanoise/internal/charstore"
	"stanoise/internal/core"
	"stanoise/internal/nrc"
	"stanoise/internal/tech"
)

// Options configures an analysis run.
type Options struct {
	// Method selects the victim-driver model. The zero value is Golden —
	// the full transistor-level reference simulation; set Macromodel (what
	// the snacheck CLI defaults to) for the paper's fast non-linear VCCS
	// flow.
	Method core.Method
	Dt     float64 // engine step; default 2 ps
	// Align enables the worst-case peak-alignment search per cluster.
	Align bool
	// Feasibility enables the FRAME-style aggressor-correlation filter:
	// switching windows, mutex groups and implications on the cluster spec
	// prune unrealizable aggressor combinations, and each report carries a
	// bounded-realistic margin (NetReport.Feasibility) next to the classic
	// worst-case one. Clusters without constraints are unaffected beyond
	// the census. In this mode the alignment stage stops at peak alignment
	// — the coordinate-ascent refinement of the pessimistic flow is skipped,
	// so realistic runs perform strictly fewer engine solves. Off by
	// default; when off the output is byte-identical to the classic flow.
	Feasibility bool
	// FailFrac is the NRC failure threshold (fraction of VDD at the
	// receiver output); default 0.5.
	FailFrac float64
	// Workers bounds how many clusters are analysed concurrently.
	// Default (and any value <= 0) is runtime.GOMAXPROCS(0); 1 forces a
	// fully serial run. Analyze reports come back in design order either
	// way; Stream yields in completion order.
	Workers int
	// OnError selects the error policy: FailFast (default) stops
	// dispatching at the first failing cluster, ContinueOnError analyses
	// every cluster and collects all failures via errors.Join.
	OnError ErrorPolicy
	// Cache optionally supplies a shared characterisation cache so
	// repeated runs (or several designs) reuse artefacts. When nil the
	// analyzer creates a private cache for the run.
	Cache *charlib.Cache
	// CacheDir, when non-empty, attaches a persistent content-addressed
	// characterisation store (see internal/charstore) at that directory to
	// the analyzer's private cache: artefacts built by this run are
	// persisted, and a later run pointed at the same directory skips the
	// transistor-level sweeps entirely. A directory that cannot be opened
	// degrades to memory-only caching; the error is reported by
	// Analyzer.StoreError. Ignored when Cache is supplied — a shared cache
	// belongs to the caller, who attaches a disk tier with Cache.SetStore.
	CacheDir string
	// Store attaches an already-opened persistent tier to the analyzer's
	// private cache, taking precedence over CacheDir. Like CacheDir it is
	// ignored when Cache is supplied.
	Store charlib.PersistentStore
	// WarmStart enables the Newton continuation mode of the run's
	// load-curve, propagation-table and NRC characterisation sweeps —
	// equivalent to setting the WarmStart field of LoadCurve, Prop and NRC
	// individually: each solve is seeded from the previous grid point's
	// converged solution (sim.Session.WarmStart), cutting total Newton
	// iterations substantially on fine grids. Thevenin aggressor fits are
	// not sweeps over one rig and always run cold. Per-solve results
	// legitimately differ from the cold flow at solver-tolerance level —
	// and an NRC bisection branch flipping near its threshold can move a
	// curve height, and so a reported margin, by up to the bisection
	// tolerance — so warm artefacts are cached and persisted under
	// distinct keys and the mode stays opt-in; sweep order is
	// deterministic, so warm results are still reproducible run-to-run.
	WarmStart bool
	// Predictor enables the polynomial transient predictor of the run's
	// propagation-table and NRC characterisation sweeps — equivalent to
	// setting the Predictor field of Prop and NRC individually: each
	// transient timestep's Newton solve is seeded from a polynomial
	// extrapolation over the previous converged steps
	// (sim.Session.Predictor), cutting per-step Newton iterations on the
	// glitch transients that dominate characterisation. The load-curve
	// sweep is DC-only and unaffected. Per-step results legitimately
	// differ from the cold flow at solver-tolerance level, so predictor
	// artefacts are cached and persisted under distinct keys and the mode
	// stays opt-in; results remain reproducible run-to-run.
	Predictor bool
	// Gate optionally bounds cluster-level concurrency *across* analyzers:
	// every worker acquires the gate before analysing a cluster and
	// releases it afterwards. A multi-tenant server shares one Gate (see
	// NewGate) between all in-flight requests so admitted requests queue at
	// cluster granularity instead of multiplying into Workers × requests
	// simultaneous solves. nil means no fleet-wide bound.
	Gate Gate
	// RigPools optionally shares a set of compiled-bench pools across
	// analyzers (see PoolSet), the same way Cache shares characterised
	// artefacts: a long-lived server reuses compiled benches across
	// requests whose cluster topologies match. When nil the analyzer
	// creates a private set bounded by RigPoolLimits.
	RigPools *PoolSet
	// RigPoolLimits bounds each worker's compiled-bench pool (entry count
	// and estimated bytes; see core.RigPoolLimits) when the analyzer
	// creates its own pools. Ignored when RigPools is supplied — limits
	// then belong to the shared set.
	RigPoolLimits core.RigPoolLimits
	// Corner selects the operating corner the whole analysis runs at: the
	// design's technology card is derived via tech.Corner.Apply before any
	// cluster is built, so every characterised artefact — and every cache
	// and store key — carries the corner. The zero value is the nominal
	// corner, under which the analysis (and its artefact bytes) is exactly
	// the corner-less one. Resolve named corners with tech.CornerByName.
	Corner tech.Corner
	// NonlinearCaps enables the NLMOS voltage-dependent gate-charge model
	// for every cell in the analysis: the design's technology card is
	// derived via tech.Tech.WithNonlinearCaps (after the corner is
	// applied), so each transistor's C_GD/C_GS follow the tanh charge
	// model and the transient engine re-evaluates their companion stamps
	// per Newton iteration — the paper's nonlinear-cell accuracy claim.
	// Nonlinear artefacts are cached and persisted under distinct keys
	// (",nlcap" fingerprints); with the flag off the analysis and its
	// artefact bytes are exactly the constant-cap legacy flow.
	NonlinearCaps bool
	// Model quality knobs.
	LoadCurve charlib.LoadCurveOptions
	Prop      charlib.PropOptions
	NRC       nrc.Options
}

func (o Options) normalize() Options {
	if o.Dt <= 0 {
		o.Dt = 2e-12
	}
	if o.FailFrac <= 0 {
		o.FailFrac = 0.5
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.OnError != ContinueOnError {
		// Clamp out-of-range policies to the default so Analyze and Stream
		// can test against either constant and still agree.
		o.OnError = FailFast
	}
	if o.WarmStart {
		o.LoadCurve.WarmStart = true
		o.Prop.WarmStart = true
		o.NRC.WarmStart = true
	}
	if o.Predictor {
		o.Prop.Predictor = true
		o.NRC.Predictor = true
	}
	return o
}

// StageTiming breaks one cluster's analysis into its pipeline stages. On a
// cache hit the Models and NRC stages collapse to lookup time, which is how
// the shared characterisation cache shows up in per-stage output.
type StageTiming struct {
	Build  time.Duration `json:"build_ns"`  // cluster construction: geometry, parasitics, cells
	Models time.Duration `json:"models_ns"` // pre-characterisation (load curve, Thevenin, MOR)
	Align  time.Duration `json:"align_ns"`  // worst-case aggressor alignment search
	Eval   time.Duration `json:"eval_ns"`   // transient evaluation of the chosen method
	NRC    time.Duration `json:"nrc_ns"`    // receiver NRC characterisation or cache lookup
	// Feas is the feasibility-filter time: constraint solving plus the
	// per-scenario evaluations. Zero (and omitted from JSON) unless
	// Options.Feasibility is on, keeping the classic wire schema unchanged.
	Feas time.Duration `json:"feas_ns,omitempty"`
}

// Total sums the stages.
func (s StageTiming) Total() time.Duration {
	return s.Build + s.Models + s.Align + s.Eval + s.NRC + s.Feas
}

// Add accumulates another cluster's timing (for per-design totals).
func (s *StageTiming) Add(o StageTiming) {
	s.Build += o.Build
	s.Models += o.Models
	s.Align += o.Align
	s.Eval += o.Eval
	s.NRC += o.NRC
	s.Feas += o.Feas
}

// NetReport is the per-victim outcome of an analysis. Its JSON form is the
// stable machine-readable schema shared between the public API and
// snacheck -json; the one non-trivial mapping is MarginV, which is +Inf for
// unfailable nets and therefore serialised as null (JSON has no infinity).
type NetReport struct {
	Cluster string      `json:"cluster"`
	Method  core.Method `json:"method"`

	// Corner names the operating corner the cluster was analysed at; empty
	// (and absent from JSON) for a nominal run, keeping the classic wire
	// schema byte-identical.
	Corner string `json:"corner,omitempty"`

	// Noise at the victim receiver input (what the NRC judges).
	PeakV   float64 `json:"peak_v"`
	AreaVps float64 `json:"area_vps"`
	WidthPs float64 `json:"width_ps"`

	// DPPeakV is the noise at the victim driving point (the paper's
	// measurement node), for cross-referencing against table results.
	DPPeakV float64 `json:"dp_peak_v"`

	Fails   bool    `json:"fails"`
	MarginV float64 `json:"margin_v"` // height margin to the NRC (+Inf when unfailable)

	Elapsed time.Duration `json:"elapsed_ns"` // evaluation time (excluding characterisation)
	Timing  StageTiming   `json:"timing"`     // full per-stage breakdown for this cluster

	// Feasibility carries the correlation filter's census and the
	// bounded-realistic outcome. Nil — and absent from JSON — unless
	// Options.Feasibility is enabled, so the classic schema is unchanged.
	Feasibility *FeasReport `json:"feasibility,omitempty"`
}

// netReportJSON is the wire form of NetReport: identical except that the
// margin is a pointer, absent (null) for unfailable nets.
type netReportJSON struct {
	Cluster string      `json:"cluster"`
	Method  core.Method `json:"method"`
	Corner  string      `json:"corner,omitempty"`
	PeakV   float64     `json:"peak_v"`
	AreaVps float64     `json:"area_vps"`
	WidthPs float64     `json:"width_ps"`
	DPPeakV float64     `json:"dp_peak_v"`
	Fails   bool        `json:"fails"`
	MarginV *float64    `json:"margin_v"`

	Elapsed time.Duration `json:"elapsed_ns"`
	Timing  StageTiming   `json:"timing"`

	Feasibility *FeasReport `json:"feasibility,omitempty"`
}

// MarshalJSON implements the stable report schema (see NetReport).
func (r NetReport) MarshalJSON() ([]byte, error) {
	j := netReportJSON{
		Cluster: r.Cluster, Method: r.Method, Corner: r.Corner,
		PeakV: r.PeakV, AreaVps: r.AreaVps, WidthPs: r.WidthPs,
		DPPeakV: r.DPPeakV, Fails: r.Fails,
		Elapsed: r.Elapsed, Timing: r.Timing,
		Feasibility: r.Feasibility,
	}
	if !math.IsInf(r.MarginV, 0) {
		m := r.MarginV
		j.MarginV = &m
	}
	return json.Marshal(j)
}

// UnmarshalJSON is the inverse of MarshalJSON: a null margin becomes +Inf.
func (r *NetReport) UnmarshalJSON(b []byte) error {
	var j netReportJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*r = NetReport{
		Cluster: j.Cluster, Method: j.Method, Corner: j.Corner,
		PeakV: j.PeakV, AreaVps: j.AreaVps, WidthPs: j.WidthPs,
		DPPeakV: j.DPPeakV, Fails: j.Fails, MarginV: math.Inf(1),
		Elapsed: j.Elapsed, Timing: j.Timing,
		Feasibility: j.Feasibility,
	}
	if j.MarginV != nil {
		r.MarginV = *j.MarginV
	}
	return nil
}

// ClearTiming zeroes the wall-clock fields, leaving only the analysis
// results — use it before comparing reports across runs, since timings are
// the one part of a report that legitimately differs between identical
// serial and parallel analyses.
func (r *NetReport) ClearTiming() {
	r.Elapsed = 0
	r.Timing = StageTiming{}
}

// Analyzer runs static noise analysis over a design. All characterised
// artefacts — load curves, propagation tables and NRC receiver curves — go
// through a shared thread-safe cache keyed by (cell, drive, state, tech),
// so the repeated cell configurations of a real design are characterised
// once no matter how many clusters use them or which worker gets there
// first.
type Analyzer struct {
	design   *Design
	opts     Options
	cache    *charlib.Cache
	storeErr error

	// pools is the free list of compiled-bench pools (see PoolSet). Each
	// analysis worker checks one out for the clusters it processes and
	// returns it afterwards, so pools are never shared between concurrent
	// goroutines but persist across Analyze/Stream calls on the same
	// analyzer — a re-analysis reuses every compiled bench whose cluster
	// topology is unchanged, and clusters sharing a victim configuration
	// reuse one driver-alone bench even within a single run. When
	// Options.RigPools is set this is the caller's shared set, and benches
	// additionally persist across analyzers.
	pools *PoolSet
}

// RigPoolStats sums compiled-bench pool effectiveness over the analyzer's
// pool set: hits counts bench compilations avoided by topology-class
// reuse, misses counts benches actually compiled. Call it between runs
// (pools checked out by in-flight workers are not counted); with a shared
// Options.RigPools the counts cover every analyzer on the set.
func (a *Analyzer) RigPoolStats() (hits, misses int) { return a.pools.Stats() }

// InvalidateRigPools drops every compiled bench of the analyzer's idle
// pools (see PoolSet.Invalidate), returning how many benches were dropped.
// This is the explicit invalidation point for long-lived holders whose
// cell libraries or tech cards change underneath retained benches.
func (a *Analyzer) InvalidateRigPools() int { return a.pools.Invalidate() }

// NewAnalyzer builds an analyzer for a validated design.
func NewAnalyzer(d *Design, opts Options) *Analyzer {
	opts = opts.normalize()
	cache := opts.Cache
	if cache == nil {
		cache = charlib.NewCache()
	}
	pools := opts.RigPools
	if pools == nil {
		pools = NewPoolSet(opts.RigPoolLimits)
	}
	a := &Analyzer{design: d, opts: opts, cache: cache, pools: pools}
	switch {
	case opts.Cache != nil:
		// A shared cache is the caller's object: never mutate its disk
		// tier from here (two analyzers with different CacheDirs would
		// silently clobber each other's store).
	case opts.Store != nil:
		cache.SetStore(opts.Store)
	case opts.CacheDir != "":
		store, err := charstore.Open(opts.CacheDir)
		if err != nil {
			// Degrade to memory-only caching: a broken cache directory
			// must never block sign-off. The error stays inspectable.
			a.storeErr = err
		} else {
			cache.SetStore(store)
		}
	}
	return a
}

// StoreError reports why Options.CacheDir could not be opened, or nil.
// The analysis itself proceeds memory-cached either way.
func (a *Analyzer) StoreError() error { return a.storeErr }

// CacheStats reports the effectiveness of the characterisation cache so
// far (hits accumulate across Analyze calls on the same analyzer or any
// analyzer sharing the cache).
func (a *Analyzer) CacheStats() charlib.CacheStats { return a.cache.Stats() }

// Workers returns the effective worker-pool size Analyze will use: the
// normalized Options.Workers capped at the cluster count.
func (a *Analyzer) Workers() int {
	w := a.opts.Workers
	if n := len(a.design.Clusters); w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// outcome is one completed cluster: exactly one of rep/err is non-nil.
type outcome struct {
	idx int
	rep *NetReport
	err *ClusterError
}

// runClusters dispatches every cluster of the design to a bounded pool of
// Workers goroutines and delivers each completed outcome to emit, always
// from the calling goroutine, in completion order. emit returning false
// stops the run: no new clusters are claimed, in-flight workers are
// cancelled, and runClusters returns nil without further emissions.
//
// Under FailFast the pool stops claiming new clusters after the first
// failure but still delivers the outcomes of clusters already in flight,
// so the caller can pick the earliest failure in design order. Under
// ContinueOnError every cluster is attempted exactly once.
//
// Cancellation of ctx wins over everything else: outcomes of clusters cut
// short by the cancel are discarded and runClusters returns ctx.Err().
func (a *Analyzer) runClusters(ctx context.Context, emit func(outcome) bool) error {
	clusters := a.design.Clusters
	if len(clusters) == 0 {
		return ctx.Err()
	}
	if a.Workers() <= 1 {
		// Deliberately a plain loop rather than a 1-worker pool: this is
		// the reference implementation the determinism contract is judged
		// against — TestParallelMatchesSerial compares the pool's output
		// to this path, which it couldn't do if both went through the same
		// pool machinery.
		pool := a.pools.acquire()
		defer a.pools.release(pool)
		for i, cs := range clusters {
			if err := ctx.Err(); err != nil {
				return err
			}
			rep, cerr := a.gatedAnalyzeCluster(ctx, cs, pool)
			if cerr != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
				if !emit(outcome{idx: i, err: cerr}) {
					return nil
				}
				if a.opts.OnError == FailFast {
					return nil
				}
				continue
			}
			if !emit(outcome{idx: i, rep: rep}) {
				return nil
			}
		}
		return nil
	}

	parent := ctx
	ctx, cancel := context.WithCancel(parent)
	results := make(chan outcome)
	var (
		next atomic.Int64 // index of the next cluster to claim
		stop atomic.Bool  // FailFast latch: halts new claims
		wg   sync.WaitGroup
	)
	for w := 0; w < a.Workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool := a.pools.acquire()
			defer a.pools.release(pool)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(clusters) || stop.Load() || ctx.Err() != nil {
					return
				}
				rep, cerr := a.gatedAnalyzeCluster(ctx, clusters[i], pool)
				if cerr != nil {
					if ctx.Err() != nil {
						// Cut short by cancellation, not a real cluster
						// failure — drop it.
						return
					}
					if a.opts.OnError == FailFast {
						stop.Store(true)
					}
				}
				select {
				case results <- outcome{idx: i, rep: rep, err: cerr}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	// The deferred cancel-and-drain keeps the pool leak-free on every exit
	// path, including a panic inside emit: workers blocked on the results
	// channel observe the cancel (or are drained) and exit, after which the
	// closer goroutine closes the channel and the drain loop ends.
	defer func() {
		cancel()
		for range results {
		}
	}()
	for out := range results {
		if !emit(out) {
			return nil
		}
	}
	return parent.Err()
}

// Analyze evaluates every cluster in the design and returns one report per
// victim net, in design order regardless of worker count.
//
// Under FailFast (the default) the first cluster error stops the run and
// Analyze returns nil reports and the *ClusterError of the earliest failing
// cluster in design order, mirroring what a serial run would report. Under
// ContinueOnError every cluster is analysed: the reports of all successful
// clusters are returned in design order together with every failure
// combined via errors.Join (each one an extractable *ClusterError).
//
// Cancelling ctx stops the analysis promptly — mid-characterisation and
// mid-transient, not just between clusters — and returns ctx.Err().
func (a *Analyzer) Analyze(ctx context.Context) ([]NetReport, error) {
	n := len(a.design.Clusters)
	reports := make([]*NetReport, n)
	clusterErrs := make([]*ClusterError, n)
	if err := a.runClusters(ctx, func(out outcome) bool {
		reports[out.idx], clusterErrs[out.idx] = out.rep, out.err
		return true
	}); err != nil {
		return nil, err
	}
	if a.opts.OnError == FailFast {
		for _, cerr := range clusterErrs {
			if cerr != nil {
				return nil, cerr
			}
		}
	}
	out := make([]NetReport, 0, n)
	var errs []error
	for i := 0; i < n; i++ {
		switch {
		case clusterErrs[i] != nil:
			errs = append(errs, clusterErrs[i])
		case reports[i] != nil:
			out = append(out, *reports[i])
		}
	}
	return out, errors.Join(errs...)
}

// Stream analyses the design and yields reports in completion order, so a
// caller can show progress, pipeline downstream work, or stop early by
// breaking out of the loop (the worker pool is then cancelled and drained —
// no goroutines leak).
//
// Error handling follows Options.OnError. Under ContinueOnError every
// failing cluster yields a (zero-report, *ClusterError) pair as it fails
// and the run continues. Under FailFast the pool stops claiming clusters
// at the first failure; reports already in flight are still yielded, and
// the earliest failure in design order is yielded last. When ctx is
// cancelled the final yield carries ctx.Err().
//
// A run consumed to completion yields exactly the reports (and, under
// ContinueOnError, the errors) of an equivalent Analyze call.
func (a *Analyzer) Stream(ctx context.Context) iter.Seq2[NetReport, error] {
	return func(yield func(NetReport, error) bool) {
		var (
			stopped bool
			failIdx = -1
			failErr *ClusterError
		)
		runErr := a.runClusters(ctx, func(out outcome) bool {
			if out.err != nil {
				if a.opts.OnError == ContinueOnError {
					ok := yield(NetReport{Cluster: out.err.Cluster}, out.err)
					stopped = !ok
					return ok
				}
				// FailFast: keep draining in-flight outcomes so the error
				// we surface is the earliest in design order, as a serial
				// run would report.
				if failIdx < 0 || out.idx < failIdx {
					failIdx, failErr = out.idx, out.err
				}
				return true
			}
			ok := yield(*out.rep, nil)
			stopped = !ok
			return ok
		})
		if stopped {
			return
		}
		if runErr != nil {
			yield(NetReport{}, runErr)
			return
		}
		if failErr != nil {
			yield(NetReport{Cluster: failErr.Cluster}, failErr)
		}
	}
}

// gatedAnalyzeCluster wraps analyzeCluster in the fleet gate (see
// Options.Gate): the worker holds one fleet slot for the duration of the
// cluster's analysis. A gate acquisition cut short by cancellation surfaces
// as a *ClusterError carrying the context error, which runClusters already
// maps to a cancelled run rather than a cluster failure.
func (a *Analyzer) gatedAnalyzeCluster(ctx context.Context, cs ClusterSpec, pool *core.RigPool) (*NetReport, *ClusterError) {
	if g := a.opts.Gate; g != nil {
		if err := g.Acquire(ctx); err != nil {
			return nil, &ClusterError{Cluster: cs.Name, Stage: StageBuild, Err: err}
		}
		defer g.Release()
	}
	return a.analyzeCluster(ctx, cs, pool)
}

// analyzeCluster runs the full pipeline on one cluster. The error, when
// non-nil, is always a *ClusterError naming the failed stage. pool is the
// calling worker's compiled-bench pool (nil disables pooling).
func (a *Analyzer) analyzeCluster(ctx context.Context, cs ClusterSpec, pool *core.RigPool) (*NetReport, *ClusterError) {
	fail := func(stage Stage, err error) (*NetReport, *ClusterError) {
		return nil, &ClusterError{Cluster: cs.Name, Stage: stage, Err: err}
	}
	var timing StageTiming
	t0 := time.Now()
	cl, err := a.design.BuildClusterCornerNL(cs, a.opts.Corner, a.opts.NonlinearCaps)
	if err != nil {
		return fail(StageBuild, err)
	}
	if pool != nil {
		cl.UseRigPool(pool)
	}
	timing.Build = time.Since(t0)

	method := a.opts.Method
	mopts := core.ModelOptions{
		LoadCurve: a.opts.LoadCurve,
		Prop:      a.opts.Prop,
		SkipProp:  method != core.Superposition,
		Cache:     a.cache,
	}
	t0 = time.Now()
	models, err := cl.BuildModels(ctx, mopts)
	if err != nil {
		return fail(StageModels, err)
	}
	timing.Models = time.Since(t0)

	eopts := core.EvalOptions{Dt: a.opts.Dt}
	feasible := a.opts.Feasibility && len(cl.Aggressors) > 0

	var (
		fctx      *feasContext
		target    float64
		starts    []float64
		scenarios []scenarioOutcome
	)
	if feasible {
		// Constraint solving is cheap (≤ 2^N masks); evaluation is not, so
		// infeasible specs must fail here, before any engine run.
		t0 = time.Now()
		fctx, err = newFeasContext(&cs)
		if err != nil {
			return fail(StageFeas, err)
		}
		timing.Feas += time.Since(t0)
	}

	if a.opts.Align && len(cl.Aggressors) > 0 {
		t0 = time.Now()
		if feasible {
			// Realistic mode stops at peak alignment: the coordinate-ascent
			// refinement of the pessimistic flow is exactly the simulation
			// budget the feasibility filter reinvests into scenarios.
			target, starts, err = cl.AlignPeaks(ctx, models, eopts)
		} else {
			err = cl.AlignWorstCase(ctx, models, eopts)
		}
		if err != nil {
			return fail(StageAlign, err)
		}
		timing.Align = time.Since(t0)
	}
	if feasible && starts == nil {
		// Alignment disabled: the classical evaluation uses the nominal
		// start times, and scenarios clamp those into their windows.
		target = math.NaN()
		starts = nominalStarts(cl)
	}

	t0 = time.Now()
	ev, err := cl.Evaluate(ctx, method, models, eopts)
	if err != nil {
		return fail(StageEval, err)
	}
	timing.Eval = time.Since(t0)

	if feasible {
		t0 = time.Now()
		scenarios, err = evalScenarios(ctx, cl, method, models, eopts, fctx, target, starts, a.opts.Align, ev)
		if err != nil {
			return fail(StageFeas, err)
		}
		timing.Feas += time.Since(t0)
	}

	rep := &NetReport{
		Cluster: cs.Name,
		Method:  method,
		Corner:  cornerLabel(a.opts.Corner),
		PeakV:   ev.RecvMetrics.Peak,
		AreaVps: ev.RecvMetrics.AreaVps(),
		WidthPs: ev.RecvMetrics.WidthPs(),
		DPPeakV: ev.Metrics.Peak,
		Elapsed: ev.Elapsed,
	}

	t0 = time.Now()
	curve, err := a.receiverCurve(ctx, cl.Victim.Receiver, cl.Victim.ReceiverPin, cl)
	if err != nil {
		return fail(StageNRC, err)
	}
	timing.NRC = time.Since(t0)
	rep.Fails = curve.Fails(rep.PeakV, ev.RecvMetrics.Width)
	rep.MarginV = curve.MarginV(rep.PeakV, ev.RecvMetrics.Width)
	if feasible {
		rep.Feasibility = fctx.report(curve, scenarios, rep.MarginV, rep.Fails)
	} else if a.opts.Feasibility {
		// Aggressor-free cluster: nothing to prune, but the mode still
		// reports a (trivial) census so consumers see a uniform schema.
		rep.Feasibility = emptyFeasReport(rep)
	}
	rep.Timing = timing
	return rep, nil
}

// ReceiverNRC characterises (or retrieves from the shared cache) the Noise
// Rejection Curve the analyzer would judge the given cluster's victim
// receiver against — the sign-off criterion itself, exposed for reporting
// and inspection.
func (a *Analyzer) ReceiverNRC(ctx context.Context, cs ClusterSpec) (*nrc.Curve, error) {
	cl, err := a.design.BuildClusterCornerNL(cs, a.opts.Corner, a.opts.NonlinearCaps)
	if err != nil {
		return nil, err
	}
	return a.receiverCurve(ctx, cl.Victim.Receiver, cl.Victim.ReceiverPin, cl)
}

// cornerLabel renders the report tag of an analysis corner: its name for a
// non-nominal corner (falling back to the full fingerprint for an unnamed
// one, so the report never silently drops the axis), empty for nominal.
func cornerLabel(c tech.Corner) string {
	if c.IsNominal() {
		return ""
	}
	if c.Name != "" {
		return c.Name
	}
	return c.Fingerprint()
}

// receiverCurve characterises (or retrieves) the NRC of the victim's
// receiver pin for the victim's quiet level. Curves are memoized in the
// shared cache, so clusters with the same receiver configuration — the
// overwhelmingly common case — characterise it once, even across workers.
func (a *Analyzer) receiverCurve(ctx context.Context, recv *cell.Cell, pin string, cl *core.Cluster) (*nrc.Curve, error) {
	quietHigh := cl.QuietVictimLevel() > cl.Tech.VDD/2
	// The receiver input sits at the victim's quiet level; find a state of
	// the receiver consistent with that and sensitised through the pin.
	st, err := recv.SensitizedState(pin, !quietHigh)
	if err != nil {
		// Fall back to any holding state with the right pin level.
		st = nil
		for _, s := range recv.HoldStates(true) {
			if s[pin] == quietHigh {
				st = s
				break
			}
		}
		if st == nil {
			return nil, fmt.Errorf("sna: no usable receiver state for %s.%s", recv.Name(), pin)
		}
	}
	if st[pin] != quietHigh {
		// Sensitised state with the wrong pin polarity: flip search.
		if alt, err2 := recv.SensitizedState(pin, quietHigh); err2 == nil && alt[pin] == quietHigh {
			st = alt
		}
	}
	nopts := a.opts.NRC
	nopts.FailFrac = a.opts.FailFrac
	return a.cache.NRCCurve(ctx, recv, st, pin, nopts)
}

// Summary aggregates reports for quick inspection. WorstMarginV is +Inf
// (serialised as null in JSON) when no analysed net can fail its NRC — in
// particular for an empty design.
type Summary struct {
	Total, Failing int
	WorstMarginV   float64
	WorstCluster   string
}

// summaryJSON is the wire form of Summary, with the +Inf margin mapped to
// null like NetReport's.
type summaryJSON struct {
	Total        int      `json:"total"`
	Failing      int      `json:"failing"`
	WorstMarginV *float64 `json:"worst_margin_v"`
	WorstCluster string   `json:"worst_cluster,omitempty"`
}

// MarshalJSON implements the stable summary schema.
func (s Summary) MarshalJSON() ([]byte, error) {
	j := summaryJSON{Total: s.Total, Failing: s.Failing, WorstCluster: s.WorstCluster}
	if !math.IsInf(s.WorstMarginV, 0) {
		m := s.WorstMarginV
		j.WorstMarginV = &m
	}
	return json.Marshal(j)
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (s *Summary) UnmarshalJSON(b []byte) error {
	var j summaryJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*s = Summary{Total: j.Total, Failing: j.Failing, WorstMarginV: math.Inf(1), WorstCluster: j.WorstCluster}
	if j.WorstMarginV != nil {
		s.WorstMarginV = *j.WorstMarginV
	}
	return nil
}

// String renders the one-line human summary, guarding the empty-design and
// all-unfailable cases instead of printing "+Inf (  )".
func (s Summary) String() string {
	if s.Total == 0 {
		return "no nets analysed"
	}
	if math.IsInf(s.WorstMarginV, 1) {
		return fmt.Sprintf("%d nets analysed, %d failing; no net can fail its NRC", s.Total, s.Failing)
	}
	return fmt.Sprintf("%d nets analysed, %d failing; worst margin %.3f V (%s)",
		s.Total, s.Failing, s.WorstMarginV, s.WorstCluster)
}

// Summarize folds reports into a Summary. The worst cluster is the one
// with the smallest margin; ties go to the earliest report, and a run where
// every margin is +Inf still names the first net rather than none.
func Summarize(reports []NetReport) Summary {
	s := Summary{WorstMarginV: math.Inf(1)}
	for i, r := range reports {
		s.Total++
		if r.Fails {
			s.Failing++
		}
		if i == 0 || r.MarginV < s.WorstMarginV {
			s.WorstMarginV = r.MarginV
			s.WorstCluster = r.Cluster
		}
	}
	return s
}
