package sna

import (
	"fmt"
	"math"
	"time"

	"stanoise/internal/cell"
	"stanoise/internal/charlib"
	"stanoise/internal/core"
	"stanoise/internal/nrc"
)

// Options configures an analysis run.
type Options struct {
	Method core.Method // victim-driver model; default Macromodel
	Dt     float64     // engine step; default 2 ps
	// Align enables the worst-case peak-alignment search per cluster.
	Align bool
	// FailFrac is the NRC failure threshold (fraction of VDD at the
	// receiver output); default 0.5.
	FailFrac float64
	// Model quality knobs.
	LoadCurve charlib.LoadCurveOptions
	Prop      charlib.PropOptions
	NRC       nrc.Options
}

func (o Options) normalize() Options {
	if o.Dt <= 0 {
		o.Dt = 2e-12
	}
	if o.FailFrac <= 0 {
		o.FailFrac = 0.5
	}
	return o
}

// NetReport is the per-victim outcome of an analysis.
type NetReport struct {
	Cluster string
	Method  core.Method

	// Noise at the victim receiver input (what the NRC judges).
	PeakV   float64
	AreaVps float64
	WidthPs float64

	// DPPeakV is the noise at the victim driving point (the paper's
	// measurement node), for cross-referencing against table results.
	DPPeakV float64

	Fails   bool
	MarginV float64 // height margin to the NRC (+Inf when unfailable)

	Elapsed time.Duration // evaluation time (excluding characterisation)
}

// Analyzer runs static noise analysis over a design, caching characterised
// artefacts (NRC curves) across clusters that share receivers.
type Analyzer struct {
	design *Design
	opts   Options

	nrcCache map[string]*nrc.Curve
}

// NewAnalyzer builds an analyzer for a validated design.
func NewAnalyzer(d *Design, opts Options) *Analyzer {
	return &Analyzer{design: d, opts: opts.normalize(), nrcCache: map[string]*nrc.Curve{}}
}

// Analyze evaluates every cluster in the design and returns one report per
// victim net.
func (a *Analyzer) Analyze() ([]NetReport, error) {
	var reports []NetReport
	for _, cs := range a.design.Clusters {
		rep, err := a.analyzeCluster(cs)
		if err != nil {
			return nil, err
		}
		reports = append(reports, *rep)
	}
	return reports, nil
}

func (a *Analyzer) analyzeCluster(cs ClusterSpec) (*NetReport, error) {
	cl, err := a.design.BuildCluster(cs)
	if err != nil {
		return nil, err
	}
	method := a.opts.Method
	mopts := core.ModelOptions{
		LoadCurve: a.opts.LoadCurve,
		Prop:      a.opts.Prop,
		SkipProp:  method != core.Superposition,
	}
	models, err := cl.BuildModels(mopts)
	if err != nil {
		return nil, fmt.Errorf("sna: cluster %s models: %w", cs.Name, err)
	}
	eopts := core.EvalOptions{Dt: a.opts.Dt}
	if a.opts.Align && len(cl.Aggressors) > 0 {
		if err := cl.AlignWorstCase(models, eopts); err != nil {
			return nil, fmt.Errorf("sna: cluster %s alignment: %w", cs.Name, err)
		}
	}
	ev, err := cl.Evaluate(method, models, eopts)
	if err != nil {
		return nil, fmt.Errorf("sna: cluster %s evaluation: %w", cs.Name, err)
	}

	rep := &NetReport{
		Cluster: cs.Name,
		Method:  method,
		PeakV:   ev.RecvMetrics.Peak,
		AreaVps: ev.RecvMetrics.AreaVps(),
		WidthPs: ev.RecvMetrics.WidthPs(),
		DPPeakV: ev.Metrics.Peak,
		Elapsed: ev.Elapsed,
	}

	curve, err := a.receiverCurve(cl.Victim.Receiver, cl.Victim.ReceiverPin, cl)
	if err != nil {
		return nil, fmt.Errorf("sna: cluster %s NRC: %w", cs.Name, err)
	}
	rep.Fails = curve.Fails(rep.PeakV, ev.RecvMetrics.Width)
	rep.MarginV = curve.MarginV(rep.PeakV, ev.RecvMetrics.Width)
	return rep, nil
}

// receiverCurve characterises (or retrieves) the NRC of the victim's
// receiver pin for the victim's quiet level.
func (a *Analyzer) receiverCurve(recv *cell.Cell, pin string, cl *core.Cluster) (*nrc.Curve, error) {
	quietHigh := cl.QuietVictimLevel() > cl.Tech.VDD/2
	// The receiver input sits at the victim's quiet level; find a state of
	// the receiver consistent with that and sensitised through the pin.
	st, err := recv.SensitizedState(pin, !quietHigh)
	if err != nil {
		// Fall back to any holding state with the right pin level.
		st = nil
		for _, s := range recv.HoldStates(true) {
			if s[pin] == quietHigh {
				st = s
				break
			}
		}
		if st == nil {
			return nil, fmt.Errorf("sna: no usable receiver state for %s.%s", recv.Name(), pin)
		}
	}
	if st[pin] != quietHigh {
		// Sensitised state with the wrong pin polarity: flip search.
		if alt, err2 := recv.SensitizedState(pin, quietHigh); err2 == nil && alt[pin] == quietHigh {
			st = alt
		}
	}
	key := recv.Name() + "/" + pin + "/" + st.String() + "/" + cl.Tech.Name
	if c, ok := a.nrcCache[key]; ok {
		return c, nil
	}
	nopts := a.opts.NRC
	nopts.FailFrac = a.opts.FailFrac
	curve, err := nrc.Characterize(recv, st, pin, nopts)
	if err != nil {
		return nil, err
	}
	a.nrcCache[key] = curve
	return curve, nil
}

// Summary aggregates reports for quick inspection.
type Summary struct {
	Total, Failing int
	WorstMarginV   float64
	WorstCluster   string
}

// Summarize folds reports into a Summary.
func Summarize(reports []NetReport) Summary {
	s := Summary{WorstMarginV: math.Inf(1)}
	for _, r := range reports {
		s.Total++
		if r.Fails {
			s.Failing++
		}
		if r.MarginV < s.WorstMarginV {
			s.WorstMarginV = r.MarginV
			s.WorstCluster = r.Cluster
		}
	}
	return s
}
