package sna

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzWindowSpec holds design parsing — correlation metadata included —
// to its contract on arbitrary input: ParseDesign never panics, and any
// design it accepts (a) survives a JSON round trip and (b) re-validates,
// so the feasibility solver behind Validate is total over everything the
// parser lets through. The seed corpus covers the metadata shapes that
// matter: windows (valid, inverted, negative, non-finite), mutex groups,
// implication chains, dead aggressors, duplicate and positional names.
func FuzzWindowSpec(f *testing.F) {
	design := func(cluster string) string {
		return `{"name":"z","tech":"cmos130","layer":"M4","clusters":[` + cluster + `]}`
	}
	agg := func(extra string) string {
		return `{"cell":"INV","from_state":{"A":false},"switch_pin":"A","length_um":100` + extra + `}`
	}
	victim := `"victim":{"cell":"INV","noisy_pin":"A","length_um":100}`
	seeds := []string{
		design(`{"name":"c0",` + victim + `,"aggressors":[` + agg(``) + `]}`),
		design(`{"name":"c0",` + victim + `,"aggressors":[` +
			agg(`,"agg_name":"a","window":{"early_ps":100,"late_ps":400}`) + `,` +
			agg(`,"agg_name":"b","window":{"early_ps":200,"late_ps":500},"side":"right"`) +
			`],"mutex_groups":[["a","b"]]}`),
		design(`{"name":"c0",` + victim + `,"aggressors":[` +
			agg(`,"agg_name":"a","window":{"early_ps":100,"late_ps":500}`) + `,` +
			agg(`,"agg_name":"b","window":{"early_ps":100,"late_ps":500},"side":"right"`) +
			`],"implications":[{"if":"a","then":"b"}]}`),
		// Positional names: constraints may reference "agg<i>" without
		// declaring agg_name.
		design(`{"name":"c0",` + victim + `,"aggressors":[` + agg(``) + `,` + agg(`,"side":"right"`) +
			`],"mutex_groups":[["agg0","agg1"]]}`),
		// Dead aggressor: a implies b across disjoint windows.
		design(`{"name":"c0",` + victim + `,"aggressors":[` +
			agg(`,"agg_name":"a","window":{"early_ps":100,"late_ps":200}`) + `,` +
			agg(`,"agg_name":"b","window":{"early_ps":400,"late_ps":500},"side":"right"`) +
			`],"implications":[{"if":"a","then":"b"}]}`),
		// Duplicate names, unknown references, malformed windows.
		design(`{"name":"c0",` + victim + `,"aggressors":[` +
			agg(`,"agg_name":"a"`) + `,` + agg(`,"agg_name":"a","side":"right"`) + `]}`),
		design(`{"name":"c0",` + victim + `,"aggressors":[` + agg(``) + `],"mutex_groups":[["ghost"]]}`),
		design(`{"name":"c0",` + victim + `,"aggressors":[` +
			agg(`,"window":{"early_ps":500,"late_ps":100}`) + `]}`),
		design(`{"name":"c0",` + victim + `,"aggressors":[` +
			agg(`,"window":{"early_ps":-1,"late_ps":100}`) + `]}`),
		design(`{"name":"c0",` + victim + `,"aggressors":[` +
			agg(`,"window":{"early_ps":1e999,"late_ps":1e999}`) + `]}`),
		design(`{"name":"c0",` + victim + `,"aggressors":[` + agg(`,"window":null`) + `]}`),
		design(`{"name":"c0",` + victim + `,"aggressors":[` + agg(`,"window":{}`) + `]}`),
		`{"name":"z","tech":"cmos130","layer":"M4","clusters":null}`,
		`{`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ParseDesign(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panicking is not
		}
		// Accepted designs must be stable: re-validation agrees, and the
		// JSON round trip re-parses cleanly.
		if err := d.Validate(); err != nil {
			t.Fatalf("accepted design fails re-validation: %v", err)
		}
		var b strings.Builder
		if err := d.WriteJSON(&b); err != nil {
			t.Fatalf("accepted design does not serialise: %v", err)
		}
		if _, err := ParseDesign(strings.NewReader(b.String())); err != nil {
			t.Fatalf("round-tripped design rejected: %v", err)
		}
	})
}
