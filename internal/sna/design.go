// Package sna implements the full static-noise-analysis flow on a design
// description: cluster construction from net geometry, pre-characterised
// model reuse, worst-case evaluation with a selectable victim-driver model,
// and NRC screening of every victim receiver — the sign-off step the
// paper's introduction describes.
package sna

import (
	"encoding/json"
	"fmt"
	"io"

	"stanoise/internal/cell"
	"stanoise/internal/core"
	"stanoise/internal/interconnect"
	"stanoise/internal/tech"
)

// Design is the top-level JSON design description: a set of noise clusters
// extracted from a routed design, with common technology and layer.
type Design struct {
	Name     string        `json:"name"`
	Tech     string        `json:"tech"`     // "cmos130" or "cmos090"
	Layer    string        `json:"layer"`    // routing layer of the clusters, e.g. "M4"
	Segments int           `json:"segments"` // RC segments per wire (default 15)
	Clusters []ClusterSpec `json:"clusters"`
}

// ClusterSpec describes one victim net and its coupled aggressors.
// MutexGroups and Implications are optional logic-correlation constraints
// consumed by the feasibility filter (Options.Feasibility); they reference
// aggressors by name (or the positional default "agg<i>") and are ignored
// by the classical pessimistic flow.
type ClusterSpec struct {
	Name       string          `json:"name"`
	Victim     VictimSpec      `json:"victim"`
	Aggressors []AggressorSpec `json:"aggressors"`

	MutexGroups  [][]string        `json:"mutex_groups,omitempty"`
	Implications []ImplicationSpec `json:"implications,omitempty"`
}

// VictimSpec is the JSON form of a victim net.
type VictimSpec struct {
	Cell     string          `json:"cell"`
	Drive    int             `json:"drive"`
	State    map[string]bool `json:"state"`
	NoisyPin string          `json:"noisy_pin"`

	GlitchHeightV float64 `json:"glitch_height_v"`
	GlitchWidthPs float64 `json:"glitch_width_ps"`

	LengthUm float64 `json:"length_um"`

	Receiver      string `json:"receiver"`
	ReceiverDrive int    `json:"receiver_drive"`
	ReceiverPin   string `json:"receiver_pin"`
}

// AggressorSpec is the JSON form of one coupled aggressor. Name and Window
// are optional feasibility metadata: Name labels the aggressor for
// constraint references (default "agg<i>" by position) and Window bounds
// when its input transition may start. Both are ignored unless the
// feasibility filter is enabled.
type AggressorSpec struct {
	Name      string          `json:"agg_name,omitempty"`
	Cell      string          `json:"cell"`
	Drive     int             `json:"drive"`
	FromState map[string]bool `json:"from_state"`
	SwitchPin string          `json:"switch_pin"`
	SlewPs    float64         `json:"slew_ps"`

	LengthUm      float64 `json:"length_um"`
	SpacingFactor float64 `json:"spacing_factor"` // multiple of min spacing; default 1
	Side          string  `json:"side"`           // "left" or "right" of the victim

	Receiver      string `json:"receiver"`
	ReceiverDrive int    `json:"receiver_drive"`
	ReceiverPin   string `json:"receiver_pin"`

	Window *WindowSpec `json:"window,omitempty"`
}

// WindowSpec is the JSON form of an aggressor switching window: the input
// transition of the aggressor driver may start no earlier than EarlyPs and
// no later than LatePs (picoseconds from analysis time zero). A missing
// window means the aggressor can switch at any time — exactly the
// pessimistic assumption of the classical flow.
type WindowSpec struct {
	EarlyPs float64 `json:"early_ps"`
	LatePs  float64 `json:"late_ps"`
}

// ImplicationSpec is the JSON form of a logic implication between
// aggressors: whenever If switches in a scenario, Then must switch too
// (e.g. a buffered copy of the same signal). Aggressors are referenced by
// name.
type ImplicationSpec struct {
	If   string `json:"if"`
	Then string `json:"then"`
}

// ParseDesign reads a Design from JSON.
func ParseDesign(r io.Reader) (*Design, error) {
	var d Design
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("sna: parsing design: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// WriteJSON serialises the design.
func (d *Design) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Validate checks the design structurally (cells exist, pins present,
// sides are legal). Electrical validation happens when clusters are built.
func (d *Design) Validate() error {
	if _, err := tech.ByName(d.Tech); err != nil {
		return err
	}
	if d.Layer == "" {
		return fmt.Errorf("sna: design %q needs a layer", d.Name)
	}
	// An empty design is valid and trivially passes analysis: a service
	// partitioning a large design must be able to hand an analyzer an empty
	// shard without special-casing it.
	for _, cs := range d.Clusters {
		if cs.Name == "" {
			return fmt.Errorf("sna: design %q has an unnamed cluster", d.Name)
		}
		for i, a := range cs.Aggressors {
			if a.Side != "" && a.Side != "left" && a.Side != "right" {
				return fmt.Errorf("sna: cluster %s aggressor %d: bad side %q", cs.Name, i, a.Side)
			}
		}
		if err := cs.validateFeasibility(); err != nil {
			return err
		}
	}
	return nil
}

// buildCell instantiates a cell by library name with a default drive of 1.
func buildCell(t *tech.Tech, kind string, drive int) (*cell.Cell, error) {
	if drive <= 0 {
		drive = 1
	}
	return cell.New(t, kind, drive)
}

func toState(m map[string]bool) cell.State {
	st := make(cell.State, len(m))
	for k, v := range m {
		st[k] = v
	}
	return st
}

// BuildCluster converts a ClusterSpec into an evaluable core.Cluster.
// Aggressors marked "left" are placed above the victim in declaration
// order, "right" (or unspecified) below, so coupling adjacency reflects the
// described geometry.
func (d *Design) BuildCluster(cs ClusterSpec) (*core.Cluster, error) {
	return d.BuildClusterCorner(cs, tech.Corner{})
}

// BuildClusterCorner is BuildCluster at an operating corner: the design's
// technology card is derived via Corner.Apply before any cell or bus is
// built, so every cell in the cluster — and therefore every
// characterisation artefact and cache key downstream — carries the corner.
// Wire parasitics come from the shared base card (corners model device and
// supply variation, not layout). A nominal corner builds exactly what
// BuildCluster builds.
func (d *Design) BuildClusterCorner(cs ClusterSpec, corner tech.Corner) (*core.Cluster, error) {
	return d.BuildClusterCornerNL(cs, corner, false)
}

// BuildClusterCornerNL is BuildClusterCorner with the NLMOS nonlinear
// gate-charge model optionally enabled: when nlcaps is true the corner-
// derived card is further derived via tech.Tech.WithNonlinearCaps, so every
// cell's gate capacitors become voltage-dependent and every downstream
// artefact keys distinctly (",nlcap" fingerprints). The derivation order —
// corner first, then nonlinear caps — matches the commuting property the
// two card derivations guarantee. With nlcaps false it builds exactly what
// BuildClusterCorner builds.
func (d *Design) BuildClusterCornerNL(cs ClusterSpec, corner tech.Corner, nlcaps bool) (*core.Cluster, error) {
	t, err := tech.ByName(d.Tech)
	if err != nil {
		return nil, err
	}
	t = corner.Apply(t)
	if nlcaps {
		t = t.WithNonlinearCaps()
	}
	segments := d.Segments
	if segments <= 0 {
		segments = 15
	}
	vicCell, err := buildCell(t, cs.Victim.Cell, cs.Victim.Drive)
	if err != nil {
		return nil, fmt.Errorf("sna: cluster %s victim: %w", cs.Name, err)
	}
	var vicState cell.State
	if len(cs.Victim.State) > 0 {
		vicState = toState(cs.Victim.State)
	} else {
		vicState, err = vicCell.SensitizedState(cs.Victim.NoisyPin, true)
		if err != nil {
			return nil, fmt.Errorf("sna: cluster %s: %w", cs.Name, err)
		}
	}

	var left, right []int
	for i, a := range cs.Aggressors {
		if a.Side == "left" {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	var lines []interconnect.LineSpec
	lineOf := make(map[int]int) // aggressor index → line index
	for _, ai := range left {
		a := cs.Aggressors[ai]
		lineOf[ai] = len(lines)
		lines = append(lines, interconnect.LineSpec{
			Name: fmt.Sprintf("%s_agg%d", cs.Name, ai), LengthUm: a.LengthUm,
			SpacingFactor: spacingOr1(a.SpacingFactor),
		})
	}
	vicLine := len(lines)
	lines = append(lines, interconnect.LineSpec{
		Name: cs.Name + "_vic", LengthUm: cs.Victim.LengthUm,
	})
	for _, ai := range right {
		a := cs.Aggressors[ai]
		// The spacing between the victim and the first right aggressor is
		// carried by the victim's line spec.
		lines[len(lines)-1].SpacingFactor = spacingOr1(a.SpacingFactor)
		lineOf[ai] = len(lines)
		lines = append(lines, interconnect.LineSpec{
			Name: fmt.Sprintf("%s_agg%d", cs.Name, ai), LengthUm: a.LengthUm,
		})
	}
	bus, err := interconnect.NewBus(t, d.Layer, segments, lines...)
	if err != nil {
		return nil, fmt.Errorf("sna: cluster %s: %w", cs.Name, err)
	}

	recvCell, recvPin, err := receiverOf(t, cs.Victim.Receiver, cs.Victim.ReceiverDrive, cs.Victim.ReceiverPin)
	if err != nil {
		return nil, fmt.Errorf("sna: cluster %s victim receiver: %w", cs.Name, err)
	}
	cl := &core.Cluster{
		Tech: t,
		Bus:  bus,
		Victim: core.VictimSpec{
			Cell: vicCell, State: vicState, NoisyPin: cs.Victim.NoisyPin,
			Glitch: core.GlitchSpec{
				Height: cs.Victim.GlitchHeightV,
				Width:  cs.Victim.GlitchWidthPs * 1e-12,
				Start:  150e-12,
			},
			Line:     vicLine,
			Receiver: recvCell, ReceiverPin: recvPin,
		},
	}
	for i, a := range cs.Aggressors {
		aggCell, err := buildCell(t, a.Cell, a.Drive)
		if err != nil {
			return nil, fmt.Errorf("sna: cluster %s aggressor %d: %w", cs.Name, i, err)
		}
		aggRecv, aggRecvPin, err := receiverOf(t, a.Receiver, a.ReceiverDrive, a.ReceiverPin)
		if err != nil {
			return nil, fmt.Errorf("sna: cluster %s aggressor %d receiver: %w", cs.Name, i, err)
		}
		slew := a.SlewPs * 1e-12
		cl.Aggressors = append(cl.Aggressors, core.AggressorSpec{
			Cell: aggCell, FromState: toState(a.FromState), SwitchPin: a.SwitchPin,
			InputSlew: slew, Line: lineOf[i],
			Receiver: aggRecv, ReceiverPin: aggRecvPin,
		})
	}
	if err := cl.Validate(); err != nil {
		return nil, fmt.Errorf("sna: cluster %s: %w", cs.Name, err)
	}
	return cl, nil
}

func spacingOr1(s float64) float64 {
	if s <= 0 {
		return 1
	}
	return s
}

func receiverOf(t *tech.Tech, kind string, drive int, pin string) (*cell.Cell, string, error) {
	if kind == "" {
		kind = "INV"
		if drive <= 0 {
			drive = 2
		}
	}
	c, err := buildCell(t, kind, drive)
	if err != nil {
		return nil, "", err
	}
	if pin == "" {
		pin = c.Inputs()[0]
	}
	return c, pin, nil
}
