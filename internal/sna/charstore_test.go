package sna

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"stanoise/internal/charlib"
	"stanoise/internal/charstore"
	"stanoise/internal/core"
	"stanoise/internal/nrc"
	"stanoise/internal/sim"
)

// warmColdOpts keeps the disk-tier tests fast: coarse grids, no alignment
// search (alignment re-simulates the victim driver transistor-level, which
// is evaluation work, not characterisation — the zero-sweep assertion is
// about characterisation).
func warmColdOpts(cacheDir string) Options {
	return Options{
		Method:    core.Macromodel,
		Dt:        2e-12,
		Align:     false,
		Workers:   2,
		CacheDir:  cacheDir,
		LoadCurve: charlib.LoadCurveOptions{NVin: 9, NVout: 9},
		NRC:       nrc.Options{Widths: []float64{150e-12, 600e-12}, Tol: 0.05, Dt: 2e-12},
	}
}

// reportsJSON renders reports with their run-varying timing cleared — the
// byte-level comparison form.
func reportsJSON(t *testing.T, reports []NetReport) []byte {
	t.Helper()
	for i := range reports {
		reports[i].ClearTiming()
	}
	raw, err := json.Marshal(reports)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestWarmDiskRunMatchesColdAndSkipsAllSweeps is the acceptance test of
// the persistent store: a second run against the same cache directory must
// perform zero transistor-level engine invocations (DC or transient — the
// sim package counts every one) and produce byte-identical reports.
func TestWarmDiskRunMatchesColdAndSkipsAllSweeps(t *testing.T) {
	dir := t.TempDir()
	d := GenerateDesign("warmcold", 6)

	cold := NewAnalyzer(d, warmColdOpts(dir))
	if err := cold.StoreError(); err != nil {
		t.Fatal(err)
	}
	coldReports, err := cold.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cs := cold.CacheStats(); cs.DiskHits != 0 {
		t.Errorf("cold run had %d disk hits", cs.DiskHits)
	}

	warm := NewAnalyzer(d, warmColdOpts(dir))
	before := sim.Snapshot()
	warmReports, err := warm.Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	delta := sim.Snapshot().Sub(before)
	if delta.DC != 0 || delta.Transient != 0 {
		t.Errorf("warm run invoked the transistor-level engine: %d DC, %d transient solves (want 0, 0)",
			delta.DC, delta.Transient)
	}
	if cs := warm.CacheStats(); cs.DiskHits == 0 || cs.DiskHits != cs.Misses {
		t.Errorf("warm run stats: %+v (want every miss answered from disk)", cs)
	}

	coldJSON := reportsJSON(t, coldReports)
	warmJSON := reportsJSON(t, warmReports)
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Errorf("warm reports differ from cold:\ncold: %s\nwarm: %s", coldJSON, warmJSON)
	}
}

// TestTypedNilStoreIsSafe: a caller wiring `var s *charstore.Store` (nil)
// through Options.Store must get memory-only caching, not a nil-receiver
// panic on the first disk lookup.
func TestTypedNilStoreIsSafe(t *testing.T) {
	d := GenerateDesign("nilstore", 1)
	opts := warmColdOpts("")
	var s *charstore.Store
	opts.Store = s // non-nil interface, nil pointer inside
	reports, err := NewAnalyzer(d, opts).Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("got %d reports", len(reports))
	}
}

// TestSharedCacheIsNeverStoreMutated: CacheDir/Store configure the
// analyzer's *private* cache only — a caller-shared cache must come back
// exactly as configured, or two analyzers with different directories
// would clobber each other's disk tier.
func TestSharedCacheIsNeverStoreMutated(t *testing.T) {
	dir := t.TempDir()
	d := GenerateDesign("sharedcache", 1)
	shared := charlib.NewCache()
	opts := warmColdOpts(dir)
	opts.Cache = shared
	if _, err := NewAnalyzer(d, opts).Analyze(context.Background()); err != nil {
		t.Fatal(err)
	}
	store, err := charstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n := store.Len(); n != 0 {
		t.Errorf("shared cache persisted %d artefacts into CacheDir; the store must stay untouched", n)
	}
}

// TestCacheDirUnusableDegradesToMemory: a cache directory that cannot be
// created must not fail analysis — memory-only caching with an
// inspectable error.
func TestCacheDirUnusableDegradesToMemory(t *testing.T) {
	d := GenerateDesign("degrade", 1)
	opts := warmColdOpts("/dev/null/not-a-directory")
	a := NewAnalyzer(d, opts)
	if a.StoreError() == nil {
		t.Fatal("unusable cache dir reported no store error")
	}
	reports, err := a.Analyze(context.Background())
	if err != nil {
		t.Fatalf("analysis failed without a store: %v", err)
	}
	if len(reports) != 1 {
		t.Fatalf("got %d reports", len(reports))
	}
}
