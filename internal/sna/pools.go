package sna

import (
	"sync"

	"stanoise/internal/core"
)

// PoolSet is a thread-safe free list of compiled-bench pools (see
// core.RigPool). Each analysis worker checks one pool out for the clusters
// it processes and returns it afterwards, so pools are never shared
// between concurrent goroutines — sessions are single-goroutine objects —
// yet compiled benches persist across runs.
//
// Every Analyzer owns a private PoolSet by default. A long-lived process
// serving many designs shares one PoolSet across analyzers via
// Options.RigPools, exactly as it shares a charlib.Cache via
// Options.Cache: benches compiled for one request are reused by every
// later request whose cluster topologies match, and Invalidate is the
// explicit drop-everything point for when the underlying libraries change.
type PoolSet struct {
	mu     sync.Mutex
	limits core.RigPoolLimits
	pools  []*core.RigPool

	// retired accumulates the statistics of invalidated pools so
	// hit-rate accounting survives an Invalidate.
	retiredHits, retiredMisses int
}

// NewPoolSet returns an empty pool set whose pools are bounded by the
// given limits (the zero value selects the core.RigPool defaults).
func NewPoolSet(limits core.RigPoolLimits) *PoolSet {
	return &PoolSet{limits: limits}
}

// acquire checks a pool out, creating one when the list is empty (first
// run, or more concurrent workers than ever before).
func (ps *PoolSet) acquire() *core.RigPool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if n := len(ps.pools); n > 0 {
		p := ps.pools[n-1]
		ps.pools = ps.pools[:n-1]
		return p
	}
	return core.NewRigPoolWithLimits(ps.limits)
}

// release returns a pool to the free list for the next run or worker.
func (ps *PoolSet) release(p *core.RigPool) {
	ps.mu.Lock()
	ps.pools = append(ps.pools, p)
	ps.mu.Unlock()
}

// Stats sums compiled-bench pool effectiveness over the set (including
// pools dropped by Invalidate): hits counts bench compilations avoided by
// topology-class reuse, misses counts benches actually compiled. Pools
// checked out by in-flight workers are not counted.
func (ps *PoolSet) Stats() (hits, misses int) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	hits, misses = ps.retiredHits, ps.retiredMisses
	for _, p := range ps.pools {
		h, m := p.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}

// Bytes sums the memory estimate of every idle pool's resident benches.
func (ps *PoolSet) Bytes() int64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	var b int64
	for _, p := range ps.pools {
		b += p.Bytes()
	}
	return b
}

// Len returns the number of compiled benches held across idle pools.
func (ps *PoolSet) Len() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	n := 0
	for _, p := range ps.pools {
		n += p.Len()
	}
	return n
}

// Invalidate drops every compiled bench of every idle pool, returning how
// many benches were dropped. This is the explicit invalidation story for
// long-lived processes: pooled benches key on topology *classes* (cell
// names, states, geometry, solver options — never pointers), so a process
// that changes what those names mean — reloading a cell library, editing
// a tech card — must invalidate, or retained benches would keep simulating
// the old physics. Pools checked out by in-flight workers are unaffected
// and are invalidated the next time they pass through the free list only
// if Invalidate is called again; servers quiesce first (stop admitting,
// drain) for a complete drop.
func (ps *PoolSet) Invalidate() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	n := 0
	for _, p := range ps.pools {
		h, m := p.Stats()
		ps.retiredHits += h
		ps.retiredMisses += m
		n += p.Invalidate()
	}
	// Replace, don't reuse: a fresh slice makes the dropped pools (and
	// their statistics, now folded into retired*) unreachable.
	ps.pools = nil
	return n
}
