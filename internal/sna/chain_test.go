package sna

import (
	"context"
	"testing"

	"stanoise/internal/core"
)

// A chain of quiet, weakly coupled stages must attenuate noise stage over
// stage (the common, healthy case), while the per-stage metrics remain
// physical.
func TestPropagateChainAttenuates(t *testing.T) {
	d := &Design{
		Name: "chain", Tech: "cmos130", Layer: "M4", Segments: 8,
		Clusters: []ClusterSpec{{Name: "seed"}}, // placate Validate; chain uses its own specs
	}
	stage := func(name string, glitchV float64) ClusterSpec {
		return ClusterSpec{
			Name: name,
			Victim: VictimSpec{
				Cell: "NAND2", Drive: 2, NoisyPin: "B",
				GlitchHeightV: glitchV, GlitchWidthPs: 300,
				LengthUm: 200,
			},
			Aggressors: []AggressorSpec{
				{Cell: "INV", Drive: 1, FromState: map[string]bool{"A": false},
					SwitchPin: "A", LengthUm: 200, SpacingFactor: 2},
			},
		}
	}
	an := NewAnalyzer(d, fastOpts(core.Macromodel))
	chain := []ClusterSpec{stage("s1", 0.55), stage("s2", 0), stage("s3", 0)}
	metrics, err := an.PropagateChain(context.Background(), chain)
	if err != nil {
		t.Fatal(err)
	}
	if len(metrics) != 3 {
		t.Fatalf("stages = %d", len(metrics))
	}
	for i, m := range metrics {
		if m.Peak < 0 || m.Peak > 1.3 {
			t.Errorf("stage %d peak %v implausible", i, m.Peak)
		}
	}
	// Strong drivers on short, well-spaced wires: the carried noise must
	// shrink from stage 2 to stage 3 (attenuating regime).
	if metrics[2].Peak >= metrics[1].Peak {
		t.Errorf("chain did not attenuate: %.3f -> %.3f", metrics[1].Peak, metrics[2].Peak)
	}
}

func TestPropagateChainEmpty(t *testing.T) {
	d := sampleDesign()
	an := NewAnalyzer(d, fastOpts(core.Macromodel))
	if _, err := an.PropagateChain(context.Background(), nil); err == nil {
		t.Error("empty chain accepted")
	}
}
