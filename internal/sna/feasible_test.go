package sna

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"

	"stanoise/internal/core"
	"stanoise/internal/sim"
)

// constrainedDesign builds a one-cluster design with the given tech and
// victim cell, carrying the full spread of correlation metadata: named
// aggressors with switching windows, a mutex pair and an implication.
func constrainedDesign(tech, victim, noisyPin string) *Design {
	return &Design{
		Name:     "feas-" + tech + "-" + victim,
		Tech:     tech,
		Layer:    "M4",
		Segments: 8,
		Clusters: []ClusterSpec{{
			Name: "net0",
			Victim: VictimSpec{
				Cell: victim, Drive: 1, NoisyPin: noisyPin,
				GlitchHeightV: 0.5, GlitchWidthPs: 300,
				LengthUm: 400,
			},
			Aggressors: []AggressorSpec{
				{Cell: "INV", Drive: 4, FromState: map[string]bool{"A": false},
					SwitchPin: "A", LengthUm: 400, Side: "left",
					Name: "a", Window: &WindowSpec{EarlyPs: 100, LatePs: 350}},
				{Cell: "INV", Drive: 4, FromState: map[string]bool{"A": false},
					SwitchPin: "A", LengthUm: 400, Side: "right",
					Name: "b", Window: &WindowSpec{EarlyPs: 200, LatePs: 500}},
				{Cell: "INV", Drive: 2, FromState: map[string]bool{"A": false},
					SwitchPin: "A", LengthUm: 300, Side: "right", SpacingFactor: 2,
					Name: "c", Window: &WindowSpec{EarlyPs: 150, LatePs: 450}},
			},
			MutexGroups:  [][]string{{"a", "b"}},
			Implications: []ImplicationSpec{{If: "c", Then: "b"}},
		}},
	}
}

// TestRealisticNeverBelowWorstCase is the subsystem's soundness property
// on real evaluations: for every victim cell and technology, the
// bounded-realistic margin of a constrained cluster must be at least the
// classic worst-case margin — pruning scenarios can only help, never make
// a net look worse.
func TestRealisticNeverBelowWorstCase(t *testing.T) {
	cases := []struct{ tech, victim, pin string }{
		{"cmos130", "INV", "A"},
		{"cmos130", "NAND2", "B"},
		{"cmos090", "INV", "A"},
		{"cmos090", "NAND2", "B"},
	}
	for _, tc := range cases {
		t.Run(tc.tech+"/"+tc.victim, func(t *testing.T) {
			d := constrainedDesign(tc.tech, tc.victim, tc.pin)
			opts := fastOpts(core.Macromodel)
			opts.Feasibility = true
			reports, err := NewAnalyzer(d, opts).Analyze(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range reports {
				f := r.Feasibility
				if f == nil {
					t.Fatalf("cluster %s: no feasibility report in feasibility mode", r.Cluster)
				}
				if f.RealisticMarginV < r.MarginV {
					t.Errorf("cluster %s: realistic margin %v V below classic %v V",
						r.Cluster, f.RealisticMarginV, r.MarginV)
				}
				if f.RealisticFails && !r.Fails {
					t.Errorf("cluster %s: realistic failure without a classic one", r.Cluster)
				}
				// a|b mutex plus c→b kills {a,c}, {a,b,...} supersets: with
				// 3 aggressors the census must show real pruning.
				if f.Combos != 7 || f.Pruned == 0 {
					t.Errorf("cluster %s: census combos=%d pruned=%d, want 7 and > 0",
						r.Cluster, f.Combos, f.Pruned)
				}
				if f.Scenarios == 0 || len(f.Scenario) == 0 {
					t.Errorf("cluster %s: no governing scenario (%d scenarios)", r.Cluster, f.Scenarios)
				}
			}
		})
	}
}

// TestFeasibilityAcceptance is the PR's acceptance gate on a generated
// 32-cluster windowed design: feasibility mode must (a) report a
// realistic margin at least the classic one on every cluster, (b) prune a
// non-zero number of combinations overall, and (c) spend strictly fewer
// reduced-order engine runs than the pessimistic analysis of the same
// design — the filter pays for itself in solves, not just in verdicts.
func TestFeasibilityAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("32-cluster analysis is too slow for -short")
	}
	d := GenerateDesign("accept", 32)

	run := func(feasibility bool) ([]NetReport, sim.Counters) {
		t.Helper()
		opts := fastOpts(core.Macromodel)
		opts.Feasibility = feasibility
		before := sim.Snapshot()
		reports, err := NewAnalyzer(d, opts).Analyze(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return reports, sim.Snapshot().Sub(before)
	}

	feasible, feasCost := run(true)
	pessimistic, pessCost := run(false)

	if len(feasible) != len(d.Clusters) || len(pessimistic) != len(d.Clusters) {
		t.Fatalf("reports: %d feasible, %d pessimistic, want %d",
			len(feasible), len(pessimistic), len(d.Clusters))
	}
	var pruned int64
	for i, r := range feasible {
		f := r.Feasibility
		if f == nil {
			t.Fatalf("cluster %s: no feasibility report", r.Cluster)
		}
		if f.RealisticMarginV < r.MarginV {
			t.Errorf("cluster %s: realistic margin %v V below classic %v V",
				r.Cluster, f.RealisticMarginV, r.MarginV)
		}
		if f.RealisticMarginV < pessimistic[i].MarginV {
			t.Errorf("cluster %s: realistic margin %v V below the pessimistic run's %v V",
				r.Cluster, f.RealisticMarginV, pessimistic[i].MarginV)
		}
		pruned += f.Pruned
	}
	if pruned == 0 {
		t.Error("generated windowed design pruned zero combinations")
	}
	if feasCost.EngineRuns >= pessCost.EngineRuns {
		t.Errorf("feasibility mode ran %d engine solves, pessimistic %d; want strictly fewer",
			feasCost.EngineRuns, pessCost.EngineRuns)
	}
}

// TestFeasibilityOffOmitsNewFields pins the byte-stability contract of
// the legacy mode: with Options.Feasibility off, reports of a design that
// carries correlation metadata marshal without any of the new JSON keys,
// so pre-existing consumers see exactly the schema they always did.
func TestFeasibilityOffOmitsNewFields(t *testing.T) {
	d := GenerateDesign("legacy", 4)
	reports, err := NewAnalyzer(d, fastOpts(core.Macromodel)).Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(reports)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"feasibility"`, `"feas_ns"`, `"realistic_margin_v"`} {
		if strings.Contains(string(b), key) {
			t.Errorf("feasibility off, but reports contain %s:\n%s", key, b)
		}
	}
	for _, r := range reports {
		if r.Feasibility != nil {
			t.Errorf("cluster %s: feasibility report attached with the mode off", r.Cluster)
		}
	}
}

// TestFeasibilityParallelMatchesSerial extends the concurrency contract
// to feasibility mode: a parallel run must produce byte-identical reports
// (feasibility census, governing scenario and realistic margins included)
// to a serial run of the same design.
func TestFeasibilityParallelMatchesSerial(t *testing.T) {
	d := GenerateDesign("feaspar", 6)

	serialOpts := fastOpts(core.Macromodel)
	serialOpts.Feasibility = true
	serialOpts.Workers = 1
	serial, err := NewAnalyzer(d, serialOpts).Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	parOpts := fastOpts(core.Macromodel)
	parOpts.Feasibility = true
	parOpts.Workers = 8
	par, err := NewAnalyzer(d, parOpts).Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	sb, pb := marshalReports(t, serial), marshalReports(t, par)
	if string(sb) != string(pb) {
		t.Errorf("parallel feasibility reports differ from serial:\nserial:   %s\nparallel: %s", sb, pb)
	}
}

// TestFeasReportJSONRoundTrip pins the wire mapping of the realistic
// margin: +Inf marshals as null and unmarshals back to +Inf, finite
// values survive exactly.
func TestFeasReportJSONRoundTrip(t *testing.T) {
	in := NetReport{Cluster: "x", Feasibility: &FeasReport{
		Combos: 7, Feasible: 4, Pruned: 3, Scenarios: 2,
		Scenario: []string{"a", "c"}, RealisticMarginV: math.Inf(1),
	}}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"realistic_margin_v":null`) {
		t.Errorf("+Inf realistic margin not serialised as null: %s", b)
	}
	var out NetReport
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Feasibility == nil || !math.IsInf(out.Feasibility.RealisticMarginV, 1) {
		t.Errorf("round trip lost the +Inf margin: %+v", out.Feasibility)
	}
	if out.Feasibility.Pruned != 3 || len(out.Feasibility.Scenario) != 2 {
		t.Errorf("round trip lost census fields: %+v", out.Feasibility)
	}
}

// badConstraintJSON renders a minimal one-cluster design whose aggressor
// block is the given JSON fragment, for constraint-rejection tests.
func badConstraintJSON(aggressors, extra string) string {
	return fmt.Sprintf(`{"name":"x","tech":"cmos130","layer":"M4","clusters":[
		{"name":"c0","victim":{"cell":"INV","noisy_pin":"A","length_um":100},
		 "aggressors":[%s]%s}]}`, aggressors, extra)
}

// TestParseDesignRejectsBadConstraints holds design validation to the
// typed-rejection contract: malformed or self-contradictory correlation
// metadata fails ParseDesign with a diagnostic naming the offender — it
// must never survive to analysis (or panic a server).
func TestParseDesignRejectsBadConstraints(t *testing.T) {
	agg := func(name, window string) string {
		s := `{"cell":"INV","from_state":{"A":false},"switch_pin":"A","length_um":100`
		if name != "" {
			s += `,"agg_name":"` + name + `"`
		}
		if window != "" {
			s += `,"window":` + window
		}
		return s + `}`
	}
	cases := []struct {
		name string
		doc  string
		want string // substring of the expected diagnostic
	}{
		{"unknown mutex ref",
			badConstraintJSON(agg("a", ""), `,"mutex_groups":[["a","ghost"]]`),
			"unknown aggressor"},
		{"unknown implication ref",
			badConstraintJSON(agg("a", ""), `,"implications":[{"if":"a","then":"ghost"}]`),
			"unknown aggressor"},
		{"duplicate names",
			badConstraintJSON(agg("a", "")+","+agg("a", ""), ``),
			"share the name"},
		{"inverted window",
			badConstraintJSON(agg("a", `{"early_ps":500,"late_ps":100}`), ``),
			"bad window"},
		{"negative window",
			badConstraintJSON(agg("a", `{"early_ps":-50,"late_ps":100}`), ``),
			"bad window"},
		{"dead aggressor",
			// a→b with disjoint windows: any scenario containing a needs b,
			// but their windows can never overlap, so a can never switch.
			badConstraintJSON(
				agg("a", `{"early_ps":100,"late_ps":200}`)+","+agg("b", `{"early_ps":400,"late_ps":500}`),
				`,"implications":[{"if":"a","then":"b"}]`),
			"can never switch"},
		{"empty system",
			// Mutual implication across disjoint windows leaves no feasible
			// combination at all.
			badConstraintJSON(
				agg("a", `{"early_ps":100,"late_ps":200}`)+","+agg("b", `{"early_ps":400,"late_ps":500}`),
				`,"implications":[{"if":"a","then":"b"},{"if":"b","then":"a"}]`),
			"no feasible"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseDesign(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatal("bad constraint metadata accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("diagnostic %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestLegacyClustersSkipFeasibilityValidation pins backwards
// compatibility: a cluster with no correlation metadata is never run
// through the constraint validator, so legacy designs of any shape keep
// parsing exactly as before the feasibility subsystem existed.
func TestLegacyClustersSkipFeasibilityValidation(t *testing.T) {
	d := sampleDesign()
	for _, cs := range d.Clusters {
		if cs.hasFeasMeta() {
			t.Fatalf("cluster %s unexpectedly carries correlation metadata", cs.Name)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("legacy design rejected: %v", err)
	}
}
