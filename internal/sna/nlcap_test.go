package sna

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"

	"stanoise/internal/core"
)

// TestNonlinearCapsOffByteStable pins the flag-off contract at the
// analyzer level: with Options.NonlinearCaps false, two runs of the same
// design produce byte-identical timing-cleared reports and no report
// mentions the model anywhere — the option's existence changes nothing.
func TestNonlinearCapsOffByteStable(t *testing.T) {
	d := GenerateDesign("nlcap-off", 2)
	marshal := func() []byte {
		reports, err := NewAnalyzer(d, fastOpts(core.Macromodel)).Analyze(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for i := range reports {
			reports[i].ClearTiming()
		}
		b, err := json.Marshal(reports)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := marshal(), marshal()
	if !bytes.Equal(a, b) {
		t.Fatal("flag-off analysis is not deterministic")
	}
}

// TestNonlinearCapsChangesVerdicts is the end-to-end differential: the
// same design analysed with and without Options.NonlinearCaps must
// produce measurably different noise numbers (the nonlinear card reaches
// the characterisation and evaluation physics), with the same clusters in
// the same order and every peak still physical.
func TestNonlinearCapsChangesVerdicts(t *testing.T) {
	d := GenerateDesign("nlcap-diff", 2)
	run := func(nl bool) []NetReport {
		opts := fastOpts(core.Macromodel)
		opts.NonlinearCaps = nl
		reports, err := NewAnalyzer(d, opts).Analyze(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return reports
	}
	off, on := run(false), run(true)
	if len(off) != len(on) {
		t.Fatalf("report count changed: %d vs %d", len(off), len(on))
	}
	maxDiff := 0.0
	for i := range off {
		if off[i].Cluster != on[i].Cluster {
			t.Fatalf("cluster order changed: %s vs %s", off[i].Cluster, on[i].Cluster)
		}
		if math.IsNaN(on[i].PeakV) || on[i].PeakV < 0 {
			t.Fatalf("cluster %s: unphysical nl peak %v", on[i].Cluster, on[i].PeakV)
		}
		maxDiff = math.Max(maxDiff, math.Abs(on[i].PeakV-off[i].PeakV))
	}
	// 0.1 mV floor: far above solver noise, far below the ~mV-scale
	// shifts the golden fixture pairs measure.
	if maxDiff < 1e-4 {
		t.Errorf("nonlinear caps moved no peak by more than %.3g V — model invisible end to end", maxDiff)
	}
}
