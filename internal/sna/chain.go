package sna

import (
	"context"
	"fmt"
	"math"

	"stanoise/internal/core"
	"stanoise/internal/wave"
)

// PropagateChain implements the paper's stated future work — "a complete
// methodology for static noise analysis based on our macromodel": noise is
// carried through a pipeline of clusters, where the glitch measured at one
// stage's victim receiver input becomes the input glitch of the next
// stage's victim driver. Each stage is evaluated with the given method at
// its worst-case alignment.
//
// The returned metrics are the receiver-input noise after each stage. A
// chain converges (noise dies out stage over stage) when every stage's
// driver attenuates below unity noise gain; a growing sequence is the
// signature of a propagating functional failure.
//
// When Options.Feasibility is on, each stage carries its *realistic* noise
// forward instead of the classical worst case: the stage's correlation
// constraints are solved, every maximal feasible scenario is evaluated at
// its constrained alignment, and the governing scenario (largest receiver
// peak — there is no NRC in a chain hand-off) feeds the next stage.
// Alignment stops at peak alignment in this mode, mirroring Analyze.
func (a *Analyzer) PropagateChain(ctx context.Context, specs []ClusterSpec) ([]wave.NoiseMetrics, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("sna: empty chain")
	}
	var out []wave.NoiseMetrics
	carry := 0.0  // glitch height into the next stage (V)
	carryW := 0.0 // glitch width into the next stage (s)
	for i, cs := range specs {
		if i > 0 {
			// Feed the previous stage's receiver noise forward.
			cs.Victim.GlitchHeightV = carry
			cs.Victim.GlitchWidthPs = carryW * 1e12
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cl, err := a.design.BuildCluster(cs)
		if err != nil {
			return nil, fmt.Errorf("sna: chain stage %d: %w", i, err)
		}
		method := a.opts.Method
		models, err := cl.BuildModels(ctx, core.ModelOptions{
			LoadCurve: a.opts.LoadCurve,
			Prop:      a.opts.Prop,
			SkipProp:  method != core.Superposition,
			Cache:     a.cache,
		})
		if err != nil {
			return nil, fmt.Errorf("sna: chain stage %d models: %w", i, err)
		}
		eopts := core.EvalOptions{Dt: a.opts.Dt}
		feasible := a.opts.Feasibility && len(cl.Aggressors) > 0
		var fctx *feasContext
		if feasible {
			if fctx, err = newFeasContext(&cs); err != nil {
				return nil, fmt.Errorf("sna: chain stage %d: %w", i, err)
			}
		}
		target, starts := 0.0, []float64(nil)
		if a.opts.Align && len(cl.Aggressors) > 0 {
			if feasible {
				target, starts, err = cl.AlignPeaks(ctx, models, eopts)
			} else {
				err = cl.AlignWorstCase(ctx, models, eopts)
			}
			if err != nil {
				return nil, fmt.Errorf("sna: chain stage %d alignment: %w", i, err)
			}
		}
		if feasible && starts == nil {
			target = math.NaN()
			starts = nominalStarts(cl)
		}
		ev, err := cl.Evaluate(ctx, method, models, eopts)
		if err != nil {
			return nil, fmt.Errorf("sna: chain stage %d evaluation: %w", i, err)
		}
		m := ev.RecvMetrics
		if feasible {
			scenarios, err := evalScenarios(ctx, cl, method, models, eopts, fctx, target, starts, a.opts.Align, ev)
			if err != nil {
				return nil, fmt.Errorf("sna: chain stage %d scenarios: %w", i, err)
			}
			// The governing hand-off is the feasible scenario with the
			// largest receiver peak; it can only be ≤ the classical carry.
			gov := -1
			for j, sc := range scenarios {
				if gov < 0 || sc.ev.RecvMetrics.Peak > scenarios[gov].ev.RecvMetrics.Peak {
					gov = j
				}
			}
			if gov >= 0 {
				m = scenarios[gov].ev.RecvMetrics
			}
		}
		out = append(out, m)
		carry = m.Peak
		// Carry the base width of an equivalent triangle (2·area/peak) so
		// both amplitude and energy survive the hand-off.
		if m.Peak > 0 {
			carryW = 2 * m.Area / m.Peak
		} else {
			carryW = 0
		}
	}
	return out, nil
}
