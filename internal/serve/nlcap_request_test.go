package serve

import (
	"bytes"
	"encoding/json"
	"testing"

	"stanoise/internal/sna"
)

// TestDecodeNonlinearCapsKnob pins the three-way semantics of the
// per-request nonlinear_caps knob against the server default: an absent
// field inherits the default in both polarities, and an explicit value
// overrides it in both directions — the same contract as warm_start and
// predictor.
func TestDecodeNonlinearCapsKnob(t *testing.T) {
	body := func(extra map[string]any) []byte {
		m := map[string]any{"design": sna.SampleDesign()}
		for k, v := range extra {
			m[k] = v
		}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := []struct {
		name     string
		serverOn bool
		extra    map[string]any
		want     bool
	}{
		{"absent_default_off", false, nil, false},
		{"absent_default_on", true, nil, true},
		{"explicit_on_overrides_off", false, map[string]any{"nonlinear_caps": true}, true},
		{"explicit_off_overrides_on", true, map[string]any{"nonlinear_caps": false}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, rerr := decodeRequest(bytes.NewReader(body(tc.extra)), requestLimits{defaultNLCaps: tc.serverOn})
			if rerr != nil {
				t.Fatalf("decode failed: %v", rerr)
			}
			if p.nonlinearCaps != tc.want {
				t.Errorf("nonlinearCaps = %v, want %v", p.nonlinearCaps, tc.want)
			}
		})
	}
	// Wrong JSON type is a typed rejection, not a panic or silent default.
	if _, rerr := decodeRequest(bytes.NewReader(body(map[string]any{"nonlinear_caps": "yes"})), requestLimits{}); rerr == nil {
		t.Error(`"nonlinear_caps": "yes" decoded without error`)
	}
}
