package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"stanoise/internal/sna"
)

// TestFeasibilityOverTheWire drives the feasibility filter end to end
// through the HTTP surface: a request with the feasibility knob on gets
// report records carrying the feasibility census with real pruning (the
// sample design's mutexed bus pair), /statsz accumulates the process-wide
// feas and engine-run counters, and a request without the knob streams
// records with none of the new keys — the legacy wire schema untouched.
func TestFeasibilityOverTheWire(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{Analysis: fastAnalysis()}))
	defer ts.Close()

	recs := postAnalyze(t, ts.Client(), ts.URL, requestBody(t, sna.SampleDesign(), map[string]any{
		"feasibility": true,
	}))
	var pruned int64
	var reports int
	for _, rec := range recs {
		if rec.Type != "report" {
			continue
		}
		reports++
		var rep sna.NetReport
		if err := json.Unmarshal(rec.Report, &rep); err != nil {
			t.Fatal(err)
		}
		f := rep.Feasibility
		if f == nil {
			t.Fatalf("cluster %s: no feasibility object in a feasibility-mode record", rep.Cluster)
		}
		if f.RealisticMarginV < rep.MarginV {
			t.Errorf("cluster %s: realistic margin %v V below classic %v V",
				rep.Cluster, f.RealisticMarginV, rep.MarginV)
		}
		pruned += f.Pruned
	}
	if reports == 0 {
		t.Fatal("no report records streamed")
	}
	if pruned == 0 {
		t.Error("sample design's mutexed bus pair pruned nothing")
	}

	resp, err := ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Feas.Pruned == 0 || stats.Feas.Clusters == 0 {
		t.Errorf("feas stats %+v show no filter activity", stats.Feas)
	}
	if stats.Sim.EngineRuns == 0 {
		t.Error("engine-run counter missing from /statsz after an analysis")
	}

	// The same design without the knob: byte-level absence of every new key.
	resp2, err := ts.Client().Post(ts.URL+"/v1/analyze", "application/json",
		bytes.NewReader(requestBody(t, sna.SampleDesign(), nil)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"feasibility"`, `"feas_ns"`, `"realistic_margin_v"`} {
		if strings.Contains(string(raw), key) {
			t.Errorf("legacy-mode stream contains %s:\n%s", key, raw)
		}
	}
}

// TestFeasibilityServerDefault pins the -feasibility server knob: with
// Config.Analysis.Feasibility set, a request that says nothing gets
// feasibility records, and an explicit {"feasibility": false} opts back
// out per request.
func TestFeasibilityServerDefault(t *testing.T) {
	cfg := Config{Analysis: fastAnalysis()}
	cfg.Analysis.Feasibility = true
	ts := httptest.NewServer(NewServer(cfg))
	defer ts.Close()

	recs := postAnalyze(t, ts.Client(), ts.URL, requestBody(t, sna.SampleDesign(), nil))
	seen := false
	for _, rec := range recs {
		if rec.Type != "report" {
			continue
		}
		var rep sna.NetReport
		if err := json.Unmarshal(rec.Report, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Feasibility != nil {
			seen = true
		}
	}
	if !seen {
		t.Error("server-side feasibility default did not reach the stream")
	}

	recs = postAnalyze(t, ts.Client(), ts.URL, requestBody(t, sna.SampleDesign(), map[string]any{
		"feasibility": false,
	}))
	for _, rec := range recs {
		if rec.Type == "report" && bytes.Contains(rec.Report, []byte(`"feasibility"`)) {
			t.Errorf("per-request opt-out ignored: %s", rec.Report)
		}
	}
}

// TestBadConstraintDesignRejected holds the server to the typed-rejection
// contract for correlation metadata: a design whose constraints reference
// an unknown aggressor — or are self-contradictory — draws a 400 with the
// stable "bad_design" code before any analysis runs, never a panic or a
// mid-stream failure.
func TestBadConstraintDesignRejected(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{Analysis: fastAnalysis()}))
	defer ts.Close()

	bad := func(mutate func(d *sna.Design)) []byte {
		d := sna.SampleDesign()
		mutate(d)
		m := map[string]any{"design": d, "feasibility": true}
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := []struct {
		name string
		body []byte
	}{
		{"unknown mutex ref", bad(func(d *sna.Design) {
			d.Clusters[0].MutexGroups = [][]string{{"ghost"}}
		})},
		{"unknown implication ref", bad(func(d *sna.Design) {
			d.Clusters[0].Implications = []sna.ImplicationSpec{{If: "ghost", Then: "agg0"}}
		})},
		{"inverted window", bad(func(d *sna.Design) {
			d.Clusters[0].Aggressors[0].Window = &sna.WindowSpec{EarlyPs: 500, LatePs: 100}
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := ts.Client().Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, b)
			}
			var e struct {
				Error RequestError `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatal(err)
			}
			if e.Error.Code != "bad_design" {
				t.Errorf("code %q, want bad_design", e.Error.Code)
			}
		})
	}
}
