package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"stanoise/internal/core"
	"stanoise/internal/sna"
	"stanoise/internal/tech"
)

// RequestError is the typed outcome of rejecting a request before any
// analysis runs: an HTTP status plus a stable machine-readable code. It is
// what POST /v1/analyze returns as the JSON error body for 4xx responses,
// so clients can branch on Code instead of parsing prose.
type RequestError struct {
	// Status is the HTTP status the server responds with (400, 413, 429).
	Status int `json:"-"`
	// Code is the stable error identifier: "bad_json", "bad_design",
	// "bad_method", "bad_policy", "bad_budget", "bad_corner",
	// "empty_design", "too_many_clusters", "body_too_large", "overloaded".
	Code string `json:"code"`
	// Message is the human-readable cause.
	Message string `json:"message"`
}

// Error implements error.
func (e *RequestError) Error() string {
	return fmt.Sprintf("serve: %s: %s", e.Code, e.Message)
}

// badRequest builds a 400-class RequestError.
func badRequest(code, format string, args ...any) *RequestError {
	return &RequestError{Status: http.StatusBadRequest, Code: code, Message: fmt.Sprintf(format, args...)}
}

// analyzeRequest is the wire form of POST /v1/analyze. The design field
// embeds the same JSON schema snacheck -design consumes (and -sample
// emits); every other field overrides one server default for this request
// only. Unknown fields are rejected, so typos fail loudly instead of
// silently running with defaults.
type analyzeRequest struct {
	// Design is the embedded design document (the snacheck JSON schema).
	Design json.RawMessage `json:"design"`
	// Method selects the victim model: "macromodel" (default),
	// "superposition", "zolotov" or "golden".
	Method string `json:"method,omitempty"`
	// Policy selects the error policy: "fail-fast" (default) or "continue".
	Policy string `json:"policy,omitempty"`
	// Align toggles the worst-case alignment search; default true.
	Align *bool `json:"align,omitempty"`
	// DtPs is the engine timestep in picoseconds; default 2.
	DtPs float64 `json:"dt_ps,omitempty"`
	// DeadlineMs is this request's analysis budget in milliseconds; 0
	// selects the server default, and the server maximum always clamps it.
	DeadlineMs float64 `json:"deadline_ms,omitempty"`
	// MaxClusters is the client's own cluster budget: a design with more
	// clusters is rejected with 413 before any analysis. 0 means no
	// client-side budget (the server-side budget still applies).
	MaxClusters int `json:"max_clusters,omitempty"`
	// Deterministic omits run-varying fields (per-report timings) from the
	// streamed records, mirroring snacheck -deterministic.
	Deterministic bool `json:"deterministic,omitempty"`
	// WarmStart toggles Newton-continuation characterisation sweeps for
	// this request; default is the server's configured setting.
	WarmStart *bool `json:"warm_start,omitempty"`
	// Predictor toggles polynomial predictor warm-starting of transient
	// Newton solves in this request's characterisation sweeps; default is
	// the server's configured setting.
	Predictor *bool `json:"predictor,omitempty"`
	// Feasibility toggles the aggressor-correlation filter for this
	// request: switching windows and logic constraints in the design prune
	// unrealizable combinations and every report carries a
	// bounded-realistic margin next to the classic one. Default is the
	// server's configured setting (off unless the operator enables it).
	Feasibility *bool `json:"feasibility,omitempty"`
	// Corner names the operating corner this request analyses at — one of
	// the standard corner names (tt/ff/ss/fs/sf; see tech.CornerByName).
	// An unknown name is a "bad_corner" 400. Empty selects the server's
	// configured default corner (nominal unless the operator set one).
	Corner string `json:"corner,omitempty"`
	// NonlinearCaps toggles the NLMOS voltage-dependent gate-charge model
	// for this request (sna.Options.NonlinearCaps); default is the
	// server's configured setting.
	NonlinearCaps *bool `json:"nonlinear_caps,omitempty"`
}

// parsedRequest is a decoded, validated, defaulted analyzeRequest, ready
// to run.
type parsedRequest struct {
	design        *sna.Design
	method        core.Method
	policy        sna.ErrorPolicy
	align         bool
	dt            float64 // seconds
	deadline      time.Duration
	deterministic bool
	warmStart     bool
	predictor     bool
	feasibility   bool
	nonlinearCaps bool
	corner        tech.Corner
}

// requestLimits are the server-side budgets decodeRequest enforces.
type requestLimits struct {
	maxClusters     int           // 0 = unlimited
	defaultDeadline time.Duration // 0 = no deadline unless requested
	maxDeadline     time.Duration // 0 = unclamped
	defaultWarm     bool
	defaultPred     bool
	defaultAlign    bool
	defaultFeas     bool
	defaultNLCaps   bool
	defaultCorner   tech.Corner
}

// finitePositive reports whether v is usable as a strictly positive
// budget: NaN, infinities, zero and negatives are all rejected. JSON
// cannot spell NaN or Inf directly, but out-of-range literals and hostile
// decoders make the explicit guard worth its one line.
func finitePositive(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

// decodeRequest parses and validates one analyze request body against the
// server budgets, returning a typed RequestError (never a bare error) on
// any rejection. It never panics on malformed input — FuzzRequestDecode
// holds it to that.
func decodeRequest(r io.Reader, lim requestLimits) (*parsedRequest, *RequestError) {
	var req analyzeRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			return nil, &RequestError{
				Status: http.StatusRequestEntityTooLarge, Code: "body_too_large",
				Message: fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit),
			}
		}
		return nil, badRequest("bad_json", "decoding request: %v", err)
	}
	// A second document after the first is a framing error, not extra data
	// to ignore.
	if dec.More() {
		return nil, badRequest("bad_json", "trailing data after request object")
	}
	if len(req.Design) == 0 {
		return nil, badRequest("empty_design", "request carries no design")
	}

	p := &parsedRequest{
		align:         lim.defaultAlign,
		warmStart:     lim.defaultWarm,
		predictor:     lim.defaultPred,
		feasibility:   lim.defaultFeas,
		nonlinearCaps: lim.defaultNLCaps,
		deterministic: req.Deterministic,
		deadline:      lim.defaultDeadline,
	}

	design, err := sna.ParseDesign(bytes.NewReader(req.Design))
	if err != nil {
		return nil, badRequest("bad_design", "%v", err)
	}
	p.design = design

	p.method = core.Macromodel
	if req.Method != "" {
		m, err := core.ParseMethod(req.Method)
		if err != nil {
			return nil, badRequest("bad_method", "%v", err)
		}
		p.method = m
	}
	if req.Policy != "" {
		pol, err := sna.ParseErrorPolicy(req.Policy)
		if err != nil {
			return nil, badRequest("bad_policy", "%v", err)
		}
		p.policy = pol
	}
	if req.Align != nil {
		p.align = *req.Align
	}
	if req.WarmStart != nil {
		p.warmStart = *req.WarmStart
	}
	if req.Predictor != nil {
		p.predictor = *req.Predictor
	}
	if req.Feasibility != nil {
		p.feasibility = *req.Feasibility
	}
	if req.NonlinearCaps != nil {
		p.nonlinearCaps = *req.NonlinearCaps
	}
	p.corner = lim.defaultCorner
	if req.Corner != "" {
		c, err := tech.CornerByName(req.Corner)
		if err != nil {
			return nil, badRequest("bad_corner", "%v", err)
		}
		p.corner = c
	}

	p.dt = 2e-12
	if req.DtPs != 0 {
		if !finitePositive(req.DtPs) {
			return nil, badRequest("bad_budget", "dt_ps must be a finite positive number, got %v", req.DtPs)
		}
		p.dt = req.DtPs * 1e-12
	}
	if req.DeadlineMs != 0 {
		if !finitePositive(req.DeadlineMs) {
			return nil, badRequest("bad_budget", "deadline_ms must be a finite positive number, got %v", req.DeadlineMs)
		}
		p.deadline = time.Duration(req.DeadlineMs * float64(time.Millisecond))
	}
	if lim.maxDeadline > 0 && (p.deadline <= 0 || p.deadline > lim.maxDeadline) {
		p.deadline = lim.maxDeadline
	}

	if req.MaxClusters < 0 {
		return nil, badRequest("bad_budget", "max_clusters must be >= 0, got %d", req.MaxClusters)
	}
	budget := lim.maxClusters
	if req.MaxClusters > 0 && (budget == 0 || req.MaxClusters < budget) {
		budget = req.MaxClusters
	}
	if budget > 0 && len(design.Clusters) > budget {
		return nil, &RequestError{
			Status: http.StatusRequestEntityTooLarge, Code: "too_many_clusters",
			Message: fmt.Sprintf("design has %d clusters, budget is %d", len(design.Clusters), budget),
		}
	}
	return p, nil
}
