package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"stanoise/internal/sna"
)

// testGate is a controllable fleet gate: budget -1 passes everything
// through, 0 blocks every cluster, n > 0 admits n clusters then blocks.
// Blocked acquirers honour their context, like the production chanGate.
type testGate struct {
	mu     sync.Mutex
	budget int
}

// Acquire implements sna.Gate.
func (g *testGate) Acquire(ctx context.Context) error {
	for {
		g.mu.Lock()
		b := g.budget
		if b != 0 {
			if b > 0 {
				g.budget--
			}
			g.mu.Unlock()
			return nil
		}
		g.mu.Unlock()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// Release implements sna.Gate (test slots are not returned — setBudget is
// the only refill).
func (g *testGate) Release() {}

// setBudget replaces the remaining cluster budget.
func (g *testGate) setBudget(n int) {
	g.mu.Lock()
	g.budget = n
	g.mu.Unlock()
}

// TestAdmissionControlRejectsWithRetryAfter saturates a 2-slot server with
// requests parked on a blocked fleet gate and asserts the third request is
// turned away immediately — 429, Retry-After, stable error code — while
// the parked requests, once unblocked, still finish with complete streams.
func TestAdmissionControlRejectsWithRetryAfter(t *testing.T) {
	gate := &testGate{} // budget 0: every cluster blocks
	opts := fastAnalysis()
	opts.Gate = gate
	srv := NewServer(Config{Analysis: opts, MaxInFlight: 2, FleetWorkers: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := requestBody(t, sna.SampleDesign(), map[string]any{"deterministic": true})

	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := ts.Client().Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- result{}
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			results <- result{resp.StatusCode, raw}
		}()
	}
	waitFor(t, 30*time.Second, "both requests to be admitted", func() bool {
		return srv.Stats().Requests.InFlight == 2
	})

	// Saturated: the next request must bounce, not queue.
	resp, err := ts.Client().Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated POST: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without a Retry-After header")
	}
	var e struct {
		Error RequestError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error.Code != "overloaded" {
		t.Errorf("429 body code %q (decode err %v), want overloaded", e.Error.Code, err)
	}
	resp.Body.Close()

	// Unblock the fleet: the admitted requests must run to completion.
	gate.setBudget(-1)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("admitted request finished with status %d", r.status)
		}
		recs := readRecords(t, bytes.NewReader(r.body))
		if len(recs) == 0 || recs[len(recs)-1].Type != "summary" {
			t.Fatalf("admitted request did not stream to a summary: %+v", recs)
		}
	}
	st := srv.Stats().Requests
	if st.Accepted != 2 || st.Rejected != 1 || st.Completed != 2 {
		t.Errorf("request stats %+v, want 2 accepted, 1 rejected, 2 completed", st)
	}
}

// TestDeadlineYieldsPartialResults gives a request a deadline it cannot
// meet — the fleet gate admits exactly one of its two clusters — and
// asserts the stream carries the completed verdict followed by the typed
// terminal deadline record, with the deadline counted.
func TestDeadlineYieldsPartialResults(t *testing.T) {
	gate := &testGate{budget: -1}
	opts := fastAnalysis()
	opts.Gate = gate
	srv := NewServer(Config{Analysis: opts, FleetWorkers: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	d := sna.SampleDesign()

	// Warm the shared cache so the admitted cluster analyses in
	// milliseconds and the test's deadline dominates its own runtime; skip
	// the alignment search in both requests so even -race builds evaluate
	// the admitted cluster well inside the deadline.
	postAnalyze(t, ts.Client(), ts.URL, requestBody(t, d, map[string]any{"align": false}))

	gate.setBudget(1)
	body := requestBody(t, d, map[string]any{"deterministic": true, "align": false, "deadline_ms": 2500})
	resp, err := ts.Client().Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	recs := readRecords(t, resp.Body)

	var nReports int
	for _, rec := range recs {
		if rec.Type == "report" {
			nReports++
		}
	}
	if nReports != 1 {
		t.Errorf("%d reports streamed before the deadline, want exactly 1 (the admitted cluster)", nReports)
	}
	last := recs[len(recs)-1]
	if last.Type != "terminal" {
		t.Fatalf("terminal record type %q, want terminal", last.Type)
	}
	var te terminalError
	if err := json.Unmarshal(last.Error, &te); err != nil {
		t.Fatal(err)
	}
	if te.Code != "deadline" {
		t.Errorf("terminal code %q, want deadline", te.Code)
	}
	if n := srv.Stats().Requests.DeadlineExpired; n != 1 {
		t.Errorf("deadline counter %d, want 1", n)
	}
}
