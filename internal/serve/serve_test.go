package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"stanoise/internal/charlib"
	"stanoise/internal/core"
	"stanoise/internal/nrc"
	"stanoise/internal/sna"
)

// fastAnalysis returns the reduced-quality characterisation grids the sna
// tests use, so server tests measure protocol behaviour rather than
// production-grid sweep time. Method/align/dt are per-request concerns.
func fastAnalysis() sna.Options {
	return sna.Options{
		LoadCurve: charlib.LoadCurveOptions{NVin: 41, NVout: 41},
		Prop: charlib.PropOptions{
			Heights: []float64{0.3, 0.6, 0.9, 1.2},
			Widths:  []float64{150e-12, 400e-12, 800e-12},
			Loads:   []float64{30e-15, 80e-15, 160e-15},
			Dt:      2e-12,
		},
		NRC: nrc.Options{Widths: []float64{100e-12, 300e-12, 900e-12}, Dt: 2e-12},
	}
}

// directOpts is the exact option set a server request with defaults plus
// deterministic mode resolves to, for direct-vs-served comparisons.
func directOpts() sna.Options {
	o := fastAnalysis()
	o.Method = core.Macromodel
	o.Align = true
	o.Dt = 2e-12
	return o
}

// requestBody marshals an analyze request around the design.
func requestBody(t *testing.T, d *sna.Design, extra map[string]any) []byte {
	t.Helper()
	m := map[string]any{"design": d}
	for k, v := range extra {
		m[k] = v
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// rawRecord is the decoded form of one streamed NDJSON record.
type rawRecord struct {
	Type    string          `json:"type"`
	Report  json.RawMessage `json:"report"`
	Error   json.RawMessage `json:"error"`
	Summary json.RawMessage `json:"summary"`
	Errors  int             `json:"errors"`
}

// readRecords decodes an NDJSON stream.
func readRecords(t *testing.T, r io.Reader) []rawRecord {
	t.Helper()
	var out []rawRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec rawRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// postAnalyze posts the body and returns the parsed record stream.
func postAnalyze(t *testing.T, client *http.Client, url string, body []byte) []rawRecord {
	t.Helper()
	resp, err := client.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/analyze: status %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q, want application/x-ndjson", ct)
	}
	return readRecords(t, resp.Body)
}

// reportsByCluster indexes the compacted report payloads of a stream.
func reportsByCluster(t *testing.T, recs []rawRecord) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, rec := range recs {
		if rec.Type != "report" {
			continue
		}
		var rep sna.NetReport
		if err := json.Unmarshal(rec.Report, &rep); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := json.Compact(&buf, rec.Report); err != nil {
			t.Fatal(err)
		}
		out[rep.Cluster] = buf.String()
	}
	return out
}

// directReports runs the analysis the server is expected to mirror and
// returns each report's canonical (timing-cleared, compact) JSON by
// cluster name.
func directReports(t *testing.T, d *sna.Design) map[string]string {
	t.Helper()
	reports, err := sna.NewAnalyzer(d, directOpts()).Analyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for i := range reports {
		reports[i].ClearTiming()
		b, err := json.Marshal(reports[i])
		if err != nil {
			t.Fatal(err)
		}
		out[reports[i].Cluster] = string(b)
	}
	return out
}

// TestServedVerdictsMatchDirectAnalyze is the wire-fidelity contract: the
// report records a deterministic server request streams are byte-identical
// (per cluster, compacted) to a direct Analyze call's marshalled reports,
// and the terminal summary matches Summarize.
func TestServedVerdictsMatchDirectAnalyze(t *testing.T) {
	d := sna.SampleDesign()
	want := directReports(t, d)

	ts := httptest.NewServer(NewServer(Config{Analysis: fastAnalysis()}))
	defer ts.Close()
	recs := postAnalyze(t, ts.Client(), ts.URL, requestBody(t, d, map[string]any{"deterministic": true}))

	got := reportsByCluster(t, recs)
	if len(got) != len(want) {
		t.Fatalf("served %d reports, want %d", len(got), len(want))
	}
	for cl, w := range want {
		if got[cl] != w {
			t.Errorf("cluster %s:\nserved %s\ndirect %s", cl, got[cl], w)
		}
	}
	last := recs[len(recs)-1]
	if last.Type != "summary" {
		t.Fatalf("terminal record type %q, want summary", last.Type)
	}
	var sum sna.Summary
	if err := json.Unmarshal(last.Summary, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Total != len(want) || sum.Failing < 0 {
		t.Errorf("summary %+v inconsistent with %d reports", sum, len(want))
	}
}

// TestConcurrentClientsGetIdenticalVerdicts hammers one server with
// concurrent clients (run under -race in CI): every client must receive
// exactly the direct-analysis verdicts, byte for byte, regardless of
// interleaving across the shared cache, rig pools and fleet gate.
func TestConcurrentClientsGetIdenticalVerdicts(t *testing.T) {
	d := sna.SampleDesign()
	want := directReports(t, d)
	ts := httptest.NewServer(NewServer(Config{Analysis: fastAnalysis(), MaxInFlight: 16}))
	defer ts.Close()
	body := requestBody(t, d, map[string]any{"deterministic": true})

	const clients = 4
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			errs <- func() error {
				resp, err := ts.Client().Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
				if err != nil {
					return err
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					return fmt.Errorf("status %d", resp.StatusCode)
				}
				var got map[string]string
				raw, err := io.ReadAll(resp.Body)
				if err != nil {
					return err
				}
				got = map[string]string{}
				for _, line := range bytes.Split(raw, []byte("\n")) {
					line = bytes.TrimSpace(line)
					if len(line) == 0 {
						continue
					}
					var rec rawRecord
					if err := json.Unmarshal(line, &rec); err != nil {
						return fmt.Errorf("bad record %q: %v", line, err)
					}
					if rec.Type != "report" {
						continue
					}
					var rep sna.NetReport
					if err := json.Unmarshal(rec.Report, &rep); err != nil {
						return err
					}
					var buf bytes.Buffer
					if err := json.Compact(&buf, rec.Report); err != nil {
						return err
					}
					got[rep.Cluster] = buf.String()
				}
				if len(got) != len(want) {
					return fmt.Errorf("got %d reports, want %d", len(got), len(want))
				}
				for cl, w := range want {
					if got[cl] != w {
						return fmt.Errorf("cluster %s diverged:\nserved %s\ndirect %s", cl, got[cl], w)
					}
				}
				return nil
			}()
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}

// TestErrorPoliciesOverTheWire runs a design whose first cluster names an
// unknown cell (a StageBuild failure) under both policies: continue must
// stream the failure and still analyse the healthy cluster; fail-fast must
// stream the failure as well, and both end in a summary accounting for it.
func TestErrorPoliciesOverTheWire(t *testing.T) {
	d := sna.SampleDesign()
	d.Clusters[0].Victim.Cell = "XOR9" // unknown cell: StageBuild failure
	ts := httptest.NewServer(NewServer(Config{Analysis: fastAnalysis()}))
	defer ts.Close()

	for _, policy := range []string{"continue", "fail-fast"} {
		recs := postAnalyze(t, ts.Client(), ts.URL,
			requestBody(t, d, map[string]any{"policy": policy, "deterministic": true}))
		var nReports, nErrors int
		var errPayload struct {
			Cluster string `json:"cluster"`
			Stage   string `json:"stage"`
			Error   string `json:"error"`
		}
		for _, rec := range recs {
			switch rec.Type {
			case "report":
				nReports++
			case "cluster_error":
				nErrors++
				if err := json.Unmarshal(rec.Error, &errPayload); err != nil {
					t.Fatal(err)
				}
			}
		}
		if nErrors != 1 {
			t.Fatalf("policy %s: %d cluster_error records, want 1", policy, nErrors)
		}
		if errPayload.Cluster != d.Clusters[0].Name || errPayload.Stage != "build" {
			t.Errorf("policy %s: error record %+v, want cluster %s stage build",
				policy, errPayload, d.Clusters[0].Name)
		}
		if policy == "continue" && nReports != len(d.Clusters)-1 {
			t.Errorf("continue: %d reports, want %d (every healthy cluster)", nReports, len(d.Clusters)-1)
		}
		last := recs[len(recs)-1]
		if last.Type != "summary" || last.Errors != 1 {
			t.Errorf("policy %s: terminal record %+v, want summary with errors=1", policy, last)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClientDisconnectCancelsAndLeaksNothing drops the client mid-stream
// and asserts the server observes the disconnect (canceled counter), stops
// the analysis, and settles back to its pre-request goroutine count — the
// leak-free contract for long-lived serving.
func TestClientDisconnectCancelsAndLeaksNothing(t *testing.T) {
	srv := NewServer(Config{Analysis: fastAnalysis()})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body := requestBody(t, sna.GenerateDesign("leak", 6), map[string]any{"deterministic": true})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read exactly one streamed record, then vanish.
	if _, err := bufio.NewReader(resp.Body).ReadBytes('\n'); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	waitFor(t, 30*time.Second, "server to count the disconnect", func() bool {
		return srv.canceled.Load() == 1
	})
	if tr, ok := ts.Client().Transport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	waitFor(t, 30*time.Second, "goroutines to settle", func() bool {
		return runtime.NumGoroutine() <= base+3
	})
	if got := srv.Stats().Requests; got.InFlight != 0 || got.Canceled != 1 {
		t.Errorf("request stats %+v, want 0 in flight and 1 canceled", got)
	}
}

// TestSSEFraming asserts the Accept-negotiated Server-Sent-Events framing:
// same records, data:-prefixed, with the SSE content type.
func TestSSEFraming(t *testing.T) {
	d := sna.SampleDesign()
	d.Clusters = nil // empty design: instant, summary-only stream
	ts := httptest.NewServer(NewServer(Config{Analysis: fastAnalysis()}))
	defer ts.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", bytes.NewReader(requestBody(t, d, nil)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q, want text/event-stream", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if !strings.HasPrefix(body, "data: {\"type\":\"summary\"") {
		t.Fatalf("SSE stream does not open with a data: summary frame: %q", body)
	}
	if !strings.HasSuffix(body, "\n\n") {
		t.Fatalf("SSE frame not terminated by a blank line: %q", body)
	}
}

// TestOperationalEndpoints covers healthz, statsz and invalidate: the
// probe answers, the stats document accounts for served requests, and
// invalidation drops the pooled benches it reports.
func TestOperationalEndpoints(t *testing.T) {
	srv := NewServer(Config{Analysis: fastAnalysis()})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(hb)) != `{"status":"ok"}` {
		t.Fatalf("healthz: %d %q", resp.StatusCode, hb)
	}

	postAnalyze(t, ts.Client(), ts.URL, requestBody(t, sna.SampleDesign(), nil))

	resp, err = ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Requests.Accepted != 1 || stats.Requests.Completed != 1 {
		t.Errorf("request stats %+v, want 1 accepted and completed", stats.Requests)
	}
	if stats.Cache.Misses == 0 {
		t.Error("cache stats show no characterisation at all")
	}
	if stats.RigPools.Benches == 0 {
		t.Error("no pooled benches after an analysis")
	}

	resp, err = ts.Client().Post(ts.URL+"/invalidate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var inv struct {
		Dropped int `json:"dropped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&inv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if inv.Dropped == 0 {
		t.Error("invalidate dropped nothing")
	}
	if n := srv.Stats().RigPools.Benches; n != 0 {
		t.Errorf("%d benches resident after invalidate", n)
	}
}

// TestRequestValidationOverTheWire spot-checks the typed 4xx surface end
// to end (decodeRequest's full matrix lives in the fuzz target and unit
// cases): bad JSON, oversized cluster budgets and oversized bodies each
// map to their stable code.
func TestRequestValidationOverTheWire(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{
		Analysis:     fastAnalysis(),
		MaxClusters:  1,
		MaxBodyBytes: 1 << 20,
	}))
	defer ts.Close()

	post := func(body []byte) (int, string) {
		resp, err := ts.Client().Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e struct {
			Error RequestError `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("error body did not decode: %v", err)
		}
		return resp.StatusCode, e.Error.Code
	}

	if st, code := post([]byte("{not json")); st != http.StatusBadRequest || code != "bad_json" {
		t.Errorf("malformed body: %d %s, want 400 bad_json", st, code)
	}
	if st, code := post(requestBody(t, sna.SampleDesign(), nil)); st != http.StatusRequestEntityTooLarge || code != "too_many_clusters" {
		t.Errorf("over-budget design: %d %s, want 413 too_many_clusters", st, code)
	}
	big := []byte(`{"design":"` + strings.Repeat("a", 2<<20) + `"}`)
	if st, code := post(big); st != http.StatusRequestEntityTooLarge || code != "body_too_large" {
		t.Errorf("oversized body: %d %s, want 413 body_too_large", st, code)
	}
}
