package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"stanoise/internal/sna"
	"stanoise/internal/tech"
)

// reject fires one request at a saturated server and returns the
// Retry-After hint of the expected 429.
func reject(t *testing.T, ts *httptest.Server, body []byte) int {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated POST: status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("unparseable Retry-After %q: %v", resp.Header.Get("Retry-After"), err)
	}
	return ra
}

// TestRetryAfterTracksSaturation holds a 1-slot server saturated and
// asserts the Retry-After hint climbs the backoff ladder — 1, 2, 4 —
// clamps at the configured cap, and drops back to 1 once a slot frees:
// the hint tracks observed admission pressure, not a constant.
func TestRetryAfterTracksSaturation(t *testing.T) {
	gate := &testGate{} // budget 0: the admitted request parks on its first cluster
	opts := fastAnalysis()
	opts.Gate = gate
	srv := NewServer(Config{
		Analysis: opts, MaxInFlight: 1, FleetWorkers: -1,
		RetryAfterCap: 4 * time.Second,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := requestBody(t, sna.SampleDesign(), map[string]any{"deterministic": true})

	done := make(chan []byte, 1)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- nil
			return
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		done <- raw
	}()
	waitFor(t, 30*time.Second, "the request to be admitted", func() bool {
		return srv.Stats().Requests.InFlight == 1
	})

	// Persistent saturation: consecutive rejections climb 1, 2, 4 and stay
	// clamped at the 4 s cap.
	for i, want := range []int{1, 2, 4, 4, 4} {
		if got := reject(t, ts, body); got != want {
			t.Fatalf("rejection %d: Retry-After %d, want %d", i+1, got, want)
		}
	}

	// Release the slot: the admitted request completes, pressure is
	// relieved, and the next saturated rejection starts from 1 s again.
	gate.setBudget(-1)
	if raw := <-done; raw == nil {
		t.Fatal("admitted request failed")
	}
	waitFor(t, 30*time.Second, "the slot to free", func() bool {
		return srv.Stats().Requests.InFlight == 0
	})
	done2 := make(chan struct{})
	gate.setBudget(0)
	go func() {
		resp, err := ts.Client().Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		close(done2)
	}()
	waitFor(t, 30*time.Second, "the second request to be admitted", func() bool {
		return srv.Stats().Requests.InFlight == 1
	})
	if got := reject(t, ts, body); got != 1 {
		t.Fatalf("post-release rejection: Retry-After %d, want the ladder reset to 1", got)
	}
	gate.setBudget(-1)
	<-done2
}

// TestRequestCornerSelection exercises the per-request corner knob end to
// end: an unknown corner is a typed bad_corner 400, a named corner tags
// every streamed report, and the default (cornerless) request's reports
// carry no corner key — the legacy wire schema.
func TestRequestCornerSelection(t *testing.T) {
	srv := NewServer(Config{Analysis: fastAnalysis()})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	d := sna.SampleDesign()

	resp, err := ts.Client().Post(ts.URL+"/v1/analyze", "application/json",
		bytes.NewReader(requestBody(t, d, map[string]any{"corner": "slowish"})))
	if err != nil {
		t.Fatal(err)
	}
	var e struct {
		Error RequestError `json:"error"`
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown corner: status %d, want 400", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error.Code != "bad_corner" {
		t.Fatalf("unknown corner body code %q (decode err %v), want bad_corner", e.Error.Code, err)
	}
	resp.Body.Close()

	for _, rec := range postAnalyze(t, ts.Client(), ts.URL, requestBody(t, d, map[string]any{"corner": "ss"})) {
		if rec.Type != "report" {
			continue
		}
		var rep sna.NetReport
		if err := json.Unmarshal(rec.Report, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Corner != "ss" {
			t.Fatalf("ss-corner report tagged %q", rep.Corner)
		}
	}
	for _, rec := range postAnalyze(t, ts.Client(), ts.URL, requestBody(t, d, nil)) {
		if rec.Type == "report" && bytes.Contains(rec.Report, []byte(`"corner"`)) {
			t.Fatalf("cornerless report grew a corner key: %s", rec.Report)
		}
	}

	// The per-corner /statsz block must now attribute work to both tags.
	stats := srv.Stats()
	if _, ok := stats.Corners["ss"]; !ok {
		t.Fatalf("/statsz corners block missing ss: %+v", stats.Corners)
	}
	if tech.Tech130().CornerTag() != "nominal" {
		t.Fatal("nominal tag changed")
	}
	if stats.Corners["ss"].Sim.DCSolves == 0 {
		t.Fatalf("ss corner recorded no solver work: %+v", stats.Corners["ss"])
	}
}
