package serve

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"stanoise/internal/sna"
)

// fuzzLimits is the budget configuration the fuzz target decodes against:
// tight enough that budget-rejection paths are reachable.
func fuzzLimits() requestLimits {
	return requestLimits{
		maxClusters:     4,
		defaultDeadline: time.Second,
		maxDeadline:     time.Minute,
		defaultAlign:    true,
	}
}

// FuzzRequestDecode holds the request decoder to its contract on
// arbitrary input: never panic, never return both (or neither) of result
// and error, and classify every rejection as a typed 4xx RequestError
// with a stable non-empty code. The seed corpus covers the interesting
// malformed shapes: truncated bodies, unknown fields, malformed grids,
// NaN/Inf/negative budgets, wrong JSON types and duplicate documents.
func FuzzRequestDecode(f *testing.F) {
	valid := func(extra map[string]any) []byte {
		m := map[string]any{"design": sna.SampleDesign()}
		for k, v := range extra {
			m[k] = v
		}
		b, err := json.Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	seeds := [][]byte{
		valid(nil),
		valid(map[string]any{"method": "golden", "policy": "continue", "align": false}),
		valid(map[string]any{"dt_ps": 1, "deadline_ms": 250, "max_clusters": 2, "deterministic": true}),
		valid(map[string]any{"feasibility": true}),
		valid(map[string]any{"feasibility": "yes"}),
		valid(map[string]any{"nonlinear_caps": true}),
		valid(map[string]any{"nonlinear_caps": "yes"}),
		valid(map[string]any{"dt_ps": -1}),
		valid(map[string]any{"deadline_ms": -5}),
		valid(map[string]any{"max_clusters": -1}),
		valid(map[string]any{"method": "spice"}),
		valid(map[string]any{"unknown_field": 1}),
		[]byte(``),
		[]byte(`{`),
		[]byte(`null`),
		[]byte(`42`),
		[]byte(`"design"`),
		[]byte(`{}`),
		[]byte(`{"design":null}`),
		[]byte(`{"design":{}}`),
		[]byte(`{"design":{"name":"x","tech":"cmos130","layer":"M4","clusters":[{"name":""}]}}`),
		[]byte(`{"design":{"name":"x","tech":"nope","layer":"M4"}}`),
		[]byte(`{"dt_ps":1e999,"design":{"name":"x","tech":"cmos130","layer":"M4"}}`),
		[]byte(`{"deadline_ms":1e308,"design":{"name":"x","tech":"cmos130","layer":"M4"}}`),
		[]byte(`{"design":{"name":"x","tech":"cmos130","layer":"M4"}}{"design":{}}`),
		valid(nil)[:40], // truncated mid-design
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, rerr := decodeRequest(bytes.NewReader(data), fuzzLimits())
		if (p == nil) == (rerr == nil) {
			t.Fatalf("decodeRequest returned result=%v error=%v; want exactly one", p != nil, rerr != nil)
		}
		if rerr != nil {
			if rerr.Status < 400 || rerr.Status > 499 {
				t.Fatalf("rejection status %d is not a 4xx", rerr.Status)
			}
			if rerr.Code == "" {
				t.Fatal("rejection without a stable code")
			}
			return
		}
		// Accepted requests must have fully defaulted, in-budget knobs.
		if p.design == nil {
			t.Fatal("accepted request without a design")
		}
		if !finitePositive(p.dt) {
			t.Fatalf("accepted dt %v is not finite positive", p.dt)
		}
		if p.deadline < 0 || p.deadline > time.Minute {
			t.Fatalf("accepted deadline %v escapes the clamp", p.deadline)
		}
		if n := len(p.design.Clusters); n > 4 {
			t.Fatalf("accepted design with %d clusters past the budget", n)
		}
	})
}
