package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"stanoise/internal/sna"
)

// Cross-process tests re-execute the test binary as real snaserve-like
// child processes (the re-exec helper pattern): when STANOISE_SERVE_CHILD
// is set, TestMain hosts a server instead of running the suite, so the
// zero-duplicate-characterisation contract is asserted across genuine
// process boundaries — separate memory caches, shared store directory,
// cross-process build leases.
func TestMain(m *testing.M) {
	if os.Getenv("STANOISE_SERVE_CHILD") != "" {
		serveChildMain()
		return
	}
	os.Exit(m.Run())
}

// serveChildMain hosts one analysis server on a loopback port, announces
// the address on stdout, and serves until the parent closes stdin.
func serveChildMain() {
	opts := fastAnalysis()
	opts.CacheDir = os.Getenv("STANOISE_SERVE_CACHE_DIR")
	srv := NewServer(Config{Analysis: opts})
	if err := srv.StoreError(); err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	fmt.Printf("ADDR http://%s\n", ln.Addr())
	go http.Serve(ln, srv)
	io.Copy(io.Discard, os.Stdin) // run until the parent closes our stdin
}

// startServeChild launches a child server process sharing cacheDir and
// returns its base URL. The child dies when the test ends.
func startServeChild(t *testing.T, cacheDir string) string {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"STANOISE_SERVE_CHILD=1",
		"STANOISE_SERVE_CACHE_DIR="+cacheDir,
	)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		stdin.Close()
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(out)
	if !sc.Scan() {
		t.Fatalf("server child exited before announcing its address: %v", sc.Err())
	}
	line := sc.Text()
	if !strings.HasPrefix(line, "ADDR ") {
		t.Fatalf("server child: %s", line)
	}
	return strings.TrimPrefix(line, "ADDR ")
}

// childStats fetches a child's /statsz document.
func childStats(t *testing.T, url string) Stats {
	t.Helper()
	resp, err := http.Get(url + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCrossProcessZeroDuplicateCharacterization is the headline
// acceptance test of the cross-process build leases: two cold server
// processes sharing one cache directory, hit concurrently with the same
// design, must perform each transistor-level characterisation exactly
// once *between them*. The proof is the engine's own solve counters: the
// two processes' DC+transient totals must sum to exactly what a single
// cold server (fresh directory) spends — zero duplicates — while both
// processes stream identical verdicts. Requests disable the alignment
// search because it re-simulates the victim driver transistor-level on
// every analysis — per-run evaluation work, not cacheable
// characterisation, which would offset the ledger by a constant.
func TestCrossProcessZeroDuplicateCharacterization(t *testing.T) {
	d := sna.SampleDesign()
	body := requestBody(t, d, map[string]any{"deterministic": true, "align": false})

	shared := t.TempDir()
	urls := []string{startServeChild(t, shared), startServeChild(t, shared)}

	verdicts := make([]map[string]string, len(urls))
	errs := make([]error, len(urls))
	var wg sync.WaitGroup
	for i, url := range urls {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				errs[i] = err
				return
			}
			verdicts[i] = map[string]string{}
			for _, line := range bytes.Split(raw, []byte("\n")) {
				line = bytes.TrimSpace(line)
				if len(line) == 0 {
					continue
				}
				var rec rawRecord
				if err := json.Unmarshal(line, &rec); err != nil {
					errs[i] = fmt.Errorf("bad record %q: %w", line, err)
					return
				}
				if rec.Type != "report" {
					continue
				}
				var rep sna.NetReport
				if err := json.Unmarshal(rec.Report, &rep); err != nil {
					errs[i] = err
					return
				}
				var buf bytes.Buffer
				json.Compact(&buf, rec.Report)
				verdicts[i][rep.Cluster] = buf.String()
			}
		}(i, url)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("server %d: %v", i, err)
		}
	}

	// Identical verdicts from both processes.
	if len(verdicts[0]) != len(d.Clusters) || len(verdicts[1]) != len(d.Clusters) {
		t.Fatalf("verdict counts %d/%d, want %d each", len(verdicts[0]), len(verdicts[1]), len(d.Clusters))
	}
	for cl, v := range verdicts[0] {
		if verdicts[1][cl] != v {
			t.Errorf("cluster %s verdicts diverged between processes:\n%s\n%s", cl, v, verdicts[1][cl])
		}
	}

	// The solve-count ledger: a third, fresh-directory server measures the
	// full cold cost of the design; the two shared-directory servers must
	// have split exactly that between them (macromodel evaluation never
	// touches the transistor engine, so sim counters ARE characterisation).
	baselineURL := startServeChild(t, t.TempDir())
	resp, err := http.Post(baselineURL+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	a, b := childStats(t, urls[0]), childStats(t, urls[1])
	base := childStats(t, baselineURL)
	sum := a.Sim.DC + a.Sim.Transient + b.Sim.DC + b.Sim.Transient
	cold := base.Sim.DC + base.Sim.Transient
	if cold == 0 {
		t.Fatal("baseline server performed no solves; the ledger is broken")
	}
	if sum != cold {
		t.Errorf("shared-store servers spent %d solves combined, single cold server spends %d — %+d duplicated",
			sum, cold, sum-cold)
	}
	// And the leases must have actually arbitrated: every artefact built
	// by one process was awaited (contended) or disk-hit by the other.
	if a.Leases == nil || b.Leases == nil {
		t.Fatal("statsz carries no lease stats despite a persistent store")
	}
	if a.Leases.Acquired+b.Leases.Acquired == 0 {
		t.Error("no build leases were ever acquired")
	}
	if a.Cache.DiskHits+b.Cache.DiskHits == 0 {
		t.Error("neither process was served from the shared store")
	}
}

// TestCrossProcessWarmStartup asserts the second-order payoff: a server
// started against the directory a previous process populated performs
// ZERO solves of its own — every artefact is a disk hit.
func TestCrossProcessWarmStartup(t *testing.T) {
	d := sna.SampleDesign()
	body := requestBody(t, d, map[string]any{"deterministic": true, "align": false})
	shared := t.TempDir()

	cold := startServeChild(t, shared)
	resp, err := http.Post(cold+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	warm := startServeChild(t, shared)
	resp, err = http.Post(warm+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	st := childStats(t, warm)
	if n := st.Sim.DC + st.Sim.Transient; n != 0 {
		t.Errorf("warm server performed %d transistor-level solves, want 0", n)
	}
	if st.Cache.DiskHits == 0 || st.Cache.DiskHits != st.Cache.Misses {
		t.Errorf("warm server cache %+v, want every miss served from disk", st.Cache)
	}
}

// waitForHTTP is a tiny readiness helper for child servers (unused today
// because children announce readiness by printing their address, but kept
// for future endpoints that come up asynchronously).
func waitForHTTP(t *testing.T, url string, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never became healthy: %v", url, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
