// Package serve implements the stanoise analysis server: an HTTP front end
// over the sna analysis engine that accepts designs in the snacheck JSON
// schema and streams per-net verdicts back in completion order.
//
// One process hosts many concurrent requests over shared machinery — one
// characterisation cache (optionally backed by a persistent store with
// cross-process build leases), one compiled-bench pool set, and one
// fleet-wide concurrency gate — so a multi-tenant server costs barely more
// than a single analysis, and N servers sharing a store directory
// characterise each artefact once between them.
//
// Endpoints:
//
//	POST /v1/analyze    stream verdicts for an embedded design
//	GET  /healthz       liveness probe
//	GET  /statsz        cache / store / engine / admission counters
//	POST /invalidate    drop all pooled compiled benches
//
// POST /v1/analyze responds with newline-delimited JSON (NDJSON) records,
// flushed as each cluster completes, or Server-Sent Events when the client
// sends "Accept: text/event-stream" (each record then rides in one data:
// frame). Record types:
//
//	{"type":"report","report":{...}}          one per analysed net (stable
//	                                          stanoise.NetReport schema)
//	{"type":"cluster_error","error":{...}}    one per failing cluster
//	{"type":"summary","summary":{...}}        terminal record of a run that
//	                                          ran to completion
//	{"type":"terminal","error":{"code":...}}  terminal record of a run cut
//	                                          short: "deadline", "canceled"
//	                                          or "internal"
//
// Requests rejected before analysis get a conventional JSON error body
// with a stable code (see RequestError); saturation returns 429 with a
// Retry-After header so overload degrades to client backoff, never to
// queue collapse. A design whose correlation constraints are malformed or
// self-contradictory is a "bad_design" 400, caught at validation — never a
// panic or a mid-stream failure.
//
// The per-request "feasibility" knob (default from Config.Analysis)
// enables the aggressor-correlation filter: report records then carry a
// "feasibility" object with the pruned-combination census and the
// bounded-realistic margin, and /statsz exposes the process-wide census
// under "feas".
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"stanoise/internal/charlib"
	"stanoise/internal/charstore"
	"stanoise/internal/feas"
	"stanoise/internal/sim"
	"stanoise/internal/sna"
)

// Config configures a Server. The zero value is usable: snacheck-matching
// analysis defaults, GOMAXPROCS fleet workers, and modest admission
// limits.
type Config struct {
	// Analysis supplies the shared analysis machinery and quality knobs:
	// Cache/Store/CacheDir (persistent tier), RigPools/RigPoolLimits,
	// Gate, Workers, the model-quality grids and the WarmStart,
	// Feasibility and Corner defaults. The per-request knobs — Method,
	// Align, Dt, OnError — are NOT taken from here: they default to the
	// snacheck CLI defaults (macromodel, align on, 2 ps, fail-fast) and
	// are overridden per request.
	Analysis sna.Options
	// MaxInFlight bounds concurrently admitted requests; excess requests
	// get 429 + Retry-After immediately. Default 8.
	MaxInFlight int
	// MaxClusters rejects designs with more clusters (413) before any
	// analysis. 0 = unlimited.
	MaxClusters int
	// DefaultDeadline is the per-request analysis budget when the request
	// names none. 0 = no deadline.
	DefaultDeadline time.Duration
	// MaxDeadline clamps every request's deadline (including "none"
	// requests when DefaultDeadline is 0). 0 = unclamped.
	MaxDeadline time.Duration
	// MaxBodyBytes bounds the request body. Default 8 MiB.
	MaxBodyBytes int64
	// FleetWorkers bounds concurrent cluster evaluations across ALL
	// in-flight requests (the fleet gate); ignored when Analysis.Gate is
	// set. Default GOMAXPROCS; negative = unbounded.
	FleetWorkers int
	// RetryAfterCap clamps the Retry-After hint on 429 responses. The hint
	// is derived from observed admission pressure — it doubles with every
	// consecutive rejection while the server stays saturated and resets to
	// 1 s as soon as a slot frees — so a persistently overloaded server
	// pushes clients into progressively longer backoff instead of inviting
	// a thundering retry herd every second. Default 8 s; values below 1 s
	// are raised to it.
	RetryAfterCap time.Duration
}

// Server is the stanoise analysis HTTP server; see the package comment
// for the protocol. Create one with NewServer and mount it on any
// http.Server (it implements http.Handler).
type Server struct {
	cfg   Config
	base  sna.Options // resolved per-request template: shared cache/pools/gate attached
	cache *charlib.Cache
	store *charstore.Store // non-nil only when the server opened/was given a charstore tier
	pools *sna.PoolSet
	gate  sna.Gate

	storeErr error
	mux      *http.ServeMux
	sem      chan struct{}

	accepted  atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	canceled  atomic.Int64
	expired   atomic.Int64

	// rejectStreak counts consecutive 429s since the last slot release —
	// the admission-pressure signal the Retry-After hint is derived from.
	rejectStreak atomic.Int64
}

// NewServer builds a server from the configuration, opening the
// persistent store named by cfg.Analysis.CacheDir if any. A store that
// cannot be opened degrades to memory-only caching (see Server.StoreError)
// — exactly like snacheck — rather than failing construction.
func NewServer(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 8
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.RetryAfterCap < time.Second {
		cfg.RetryAfterCap = 8 * time.Second
	}
	s := &Server{cfg: cfg, sem: make(chan struct{}, cfg.MaxInFlight)}

	s.cache = cfg.Analysis.Cache
	if s.cache == nil {
		s.cache = charlib.NewCache()
		switch {
		case cfg.Analysis.Store != nil:
			s.cache.SetStore(cfg.Analysis.Store)
			s.store, _ = cfg.Analysis.Store.(*charstore.Store)
		case cfg.Analysis.CacheDir != "":
			store, err := charstore.Open(cfg.Analysis.CacheDir)
			if err != nil {
				s.storeErr = err
			} else {
				s.cache.SetStore(store)
				s.store = store
			}
		}
	}
	s.pools = cfg.Analysis.RigPools
	if s.pools == nil {
		s.pools = sna.NewPoolSet(cfg.Analysis.RigPoolLimits)
	}
	s.gate = cfg.Analysis.Gate
	if s.gate == nil && cfg.FleetWorkers >= 0 {
		n := cfg.FleetWorkers
		if n == 0 {
			n = runtime.GOMAXPROCS(0)
		}
		s.gate = sna.NewGate(n)
	}

	s.base = cfg.Analysis
	s.base.Cache = s.cache
	s.base.RigPools = s.pools
	s.base.Gate = s.gate
	s.base.Store = nil
	s.base.CacheDir = ""

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("POST /invalidate", s.handleInvalidate)
	s.mux = mux
	return s
}

// StoreError reports why the configured cache directory could not be
// opened, or nil. The server serves memory-cached either way.
func (s *Server) StoreError() error { return s.storeErr }

// Store returns the persistent charstore tier the server opened (or was
// handed via Options.Store), or nil when serving memory-cached. Callers
// use it to tune the store — e.g. Store.SetLeaseTTL — after construction.
func (s *Server) Store() *charstore.Store { return s.store }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// limits derives the request-validation budgets from the configuration.
func (s *Server) limits() requestLimits {
	return requestLimits{
		maxClusters:     s.cfg.MaxClusters,
		defaultDeadline: s.cfg.DefaultDeadline,
		maxDeadline:     s.cfg.MaxDeadline,
		defaultWarm:     s.cfg.Analysis.WarmStart,
		defaultPred:     s.cfg.Analysis.Predictor,
		defaultAlign:    true,
		defaultFeas:     s.cfg.Analysis.Feasibility,
		defaultNLCaps:   s.cfg.Analysis.NonlinearCaps,
		defaultCorner:   s.cfg.Analysis.Corner,
	}
}

// writeRequestError emits the conventional pre-analysis JSON error body.
func writeRequestError(w http.ResponseWriter, rerr *RequestError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(rerr.Status)
	json.NewEncoder(w).Encode(struct {
		Error *RequestError `json:"error"`
	}{rerr})
}

// handleAnalyze admits, decodes and runs one analysis request, streaming
// verdicts in completion order.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	select {
	case s.sem <- struct{}{}:
	default:
		s.rejected.Add(1)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", s.retryAfter()))
		writeRequestError(w, &RequestError{
			Status: http.StatusTooManyRequests, Code: "overloaded",
			Message: fmt.Sprintf("server is at its %d-request admission limit", s.cfg.MaxInFlight),
		})
		return
	}
	defer func() {
		<-s.sem
		// A slot just freed: admission pressure is relieved, so the next
		// rejection (if any) starts the backoff ladder from 1 s again.
		s.rejectStreak.Store(0)
	}()
	s.accepted.Add(1)

	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	preq, rerr := decodeRequest(r.Body, s.limits())
	if rerr != nil {
		writeRequestError(w, rerr)
		return
	}

	ctx := r.Context() // client disconnect cancels the analysis mid-solve
	if preq.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, preq.deadline)
		defer cancel()
	}

	opts := s.base
	opts.Method = preq.method
	opts.OnError = preq.policy
	opts.Align = preq.align
	opts.Dt = preq.dt
	opts.WarmStart = preq.warmStart
	opts.Predictor = preq.predictor
	opts.Feasibility = preq.feasibility
	opts.NonlinearCaps = preq.nonlinearCaps
	opts.Corner = preq.corner
	an := sna.NewAnalyzer(preq.design, opts)

	sw := newStreamWriter(w, r)
	sw.begin()
	var (
		reports     []sna.NetReport
		clusterErrs int
		terminalErr error
	)
	for rep, err := range an.Stream(ctx) {
		if err == nil {
			if preq.deterministic {
				rep.ClearTiming()
			}
			reports = append(reports, rep)
			sw.record(reportRecord{Type: "report", Report: &rep})
			continue
		}
		var cerr *sna.ClusterError
		if errors.As(err, &cerr) {
			clusterErrs++
			sw.record(clusterErrorRecord{Type: "cluster_error", Error: cerr})
			continue
		}
		terminalErr = err
	}
	if terminalErr != nil {
		code := "internal"
		switch {
		case errors.Is(terminalErr, context.DeadlineExceeded):
			code = "deadline"
			s.expired.Add(1)
		case errors.Is(terminalErr, context.Canceled):
			code = "canceled"
			s.canceled.Add(1)
		}
		sw.record(terminalRecord{Type: "terminal", Error: terminalError{Code: code, Message: terminalErr.Error()}})
		return
	}
	s.completed.Add(1)
	sw.record(summaryRecord{Type: "summary", Summary: sna.Summarize(reports), Errors: clusterErrs})
}

// retryAfter derives the Retry-After hint (in seconds) for one rejection
// from the observed admission pressure: the hint doubles with each
// consecutive 429 — 1, 2, 4, ... — and is clamped at Config.RetryAfterCap.
// Every admitted request's completion resets the streak, so the hint
// tracks actual saturation rather than historical load.
func (s *Server) retryAfter() int64 {
	streak := s.rejectStreak.Add(1)
	cap := int64(s.cfg.RetryAfterCap / time.Second)
	hint := int64(1)
	for i := int64(1); i < streak && hint < cap; i++ {
		hint *= 2
	}
	if hint > cap {
		hint = cap
	}
	return hint
}

// handleHealthz is the liveness probe: the server is up and its mux is
// routing.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// handleStatsz serialises a Stats snapshot.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}

// handleInvalidate drops every pooled compiled bench (see
// sna.PoolSet.Invalidate) — the explicit invalidation point after a cell
// library or tech card changes under a long-lived server.
func (s *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	n := s.pools.Invalidate()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"dropped\":%d}\n", n)
}

// RequestStats counts the server's admission and completion outcomes
// since start.
type RequestStats struct {
	// Accepted counts requests admitted past the in-flight limit.
	Accepted int64 `json:"accepted"`
	// Rejected counts requests turned away with 429.
	Rejected int64 `json:"rejected"`
	// Completed counts analyses that ran to completion (including runs
	// with failing clusters under the continue policy).
	Completed int64 `json:"completed"`
	// Canceled counts analyses cut short by client disconnect.
	Canceled int64 `json:"canceled"`
	// DeadlineExpired counts analyses cut short by their deadline budget.
	DeadlineExpired int64 `json:"deadline_expired"`
	// InFlight is the number of requests currently admitted.
	InFlight int `json:"in_flight"`
}

// SimStats is the process-wide engine invocation snapshot (see
// sim.Counters); the cross-process zero-duplicate-characterisation
// assertion reads these through /statsz.
type SimStats struct {
	// DC counts DC operating-point solves started since process start.
	DC int64 `json:"dc"`
	// Transient counts transient solves started since process start.
	Transient int64 `json:"transient"`
	// NewtonIters counts Newton iterations across all solves.
	NewtonIters int64 `json:"newton_iters"`
	// LinearFastPathRuns counts transient runs that took the factor-once
	// linear fast path (zero Newton iterations per step).
	LinearFastPathRuns int64 `json:"linear_fast_path_runs"`
	// TransientSteps counts accepted transient timesteps across all runs;
	// with NewtonIters it yields the fleet-wide iterations-per-step rate.
	TransientSteps int64 `json:"transient_steps"`
	// PredictorSeeds counts timesteps whose Newton solve was seeded by the
	// polynomial predictor (requests with "predictor": true).
	PredictorSeeds int64 `json:"predictor_seeds"`
	// NLStampEvals counts nonlinear-capacitor stamp evaluations (requests
	// with "nonlinear_caps": true); strictly positive iff the NLMOS
	// voltage-dependent gate-charge model actually ran.
	NLStampEvals int64 `json:"nl_stamp_evals"`
	// EngineRuns counts reduced-order noise-engine runs — evaluation work,
	// tracked separately from the transistor-level DC/Transient counters.
	// The feasibility filter's fewer-evaluations claim is measurable here.
	EngineRuns int64 `json:"engine_runs"`
}

// RigPoolStats summarises the shared compiled-bench pool set.
type RigPoolStats struct {
	// Hits counts bench compilations avoided by topology-class reuse.
	Hits int `json:"hits"`
	// Misses counts benches actually compiled.
	Misses int `json:"misses"`
	// Benches is the number of compiled benches currently resident.
	Benches int `json:"benches"`
	// Bytes estimates the resident benches' memory footprint.
	Bytes int64 `json:"bytes"`
}

// CornerStats is one corner's slice of the shared machinery counters: the
// characterisation cache's per-corner attribution plus the per-corner
// solver-work registry. A corner-matrix farm front-ending this server reads
// the block to see which corner is burning Newton iterations — and how much
// the adjacent-corner continuation is saving.
type CornerStats struct {
	// Cache attributes cache traffic to the corner of the requested card.
	Cache charlib.CacheStats `json:"cache"`
	// Sim aggregates the solver work characterisation sweeps spent under
	// the corner.
	Sim sim.CornerCounters `json:"sim"`
}

// Stats is the /statsz document: everything an operator (or a test)
// needs to see the shared machinery working — cache effectiveness, engine
// solve counts, pooled benches, lease traffic and admission outcomes.
type Stats struct {
	// Requests counts admission and completion outcomes.
	Requests RequestStats `json:"requests"`
	// Cache is the shared characterisation cache's counters.
	Cache charlib.CacheStats `json:"cache"`
	// Sim is the process-wide engine invocation snapshot.
	Sim SimStats `json:"sim"`
	// Feas is the process-wide feasibility-filter census: clusters
	// filtered, combinations pruned, scenarios evaluated.
	Feas feas.Stats `json:"feas"`
	// RigPools summarises the compiled-bench pool set.
	RigPools RigPoolStats `json:"rig_pools"`
	// Corners breaks cache traffic and solver work down by operating
	// corner ("nominal" for base-card runs). Absent until the first
	// characterisation sweep completes, which keeps the pre-corner /statsz
	// schema unchanged for processes that never touch the corner axis.
	Corners map[string]CornerStats `json:"corners,omitempty"`
	// Leases reports cross-process build-lease activity; absent without a
	// persistent store.
	Leases *charstore.LeaseStats `json:"leases,omitempty"`
	// StoreEntries is the persistent store's entry count; absent without
	// one.
	StoreEntries *int `json:"store_entries,omitempty"`
	// StoreError explains a cache directory that could not be opened.
	StoreError string `json:"store_error,omitempty"`
}

// Stats snapshots the server counters (what GET /statsz serialises).
func (s *Server) Stats() Stats {
	c := sim.Snapshot()
	hits, misses := s.pools.Stats()
	st := Stats{
		Requests: RequestStats{
			Accepted:        s.accepted.Load(),
			Rejected:        s.rejected.Load(),
			Completed:       s.completed.Load(),
			Canceled:        s.canceled.Load(),
			DeadlineExpired: s.expired.Load(),
			InFlight:        len(s.sem),
		},
		Cache: s.cache.Stats(),
		Sim: SimStats{
			DC: c.DC, Transient: c.Transient, NewtonIters: c.NewtonIters,
			LinearFastPathRuns: c.LinearFastPathRuns, TransientSteps: c.TransientSteps,
			PredictorSeeds: c.PredictorSeeds, NLStampEvals: c.NLStampEvals,
			EngineRuns: c.EngineRuns,
		},
		Feas: feas.Snapshot(),
		RigPools: RigPoolStats{
			Hits: hits, Misses: misses,
			Benches: s.pools.Len(), Bytes: s.pools.Bytes(),
		},
	}
	cacheCorners := s.cache.CornerStats()
	simCorners := sim.SnapshotCorners()
	if len(cacheCorners) > 0 || len(simCorners) > 0 {
		st.Corners = make(map[string]CornerStats, len(cacheCorners)+len(simCorners))
		for tag, cs := range cacheCorners {
			e := st.Corners[tag]
			e.Cache = cs
			st.Corners[tag] = e
		}
		for tag, sc := range simCorners {
			e := st.Corners[tag]
			e.Sim = sc
			st.Corners[tag] = e
		}
	}
	if s.store != nil {
		ls := s.store.LeaseStats()
		st.Leases = &ls
		n := s.store.Len()
		st.StoreEntries = &n
	}
	if s.storeErr != nil {
		st.StoreError = s.storeErr.Error()
	}
	return st
}

// --- stream records ------------------------------------------------------

// reportRecord carries one analysed net's verdict.
type reportRecord struct {
	Type   string         `json:"type"`
	Report *sna.NetReport `json:"report"`
}

// clusterErrorRecord carries one failing cluster's typed error.
type clusterErrorRecord struct {
	Type  string            `json:"type"`
	Error *sna.ClusterError `json:"error"`
}

// summaryRecord terminates a run that ran to completion.
type summaryRecord struct {
	Type    string      `json:"type"`
	Summary sna.Summary `json:"summary"`
	Errors  int         `json:"errors,omitempty"`
}

// terminalError is the payload of a terminalRecord.
type terminalError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// terminalRecord terminates a run cut short (deadline, disconnect,
// internal error).
type terminalRecord struct {
	Type  string        `json:"type"`
	Error terminalError `json:"error"`
}

// streamWriter frames records as NDJSON lines or SSE data: events and
// flushes each one, so verdicts reach the client as they complete.
type streamWriter struct {
	w     http.ResponseWriter
	flush http.Flusher
	sse   bool
}

// newStreamWriter picks the framing from the request's Accept header.
func newStreamWriter(w http.ResponseWriter, r *http.Request) *streamWriter {
	sw := &streamWriter{w: w}
	sw.flush, _ = w.(http.Flusher)
	sw.sse = strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	return sw
}

// begin commits the response headers and the 200 status — after this the
// only way to report failure is an in-stream terminal record.
func (sw *streamWriter) begin() {
	if sw.sse {
		sw.w.Header().Set("Content-Type", "text/event-stream")
		sw.w.Header().Set("Cache-Control", "no-cache")
	} else {
		sw.w.Header().Set("Content-Type", "application/x-ndjson")
	}
	sw.w.WriteHeader(http.StatusOK)
	if sw.flush != nil {
		sw.flush.Flush()
	}
}

// record writes one framed record. Write errors are deliberately dropped:
// they mean the client went away, which the analysis observes through its
// request context.
func (sw *streamWriter) record(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	if sw.sse {
		sw.w.Write([]byte("data: "))
	}
	sw.w.Write(b)
	if sw.sse {
		sw.w.Write([]byte("\n\n"))
	} else {
		sw.w.Write([]byte("\n"))
	}
	if sw.flush != nil {
		sw.flush.Flush()
	}
}
