// Package cell provides the transistor-level standard-cell library used for
// noise analysis: victim and aggressor drivers, and receivers.
//
// Cells are described by a declarative device table (topology plus relative
// sizing) from which the package derives everything the analysis needs:
// transistor netlists for the golden simulator, logic functions for state
// enumeration, pin capacitances for receiver loads, diffusion capacitance
// for driver output parasitics, and sensitised input states for worst-case
// noise propagation.
package cell

import (
	"fmt"
	"sort"

	"stanoise/internal/circuit"
	"stanoise/internal/device"
	"stanoise/internal/tech"
)

// State assigns a boolean level to each input pin.
type State map[string]bool

// Clone returns a copy of the state.
func (s State) Clone() State {
	out := make(State, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// String renders the state deterministically, e.g. "A=1,B=0".
func (s State) String() string {
	pins := make([]string, 0, len(s))
	for p := range s {
		pins = append(pins, p)
	}
	sort.Strings(pins)
	out := ""
	for i, p := range pins {
		if i > 0 {
			out += ","
		}
		v := "0"
		if s[p] {
			v = "1"
		}
		out += p + "=" + v
	}
	return out
}

// devSpec describes one transistor in a cell template. Node labels are
// symbolic: "out", "vdd", "gnd", input pin names, or internal nodes
// ("n1", "n2", ...). wMult scales the polarity's base width and already
// includes stack compensation (series devices are widened).
type devSpec struct {
	name    string
	kind    device.Kind
	d, g, s string
	wMult   float64
}

// spec is a cell template.
type spec struct {
	inputs []string
	devs   []devSpec
	logic  func(in State) bool
}

var specs = map[string]spec{
	"INV": {
		inputs: []string{"A"},
		devs: []devSpec{
			{"mp", device.PMOS, "out", "A", "vdd", 1},
			{"mn", device.NMOS, "out", "A", "gnd", 1},
		},
		logic: func(in State) bool { return !in["A"] },
	},
	"BUF": {
		inputs: []string{"A"},
		devs: []devSpec{
			{"mp1", device.PMOS, "n1", "A", "vdd", 0.5},
			{"mn1", device.NMOS, "n1", "A", "gnd", 0.5},
			{"mp2", device.PMOS, "out", "n1", "vdd", 1},
			{"mn2", device.NMOS, "out", "n1", "gnd", 1},
		},
		logic: func(in State) bool { return in["A"] },
	},
	"NAND2": {
		inputs: []string{"A", "B"},
		devs: []devSpec{
			{"mpa", device.PMOS, "out", "A", "vdd", 1},
			{"mpb", device.PMOS, "out", "B", "vdd", 1},
			{"mna", device.NMOS, "out", "A", "n1", 2},
			{"mnb", device.NMOS, "n1", "B", "gnd", 2},
		},
		logic: func(in State) bool { return !(in["A"] && in["B"]) },
	},
	"NAND3": {
		inputs: []string{"A", "B", "C"},
		devs: []devSpec{
			{"mpa", device.PMOS, "out", "A", "vdd", 1},
			{"mpb", device.PMOS, "out", "B", "vdd", 1},
			{"mpc", device.PMOS, "out", "C", "vdd", 1},
			{"mna", device.NMOS, "out", "A", "n1", 3},
			{"mnb", device.NMOS, "n1", "B", "n2", 3},
			{"mnc", device.NMOS, "n2", "C", "gnd", 3},
		},
		logic: func(in State) bool { return !(in["A"] && in["B"] && in["C"]) },
	},
	"NOR2": {
		inputs: []string{"A", "B"},
		devs: []devSpec{
			{"mpa", device.PMOS, "n1", "A", "vdd", 2},
			{"mpb", device.PMOS, "out", "B", "n1", 2},
			{"mna", device.NMOS, "out", "A", "gnd", 1},
			{"mnb", device.NMOS, "out", "B", "gnd", 1},
		},
		logic: func(in State) bool { return !(in["A"] || in["B"]) },
	},
	"NOR3": {
		inputs: []string{"A", "B", "C"},
		devs: []devSpec{
			{"mpa", device.PMOS, "n1", "A", "vdd", 3},
			{"mpb", device.PMOS, "n2", "B", "n1", 3},
			{"mpc", device.PMOS, "out", "C", "n2", 3},
			{"mna", device.NMOS, "out", "A", "gnd", 1},
			{"mnb", device.NMOS, "out", "B", "gnd", 1},
			{"mnc", device.NMOS, "out", "C", "gnd", 1},
		},
		logic: func(in State) bool { return !(in["A"] || in["B"] || in["C"]) },
	},
	// AOI21: out = !(A·B + C)
	"AOI21": {
		inputs: []string{"A", "B", "C"},
		devs: []devSpec{
			{"mpa", device.PMOS, "n1", "A", "vdd", 2},
			{"mpb", device.PMOS, "n1", "B", "vdd", 2},
			{"mpc", device.PMOS, "out", "C", "n1", 2},
			{"mna", device.NMOS, "out", "A", "n2", 2},
			{"mnb", device.NMOS, "n2", "B", "gnd", 2},
			{"mnc", device.NMOS, "out", "C", "gnd", 1},
		},
		logic: func(in State) bool { return !(in["A"] && in["B"] || in["C"]) },
	},
	// OAI21: out = !((A+B)·C)
	"OAI21": {
		inputs: []string{"A", "B", "C"},
		devs: []devSpec{
			{"mpa", device.PMOS, "n1", "A", "vdd", 2},
			{"mpb", device.PMOS, "out", "B", "n1", 2},
			{"mpc", device.PMOS, "out", "C", "vdd", 2},
			{"mna", device.NMOS, "out", "A", "n2", 2},
			{"mnb", device.NMOS, "out", "B", "n2", 2},
			{"mnc", device.NMOS, "n2", "C", "gnd", 2},
		},
		logic: func(in State) bool { return !((in["A"] || in["B"]) && in["C"]) },
	},
}

// Kinds returns the available cell kinds in sorted order.
func Kinds() []string {
	out := make([]string, 0, len(specs))
	for k := range specs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Cell is an instantiable library cell in a given technology at a given
// drive strength.
type Cell struct {
	Kind  string
	Drive int
	Tech  *tech.Tech
	sp    spec
}

// New returns a cell of the given kind ("INV", "NAND2", ...) and drive
// strength (1, 2, 4, ...).
func New(t *tech.Tech, kind string, drive int) (*Cell, error) {
	sp, ok := specs[kind]
	if !ok {
		return nil, fmt.Errorf("cell: unknown kind %q (have %v)", kind, Kinds())
	}
	if drive < 1 {
		return nil, fmt.Errorf("cell: drive must be >= 1, got %d", drive)
	}
	return &Cell{Kind: kind, Drive: drive, Tech: t, sp: sp}, nil
}

// MustNew is New for static configurations known to be valid.
func MustNew(t *tech.Tech, kind string, drive int) *Cell {
	c, err := New(t, kind, drive)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns the library name, e.g. "NAND2_X2".
func (c *Cell) Name() string { return fmt.Sprintf("%s_X%d", c.Kind, c.Drive) }

// Inputs returns the input pin names.
func (c *Cell) Inputs() []string { return append([]string(nil), c.sp.inputs...) }

// HasInput reports whether pin names one of the cell's inputs.
func (c *Cell) HasInput(pin string) bool {
	for _, in := range c.sp.inputs {
		if in == pin {
			return true
		}
	}
	return false
}

// Logic evaluates the cell's boolean function.
func (c *Cell) Logic(in State) bool { return c.sp.logic(in) }

// width returns the drawn width of one template device.
func (c *Cell) width(d devSpec) float64 {
	base := c.Tech.WUnit * float64(c.Drive)
	if d.kind == device.PMOS {
		base *= c.Tech.PNRatio
	}
	return base * d.wMult
}

// Build instantiates the cell into ckt. Pin nodes are given by pins
// (inputs), out, and vdd; internal nodes are prefixed with name. Ground is
// the global "0".
func (c *Cell) Build(ckt *circuit.Circuit, name string, pins map[string]string, out, vdd string) error {
	mapNode := func(sym string) (string, error) {
		switch sym {
		case "out":
			return out, nil
		case "vdd":
			return vdd, nil
		case "gnd":
			return "0", nil
		}
		for _, in := range c.sp.inputs {
			if sym == in {
				n, ok := pins[in]
				if !ok {
					return "", fmt.Errorf("cell %s: pin %q not connected", c.Name(), in)
				}
				return n, nil
			}
		}
		// Internal node.
		return name + "." + sym, nil
	}
	for _, d := range c.sp.devs {
		dn, err := mapNode(d.d)
		if err != nil {
			return err
		}
		gn, err := mapNode(d.g)
		if err != nil {
			return err
		}
		sn, err := mapNode(d.s)
		if err != nil {
			return err
		}
		w := c.width(d)
		var p device.Params
		var mp tech.MOSParams
		if d.kind == device.PMOS {
			p = c.Tech.PMOSDevice(w)
			mp = c.Tech.PMOS
		} else {
			p = c.Tech.NMOSDevice(w)
			mp = c.Tech.NMOS
		}
		// Device parasitics: half the oxide cap plus overlap to each
		// channel terminal (this carries the gate-drain Miller feedthrough
		// the macromodel deliberately omits), and junction caps to ground
		// on the diffusions. On a card carrying the NLMOS gate-charge
		// model (CNLFrac ≠ 0, see tech.Tech.WithNonlinearCaps) the two
		// gate caps ride on the device as voltage-dependent CapParams —
		// split so the tanh midpoint equals the legacy constant value —
		// instead of linear AddC elements; the junction caps stay linear
		// either way. A zero CNLFrac takes the exact legacy path, element
		// names and order included, so constant-cap netlists, cache keys
		// and result bytes are untouched.
		cHalfGate := 0.5*mp.CGatePerWL*w*c.Tech.Lmin + mp.COverlap*w
		cJun := c.Tech.DiffCap(mp, w)
		if mp.CNLFrac != 0 {
			p.CGD = device.CapParams{
				Cp: (1 - mp.CNLFrac) * cHalfGate, Co: mp.CNLFrac * cHalfGate,
				P0: mp.CNLGDP0, P1: mp.CNLGDP1,
			}
			p.CGS = device.CapParams{
				Cp: (1 - mp.CNLFrac) * cHalfGate, Co: mp.CNLFrac * cHalfGate,
				P0: mp.CNLGSP0, P1: mp.CNLGSP1,
			}
		}
		ckt.AddM(name+"."+d.name, dn, gn, sn, p)
		if mp.CNLFrac == 0 {
			if gn != dn {
				ckt.AddC(name+"."+d.name+".cgd", gn, dn, cHalfGate)
			}
			if gn != sn {
				ckt.AddC(name+"."+d.name+".cgs", gn, sn, cHalfGate)
			}
		}
		if dn != "0" && dn != vdd {
			ckt.AddC(name+"."+d.name+".cdb", dn, "0", cJun)
		}
		if sn != "0" && sn != vdd {
			ckt.AddC(name+"."+d.name+".csb", sn, "0", cJun)
		}
	}
	return nil
}

// InputCap returns the gate capacitance presented by one input pin — the
// receiver load model used throughout the paper's macromodel.
func (c *Cell) InputCap(pin string) float64 {
	sum := 0.0
	for _, d := range c.sp.devs {
		if d.g != pin {
			continue
		}
		var p tech.MOSParams
		if d.kind == device.PMOS {
			p = c.Tech.PMOS
		} else {
			p = c.Tech.NMOS
		}
		sum += c.Tech.GateCap(p, c.width(d))
	}
	return sum
}

// OutputCap returns the diffusion capacitance at the output pin, modelled
// as a lumped parasitic at the driving point.
func (c *Cell) OutputCap() float64 {
	sum := 0.0
	for _, d := range c.sp.devs {
		if d.d != "out" && d.s != "out" {
			continue
		}
		var p tech.MOSParams
		if d.kind == device.PMOS {
			p = c.Tech.PMOS
		} else {
			p = c.Tech.NMOS
		}
		sum += c.Tech.DiffCap(p, c.width(d))
	}
	return sum
}

// halfGateCap returns the gate-to-channel-terminal capacitance of one
// device: half the oxide capacitance plus the overlap.
func (c *Cell) halfGateCap(d devSpec) float64 {
	var p tech.MOSParams
	if d.kind == device.PMOS {
		p = c.Tech.PMOS
	} else {
		p = c.Tech.NMOS
	}
	w := c.width(d)
	return 0.5*p.CGatePerWL*w*c.Tech.Lmin + p.COverlap*w
}

// OutputFixedGateCap returns the total gate-drain capacitance between the
// output and input gates held at fixed rails (all inputs except noisyPin).
// During a noise event these act as capacitance to ground at the driving
// point, and a driving-point macromodel must include them alongside the
// diffusion capacitance.
func (c *Cell) OutputFixedGateCap(noisyPin string) float64 {
	sum := 0.0
	for _, d := range c.sp.devs {
		if d.g == noisyPin {
			continue
		}
		if d.d == "out" || d.s == "out" {
			sum += c.halfGateCap(d)
		}
	}
	return sum
}

// OutputMillerCap returns the gate-drain capacitance coupling the noisy
// input pin to the output — the feedthrough path that the paper's DC-table
// macromodel omits. It is exposed so the Miller-augmented macromodel
// extension (and its ablation benchmark) can model it explicitly.
func (c *Cell) OutputMillerCap(noisyPin string) float64 {
	sum := 0.0
	for _, d := range c.sp.devs {
		if d.g != noisyPin {
			continue
		}
		if d.d == "out" || d.s == "out" {
			sum += c.halfGateCap(d)
		}
	}
	return sum
}

// InternalNodeCap returns the total junction capacitance sitting on the
// cell's internal stack nodes (e.g. between series transistors of a NAND
// pull-down). When a stack conducts — exactly the condition under which
// noise propagates through the cell — these nodes are resistively tied to
// the output, so a driving-point macromodel approximates them as
// additional capacitance at the output pin. A static I_DC table cannot
// represent the charge stored there any other way.
func (c *Cell) InternalNodeCap() float64 {
	isInternal := func(sym string) bool {
		if sym == "out" || sym == "vdd" || sym == "gnd" {
			return false
		}
		for _, in := range c.sp.inputs {
			if sym == in {
				return false
			}
		}
		return true
	}
	sum := 0.0
	for _, d := range c.sp.devs {
		var p tech.MOSParams
		if d.kind == device.PMOS {
			p = c.Tech.PMOS
		} else {
			p = c.Tech.NMOS
		}
		if isInternal(d.d) {
			sum += c.Tech.DiffCap(p, c.width(d))
		}
		if isInternal(d.s) {
			sum += c.Tech.DiffCap(p, c.width(d))
		}
	}
	return sum
}

// ConnectedInternalNodeCap returns the junction capacitance of internal
// stack nodes that are resistively connected to the output through devices
// conducting in the given quiet state. Only those nodes load the driving
// point during a noise event; internal nodes behind OFF devices are
// isolated and must not be counted (counting them overdamps the model —
// see the AOI21 ablation in EXPERIMENTS.md).
func (c *Cell) ConnectedInternalNodeCap(st State) float64 {
	levels := c.nodeLevels(st)
	deviceOn := func(d devSpec) (on, known bool) {
		lvl, ok := levels[d.g]
		if !ok {
			return false, false
		}
		if d.kind == device.NMOS {
			return lvl, true
		}
		return !lvl, true
	}
	// Walk the channel graph from "out" across ON devices.
	reached := map[string]bool{"out": true}
	for changed := true; changed; {
		changed = false
		for _, d := range c.sp.devs {
			on, known := deviceOn(d)
			if !known || !on {
				continue
			}
			if reached[d.d] != reached[d.s] {
				reached[d.d], reached[d.s] = true, true
				changed = true
			}
		}
	}
	sum := 0.0
	for _, d := range c.sp.devs {
		var p tech.MOSParams
		if d.kind == device.PMOS {
			p = c.Tech.PMOS
		} else {
			p = c.Tech.NMOS
		}
		if c.isInternalNode(d.d) && reached[d.d] {
			sum += c.Tech.DiffCap(p, c.width(d))
		}
		if c.isInternalNode(d.s) && reached[d.s] {
			sum += c.Tech.DiffCap(p, c.width(d))
		}
	}
	return sum
}

// isInternalNode reports whether a template symbol names an internal node.
func (c *Cell) isInternalNode(sym string) bool {
	if sym == "out" || sym == "vdd" || sym == "gnd" {
		return false
	}
	for _, in := range c.sp.inputs {
		if sym == in {
			return false
		}
	}
	return true
}

// nodeLevels resolves the quiet logic level of every template node that has
// a defined one: rails, inputs, the output, and internal nodes that are
// conducting-connected to exactly one rail (covers multi-stage cells such
// as BUF, whose second-stage gate is an internal node).
func (c *Cell) nodeLevels(st State) map[string]bool {
	levels := map[string]bool{"vdd": true, "gnd": false, "out": c.sp.logic(st)}
	for _, in := range c.sp.inputs {
		levels[in] = st[in]
	}
	for pass := 0; pass < len(c.sp.devs); pass++ {
		changed := false
		for _, d := range c.sp.devs {
			gl, ok := levels[d.g]
			if !ok {
				continue
			}
			on := gl
			if d.kind == device.PMOS {
				on = !gl
			}
			if !on {
				continue
			}
			dl, dOK := levels[d.d]
			sl, sOK := levels[d.s]
			if dOK && !sOK {
				levels[d.s] = dl
				changed = true
			} else if sOK && !dOK {
				levels[d.d] = sl
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return levels
}

// allStates enumerates every input assignment.
func (c *Cell) allStates() []State {
	ins := c.sp.inputs
	n := len(ins)
	out := make([]State, 0, 1<<n)
	for mask := 0; mask < 1<<n; mask++ {
		s := make(State, n)
		for i, pin := range ins {
			s[pin] = mask&(1<<i) != 0
		}
		out = append(out, s)
	}
	return out
}

// SensitizedState returns an input state in which the cell output is at the
// requested level and the given pin controls the output: flipping only that
// pin flips the output. This is the worst-case condition for noise
// propagation through the pin, and the state used for VCCS
// characterisation.
func (c *Cell) SensitizedState(pin string, outHigh bool) (State, error) {
	for _, s := range c.allStates() {
		if c.sp.logic(s) != outHigh {
			continue
		}
		flipped := s.Clone()
		flipped[pin] = !flipped[pin]
		if c.sp.logic(flipped) != outHigh {
			return s, nil
		}
	}
	return nil, fmt.Errorf("cell %s: no state sensitises pin %q with output %v", c.Name(), pin, outHigh)
}

// HoldStates returns all input states producing the requested output level.
func (c *Cell) HoldStates(outHigh bool) []State {
	var out []State
	for _, s := range c.allStates() {
		if c.sp.logic(s) == outHigh {
			out = append(out, s)
		}
	}
	return out
}

// PinVoltage converts a logic level to the rail voltage of the technology.
func (c *Cell) PinVoltage(level bool) float64 {
	if level {
		return c.Tech.VDD
	}
	return 0
}
