package cell

import (
	"math"
	"strings"
	"testing"

	"stanoise/internal/circuit"
	"stanoise/internal/device"
)

// buildKind instantiates one cell into a fresh circuit with canonical pin
// names and returns the circuit.
func buildKind(t *testing.T, c *Cell, kind string) *circuit.Circuit {
	t.Helper()
	ckt := circuit.New()
	pins := map[string]string{}
	for _, in := range c.Inputs() {
		pins[in] = "in_" + in
	}
	if err := c.Build(ckt, "x", pins, "out", "vdd"); err != nil {
		t.Fatal(err)
	}
	return ckt
}

// TestBuildNLCapSplit pins the cell builder's cap-budget invariant on a
// nonlinear-cap card: every device carries CapParams whose tanh midpoint
// value Cp + Co equals the constant cHalfGate the legacy build stamps,
// no .cgd/.cgs AddC elements appear, the C_GS transition is anchored at the
// device's threshold, and the junction caps are byte-for-byte the legacy
// ones. On the base card the build must be the exact legacy netlist.
func TestBuildNLCapSplit(t *testing.T) {
	base := t130()
	nl := base.WithNonlinearCaps()
	for _, kind := range Kinds() {
		t.Run(kind, func(t *testing.T) {
			cc := buildKind(t, MustNew(base, kind, 1), kind)
			nc := buildKind(t, MustNew(nl, kind, 1), kind)

			if len(nc.Mosfets) != len(cc.Mosfets) {
				t.Fatalf("device count changed: %d vs %d", len(nc.Mosfets), len(cc.Mosfets))
			}
			// Legacy gate caps indexed by element name; the nonlinear build
			// must replace exactly these, and only these.
			gate := map[string]float64{}
			jun := map[string]float64{}
			for _, c := range cc.Capacitors {
				switch {
				case strings.HasSuffix(c.Name, ".cgd"), strings.HasSuffix(c.Name, ".cgs"):
					gate[c.Name] = c.C
				default:
					jun[c.Name] = c.C
				}
			}
			for _, c := range nc.Capacitors {
				if strings.HasSuffix(c.Name, ".cgd") || strings.HasSuffix(c.Name, ".cgs") {
					t.Errorf("nl build still stamps linear gate cap %s", c.Name)
					continue
				}
				want, ok := jun[c.Name]
				if !ok {
					t.Errorf("nl build grew element %s", c.Name)
				} else if c.C != want {
					t.Errorf("junction cap %s changed: %g vs %g", c.Name, c.C, want)
				}
				delete(jun, c.Name)
			}
			for name := range jun {
				t.Errorf("nl build dropped junction cap %s", name)
			}

			for i, m := range nc.Mosfets {
				if !m.P.NonlinearCaps() {
					t.Errorf("%s carries no CapParams", m.Name)
					continue
				}
				// Midpoint C(−P0/P1) = Cp + Co must equal the legacy
				// constant cHalfGate for each gate cap the legacy build
				// stamped (it skips a cap whose terminals coincide).
				for _, g := range []struct {
					suffix string
					cp     device.CapParams
				}{{".cgd", m.P.CGD}, {".cgs", m.P.CGS}} {
					legacy, stamped := gate[m.Name+g.suffix]
					if !stamped {
						continue
					}
					// −P0/P1 rounds, so tanh sees ~1 ulp instead of exact
					// zero: allow Co·1e-15 of slack, far below cap scale.
					mid, _ := g.cp.Eval(-g.cp.P0 / g.cp.P1)
					if d := math.Abs(mid - legacy); d > 1e-15*g.cp.Co {
						t.Errorf("%s%s: tanh midpoint %g != legacy constant %g",
							m.Name, g.suffix, mid, legacy)
					}
				}
				// The C_GS transition sits at this device's threshold:
				// u = −P0/P1 == VT0.
				if mid := -m.P.CGS.P0 / m.P.CGS.P1; mid != m.P.VT0 {
					t.Errorf("%s: C_GS midpoint %g, want VT0 %g", m.Name, mid, m.P.VT0)
				}
				// Same device, same electrical card.
				if cm := cc.Mosfets[i]; m.P.W != cm.P.W || m.P.KP != cm.P.KP || m.P.VT0 != cm.P.VT0 {
					t.Errorf("%s: electrical params changed vs constant-cap build", m.Name)
				}
			}

			// Base-card build: no CapParams anywhere (bit-stability of the
			// legacy netlist, and with it every charstore key).
			for _, m := range cc.Mosfets {
				if m.P.NonlinearCaps() {
					t.Errorf("constant-cap build: %s carries CapParams", m.Name)
				}
			}
		})
	}
}
