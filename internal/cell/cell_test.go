package cell

import (
	"context"
	"math"
	"testing"

	"stanoise/internal/circuit"
	"stanoise/internal/sim"
	"stanoise/internal/tech"
	"stanoise/internal/wave"
)

func t130() *tech.Tech { return tech.Tech130() }

func TestKindsComplete(t *testing.T) {
	want := []string{"AOI21", "BUF", "INV", "NAND2", "NAND3", "NOR2", "NOR3", "OAI21"}
	got := Kinds()
	if len(got) != len(want) {
		t.Fatalf("Kinds = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Kinds[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(t130(), "XOR9", 1); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := New(t130(), "INV", 0); err == nil {
		t.Error("zero drive accepted")
	}
}

func TestLogicTables(t *testing.T) {
	tt := t130()
	cases := []struct {
		kind string
		in   State
		want bool
	}{
		{"INV", State{"A": false}, true},
		{"INV", State{"A": true}, false},
		{"BUF", State{"A": true}, true},
		{"NAND2", State{"A": true, "B": false}, true},
		{"NAND2", State{"A": true, "B": true}, false},
		{"NAND3", State{"A": true, "B": true, "C": true}, false},
		{"NAND3", State{"A": true, "B": true, "C": false}, true},
		{"NOR2", State{"A": false, "B": false}, true},
		{"NOR2", State{"A": true, "B": false}, false},
		{"NOR3", State{"A": false, "B": false, "C": false}, true},
		{"AOI21", State{"A": true, "B": true, "C": false}, false},
		{"AOI21", State{"A": true, "B": false, "C": false}, true},
		{"AOI21", State{"A": false, "B": false, "C": true}, false},
		{"OAI21", State{"A": true, "B": false, "C": true}, false},
		{"OAI21", State{"A": false, "B": false, "C": true}, true},
		{"OAI21", State{"A": true, "B": true, "C": false}, true},
	}
	for _, c := range cases {
		cl := MustNew(tt, c.kind, 1)
		if got := cl.Logic(c.in); got != c.want {
			t.Errorf("%s(%v) = %v, want %v", c.kind, c.in, got, c.want)
		}
	}
}

// Every cell's transistor netlist must implement its logic function: for
// each input state, DC-solve the cell and compare the output level.
func TestNetlistMatchesLogicAllCells(t *testing.T) {
	tt := t130()
	for _, kind := range Kinds() {
		cl := MustNew(tt, kind, 1)
		for _, st := range cl.HoldStates(true) {
			checkState(t, cl, st, true)
		}
		for _, st := range cl.HoldStates(false) {
			checkState(t, cl, st, false)
		}
	}
}

func checkState(t *testing.T, cl *Cell, st State, wantHigh bool) {
	t.Helper()
	ckt := circuit.New()
	ckt.AddVDC("vdd", "vdd", "0", cl.Tech.VDD)
	pins := map[string]string{}
	for _, in := range cl.Inputs() {
		node := "in_" + in
		pins[in] = node
		ckt.AddVDC("v_"+in, node, "0", cl.PinVoltage(st[in]))
	}
	if err := cl.Build(ckt, "dut", pins, "out", "vdd"); err != nil {
		t.Fatalf("%s: %v", cl.Name(), err)
	}
	ckt.AddR("rl", "out", "0", 1e9)
	guess := map[string]float64{"out": cl.PinVoltage(wantHigh)}
	dc, err := sim.DC(ckt, sim.Options{InitialGuess: guess})
	if err != nil {
		t.Fatalf("%s state %v: DC failed: %v", cl.Name(), st, err)
	}
	out := dc.NodeV("out")
	if wantHigh && out < 0.9*cl.Tech.VDD {
		t.Errorf("%s state %v: out=%.3f, want high", cl.Name(), st, out)
	}
	if !wantHigh && out > 0.1*cl.Tech.VDD {
		t.Errorf("%s state %v: out=%.3f, want low", cl.Name(), st, out)
	}
}

func TestSensitizedStateNAND2(t *testing.T) {
	cl := MustNew(t130(), "NAND2", 1)
	st, err := cl.SensitizedState("B", true)
	if err != nil {
		t.Fatal(err)
	}
	// The only sensitising state with output high is A=1, B=0 — the
	// paper's Table 1 victim condition.
	if !st["A"] || st["B"] {
		t.Errorf("state = %v, want A=1,B=0", st)
	}
}

func TestSensitizedStateImpossible(t *testing.T) {
	cl := MustNew(t130(), "NAND2", 1)
	// With output low (A=B=1), flipping one input flips the output, so a
	// sensitised low state exists; but e.g. INV output high is sensitised
	// trivially. Exercise the error path with a fabricated impossible pin.
	if _, err := cl.SensitizedState("Z", true); err == nil {
		t.Error("nonexistent pin accepted")
	}
}

func TestCapsScaleWithDrive(t *testing.T) {
	tt := t130()
	c1 := MustNew(tt, "INV", 1)
	c4 := MustNew(tt, "INV", 4)
	if got, want := c4.InputCap("A"), 4*c1.InputCap("A"); math.Abs(got-want) > 1e-20 {
		t.Errorf("InputCap X4 = %v, want %v", got, want)
	}
	if got, want := c4.OutputCap(), 4*c1.OutputCap(); math.Abs(got-want) > 1e-20 {
		t.Errorf("OutputCap X4 = %v, want %v", got, want)
	}
	// Plausible magnitudes: a unit inverter input is a few fF.
	if ic := c1.InputCap("A"); ic < 0.5e-15 || ic > 20e-15 {
		t.Errorf("unit inverter input cap = %v F, implausible", ic)
	}
}

func TestNAND2StackInternalNode(t *testing.T) {
	// The NAND2 template must create exactly one internal node, shared by
	// the stacked NMOS pair, so that stack weakening during input glitches
	// is physically represented.
	ckt := circuit.New()
	cl := MustNew(t130(), "NAND2", 1)
	if err := cl.Build(ckt, "u1", map[string]string{"A": "a", "B": "b"}, "out", "vdd"); err != nil {
		t.Fatal(err)
	}
	if _, ok := ckt.LookupNode("u1.n1"); !ok {
		t.Error("internal node u1.n1 missing")
	}
	if len(ckt.Mosfets) != 4 {
		t.Errorf("NAND2 has %d transistors, want 4", len(ckt.Mosfets))
	}
}

func TestBuildUnconnectedPin(t *testing.T) {
	ckt := circuit.New()
	cl := MustNew(t130(), "NAND2", 1)
	err := cl.Build(ckt, "u1", map[string]string{"A": "a"}, "out", "vdd")
	if err == nil {
		t.Error("missing pin connection accepted")
	}
}

// A buffer must drive its output to the same level as its input through two
// internal stages, transistor-level.
func TestBUFTransient(t *testing.T) {
	tt := t130()
	cl := MustNew(tt, "BUF", 2)
	ckt := circuit.New()
	ckt.AddVDC("vdd", "vdd", "0", tt.VDD)
	ckt.AddV("vin", "a", "0", wave.SaturatedRamp(0, tt.VDD, 100e-12, 50e-12))
	if err := cl.Build(ckt, "u1", map[string]string{"A": "a"}, "out", "vdd"); err != nil {
		t.Fatal(err)
	}
	ckt.AddC("cl", "out", "0", 30e-15)
	res, err := sim.Transient(context.Background(), ckt, sim.Options{Dt: 1e-12, TStop: 1.5e-9})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Waveform("out")
	if got := w.At(0); got > 0.05 {
		t.Errorf("initial out = %v, want 0", got)
	}
	if got := w.At(1.5e-9); math.Abs(got-tt.VDD) > 0.05 {
		t.Errorf("final out = %v, want %v", got, tt.VDD)
	}
}

func TestStateString(t *testing.T) {
	s := State{"B": false, "A": true}
	if got := s.String(); got != "A=1,B=0" {
		t.Errorf("String = %q", got)
	}
}
