package cell

import (
	"math"
	"testing"
)

func TestOutputFixedGateVsMillerSplit(t *testing.T) {
	tt := t130()
	nand := MustNew(tt, "NAND2", 1)
	// NAND2 devices touching the output: mpa (gate A), mpb (gate B),
	// mna (gate A). With noisy pin B, the Miller part is mpb's half-gate
	// cap and the fixed part is mpa+mna's.
	fixed := nand.OutputFixedGateCap("B")
	miller := nand.OutputMillerCap("B")
	if fixed <= 0 || miller <= 0 {
		t.Fatalf("fixed=%v miller=%v", fixed, miller)
	}
	// Swapping the noisy pin to A must move mpa and mna into the Miller
	// bucket: fixed(A) + miller(A) == fixed(B) + miller(B) (same devices).
	if d := (nand.OutputFixedGateCap("A") + nand.OutputMillerCap("A")) - (fixed + miller); math.Abs(d) > 1e-21 {
		t.Errorf("cap budget not conserved across pin choice: %v", d)
	}
	// For the inverter, everything output-connected is gated by A.
	inv := MustNew(tt, "INV", 1)
	if inv.OutputFixedGateCap("A") != 0 {
		t.Errorf("INV fixed gate cap = %v, want 0", inv.OutputFixedGateCap("A"))
	}
	if inv.OutputMillerCap("A") <= 0 {
		t.Error("INV Miller cap missing")
	}
}

func TestInternalNodeCapByTopology(t *testing.T) {
	tt := t130()
	// INV has no internal nodes.
	if c := MustNew(tt, "INV", 1).InternalNodeCap(); c != 0 {
		t.Errorf("INV internal cap = %v", c)
	}
	// NAND2 has one internal node (n1) with two junctions on it.
	nand := MustNew(tt, "NAND2", 1)
	if c := nand.InternalNodeCap(); c <= 0 {
		t.Errorf("NAND2 internal cap = %v", c)
	}
	// NAND3 has two internal nodes, each with two junctions of wider
	// (3x stack-compensated) devices: strictly more than NAND2.
	nand3 := MustNew(tt, "NAND3", 1)
	if nand3.InternalNodeCap() <= nand.InternalNodeCap() {
		t.Error("NAND3 internal cap should exceed NAND2's")
	}
}

func TestConnectedInternalNodeCapStateAware(t *testing.T) {
	tt := t130()
	// AOI21 (out = !(A·B + C)) holding high with A=0,B=0,C=0: the pull-up
	// path through C and the (A||B) pair conducts, so n1 is connected;
	// the pull-down stack node n2 sits behind OFF NMOS devices.
	aoi := MustNew(tt, "AOI21", 1)
	stHigh := State{"A": false, "B": false, "C": false}
	conn := aoi.ConnectedInternalNodeCap(stHigh)
	all := aoi.InternalNodeCap()
	if conn <= 0 {
		t.Fatalf("connected cap = %v, want > 0 (n1 conducts)", conn)
	}
	if conn >= all {
		t.Errorf("connected cap %v should exclude the isolated n2 (total %v)", conn, all)
	}
	// NAND2 holding high with A=1,B=0: mna conducts, n1 connected — the
	// connected cap equals the full internal cap.
	nand := MustNew(tt, "NAND2", 1)
	st, _ := nand.SensitizedState("B", true)
	if got, want := nand.ConnectedInternalNodeCap(st), nand.InternalNodeCap(); math.Abs(got-want) > 1e-21 {
		t.Errorf("NAND2 connected %v != total %v", got, want)
	}
	// NAND2 with A=0,B=0: mna is off, n1 floats behind it.
	if got := nand.ConnectedInternalNodeCap(State{"A": false, "B": false}); got != 0 {
		t.Errorf("NAND2 A=0: connected cap = %v, want 0", got)
	}
}

func TestNodeLevelsResolvesBUFStage(t *testing.T) {
	tt := t130()
	buf := MustNew(tt, "BUF", 1)
	// BUF with A=1: first stage drives n1 low; the second stage's NMOS
	// (gate n1) is then OFF and its PMOS ON — levels must resolve n1.
	levels := buf.nodeLevels(State{"A": true})
	lvl, ok := levels["n1"]
	if !ok {
		t.Fatal("n1 level not resolved")
	}
	if lvl {
		t.Error("n1 should be low for A=1")
	}
	// And the connected-cap walk must not panic or miscount (BUF has no
	// junction-bearing internal stack node between out and a rail — n1 is
	// a gate node, not a channel node of the output stage).
	_ = buf.ConnectedInternalNodeCap(State{"A": true})
}

func TestCapsAllCellsFinite(t *testing.T) {
	tt := t130()
	for _, kind := range Kinds() {
		cl := MustNew(tt, kind, 2)
		for _, pin := range cl.Inputs() {
			for _, v := range []float64{
				cl.InputCap(pin),
				cl.OutputFixedGateCap(pin),
				cl.OutputMillerCap(pin),
			} {
				if math.IsNaN(v) || v < 0 || v > 1e-12 {
					t.Errorf("%s/%s: implausible cap %v", kind, pin, v)
				}
			}
		}
		for _, st := range cl.HoldStates(true) {
			if v := cl.ConnectedInternalNodeCap(st); math.IsNaN(v) || v < 0 || v > cl.InternalNodeCap()+1e-21 {
				t.Errorf("%s state %v: connected internal cap %v out of range", kind, st, v)
			}
		}
	}
}
