package report

import (
	"strings"
	"testing"
)

func demo() *Table {
	t := &Table{
		Title:   "Table 1. Injected and propagated noise combination",
		Headers: []string{"Noise", "ELDO", "Ours", "Error%"},
		Notes:   []string{"shape reproduction"},
	}
	t.AddRow("Peak (V)", 0.345, 0.354, "+2.6")
	t.AddRow("Area (V·ps)", 174.3, 175.7, "+0.8")
	return t
}

func TestRenderAlignment(t *testing.T) {
	var b strings.Builder
	if err := demo().Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, rule, 2 rows, note.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Table 1.") {
		t.Errorf("title line: %q", lines[0])
	}
	if !strings.Contains(lines[1], "Noise") || !strings.Contains(lines[1], "Error%") {
		t.Errorf("header line: %q", lines[1])
	}
	if !strings.Contains(lines[5], "note:") {
		t.Errorf("note line: %q", lines[5])
	}
	// Columns align: "ELDO" starts at the same offset in header and rows.
	col := strings.Index(lines[1], "ELDO")
	if got := strings.Index(lines[3], "0.345"); got != col {
		t.Errorf("column misaligned: header at %d, row at %d\n%s", col, got, out)
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	if err := demo().CSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "Noise,ELDO,Ours,Error%" {
		t.Errorf("csv header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Peak (V),0.345,") {
		t.Errorf("csv row: %q", lines[1])
	}
}

func TestPct(t *testing.T) {
	if got := Pct(2.55, false); got != "+2.5" && got != "+2.6" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(-22.0, false); got != "-22.0" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(123, true); got != "—" {
		t.Errorf("Pct(ref) = %q", got)
	}
}

func TestAddRowFormats(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b", "c"}}
	tb.AddRow("x", 1.23456789, 42)
	if tb.Rows[0][1] != "1.235" {
		t.Errorf("float cell = %q", tb.Rows[0][1])
	}
	if tb.Rows[0][2] != "42" {
		t.Errorf("int cell = %q", tb.Rows[0][2])
	}
}
