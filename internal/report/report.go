// Package report renders the experiment tables in aligned ASCII and CSV,
// matching the row/column structure of the paper's tables.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(row []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(row) {
				c = row[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table (headers then rows) in CSV form.
func (t *Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// Pct formats a percentage with sign, e.g. "+2.6" or "-22.0"; the reference
// entry renders as "—".
func Pct(v float64, isRef bool) string {
	if isRef {
		return "—"
	}
	return fmt.Sprintf("%+.1f", v)
}
