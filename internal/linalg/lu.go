package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when a factorisation encounters a pivot that is
// numerically zero.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// LU holds an in-place LU factorisation with partial pivoting (Doolittle
// form, PA = LU). The factorisation can be reused for multiple right-hand
// sides, which is the common pattern in transient simulation where the
// Jacobian is factored once per Newton iteration and solved repeatedly.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// Factor computes the LU factorisation of a. The input matrix is not
// modified. Factor returns ErrSingular when a pivot smaller than a tiny
// absolute threshold is found.
//
// Factor allocates a fresh copy of a on every call; hot loops that factor
// the same-sized system repeatedly should use an LUWorkspace instead.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		panic("linalg: Factor requires a square matrix")
	}
	n := a.Rows
	f := &LU{lu: a.Clone(), piv: make([]int, n)}
	var err error
	f.sign, err = factorInPlace(f.lu, f.piv)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// factorInPlace performs the Doolittle LU factorisation with partial
// pivoting directly on m, recording the row permutation in piv (which must
// have length m.Rows). It returns the permutation sign, or ErrSingular when
// a pivot is numerically zero, in which case m and piv hold a partial,
// unusable factorisation.
func factorInPlace(m *Matrix, piv []int) (int, error) {
	n := m.Rows
	lu := m.Data
	sign := 1
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivoting: find the largest magnitude in column k.
		p := k
		max := math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > max {
				max, p = v, i
			}
		}
		if max < 1e-300 {
			return sign, ErrSingular
		}
		if p != k {
			for c := 0; c < n; c++ {
				lu[k*n+c], lu[p*n+c] = lu[p*n+c], lu[k*n+c]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivot := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] / pivot
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			row := lu[i*n : (i+1)*n]
			krow := lu[k*n : (k+1)*n]
			for c := k + 1; c < n; c++ {
				row[c] -= m * krow[c]
			}
		}
	}
	return sign, nil
}

// LUWorkspace is a reusable LU factorisation buffer for n×n systems: the
// factor matrix and pivot vector are allocated once and every Factor call
// overwrites them in place, so repeated factor/solve cycles — one per
// Newton iteration in the simulator's inner loops — allocate nothing. The
// arithmetic is identical to Factor/Solve, so results are bit-for-bit the
// same.
//
// A workspace is not safe for concurrent use.
type LUWorkspace struct {
	f LU
}

// NewLUWorkspace returns a workspace for factoring n×n matrices.
func NewLUWorkspace(n int) *LUWorkspace {
	return &LUWorkspace{f: LU{lu: NewMatrix(n, n), piv: make([]int, n), sign: 1}}
}

// Size returns the system dimension n the workspace was built for.
func (w *LUWorkspace) Size() int { return w.f.lu.Rows }

// Factor copies a into the workspace buffer and factors it in place,
// replacing any previous factorisation. It allocates nothing. On
// ErrSingular the stored factorisation is unusable until the next
// successful Factor.
func (w *LUWorkspace) Factor(a *Matrix) error {
	w.f.lu.CopyFrom(a) // panics on shape mismatch
	var err error
	w.f.sign, err = factorInPlace(w.f.lu, w.f.piv)
	return err
}

// SolveInto solves A·x = b into dst without allocating. dst and b must not
// alias and must have length Size.
func (w *LUWorkspace) SolveInto(dst, b []float64) {
	w.f.Permute(dst, b)
	w.f.SolveInPlace(dst)
}

// Det returns the determinant of the currently factored matrix.
func (w *LUWorkspace) Det() float64 { return w.f.Det() }

// Solve solves A x = b for x using the stored factorisation. b is not
// modified.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic("linalg: Solve length mismatch")
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	f.SolveInPlace(x)
	return x
}

// SolveInPlace performs forward and backward substitution on a vector that
// has already been permuted according to the pivot order. Most callers want
// Solve; SolveInPlace exists for allocation-free inner loops where the
// caller applies the permutation itself (see Permute).
func (f *LU) SolveInPlace(x []float64) {
	n := f.lu.Rows
	lu := f.lu.Data
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		s := x[i]
		row := lu[i*n : i*n+i]
		for k, v := range row {
			s -= v * x[k]
		}
		x[i] = s
	}
	// Backward substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := lu[i*n : (i+1)*n]
		for k := i + 1; k < n; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
}

// Permute writes P*b into dst following the pivot order of the
// factorisation. dst and b must not alias.
func (f *LU) Permute(dst, b []float64) {
	for i := range dst {
		dst[i] = b[f.piv[i]]
	}
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.lu.Rows
	d := float64(f.sign)
	for i := 0; i < n; i++ {
		d *= f.lu.Data[i*n+i]
	}
	return d
}

// SolveMatrix solves A X = B column by column and returns X.
func (f *LU) SolveMatrix(b *Matrix) *Matrix {
	if b.Rows != f.lu.Rows {
		panic("linalg: SolveMatrix shape mismatch")
	}
	out := NewMatrix(b.Rows, b.Cols)
	for c := 0; c < b.Cols; c++ {
		x := f.Solve(b.Col(c))
		out.SetCol(c, x)
	}
	return out
}

// SolveLinear is a convenience one-shot wrapper: it factors a and solves
// a x = b.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
