package linalg

import "testing"

// Factor-vs-substitute benchmarks at noise-cluster sizes: the transient
// linear fast path replaces a per-step Factor (O(n³)) with a per-step
// SolveInto against one factorisation (O(n²)); these pin the ratio that
// saving rides on.

func benchSystem(n int) (*Matrix, []float64) {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 4)
		if i+1 < n {
			m.Set(i, i+1, -1)
			m.Set(i+1, i, -1)
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	return m, b
}

func benchLUFactor(b *testing.B, n int) {
	m, _ := benchSystem(n)
	lu := NewLUWorkspace(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lu.Factor(m); err != nil {
			b.Fatal(err)
		}
	}
}

func benchLUSolveInto(b *testing.B, n int) {
	m, rhs := benchSystem(n)
	lu := NewLUWorkspace(n)
	if err := lu.Factor(m); err != nil {
		b.Fatal(err)
	}
	dst := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lu.SolveInto(dst, rhs)
	}
}

func BenchmarkLUWorkspaceFactor16(b *testing.B)    { benchLUFactor(b, 16) }
func BenchmarkLUWorkspaceFactor64(b *testing.B)    { benchLUFactor(b, 64) }
func BenchmarkLUWorkspaceSolveInto16(b *testing.B) { benchLUSolveInto(b, 16) }
func BenchmarkLUWorkspaceSolveInto64(b *testing.B) { benchLUSolveInto(b, 64) }
