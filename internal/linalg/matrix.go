// Package linalg provides the small dense linear-algebra kernel used by the
// circuit simulator and the model-order-reduction engine: dense matrices,
// LU factorisation with partial pivoting, and modified Gram–Schmidt
// orthonormalisation for block Krylov subspaces.
//
// The matrices involved in static noise analysis are small (tens to a few
// hundred unknowns for a noise cluster, around a dozen for a reduced
// macromodel), so a cache-friendly dense row-major representation is both
// simpler and faster than a sparse one at this scale.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, Data[r*Cols+c]
}

// NewMatrix returns a zero-initialised r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Add adds v to the element at row r, column c. It is the natural primitive
// for MNA stamping.
func (m *Matrix) Add(r, c int, v float64) { m.Data[r*m.Cols+c] += v }

// Zero clears every element in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom overwrites m with the contents of src. The shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("linalg: CopyFrom shape mismatch")
	}
	copy(m.Data, src.Data)
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Data[c*m.Rows+r] = m.Data[r*m.Cols+c]
		}
	}
	return out
}

// Mul returns the matrix product a*b.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for r := 0; r < a.Rows; r++ {
		arow := a.Data[r*a.Cols : (r+1)*a.Cols]
		orow := out.Data[r*b.Cols : (r+1)*b.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for c, bv := range brow {
				orow[c] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic("linalg: MulVec shape mismatch")
	}
	out := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		s := 0.0
		for c, v := range row {
			s += v * x[c]
		}
		out[r] = s
	}
	return out
}

// MulVecInto computes m*x into dst, which must have length m.Rows.
func (m *Matrix) MulVecInto(dst, x []float64) {
	if m.Cols != len(x) || m.Rows != len(dst) {
		panic("linalg: MulVecInto shape mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		s := 0.0
		for c, v := range row {
			s += v * x[c]
		}
		dst[r] = s
	}
}

// AddScaled computes m += alpha*a in place. The shapes must match.
func (m *Matrix) AddScaled(alpha float64, a *Matrix) {
	if m.Rows != a.Rows || m.Cols != a.Cols {
		panic("linalg: AddScaled shape mismatch")
	}
	for i, v := range a.Data {
		m.Data[i] += alpha * v
	}
}

// Scale multiplies every element by alpha in place.
func (m *Matrix) Scale(alpha float64) {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
}

// Col returns a copy of column c.
func (m *Matrix) Col(c int) []float64 {
	out := make([]float64, m.Rows)
	for r := 0; r < m.Rows; r++ {
		out[r] = m.Data[r*m.Cols+c]
	}
	return out
}

// SetCol overwrites column c with v.
func (m *Matrix) SetCol(c int, v []float64) {
	if len(v) != m.Rows {
		panic("linalg: SetCol length mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		m.Data[r*m.Cols+c] = v[r]
	}
}

// MaxAbs returns the largest absolute element value.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			fmt.Fprintf(&b, "% .4e ", m.At(r, c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// AxpyVec computes y += alpha*x in place.
func AxpyVec(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AxpyVec length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// ScaleVec multiplies v by alpha in place.
func ScaleVec(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}
